GO           ?= go
BENCHTIME    ?= 100x
# Time-based so fast hot-path benchmarks accumulate enough measured time
# to be stable; iteration counts (e.g. 2000x) make the gate noise-bound.
GATETIME     ?= 1s
SOAK_SECONDS ?= 60
SOAK_EVENTS  ?= 400
SOAK_SEED    ?= 0

.PHONY: build test race bench bench-stretch bench-gate soak soak-10k clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the address-resolution benchmarks (cold discovery vs the
# lease-aware cache's hot/stale/cold-miss paths) and the batched-publish
# benchmarks (RPCs per publish at 1/100/10k owned records), recording the
# results as BENCH_resolve.json and BENCH_publish.json. Override
# BENCHTIME (e.g. BENCHTIME=2s) for a statistically meaningful local run;
# the 100x default is a CI smoke.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkResolve|^BenchmarkDiscover$$' \
		-benchtime $(BENCHTIME) -benchmem ./internal/live | tee bench_resolve.txt
	$(GO) run ./cmd/benchjson -in bench_resolve.txt -out BENCH_resolve.json
	@rm -f bench_resolve.txt
	$(GO) test -run '^$$' -bench 'BenchmarkPublishBatch|BenchmarkPublishIngestParallel|BenchmarkRegistryReadParallel' \
		-benchtime $(BENCHTIME) -benchmem ./internal/live | tee bench_publish.txt
	$(GO) run ./cmd/benchjson -suite publish -in bench_publish.txt -out BENCH_publish.json
	@rm -f bench_publish.txt

# bench-stretch records the proximity stretch evaluation: one 10k-router
# transit-stub run per variant (full proximity stack, latency ordering
# only, random baseline), identical seed and workload, with
# median-stretch/p90-stretch/mean-cost captured into BENCH_stretch.json.
# The runs are deterministic, so -benchtime 1x is the whole measurement.
bench-stretch:
	$(GO) test -run '^$$' -bench BenchmarkStretch -benchtime 1x \
		./internal/stretch | tee bench_stretch.txt
	$(GO) run ./cmd/benchjson -suite stretch -in bench_stretch.txt -out BENCH_stretch.json
	@rm -f bench_stretch.txt

# bench-gate re-measures the hot-path benchmarks and fails if any of them
# regressed more than 20% in ns/op against the committed BENCH_*.json
# baselines, gained allocations, or lost a zero-allocation guarantee.
# GATETIME trades gate runtime for measurement stability. Only the
# allocation-free paths are gated: their timings are stable because they
# never touch the GC, while alloc-heavy benchmarks (RegistryReadParallel
# et al.) jitter past any useful threshold and are tracked via the
# recorded BENCH_*.json reports instead. The stretch leg gates on the
# absolute stretch metrics (deterministic per seed, so enforceable as
# hard bounds) rather than wall time, which varies with machine load —
# hence the loose regress pct and -ignore-allocs.
bench-gate:
	$(GO) test -run '^$$' -bench 'BenchmarkResolveHot|BenchmarkPublishIngestParallel' \
		-benchtime $(GATETIME) -benchmem ./internal/live | tee bench_gate.txt
	$(GO) run ./cmd/benchjson -suite gate -in bench_gate.txt -out bench_gate.json
	@rm -f bench_gate.txt
	$(GO) run ./cmd/benchgate -new bench_gate.json \
		-baselines BENCH_resolve.json,BENCH_publish.json \
		-zero-alloc BenchmarkResolveHotParallel,BenchmarkPublishIngestParallel
	@rm -f bench_gate.json
	$(GO) test -run '^$$' -bench BenchmarkStretch -benchtime 1x \
		./internal/stretch | tee stretch_gate.txt
	$(GO) run ./cmd/benchjson -suite stretch -in stretch_gate.txt -out stretch_gate.json
	@rm -f stretch_gate.txt
	$(GO) run ./cmd/benchgate -new stretch_gate.json \
		-baselines BENCH_stretch.json \
		-ignore-allocs -max-regress-pct 100 \
		-max-metric 'BenchmarkStretchProximity10k/median-stretch=1.5' \
		-min-metric 'BenchmarkStretchRandom10k/median-stretch=1.2'
	@rm -f stretch_gate.json

# soak runs randomized seeded mobility/churn scenarios on the scenario
# harness (internal/harness) under the race detector until the
# SOAK_SECONDS budget runs out. A failure prints the reproducing
# BRISTLE_SOAK_SEED; re-run with it set to replay the identical op
# schedule.
soak:
	BRISTLE_SOAK_SECONDS=$(SOAK_SECONDS) $(GO) test -race -count=1 \
		-run 'TestSoak$$' -timeout 20m -v ./internal/harness

# soak-10k boots the production-scale fabric — a 64-node stationary core
# fronting 9936 verified observer mobiles — and drives it through a
# Weibull-churn schedule with event-budgeted invariant checking. Wall
# clock is bounded by SOAK_EVENTS, not cluster size. Runs without the
# race detector (10k nodes under -race needs more memory than CI has);
# the 200-node TestChurn200Weibull covers the same paths under -race.
# A failure prints the reproducing seed; replay it with SOAK_SEED=<seed>
# (and the same SOAK_EVENTS) for a byte-identical op schedule.
soak-10k:
	BRISTLE_SOAK10K=1 BRISTLE_SOAK_EVENTS=$(SOAK_EVENTS) \
		BRISTLE_SOAK_SEED=$(SOAK_SEED) $(GO) test -count=1 \
		-run 'TestSoak10k$$' -timeout 30m -v ./internal/harness | tee soak10k.log

clean:
	rm -f bench_resolve.txt BENCH_resolve.json bench_publish.txt BENCH_publish.json \
		bench_gate.txt bench_gate.json bench_stretch.txt BENCH_stretch.json \
		stretch_gate.txt stretch_gate.json
