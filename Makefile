GO           ?= go
BENCHTIME    ?= 100x
# Time-based so fast hot-path benchmarks accumulate enough measured time
# to be stable; iteration counts (e.g. 2000x) make the gate noise-bound.
GATETIME     ?= 1s
SOAK_SECONDS ?= 60

.PHONY: build test race bench bench-gate soak clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the address-resolution benchmarks (cold discovery vs the
# lease-aware cache's hot/stale/cold-miss paths) and the batched-publish
# benchmarks (RPCs per publish at 1/100/10k owned records), recording the
# results as BENCH_resolve.json and BENCH_publish.json. Override
# BENCHTIME (e.g. BENCHTIME=2s) for a statistically meaningful local run;
# the 100x default is a CI smoke.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkResolve|^BenchmarkDiscover$$' \
		-benchtime $(BENCHTIME) -benchmem ./internal/live | tee bench_resolve.txt
	$(GO) run ./cmd/benchjson -in bench_resolve.txt -out BENCH_resolve.json
	@rm -f bench_resolve.txt
	$(GO) test -run '^$$' -bench 'BenchmarkPublishBatch|BenchmarkPublishIngestParallel|BenchmarkRegistryReadParallel' \
		-benchtime $(BENCHTIME) -benchmem ./internal/live | tee bench_publish.txt
	$(GO) run ./cmd/benchjson -suite publish -in bench_publish.txt -out BENCH_publish.json
	@rm -f bench_publish.txt

# bench-gate re-measures the hot-path benchmarks and fails if any of them
# regressed more than 20% in ns/op against the committed BENCH_*.json
# baselines, gained allocations, or lost a zero-allocation guarantee.
# GATETIME trades gate runtime for measurement stability. Only the
# allocation-free paths are gated: their timings are stable because they
# never touch the GC, while alloc-heavy benchmarks (RegistryReadParallel
# et al.) jitter past any useful threshold and are tracked via the
# recorded BENCH_*.json reports instead.
bench-gate:
	$(GO) test -run '^$$' -bench 'BenchmarkResolveHot|BenchmarkPublishIngestParallel' \
		-benchtime $(GATETIME) -benchmem ./internal/live | tee bench_gate.txt
	$(GO) run ./cmd/benchjson -suite gate -in bench_gate.txt -out bench_gate.json
	@rm -f bench_gate.txt
	$(GO) run ./cmd/benchgate -new bench_gate.json \
		-baselines BENCH_resolve.json,BENCH_publish.json \
		-zero-alloc BenchmarkResolveHotParallel,BenchmarkPublishIngestParallel
	@rm -f bench_gate.json

# soak runs randomized seeded mobility/churn scenarios on the scenario
# harness (internal/harness) under the race detector until the
# SOAK_SECONDS budget runs out. A failure prints the reproducing
# BRISTLE_SOAK_SEED; re-run with it set to replay the identical op
# schedule.
soak:
	BRISTLE_SOAK_SECONDS=$(SOAK_SECONDS) $(GO) test -race -count=1 \
		-run 'TestSoak$$' -timeout 20m -v ./internal/harness

clean:
	rm -f bench_resolve.txt BENCH_resolve.json bench_publish.txt BENCH_publish.json \
		bench_gate.txt bench_gate.json
