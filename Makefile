GO        ?= go
BENCHTIME ?= 100x

.PHONY: build test race bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the address-resolution benchmarks (cold discovery vs the
# lease-aware cache's hot/stale/cold-miss paths) and records the results
# as BENCH_resolve.json. Override BENCHTIME (e.g. BENCHTIME=2s) for a
# statistically meaningful local run; the 100x default is a CI smoke.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkResolve|^BenchmarkDiscover$$' \
		-benchtime $(BENCHTIME) -benchmem ./internal/live | tee bench_resolve.txt
	$(GO) run ./cmd/benchjson -in bench_resolve.txt -out BENCH_resolve.json
	@rm -f bench_resolve.txt

clean:
	rm -f bench_resolve.txt BENCH_resolve.json
