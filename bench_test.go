package bristle_test

// One benchmark per table and figure of the paper's evaluation, plus the
// ablation benches DESIGN.md §6 calls out and micro-benchmarks for the
// hot paths. Benchmark bodies run reduced-scale experiment configs so a
// full `go test -bench=.` stays laptop-friendly; the bristle-sim command
// runs the full-scale versions.

import (
	"bytes"
	"math/rand"
	"testing"

	"bristle/internal/chord"
	"bristle/internal/core"
	"bristle/internal/experiments"
	"bristle/internal/hashkey"
	"bristle/internal/ldt"
	"bristle/internal/overlay"
	"bristle/internal/simnet"
	"bristle/internal/topology"
	"bristle/internal/wire"
)

// --- per-figure/table benches -------------------------------------------

func BenchmarkTable1(b *testing.B) {
	cfg := experiments.Table1Config{
		Stationary: 120, Mobile: 60, Sessions: 100, Rounds: 3,
		FailFraction: 0.1, Routers: 400, Seed: 42,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(42 + i)
		rows, err := experiments.RunTable1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("wrong row count")
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	cfg := experiments.Fig3Config{
		AnalyticN: 1 << 20, EmpiricalN: 256,
		MobileFracs: []float64{0.2, 0.5, 0.8}, Routers: 300, Seed: 3,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(3 + i)
		if _, err := experiments.RunFig3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	cfg := experiments.Fig7Config{
		Stationary:  120,
		MobileFracs: []float64{0, 0.4, 0.8},
		Routes:      200,
		Routers:     400,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(1 + i)
		rows, err := experiments.RunFig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		// Report the headline metric of the final sweep point.
		b.ReportMetric(rows[len(rows)-1].RDPHops, "rdp@80%")
	}
}

func BenchmarkFig8(b *testing.B) {
	cfg := experiments.Fig8Config{
		Nodes: 25000, RegistrySize: 15, MaxCapacity: 15,
		Trees: 200, SampleTrees: 15,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(8 + i)
		if _, err := experiments.RunFig8(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	cfg := experiments.Fig9Config{
		Routers: 500, Fracs: []float64{0.3, 1.0},
		RegistrySize: 10, CandidateFrac: 0.15, MaxCapacity: 15,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(9 + i)
		rows, err := experiments.RunFig9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].LocalityImprovement, "locality-gain")
	}
}

func BenchmarkDataChurn(b *testing.B) {
	cfg := experiments.DataChurnConfig{
		Stationary: 80, Mobile: 50, Items: 100,
		Replication: 3, Rounds: 2, Routers: 400,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(13 + i)
		rows, err := experiments.RunDataChurn(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].TransfersPerMove, "typeA-transfers/move")
	}
}

func BenchmarkEq1(b *testing.B) {
	cfg := experiments.Eq1Config{
		Stationary:  120,
		MobileFracs: []float64{0.3, 0.7},
		Routes:      200,
		Routers:     400,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(6 + i)
		if _, err := experiments.RunEq1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- scaling bench: the O(log N) claims ---------------------------------

func BenchmarkScaling(b *testing.B) {
	for _, size := range []int{256, 1024, 4096} {
		size := size
		b.Run(itoa(size), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(size)))
			ring := overlay.NewRing(overlay.DefaultConfig(), nil)
			for i := 0; i < size; i++ {
				for {
					if _, err := ring.AddNode(hashkey.Random(rng), simnet.NoHost); err == nil {
						break
					}
				}
			}
			nodes := ring.Nodes()
			b.ResetTimer()
			totalHops := 0
			for i := 0; i < b.N; i++ {
				src := nodes[rng.Intn(len(nodes))]
				res, err := ring.Route(src.Ref.ID, hashkey.Random(rng), nil)
				if err != nil {
					b.Fatal(err)
				}
				totalHops += res.NumHops()
			}
			b.ReportMetric(float64(totalHops)/float64(b.N), "hops/route")
		})
	}
}

// --- ablations (DESIGN.md §6) --------------------------------------------

// BenchmarkAblationMonotone compares monotone arc routing (Bristle's
// discipline, required by the clustered naming analysis) against
// unrestricted greedy routing.
func BenchmarkAblationMonotone(b *testing.B) {
	rng := rand.New(rand.NewSource(77))
	ring := overlay.NewRing(overlay.DefaultConfig(), nil)
	for i := 0; i < 1024; i++ {
		for {
			if _, err := ring.AddNode(hashkey.Random(rng), simnet.NoHost); err == nil {
				break
			}
		}
	}
	nodes := ring.Nodes()

	b.Run("monotone", func(b *testing.B) {
		hops := 0
		for i := 0; i < b.N; i++ {
			src := nodes[rng.Intn(len(nodes))]
			res, err := ring.Route(src.Ref.ID, hashkey.Random(rng), nil)
			if err != nil {
				b.Fatal(err)
			}
			hops += res.NumHops()
		}
		b.ReportMetric(float64(hops)/float64(b.N), "hops/route")
	})
	b.Run("greedy", func(b *testing.B) {
		hops := 0
		for i := 0; i < b.N; i++ {
			src := nodes[rng.Intn(len(nodes))]
			res, err := ring.RouteGreedy(src.Ref.ID, hashkey.Random(rng), nil)
			if err != nil {
				b.Fatal(err)
			}
			hops += res.NumHops()
		}
		b.ReportMetric(float64(hops)/float64(b.N), "hops/route")
	})
}

// BenchmarkAblationProximity measures mean underlay cost per overlay hop
// with proximity neighbor selection on and off.
func BenchmarkAblationProximity(b *testing.B) {
	for _, prox := range []int{0, 4} {
		prox := prox
		name := "off"
		if prox > 0 {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(78))
			g, err := topology.GenerateTransitStub(topology.DefaultTransitStub(500), rng)
			if err != nil {
				b.Fatal(err)
			}
			net := simnet.NewNetwork(g, nil)
			ring := overlay.NewRing(overlay.Config{LeafSize: 4, ProximityChoices: prox}, net)
			for i := 0; i < 400; i++ {
				host := net.AttachHostRandom(rng)
				for {
					if _, err := ring.AddNode(hashkey.Random(rng), host); err == nil {
						break
					}
				}
			}
			nodes := ring.Nodes()
			b.ResetTimer()
			cost, hops := 0.0, 0
			for i := 0; i < b.N; i++ {
				src := nodes[rng.Intn(len(nodes))]
				res, err := ring.Route(src.Ref.ID, hashkey.Random(rng), nil)
				if err != nil {
					b.Fatal(err)
				}
				for _, h := range res.Hops {
					cost += net.Cost(ring.Node(h.From.ID).Host, ring.Node(h.To.ID).Host)
					hops++
				}
			}
			if hops > 0 {
				b.ReportMetric(cost/float64(hops), "cost/hop")
			}
		})
	}
}

// BenchmarkAblationLDT compares the capacity-aware Figure 4 tree against
// a naive balanced k-ary tree that ignores node capacity, by the depth
// reached on heterogeneous members.
func BenchmarkAblationLDT(b *testing.B) {
	rng := rand.New(rand.NewSource(79))
	mkMembers := func() (ldt.Member, []ldt.Member) {
		root := ldt.Member{ID: 0, Capacity: 1 + float64(rng.Intn(15))}
		reg := make([]ldt.Member, 15)
		for i := range reg {
			reg[i] = ldt.Member{ID: int32(i + 1), Capacity: 1 + float64(rng.Intn(15))}
		}
		return root, reg
	}
	b.Run("capacity-aware", func(b *testing.B) {
		depths := 0
		for i := 0; i < b.N; i++ {
			root, reg := mkMembers()
			tree, err := ldt.Build(root, reg, ldt.Params{UnitCost: 1})
			if err != nil {
				b.Fatal(err)
			}
			depths += tree.Depth()
		}
		b.ReportMetric(float64(depths)/float64(b.N), "depth")
	})
	b.Run("naive-binary", func(b *testing.B) {
		// Fixed fanout 2 regardless of capacity: the ideal balanced 2-ary
		// depth over the same member count.
		depths := 0
		for i := 0; i < b.N; i++ {
			_, reg := mkMembers()
			depths += ldt.IdealDepth(len(reg), 2)
		}
		b.ReportMetric(float64(depths)/float64(b.N), "depth")
	})
}

// BenchmarkAblationBinding compares early+late binding (registrants get
// proactive LDT pushes; discovery only as fallback) against late-only
// binding (every send resolves reactively), by discovery operations per
// delivered message.
func BenchmarkAblationBinding(b *testing.B) {
	build := func(seed int64) (*core.Network, []*core.Peer, []*core.Peer) {
		rng := rand.New(rand.NewSource(seed))
		g, err := topology.GenerateTransitStub(topology.DefaultTransitStub(400), rng)
		if err != nil {
			b.Fatal(err)
		}
		net := simnet.NewNetwork(g, nil)
		bn := core.NewNetwork(core.Config{
			Naming:             core.Clustered,
			StationaryFraction: 0.6,
			Overlay:            overlay.DefaultConfig(),
			ReplicationFactor:  2,
			UnitCost:           1,
			CacheResolved:      true,
		}, net, nil, rng)
		var stats, mobs []*core.Peer
		for i := 0; i < 90; i++ {
			p, err := bn.AddPeer(core.Stationary, 1+float64(rng.Intn(15)))
			if err != nil {
				b.Fatal(err)
			}
			stats = append(stats, p)
		}
		for i := 0; i < 60; i++ {
			p, err := bn.AddPeer(core.Mobile, 1+float64(rng.Intn(15)))
			if err != nil {
				b.Fatal(err)
			}
			mobs = append(mobs, p)
		}
		bn.RefreshEntries()
		return bn, stats, mobs
	}

	run := func(b *testing.B, early bool) {
		bn, stats, mobs := build(80)
		rng := rand.New(rand.NewSource(81))
		if early {
			for _, m := range mobs {
				for k := 0; k < 4; k++ {
					bn.Register(stats[rng.Intn(len(stats))], m)
				}
			}
		}
		for _, m := range mobs {
			if _, err := bn.PublishLocation(m); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		sends, discoveries := 0, uint64(0)
		for i := 0; i < b.N; i++ {
			m := mobs[rng.Intn(len(mobs))]
			if early {
				if _, err := bn.MoveAndUpdate(m); err != nil {
					b.Fatal(err)
				}
			} else {
				bn.MoveSilently(m)
				if _, err := bn.PublishLocation(m); err != nil {
					b.Fatal(err)
				}
			}
			before := bn.Stats.Discoveries
			var senders []*core.Peer
			if early && len(m.Registry()) > 0 {
				senders = m.Registry()
			} else {
				senders = stats[:4]
			}
			for _, s := range senders {
				if _, err := bn.SendDirect(s, m); err != nil {
					b.Fatal(err)
				}
				sends++
			}
			discoveries += bn.Stats.Discoveries - before
		}
		if sends > 0 {
			b.ReportMetric(float64(discoveries)/float64(sends), "discoveries/send")
		}
	}

	b.Run("early+late", func(b *testing.B) { run(b, true) })
	b.Run("late-only", func(b *testing.B) { run(b, false) })
}

// --- micro-benchmarks ------------------------------------------------------

func BenchmarkChordRoute(b *testing.B) {
	rng := rand.New(rand.NewSource(94))
	ch := chord.New(chord.DefaultConfig(), nil)
	for i := 0; i < 2048; i++ {
		for {
			if _, err := ch.AddNode(hashkey.Random(rng), simnet.NoHost); err == nil {
				break
			}
		}
	}
	refs := ch.Refs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := refs[i%len(refs)]
		if _, err := ch.Route(src.ID, hashkey.Random(rng), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOverlayRoute(b *testing.B) {
	rng := rand.New(rand.NewSource(90))
	ring := overlay.NewRing(overlay.DefaultConfig(), nil)
	for i := 0; i < 2048; i++ {
		for {
			if _, err := ring.AddNode(hashkey.Random(rng), simnet.NoHost); err == nil {
				break
			}
		}
	}
	nodes := ring.Nodes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := nodes[i%len(nodes)]
		if _, err := ring.Route(src.Ref.ID, hashkey.Random(rng), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDijkstra(b *testing.B) {
	rng := rand.New(rand.NewSource(91))
	g, err := topology.GenerateTransitStub(topology.DefaultTransitStub(2000), rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topology.Dijkstra(g, topology.RouterID(i%g.NumRouters()))
	}
}

func BenchmarkLDTBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(92))
	reg := make([]ldt.Member, 15)
	for i := range reg {
		reg[i] = ldt.Member{ID: int32(i + 1), Capacity: 1 + float64(rng.Intn(15))}
	}
	root := ldt.Member{ID: 0, Capacity: 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ldt.Build(root, reg, ldt.Params{UnitCost: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireCodec(b *testing.B) {
	m := &wire.Message{
		Type: wire.TUpdate,
		Key:  hashkey.FromName("subject"),
		Self: wire.Entry{Key: 7, Addr: "192.0.2.17:9000", Capacity: 3, TTLMilli: 30000},
	}
	for i := 0; i < 15; i++ {
		m.Entries = append(m.Entries, wire.Entry{
			Key: hashkey.Key(i), Addr: "192.0.2.1:1234", Capacity: float64(i),
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame, err := wire.Encode(m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wire.Decode(bytes.NewReader(frame)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiscover(b *testing.B) {
	rng := rand.New(rand.NewSource(93))
	g, err := topology.GenerateTransitStub(topology.DefaultTransitStub(500), rng)
	if err != nil {
		b.Fatal(err)
	}
	net := simnet.NewNetwork(g, nil)
	bn := core.NewNetwork(core.Config{
		Naming:             core.Clustered,
		StationaryFraction: 0.6,
		Overlay:            overlay.DefaultConfig(),
		ReplicationFactor:  2,
		UnitCost:           1,
	}, net, nil, rng)
	var stats, mobs []*core.Peer
	for i := 0; i < 120; i++ {
		p, err := bn.AddPeer(core.Stationary, 5)
		if err != nil {
			b.Fatal(err)
		}
		stats = append(stats, p)
	}
	for i := 0; i < 80; i++ {
		p, err := bn.AddPeer(core.Mobile, 5)
		if err != nil {
			b.Fatal(err)
		}
		mobs = append(mobs, p)
	}
	bn.RefreshEntries()
	for _, m := range mobs {
		if _, err := bn.PublishLocation(m); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := mobs[i%len(mobs)]
		s := stats[i%len(stats)]
		if _, _, err := bn.Discover(s, m.Key); err != nil {
			b.Fatal(err)
		}
	}
}

// --- helpers ---------------------------------------------------------------

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
