// Command benchgate compares a fresh benchjson report against committed
// baselines and fails (exit 1) when the hot paths regress: a benchmark
// present in both reports may not slow down by more than -max-regress-pct
// in ns/op, and may never gain allocations. Benchmarks named in
// -zero-alloc must additionally appear in the fresh report with exactly
// 0 allocs/op — the zero-allocation guarantees of the serve and resolve
// paths as an enforced gate rather than a comment.
//
// Usage:
//
//	go run ./cmd/benchgate -new /tmp/gate.json \
//	    -baselines BENCH_resolve.json,BENCH_publish.json \
//	    -zero-alloc BenchmarkResolveHotParallel,BenchmarkPublishIngestParallel
//
// Baselines are recorded by `make bench`; the gate is wired as
// `make bench-gate` and runs in CI's bench-smoke job.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

type result struct {
	Name     string  `json:"name"`
	NsPerOp  float64 `json:"ns_per_op"`
	BPerOp   float64 `json:"b_per_op"`
	AllocsOp int64   `json:"allocs_per_op"`
}

type report struct {
	Suite      string   `json:"suite"`
	Benchmarks []result `json:"benchmarks"`
}

func load(path string) (report, error) {
	var r report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	return r, json.Unmarshal(data, &r)
}

func main() {
	newPath := flag.String("new", "", "fresh benchjson report to gate")
	baselines := flag.String("baselines", "", "comma-separated committed baseline reports")
	maxRegress := flag.Float64("max-regress-pct", 20, "max allowed ns/op regression, percent")
	zeroAlloc := flag.String("zero-alloc", "", "comma-separated benchmarks that must report 0 allocs/op")
	flag.Parse()
	if *newPath == "" || *baselines == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -new and -baselines are required")
		os.Exit(2)
	}

	fresh, err := load(*newPath)
	if err != nil {
		fatal(err)
	}
	got := make(map[string]result, len(fresh.Benchmarks))
	for _, b := range fresh.Benchmarks {
		got[b.Name] = b
	}

	base := make(map[string]result)
	for _, path := range strings.Split(*baselines, ",") {
		rep, err := load(strings.TrimSpace(path))
		if err != nil {
			fatal(err)
		}
		for _, b := range rep.Benchmarks {
			base[b.Name] = b
		}
	}

	violations := 0
	fmt.Printf("%-36s %14s %14s %9s %s\n", "benchmark", "base ns/op", "new ns/op", "Δ%", "allocs")
	for _, nb := range fresh.Benchmarks {
		bb, ok := base[nb.Name]
		if !ok {
			fmt.Printf("%-36s %14s %14.1f %9s %d (new)\n", nb.Name, "-", nb.NsPerOp, "-", nb.AllocsOp)
			continue
		}
		delta := (nb.NsPerOp - bb.NsPerOp) / bb.NsPerOp * 100
		verdict := ""
		if delta > *maxRegress {
			verdict = "  REGRESSION"
			violations++
		}
		if nb.AllocsOp > bb.AllocsOp {
			verdict += "  ALLOC-INCREASE"
			violations++
		}
		fmt.Printf("%-36s %14.1f %14.1f %+8.1f%% %d→%d%s\n",
			nb.Name, bb.NsPerOp, nb.NsPerOp, delta, bb.AllocsOp, nb.AllocsOp, verdict)
	}
	if *zeroAlloc != "" {
		for _, name := range strings.Split(*zeroAlloc, ",") {
			name = strings.TrimSpace(name)
			nb, ok := got[name]
			switch {
			case !ok:
				fmt.Printf("%-36s missing from fresh report  ZERO-ALLOC-UNVERIFIED\n", name)
				violations++
			case nb.AllocsOp != 0:
				fmt.Printf("%-36s %d allocs/op  ZERO-ALLOC-VIOLATION\n", name, nb.AllocsOp)
				violations++
			}
		}
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d violation(s)\n", violations)
		os.Exit(1)
	}
	fmt.Println("benchgate: ok")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
	os.Exit(1)
}
