// Command benchgate compares a fresh benchjson report against committed
// baselines and fails (exit 1) when the hot paths regress: a benchmark
// present in both reports may not slow down by more than -max-regress-pct
// in ns/op, and may never gain allocations. Benchmarks named in
// -zero-alloc must additionally appear in the fresh report with exactly
// 0 allocs/op — the zero-allocation guarantees of the serve and resolve
// paths as an enforced gate rather than a comment.
//
// Beyond relative comparisons, -max-metric and -min-metric assert
// absolute bounds on custom b.ReportMetric columns, e.g.
//
//	-max-metric 'BenchmarkStretchProximity10k/median-stretch=1.5'
//
// fails unless that benchmark reports median-stretch/op ≤ 1.5 (and
// -min-metric symmetrically enforces a floor — used to keep the
// no-proximity baseline honest). A named benchmark or metric missing
// from the fresh report is itself a violation.
//
// Usage:
//
//	go run ./cmd/benchgate -new /tmp/gate.json \
//	    -baselines BENCH_resolve.json,BENCH_publish.json \
//	    -zero-alloc BenchmarkResolveHotParallel,BenchmarkPublishIngestParallel
//
// Baselines are recorded by `make bench`; the gate is wired as
// `make bench-gate` and runs in CI's bench-smoke job. A baseline file
// that does not exist yet is skipped with a warning so a suite's first
// recorded run can bootstrap itself; -ignore-allocs drops the
// allocation comparison for suites (like the stretch evaluation) whose
// per-op allocations are workload bookkeeping, not a guarded hot path.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name     string             `json:"name"`
	NsPerOp  float64            `json:"ns_per_op"`
	BPerOp   float64            `json:"b_per_op"`
	AllocsOp int64              `json:"allocs_per_op"`
	Metrics  map[string]float64 `json:"metrics"`
}

type report struct {
	Suite      string   `json:"suite"`
	Benchmarks []result `json:"benchmarks"`
}

// bound is one parsed -max-metric/-min-metric spec:
// Bench/metric=value with ceiling or floor semantics.
type bound struct {
	bench, metric string
	value         float64
	ceiling       bool
}

func parseBounds(spec string, ceiling bool) ([]bound, error) {
	if spec == "" {
		return nil, nil
	}
	var out []bound
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		path, val, ok := strings.Cut(item, "=")
		if !ok {
			return nil, fmt.Errorf("bound %q: want Bench/metric=value", item)
		}
		bench, metric, ok := strings.Cut(path, "/")
		if !ok || bench == "" || metric == "" {
			return nil, fmt.Errorf("bound %q: want Bench/metric=value", item)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("bound %q: %v", item, err)
		}
		out = append(out, bound{bench: bench, metric: metric, value: v, ceiling: ceiling})
	}
	return out, nil
}

func load(path string) (report, error) {
	var r report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	return r, json.Unmarshal(data, &r)
}

func main() {
	newPath := flag.String("new", "", "fresh benchjson report to gate")
	baselines := flag.String("baselines", "", "comma-separated committed baseline reports")
	maxRegress := flag.Float64("max-regress-pct", 20, "max allowed ns/op regression, percent")
	zeroAlloc := flag.String("zero-alloc", "", "comma-separated benchmarks that must report 0 allocs/op")
	ignoreAllocs := flag.Bool("ignore-allocs", false, "skip the allocs/op increase check")
	maxMetric := flag.String("max-metric", "", "comma-separated Bench/metric=ceiling bounds on fresh metrics")
	minMetric := flag.String("min-metric", "", "comma-separated Bench/metric=floor bounds on fresh metrics")
	flag.Parse()
	if *newPath == "" || *baselines == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -new and -baselines are required")
		os.Exit(2)
	}
	bounds, err := parseBounds(*maxMetric, true)
	if err != nil {
		fatal(err)
	}
	floors, err := parseBounds(*minMetric, false)
	if err != nil {
		fatal(err)
	}
	bounds = append(bounds, floors...)

	fresh, err := load(*newPath)
	if err != nil {
		fatal(err)
	}
	got := make(map[string]result, len(fresh.Benchmarks))
	for _, b := range fresh.Benchmarks {
		got[b.Name] = b
	}

	base := make(map[string]result)
	for _, path := range strings.Split(*baselines, ",") {
		path = strings.TrimSpace(path)
		rep, err := load(path)
		if os.IsNotExist(err) {
			// First run of a new suite: nothing to compare against yet.
			// `make bench` records the baseline; absolute -max-metric /
			// -min-metric bounds still apply below.
			fmt.Printf("benchgate: baseline %s missing, skipping (record it with make bench)\n", path)
			continue
		}
		if err != nil {
			fatal(err)
		}
		for _, b := range rep.Benchmarks {
			base[b.Name] = b
		}
	}

	violations := 0
	fmt.Printf("%-36s %14s %14s %9s %s\n", "benchmark", "base ns/op", "new ns/op", "Δ%", "allocs")
	for _, nb := range fresh.Benchmarks {
		bb, ok := base[nb.Name]
		if !ok {
			fmt.Printf("%-36s %14s %14.1f %9s %d (new)\n", nb.Name, "-", nb.NsPerOp, "-", nb.AllocsOp)
			continue
		}
		delta := (nb.NsPerOp - bb.NsPerOp) / bb.NsPerOp * 100
		verdict := ""
		if delta > *maxRegress {
			verdict = "  REGRESSION"
			violations++
		}
		if !*ignoreAllocs && nb.AllocsOp > bb.AllocsOp {
			verdict += "  ALLOC-INCREASE"
			violations++
		}
		fmt.Printf("%-36s %14.1f %14.1f %+8.1f%% %d→%d%s\n",
			nb.Name, bb.NsPerOp, nb.NsPerOp, delta, bb.AllocsOp, nb.AllocsOp, verdict)
	}
	if *zeroAlloc != "" {
		for _, name := range strings.Split(*zeroAlloc, ",") {
			name = strings.TrimSpace(name)
			nb, ok := got[name]
			switch {
			case !ok:
				fmt.Printf("%-36s missing from fresh report  ZERO-ALLOC-UNVERIFIED\n", name)
				violations++
			case nb.AllocsOp != 0:
				fmt.Printf("%-36s %d allocs/op  ZERO-ALLOC-VIOLATION\n", name, nb.AllocsOp)
				violations++
			}
		}
	}
	for _, bd := range bounds {
		kind, cmp := "ceiling", "≤"
		if !bd.ceiling {
			kind, cmp = "floor", "≥"
		}
		nb, ok := got[bd.bench]
		if !ok {
			fmt.Printf("%s/%s missing benchmark  METRIC-%s-UNVERIFIED\n", bd.bench, bd.metric, strings.ToUpper(kind))
			violations++
			continue
		}
		v, ok := nb.Metrics[bd.metric]
		if !ok {
			fmt.Printf("%s/%s missing metric  METRIC-%s-UNVERIFIED\n", bd.bench, bd.metric, strings.ToUpper(kind))
			violations++
			continue
		}
		verdict := "ok"
		if (bd.ceiling && v > bd.value) || (!bd.ceiling && v < bd.value) {
			verdict = "METRIC-" + strings.ToUpper(kind) + "-VIOLATION"
			violations++
		}
		fmt.Printf("%s/%s = %.3f (%s %s %.3f)  %s\n", bd.bench, bd.metric, v, kind, cmp, bd.value, verdict)
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d violation(s)\n", violations)
		os.Exit(1)
	}
	fmt.Println("benchgate: ok")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
	os.Exit(1)
}
