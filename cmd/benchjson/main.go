// Command benchjson converts `go test -bench` text output into a small
// machine-readable JSON document, so benchmark results can be committed
// (BENCH_resolve.json, BENCH_stretch.json) and diffed across PRs or
// uploaded as CI artifacts without scraping log text.
//
// Usage:
//
//	go test -run '^$' -bench Resolve -benchmem ./internal/live | go run ./cmd/benchjson -out BENCH_resolve.json
//	go run ./cmd/benchjson -in bench.txt -out BENCH_resolve.json
//
// Custom b.ReportMetric columns (rpcs/op, median-stretch/op, ...) are
// captured generically into each benchmark's "metrics" map; the memory
// columns keep their dedicated fields. When both BenchmarkDiscover and
// BenchmarkResolveHot appear in the input, the output includes
// derived.hot_speedup_vs_discover — the headline number for the
// location cache.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
)

// benchLine matches the fixed prefix of one result row, e.g.
//
//	BenchmarkResolveHot-8   100   73.38 ns/op   0 B/op   0 allocs/op
//	BenchmarkStretchProximity10k   1   8.1e8 ns/op   1.000 median-stretch/op
//
// The -8 GOMAXPROCS suffix is stripped from the name; everything after
// ns/op is scanned by metricCol.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.eE+]+) ns/op(.*)$`)

// metricCol matches one "<value> <unit>/op" column after ns/op —
// b.ReportMetric output and the -benchmem B/op and allocs/op columns
// alike.
var metricCol = regexp.MustCompile(`([\d.eE+-]+) ([\w-]+)/op`)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	RPCsPerOp  float64            `json:"rpcs_per_op,omitempty"`
	BPerOp     float64            `json:"b_per_op"`
	AllocsOp   int64              `json:"allocs_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	Suite      string             `json:"suite"`
	Go         string             `json:"go"`
	CPU        string             `json:"cpu,omitempty"`
	Benchmarks []result           `json:"benchmarks"`
	Derived    map[string]float64 `json:"derived,omitempty"`
}

func main() {
	in := flag.String("in", "-", "bench output to read (- for stdin)")
	out := flag.String("out", "-", "JSON file to write (- for stdout)")
	suite := flag.String("suite", "resolve", "suite label recorded in the output")
	flag.Parse()

	src := io.Reader(os.Stdin)
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}

	rep := report{Suite: *suite, Go: runtime.Version()}
	cpuLine := regexp.MustCompile(`^cpu: (.+)$`)
	sc := bufio.NewScanner(src)
	for sc.Scan() {
		line := sc.Text()
		if m := cpuLine.FindStringSubmatch(line); m != nil {
			rep.CPU = m[1]
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		r := result{Name: m[1]}
		r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		for _, col := range metricCol.FindAllStringSubmatch(m[4], -1) {
			v, err := strconv.ParseFloat(col[1], 64)
			if err != nil {
				continue
			}
			switch col[2] {
			case "B":
				r.BPerOp = v
			case "allocs":
				r.AllocsOp = int64(v)
			case "rpcs":
				// Keep the dedicated field earlier reports used, and the
				// generic entry, so consumers of either shape keep working.
				r.RPCsPerOp = v
				fallthrough
			default:
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[col[2]] = v
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in %s", *in))
	}

	ns := func(name string) float64 {
		for _, r := range rep.Benchmarks {
			if r.Name == name {
				return r.NsPerOp
			}
		}
		return 0
	}
	if cold, hot := ns("BenchmarkDiscover"), ns("BenchmarkResolveHot"); cold > 0 && hot > 0 {
		rep.Derived = map[string]float64{
			"hot_speedup_vs_discover": round2(cold / hot),
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
}

func round2(f float64) float64 {
	return float64(int64(f*100+0.5)) / 100
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
