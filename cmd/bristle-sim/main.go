// Command bristle-sim regenerates the tables and figures of the Bristle
// paper's evaluation (Hsiao & King, IPDPS 2003).
//
// Usage:
//
//	bristle-sim [flags] <experiment>
//
// Experiments: fig3, fig7, fig8, fig9, table1, all.
//
// Flags:
//
//	-scale laptop|paper   parameter scale (default laptop)
//	-seed N               base random seed
//	-csv                  emit CSV instead of aligned tables
//
// Every run is deterministic for a fixed seed and scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bristle/internal/experiments"
	"bristle/internal/metrics"
)

func main() {
	scale := flag.String("scale", "laptop", "parameter scale: laptop or paper")
	seed := flag.Int64("seed", 1, "base random seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	substrate := flag.String("substrate", "ring", "overlay substrate for fig7: ring or chord")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	paper := false
	switch *scale {
	case "laptop":
	case "paper":
		paper = true
	default:
		fmt.Fprintf(os.Stderr, "bristle-sim: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	which := flag.Arg(0)
	run := func(name string) bool { return which == name || which == "all" }
	ran := false
	start := time.Now()

	if run("table1") {
		ran = true
		cfg := experiments.DefaultTable1()
		cfg.Seed = *seed
		if paper {
			cfg.Stationary, cfg.Mobile, cfg.Sessions, cfg.Routers = 2000, 1000, 2000, 2600
		}
		rows, err := experiments.RunTable1(cfg)
		exitOn(err)
		emit(experiments.RenderTable1(rows), table1CSV(rows), *csv)
	}
	if run("fig3") {
		ran = true
		cfg := experiments.DefaultFig3()
		cfg.Seed = *seed
		if paper {
			cfg.EmpiricalN, cfg.Routers = 4096, 1200
		}
		rows, err := experiments.RunFig3(cfg)
		exitOn(err)
		emit(experiments.RenderFig3(rows), fig3CSV(rows), *csv)
	}
	if run("fig7") {
		ran = true
		cfg := experiments.DefaultFig7()
		cfg.Seed = *seed
		if paper {
			cfg = experiments.PaperFig7()
			cfg.Seed = *seed
		}
		cfg.Substrate = *substrate
		rows, err := experiments.RunFig7(cfg)
		exitOn(err)
		emit(experiments.RenderFig7(rows), fig7CSV(rows), *csv)
	}
	if run("fig8") {
		ran = true
		cfg := experiments.DefaultFig8()
		cfg.Seed = *seed
		if paper {
			cfg = experiments.PaperFig8()
			cfg.Seed = *seed
		}
		res, err := experiments.RunFig8(cfg)
		exitOn(err)
		emit(experiments.RenderFig8(res), fig8CSV(res), *csv)
	}
	if run("datachurn") {
		ran = true
		cfg := experiments.DefaultDataChurn()
		cfg.Seed = *seed
		if paper {
			cfg.Stationary, cfg.Mobile, cfg.Items, cfg.Routers = 1000, 600, 2000, 2600
		}
		rows, err := experiments.RunDataChurn(cfg)
		exitOn(err)
		emit(experiments.RenderDataChurn(rows), dataChurnCSV(rows), *csv)
	}
	if run("scaling") {
		ran = true
		cfg := experiments.DefaultScaling()
		cfg.Seed = *seed
		if paper {
			cfg.Sizes = append(cfg.Sizes, 8192, 16384)
		}
		rows, err := experiments.RunScaling(cfg)
		exitOn(err)
		emit(experiments.RenderScaling(rows), scalingCSV(rows), *csv)
	}
	if run("eq1") {
		ran = true
		cfg := experiments.DefaultEq1()
		cfg.Seed = *seed
		if paper {
			cfg.Stationary, cfg.Routes, cfg.Routers = 2000, 10000, 2600
		}
		rows, err := experiments.RunEq1(cfg)
		exitOn(err)
		emit(experiments.RenderEq1(rows), eq1CSV(rows), *csv)
	}
	if run("fig9") {
		ran = true
		cfg := experiments.DefaultFig9()
		cfg.Seed = *seed
		if paper {
			cfg = experiments.PaperFig9()
			cfg.Seed = *seed
		}
		rows, err := experiments.RunFig9(cfg)
		exitOn(err)
		emit(experiments.RenderFig9(rows), fig9CSV(rows), *csv)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "bristle-sim: unknown experiment %q\n", which)
		usage()
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
}

func usage() {
	fmt.Fprintf(os.Stderr, `bristle-sim regenerates the Bristle paper's evaluation.

usage: bristle-sim [flags] <experiment>

experiments:
  table1   Type A / Type B / Bristle design comparison (measured)
  fig3     LDT responsibility: member-only vs non-member-only
  fig7     routing hops & RDP: scrambled vs clustered naming
  fig8     LDT adaptation to workload and heterogeneity
  fig9     LDT edge cost with vs without network locality
  eq1      Equation (1) validation: routing disciplines under clustered naming
  scaling  O(log N) hops/state validation across both substrates
  datachurn  stored-data availability & repair traffic under movement (§1)
  all      everything above

flags:
`)
	flag.PrintDefaults()
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "bristle-sim: %v\n", err)
		os.Exit(1)
	}
}

func emit(table, csv string, wantCSV bool) {
	if wantCSV {
		fmt.Print(csv)
	} else {
		fmt.Println(table)
	}
}

func table1CSV(rows []experiments.Table1Row) string {
	t := metrics.NewTable("design", "infrastructure", "delivery_pct", "delivery_after_fail_pct",
		"cost_penalty", "maint_per_move", "end_to_end")
	for _, r := range rows {
		t.AddRow(r.Design, r.Infrastructure, r.DeliveryPct, r.DeliveryAfterFailPct,
			r.CostPenalty, r.MaintPerMove, r.EndToEnd)
	}
	return t.CSV()
}

func fig3CSV(rows []experiments.Fig3Row) string {
	t := metrics.NewTable("mobile_frac", "analytic_member", "analytic_nonmember",
		"empirical_member", "empirical_nonmember")
	for _, r := range rows {
		t.AddRow(r.MobileFrac, r.AnalyticMemberOnly, r.AnalyticNonMemberOnly,
			r.EmpiricalMemberOnly, r.EmpiricalNonMemberOnly)
	}
	return t.CSV()
}

func fig7CSV(rows []experiments.Fig7Row) string {
	t := metrics.NewTable("mobile_frac", "scrambled_hops", "clustered_hops",
		"scrambled_cost", "clustered_cost", "rdp_hops", "rdp_cost")
	for _, r := range rows {
		t.AddRow(r.MobileFrac, r.ScrambledHops, r.ClusteredHops,
			r.ScrambledCost, r.ClusteredCost, r.RDPHops, r.RDPCost)
	}
	return t.CSV()
}

func fig8CSV(res *experiments.Fig8Result) string {
	t := metrics.NewTable("max_capacity", "mean_depth", "max_depth")
	for _, r := range res.Levels {
		t.AddRow(r.MaxCapacity, r.MeanDepth, r.MaxDepth)
	}
	u := metrics.NewTable("tree", "node_rank", "capacity", "assigned", "is_root")
	for _, n := range res.Nodes {
		u.AddRow(n.Tree+1, n.NodeRank, n.Capacity, n.Assigned, n.IsRoot)
	}
	return t.CSV() + u.CSV()
}

func dataChurnCSV(rows []experiments.DataChurnRow) string {
	t := metrics.NewTable("design", "availability_pct", "transfers_per_move", "repaired_pct")
	for _, r := range rows {
		t.AddRow(r.Design, r.AvailabilityPct, r.TransfersPerMove, r.RepairedPct)
	}
	return t.CSV()
}

func scalingCSV(rows []experiments.ScalingRow) string {
	t := metrics.NewTable("substrate", "n", "mean_hops", "p99_hops", "hops_per_log", "mean_state", "max_state")
	for _, r := range rows {
		t.AddRow(r.Substrate, r.N, r.MeanHops, r.P99Hops, r.HopsPerLog, r.MeanState, r.MaxState)
	}
	return t.CSV()
}

func eq1CSV(rows []experiments.Eq1Row) string {
	t := metrics.NewTable("mobile_frac", "shorter_arc", "uni_prefer", "uni_unopt", "uni_prefer_hops")
	for _, r := range rows {
		t.AddRow(r.MobileFrac, r.ShorterArc, r.UniPreferring, r.UniUnoptimized, r.UniPreferringHops)
	}
	return t.CSV()
}

func fig9CSV(rows []experiments.Fig9Row) string {
	t := metrics.NewTable("density", "nodes", "with_locality", "without_locality", "improvement")
	for _, r := range rows {
		t.AddRow(r.Frac, r.Nodes, r.WithLocality, r.WithoutLocality, r.LocalityImprovement)
	}
	return t.CSV()
}
