package main

import (
	"strings"
	"testing"

	"bristle/internal/experiments"
)

func TestTable1CSV(t *testing.T) {
	rows := []experiments.Table1Row{
		{Design: "Bristle", Infrastructure: "IP", DeliveryPct: 100, DeliveryAfterFailPct: 99,
			CostPenalty: 1.0, MaintPerMove: 20, EndToEnd: true},
	}
	out := table1CSV(rows)
	if !strings.HasPrefix(out, "design,infrastructure,") {
		t.Fatalf("header missing: %q", out)
	}
	if !strings.Contains(out, "Bristle,IP,100,99,1,20,true") {
		t.Fatalf("row malformed: %q", out)
	}
}

func TestFig7CSV(t *testing.T) {
	rows := []experiments.Fig7Row{{MobileFrac: 0.5, ScrambledHops: 6.5, ClusteredHops: 4,
		ScrambledCost: 160, ClusteredCost: 100, RDPHops: 1.625, RDPCost: 1.6}}
	out := fig7CSV(rows)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[1], "0.500,6.500,4,160,100,1.625,1.600") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestFig3CSV(t *testing.T) {
	rows := []experiments.Fig3Row{{MobileFrac: 0.1, AnalyticMemberOnly: 2.2,
		AnalyticNonMemberOnly: 44.4, EmpiricalMemberOnly: 1, EmpiricalNonMemberOnly: 3}}
	if out := fig3CSV(rows); !strings.Contains(out, "0.100,2.200,44.400,1,3") {
		t.Fatalf("csv = %q", out)
	}
}

func TestFig8CSV(t *testing.T) {
	res := &experiments.Fig8Result{
		Levels: []experiments.Fig8LevelRow{{MaxCapacity: 3, MeanDepth: 4.3, MaxDepth: 6}},
		Nodes:  []experiments.Fig8NodeRow{{Tree: 0, NodeRank: 1, Capacity: 15, Assigned: 5, IsRoot: true}},
	}
	out := fig8CSV(res)
	if !strings.Contains(out, "3,4.300,6") || !strings.Contains(out, "1,1,15,5,true") {
		t.Fatalf("csv = %q", out)
	}
}

func TestFig9CSV(t *testing.T) {
	rows := []experiments.Fig9Row{{Frac: 0.5, Nodes: 1000, WithLocality: 11.7,
		WithoutLocality: 32, LocalityImprovement: 2.7}}
	if out := fig9CSV(rows); !strings.Contains(out, "0.500,1000,11.700,32,2.700") {
		t.Fatalf("csv = %q", out)
	}
}

func TestEq1CSV(t *testing.T) {
	rows := []experiments.Eq1Row{{MobileFrac: 0.5, ShorterArc: 0, UniPreferring: 0.05,
		UniUnoptimized: 0.06, UniPreferringHops: 4.2}}
	if out := eq1CSV(rows); !strings.Contains(out, "0.500,0,0.050,0.060,4.200") {
		t.Fatalf("csv = %q", out)
	}
}

func TestScalingCSV(t *testing.T) {
	rows := []experiments.ScalingRow{{Substrate: "ring", N: 1024, MeanHops: 5,
		P99Hops: 9, MeanState: 22.7, MaxState: 27, HopsPerLog: 0.5}}
	if out := scalingCSV(rows); !strings.Contains(out, "ring,1024,5,9,0.500,22.700,27") {
		t.Fatalf("csv = %q", out)
	}
}
