// Command bristled runs a live Bristle node over TCP: a stationary
// location server, or a mobile node that can re-bind to new ports and
// push location updates to registered watchers.
//
// Start a stationary bootstrap:
//
//	bristled -name alpha -listen 127.0.0.1:7001
//
// Join more stationary nodes:
//
//	bristled -name beta -listen 127.0.0.1:7002 -join 127.0.0.1:7001
//
// Run a mobile node that re-binds every 10 seconds (demonstrating
// publish + LDT updates over real sockets):
//
//	bristled -name roamer -mobile -rebind 10s -join 127.0.0.1:7001
//
// Watch a key and print proactive updates as they arrive:
//
//	bristled -name watcher -join 127.0.0.1:7001 -watch roamer
//
// Verified admission: give nodes self-certifying identities (the key
// becomes H(pubkey), joins carry a signed proof) and make the bootstrap
// reject unproven claims:
//
//	bristled -name alpha -identity-seed alpha-secret -verify-joins -listen 127.0.0.1:7001
//	bristled -name roamer -mobile -identity-seed roamer-secret -join 127.0.0.1:7001
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"bristle/internal/hashkey"
	"bristle/internal/live"
	"bristle/internal/metrics"
	"bristle/internal/transport"
)

func main() {
	name := flag.String("name", "", "stable node name (hashed into the node key)")
	listen := flag.String("listen", "127.0.0.1:0", "listen address")
	join := flag.String("join", "", "bootstrap node address to join via")
	mobile := flag.Bool("mobile", false, "run as a mobile node")
	capacity := flag.Float64("capacity", 4, "advertised capacity (LDT scheduling)")
	region := flag.String("region", "", "stationary: this node's region label (region-clustered key placement)")
	regions := flag.String("regions", "", "comma-separated full region set; must be identical on every node")
	lease := flag.Duration("lease", 30*time.Second, "location lease TTL (0 = forever)")
	identitySeed := flag.String("identity-seed", "", "derive a self-certifying identity from this seed string (key becomes H(pubkey); joins carry a signed proof)")
	freshIdentity := flag.Bool("identity", false, "generate a fresh random self-certifying identity for this run")
	verifyJoins := flag.Bool("verify-joins", false, "reject join requests that carry no valid identity proof")
	observer := flag.Bool("observer", false, "join as an observer: fetch the stationary directory without entering ring membership")
	rebind := flag.Duration("rebind", 0, "mobile: re-bind to a new port at this interval")
	watch := flag.String("watch", "", "register interest in this node and print its updates (a name, or the 16-digit hex key a node prints at startup — the handle for identity-keyed nodes)")
	gossip := flag.Duration("gossip", 2*time.Second, "anti-entropy gossip interval")
	stats := flag.Duration("stats", 30*time.Second, "resilience counter log interval (0 = only at exit)")
	opTimeout := flag.Duration("op-timeout", 30*time.Second, "deadline for each foreground protocol operation")
	noPool := flag.Bool("no-pool", false, "disable the multiplexed connection pool (dial per request)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (enables mutex/block profiling)")
	verbose := flag.Bool("v", false, "verbose protocol logging")
	flag.Parse()

	if *name == "" {
		fmt.Fprintln(os.Stderr, "bristled: -name is required")
		os.Exit(2)
	}

	if *pprofAddr != "" {
		// Sampled lock profiles: cheap enough for a long-lived daemon and
		// exactly what's needed to inspect contention on the resolve hot
		// path (go tool pprof http://ADDR/debug/pprof/mutex or /block).
		runtime.SetMutexProfileFraction(100)
		runtime.SetBlockProfileRate(100)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "bristled: pprof server: %v\n", err)
			}
		}()
		fmt.Printf("pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	counters := metrics.NewCounters()
	gauges := metrics.NewGauges()
	opts := []live.Option{
		live.WithCapacity(*capacity),
		live.WithLease(*lease),
		live.WithCounters(counters),
		live.WithGauges(gauges),
	}
	if *mobile {
		opts = append(opts, live.WithMobile())
	}
	if *region != "" {
		opts = append(opts, live.WithRegion(*region, splitCSV(*regions)...))
	}
	if *noPool {
		opts = append(opts, live.WithoutPool())
	}
	switch {
	case *identitySeed != "":
		opts = append(opts, live.WithIdentity(hashkey.IdentityFromSeed([]byte(*identitySeed))))
	case *freshIdentity:
		id, err := hashkey.NewIdentity()
		if err != nil {
			fatal(err)
		}
		opts = append(opts, live.WithIdentity(id))
	}
	if *verifyJoins {
		opts = append(opts, live.WithVerifiedJoins())
	}
	if *observer {
		opts = append(opts, live.WithObserverJoin())
	}
	if *verbose {
		opts = append(opts, live.WithLogger(log.New(os.Stderr, "", log.Ltime|log.Lmicroseconds)))
	}
	node, err := live.New(*name, &transport.TCP{}, opts...)
	if err != nil {
		fatal(err)
	}
	if err := node.Start(*listen); err != nil {
		fatal(err)
	}
	defer node.Close()
	if *region != "" {
		fmt.Printf("node %s key=%v region=%s listening on %s\n", *name, node.Key(), *region, node.Addr())
	} else {
		fmt.Printf("node %s key=%v listening on %s\n", *name, node.Key(), node.Addr())
	}

	// ctx ends on the first interrupt; every foreground operation also
	// gets its own -op-timeout deadline on top.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *join != "" {
		if err := withDeadline(ctx, *opTimeout, func(ctx context.Context) error {
			return node.JoinViaContext(ctx, *join)
		}); err != nil {
			fatal(err)
		}
		fmt.Printf("joined via %s; %d peers known\n", *join, len(node.KnownPeers()))
	}
	if err := withDeadline(ctx, *opTimeout, node.PublishContext); err != nil {
		fmt.Fprintf(os.Stderr, "bristled: initial publish: %v\n", err)
	}

	// Gossip, lease renewal, and suspect probing run as library
	// maintenance loops.
	stopMaint := node.StartMaintenance(live.MaintainConfig{
		GossipInterval: *gossip,
		ProbeInterval:  *gossip * 2,
		Rand:           rand.New(rand.NewSource(time.Now().UnixNano())),
	})
	defer stopMaint()

	prevStats := node.Stats()
	var statsTick <-chan time.Time
	if *stats > 0 {
		t := time.NewTicker(*stats)
		defer t.Stop()
		statsTick = t.C
	}

	var rebindTick <-chan time.Time
	if *mobile && *rebind > 0 {
		t := time.NewTicker(*rebind)
		defer t.Stop()
		rebindTick = t.C
	}

	if *watch != "" {
		go watchLoop(ctx, node, *watch, *lease, *opTimeout)
	}

	for {
		select {
		case <-ctx.Done():
			fmt.Printf("\nshutting down; counters: %s gauges: %s\n", counters, gauges)
			return
		case <-statsTick:
			// Per-interval deltas show what the node is doing right now;
			// cumulative totals only ever grow and bury the signal.
			st := node.Stats()
			delta := formatDelta(st.CountersDelta(prevStats))
			prevStats = st
			line := fmt.Sprintf("stats: Δ %s | %s", delta, gauges)
			if len(st.Suspects) > 0 {
				line += fmt.Sprintf(" suspects=%v", st.Suspects)
			}
			if rtts := formatRTTs(st.PeerRTTs, 3); rtts != "" {
				line += " rtt " + rtts
			}
			fmt.Println(line)
		case <-rebindTick:
			if err := withDeadline(ctx, *opTimeout, func(ctx context.Context) error {
				return node.RebindContext(ctx, "127.0.0.1:0")
			}); err != nil {
				fmt.Fprintf(os.Stderr, "rebind: %v\n", err)
				continue
			}
			fmt.Printf("moved to %s (published + LDT update pushed)\n", node.Addr())
		case up := <-node.Updates():
			fmt.Printf("update: %v is now at %s\n", up.Key, up.Addr)
		}
	}
}

// formatRTTs renders the nearest max measured peers as
// "addr=rtt(n=samples[,suspect])" pairs; PeerRTTs arrives sorted by
// ascending estimate, so a truncated view is the closest peers.
func formatRTTs(rtts []live.PeerRTT, max int) string {
	if len(rtts) > max {
		rtts = rtts[:max]
	}
	var b strings.Builder
	for i, p := range rtts {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s(n=%d", p.Addr, p.RTT.Round(100*time.Microsecond), p.Samples)
		if p.Suspect {
			b.WriteString(",suspect")
		}
		b.WriteByte(')')
	}
	return b.String()
}

// splitCSV splits a comma-separated flag value, trimming blanks.
func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// formatDelta renders an interval diff as sorted "name=+value" pairs.
func formatDelta(d map[string]uint64) string {
	if len(d) == 0 {
		return "(quiet)"
	}
	names := make([]string, 0, len(d))
	for k := range d {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, k := range names {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=+%d", k, d[k])
	}
	return b.String()
}

// withDeadline runs op under parent plus a per-operation timeout.
func withDeadline(parent context.Context, d time.Duration, op func(context.Context) error) error {
	ctx, cancel := context.WithTimeout(parent, d)
	defer cancel()
	return op(ctx)
}

// watchKey resolves the -watch argument to a ring key: a 16-digit hex
// key is used verbatim (the startup-printed handle — the only stable
// one for nodes whose key is derived from an identity, not a name);
// anything else is hashed as a node name.
func watchKey(s string) hashkey.Key {
	if len(s) == 16 {
		if v, err := strconv.ParseUint(s, 16, 64); err == nil {
			return hashkey.Key(v)
		}
	}
	return hashkey.FromName(s)
}

// watchLoop resolves the watched node and registers interest, retrying
// until it succeeds (the watched node may join later) or ctx ends.
// Registrations are leased soft state — they expire with this node's
// lease TTL — so with a non-zero lease the loop keeps renewing the
// registration (against the target's current address) well inside the
// lease window; with a zero lease one registration lasts forever.
func watchLoop(ctx context.Context, node *live.Node, watched string, lease, opTimeout time.Duration) {
	key := watchKey(watched)
	registered := false
	for ctx.Err() == nil {
		err := withDeadline(ctx, opTimeout, func(ctx context.Context) error {
			addr, err := node.DiscoverContext(ctx, key)
			if err != nil {
				return err
			}
			if err := node.RegisterWithContext(ctx, addr); err != nil {
				return err
			}
			if !registered {
				fmt.Printf("watching %s (key %v) at %s\n", watched, key, addr)
				registered = true
			}
			return nil
		})
		if err == nil && lease == 0 {
			return
		}
		wait := 2 * time.Second
		if err == nil {
			wait = lease / 2
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(wait):
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bristled: %v\n", err)
	os.Exit(1)
}
