// Command topogen generates GT-ITM-style transit-stub topologies and
// prints summary statistics or an edge list — the underlay model the
// Bristle evaluation runs on.
//
// Usage:
//
//	topogen [-n routers] [-seed N] [-edges] [-domains T,Tn,S,Sn]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"bristle/internal/metrics"
	"bristle/internal/topology"
)

func main() {
	n := flag.Int("n", 1000, "approximate number of routers")
	seed := flag.Int64("seed", 1, "random seed")
	edges := flag.Bool("edges", false, "print the full edge list instead of a summary")
	domains := flag.String("domains", "", "explicit T,Tn,S,Sn domain spec (overrides -n)")
	load := flag.String("load", "", "load a topology edge-list file instead of generating")
	flag.Parse()

	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		g, err := topology.ParseEdgeList(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
			os.Exit(1)
		}
		summarize(g, *edges)
		return
	}

	params := topology.DefaultTransitStub(*n)
	if *domains != "" {
		parts := strings.Split(*domains, ",")
		if len(parts) != 4 {
			fmt.Fprintln(os.Stderr, "topogen: -domains wants T,Tn,S,Sn")
			os.Exit(2)
		}
		vals := make([]int, 4)
		for i, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				fmt.Fprintf(os.Stderr, "topogen: bad -domains value %q\n", p)
				os.Exit(2)
			}
			vals[i] = v
		}
		params.TransitDomains = vals[0]
		params.TransitPerDomain = vals[1]
		params.StubsPerTransit = vals[2]
		params.StubPerDomain = vals[3]
	}

	g, err := topology.GenerateTransitStub(params, rand.New(rand.NewSource(*seed)))
	if err != nil {
		fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
		os.Exit(1)
	}

	summarize(g, *edges)
}

func summarize(g *topology.Graph, edges bool) {
	if edges {
		if err := topology.WriteEdgeList(os.Stdout, g); err != nil {
			fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	t := metrics.NewTable("metric", "value")
	t.AddRow("routers", g.NumRouters())
	t.AddRow("edges", g.NumEdges())
	t.AddRow("transit routers", len(g.TransitRouters()))
	t.AddRow("stub routers", len(g.StubRouters()))
	t.AddRow("connected", g.Connected())

	// Sample eccentricity-ish stats from router 0.
	dist := topology.Dijkstra(g, 0)
	var s metrics.Sample
	for _, d := range dist {
		s.Add(d)
	}
	t.AddRow("mean dist from r0", s.Mean())
	t.AddRow("max dist from r0", s.Max())
	fmt.Print(t.String())
}
