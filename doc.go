// Package bristle is a reproduction of "Bristle: A Mobile Structured
// Peer-to-Peer Architecture" (Hung-Chang Hsiao and Chung-Ta King,
// IPDPS 2003): a hash-based structured P2P overlay in which nodes may
// change their network attachment points without invalidating the
// distributed state that names them.
//
// The implementation lives under internal/:
//
//   - internal/core — Bristle itself: the stationary and mobile layers,
//     state-pairs with leases, _route/_discovery, register/update,
//     join/leave, and the scrambled vs clustered naming schemes.
//   - internal/overlay — the structured-overlay substrate (Tornado's
//     role): monotone greedy ring routing with leaf sets, proximity-
//     selected fingers, and churn repair.
//   - internal/ldt — capacity-aware location dissemination trees
//     (Figure 4), with locality-aware partitioning.
//   - internal/topology, internal/simnet — the GT-ITM-style transit-stub
//     underlay and the discrete-event/message-cost simulator.
//   - internal/baseline — the Type A (leave+rejoin) and Type B
//     (Mobile IP) comparison designs of Table 1.
//   - internal/experiments — one driver per table/figure of the paper's
//     evaluation.
//   - internal/wire, internal/transport, internal/live — a deployable
//     implementation of the location-management protocol over TCP: a
//     pooled zero-allocation codec under a sharded, context-first node
//     (no global lock on any request path; see DESIGN.md §13 for the
//     lock map and internal/live's package doc for the file tour).
//   - internal/loccache, internal/metrics, internal/harness — the
//     lease-aware location cache, counter/gauge registries, and the
//     seeded scenario harness with protocol invariant checkers.
//
// The root-level benchmarks (bench_test.go) regenerate each experiment;
// cmd/bristle-sim prints the paper-style tables. make bench records the
// live hot-path benchmarks into BENCH_*.json and make bench-gate fails
// regressions against them (cmd/benchgate).
package bristle
