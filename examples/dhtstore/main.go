// Dhtstore: the §2.3.2 availability property in action. A replicated
// key-value layer runs over the structured overlay; nodes fail in waves
// while an anti-entropy sweep rebalances placement — every object stays
// readable as long as repair outpaces correlated replica loss.
//
// Run with: go run ./examples/dhtstore
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bristle/internal/hashkey"
	"bristle/internal/overlay"
	"bristle/internal/simnet"
	"bristle/internal/store"
)

const (
	nodes       = 200
	objects     = 500
	replication = 3
	failWaves   = 5
	waveSize    = 12
)

func main() {
	rng := rand.New(rand.NewSource(21))
	ring := overlay.NewRing(overlay.DefaultConfig(), nil)
	for i := 0; i < nodes; i++ {
		for {
			if _, err := ring.AddNode(hashkey.Random(rng), simnet.NoHost); err == nil {
				break
			}
		}
	}
	kv := store.New(ring, replication)

	// Publish the corpus.
	keys := make([]hashkey.Key, objects)
	client := ring.Refs()[0].ID
	for i := range keys {
		keys[i] = hashkey.FromName(fmt.Sprintf("object-%04d", i))
		if _, err := kv.Put(client, keys[i], []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("stored %d objects ×%d replicas on %d nodes (%d copies)\n",
		objects, replication, ring.Size(), kv.TotalCopies())

	// Failure waves with anti-entropy repair between them.
	for wave := 1; wave <= failWaves; wave++ {
		killed := 0
		for killed < waveSize {
			refs := ring.Refs()
			victim := refs[rng.Intn(len(refs))]
			if victim.ID == client {
				continue
			}
			if err := ring.RemoveNode(victim.ID); err != nil {
				continue
			}
			kv.DropNode(victim.ID)
			killed++
		}
		ring.Stabilize()
		moved := kv.Rebalance()

		readable := 0
		for _, k := range keys {
			if _, err := kv.Get(client, k); err == nil {
				readable++
			}
		}
		fmt.Printf("wave %d: %d nodes left, repaired %d copies, %d/%d objects readable, placement violations: %d\n",
			wave, ring.Size(), moved, readable, objects, kv.CheckPlacement())
		if readable != objects {
			log.Fatalf("data loss despite repair: %d/%d", readable, objects)
		}
	}

	fmt.Printf("\nafter %d waves (%d of %d nodes failed): zero loss; %d fallback reads, %d transfers total\n",
		failWaves, failWaves*waveSize, nodes, kv.Stats.GetFallbacks, kv.Stats.Transfers)
	fmt.Println("this is the availability argument Bristle inherits from its substrate (§2.3.2)")
}
