// Filelocator: a distributed file-location service where files live on
// mobile laptops. Compares Bristle against a Type A overlay (movement =
// leave + rejoin) on the same underlay: after owners roam, Bristle still
// finds every file; Type A loses the bindings captured before the move.
//
// Run with: go run ./examples/filelocator
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bristle/internal/baseline"
	"bristle/internal/core"
	"bristle/internal/overlay"
	"bristle/internal/simnet"
	"bristle/internal/topology"
)

const (
	numStationary = 80
	numMobile     = 40
	numFiles      = 200
	moveRounds    = 3
)

func main() {
	rng := rand.New(rand.NewSource(11))
	graph, err := topology.GenerateTransitStub(topology.DefaultTransitStub(400), rng)
	if err != nil {
		log.Fatal(err)
	}

	fileNames := make([]string, numFiles)
	for i := range fileNames {
		fileNames[i] = fmt.Sprintf("dataset-%03d.tar", i)
	}

	fmt.Printf("%d files owned by %d mobile laptops, %d stationary peers, %d move rounds\n\n",
		numFiles, numMobile, numStationary, moveRounds)

	bristleFound := runBristle(graph, fileNames, rng)
	typeAFound := runTypeA(graph, fileNames, rng)

	fmt.Printf("\nresults after %d rounds of movement:\n", moveRounds)
	fmt.Printf("  Bristle:  %3d/%d files still locatable (%.1f%%)\n",
		bristleFound, numFiles, 100*float64(bristleFound)/numFiles)
	fmt.Printf("  Type A:   %3d/%d files still locatable (%.1f%%)\n",
		typeAFound, numFiles, 100*float64(typeAFound)/numFiles)
}

// runBristle registers each file with its mobile owner; lookups resolve
// the owner's key through the stationary layer after every move.
func runBristle(graph *topology.Graph, files []string, rng *rand.Rand) int {
	net := simnet.NewNetwork(graph, nil)
	bn := core.NewNetwork(core.Config{
		Naming:             core.Clustered,
		StationaryFraction: float64(numStationary) / (numStationary + numMobile),
		Overlay:            overlay.DefaultConfig(),
		ReplicationFactor:  3,
		UnitCost:           1,
		CacheResolved:      true,
	}, net, nil, rng)

	for i := 0; i < numStationary; i++ {
		if _, err := bn.AddPeer(core.Stationary, 1+float64(rng.Intn(15))); err != nil {
			log.Fatal(err)
		}
	}
	var owners []*core.Peer
	for i := 0; i < numMobile; i++ {
		p, err := bn.AddPeer(core.Mobile, 1+float64(rng.Intn(15)))
		if err != nil {
			log.Fatal(err)
		}
		owners = append(owners, p)
	}
	bn.RefreshEntries()
	bn.BuildRegistries()

	// File index: file name → owning mobile peer (captured once, before
	// any movement — the binding a real client would hold).
	index := make(map[string]*core.Peer, len(files))
	for i, f := range files {
		index[f] = owners[i%len(owners)]
	}
	for _, p := range owners {
		if _, err := bn.PublishLocation(p); err != nil {
			log.Fatal(err)
		}
	}

	// Owners roam; each move runs the location-update protocol.
	for round := 0; round < moveRounds; round++ {
		for _, p := range owners {
			if _, err := bn.MoveAndUpdate(p); err != nil {
				log.Fatal(err)
			}
		}
	}

	// A stationary client fetches every file: resolve the owner (same key
	// as before the moves!) and deliver.
	client := bn.Peers()[0]
	found := 0
	for _, f := range files {
		owner := index[f]
		if _, err := bn.SendDirect(client, owner); err == nil {
			found++
		}
	}
	fmt.Printf("  [bristle] discoveries: %d, misses: %d, LDT messages: %d\n",
		bn.Stats.Discoveries, bn.Stats.DiscoveryMisses, bn.Stats.UpdateMessages)
	return found
}

// runTypeA captures owner identities before movement; moves re-key the
// owners, so old bindings dangle.
func runTypeA(graph *topology.Graph, files []string, rng *rand.Rand) int {
	net := simnet.NewNetwork(graph, nil)
	a := baseline.NewTypeA(overlay.DefaultConfig(), net, rng)

	var stationary []*baseline.APeer
	for i := 0; i < numStationary; i++ {
		p, err := a.AddPeer(net.AttachHostRandom(rng), false)
		if err != nil {
			log.Fatal(err)
		}
		stationary = append(stationary, p)
	}
	var owners []*baseline.APeer
	for i := 0; i < numMobile; i++ {
		p, err := a.AddPeer(net.AttachHostRandom(rng), true)
		if err != nil {
			log.Fatal(err)
		}
		owners = append(owners, p)
	}

	type binding struct {
		owner *baseline.APeer
		epoch int
	}
	index := make(map[string]binding, len(files))
	for i, f := range files {
		o := owners[i%len(owners)]
		index[f] = binding{owner: o, epoch: o.Epoch}
	}

	for round := 0; round < moveRounds; round++ {
		for _, p := range owners {
			if err := a.Move(p); err != nil {
				log.Fatal(err)
			}
		}
	}

	client := stationary[0]
	found := 0
	for _, f := range files {
		b := index[f]
		_, _, ok, err := a.SendToIdentity(client, b.owner.Index, b.epoch)
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			found++
		}
	}
	fmt.Printf("  [type A]  maintenance messages spent on moves: %d\n",
		a.Stats.MaintenanceMessages)
	return found
}
