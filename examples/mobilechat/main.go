// Mobilechat: a presence/chat scenario over *live* Bristle nodes (real
// protocol frames over the in-memory transport; switch to transport.TCP
// for sockets). A mobile chat user roams across attachment points while
// three followers keep receiving messages — the end-to-end semantics
// Bristle preserves and Type A systems lose.
//
// Run with: go run ./examples/mobilechat
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"bristle/internal/live"
	"bristle/internal/transport"
)

func main() {
	mem := transport.NewMem()

	// The whole scenario runs under one deadline: any hang surfaces as a
	// context error instead of a stuck process.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Three stationary nodes form the location layer; one mobile user.
	boot := startNode(mem, "server-1", live.WithCapacity(6))
	s2 := startNode(mem, "server-2", live.WithCapacity(5))
	s3 := startNode(mem, "server-3", live.WithCapacity(4))
	alice := startNode(mem, "alice", live.WithCapacity(2), live.WithMobile())
	followers := []*live.Node{
		startNode(mem, "bob", live.WithCapacity(3)),
		startNode(mem, "carol", live.WithCapacity(2)),
		startNode(mem, "dave", live.WithCapacity(1)),
	}
	all := append([]*live.Node{s2, s3, alice}, followers...)
	for _, n := range all {
		must(n.JoinViaContext(ctx, boot.Addr()))
	}
	rng := rand.New(rand.NewSource(1))
	for round := 0; round < 4; round++ {
		for _, n := range append(all, boot) {
			n.GossipOnce(rng)
		}
	}

	// Alice publishes her location; followers register interest.
	must(alice.PublishContext(ctx))
	for _, f := range followers {
		addr, err := f.DiscoverContext(ctx, alice.Key())
		must(err)
		must(f.RegisterWithContext(ctx, addr))
	}
	fmt.Printf("alice online at %s with %d followers\n", alice.Addr(), len(alice.Registry()))

	// Alice roams: each rebind republishes and pushes an LDT update.
	for hop := 1; hop <= 3; hop++ {
		must(alice.RebindContext(ctx, ""))
		fmt.Printf("\nalice moved to %s\n", alice.Addr())

		for _, f := range followers {
			select {
			case up := <-f.Updates():
				fmt.Printf("  %s learned alice's new address %s (proactive LDT push)\n",
					nameOf(f), up.Addr)
			case <-time.After(3 * time.Second):
				log.Fatalf("%s never heard about alice's move", nameOf(f))
			}
			// Deliver a chat message to the fresh address.
			if err := f.PingContext(ctx, alice.Addr()); err != nil {
				log.Fatalf("%s → alice failed: %v", nameOf(f), err)
			}
			fmt.Printf("  %s → alice: \"still here after hop %d?\" delivered ✓\n", nameOf(f), hop)
		}
	}

	// A latecomer who never registered resolves Alice reactively.
	late := startNode(mem, "erin", live.WithCapacity(2))
	must(late.JoinViaContext(ctx, boot.Addr()))
	for round := 0; round < 3; round++ {
		late.GossipOnce(rng)
	}
	addr, err := late.DiscoverContext(ctx, alice.Key())
	must(err)
	fmt.Printf("\nerin (late joiner) resolved alice reactively at %s ✓\n", addr)

	for _, n := range append(all, boot, late) {
		n.Close()
	}
}

var names = map[*live.Node]string{}

func startNode(tr transport.Transport, name string, opts ...live.Option) *live.Node {
	n, err := live.New(name, tr, opts...)
	must(err)
	must(n.Start(""))
	names[n] = name
	return n
}

func nameOf(n *live.Node) string { return names[n] }

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
