// Mobilechat: a presence/chat scenario over *live* Bristle nodes (real
// protocol frames over the in-memory transport; switch to transport.TCP
// for sockets). A mobile chat user roams across attachment points while
// three followers keep receiving messages — the end-to-end semantics
// Bristle preserves and Type A systems lose.
//
// Run with: go run ./examples/mobilechat
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"bristle/internal/live"
	"bristle/internal/transport"
)

func main() {
	mem := transport.NewMem()

	// Three stationary nodes form the location layer; one mobile user.
	boot := startNode(mem, live.Config{Name: "server-1", Capacity: 6})
	s2 := startNode(mem, live.Config{Name: "server-2", Capacity: 5})
	s3 := startNode(mem, live.Config{Name: "server-3", Capacity: 4})
	alice := startNode(mem, live.Config{Name: "alice", Capacity: 2, Mobile: true})
	followers := []*live.Node{
		startNode(mem, live.Config{Name: "bob", Capacity: 3}),
		startNode(mem, live.Config{Name: "carol", Capacity: 2}),
		startNode(mem, live.Config{Name: "dave", Capacity: 1}),
	}
	all := append([]*live.Node{s2, s3, alice}, followers...)
	for _, n := range all {
		must(n.JoinVia(boot.Addr()))
	}
	rng := rand.New(rand.NewSource(1))
	for round := 0; round < 4; round++ {
		for _, n := range append(all, boot) {
			n.GossipOnce(rng)
		}
	}

	// Alice publishes her location; followers register interest.
	must(alice.Publish())
	for _, f := range followers {
		addr, err := f.Discover(alice.Key())
		must(err)
		must(f.RegisterWith(addr))
	}
	fmt.Printf("alice online at %s with %d followers\n", alice.Addr(), len(alice.Registry()))

	// Alice roams: each rebind republishes and pushes an LDT update.
	for hop := 1; hop <= 3; hop++ {
		must(alice.Rebind(""))
		fmt.Printf("\nalice moved to %s\n", alice.Addr())

		for _, f := range followers {
			select {
			case up := <-f.Updates():
				fmt.Printf("  %s learned alice's new address %s (proactive LDT push)\n",
					nameOf(f), up.Addr)
			case <-time.After(3 * time.Second):
				log.Fatalf("%s never heard about alice's move", nameOf(f))
			}
			// Deliver a chat message to the fresh address.
			if err := f.Ping(alice.Addr()); err != nil {
				log.Fatalf("%s → alice failed: %v", nameOf(f), err)
			}
			fmt.Printf("  %s → alice: \"still here after hop %d?\" delivered ✓\n", nameOf(f), hop)
		}
	}

	// A latecomer who never registered resolves Alice reactively.
	late := startNode(mem, live.Config{Name: "erin", Capacity: 2})
	must(late.JoinVia(boot.Addr()))
	for round := 0; round < 3; round++ {
		late.GossipOnce(rng)
	}
	addr, err := late.Discover(alice.Key())
	must(err)
	fmt.Printf("\nerin (late joiner) resolved alice reactively at %s ✓\n", addr)

	for _, n := range append(all, boot, late) {
		n.Close()
	}
}

var names = map[*live.Node]string{}

func startNode(tr transport.Transport, cfg live.Config) *live.Node {
	n := live.NewNode(cfg, tr)
	must(n.Start(""))
	names[n] = cfg.Name
	return n
}

func nameOf(n *live.Node) string { return names[n] }

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
