// Quickstart: build a small Bristle network, move a mobile peer around,
// and watch the system keep resolving it — the paper's core promise that
// a node's state survives movement (Section 1).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bristle/internal/core"
	"bristle/internal/overlay"
	"bristle/internal/simnet"
	"bristle/internal/topology"
)

func main() {
	// 1. An underlay: a transit-stub network of ~300 routers.
	rng := rand.New(rand.NewSource(7))
	graph, err := topology.GenerateTransitStub(topology.DefaultTransitStub(300), rng)
	if err != nil {
		log.Fatal(err)
	}
	net := simnet.NewNetwork(graph, nil)

	// 2. A Bristle deployment: 60 stationary peers form the location
	// layer; 40 mobile peers roam. Clustered naming keeps stationary
	// routes free of mobile forwarders.
	bn := core.NewNetwork(core.Config{
		Naming:             core.Clustered,
		StationaryFraction: 0.6,
		Overlay:            overlay.DefaultConfig(),
		ReplicationFactor:  3,
		UnitCost:           1,
		LDTLocality:        true,
		CacheResolved:      true,
	}, net, nil, rng)

	for i := 0; i < 60; i++ {
		if _, err := bn.AddPeer(core.Stationary, 1+float64(rng.Intn(15))); err != nil {
			log.Fatal(err)
		}
	}
	var mobiles []*core.Peer
	for i := 0; i < 40; i++ {
		p, err := bn.AddPeer(core.Mobile, 1+float64(rng.Intn(15)))
		if err != nil {
			log.Fatal(err)
		}
		mobiles = append(mobiles, p)
	}
	bn.RefreshEntries()
	bn.BuildRegistries() // overlay neighbors register interest (Figure 5)

	roamer := mobiles[0]
	fmt.Printf("roamer: peer %d, key %v, %d registered watchers\n",
		roamer.ID, roamer.Key, len(roamer.Registry()))

	// 3. Publish the roamer's location and resolve it from a stationary
	// correspondent.
	if _, err := bn.PublishLocation(roamer); err != nil {
		log.Fatal(err)
	}
	correspondent := bn.Peers()[0]
	rec, op, err := bn.Discover(correspondent, roamer.Key)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered roamer at %v in %d hops (cost %.1f)\n", rec.Addr, op.Hops, op.Cost)

	// 4. The roamer moves three times. Each move triggers the full
	// location-update protocol: publish to the stationary layer + push
	// through the capacity-aware LDT to every watcher.
	for i := 0; i < 3; i++ {
		us, err := bn.MoveAndUpdate(roamer)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("move %d: LDT depth %d delivered %d updates (cost %.1f); publish took %d hops\n",
			i+1, us.Depth, us.Messages, us.Cost, us.Publish.Hops)

		// The correspondent still reaches the roamer directly — end-to-end
		// semantics survive movement.
		ss, err := bn.SendDirect(correspondent, roamer)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("        correspondent → roamer delivered (cost %.1f, discovery needed: %v)\n",
			ss.Cost, ss.Discovered)
	}

	// 5. Data routing across the mobile layer (Figure 2): route a request
	// from a stationary peer to the peer owning the roamer's key.
	rs, err := bn.RouteData(correspondent, roamer.Key)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("data route reached peer %d in %d hops (%d discoveries, cost %.1f)\n",
		rs.Dest.ID, rs.TotalHops, rs.Discoveries, rs.Cost)

	fmt.Printf("\ntotals: %d publishes, %d discoveries (%d misses), %d LDT messages\n",
		bn.Stats.Publishes, bn.Stats.Discoveries, bn.Stats.DiscoveryMisses, bn.Stats.UpdateMessages)
}
