module bristle

go 1.22
