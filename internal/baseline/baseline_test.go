package baseline

import (
	"math/rand"
	"testing"

	"bristle/internal/overlay"
	"bristle/internal/simnet"
	"bristle/internal/topology"
)

func testNet(t testing.TB, seed int64) (*simnet.Network, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, err := topology.GenerateTransitStub(topology.TransitStubParams{
		TransitDomains:   2,
		TransitPerDomain: 3,
		StubsPerTransit:  3,
		StubPerDomain:    4,
		EdgeProb:         0.3,
		WeightJitter:     0.2,
	}, rng)
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	return simnet.NewNetwork(g, nil), rng
}

func buildTypeA(t testing.TB, stationary, mobile int, seed int64) (*TypeA, []*APeer, []*APeer) {
	t.Helper()
	net, rng := testNet(t, seed)
	a := NewTypeA(overlay.DefaultConfig(), net, rng)
	var stat, mob []*APeer
	for i := 0; i < stationary; i++ {
		p, err := a.AddPeer(net.AttachHostRandom(rng), false)
		if err != nil {
			t.Fatal(err)
		}
		stat = append(stat, p)
	}
	for i := 0; i < mobile; i++ {
		p, err := a.AddPeer(net.AttachHostRandom(rng), true)
		if err != nil {
			t.Fatal(err)
		}
		mob = append(mob, p)
	}
	return a, stat, mob
}

func TestTypeADeliveryBeforeMove(t *testing.T) {
	a, stat, mob := buildTypeA(t, 30, 10, 1)
	src := stat[0]
	dst := mob[0]
	_, _, ok, err := a.SendToIdentity(src, dst.Index, dst.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("delivery to unmoved peer failed")
	}
}

func TestTypeAMoveBreaksOldIdentity(t *testing.T) {
	a, stat, mob := buildTypeA(t, 30, 10, 2)
	src := stat[0]
	dst := mob[0]
	oldEpoch := dst.Epoch
	if err := a.Move(dst); err != nil {
		t.Fatal(err)
	}
	// Old identity is gone: end-to-end semantics broken.
	_, _, ok, err := a.SendToIdentity(src, dst.Index, oldEpoch)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("delivery to stale identity succeeded")
	}
	// The *new* identity works — but the correspondent had no way to
	// learn it in-band.
	_, _, ok, err = a.SendToIdentity(src, dst.Index, dst.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("delivery to new identity failed")
	}
}

func TestTypeAMoveChangesKey(t *testing.T) {
	a, _, mob := buildTypeA(t, 10, 5, 3)
	p := mob[0]
	oldKey := p.Key
	if err := a.Move(p); err != nil {
		t.Fatal(err)
	}
	if p.Key == oldKey {
		t.Fatal("Type A move kept the same key")
	}
	if a.Ring.Node(p.NodeID) == nil {
		t.Fatal("moved peer not on ring")
	}
}

func TestTypeAMoveCountsMaintenance(t *testing.T) {
	a, _, mob := buildTypeA(t, 30, 10, 4)
	if err := a.Move(mob[0]); err != nil {
		t.Fatal(err)
	}
	if a.Stats.Moves != 1 {
		t.Fatalf("Moves = %d", a.Stats.Moves)
	}
	if a.Stats.MaintenanceMessages == 0 || a.Stats.MaintenanceCost == 0 {
		t.Fatal("maintenance traffic not accounted")
	}
}

func TestTypeAMoveStationaryRejected(t *testing.T) {
	a, stat, _ := buildTypeA(t, 5, 2, 5)
	if err := a.Move(stat[0]); err == nil {
		t.Fatal("moved a stationary peer")
	}
}

func TestTypeASendUnknownIndex(t *testing.T) {
	a, stat, _ := buildTypeA(t, 5, 2, 6)
	if _, _, _, err := a.SendToIdentity(stat[0], 999, 0); err == nil {
		t.Fatal("send to unknown index succeeded")
	}
}

func TestMobileIPTriangularCostAtLeastDirect(t *testing.T) {
	net, rng := testNet(t, 7)
	m := NewMobileIP(net)
	src := net.AttachHostRandom(rng)
	dst := net.AttachHostRandom(rng)
	m.AssignHomeAgent(dst)
	// Move the mobile away from home a few times.
	for i := 0; i < 3; i++ {
		m.Move(dst, rng)
	}
	tri, direct, err := m.Send(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	// Triangle inequality: via-HA is never cheaper than direct.
	if tri < direct-1e-9 {
		t.Fatalf("triangular %v < direct %v", tri, direct)
	}
	if m.Stats.Delivered != 1 {
		t.Fatalf("Delivered = %d", m.Stats.Delivered)
	}
}

func TestMobileIPDeliversAfterMove(t *testing.T) {
	net, rng := testNet(t, 8)
	m := NewMobileIP(net)
	src := net.AttachHostRandom(rng)
	dst := net.AttachHostRandom(rng)
	m.AssignHomeAgent(dst)
	for i := 0; i < 5; i++ {
		m.Move(dst, rng)
		if _, _, err := m.Send(src, dst); err != nil {
			t.Fatalf("send after move %d: %v", i, err)
		}
	}
	if m.Stats.Registrations != 6 { // initial + 5 moves
		t.Fatalf("Registrations = %d, want 6", m.Stats.Registrations)
	}
}

func TestMobileIPHomeAgentFailure(t *testing.T) {
	net, rng := testNet(t, 9)
	m := NewMobileIP(net)
	src := net.AttachHostRandom(rng)
	dst := net.AttachHostRandom(rng)
	m.AssignHomeAgent(dst)
	m.FailHomeAgent(dst)
	if _, _, err := m.Send(src, dst); err != ErrHomeAgentDown {
		t.Fatalf("err = %v, want ErrHomeAgentDown", err)
	}
	if m.Stats.Failures != 1 {
		t.Fatalf("Failures = %d", m.Stats.Failures)
	}
	m.RestoreHomeAgent(dst)
	if _, _, err := m.Send(src, dst); err != nil {
		t.Fatalf("send after restore: %v", err)
	}
}

func TestMobileIPNoHomeAgent(t *testing.T) {
	net, rng := testNet(t, 10)
	m := NewMobileIP(net)
	src := net.AttachHostRandom(rng)
	dst := net.AttachHostRandom(rng)
	if _, _, err := m.Send(src, dst); err == nil {
		t.Fatal("send without home agent succeeded")
	}
}

func TestMobileIPStaleBindingFails(t *testing.T) {
	net, rng := testNet(t, 11)
	m := NewMobileIP(net)
	src := net.AttachHostRandom(rng)
	dst := net.AttachHostRandom(rng)
	m.AssignHomeAgent(dst)
	// The host moves *without* re-registering (registration lost).
	net.MoveRandom(dst, rng)
	if _, _, err := m.Send(src, dst); err != ErrNoBinding {
		t.Fatalf("err = %v, want ErrNoBinding", err)
	}
}

func TestMobileIPTriangularPenaltyAboveOne(t *testing.T) {
	net, rng := testNet(t, 12)
	m := NewMobileIP(net)
	var mobiles []simnet.HostID
	for i := 0; i < 10; i++ {
		h := net.AttachHostRandom(rng)
		m.AssignHomeAgent(h)
		m.Move(h, rng)
		mobiles = append(mobiles, h)
	}
	src := net.AttachHostRandom(rng)
	for _, dst := range mobiles {
		if _, _, err := m.Send(src, dst); err != nil {
			t.Fatal(err)
		}
	}
	if p := m.TriangularPenalty(); p < 1 {
		t.Fatalf("triangular penalty %v < 1", p)
	}
}

func TestMobileIPPenaltyEmptyIsOne(t *testing.T) {
	net, _ := testNet(t, 13)
	m := NewMobileIP(net)
	if m.TriangularPenalty() != 1 {
		t.Fatal("empty penalty != 1")
	}
}
