package baseline

import (
	"errors"
	"fmt"
	"math/rand"

	"bristle/internal/simnet"
	"bristle/internal/topology"
)

// ErrHomeAgentDown is returned when a packet to a mobile host cannot be
// delivered because its home agent has failed — the Type B critical point
// of failure Table 1 calls out.
var ErrHomeAgentDown = errors.New("baseline: home agent unavailable")

// ErrNoBinding is returned when the home agent has no care-of binding for
// the mobile host.
var ErrNoBinding = errors.New("baseline: no care-of binding registered")

// MobileIP models the Mobile IP (RFC 2002) infrastructure a Type B HS-P2P
// would run over: every mobile host has a home agent on a fixed home
// network; packets to the mobile host travel to the home agent first and
// are then tunneled to the registered care-of address (the triangular
// route), unless the correspondent supports route optimization (mobile
// IPv6 binding caches).
type MobileIP struct {
	Net *simnet.Network

	homeAgent map[simnet.HostID]topology.RouterID // mobile host → HA router
	careOf    map[simnet.HostID]simnet.Addr       // current registered binding
	haDown    map[simnet.HostID]bool

	// Stats accumulates delivery accounting.
	Stats MobileIPStats
}

// MobileIPStats counts Mobile IP activity.
type MobileIPStats struct {
	Registrations    uint64 // care-of (re-)registrations with home agents
	RegistrationCost float64
	Delivered        uint64
	TriangularCost   float64 // total cost actually paid
	DirectCost       float64 // what direct routes would have cost
	Failures         uint64
}

// NewMobileIP creates the infrastructure over net.
func NewMobileIP(net *simnet.Network) *MobileIP {
	return &MobileIP{
		Net:       net,
		homeAgent: make(map[simnet.HostID]topology.RouterID),
		careOf:    make(map[simnet.HostID]simnet.Addr),
		haDown:    make(map[simnet.HostID]bool),
	}
}

// AssignHomeAgent places h's home agent at the host's *current* attachment
// router (its home network) and registers the initial binding.
func (m *MobileIP) AssignHomeAgent(h simnet.HostID) {
	m.homeAgent[h] = m.Net.RouterOf(h)
	m.register(h)
}

// register refreshes the care-of binding at the home agent, paying the
// registration round to the HA.
func (m *MobileIP) register(h simnet.HostID) {
	ha, ok := m.homeAgent[h]
	if !ok {
		return
	}
	m.careOf[h] = m.Net.AddrOf(h)
	m.Stats.Registrations++
	m.Stats.RegistrationCost += m.Net.RouterDistance(m.Net.RouterOf(h), ha)
}

// Move relocates the mobile host and re-registers with its home agent, as
// Mobile IP requires after every handoff.
func (m *MobileIP) Move(h simnet.HostID, rng *rand.Rand) {
	m.Net.MoveRandom(h, rng)
	m.register(h)
}

// FailHomeAgent marks h's home agent as failed. Mobile IP has no fallback:
// correspondents can no longer resolve h.
func (m *MobileIP) FailHomeAgent(h simnet.HostID) { m.haDown[h] = true }

// RestoreHomeAgent brings h's home agent back.
func (m *MobileIP) RestoreHomeAgent(h simnet.HostID) { delete(m.haDown, h) }

// Send delivers a packet from src to mobile host dst through the Mobile IP
// machinery and returns the triangular cost actually paid and the direct
// cost a location-aware system would pay.
func (m *MobileIP) Send(src, dst simnet.HostID) (triangular, direct float64, err error) {
	ha, ok := m.homeAgent[dst]
	if !ok {
		return 0, 0, fmt.Errorf("baseline: host %d has no home agent", dst)
	}
	direct = m.Net.Cost(src, dst)
	if m.haDown[dst] {
		m.Stats.Failures++
		return 0, direct, ErrHomeAgentDown
	}
	binding, ok := m.careOf[dst]
	if !ok || !m.Net.Valid(binding) {
		m.Stats.Failures++
		return 0, direct, ErrNoBinding
	}
	// src → home network, then HA tunnel → care-of address.
	triangular = m.Net.RouterDistance(m.Net.RouterOf(src), ha) +
		m.Net.RouterDistance(ha, binding.Router)
	m.Stats.Delivered++
	m.Stats.TriangularCost += triangular
	m.Stats.DirectCost += direct
	return triangular, direct, nil
}

// TriangularPenalty returns the aggregate ratio of paid cost to direct
// cost across all deliveries (1.0 would be optimal routing).
func (m *MobileIP) TriangularPenalty() float64 {
	if m.Stats.DirectCost == 0 {
		return 1
	}
	return m.Stats.TriangularCost / m.Stats.DirectCost
}
