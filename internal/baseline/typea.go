// Package baseline implements the two comparison designs of the paper's
// Table 1:
//
//   - Type A: an HS-P2P over plain IP where a moving node is treated as
//     leaving and re-joining as a brand-new peer at its new location. Its
//     key changes (node keys hash the network endpoint), so every
//     state-pair and data placement referencing the old identity goes
//     stale until leases expire — end-to-end semantics are lost.
//   - Type B: an HS-P2P deployed over a Mobile IP infrastructure: home
//     agents hide movement from the overlay but impose triangular routes
//     and introduce critical points of failure.
//
// Both run over the same simnet underlay as Bristle so that Table 1 can be
// re-derived quantitatively.
package baseline

import (
	"fmt"
	"math/rand"

	"bristle/internal/hashkey"
	"bristle/internal/overlay"
	"bristle/internal/simnet"
)

// TypeA models the leave-and-rejoin design over plain IP.
type TypeA struct {
	Net  *simnet.Network
	Ring *overlay.Ring

	peers []*APeer
	rng   *rand.Rand

	// Stats accumulates maintenance traffic.
	Stats TypeAStats
}

// TypeAStats counts Type A maintenance activity.
type TypeAStats struct {
	Moves               uint64
	MaintenanceMessages uint64 // leave + rejoin state transfer messages
	MaintenanceCost     float64
}

// APeer is one Type A participant. Identity (key) is bound to the current
// network endpoint, as in systems that derive node IDs from addresses.
type APeer struct {
	Index  int // stable index into the peer table
	Key    hashkey.Key
	Host   simnet.HostID
	NodeID overlay.NodeID
	Mobile bool
	// Epoch increments on every move; sessions opened against an older
	// epoch have lost their peer (broken end-to-end semantics).
	Epoch int
}

// NewTypeA creates an empty Type A overlay over net, using rng for
// movement targets.
func NewTypeA(cfg overlay.Config, net *simnet.Network, rng *rand.Rand) *TypeA {
	return &TypeA{Net: net, Ring: overlay.NewRing(cfg, net), rng: rng}
}

// AddPeer joins a peer whose key is derived from its current endpoint.
func (a *TypeA) AddPeer(host simnet.HostID, mobile bool) (*APeer, error) {
	key := endpointKey(host, 0)
	id, err := a.Ring.AddNode(key, host)
	if err != nil {
		return nil, fmt.Errorf("baseline: type A join: %w", err)
	}
	p := &APeer{Index: len(a.peers), Key: key, Host: host, NodeID: id, Mobile: mobile}
	a.peers = append(a.peers, p)
	return p, nil
}

// Peers returns all peers (including identities that have re-joined).
func (a *TypeA) Peers() []*APeer { return a.peers }

// endpointKey hashes a host endpoint (plus move epoch, standing in for the
// new IP address) into a node key.
func endpointKey(host simnet.HostID, epoch int) hashkey.Key {
	return hashkey.FromName(fmt.Sprintf("typea-host-%d-epoch-%d", host, epoch))
}

// Move relocates a mobile peer: leave with the old identity, re-join with
// a fresh key bound to the new attachment point. The old key — and any
// data or sessions addressed to it — is orphaned. Maintenance traffic is
// the 2·O(log N) join/leave message footprint of Figure 5 plus the
// republication of nothing (Type A has no location layer).
func (a *TypeA) Move(p *APeer) error {
	if !p.Mobile {
		return fmt.Errorf("baseline: peer %d is stationary", p.Index)
	}
	node := a.Ring.Node(p.NodeID)
	if node == nil {
		return fmt.Errorf("baseline: peer %d not on ring", p.Index)
	}
	// Leave: neighbors notice via state expiry; one message per neighbor
	// for the graceful case.
	neighbors := node.Neighbors()
	a.Stats.MaintenanceMessages += uint64(len(neighbors))
	for _, ref := range neighbors {
		nb := a.Ring.Node(ref.ID)
		if nb != nil {
			a.Stats.MaintenanceCost += a.Net.Cost(p.Host, nb.Host)
		}
	}
	if err := a.Ring.RemoveNode(p.NodeID); err != nil {
		return err
	}

	// Re-attach and re-join under a new identity.
	a.Net.MoveRandom(p.Host, a.rng)
	p.Epoch++
	p.Key = endpointKey(p.Host, p.Epoch)
	id, err := a.Ring.AddNode(p.Key, p.Host)
	if err != nil {
		return err
	}
	p.NodeID = id

	// Join traffic: the newcomer exchanges state with its new neighbors.
	newNode := a.Ring.Node(id)
	joinNbrs := newNode.Neighbors()
	a.Stats.MaintenanceMessages += 2 * uint64(len(joinNbrs))
	for _, ref := range joinNbrs {
		nb := a.Ring.Node(ref.ID)
		if nb != nil {
			a.Stats.MaintenanceCost += 2 * a.Net.Cost(p.Host, nb.Host)
		}
	}
	a.Stats.Moves++
	return nil
}

// SendToIdentity attempts to deliver a message addressed to the identity
// (key, epoch) the sender captured earlier. If the target has moved since,
// the identity is gone and delivery fails — Type A's broken end-to-end
// semantics. On success the route cost over the overlay is returned.
func (a *TypeA) SendToIdentity(src *APeer, dstIndex, epoch int) (cost float64, hops int, ok bool, err error) {
	if dstIndex < 0 || dstIndex >= len(a.peers) {
		return 0, 0, false, fmt.Errorf("baseline: unknown peer index %d", dstIndex)
	}
	dst := a.peers[dstIndex]
	// The message is addressed to the key of the captured epoch.
	key := endpointKey(dst.Host, epoch)
	res, rerr := a.Ring.Route(src.NodeID, key, nil)
	if rerr != nil {
		return 0, 0, false, rerr
	}
	for _, h := range res.Hops {
		from := a.Ring.Node(h.From.ID)
		to := a.Ring.Node(h.To.ID)
		if from != nil && to != nil {
			cost += a.Net.Cost(from.Host, to.Host)
		}
	}
	hops = res.NumHops()
	// Delivery succeeds only if the responsible node is still that
	// identity (same epoch ⇒ same key and endpoint).
	ok = epoch == dst.Epoch && a.Ring.Node(dst.NodeID) != nil &&
		res.Dest.ID == dst.NodeID
	return cost, hops, ok, nil
}
