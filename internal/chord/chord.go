// Package chord implements a Chord-flavored structured overlay (Stoica
// et al., SIGCOMM 2001) satisfying Bristle's core.Substrate interface —
// the concrete demonstration of the paper's closing claim that "the
// concept proposed in Bristle can be applied to existing HS-P2P
// overlays" and of §2.1's "the stationary layer can be any HS-P2P".
//
// Chord differs from the Tornado-style ring of internal/overlay in both
// respects Figure 2's footnote calls out:
//
//   - closeness: the node responsible for a key is its *successor* (the
//     first node clockwise), not the node at minimal shortest-arc
//     distance;
//   - routing: strictly unidirectional — every hop moves clockwise via
//     the closest preceding finger, never the shorter way around.
//
// It reuses the Ref/NodeID/Hop/RouteResult vocabulary of internal/overlay
// so both substrates are interchangeable behind the interface.
package chord

import (
	"fmt"
	"math/bits"
	"sort"

	"bristle/internal/hashkey"
	"bristle/internal/overlay"
	"bristle/internal/simnet"
)

// Config tunes the Chord geometry.
type Config struct {
	// SuccessorListSize is the number of immediate successors each node
	// tracks (fault tolerance + the replication neighborhood).
	SuccessorListSize int
	// ProximityChoices enables proximity finger selection among the first
	// nodes past each finger start (0 = plain Chord: exact successor of
	// the finger start).
	ProximityChoices int
}

// DefaultConfig mirrors common Chord deployments.
func DefaultConfig() Config {
	return Config{SuccessorListSize: 4, ProximityChoices: 0}
}

// FromOverlayConfig adapts an overlay.Config so both substrates can be
// constructed from the same Bristle configuration.
func FromOverlayConfig(oc overlay.Config) Config {
	return Config{SuccessorListSize: oc.LeafSize, ProximityChoices: oc.ProximityChoices}
}

type node struct {
	ref  overlay.Ref
	host simnet.HostID

	successors  []overlay.Ref // immediate successors, nearest first
	predecessor overlay.Ref
	hasPred     bool
	fingers     []overlay.Ref // deduplicated, increasing clockwise distance
}

// Chord is a Chord overlay instance implementing core.Substrate.
type Chord struct {
	cfg    Config
	net    *simnet.Network
	nodes  []*node
	alive  int
	sorted []overlay.Ref
}

// New creates an empty Chord overlay. net may be nil (disables proximity
// finger selection).
func New(cfg Config, net *simnet.Network) *Chord {
	if cfg.SuccessorListSize < 1 {
		cfg.SuccessorListSize = 1
	}
	if cfg.ProximityChoices < 0 {
		cfg.ProximityChoices = 0
	}
	return &Chord{cfg: cfg, net: net}
}

// Size returns the live-node count.
func (c *Chord) Size() int { return c.alive }

// searchIndex returns the first index in sorted with key >= key.
func (c *Chord) searchIndex(key hashkey.Key) int {
	return sort.Search(len(c.sorted), func(i int) bool {
		return c.sorted[i].Key >= key
	})
}

// successorIdx returns the index of successor(key): the first node at or
// clockwise after key.
func (c *Chord) successorIdx(key hashkey.Key) int {
	idx := c.searchIndex(key)
	if idx == len(c.sorted) {
		return 0
	}
	return idx
}

// AddNode joins a node and builds its state; neighbors' successor lists
// are repaired locally.
func (c *Chord) AddNode(key hashkey.Key, host simnet.HostID) (overlay.NodeID, error) {
	idx := c.searchIndex(key)
	if idx < len(c.sorted) && c.sorted[idx].Key == key {
		return overlay.NoNode, fmt.Errorf("chord: key %v already present", key)
	}
	id := overlay.NodeID(len(c.nodes))
	n := &node{ref: overlay.Ref{Key: key, ID: id}, host: host}
	c.nodes = append(c.nodes, n)
	c.sorted = append(c.sorted, overlay.Ref{})
	copy(c.sorted[idx+1:], c.sorted[idx:])
	c.sorted[idx] = n.ref
	c.alive++

	c.buildState(n)
	c.repairAround(key)
	return id, nil
}

// RemoveNode departs a node; ring neighbors repair their successor lists.
func (c *Chord) RemoveNode(id overlay.NodeID) error {
	n := c.nodeOf(id)
	if n == nil {
		return fmt.Errorf("chord: node %d unknown or departed", id)
	}
	idx := c.searchIndex(n.ref.Key)
	if idx >= len(c.sorted) || c.sorted[idx].ID != id {
		return fmt.Errorf("chord: index corrupt for node %d", id)
	}
	c.sorted = append(c.sorted[:idx], c.sorted[idx+1:]...)
	c.nodes[id] = nil
	c.alive--
	if c.alive > 0 {
		c.repairAround(n.ref.Key)
	}
	return nil
}

// Stabilize rebuilds every node's successor list and fingers.
func (c *Chord) Stabilize() {
	for _, ref := range c.sorted {
		c.buildState(c.nodes[ref.ID])
	}
}

func (c *Chord) nodeOf(id overlay.NodeID) *node {
	if id < 0 || int(id) >= len(c.nodes) {
		return nil
	}
	return c.nodes[id]
}

// buildState fills a node's successors, predecessor and fingers from the
// membership index.
func (c *Chord) buildState(n *node) {
	m := len(c.sorted)
	n.successors = n.successors[:0]
	n.fingers = n.fingers[:0]
	n.hasPred = false
	if m <= 1 {
		return
	}
	self := c.searchIndex(n.ref.Key)
	for i := 1; i <= c.cfg.SuccessorListSize && i < m; i++ {
		n.successors = append(n.successors, c.sorted[(self+i)%m])
	}
	n.predecessor = c.sorted[(self-1+m)%m]
	n.hasPred = true

	lastID := overlay.NoNode
	for i := uint(0); i < hashkey.RingBits; i++ {
		start := n.ref.Key + hashkey.Key(uint64(1)<<i)
		ref := c.pickFinger(n, start)
		if ref.ID == n.ref.ID || ref.ID == lastID {
			continue
		}
		// Fingers must stay within the clockwise half they index: skip
		// entries that wrapped all the way past self.
		n.fingers = append(n.fingers, ref)
		lastID = ref.ID
	}
}

// pickFinger returns successor(start), or with proximity selection the
// underlay-nearest of the next ProximityChoices+1 nodes past start.
func (c *Chord) pickFinger(n *node, start hashkey.Key) overlay.Ref {
	m := len(c.sorted)
	first := c.successorIdx(start)
	best := c.sorted[first]
	if c.net == nil || c.cfg.ProximityChoices == 0 {
		return best
	}
	bestCost := c.net.Cost(n.host, c.nodes[best.ID].host)
	for k := 1; k <= c.cfg.ProximityChoices && k < m; k++ {
		cand := c.sorted[(first+k)%m]
		// Candidates must still be "after start and before self" in ring
		// terms to keep routing monotone; stop at self.
		if cand.ID == n.ref.ID {
			break
		}
		cost := c.net.Cost(n.host, c.nodes[cand.ID].host)
		if cost < bestCost {
			best, bestCost = cand, cost
		}
	}
	return best
}

// repairAround rebuilds the state of the SuccessorListSize nodes on each
// side of key.
func (c *Chord) repairAround(key hashkey.Key) {
	m := len(c.sorted)
	if m == 0 {
		return
	}
	start := c.successorIdx(key)
	for off := -c.cfg.SuccessorListSize; off <= c.cfg.SuccessorListSize; off++ {
		ref := c.sorted[((start+off)%m+m)%m]
		c.buildState(c.nodes[ref.ID])
	}
}

// --- Substrate interface -------------------------------------------------

// Alive reports node liveness.
func (c *Chord) Alive(id overlay.NodeID) bool { return c.nodeOf(id) != nil }

// RefOf returns a live node's Ref.
func (c *Chord) RefOf(id overlay.NodeID) (overlay.Ref, bool) {
	n := c.nodeOf(id)
	if n == nil {
		return overlay.Ref{}, false
	}
	return n.ref, true
}

// HostOf returns a live node's underlay host.
func (c *Chord) HostOf(id overlay.NodeID) (simnet.HostID, bool) {
	n := c.nodeOf(id)
	if n == nil {
		return simnet.NoHost, false
	}
	return n.host, true
}

// NeighborsOf returns a node's distinct state entries.
func (c *Chord) NeighborsOf(id overlay.NodeID) []overlay.Ref {
	n := c.nodeOf(id)
	if n == nil {
		return nil
	}
	seen := make(map[overlay.NodeID]bool)
	var out []overlay.Ref
	add := func(refs []overlay.Ref) {
		for _, r := range refs {
			if r.ID != n.ref.ID && !seen[r.ID] {
				seen[r.ID] = true
				out = append(out, r)
			}
		}
	}
	add(n.successors)
	if n.hasPred {
		add([]overlay.Ref{n.predecessor})
	}
	add(n.fingers)
	return out
}

// StateSizeOf returns the routing-table entry count.
func (c *Chord) StateSizeOf(id overlay.NodeID) int { return len(c.NeighborsOf(id)) }

// ClosestRef returns Chord's responsible node for target: successor(target).
func (c *Chord) ClosestRef(target hashkey.Key) (overlay.Ref, bool) {
	if c.alive == 0 {
		return overlay.Ref{}, false
	}
	return c.sorted[c.successorIdx(target)], true
}

// NeighborhoodRefs returns Chord's replication set: successor(key) and the
// k−1 nodes after it.
func (c *Chord) NeighborhoodRefs(key hashkey.Key, k int) []overlay.Ref {
	if k <= 0 || c.alive == 0 {
		return nil
	}
	if k > c.alive {
		k = c.alive
	}
	m := len(c.sorted)
	start := c.successorIdx(key)
	out := make([]overlay.Ref, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, c.sorted[(start+i)%m])
	}
	return out
}

// Refs lists all live nodes in key order.
func (c *Chord) Refs() []overlay.Ref {
	out := make([]overlay.Ref, len(c.sorted))
	copy(out, c.sorted)
	return out
}

// Route forwards clockwise toward successor(target) using the classic
// closest-preceding-finger rule.
func (c *Chord) Route(src overlay.NodeID, target hashkey.Key, visit overlay.HopVisitor) (overlay.RouteResult, error) {
	return c.RouteWithOptions(src, target, overlay.RouteOptions{}, visit)
}

// RouteWithOptions routes with an optional next-hop preference. Chord is
// inherently unidirectional, so ForceDir is ignored (every route is CW).
func (c *Chord) RouteWithOptions(src overlay.NodeID, target hashkey.Key, opts overlay.RouteOptions, visit overlay.HopVisitor) (overlay.RouteResult, error) {
	cur := c.nodeOf(src)
	if cur == nil {
		return overlay.RouteResult{}, fmt.Errorf("chord: route from unknown node %d", src)
	}
	res := overlay.RouteResult{Dir: hashkey.CW}
	maxHops := 8 * (log2ceil(c.alive) + 4)

	for step := 0; step < maxHops; step++ {
		// Done when target ∈ (cur, successor]: successor is responsible.
		succ, ok := c.liveSuccessor(cur)
		if !ok {
			res.Dest = cur.ref
			return res, nil // singleton ring
		}
		if hashkey.InArcHalfOpen(target, cur.ref.Key, succ.Key) {
			if succ.Key == cur.ref.Key {
				res.Dest = cur.ref
				return res, nil
			}
			// Final hop: deliver to the responsible successor.
			hop := overlay.Hop{From: cur.ref, To: succ, Final: true}
			if visit != nil && !visit(hop) {
				res.Dest = cur.ref
				return res, nil
			}
			res.Hops = append(res.Hops, hop)
			res.Dest = succ
			return res, nil
		}
		next, ok := c.closestPreceding(cur, target, opts.Prefer)
		if !ok {
			// No progress possible through fingers; step to the successor.
			next = succ
		}
		hop := overlay.Hop{From: cur.ref, To: next}
		if visit != nil && !visit(hop) {
			res.Dest = cur.ref
			return res, nil
		}
		res.Hops = append(res.Hops, hop)
		nn := c.nodeOf(next.ID)
		if nn == nil {
			return res, fmt.Errorf("chord: routed to departed node %d", next.ID)
		}
		cur = nn
		if cur.ref.Key == target {
			res.Dest = cur.ref
			return res, nil
		}
	}
	res.Dest = cur.ref
	return res, fmt.Errorf("chord: routing exceeded %d hops", maxHops)
}

// liveSuccessor returns the first live entry of cur's successor list.
func (c *Chord) liveSuccessor(cur *node) (overlay.Ref, bool) {
	for _, s := range cur.successors {
		if c.nodeOf(s.ID) != nil {
			return s, true
		}
	}
	return overlay.Ref{}, false
}

// closestPreceding picks the state entry most advanced clockwise from cur
// while strictly preceding target; preferred candidates win when any
// advances.
func (c *Chord) closestPreceding(cur *node, target hashkey.Key, prefer func(overlay.Ref) bool) (overlay.Ref, bool) {
	span := hashkey.Clockwise(cur.ref.Key, target)
	var best, bestPref overlay.Ref
	bestAdv, bestPrefAdv := uint64(0), uint64(0)
	consider := func(refs []overlay.Ref) {
		for _, r := range refs {
			if r.ID == cur.ref.ID || c.nodeOf(r.ID) == nil {
				continue
			}
			adv := hashkey.Clockwise(cur.ref.Key, r.Key)
			if adv == 0 || adv >= span {
				continue // at/after target: not a preceding node
			}
			if adv > bestAdv {
				bestAdv, best = adv, r
			}
			if prefer != nil && prefer(r) && adv > bestPrefAdv {
				bestPrefAdv, bestPref = adv, r
			}
		}
	}
	consider(cur.fingers)
	consider(cur.successors)
	if bestPrefAdv > 0 {
		return bestPref, true
	}
	if bestAdv == 0 {
		return overlay.Ref{}, false
	}
	return best, true
}

func log2ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}
