package chord

import (
	"math"
	"math/rand"
	"testing"

	"bristle/internal/core"
	"bristle/internal/hashkey"
	"bristle/internal/overlay"
	"bristle/internal/simnet"
)

// Compile-time check: Chord satisfies Bristle's substrate contract.
var _ core.Substrate = (*Chord)(nil)

func buildChord(t testing.TB, n int, seed int64) (*Chord, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ch := New(DefaultConfig(), nil)
	for i := 0; i < n; i++ {
		for {
			if _, err := ch.AddNode(hashkey.Random(rng), simnet.NoHost); err == nil {
				break
			}
		}
	}
	return ch, rng
}

func TestSuccessorSemantics(t *testing.T) {
	// Chord's "closest" is the successor, not the shortest-arc nearest —
	// the Figure 2 footnote about differing closeness definitions.
	ch := New(DefaultConfig(), nil)
	a, _ := ch.AddNode(100, simnet.NoHost)
	b, _ := ch.AddNode(200, simnet.NoHost)
	_ = a

	// Key 150 is arc-closer to 100+arc... successor semantics: owner of
	// 101..200 is node 200; owner of 201..100 (wrapping) is node 100.
	ref, ok := ch.ClosestRef(150)
	if !ok || ref.ID != b {
		t.Fatalf("ClosestRef(150) = %v, want node 200", ref)
	}
	ref, _ = ch.ClosestRef(199)
	if ref.ID != b {
		t.Fatalf("ClosestRef(199) = %v, want node 200", ref)
	}
	ref, _ = ch.ClosestRef(200)
	if ref.ID != b {
		t.Fatalf("ClosestRef(200) = %v, want node 200 itself", ref)
	}
	ref, _ = ch.ClosestRef(201)
	if ref.Key != 100 {
		t.Fatalf("ClosestRef(201) = %v, want wrap to node 100", ref)
	}
}

func TestClosestMatchesBruteForceSuccessor(t *testing.T) {
	ch, rng := buildChord(t, 200, 1)
	refs := ch.Refs()
	for trial := 0; trial < 200; trial++ {
		target := hashkey.Random(rng)
		// Brute force successor.
		var want overlay.Ref
		found := false
		for _, r := range refs {
			if !found {
				want, found = r, true
				continue
			}
			// successor = minimal clockwise distance from target.
			if hashkey.Clockwise(target, r.Key) < hashkey.Clockwise(target, want.Key) {
				want = r
			}
		}
		got, ok := ch.ClosestRef(target)
		if !ok || got.ID != want.ID {
			t.Fatalf("ClosestRef(%v) = %v, want %v", target, got, want)
		}
	}
}

func TestRouteReachesSuccessor(t *testing.T) {
	for _, size := range []int{2, 10, 100, 500} {
		ch, rng := buildChord(t, size, int64(size))
		refs := ch.Refs()
		for trial := 0; trial < 100; trial++ {
			src := refs[rng.Intn(len(refs))]
			target := hashkey.Random(rng)
			res, err := ch.Route(src.ID, target, nil)
			if err != nil {
				t.Fatalf("size %d: %v", size, err)
			}
			want, _ := ch.ClosestRef(target)
			if res.Dest.ID != want.ID {
				t.Fatalf("size %d: dest %d, successor %d", size, res.Dest.ID, want.ID)
			}
			if res.Dir != hashkey.CW {
				t.Fatal("chord route not clockwise")
			}
		}
	}
}

func TestRouteStrictlyClockwise(t *testing.T) {
	ch, rng := buildChord(t, 300, 2)
	refs := ch.Refs()
	for trial := 0; trial < 100; trial++ {
		src := refs[rng.Intn(len(refs))]
		target := hashkey.Random(rng)
		res, err := ch.Route(src.ID, target, nil)
		if err != nil {
			t.Fatal(err)
		}
		prev := src.Key
		total := hashkey.Clockwise(src.Key, target)
		for _, h := range res.Hops {
			adv := hashkey.Clockwise(src.Key, h.To.Key)
			if !h.Final && adv >= total && total > 0 {
				t.Fatalf("non-final hop overshot target (adv %d ≥ total %d)", adv, total)
			}
			if hashkey.Clockwise(src.Key, prev) > adv && !h.Final {
				t.Fatal("route moved counter-clockwise")
			}
			prev = h.To.Key
		}
	}
}

func TestRouteHopsLogarithmic(t *testing.T) {
	for _, size := range []int{100, 400, 1600} {
		ch, rng := buildChord(t, size, int64(10+size))
		refs := ch.Refs()
		total := 0
		const trials = 200
		for i := 0; i < trials; i++ {
			src := refs[rng.Intn(len(refs))]
			res, err := ch.Route(src.ID, hashkey.Random(rng), nil)
			if err != nil {
				t.Fatal(err)
			}
			total += res.NumHops()
		}
		mean := float64(total) / trials
		if logN := math.Log2(float64(size)); mean > 2*logN {
			t.Errorf("size %d: mean hops %.2f > 2·log2(N)=%.2f", size, mean, logN)
		}
	}
}

func TestStateSizeLogarithmic(t *testing.T) {
	ch, _ := buildChord(t, 1000, 3)
	maxState := 0
	for _, r := range ch.Refs() {
		if s := ch.StateSizeOf(r.ID); s > maxState {
			maxState = s
		}
	}
	if logN := math.Log2(1000); float64(maxState) > 6*logN {
		t.Errorf("max state %d > 6·log2(N)=%.1f", maxState, 6*logN)
	}
}

func TestNeighborhoodIsSuccessorRun(t *testing.T) {
	ch, rng := buildChord(t, 200, 4)
	for trial := 0; trial < 50; trial++ {
		key := hashkey.Random(rng)
		k := 1 + rng.Intn(6)
		nb := ch.NeighborhoodRefs(key, k)
		if len(nb) != k {
			t.Fatalf("neighborhood size %d, want %d", len(nb), k)
		}
		owner, _ := ch.ClosestRef(key)
		if nb[0].ID != owner.ID {
			t.Fatal("neighborhood head is not the successor")
		}
		// Consecutive clockwise run.
		for i := 1; i < len(nb); i++ {
			if hashkey.Clockwise(key, nb[i-1].Key) >= hashkey.Clockwise(key, nb[i].Key) {
				t.Fatal("neighborhood not a clockwise successor run")
			}
		}
	}
}

func TestChurnRoutesStillConverge(t *testing.T) {
	ch, rng := buildChord(t, 300, 5)
	refs := ch.Refs()
	for i := 0; i < 90; i++ {
		victim := refs[rng.Intn(len(refs))]
		if !ch.Alive(victim.ID) {
			continue
		}
		if err := ch.RemoveNode(victim.ID); err != nil {
			t.Fatal(err)
		}
	}
	ch.Stabilize()
	live := ch.Refs()
	for trial := 0; trial < 100; trial++ {
		src := live[rng.Intn(len(live))]
		target := hashkey.Random(rng)
		res, err := ch.Route(src.ID, target, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := ch.ClosestRef(target)
		if res.Dest.ID != want.ID {
			t.Fatalf("post-churn dest %d != successor %d", res.Dest.ID, want.ID)
		}
	}
}

func TestChurnWithoutStabilizeStillConverges(t *testing.T) {
	ch, rng := buildChord(t, 200, 6)
	refs := ch.Refs()
	for i := 0; i < 40; i++ {
		victim := refs[rng.Intn(len(refs))]
		if !ch.Alive(victim.ID) {
			continue
		}
		if err := ch.RemoveNode(victim.ID); err != nil {
			t.Fatal(err)
		}
	}
	live := ch.Refs()
	for trial := 0; trial < 100; trial++ {
		src := live[rng.Intn(len(live))]
		target := hashkey.Random(rng)
		res, err := ch.Route(src.ID, target, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := ch.ClosestRef(target)
		if res.Dest.ID != want.ID {
			t.Fatalf("stale-finger dest %d != successor %d", res.Dest.ID, want.ID)
		}
	}
}

func TestDuplicateKeyRejected(t *testing.T) {
	ch := New(DefaultConfig(), nil)
	if _, err := ch.AddNode(7, simnet.NoHost); err != nil {
		t.Fatal(err)
	}
	if _, err := ch.AddNode(7, simnet.NoHost); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestRemoveUnknown(t *testing.T) {
	ch, _ := buildChord(t, 5, 7)
	if err := ch.RemoveNode(overlay.NodeID(99)); err == nil {
		t.Fatal("removing unknown node succeeded")
	}
}

func TestSingleton(t *testing.T) {
	ch := New(DefaultConfig(), nil)
	id, err := ch.AddNode(42, simnet.NoHost)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ch.Route(id, 7, nil)
	if err != nil || res.Dest.ID != id || res.NumHops() != 0 {
		t.Fatalf("singleton route: %+v, %v", res, err)
	}
	if !ch.Alive(id) {
		t.Fatal("singleton not alive")
	}
}

func TestHopVisitorAbort(t *testing.T) {
	ch, rng := buildChord(t, 200, 8)
	refs := ch.Refs()
	for trial := 0; trial < 20; trial++ {
		src := refs[rng.Intn(len(refs))]
		target := hashkey.Random(rng)
		full, err := ch.Route(src.ID, target, nil)
		if err != nil {
			t.Fatal(err)
		}
		if full.NumHops() < 2 {
			continue
		}
		hops := 0
		res, err := ch.Route(src.ID, target, func(overlay.Hop) bool {
			hops++
			return hops < 2
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.NumHops() != 1 {
			t.Fatalf("aborted route recorded %d hops", res.NumHops())
		}
		return
	}
	t.Skip("no multi-hop route found")
}

func TestNeighborsOfDeparted(t *testing.T) {
	ch, _ := buildChord(t, 10, 9)
	ref := ch.Refs()[0]
	if err := ch.RemoveNode(ref.ID); err != nil {
		t.Fatal(err)
	}
	if nb := ch.NeighborsOf(ref.ID); nb != nil {
		t.Fatal("departed node has neighbors")
	}
	if _, ok := ch.RefOf(ref.ID); ok {
		t.Fatal("departed node has a Ref")
	}
	if _, ok := ch.HostOf(ref.ID); ok {
		t.Fatal("departed node has a host")
	}
}
