package core

import (
	"fmt"

	"bristle/internal/overlay"
)

// JoinStats reports the traffic footprint of one dynamic join (Figure 5:
// "This at most takes 2 × O(log N) messages sent and received by node i").
type JoinStats struct {
	Peer          *Peer
	Messages      int // state publications + returned registrations
	Registrations int // registrations established in either direction
}

// Join adds a peer dynamically after the network is live, running the
// Figure 5 protocol: the newcomer collects state-pairs from the nodes a
// join walk visits (here: its overlay neighbors, chosen with network
// proximity), registers itself to each peer whose state it now holds, and
// the peers that now hold the newcomer's state register themselves back.
func (n *Network) Join(kind Kind, capacity float64) (JoinStats, error) {
	p, err := n.AddPeer(kind, capacity)
	if err != nil {
		return JoinStats{}, err
	}
	js := JoinStats{Peer: p}

	// Outbound: p holds its neighbors' state-pairs ⇒ p registers to them.
	for _, ref := range n.MobileRing.NeighborsOf(p.MobileRingID) {
		neighbor := n.byMobile[ref.ID]
		if neighbor == nil || neighbor.ID == p.ID {
			continue
		}
		n.Register(p, neighbor)
		js.Messages++
		js.Registrations++
	}

	// Inbound: the peers whose leaf sets now include p hold p's state ⇒
	// they register to p. The leaf repair in AddNode touched exactly the
	// ring neighborhood of p's key.
	for _, nb := range n.MobileRing.NeighborhoodRefs(p.Key, 2*n.cfg.Overlay.LeafSize+1) {
		q := n.byMobile[nb.ID]
		if q == nil || q.ID == p.ID {
			continue
		}
		n.Register(q, p)
		js.Messages++
		js.Registrations++
	}

	// A mobile newcomer announces its location to the stationary layer.
	if p.Kind == Mobile {
		if _, err := n.PublishLocation(p); err != nil && err != ErrNoStationary {
			return js, err
		}
		js.Messages++
	}
	return js, nil
}

// Leave removes a peer from both layers, deregisters it everywhere, and
// drops the location records it held (stationary peers) so that lookups
// fall over to replicas. Cached state-pairs pointing at the departed peer
// are left to expire via their leases, as in the paper's Type A aging.
func (n *Network) Leave(p *Peer) error {
	if n.Peer(p.ID) == nil {
		return fmt.Errorf("core: unknown peer %d", p.ID)
	}
	if !n.MobileRing.Alive(p.MobileRingID) {
		return fmt.Errorf("core: peer %d already left", p.ID)
	}
	if err := n.MobileRing.RemoveNode(p.MobileRingID); err != nil {
		return err
	}
	delete(n.byMobile, p.MobileRingID)
	if p.StatRingID != overlay.NoNode {
		if err := n.StationaryRing.RemoveNode(p.StatRingID); err != nil {
			return err
		}
		delete(n.byStat, p.StatRingID)
		p.store = nil
	}
	n.Net.Detach(p.Host)

	// Remove p from every registry it joined, and drop its own registry.
	for _, q := range n.peers {
		n.Deregister(p, q)
	}
	p.registry = nil

	// Mobile peers that used p as their stationary entry need a new one.
	if p.Kind == Stationary {
		for _, q := range n.peers {
			if q.Kind == Mobile && q.entry != nil && q.entry.ID == p.ID {
				n.assignEntry(q)
			}
		}
	}
	return nil
}

// Refresh re-runs a peer's registration pass (the periodic re-join of
// §2.3.3 and §4.3: "a node had joined Bristle can periodically re-perform
// joining operations to refresh its local state and registrations").
func (n *Network) Refresh(p *Peer) {
	for _, ref := range n.MobileRing.NeighborsOf(p.MobileRingID) {
		neighbor := n.byMobile[ref.ID]
		if neighbor == nil || neighbor.ID == p.ID {
			continue
		}
		n.Register(p, neighbor)
	}
}
