// Package core implements Bristle, the mobile structured peer-to-peer
// architecture of Hsiao & King (IPDPS 2003).
//
// A Bristle network deploys two hash-based structured overlays over one
// population of N peers (Section 2.1):
//
//   - the mobile layer: all N peers (stationary and mobile) form the data
//     overlay on which application messages are routed;
//   - the stationary layer: the N−M stationary peers form a second overlay
//     acting as the location-information repository that resolves the
//     network addresses of mobile peers (_discovery, Figure 2).
//
// Mobile peers publish their current network attachment point to the
// stationary peer whose key is closest to their own (plus replicas), push
// updates proactively to registered interested peers through a
// capacity-aware location dissemination tree (Section 2.3, package ldt),
// and let everyone else resolve reactively through the stationary layer
// (late binding). Keys are assigned by either the scrambled or the
// clustered naming scheme of Section 3; with clustered naming a route
// between two stationary peers never needs a mobile peer's help while
// stationary peers are at least half the population (Equation 1).
package core

import (
	"fmt"
	"math/rand"

	"bristle/internal/hashkey"
	"bristle/internal/overlay"
	"bristle/internal/simnet"
)

// Kind classifies a peer as stationary or mobile (Section 2.1).
type Kind uint8

const (
	// Stationary peers have fixed network locations and form the
	// location-management (stationary) layer.
	Stationary Kind = iota
	// Mobile peers may change their network attachment points.
	Mobile
)

// String returns "stationary" or "mobile".
func (k Kind) String() string {
	if k == Stationary {
		return "stationary"
	}
	return "mobile"
}

// Naming selects the key assignment scheme of Section 3.
type Naming uint8

const (
	// Scrambled assigns uniformly random keys to every peer (Figure 6a).
	Scrambled Naming = iota
	// Clustered assigns stationary peers keys inside the contiguous arc
	// [L, U] and mobile peers keys outside it (Figure 6b), so stationary-
	// to-stationary routes can avoid mobile forwarders entirely.
	Clustered
)

// String returns "scrambled" or "clustered".
func (n Naming) String() string {
	if n == Scrambled {
		return "scrambled"
	}
	return "clustered"
}

// PeerID identifies a peer within a Network. IDs are dense and stable.
type PeerID int32

// NoPeer is the sentinel for "no peer".
const NoPeer PeerID = -1

// Substrate is the hash-based structured overlay interface Bristle's two
// layers run on. The paper's stationary layer "can be any HS-P2P, e.g.,
// CAN, Chord, Pastry, Tapestry, Tornado" (§2.1), and its conclusion
// claims the design applies to existing HS-P2P overlays — this interface
// is that claim made concrete. internal/overlay.Ring (the Tornado-style
// bidirectional ring) and internal/chord.Chord (unidirectional successor
// routing) both satisfy it.
type Substrate interface {
	// AddNode joins a node; duplicate keys are rejected.
	AddNode(key hashkey.Key, host simnet.HostID) (overlay.NodeID, error)
	// RemoveNode departs a node, repairing neighbors' state.
	RemoveNode(id overlay.NodeID) error
	// Size returns the live-node count.
	Size() int
	// Stabilize rebuilds routing state (periodic refresh).
	Stabilize()
	// Alive reports node liveness.
	Alive(id overlay.NodeID) bool
	// RefOf returns a live node's key/ID pair.
	RefOf(id overlay.NodeID) (overlay.Ref, bool)
	// HostOf returns a live node's underlay host.
	HostOf(id overlay.NodeID) (simnet.HostID, bool)
	// NeighborsOf returns a node's distinct routing-state entries.
	NeighborsOf(id overlay.NodeID) []overlay.Ref
	// ClosestRef returns the live node responsible for target under the
	// substrate's own closeness definition (Figure 2's note: "different
	// HS-P2Ps have different definitions for the closeness").
	ClosestRef(target hashkey.Key) (overlay.Ref, bool)
	// NeighborhoodRefs returns the k-node replication set for key.
	NeighborhoodRefs(key hashkey.Key, k int) []overlay.Ref
	// Refs lists all live nodes in key order.
	Refs() []overlay.Ref
	// StateSizeOf returns a node's routing-table entry count.
	StateSizeOf(id overlay.NodeID) int
	// Route forwards toward the node responsible for target.
	Route(src overlay.NodeID, target hashkey.Key, visit overlay.HopVisitor) (overlay.RouteResult, error)
	// RouteWithOptions is Route under an explicit discipline.
	RouteWithOptions(src overlay.NodeID, target hashkey.Key, opts overlay.RouteOptions, visit overlay.HopVisitor) (overlay.RouteResult, error)
}

// StatePair is the paper's <hash key, network address> tuple with the
// lease (TTL) of Section 2.3.2 attached. A zero Addr is the paper's
// "null": known key, unresolved address.
type StatePair struct {
	Key     hashkey.Key
	Addr    simnet.Addr
	Expires simnet.Time
}

// ValidAt reports whether the lease is unexpired at time now. It says
// nothing about whether the address still reaches the peer.
func (s StatePair) ValidAt(now simnet.Time) bool {
	return !s.Addr.IsZero() && now < s.Expires
}

// Config tunes a Bristle network.
type Config struct {
	// Naming selects scrambled or clustered key assignment.
	Naming Naming

	// StationaryFraction is ∇ = (U−L)/ρ, the fraction of the ring reserved
	// for stationary keys under clustered naming. Zero means "derive from
	// the population": callers that know N−M and N should set it to
	// (N−M)/N as the paper assumes; AddPeer falls back to 0.5.
	StationaryFraction float64

	// Overlay configures both rings' geometry.
	Overlay overlay.Config

	// ReplicationFactor is how many stationary peers hold each mobile
	// peer's location record (the availability replication of §2.3.2).
	// Minimum effective value 1.
	ReplicationFactor int

	// LeaseTTL is the validity period of published locations and cached
	// state-pairs. Zero means leases never expire.
	LeaseTTL simnet.Time

	// UnitCost is v, the cost of one LDT update message (Figure 4).
	UnitCost float64

	// LDTLocality enables locality-aware LDT partitioning (Figure 9).
	LDTLocality bool

	// CacheResolved controls whether peers cache addresses learned through
	// _discovery. Real deployments do (the Figure 2 update of the local
	// state-pair); the Figure 7 experiment disables it to measure
	// steady-state per-route resolution cost.
	CacheResolved bool

	// NewSubstrate constructs the overlay both layers run on. Nil selects
	// the default internal/overlay ring (the Tornado role). Supply
	// chord.New (wrapped) or any other Substrate implementation to deploy
	// Bristle on a different HS-P2P, as the paper's conclusion envisions.
	NewSubstrate func(overlay.Config, *simnet.Network) Substrate

	// UpdateLossRate injects failure into LDT update delivery: each
	// registry member independently misses a pushed update with this
	// probability — the §2.3.2 scenario ("a registry node may not receive
	// the updated location issued from the mobile node") that motivates
	// leases and late binding. 0 disables injection.
	UpdateLossRate float64
}

// DefaultConfig returns production-flavored settings.
func DefaultConfig() Config {
	return Config{
		Naming:            Clustered,
		Overlay:           overlay.DefaultConfig(),
		ReplicationFactor: 3,
		LeaseTTL:          0,
		UnitCost:          1,
		LDTLocality:       true,
		CacheResolved:     true,
	}
}

func (c *Config) sanitize() {
	if c.ReplicationFactor < 1 {
		c.ReplicationFactor = 1
	}
	if c.UnitCost <= 0 {
		c.UnitCost = 1
	}
}

// Peer is one Bristle participant.
type Peer struct {
	ID       PeerID
	Kind     Kind
	Key      hashkey.Key
	Host     simnet.HostID
	Capacity float64 // C_X reported at registration (Section 2.3.1)
	Used     float64 // present workload Used_X (Figure 4)

	// MobileRingID is the peer's node in the mobile layer (all peers).
	MobileRingID overlay.NodeID
	// StatRingID is the peer's node in the stationary layer, or
	// overlay.NoNode for mobile peers.
	StatRingID overlay.NodeID

	// entry is the stationary peer used to inject discovery and publish
	// messages into the stationary layer; a stationary peer is its own
	// entry.
	entry *Peer

	// registry is R(i): the peers registered as interested in this peer's
	// movement (Section 2.3.1), in registration order.
	registry []*Peer

	// cache holds this peer's learned state-pairs for other peers,
	// keyed by PeerID: the distributed states of Section 1.
	cache map[PeerID]StatePair

	// store is the location repository fragment held by a stationary
	// peer: key → published state-pair of a mobile peer.
	store map[hashkey.Key]StatePair
}

// Avail returns the peer's remaining capacity (Figure 4).
func (p *Peer) Avail() float64 { return p.Capacity - p.Used }

// Registry returns R(p), the peers registered to p.
func (p *Peer) Registry() []*Peer { return p.registry }

// Network is a Bristle deployment: the underlay, both overlay layers, and
// all peers.
type Network struct {
	cfg Config

	// Net is the underlay; Sim its (optional) event clock.
	Net *simnet.Network
	Sim *simnet.Simulator

	// MobileRing is the data overlay containing every peer.
	MobileRing Substrate
	// StationaryRing is the location-management overlay of stationary
	// peers only.
	StationaryRing Substrate

	peers    []*Peer
	byMobile map[overlay.NodeID]*Peer
	byStat   map[overlay.NodeID]*Peer

	arc    hashkey.Arc // stationary key region under clustered naming
	hasArc bool
	rng    *rand.Rand

	// Stats accumulates traffic accounting across operations.
	Stats Stats
}

// Stats counts Bristle control- and data-plane activity.
type Stats struct {
	DataHops        uint64  // application-level hops of data routes
	DataCost        float64 // underlay cost of data hops
	Discoveries     uint64  // _discovery operations performed
	DiscoveryHops   uint64  // application-level hops spent resolving
	DiscoveryCost   float64
	DiscoveryMisses uint64 // discoveries that found no valid record
	Publishes       uint64 // location publications to the stationary layer
	PublishHops     uint64
	PublishCost     float64
	UpdateMessages  uint64 // LDT advertisement messages (tree edges)
	UpdateCost      float64
	UpdatesLost     uint64 // LDT pushes dropped by failure injection
	FailedSends     uint64 // sends to stale cached addresses
	FailedSendCost  float64
}

// NewNetwork creates an empty Bristle deployment over net. sim may be nil
// for synchronous use (leases then compare against explicit times).
func NewNetwork(cfg Config, net *simnet.Network, sim *simnet.Simulator, rng *rand.Rand) *Network {
	cfg.sanitize()
	n := &Network{
		cfg:      cfg,
		Net:      net,
		Sim:      sim,
		byMobile: make(map[overlay.NodeID]*Peer),
		byStat:   make(map[overlay.NodeID]*Peer),
		rng:      rng,
	}
	mk := cfg.NewSubstrate
	if mk == nil {
		mk = func(oc overlay.Config, sn *simnet.Network) Substrate {
			return overlay.NewRing(oc, sn)
		}
	}
	n.MobileRing = mk(cfg.Overlay, net)
	n.StationaryRing = mk(cfg.Overlay, net)
	if cfg.Naming == Clustered {
		frac := cfg.StationaryFraction
		if frac <= 0 || frac >= 1 {
			frac = 0.5
		}
		n.arc = hashkey.StationaryArc(frac)
		n.hasArc = true
	}
	return n
}

// Config returns the network's configuration (a copy).
func (n *Network) Config() Config { return n.cfg }

// StationaryArc returns the clustered-naming key region and whether one is
// in force.
func (n *Network) StationaryArc() (hashkey.Arc, bool) { return n.arc, n.hasArc }

// NumPeers returns the total number of peers ever added.
func (n *Network) NumPeers() int { return len(n.peers) }

// Peers returns all peers in creation order. The slice is shared; treat it
// as read-only.
func (n *Network) Peers() []*Peer { return n.peers }

// Peer returns the peer with the given ID, or nil.
func (n *Network) Peer(id PeerID) *Peer {
	if id < 0 || int(id) >= len(n.peers) {
		return nil
	}
	return n.peers[id]
}

// PeerByMobileNode maps a mobile-ring node to its peer.
func (n *Network) PeerByMobileNode(id overlay.NodeID) *Peer { return n.byMobile[id] }

// PeerByStatNode maps a stationary-ring node to its peer.
func (n *Network) PeerByStatNode(id overlay.NodeID) *Peer { return n.byStat[id] }

// now returns the current virtual time (zero without a simulator).
func (n *Network) now() simnet.Time {
	if n.Sim != nil {
		return n.Sim.Now()
	}
	return 0
}

// leaseUntil computes a lease expiry from now.
func (n *Network) leaseUntil(now simnet.Time) simnet.Time {
	if n.cfg.LeaseTTL == 0 {
		return simnet.Inf
	}
	return now + n.cfg.LeaseTTL
}

// assignKey draws a key for a new peer under the configured naming scheme.
func (n *Network) assignKey(kind Kind) hashkey.Key {
	if n.cfg.Naming == Scrambled || !n.hasArc {
		return hashkey.Random(n.rng)
	}
	if kind == Stationary {
		return n.arc.RandomIn(n.rng)
	}
	return n.arc.RandomOutside(n.rng)
}

// AddPeer joins a peer of the given kind and capacity: attaches a host to
// a random stub router, assigns a key per the naming scheme, joins the
// mobile ring (and the stationary ring for stationary peers), and picks a
// stationary entry point. Peers should be added before traffic starts;
// dynamic join/leave is exercised through Join/Leave.
func (n *Network) AddPeer(kind Kind, capacity float64) (*Peer, error) {
	host := n.Net.AttachHostRandom(n.rng)
	return n.addPeerOnHost(kind, capacity, host)
}

func (n *Network) addPeerOnHost(kind Kind, capacity float64, host simnet.HostID) (*Peer, error) {
	p := &Peer{
		ID:       PeerID(len(n.peers)),
		Kind:     kind,
		Host:     host,
		Capacity: capacity,
		cache:    make(map[PeerID]StatePair),
	}
	// Retry on (astronomically unlikely) key collisions.
	for tries := 0; ; tries++ {
		p.Key = n.assignKey(kind)
		id, err := n.MobileRing.AddNode(p.Key, host)
		if err == nil {
			p.MobileRingID = id
			break
		}
		if tries > 64 {
			return nil, fmt.Errorf("core: cannot place peer: %v", err)
		}
	}
	p.StatRingID = overlay.NoNode
	if kind == Stationary {
		id, err := n.StationaryRing.AddNode(p.Key, host)
		if err != nil {
			return nil, fmt.Errorf("core: stationary ring join: %v", err)
		}
		p.StatRingID = id
		p.store = make(map[hashkey.Key]StatePair)
		p.entry = p
	}
	n.peers = append(n.peers, p)
	n.byMobile[p.MobileRingID] = p
	if p.StatRingID != overlay.NoNode {
		n.byStat[p.StatRingID] = p
	}
	if kind == Mobile {
		n.assignEntry(p)
	}
	return p, nil
}

// assignEntry picks the peer's stationary-layer entry point: the
// underlay-nearest of a few random stationary peers (exploiting network
// proximity as §3 optimization (1) suggests).
func (n *Network) assignEntry(p *Peer) {
	stats := n.StationaryRing.Refs()
	if len(stats) == 0 {
		p.entry = nil
		return
	}
	const choices = 3
	var best *Peer
	bestCost := 0.0
	for i := 0; i < choices; i++ {
		cand := n.byStat[stats[n.rng.Intn(len(stats))].ID]
		c := n.Net.Cost(p.Host, cand.Host)
		if best == nil || c < bestCost {
			best, bestCost = cand, c
		}
	}
	p.entry = best
}

// RefreshEntries re-picks entry points for all mobile peers; call after
// adding the stationary population when peers were added out of order.
func (n *Network) RefreshEntries() {
	for _, p := range n.peers {
		if p.Kind == Mobile {
			n.assignEntry(p)
		}
	}
}

// Stabilize rebuilds both rings' routing state (periodic refresh).
func (n *Network) Stabilize() {
	n.MobileRing.Stabilize()
	n.StationaryRing.Stabilize()
}
