package core

import (
	"math"
	"math/rand"
	"testing"

	"bristle/internal/hashkey"
	"bristle/internal/simnet"
	"bristle/internal/topology"
)

// buildNetwork creates a Bristle deployment with the given stationary and
// mobile populations.
func buildNetwork(t testing.TB, cfg Config, stationary, mobile int, seed int64) (*Network, *simnet.Simulator) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, err := topology.GenerateTransitStub(topology.TransitStubParams{
		TransitDomains:   2,
		TransitPerDomain: 3,
		StubsPerTransit:  3,
		StubPerDomain:    4,
		EdgeProb:         0.3,
		WeightJitter:     0.2,
	}, rng)
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	sim := &simnet.Simulator{}
	net := simnet.NewNetwork(g, sim)
	if cfg.StationaryFraction == 0 && stationary+mobile > 0 {
		cfg.StationaryFraction = float64(stationary) / float64(stationary+mobile)
	}
	bn := NewNetwork(cfg, net, sim, rng)
	for i := 0; i < stationary; i++ {
		if _, err := bn.AddPeer(Stationary, 1+float64(rng.Intn(15))); err != nil {
			t.Fatalf("AddPeer stationary: %v", err)
		}
	}
	for i := 0; i < mobile; i++ {
		if _, err := bn.AddPeer(Mobile, 1+float64(rng.Intn(15))); err != nil {
			t.Fatalf("AddPeer mobile: %v", err)
		}
	}
	bn.RefreshEntries()
	return bn, sim
}

func peersOfKind(n *Network, k Kind) []*Peer {
	var out []*Peer
	for _, p := range n.Peers() {
		if p.Kind == k && n.MobileRing.Alive(p.MobileRingID) {
			out = append(out, p)
		}
	}
	return out
}

func TestKindAndNamingStrings(t *testing.T) {
	if Stationary.String() != "stationary" || Mobile.String() != "mobile" {
		t.Error("Kind.String mismatch")
	}
	if Scrambled.String() != "scrambled" || Clustered.String() != "clustered" {
		t.Error("Naming.String mismatch")
	}
}

func TestClusteredNamingSeparatesKeys(t *testing.T) {
	cfg := DefaultConfig()
	bn, _ := buildNetwork(t, cfg, 60, 40, 1)
	arc, ok := bn.StationaryArc()
	if !ok {
		t.Fatal("clustered network has no arc")
	}
	for _, p := range bn.Peers() {
		in := arc.Contains(p.Key)
		if p.Kind == Stationary && !in {
			t.Fatalf("stationary peer %d key %v outside [L,U]", p.ID, p.Key)
		}
		if p.Kind == Mobile && in {
			t.Fatalf("mobile peer %d key %v inside [L,U]", p.ID, p.Key)
		}
	}
	if frac := arc.Fraction(); math.Abs(frac-0.6) > 1e-9 {
		t.Fatalf("arc fraction %v, want 0.6", frac)
	}
}

func TestScrambledNamingHasNoArc(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Naming = Scrambled
	bn, _ := buildNetwork(t, cfg, 20, 20, 2)
	if _, ok := bn.StationaryArc(); ok {
		t.Fatal("scrambled network reports an arc")
	}
}

func TestTwoLayersShareNodes(t *testing.T) {
	bn, _ := buildNetwork(t, DefaultConfig(), 30, 20, 3)
	if bn.MobileRing.Size() != 50 {
		t.Fatalf("mobile ring size %d, want 50", bn.MobileRing.Size())
	}
	if bn.StationaryRing.Size() != 30 {
		t.Fatalf("stationary ring size %d, want 30", bn.StationaryRing.Size())
	}
	// Every stationary peer appears on both rings with the same key.
	for _, p := range peersOfKind(bn, Stationary) {
		mn, okM := bn.MobileRing.RefOf(p.MobileRingID)
		sn, okS := bn.StationaryRing.RefOf(p.StatRingID)
		if !okM || !okS || mn.Key != sn.Key {
			t.Fatalf("stationary peer %d inconsistent across layers", p.ID)
		}
	}
}

func TestPublishAndDiscover(t *testing.T) {
	bn, _ := buildNetwork(t, DefaultConfig(), 40, 20, 4)
	mob := peersOfKind(bn, Mobile)[0]
	stat := peersOfKind(bn, Stationary)[0]

	if _, err := bn.PublishLocation(mob); err != nil {
		t.Fatalf("publish: %v", err)
	}
	rec, op, err := bn.Discover(stat, mob.Key)
	if err != nil {
		t.Fatalf("discover: %v", err)
	}
	if !bn.Net.Valid(rec.Addr) || rec.Addr.Host != mob.Host {
		t.Fatalf("resolved wrong address %v", rec.Addr)
	}
	if op.Hops < 1 {
		t.Fatal("discovery accounted no hops")
	}
}

func TestDiscoverUnpublishedMisses(t *testing.T) {
	bn, _ := buildNetwork(t, DefaultConfig(), 40, 20, 5)
	mob := peersOfKind(bn, Mobile)[0]
	stat := peersOfKind(bn, Stationary)[0]
	_, _, err := bn.Discover(stat, mob.Key)
	if err != ErrNotFound {
		t.Fatalf("discover unpublished: err = %v, want ErrNotFound", err)
	}
	if bn.Stats.DiscoveryMisses != 1 {
		t.Fatalf("miss counter = %d", bn.Stats.DiscoveryMisses)
	}
}

func TestDiscoverAfterMoveNeedsRepublish(t *testing.T) {
	bn, _ := buildNetwork(t, DefaultConfig(), 40, 20, 6)
	mob := peersOfKind(bn, Mobile)[0]
	stat := peersOfKind(bn, Stationary)[0]

	if _, err := bn.PublishLocation(mob); err != nil {
		t.Fatal(err)
	}
	bn.MoveSilently(mob) // published record now stale
	if _, _, err := bn.Discover(stat, mob.Key); err != ErrNotFound {
		t.Fatalf("stale record should miss, got %v", err)
	}
	if _, err := bn.PublishLocation(mob); err != nil {
		t.Fatal(err)
	}
	rec, _, err := bn.Discover(stat, mob.Key)
	if err != nil {
		t.Fatalf("discover after republish: %v", err)
	}
	if rec.Addr.Router != bn.Net.RouterOf(mob.Host) {
		t.Fatal("resolved address is not the new attachment point")
	}
}

func TestDiscoveryCachesResolvedAddress(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheResolved = true
	bn, _ := buildNetwork(t, cfg, 40, 20, 7)
	mob := peersOfKind(bn, Mobile)[0]
	stat := peersOfKind(bn, Stationary)[0]
	if _, err := bn.PublishLocation(mob); err != nil {
		t.Fatal(err)
	}
	if _, _, err := bn.Discover(stat, mob.Key); err != nil {
		t.Fatal(err)
	}
	sp, ok := stat.cache[mob.ID]
	if !ok || !bn.Net.Valid(sp.Addr) {
		t.Fatal("discovery did not cache the resolved state-pair")
	}

	// With caching disabled nothing is stored.
	cfg.CacheResolved = false
	bn2, _ := buildNetwork(t, cfg, 40, 20, 7)
	mob2 := peersOfKind(bn2, Mobile)[0]
	stat2 := peersOfKind(bn2, Stationary)[0]
	if _, err := bn2.PublishLocation(mob2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := bn2.Discover(stat2, mob2.Key); err != nil {
		t.Fatal(err)
	}
	if _, ok := stat2.cache[mob2.ID]; ok {
		t.Fatal("CacheResolved=false still cached")
	}
}

func TestRegisterIdempotentAndDeregister(t *testing.T) {
	bn, _ := buildNetwork(t, DefaultConfig(), 10, 10, 8)
	a := peersOfKind(bn, Stationary)[0]
	b := peersOfKind(bn, Mobile)[0]
	bn.Register(a, b)
	bn.Register(a, b)
	if len(b.Registry()) != 1 {
		t.Fatalf("duplicate registration: %d entries", len(b.Registry()))
	}
	if _, ok := a.cache[b.ID]; !ok {
		t.Fatal("registration did not seed the cache (early binding)")
	}
	bn.Deregister(a, b)
	if len(b.Registry()) != 0 {
		t.Fatal("deregister failed")
	}
}

func TestBuildRegistriesLogarithmicSize(t *testing.T) {
	bn, _ := buildNetwork(t, DefaultConfig(), 150, 150, 9)
	bn.BuildRegistries()
	logN := math.Log2(300)
	var total float64
	count := 0
	for _, p := range bn.Peers() {
		total += float64(len(p.Registry()))
		count++
	}
	mean := total / float64(count)
	// Registry size ≈ in-degree ≈ out-degree = O(log N).
	if mean > 8*logN || mean < 1 {
		t.Fatalf("mean registry size %.1f implausible for log2(N)=%.1f", mean, logN)
	}
}

func TestUpdateLocationRefreshesRegistrants(t *testing.T) {
	bn, _ := buildNetwork(t, DefaultConfig(), 40, 20, 10)
	bn.BuildRegistries()
	mob := peersOfKind(bn, Mobile)[0]
	if len(mob.Registry()) == 0 {
		t.Skip("no registrants for this peer")
	}
	bn.MoveSilently(mob)
	us, err := bn.UpdateLocation(mob)
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	if us.Messages != len(mob.Registry()) {
		t.Fatalf("LDT delivered %d messages for %d registrants", us.Messages, len(mob.Registry()))
	}
	if us.Depth < 2 {
		t.Fatalf("tree depth %d for non-empty registry", us.Depth)
	}
	for _, r := range mob.Registry() {
		sp, ok := r.cache[mob.ID]
		if !ok || !bn.Net.Valid(sp.Addr) {
			t.Fatalf("registrant %d not refreshed", r.ID)
		}
	}
}

func TestMoveAndUpdateOnStationaryFails(t *testing.T) {
	bn, _ := buildNetwork(t, DefaultConfig(), 10, 5, 11)
	stat := peersOfKind(bn, Stationary)[0]
	if _, err := bn.MoveAndUpdate(stat); err == nil {
		t.Fatal("MoveAndUpdate accepted a stationary peer")
	}
}

func TestRouteDataAllStationary(t *testing.T) {
	bn, _ := buildNetwork(t, DefaultConfig(), 80, 0, 12)
	peers := peersOfKind(bn, Stationary)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 50; i++ {
		src := peers[rng.Intn(len(peers))]
		dst := peers[rng.Intn(len(peers))]
		rs, err := bn.RouteData(src, dst.Key)
		if err != nil {
			t.Fatalf("route: %v", err)
		}
		if rs.Dest.ID != dst.ID {
			t.Fatalf("route reached %d, want %d", rs.Dest.ID, dst.ID)
		}
		if rs.Discoveries != 0 {
			t.Fatal("all-stationary route needed discovery")
		}
		if rs.TotalHops != rs.DataHops {
			t.Fatal("hop accounting mismatch without discoveries")
		}
	}
}

func TestRouteDataResolvesMobileForwarders(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Naming = Scrambled // force mobile nodes onto stationary routes
	cfg.CacheResolved = false
	bn, _ := buildNetwork(t, cfg, 50, 50, 13)
	// Every mobile peer moves silently, then publishes (the §4.1 setup).
	for _, p := range peersOfKind(bn, Mobile) {
		bn.MoveSilently(p)
		if _, err := bn.PublishLocation(p); err != nil {
			t.Fatal(err)
		}
	}
	stats := peersOfKind(bn, Stationary)
	rng := rand.New(rand.NewSource(100))
	discoveries := 0
	for i := 0; i < 100; i++ {
		src := stats[rng.Intn(len(stats))]
		dst := stats[rng.Intn(len(stats))]
		rs, err := bn.RouteData(src, dst.Key)
		if err != nil {
			t.Fatalf("route: %v", err)
		}
		if rs.Dest.ID != dst.ID {
			t.Fatalf("route reached %d, want %d", rs.Dest.ID, dst.ID)
		}
		discoveries += rs.Discoveries
		if rs.Discoveries > 0 && rs.TotalHops <= rs.DataHops {
			t.Fatal("discovery hops not accounted")
		}
	}
	if discoveries == 0 {
		t.Fatal("scrambled naming with 50% mobile never needed discovery")
	}
}

func TestRouteDataFailsWhenUnpublished(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Naming = Scrambled
	cfg.CacheResolved = false
	bn, _ := buildNetwork(t, cfg, 30, 70, 14)
	// Mobile peers move but never publish: discoveries must miss.
	for _, p := range peersOfKind(bn, Mobile) {
		bn.MoveSilently(p)
	}
	stats := peersOfKind(bn, Stationary)
	rng := rand.New(rand.NewSource(101))
	failed := 0
	for i := 0; i < 50; i++ {
		src := stats[rng.Intn(len(stats))]
		dst := stats[rng.Intn(len(stats))]
		if _, err := bn.RouteData(src, dst.Key); err == ErrUnresolvable {
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("no route failed despite unpublished moved forwarders")
	}
}

func TestClusteredRoutesAvoidDiscoveryAtHalfMobile(t *testing.T) {
	// Equation (1): with N−M ≥ M under clustered naming, stationary-to-
	// stationary routes need no mobile forwarders at all.
	cfg := DefaultConfig()
	cfg.Naming = Clustered
	cfg.CacheResolved = false
	bn, _ := buildNetwork(t, cfg, 60, 60, 15)
	for _, p := range peersOfKind(bn, Mobile) {
		bn.MoveSilently(p)
		if _, err := bn.PublishLocation(p); err != nil {
			t.Fatal(err)
		}
	}
	stats := peersOfKind(bn, Stationary)
	rng := rand.New(rand.NewSource(102))
	for i := 0; i < 100; i++ {
		src := stats[rng.Intn(len(stats))]
		dst := stats[rng.Intn(len(stats))]
		rs, err := bn.RouteData(src, dst.Key)
		if err != nil {
			t.Fatalf("route: %v", err)
		}
		if rs.Discoveries != 0 {
			t.Fatalf("clustered naming at M/N=50%% required %d discoveries", rs.Discoveries)
		}
	}
}

func TestLeaseExpiryForcesRediscovery(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LeaseTTL = 10
	bn, sim := buildNetwork(t, cfg, 40, 20, 16)
	mob := peersOfKind(bn, Mobile)[0]
	stat := peersOfKind(bn, Stationary)[0]
	if _, err := bn.PublishLocation(mob); err != nil {
		t.Fatal(err)
	}
	if _, _, err := bn.Discover(stat, mob.Key); err != nil {
		t.Fatalf("fresh discover: %v", err)
	}
	// Advance past the lease.
	sim.Schedule(20, func() {})
	sim.RunAll()
	if _, _, err := bn.Discover(stat, mob.Key); err != ErrNotFound {
		t.Fatalf("expired record should miss, got %v", err)
	}
}

func TestStatePairValidAt(t *testing.T) {
	sp := StatePair{Addr: simnet.Addr{Host: 1, Router: 1, Epoch: 1}, Expires: 10}
	if !sp.ValidAt(5) {
		t.Error("unexpired lease invalid")
	}
	if sp.ValidAt(10) {
		t.Error("lease valid at expiry instant")
	}
	if (StatePair{Expires: 10}).ValidAt(5) {
		t.Error("null address considered valid")
	}
}

func TestJoinEstablishesRegistrations(t *testing.T) {
	bn, _ := buildNetwork(t, DefaultConfig(), 40, 20, 17)
	js, err := bn.Join(Mobile, 8)
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if js.Registrations == 0 {
		t.Fatal("join produced no registrations")
	}
	logN := math.Log2(float64(bn.NumPeers()))
	if float64(js.Messages) > 8*logN {
		t.Fatalf("join used %d messages, want O(log N)≈%.0f", js.Messages, logN)
	}
	// The newcomer must be discoverable right away.
	stat := peersOfKind(bn, Stationary)[0]
	if _, _, err := bn.Discover(stat, js.Peer.Key); err != nil {
		t.Fatalf("newcomer not discoverable: %v", err)
	}
}

func TestLeaveRemovesEverywhere(t *testing.T) {
	bn, _ := buildNetwork(t, DefaultConfig(), 40, 20, 18)
	bn.BuildRegistries()
	victim := peersOfKind(bn, Mobile)[0]
	if err := bn.Leave(victim); err != nil {
		t.Fatalf("leave: %v", err)
	}
	if bn.MobileRing.Alive(victim.MobileRingID) {
		t.Fatal("victim still on mobile ring")
	}
	for _, p := range bn.Peers() {
		for _, r := range p.Registry() {
			if r.ID == victim.ID {
				t.Fatal("victim still in a registry")
			}
		}
	}
	if err := bn.Leave(victim); err == nil {
		t.Fatal("double leave succeeded")
	}
	// Routes still converge.
	stats := peersOfKind(bn, Stationary)
	rs, err := bn.RouteData(stats[0], stats[1].Key)
	if err != nil || rs.Dest.ID != stats[1].ID {
		t.Fatalf("post-leave route broken: %v", err)
	}
}

func TestLeaveStationaryReassignsEntries(t *testing.T) {
	bn, _ := buildNetwork(t, DefaultConfig(), 5, 20, 19)
	// Find a stationary peer serving as someone's entry.
	var victim *Peer
	for _, s := range peersOfKind(bn, Stationary) {
		for _, m := range peersOfKind(bn, Mobile) {
			if m.entry != nil && m.entry.ID == s.ID {
				victim = s
				break
			}
		}
		if victim != nil {
			break
		}
	}
	if victim == nil {
		t.Skip("no stationary peer is an entry point")
	}
	if err := bn.Leave(victim); err != nil {
		t.Fatal(err)
	}
	for _, m := range peersOfKind(bn, Mobile) {
		if m.entry != nil && m.entry.ID == victim.ID {
			t.Fatal("mobile peer still points at departed entry")
		}
	}
}

func TestReplicationSurvivesResolverLoss(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReplicationFactor = 3
	bn, _ := buildNetwork(t, cfg, 40, 20, 20)
	mob := peersOfKind(bn, Mobile)[0]
	if _, err := bn.PublishLocation(mob); err != nil {
		t.Fatal(err)
	}
	resolver := bn.LookupStationary(mob.Key)
	if err := bn.Leave(resolver); err != nil {
		t.Fatal(err)
	}
	stat := peersOfKind(bn, Stationary)[0]
	if stat.ID == resolver.ID {
		stat = peersOfKind(bn, Stationary)[1]
	}
	if _, _, err := bn.Discover(stat, mob.Key); err != nil {
		t.Fatalf("discovery failed after resolver loss despite replication: %v", err)
	}
}

func TestRefreshReregisters(t *testing.T) {
	bn, _ := buildNetwork(t, DefaultConfig(), 20, 20, 21)
	p := peersOfKind(bn, Mobile)[0]
	bn.Refresh(p)
	for _, ref := range bn.MobileRing.NeighborsOf(p.MobileRingID) {
		q := bn.PeerByMobileNode(ref.ID)
		found := false
		for _, r := range q.Registry() {
			if r.ID == p.ID {
				found = true
			}
		}
		if !found {
			t.Fatalf("refresh did not register %d to neighbor %d", p.ID, q.ID)
		}
	}
}

func TestLookupOracles(t *testing.T) {
	bn, _ := buildNetwork(t, DefaultConfig(), 30, 30, 22)
	rng := rand.New(rand.NewSource(103))
	for i := 0; i < 50; i++ {
		key := hashkey.Random(rng)
		p := bn.Lookup(key)
		if p == nil {
			t.Fatal("Lookup returned nil")
		}
		s := bn.LookupStationary(key)
		if s == nil || s.Kind != Stationary {
			t.Fatal("LookupStationary returned non-stationary")
		}
	}
}

func TestFailedSendAccountedOnStaleCache(t *testing.T) {
	cfg := DefaultConfig()
	bn, _ := buildNetwork(t, cfg, 40, 20, 23)
	bn.BuildRegistries()
	mob := peersOfKind(bn, Mobile)[0]
	if len(mob.Registry()) == 0 {
		t.Skip("no registrants")
	}
	// Give everyone fresh caches, then move silently: caches go stale but
	// leases remain valid ⇒ the next forward pays a failed send.
	if _, err := bn.UpdateLocation(mob); err != nil {
		t.Fatal(err)
	}
	bn.MoveSilently(mob)
	if _, err := bn.PublishLocation(mob); err != nil {
		t.Fatal(err)
	}

	sender := mob.Registry()[0]
	var rs RouteStats
	if !bn.forwardTo(sender, mob, &rs) {
		t.Fatal("forward failed despite published location")
	}
	if rs.FailedSends != 1 {
		t.Fatalf("FailedSends = %d, want 1", rs.FailedSends)
	}
	if rs.Discoveries != 1 {
		t.Fatalf("Discoveries = %d, want 1", rs.Discoveries)
	}
	if bn.Stats.FailedSends != 1 {
		t.Fatalf("global FailedSends = %d", bn.Stats.FailedSends)
	}
}

func TestNoStationaryLayerErrors(t *testing.T) {
	cfg := DefaultConfig()
	bn, _ := buildNetwork(t, cfg, 0, 10, 24)
	mob := peersOfKind(bn, Mobile)[0]
	if _, err := bn.PublishLocation(mob); err != ErrNoStationary {
		t.Fatalf("publish without stationary layer: %v", err)
	}
	if _, _, err := bn.Discover(mob, mob.Key); err != ErrNoStationary {
		t.Fatalf("discover without stationary layer: %v", err)
	}
}

func TestLocationStoreSpreadUnderClusteredNaming(t *testing.T) {
	// Under clustered naming every mobile key is outside the stationary
	// arc; without the location-key rehash all records would concentrate
	// on the boundary stationary peers. Verify the store spreads instead.
	cfg := DefaultConfig()
	cfg.ReplicationFactor = 1
	bn, _ := buildNetwork(t, cfg, 60, 120, 26)
	for _, p := range peersOfKind(bn, Mobile) {
		if _, err := bn.PublishLocation(p); err != nil {
			t.Fatal(err)
		}
	}
	holders := 0
	maxStore := 0
	for _, p := range peersOfKind(bn, Stationary) {
		if s := StoreSize(p); s > 0 {
			holders++
			if s > maxStore {
				maxStore = s
			}
		}
	}
	// 120 records over 60 stationary peers: boundary concentration would
	// put them on ~2 peers; uniform placement touches dozens.
	if holders < 20 {
		t.Fatalf("records concentrated on %d stationary peers", holders)
	}
	if maxStore > 30 {
		t.Fatalf("hotspot: one stationary peer holds %d of 120 records", maxStore)
	}
}

func TestDiscoverFallsOverToReplicas(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReplicationFactor = 3
	bn, _ := buildNetwork(t, cfg, 50, 20, 27)
	mob := peersOfKind(bn, Mobile)[0]
	if _, err := bn.PublishLocation(mob); err != nil {
		t.Fatal(err)
	}
	// Empty the primary resolver's store without removing the node —
	// models a resolver that lost state (restart) rather than departed.
	lkOwner := bn.LookupStationary(bn.locationKey(mob.Key))
	for k := range lkOwner.store {
		delete(lkOwner.store, k)
	}
	probe := peersOfKind(bn, Stationary)[0]
	if probe.ID == lkOwner.ID {
		probe = peersOfKind(bn, Stationary)[1]
	}
	rec, op, err := bn.Discover(probe, mob.Key)
	if err != nil {
		t.Fatalf("discover after resolver state loss: %v", err)
	}
	if !bn.Net.Valid(rec.Addr) {
		t.Fatal("fallback returned invalid record")
	}
	if op.Hops < 2 {
		t.Fatal("fallback should cost extra hops")
	}
}

func TestLossyUpdatesCoveredByLateBinding(t *testing.T) {
	// §2.3.2: registry members can miss pushed updates; the lease + late
	// binding (discovery) must cover — no message is ever lost end-to-end.
	cfg := DefaultConfig()
	cfg.UpdateLossRate = 0.5
	bn, _ := buildNetwork(t, cfg, 60, 40, 28)
	bn.BuildRegistries()
	mobs := peersOfKind(bn, Mobile)
	for _, p := range mobs {
		if _, err := bn.PublishLocation(p); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(29))
	delivered, attempted := 0, 0
	for round := 0; round < 4; round++ {
		for _, p := range mobs {
			if _, err := bn.MoveAndUpdate(p); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 80; i++ {
			dst := mobs[rng.Intn(len(mobs))]
			if len(dst.Registry()) == 0 {
				continue
			}
			src := dst.Registry()[rng.Intn(len(dst.Registry()))]
			attempted++
			if _, err := bn.SendDirect(src, dst); err == nil {
				delivered++
			}
		}
	}
	if attempted == 0 {
		t.Skip("no registered senders")
	}
	if delivered != attempted {
		t.Fatalf("delivery %d/%d under 50%% update loss", delivered, attempted)
	}
	if bn.Stats.UpdatesLost == 0 {
		t.Fatal("loss injection never fired — test is vacuous")
	}
	// The lost pushes must show up as extra discoveries/failed sends.
	if bn.Stats.FailedSends == 0 && bn.Stats.Discoveries == 0 {
		t.Fatal("no late-binding activity despite lost updates")
	}
}

func TestPeerAccessors(t *testing.T) {
	bn, _ := buildNetwork(t, DefaultConfig(), 5, 5, 25)
	if bn.Peer(NoPeer) != nil || bn.Peer(PeerID(999)) != nil {
		t.Fatal("out-of-range Peer() not nil")
	}
	p := bn.Peers()[0]
	if bn.Peer(p.ID) != p {
		t.Fatal("Peer() lookup broken")
	}
	if bn.NumPeers() != 10 {
		t.Fatalf("NumPeers = %d", bn.NumPeers())
	}
	if p.Avail() != p.Capacity-p.Used {
		t.Fatal("Avail wrong")
	}
}
