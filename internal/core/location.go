package core

import (
	"errors"
	"fmt"

	"bristle/internal/hashkey"
	"bristle/internal/ldt"
	"bristle/internal/overlay"
	"bristle/internal/simnet"
	"bristle/internal/topology"
)

// ErrNotFound is returned by Discover when no valid location record exists
// for the requested key.
var ErrNotFound = errors.New("core: no valid location record")

// ErrNoStationary is returned when an operation needs the stationary layer
// and none exists.
var ErrNoStationary = errors.New("core: no stationary layer")

// Register records x's interest in y's movement (Section 2.3.1): x joins
// R(y) and will receive y's proactive location updates through y's LDT.
// Registering twice is idempotent. x also learns y's current address
// (early binding starts with a fresh lease).
func (n *Network) Register(x, y *Peer) {
	for _, r := range y.registry {
		if r.ID == x.ID {
			return
		}
	}
	y.registry = append(y.registry, x)
	x.cache[y.ID] = StatePair{
		Key:     y.Key,
		Addr:    n.Net.AddrOf(y.Host),
		Expires: n.leaseUntil(n.now()),
	}
}

// Deregister removes x from R(y).
func (n *Network) Deregister(x, y *Peer) {
	for i, r := range y.registry {
		if r.ID == x.ID {
			y.registry = append(y.registry[:i], y.registry[i+1:]...)
			return
		}
	}
}

// BuildRegistries derives every peer's registry from the overlay state, as
// Figure 5 prescribes: whenever a peer holds another peer's state-pair in
// its routing table, it registers itself to that peer. Registries built
// this way have O(log N) members — the LDT size property of Section 2.3.
func (n *Network) BuildRegistries() {
	for _, p := range n.peers {
		p.registry = p.registry[:0]
	}
	for _, p := range n.peers {
		for _, ref := range n.MobileRing.NeighborsOf(p.MobileRingID) {
			neighbor := n.byMobile[ref.ID]
			if neighbor == nil || neighbor.ID == p.ID {
				continue
			}
			// p keeps neighbor's state-pair ⇒ p registers to neighbor.
			n.Register(p, neighbor)
		}
	}
}

// OpStats reports the cost of one control-plane operation.
type OpStats struct {
	Hops int
	Cost float64
}

// locationKey maps a peer key to the key under which its location record
// is stored in the stationary layer.
//
// Under scrambled naming this is the identity (the paper's "the node
// whose hash key is the closest to Y's"). Under clustered naming every
// mobile key lies *outside* the stationary arc, so the closest stationary
// peers are the handful at the arc boundaries — all location records
// would pile onto them, creating hotspots and a correlated-failure risk
// the paper does not discuss. We therefore rehash the key uniformly into
// the stationary arc, preserving O(log N) discovery while spreading the
// location store evenly across the stationary layer.
func (n *Network) locationKey(key hashkey.Key) hashkey.Key {
	if !n.hasArc {
		return key
	}
	w := n.arc.Width()
	if w == ^uint64(0) {
		return key
	}
	rehash := uint64(hashkey.FromBytes([]byte(key.String())))
	return n.arc.Lo + hashkey.Key(rehash%(w+1))
}

// PublishLocation pushes p's current address to the stationary layer: a
// route from p's entry point to the stationary peer closest to p.Key,
// which stores the record and replicates it to the ReplicationFactor−1
// next-closest stationary peers (§2.3.2 availability). Returns the
// operation's hop/cost footprint.
func (n *Network) PublishLocation(p *Peer) (OpStats, error) {
	if p.entry == nil || n.StationaryRing.Size() == 0 {
		return OpStats{}, ErrNoStationary
	}
	now := n.now()
	rec := StatePair{Key: p.Key, Addr: n.Net.AddrOf(p.Host), Expires: n.leaseUntil(now)}
	lk := n.locationKey(p.Key)

	var op OpStats
	// Hop from p to its entry point (free if p is its own entry).
	if p.entry.ID != p.ID {
		op.Hops++
		op.Cost += n.Net.Cost(p.Host, p.entry.Host)
	}
	res, err := n.StationaryRing.Route(p.entry.StatRingID, lk, nil)
	if err != nil {
		return op, fmt.Errorf("core: publish route: %w", err)
	}
	op.Hops += res.NumHops()
	op.Cost += n.ringHopsCost(n.StationaryRing, res.Hops)

	// Store at the resolver and its replica neighborhood.
	replicas := n.StationaryRing.NeighborhoodRefs(lk, n.cfg.ReplicationFactor)
	resolver := n.byStat[res.Dest.ID]
	for _, ref := range replicas {
		holder := n.byStat[ref.ID]
		holder.store[p.Key] = rec
		if holder.ID != resolver.ID {
			op.Hops++
			op.Cost += n.Net.Cost(resolver.Host, holder.Host)
		}
	}
	n.Stats.Publishes++
	n.Stats.PublishHops += uint64(op.Hops)
	n.Stats.PublishCost += op.Cost
	return op, nil
}

// Discover resolves the network address of the peer owning key through the
// stationary layer (the _discovery of Figure 2): from's entry point routes
// the request to the stationary peer closest to key, which returns the
// stored record. The reply hop back to the requester is included in the
// accounting. A found-but-expired or found-but-unreachable record counts
// as a miss.
func (n *Network) Discover(from *Peer, key hashkey.Key) (StatePair, OpStats, error) {
	if from.entry == nil || n.StationaryRing.Size() == 0 {
		return StatePair{}, OpStats{}, ErrNoStationary
	}
	now := n.now()
	lk := n.locationKey(key)
	var op OpStats
	if from.entry.ID != from.ID {
		op.Hops++
		op.Cost += n.Net.Cost(from.Host, from.entry.Host)
	}
	res, err := n.StationaryRing.Route(from.entry.StatRingID, lk, nil)
	if err != nil {
		return StatePair{}, op, fmt.Errorf("core: discovery route: %w", err)
	}
	op.Hops += res.NumHops()
	op.Cost += n.ringHopsCost(n.StationaryRing, res.Hops)

	resolver := n.byStat[res.Dest.ID]
	rec, ok := resolver.store[key]

	// §2.3.2 availability: if the resolver has no valid record (it may
	// have become responsible only after churn), fall over to the
	// replication neighborhood — "the requested data item can be rapidly
	// accessed in the remaining k−1 nodes". Each attempt costs one hop.
	if !ok || !rec.ValidAt(now) || !n.Net.Valid(rec.Addr) {
		ok = false
		prev := resolver
		for _, ref := range n.StationaryRing.NeighborhoodRefs(lk, n.cfg.ReplicationFactor) {
			replica := n.byStat[ref.ID]
			if replica.ID == resolver.ID {
				continue
			}
			op.Hops++
			op.Cost += n.Net.Cost(prev.Host, replica.Host)
			prev = replica
			if r, found := replica.store[key]; found && r.ValidAt(now) && n.Net.Valid(r.Addr) {
				rec, ok = r, true
				resolver = replica
				break
			}
		}
	}

	// Reply hop from the answering node back to the requester.
	op.Hops++
	op.Cost += n.Net.Cost(resolver.Host, from.Host)

	n.Stats.Discoveries++
	n.Stats.DiscoveryHops += uint64(op.Hops)
	n.Stats.DiscoveryCost += op.Cost

	if !ok {
		n.Stats.DiscoveryMisses++
		return StatePair{}, op, ErrNotFound
	}
	if n.cfg.CacheResolved {
		if owner := n.ownerOfKey(key); owner != nil {
			from.cache[owner.ID] = rec
		}
	}
	return rec, op, nil
}

// ownerOfKey maps a key back to the peer that owns it exactly, if any.
func (n *Network) ownerOfKey(key hashkey.Key) *Peer {
	ref, ok := n.MobileRing.ClosestRef(key)
	if !ok || ref.Key != key {
		return nil
	}
	return n.byMobile[ref.ID]
}

// UpdateStats reports the footprint of one location update (Section 2.3.1).
type UpdateStats struct {
	Publish  OpStats // stationary-layer publication
	Messages int     // LDT advertisement messages (tree edges)
	Cost     float64 // underlay cost of the LDT advertisement
	Depth    int     // LDT depth (root = 1)
}

// UpdateLocation runs the full location-update protocol for p after a
// movement: publish the new address to the stationary layer, then
// advertise it to R(p) through the capacity-aware LDT of Figure 4. Every
// registry member's cached state-pair for p is refreshed with a new lease
// (early binding).
func (n *Network) UpdateLocation(p *Peer) (UpdateStats, error) {
	var us UpdateStats
	pub, err := n.PublishLocation(p)
	if err != nil {
		return us, err
	}
	us.Publish = pub

	tree, err := n.BuildLDT(p)
	if err != nil {
		return us, err
	}
	us.Messages = tree.Edges()
	us.Cost = tree.EdgeCost(n.Net.RouterDistance)
	us.Depth = tree.Depth()

	// Deliver the update along the tree: refresh every member's lease.
	// With UpdateLossRate > 0 a member may miss the push (§2.3.2) and
	// falls back to late binding on its next send.
	now := n.now()
	rec := StatePair{Key: p.Key, Addr: n.Net.AddrOf(p.Host), Expires: n.leaseUntil(now)}
	tree.Walk(func(tn *ldt.Node) {
		member := n.Peer(PeerID(tn.Member.ID))
		if member == nil || member.ID == p.ID {
			return
		}
		if n.cfg.UpdateLossRate > 0 && n.rng.Float64() < n.cfg.UpdateLossRate {
			n.Stats.UpdatesLost++
			return
		}
		member.cache[p.ID] = rec
	})

	n.Stats.UpdateMessages += uint64(us.Messages)
	n.Stats.UpdateCost += us.Cost
	return us, nil
}

// BuildLDT constructs p's location dissemination tree from its current
// registry, capacities, workloads and attachment points.
func (n *Network) BuildLDT(p *Peer) (*ldt.Tree, error) {
	members := make([]ldt.Member, len(p.registry))
	for i, r := range p.registry {
		members[i] = ldt.Member{
			ID:       int32(r.ID),
			Capacity: r.Capacity,
			Used:     r.Used,
			Router:   n.Net.RouterOf(r.Host),
		}
	}
	params := ldt.Params{
		UnitCost: n.cfg.UnitCost,
		Locality: n.cfg.LDTLocality,
	}
	if params.Locality {
		params.Dist = n.Net.RouterDistance
	}
	root := ldt.Member{
		ID:       int32(p.ID),
		Capacity: p.Capacity,
		Used:     p.Used,
		Router:   n.Net.RouterOf(p.Host),
	}
	return ldt.Build(root, members, params)
}

// MoveAndUpdate relocates mobile peer p to a random new attachment point
// and runs the location-update protocol. It is the common workload step
// for experiments and examples.
func (n *Network) MoveAndUpdate(p *Peer) (UpdateStats, error) {
	if p.Kind != Mobile {
		return UpdateStats{}, fmt.Errorf("core: peer %d is stationary", p.ID)
	}
	n.Net.MoveRandom(p.Host, n.rng)
	return n.UpdateLocation(p)
}

// MoveSilently relocates p without any location update — the failure mode
// Type A suffers from and the Figure 7 experiment's setup ("a mobile node
// only advertises its updated location to the stationary layer" is then
// re-established with PublishLocation).
func (n *Network) MoveSilently(p *Peer) simnet.Addr {
	return n.Net.MoveRandom(p.Host, n.rng)
}

// ringHopsCost sums the underlay cost of a sequence of overlay hops on the
// given ring, using the peers' current attachment points.
func (n *Network) ringHopsCost(ring Substrate, hops []overlay.Hop) float64 {
	total := 0.0
	for _, h := range hops {
		a, okA := ring.HostOf(h.From.ID)
		b, okB := ring.HostOf(h.To.ID)
		if !okA || !okB {
			continue
		}
		total += n.Net.Cost(a, b)
	}
	return total
}

// StoreSize returns how many location records stationary peer p holds —
// the empirical "responsibility" of Figure 3.
func StoreSize(p *Peer) int { return len(p.store) }

// RouterOf is a convenience for experiments needing a peer's attachment.
func (n *Network) RouterOf(p *Peer) topology.RouterID { return n.Net.RouterOf(p.Host) }
