package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bristle/internal/hashkey"
	"bristle/internal/simnet"
	"bristle/internal/topology"
)

// propTopology builds one small shared topology for the property tests.
func propTopology(t *testing.T) *simnet.Network {
	t.Helper()
	g, err := topology.GenerateTransitStub(topology.TransitStubParams{
		TransitDomains: 1, TransitPerDomain: 2,
		StubsPerTransit: 2, StubPerDomain: 3, EdgeProb: 0.4,
	}, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	return simnet.NewNetwork(g, nil)
}

// TestPropertyPublishDiscoverRoundTrip: after any silent move followed by
// a publish, every stationary peer can resolve the mover's current
// address.
func TestPropertyPublishDiscoverRoundTrip(t *testing.T) {
	bn, _ := buildNetwork(t, DefaultConfig(), 40, 30, 30)
	mobs := peersOfKind(bn, Mobile)
	stats := peersOfKind(bn, Stationary)
	rng := rand.New(rand.NewSource(31))

	f := func(mIdx, sIdx uint8, moves uint8) bool {
		m := mobs[int(mIdx)%len(mobs)]
		s := stats[int(sIdx)%len(stats)]
		for i := 0; i < int(moves%3); i++ {
			bn.MoveSilently(m)
		}
		if _, err := bn.PublishLocation(m); err != nil {
			return false
		}
		rec, _, err := bn.Discover(s, m.Key)
		if err != nil {
			return false
		}
		return bn.Net.Valid(rec.Addr) && rec.Addr.Host == m.Host
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPropertyClusteredKeysRespectArc: every key assignment under
// clustered naming lands on the correct side, for arbitrary stationary
// fractions.
func TestPropertyClusteredKeysRespectArc(t *testing.T) {
	netw := propTopology(t)
	f := func(seed int64, fracRaw uint8) bool {
		frac := 0.1 + float64(fracRaw%80)/100
		rng := rand.New(rand.NewSource(seed))
		bn := NewNetwork(Config{
			Naming:             Clustered,
			StationaryFraction: frac,
			ReplicationFactor:  1,
			UnitCost:           1,
		}, netw, nil, rng)
		arc, ok := bn.StationaryArc()
		if !ok {
			return false
		}
		for i := 0; i < 20; i++ {
			s, err := bn.AddPeer(Stationary, 1)
			if err != nil || !arc.Contains(s.Key) {
				return false
			}
			m, err := bn.AddPeer(Mobile, 1)
			if err != nil || arc.Contains(m.Key) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLocationKeyInArc: the location-key rehash always lands
// inside the stationary arc, and is deterministic.
func TestPropertyLocationKeyInArc(t *testing.T) {
	bn, _ := buildNetwork(t, DefaultConfig(), 20, 20, 36)
	arc, _ := bn.StationaryArc()
	f := func(keyRaw uint64) bool {
		lk1 := bn.locationKey(hashkey.Key(keyRaw))
		lk2 := bn.locationKey(hashkey.Key(keyRaw))
		return lk1 == lk2 && arc.Contains(lk1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRegistrySymmetry: after BuildRegistries, x ∈ R(y) exactly
// when x holds y's state-pair in its mobile-ring table.
func TestPropertyRegistrySymmetry(t *testing.T) {
	bn, _ := buildNetwork(t, DefaultConfig(), 40, 40, 37)
	bn.BuildRegistries()
	for _, x := range bn.Peers() {
		holds := map[PeerID]bool{}
		for _, ref := range bn.MobileRing.NeighborsOf(x.MobileRingID) {
			if q := bn.PeerByMobileNode(ref.ID); q != nil {
				holds[q.ID] = true
			}
		}
		for _, y := range bn.Peers() {
			inRegistry := false
			for _, r := range y.Registry() {
				if r.ID == x.ID {
					inRegistry = true
					break
				}
			}
			if holds[y.ID] && !inRegistry {
				t.Fatalf("peer %d holds %d's state but is not registered", x.ID, y.ID)
			}
		}
	}
}
