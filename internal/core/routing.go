package core

import (
	"errors"
	"fmt"

	"bristle/internal/hashkey"
	"bristle/internal/overlay"
)

// ErrUnresolvable is returned when a data route hits a mobile forwarder
// whose address cannot be resolved (discovery miss) — the packet is
// dropped.
var ErrUnresolvable = errors.New("core: next-hop address unresolvable")

// RouteStats summarizes one data route (Figure 2's _route executed hop by
// hop, including every address resolution performed on the way).
type RouteStats struct {
	// Dest is the peer responsible for the target key.
	Dest *Peer
	// DataHops counts data-plane forwards (overlay hops of the route).
	DataHops int
	// TotalHops counts all application-level hops: data forwards plus
	// every hop of every discovery, as measured in Figure 7(a).
	TotalHops int
	// Cost is the summed underlay path cost of all of the above — the
	// "actual path cost" series of Figure 7(b).
	Cost float64
	// Discoveries is the number of _discovery operations the route needed.
	Discoveries int
	// FailedSends counts transmissions to cached-but-stale addresses.
	FailedSends int
}

// RouteData routes a data message from src toward the peer whose key is
// closest to target on the mobile layer, resolving mobile forwarders'
// addresses through the stationary layer as needed (Figure 2):
//
//	if p.addr is null or invalid:  p.addr = _discovery(p.key)
//	_forward(p.addr, j, d)
//
// Stationary next-hops are always directly addressable (their locations
// never change). Mobile next-hops are addressed from the local state-pair
// cache when fresh; otherwise the route pays a failed transmission (stale
// cache), then a discovery, then the forward. A discovery miss drops the
// packet with ErrUnresolvable.
func (n *Network) RouteData(src *Peer, target hashkey.Key) (RouteStats, error) {
	return n.RouteDataPolicy(src, target, RoutePolicy{})
}

// RoutePolicy selects a routing discipline variant for RouteDataPolicy.
type RoutePolicy struct {
	// Unidirectional forces every route clockwise regardless of arc
	// length — the discipline the Equation (1) worst-case analysis
	// assumes, where a route from x1 to x2 with x1 > x2 must wrap through
	// the mobile key region.
	Unidirectional bool
	// PreferStationary applies Section 3 optimization (2): among the
	// next-hop candidates that advance toward the target, a stationary
	// forwarder is always chosen over a mobile one, minimizing the
	// stationary/mobile "flip-flop".
	PreferStationary bool
}

// RouteDataPolicy is RouteData under an explicit routing discipline.
func (n *Network) RouteDataPolicy(src *Peer, target hashkey.Key, pol RoutePolicy) (RouteStats, error) {
	rs := RouteStats{}
	var routeErr error

	visit := func(h overlay.Hop) bool {
		from := n.byMobile[h.From.ID]
		to := n.byMobile[h.To.ID]
		if from == nil || to == nil {
			routeErr = fmt.Errorf("core: hop references unknown peer")
			return false
		}
		ok := n.forwardTo(from, to, &rs)
		if !ok {
			routeErr = ErrUnresolvable
		}
		return ok
	}

	var opts overlay.RouteOptions
	if pol.Unidirectional {
		cw := hashkey.CW
		opts.ForceDir = &cw
	}
	if pol.PreferStationary {
		opts.Prefer = func(ref overlay.Ref) bool {
			p := n.byMobile[ref.ID]
			return p != nil && p.Kind == Stationary
		}
	}

	res, err := n.MobileRing.RouteWithOptions(src.MobileRingID, target, opts, visit)
	if err != nil {
		return rs, err
	}
	if routeErr != nil {
		return rs, routeErr
	}
	rs.Dest = n.byMobile[res.Dest.ID]
	n.Stats.DataHops += uint64(rs.DataHops)
	n.Stats.DataCost += rs.Cost
	return rs, nil
}

// forwardTo accounts for one data forward from peer a to peer b,
// performing address resolution if required. It returns false when the
// forward is impossible (unresolvable address).
func (n *Network) forwardTo(a, b *Peer, rs *RouteStats) bool {
	now := n.now()
	if b.Kind == Stationary {
		// Stationary peers never move: the state-pair learned at join time
		// stays valid forever.
		rs.DataHops++
		rs.TotalHops++
		rs.Cost += n.Net.Cost(a.Host, b.Host)
		return true
	}

	// Mobile next hop: consult a's cached state-pair for b.
	sp, cached := a.cache[b.ID]
	if cached && sp.ValidAt(now) {
		if n.Net.Valid(sp.Addr) {
			rs.DataHops++
			rs.TotalHops++
			rs.Cost += n.Net.Cost(a.Host, b.Host)
			return true
		}
		// Lease alive but the peer moved: the transmission is wasted
		// (travels to the stale attachment point), then we resolve.
		rs.FailedSends++
		rs.TotalHops++
		rs.Cost += n.Net.CostToAddr(a.Host, sp.Addr)
		n.Stats.FailedSends++
		n.Stats.FailedSendCost += n.Net.CostToAddr(a.Host, sp.Addr)
	}

	rec, op, err := n.Discover(a, b.Key)
	rs.Discoveries++
	rs.TotalHops += op.Hops
	rs.Cost += op.Cost
	if err != nil {
		return false
	}
	_ = rec
	// Forward using the freshly resolved address.
	rs.DataHops++
	rs.TotalHops++
	rs.Cost += n.Net.Cost(a.Host, b.Host)
	return true
}

// SendStats reports one direct (non-overlay-routed) transmission from a
// correspondent to a peer it tracks: the end-to-end pattern of Table 1.
type SendStats struct {
	Cost       float64 // total underlay cost paid, including resolution
	DirectCost float64 // cost of the ideal direct path
	Discovered bool    // a _discovery was needed (late binding)
	FailedSend bool    // a transmission to a stale address was wasted
}

// SendDirect delivers an application message from x straight to y using
// x's state-pair for y: fresh cache ⇒ one direct transmission; stale cache
// ⇒ wasted transmission, then _discovery, then the real send; no cache ⇒
// discovery first. This is how Bristle preserves end-to-end semantics
// across movement (Table 1): the correspondent keeps addressing the same
// key and resolves the current attachment point as needed.
func (n *Network) SendDirect(x, y *Peer) (SendStats, error) {
	now := n.now()
	ss := SendStats{DirectCost: n.Net.Cost(x.Host, y.Host)}

	sp, cached := x.cache[y.ID]
	if cached && sp.ValidAt(now) {
		if n.Net.Valid(sp.Addr) {
			ss.Cost = ss.DirectCost
			return ss, nil
		}
		ss.FailedSend = true
		ss.Cost += n.Net.CostToAddr(x.Host, sp.Addr)
		n.Stats.FailedSends++
		n.Stats.FailedSendCost += n.Net.CostToAddr(x.Host, sp.Addr)
	}

	rec, op, err := n.Discover(x, y.Key)
	ss.Discovered = true
	ss.Cost += op.Cost
	if err != nil {
		return ss, err
	}
	if n.cfg.CacheResolved {
		x.cache[y.ID] = rec
	}
	ss.Cost += ss.DirectCost
	return ss, nil
}

// CachedState returns x's state-pair for y, if any (for tests and
// diagnostics).
func (n *Network) CachedState(x, y *Peer) (StatePair, bool) {
	sp, ok := x.cache[y.ID]
	return sp, ok
}

// Lookup returns the peer currently responsible for key on the mobile
// layer without generating traffic (an oracle for tests and examples).
func (n *Network) Lookup(key hashkey.Key) *Peer {
	ref, ok := n.MobileRing.ClosestRef(key)
	if !ok {
		return nil
	}
	return n.byMobile[ref.ID]
}

// LookupStationary returns the stationary peer responsible for key on the
// stationary layer.
func (n *Network) LookupStationary(key hashkey.Key) *Peer {
	ref, ok := n.StationaryRing.ClosestRef(key)
	if !ok {
		return nil
	}
	return n.byStat[ref.ID]
}
