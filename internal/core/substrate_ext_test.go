package core_test

// External tests proving the paper's closing claim: the same Bristle core
// (location management, clustered naming, LDT updates, discovery) runs
// unchanged on a different HS-P2P substrate — here the Chord overlay of
// internal/chord, with its successor-based closeness and unidirectional
// routing.

import (
	"math/rand"
	"testing"

	"bristle/internal/chord"
	"bristle/internal/core"
	"bristle/internal/overlay"
	"bristle/internal/simnet"
	"bristle/internal/topology"
)

func buildOnChord(t testing.TB, stationary, mobile int, seed int64) (*core.Network, []*core.Peer, []*core.Peer) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, err := topology.GenerateTransitStub(topology.TransitStubParams{
		TransitDomains:   2,
		TransitPerDomain: 3,
		StubsPerTransit:  3,
		StubPerDomain:    4,
		EdgeProb:         0.3,
		WeightJitter:     0.2,
	}, rng)
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	net := simnet.NewNetwork(g, nil)
	bn := core.NewNetwork(core.Config{
		Naming:             core.Clustered,
		StationaryFraction: float64(stationary) / float64(stationary+mobile),
		Overlay:            overlay.DefaultConfig(),
		ReplicationFactor:  3,
		UnitCost:           1,
		LDTLocality:        true,
		CacheResolved:      true,
		NewSubstrate: func(oc overlay.Config, sn *simnet.Network) core.Substrate {
			return chord.New(chord.FromOverlayConfig(oc), sn)
		},
	}, net, nil, rng)

	var stats, mobs []*core.Peer
	for i := 0; i < stationary; i++ {
		p, err := bn.AddPeer(core.Stationary, 1+float64(rng.Intn(15)))
		if err != nil {
			t.Fatal(err)
		}
		stats = append(stats, p)
	}
	for i := 0; i < mobile; i++ {
		p, err := bn.AddPeer(core.Mobile, 1+float64(rng.Intn(15)))
		if err != nil {
			t.Fatal(err)
		}
		mobs = append(mobs, p)
	}
	bn.RefreshEntries()
	bn.BuildRegistries()
	return bn, stats, mobs
}

func TestBristleOnChordPublishDiscover(t *testing.T) {
	bn, stats, mobs := buildOnChord(t, 50, 30, 1)
	mob := mobs[0]
	if _, err := bn.PublishLocation(mob); err != nil {
		t.Fatalf("publish on chord: %v", err)
	}
	rec, op, err := bn.Discover(stats[0], mob.Key)
	if err != nil {
		t.Fatalf("discover on chord: %v", err)
	}
	if !bn.Net.Valid(rec.Addr) || rec.Addr.Host != mob.Host {
		t.Fatalf("resolved wrong address %v", rec.Addr)
	}
	if op.Hops < 1 {
		t.Fatal("no hops accounted")
	}
}

func TestBristleOnChordMovementLifecycle(t *testing.T) {
	bn, stats, mobs := buildOnChord(t, 60, 40, 2)
	rng := rand.New(rand.NewSource(3))
	for _, p := range mobs {
		if _, err := bn.PublishLocation(p); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 3; round++ {
		for _, p := range mobs {
			us, err := bn.MoveAndUpdate(p)
			if err != nil {
				t.Fatalf("update on chord: %v", err)
			}
			if us.Messages != len(p.Registry()) {
				t.Fatalf("LDT delivered %d of %d", us.Messages, len(p.Registry()))
			}
		}
		for i := 0; i < 50; i++ {
			src := stats[rng.Intn(len(stats))]
			dst := mobs[rng.Intn(len(mobs))]
			if _, err := bn.SendDirect(src, dst); err != nil {
				t.Fatalf("send on chord round %d: %v", round, err)
			}
		}
	}
}

func TestBristleOnChordDataRouting(t *testing.T) {
	bn, stats, mobs := buildOnChord(t, 60, 40, 4)
	for _, p := range mobs {
		bn.MoveSilently(p)
		if _, err := bn.PublishLocation(p); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		src := stats[rng.Intn(len(stats))]
		dst := stats[rng.Intn(len(stats))]
		rs, err := bn.RouteData(src, dst.Key)
		if err != nil {
			t.Fatalf("route on chord: %v", err)
		}
		// Chord's responsibility is successor-based; routing to an exact
		// live key must still land on its owner.
		if rs.Dest.ID != dst.ID {
			t.Fatalf("chord route reached %d, want %d", rs.Dest.ID, dst.ID)
		}
	}
}

func TestBristleOnChordChurn(t *testing.T) {
	bn, stats, mobs := buildOnChord(t, 60, 30, 6)
	for _, p := range mobs {
		if _, err := bn.PublishLocation(p); err != nil {
			t.Fatal(err)
		}
	}
	// Kill a chunk of the stationary layer; replication must cover.
	for i := 1; i < 13; i++ {
		if err := bn.Leave(stats[i]); err != nil {
			t.Fatal(err)
		}
	}
	probe := stats[0]
	missed := 0
	for _, p := range mobs {
		if _, _, err := bn.Discover(probe, p.Key); err != nil {
			missed++
		}
	}
	if missed > len(mobs)/5 {
		t.Fatalf("%d/%d discoveries failed after churn on chord", missed, len(mobs))
	}
	// Dynamic join keeps working.
	js, err := bn.Join(core.Mobile, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bn.PublishLocation(js.Peer); err != nil {
		t.Fatal(err)
	}
	if _, _, err := bn.Discover(probe, js.Peer.Key); err != nil {
		t.Fatalf("newcomer not discoverable on chord: %v", err)
	}
}

// TestSubstratesAgreeOnProtocolOutcomes runs the same seeded workload on
// both substrates and verifies protocol-level outcomes (delivery success)
// agree even though routing internals differ.
func TestSubstratesAgreeOnProtocolOutcomes(t *testing.T) {
	run := func(newSub func(overlay.Config, *simnet.Network) core.Substrate) (delivered int) {
		rng := rand.New(rand.NewSource(7))
		g, err := topology.GenerateTransitStub(topology.DefaultTransitStub(300), rng)
		if err != nil {
			t.Fatal(err)
		}
		net := simnet.NewNetwork(g, nil)
		bn := core.NewNetwork(core.Config{
			Naming:             core.Clustered,
			StationaryFraction: 0.6,
			Overlay:            overlay.DefaultConfig(),
			ReplicationFactor:  3,
			UnitCost:           1,
			CacheResolved:      true,
			NewSubstrate:       newSub,
		}, net, nil, rng)
		var stats, mobs []*core.Peer
		for i := 0; i < 45; i++ {
			p, err := bn.AddPeer(core.Stationary, 5)
			if err != nil {
				t.Fatal(err)
			}
			stats = append(stats, p)
		}
		for i := 0; i < 30; i++ {
			p, err := bn.AddPeer(core.Mobile, 5)
			if err != nil {
				t.Fatal(err)
			}
			mobs = append(mobs, p)
		}
		bn.RefreshEntries()
		for _, p := range mobs {
			bn.MoveSilently(p)
			if _, err := bn.PublishLocation(p); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 100; i++ {
			src := stats[rng.Intn(len(stats))]
			dst := mobs[rng.Intn(len(mobs))]
			if _, err := bn.SendDirect(src, dst); err == nil {
				delivered++
			}
		}
		return delivered
	}

	ring := run(nil)
	chordN := run(func(oc overlay.Config, sn *simnet.Network) core.Substrate {
		return chord.New(chord.FromOverlayConfig(oc), sn)
	})
	if ring != 100 {
		t.Errorf("ring substrate delivered %d/100", ring)
	}
	if chordN != 100 {
		t.Errorf("chord substrate delivered %d/100", chordN)
	}
}
