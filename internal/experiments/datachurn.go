package experiments

import (
	"fmt"
	"math/rand"

	"bristle/internal/baseline"
	"bristle/internal/hashkey"
	"bristle/internal/metrics"
	"bristle/internal/overlay"
	"bristle/internal/simnet"
	"bristle/internal/store"
)

// DataChurnConfig parameterizes the stored-data mobility cost comparison.
//
// The paper's introduction charges Type A with "extra maintenance
// overhead and unavailability of stored data": when a node's key is bound
// to its address, movement re-keys the node, orphaning the items it was
// responsible for until replication repair re-places them. Under Bristle
// keys survive movement, so placement never changes. This experiment
// quantifies both effects on the same workload.
type DataChurnConfig struct {
	Stationary  int
	Mobile      int
	Items       int
	Replication int
	Rounds      int // movement rounds; every mobile node moves once per round
	Routers     int
	Seed        int64
}

// DefaultDataChurn returns the laptop-scale configuration.
func DefaultDataChurn() DataChurnConfig {
	return DataChurnConfig{
		Stationary:  150,
		Mobile:      100,
		Items:       400,
		Replication: 3,
		Rounds:      3,
		Routers:     600,
		Seed:        13,
	}
}

// DataChurnRow is one design's aggregate behaviour.
type DataChurnRow struct {
	Design string
	// AvailabilityPct is the fraction of items readable immediately after
	// each movement round, before any repair runs (averaged over rounds).
	AvailabilityPct float64
	// TransfersPerMove is the mean number of item copies the repair sweep
	// must move per node movement.
	TransfersPerMove float64
	// RepairedPct is the fraction readable after repair (should be ~100
	// for both — replication works — the cost difference is the point).
	RepairedPct float64
}

// RunDataChurn measures both designs.
func RunDataChurn(cfg DataChurnConfig) ([]DataChurnRow, error) {
	if cfg.Items < 1 || cfg.Mobile < 1 || cfg.Rounds < 1 {
		return nil, fmt.Errorf("experiments: invalid data-churn config %+v", cfg)
	}
	bristle, err := dataChurnBristle(cfg)
	if err != nil {
		return nil, err
	}
	typeA, err := dataChurnTypeA(cfg)
	if err != nil {
		return nil, err
	}
	return []DataChurnRow{typeA, bristle}, nil
}

// dataChurnBristle: keys are stable identities; movement changes only
// addresses, so data placement is untouched.
func dataChurnBristle(cfg DataChurnConfig) (DataChurnRow, error) {
	row := DataChurnRow{Design: "Bristle"}
	rng := rand.New(rand.NewSource(cfg.Seed))
	net, err := newUnderlay(cfg.Routers, cfg.Seed)
	if err != nil {
		return row, err
	}
	ring := overlay.NewRing(overlay.DefaultConfig(), net)
	total := cfg.Stationary + cfg.Mobile
	hosts := make([]simnet.HostID, 0, total)
	for i := 0; i < total; i++ {
		host := net.AttachHostRandom(rng)
		for {
			if _, err := ring.AddNode(hashkey.Random(rng), host); err == nil {
				break
			}
		}
		hosts = append(hosts, host)
	}
	kv := store.New(ring, cfg.Replication)
	client := ring.Refs()[0].ID
	keys := make([]hashkey.Key, cfg.Items)
	for i := range keys {
		keys[i] = hashkey.FromName(fmt.Sprintf("item-%d", i))
		if _, err := kv.Put(client, keys[i], []byte{byte(i)}); err != nil {
			return row, err
		}
	}

	avail := &metrics.Sample{}
	transfers := 0
	moves := 0
	for round := 0; round < cfg.Rounds; round++ {
		// Mobile nodes move: address changes only. The overlay ring and
		// the store are key-addressed, so nothing is displaced.
		for i := 0; i < cfg.Mobile; i++ {
			net.MoveRandom(hosts[cfg.Stationary+i], rng)
			moves++
		}
		readable := countReadable(kv, client, keys)
		avail.Add(100 * float64(readable) / float64(cfg.Items))
		transfers += kv.Rebalance()
	}
	row.AvailabilityPct = avail.Mean()
	row.TransfersPerMove = float64(transfers) / float64(moves)
	row.RepairedPct = 100 * float64(countReadable(kv, client, keys)) / float64(cfg.Items)
	return row, nil
}

// dataChurnTypeA: movement = leave + rejoin under a new key; the items the
// mover held are dropped (its fragment leaves with it) and every key range
// shifts.
func dataChurnTypeA(cfg DataChurnConfig) (DataChurnRow, error) {
	row := DataChurnRow{Design: "Type A"}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	net, err := newUnderlay(cfg.Routers, cfg.Seed)
	if err != nil {
		return row, err
	}
	a := baseline.NewTypeA(overlay.DefaultConfig(), net, rng)
	var movers []*baseline.APeer
	for i := 0; i < cfg.Stationary; i++ {
		if _, err := a.AddPeer(net.AttachHostRandom(rng), false); err != nil {
			return row, err
		}
	}
	for i := 0; i < cfg.Mobile; i++ {
		p, err := a.AddPeer(net.AttachHostRandom(rng), true)
		if err != nil {
			return row, err
		}
		movers = append(movers, p)
	}
	kv := store.New(a.Ring, cfg.Replication)
	client := a.Peers()[0].NodeID
	keys := make([]hashkey.Key, cfg.Items)
	for i := range keys {
		keys[i] = hashkey.FromName(fmt.Sprintf("item-%d", i))
		if _, err := kv.Put(client, keys[i], []byte{byte(i)}); err != nil {
			return row, err
		}
	}

	avail := &metrics.Sample{}
	transfers := 0
	moves := 0
	for round := 0; round < cfg.Rounds; round++ {
		for _, p := range movers {
			old := p.NodeID
			if err := a.Move(p); err != nil {
				return row, err
			}
			// The departing identity takes its fragment with it.
			kv.DropNode(old)
			moves++
		}
		a.Ring.Stabilize()
		readable := countReadable(kv, client, keys)
		avail.Add(100 * float64(readable) / float64(cfg.Items))
		transfers += kv.Rebalance()
	}
	row.AvailabilityPct = avail.Mean()
	row.TransfersPerMove = float64(transfers) / float64(moves)
	row.RepairedPct = 100 * float64(countReadable(kv, client, keys)) / float64(cfg.Items)
	return row, nil
}

func countReadable(kv *store.Store, client overlay.NodeID, keys []hashkey.Key) int {
	readable := 0
	for _, k := range keys {
		if _, err := kv.Get(client, k); err == nil {
			readable++
		}
	}
	return readable
}

// RenderDataChurn produces the comparison table.
func RenderDataChurn(rows []DataChurnRow) string {
	t := metrics.NewTable("design", "availability during movement (%)", "transfers/move", "after repair (%)")
	for _, r := range rows {
		t.AddRow(r.Design, r.AvailabilityPct, r.TransfersPerMove, r.RepairedPct)
	}
	return "Stored-data mobility cost (§1): availability and repair traffic under movement\n" + t.String()
}
