package experiments

import (
	"fmt"
	"math/rand"

	"bristle/internal/core"
	"bristle/internal/metrics"
	"bristle/internal/overlay"
)

// Eq1Config parameterizes the Equation (1) validation: under clustered
// naming, when can a stationary-to-stationary route be forwarded by
// stationary nodes only?
//
// The paper's worst-case analysis assumes a route may be forced the
// "long way" around the ring (the unidirectional model) and proves
// stationary-only forwarding is guaranteed iff ∇ = (U−L)/ρ ≥ 1/2, i.e.
// M/N ≤ 50% — the knee of Figure 7(b). This experiment measures the
// fraction of routes needing mobile forwarders (address resolutions)
// under three disciplines:
//
//   - shorter-arc (Bristle's default): the source picks the cheaper
//     direction; sub-half stationary arcs are never left, so high mobile
//     fractions cost nothing;
//   - unidirectional + stationary-preferring: the Equation (1) model with
//     Section 3 optimization (2) applied — the knee appears at M/N = 50%;
//   - unidirectional without preference: the unoptimized worst case.
type Eq1Config struct {
	Stationary  int
	MobileFracs []float64
	Routes      int
	Routers     int
	Seed        int64
}

// DefaultEq1 returns the laptop-scale configuration.
func DefaultEq1() Eq1Config {
	return Eq1Config{
		Stationary:  300,
		MobileFracs: []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8},
		Routes:      1500,
		Routers:     800,
		Seed:        6,
	}
}

// Eq1Row is one sweep point: mean discoveries per route under each
// discipline.
type Eq1Row struct {
	MobileFrac        float64
	ShorterArc        float64 // Bristle default
	UniPreferring     float64 // Eq. (1) model with optimization (2)
	UniUnoptimized    float64 // Eq. (1) model without preference
	UniPreferringHops float64 // mean total hops (diagnostic)
}

// RunEq1 measures all three disciplines on the same networks.
func RunEq1(cfg Eq1Config) ([]Eq1Row, error) {
	if cfg.Stationary < 2 {
		return nil, fmt.Errorf("experiments: need ≥2 stationary peers")
	}
	rows := make([]Eq1Row, 0, len(cfg.MobileFracs))
	for i, frac := range cfg.MobileFracs {
		if frac <= 0 || frac >= 1 {
			return nil, fmt.Errorf("experiments: mobile fraction %v out of (0,1)", frac)
		}
		row, err := eq1Point(cfg, frac, cfg.Seed+int64(i)*500)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func eq1Point(cfg Eq1Config, frac float64, seed int64) (Eq1Row, error) {
	row := Eq1Row{MobileFrac: frac}
	net, err := newUnderlay(cfg.Routers, seed)
	if err != nil {
		return row, err
	}
	mobile := int(float64(cfg.Stationary) / (1 - frac) * frac)
	total := cfg.Stationary + mobile
	rng := rand.New(rand.NewSource(seed + 17))
	bn := core.NewNetwork(core.Config{
		Naming:             core.Clustered,
		StationaryFraction: float64(cfg.Stationary) / float64(total),
		Overlay:            overlay.DefaultConfig(),
		ReplicationFactor:  1,
		UnitCost:           1,
		CacheResolved:      false,
	}, net, nil, rng)
	for i := 0; i < cfg.Stationary; i++ {
		if _, err := bn.AddPeer(core.Stationary, drawCapacity(rng, 15)); err != nil {
			return row, err
		}
	}
	var mobiles []*core.Peer
	for i := 0; i < mobile; i++ {
		p, err := bn.AddPeer(core.Mobile, drawCapacity(rng, 15))
		if err != nil {
			return row, err
		}
		mobiles = append(mobiles, p)
	}
	bn.RefreshEntries()
	for _, p := range mobiles {
		bn.MoveSilently(p)
		if _, err := bn.PublishLocation(p); err != nil {
			return row, err
		}
	}
	var stationary []*core.Peer
	for _, p := range bn.Peers() {
		if p.Kind == core.Stationary {
			stationary = append(stationary, p)
		}
	}

	policies := []struct {
		pol  core.RoutePolicy
		disc *metrics.Sample
		hops *metrics.Sample
	}{
		{core.RoutePolicy{}, &metrics.Sample{}, &metrics.Sample{}},
		{core.RoutePolicy{Unidirectional: true, PreferStationary: true}, &metrics.Sample{}, &metrics.Sample{}},
		{core.RoutePolicy{Unidirectional: true}, &metrics.Sample{}, &metrics.Sample{}},
	}
	for i := 0; i < cfg.Routes; i++ {
		src := stationary[rng.Intn(len(stationary))]
		dst := stationary[rng.Intn(len(stationary))]
		if src.ID == dst.ID {
			i--
			continue
		}
		for pi := range policies {
			rs, err := bn.RouteDataPolicy(src, dst.Key, policies[pi].pol)
			if err != nil {
				return row, fmt.Errorf("policy %d route %d: %w", pi, i, err)
			}
			policies[pi].disc.Add(float64(rs.Discoveries))
			policies[pi].hops.Add(float64(rs.TotalHops))
		}
	}
	row.ShorterArc = policies[0].disc.Mean()
	row.UniPreferring = policies[1].disc.Mean()
	row.UniUnoptimized = policies[2].disc.Mean()
	row.UniPreferringHops = policies[1].hops.Mean()
	return row, nil
}

// RenderEq1 produces the validation table.
func RenderEq1(rows []Eq1Row) string {
	t := metrics.NewTable("M/N (%)", "shorter-arc disc/route", "uni+prefer disc/route",
		"uni unopt disc/route", "uni+prefer hops")
	for _, r := range rows {
		t.AddRow(r.MobileFrac*100, r.ShorterArc, r.UniPreferring, r.UniUnoptimized, r.UniPreferringHops)
	}
	return "Equation (1) validation: address resolutions per stationary-to-stationary route\n" +
		"(clustered naming; Eq. (1) is a worst-case bound — log-spaced fingers let even\n" +
		"forced-wrap routes leap the mobile region, so measured rates stay far below it)\n" + t.String()
}
