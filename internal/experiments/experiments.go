// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 4) plus the Table 1 design comparison, at
// configurable scale. Each experiment has a Config with laptop-friendly
// defaults (documented against the paper's original parameters in
// EXPERIMENTS.md), a Run function returning structured rows, and a
// Render function producing the paper-style text table.
//
// All experiments are deterministic for a fixed Config (seeded PRNGs
// everywhere), so EXPERIMENTS.md numbers are reproducible bit-for-bit.
package experiments

import (
	"fmt"
	"math/rand"

	"bristle/internal/simnet"
	"bristle/internal/topology"
)

// newUnderlay builds a transit-stub underlay with roughly nRouters routers
// and wraps it in a simnet network (no event clock: the evaluation is
// synchronous hop/cost accounting).
func newUnderlay(nRouters int, seed int64) (*simnet.Network, error) {
	rng := rand.New(rand.NewSource(seed))
	g, err := topology.GenerateTransitStub(topology.DefaultTransitStub(nRouters), rng)
	if err != nil {
		return nil, fmt.Errorf("experiments: underlay: %w", err)
	}
	return simnet.NewNetwork(g, nil), nil
}

// capRNG draws the capacity values used throughout Section 4.2/4.3: the
// number of available network connections, uniform in [1, max].
func drawCapacity(rng *rand.Rand, max int) float64 {
	if max < 1 {
		max = 1
	}
	return float64(1 + rng.Intn(max))
}
