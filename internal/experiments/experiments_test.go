package experiments

import (
	"strings"
	"testing"
)

// Small-scale configs keep the test suite fast while still exhibiting the
// paper's qualitative shapes.

func smallFig7() Fig7Config {
	return Fig7Config{
		Stationary:  120,
		MobileFracs: []float64{0, 0.3, 0.5, 0.8},
		Routes:      250,
		Routers:     400,
		Seed:        1,
	}
}

func TestFig7Shapes(t *testing.T) {
	rows, err := RunFig7(smallFig7())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}

	// At M/N = 0 both schemes are identical: RDP ≈ 1.
	if r := rows[0]; r.RDPHops < 0.9 || r.RDPHops > 1.1 {
		t.Errorf("RDP at M/N=0 should be ≈1, got %v", r.RDPHops)
	}

	// Scrambled hops grow with the mobile fraction.
	if rows[3].ScrambledHops <= rows[0].ScrambledHops {
		t.Errorf("scrambled hops did not grow: %v → %v",
			rows[0].ScrambledHops, rows[3].ScrambledHops)
	}

	// Clustered ≤ scrambled everywhere (the headline claim).
	for _, r := range rows {
		if r.ClusteredHops > r.ScrambledHops*1.05 {
			t.Errorf("M/N=%v: clustered hops %v exceed scrambled %v",
				r.MobileFrac, r.ClusteredHops, r.ScrambledHops)
		}
	}

	// Up to M/N = 50% the clustered scheme needs essentially no
	// discoveries on stationary-to-stationary routes (Equation 1).
	for _, r := range rows[:3] {
		if r.ClusteredDisc > 0.05 {
			t.Errorf("M/N=%v: clustered discoveries/route = %v, want ≈0",
				r.MobileFrac, r.ClusteredDisc)
		}
	}

	// The knee: RDP at 80% mobile clearly exceeds RDP at 0%.
	if rows[3].RDPHops < 1.5 {
		t.Errorf("RDP at M/N=80%% = %v, expected a clear penalty", rows[3].RDPHops)
	}

	out := RenderFig7(rows)
	if !strings.Contains(out, "Figure 7(a)") || !strings.Contains(out, "Figure 7(b)") {
		t.Error("RenderFig7 missing sections")
	}
}

func TestFig7OnChordSubstrate(t *testing.T) {
	cfg := smallFig7()
	cfg.Substrate = "chord"
	cfg.MobileFracs = []float64{0, 0.5, 0.8}
	rows, err := RunFig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The headline comparison holds on Chord too: clustered naming never
	// does worse than scrambled, and scrambled degrades with mobility.
	for _, r := range rows {
		if r.ClusteredHops > r.ScrambledHops*1.1 {
			t.Errorf("chord M/N=%v: clustered %v above scrambled %v",
				r.MobileFrac, r.ClusteredHops, r.ScrambledHops)
		}
	}
	if rows[2].ScrambledHops <= rows[0].ScrambledHops {
		t.Error("chord scrambled hops did not grow with mobility")
	}
	if rows[2].RDPHops < 1.3 {
		t.Errorf("chord RDP at 80%% = %v, expected a clear penalty", rows[2].RDPHops)
	}
}

func TestFig7UnknownSubstrate(t *testing.T) {
	cfg := smallFig7()
	cfg.Substrate = "pastry"
	if _, err := RunFig7(cfg); err == nil {
		t.Error("unknown substrate accepted")
	}
}

func TestFig7Validation(t *testing.T) {
	cfg := smallFig7()
	cfg.MobileFracs = []float64{1.0}
	if _, err := RunFig7(cfg); err == nil {
		t.Error("mobile fraction 1.0 accepted")
	}
	cfg = smallFig7()
	cfg.Stationary = 1
	if _, err := RunFig7(cfg); err == nil {
		t.Error("single stationary peer accepted")
	}
}

func TestFig3Shapes(t *testing.T) {
	cfg := Fig3Config{
		AnalyticN:   1 << 20,
		EmpiricalN:  256,
		MobileFracs: []float64{0.2, 0.5, 0.8},
		Routers:     300,
		Seed:        3,
	}
	rows, err := RunFig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		// Non-member-only is log N × member-only analytically.
		if r.AnalyticNonMemberOnly <= r.AnalyticMemberOnly {
			t.Errorf("analytic non-member must exceed member-only at %v", r.MobileFrac)
		}
		// Empirically the non-member design also costs strictly more.
		if r.EmpiricalNonMemberOnly <= r.EmpiricalMemberOnly {
			t.Errorf("empirical non-member %v not above member-only %v at M/N=%v",
				r.EmpiricalNonMemberOnly, r.EmpiricalMemberOnly, r.MobileFrac)
		}
		// Both grow with M/N.
		if i > 0 {
			if r.AnalyticMemberOnly <= rows[i-1].AnalyticMemberOnly {
				t.Error("analytic member-only not increasing in M/N")
			}
			if r.EmpiricalNonMemberOnly <= rows[i-1].EmpiricalNonMemberOnly {
				t.Error("empirical non-member not increasing in M/N")
			}
		}
	}
	// The blow-up: at 80% the non-member responsibility is much larger
	// than at 20% (paper: "increases exponentially").
	if rows[2].AnalyticNonMemberOnly < 10*rows[0].AnalyticNonMemberOnly {
		t.Error("non-member responsibility does not blow up with M/N")
	}
	if !strings.Contains(RenderFig3(rows), "Figure 3") {
		t.Error("RenderFig3 missing title")
	}
}

func TestFig3Validation(t *testing.T) {
	cfg := DefaultFig3()
	cfg.EmpiricalN = 2
	if _, err := RunFig3(cfg); err == nil {
		t.Error("tiny EmpiricalN accepted")
	}
	cfg = DefaultFig3()
	cfg.MobileFracs = []float64{0}
	if _, err := RunFig3(cfg); err == nil {
		t.Error("zero fraction accepted")
	}
}

func TestFig8Shapes(t *testing.T) {
	cfg := Fig8Config{
		Nodes:        25000,
		RegistrySize: 15,
		MaxCapacity:  15,
		Trees:        300,
		SampleTrees:  15,
		Seed:         8,
	}
	res, err := RunFig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 15 {
		t.Fatalf("levels rows = %d", len(res.Levels))
	}

	// MAX=1 ⇒ every node has capacity 1 ⇒ chains of depth 16.
	if res.Levels[0].MaxDepth != 16 {
		t.Errorf("MAX=1 max depth = %d, want 16 (chain)", res.Levels[0].MaxDepth)
	}
	// Depth shrinks as capacity grows.
	if res.Levels[14].MeanDepth >= res.Levels[0].MeanDepth {
		t.Errorf("mean depth did not shrink: MAX=1 %.2f vs MAX=15 %.2f",
			res.Levels[0].MeanDepth, res.Levels[14].MeanDepth)
	}
	if res.Levels[14].MeanDepth > 6 {
		t.Errorf("MAX=15 mean depth %.2f too deep for 16-member trees", res.Levels[14].MeanDepth)
	}

	// Level percentages sum to ~100 for each MAX.
	for _, r := range res.Levels {
		sum := 0.0
		for _, p := range r.LevelPercent {
			sum += p
		}
		if sum < 99.9 || sum > 100.1 {
			t.Errorf("MAX=%d level percentages sum to %v", r.MaxCapacity, sum)
		}
	}

	// Figure 8(b): 15 trees × 16 members.
	if len(res.Nodes) != 15*16 {
		t.Fatalf("node rows = %d, want 240", len(res.Nodes))
	}
	// Load concentrates on the most capable members. The root always has
	// the full registry assigned regardless of its capacity (it initiates
	// the advertisement), so it is excluded; aggregate over all sampled
	// trees to smooth per-tree tie noise.
	topLoad, botLoad := 0, 0
	perTreeCount := 0
	for _, nr := range res.Nodes {
		if nr.Tree == 0 {
			perTreeCount++
		}
	}
	for _, nr := range res.Nodes {
		if nr.IsRoot {
			continue
		}
		if nr.NodeRank <= perTreeCount/2 {
			topLoad += nr.Assigned
		} else {
			botLoad += nr.Assigned
		}
	}
	if topLoad <= botLoad {
		t.Errorf("low-capacity members carry more aggregate load (%d vs %d)", botLoad, topLoad)
	}
	if !strings.Contains(RenderFig8(res), "Figure 8(a)") {
		t.Error("RenderFig8 missing section")
	}
}

func TestFig8WorkloadDeepensTrees(t *testing.T) {
	// Figure 8(a)'s qualitative claim at fixed capacities: heavier present
	// workload (higher Used) reduces Avail and lengthens trees.
	base := Fig8Config{
		Nodes: 25000, RegistrySize: 15, MaxCapacity: 8,
		Trees: 200, SampleTrees: 1, Seed: 8,
	}
	idle, err := RunFig8(base)
	if err != nil {
		t.Fatal(err)
	}
	busy := base
	busy.UsedFraction = 0.7
	loaded, err := RunFig8(busy)
	if err != nil {
		t.Fatal(err)
	}
	// Compare mean depth at the top capacity point.
	idleDepth := idle.Levels[len(idle.Levels)-1].MeanDepth
	loadedDepth := loaded.Levels[len(loaded.Levels)-1].MeanDepth
	if loadedDepth <= idleDepth {
		t.Fatalf("70%% workload did not deepen trees: %.2f vs %.2f", loadedDepth, idleDepth)
	}
}

func TestFig8Validation(t *testing.T) {
	cfg := DefaultFig8()
	cfg.Trees = 0
	if _, err := RunFig8(cfg); err == nil {
		t.Error("zero trees accepted")
	}
}

func TestFig9Shapes(t *testing.T) {
	cfg := Fig9Config{
		Routers:       500,
		Fracs:         []float64{0.2, 0.6, 1.0},
		RegistrySize:  10,
		CandidateFrac: 0.15,
		MaxCapacity:   15,
		Seed:          9,
	}
	rows, err := RunFig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Locality always helps (paper observation 1).
		if r.WithLocality >= r.WithoutLocality {
			t.Errorf("density %v: locality %v not below random %v",
				r.Frac, r.WithLocality, r.WithoutLocality)
		}
	}
	// Locality improves (per-edge cost drops) as density grows
	// (observation 3), while the non-locality cost stays roughly flat
	// (observation 2: within 15% across densities).
	if rows[2].WithLocality >= rows[0].WithLocality {
		t.Errorf("with-locality cost did not drop with density: %v → %v",
			rows[0].WithLocality, rows[2].WithLocality)
	}
	flat := rows[2].WithoutLocality / rows[0].WithoutLocality
	if flat < 0.85 || flat > 1.15 {
		t.Errorf("without-locality cost not flat across densities: ratio %v", flat)
	}
	if !strings.Contains(RenderFig9(rows), "Figure 9") {
		t.Error("RenderFig9 missing title")
	}
}

func TestFig9Validation(t *testing.T) {
	cfg := DefaultFig9()
	cfg.CandidateFrac = 0
	if _, err := RunFig9(cfg); err == nil {
		t.Error("zero candidate fraction accepted")
	}
}

func TestDataChurnShapes(t *testing.T) {
	cfg := DataChurnConfig{
		Stationary:  80,
		Mobile:      50,
		Items:       150,
		Replication: 3,
		Rounds:      2,
		Routers:     400,
		Seed:        13,
	}
	rows, err := RunDataChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]DataChurnRow{}
	for _, r := range rows {
		byName[r.Design] = r
	}
	a, b := byName["Type A"], byName["Bristle"]

	// Bristle: key-preserving movement displaces nothing.
	if b.TransfersPerMove != 0 {
		t.Errorf("Bristle transfers/move = %v, want 0", b.TransfersPerMove)
	}
	if b.AvailabilityPct != 100 || b.RepairedPct != 100 {
		t.Errorf("Bristle availability %v/%v, want 100/100", b.AvailabilityPct, b.RepairedPct)
	}
	// Type A: movement re-keys nodes ⇒ transfers and an availability dip.
	if a.TransfersPerMove <= 0 {
		t.Errorf("Type A transfers/move = %v, want >0", a.TransfersPerMove)
	}
	if a.AvailabilityPct >= 100 {
		t.Errorf("Type A availability %v, expected a dip during movement", a.AvailabilityPct)
	}
	if !strings.Contains(RenderDataChurn(rows), "Stored-data") {
		t.Error("RenderDataChurn missing title")
	}
}

func TestDataChurnValidation(t *testing.T) {
	if _, err := RunDataChurn(DataChurnConfig{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestScalingShapes(t *testing.T) {
	cfg := ScalingConfig{Sizes: []int{128, 512, 2048}, Routes: 200, Seed: 12}
	rows, err := RunScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 (2 substrates × 3 sizes)", len(rows))
	}
	for _, r := range rows {
		// O(log N): hops per log2(N) stays bounded (≤2) at every size.
		if r.HopsPerLog > 2 {
			t.Errorf("%s N=%d: hops/log = %v", r.Substrate, r.N, r.HopsPerLog)
		}
		// State stays O(log N) too.
		if float64(r.MaxState) > 8*mathLog2(r.N) {
			t.Errorf("%s N=%d: max state %d", r.Substrate, r.N, r.MaxState)
		}
	}
	if !strings.Contains(RenderScaling(rows), "Scaling validation") {
		t.Error("RenderScaling missing title")
	}
}

func TestScalingValidation(t *testing.T) {
	if _, err := RunScaling(ScalingConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := RunScaling(ScalingConfig{Sizes: []int{1}, Routes: 10}); err == nil {
		t.Error("size 1 accepted")
	}
}

func mathLog2(n int) float64 {
	l := 0.0
	for v := 1; v < n; v *= 2 {
		l++
	}
	return l
}

func TestEq1Shapes(t *testing.T) {
	cfg := Eq1Config{
		Stationary:  150,
		MobileFracs: []float64{0.2, 0.5, 0.8},
		Routes:      400,
		Routers:     400,
		Seed:        6,
	}
	rows, err := RunEq1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var shorter, prefer, unopt float64
	for _, r := range rows {
		shorter += r.ShorterArc
		prefer += r.UniPreferring
		unopt += r.UniUnoptimized
		// Shorter-arc routing under clustered naming needs no resolutions
		// once the stationary arc is at most half the ring.
		if r.MobileFrac >= 0.5 && r.ShorterArc > 0.01 {
			t.Errorf("M/N=%v: shorter-arc disc/route = %v, want ≈0", r.MobileFrac, r.ShorterArc)
		}
	}
	// Ordering: the unoptimized unidirectional discipline pays the most;
	// stationary-preference and shorter-arc selection each reduce it.
	if unopt <= prefer {
		t.Errorf("unoptimized (%v) should exceed preferring (%v)", unopt, prefer)
	}
	if unopt <= shorter {
		t.Errorf("unoptimized (%v) should exceed shorter-arc (%v)", unopt, shorter)
	}
	// Even the worst case stays far below one resolution per route — the
	// Eq. (1) bound is pessimistic for log-spaced finger tables.
	if unopt/float64(len(rows)) > 0.5 {
		t.Errorf("worst-case discipline resolves %v/route on average; expected ≪1", unopt/float64(len(rows)))
	}
	if !strings.Contains(RenderEq1(rows), "Equation (1)") {
		t.Error("RenderEq1 missing title")
	}
}

func TestEq1Validation(t *testing.T) {
	cfg := DefaultEq1()
	cfg.MobileFracs = []float64{0}
	if _, err := RunEq1(cfg); err == nil {
		t.Error("zero fraction accepted")
	}
	cfg = DefaultEq1()
	cfg.Stationary = 1
	if _, err := RunEq1(cfg); err == nil {
		t.Error("single stationary accepted")
	}
}

func TestTable1Shapes(t *testing.T) {
	cfg := Table1Config{
		Stationary:   120,
		Mobile:       60,
		Sessions:     150,
		Rounds:       3,
		FailFraction: 0.2,
		Routers:      400,
		Seed:         42,
	}
	rows, err := RunTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Design] = r
	}
	a, b, br := byName["Type A"], byName["Type B"], byName["Bristle"]

	// End-to-end semantics: Type A loses every session after the first
	// move; Bristle and Type B keep delivering.
	if a.DeliveryPct > 5 {
		t.Errorf("Type A delivery %v%%, expected ≈0 (broken end-to-end)", a.DeliveryPct)
	}
	if br.DeliveryPct < 95 {
		t.Errorf("Bristle delivery %v%%, expected ≈100", br.DeliveryPct)
	}
	if b.DeliveryPct < 95 {
		t.Errorf("Type B delivery %v%%, expected ≈100", b.DeliveryPct)
	}

	// Reliability: Bristle degrades gracefully under stationary-peer loss;
	// Type B loses exactly the sessions whose home agents died.
	if br.DeliveryAfterFailPct < 90 {
		t.Errorf("Bristle delivery after failures %v%%, expected graceful", br.DeliveryAfterFailPct)
	}
	if b.DeliveryAfterFailPct >= b.DeliveryPct {
		t.Errorf("Type B should lose deliveries after HA failures: %v → %v",
			b.DeliveryPct, b.DeliveryAfterFailPct)
	}
	if br.DeliveryAfterFailPct <= b.DeliveryAfterFailPct {
		t.Errorf("Bristle (%v%%) should out-survive Type B (%v%%)",
			br.DeliveryAfterFailPct, b.DeliveryAfterFailPct)
	}

	// Performance: Type B pays the triangular penalty; Bristle's penalty
	// should be lower.
	if b.CostPenalty <= 1 {
		t.Errorf("Type B cost penalty %v, expected >1 (triangular)", b.CostPenalty)
	}
	if br.CostPenalty >= b.CostPenalty {
		t.Errorf("Bristle penalty %v not below Type B %v", br.CostPenalty, b.CostPenalty)
	}

	// End-to-end flags match Table 1.
	if a.EndToEnd || !br.EndToEnd || !b.EndToEnd {
		t.Error("end-to-end flags wrong")
	}

	out := RenderTable1(rows)
	if !strings.Contains(out, "Bristle") || !strings.Contains(out, "Type A") {
		t.Error("RenderTable1 missing designs")
	}
}

func TestTable1Validation(t *testing.T) {
	cfg := DefaultTable1()
	cfg.Mobile = 1
	if _, err := RunTable1(cfg); err == nil {
		t.Error("tiny population accepted")
	}
}
