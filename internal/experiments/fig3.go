package experiments

import (
	"fmt"
	"math/rand"

	"bristle/internal/core"
	"bristle/internal/ldt"
	"bristle/internal/metrics"
	"bristle/internal/overlay"
)

// Fig3Config parameterizes the LDT responsibility comparison of Figure 3:
// member-only vs non-member-only trees as the mobile fraction grows.
//
// The analytic curves use the paper's N = 1,048,576. The empirical part
// measures the same quantity on a simulated instance: how many
// location-forwarding duties land on each stationary peer when trees are
// built from members only versus from the stationary routes between
// members and the root.
type Fig3Config struct {
	AnalyticN   float64   // N for the analytic curves (paper: 2^20)
	EmpiricalN  int       // simulated population for the empirical check
	MobileFracs []float64 // M/N sweep
	Routers     int
	Seed        int64
}

// DefaultFig3 returns the standard configuration.
func DefaultFig3() Fig3Config {
	return Fig3Config{
		AnalyticN:   1 << 20,
		EmpiricalN:  1024,
		MobileFracs: []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8},
		Routers:     600,
		Seed:        3,
	}
}

// Fig3Row is one sweep point.
type Fig3Row struct {
	MobileFrac float64
	// Analytic responsibilities at AnalyticN (the paper's curves).
	AnalyticMemberOnly    float64
	AnalyticNonMemberOnly float64
	// Empirical responsibilities measured on the simulated instance:
	// stationary-layer load entries per stationary peer.
	EmpiricalMemberOnly    float64
	EmpiricalNonMemberOnly float64
}

// RunFig3 computes the analytic curves and measures the empirical
// responsibilities.
func RunFig3(cfg Fig3Config) ([]Fig3Row, error) {
	if cfg.EmpiricalN < 8 {
		return nil, fmt.Errorf("experiments: EmpiricalN too small")
	}
	rows := make([]Fig3Row, 0, len(cfg.MobileFracs))
	for i, frac := range cfg.MobileFracs {
		if frac <= 0 || frac >= 1 {
			return nil, fmt.Errorf("experiments: mobile fraction %v out of (0,1)", frac)
		}
		m := cfg.AnalyticN * frac
		row := Fig3Row{
			MobileFrac:            frac,
			AnalyticMemberOnly:    ldt.ResponsibilityMemberOnly(cfg.AnalyticN, m),
			AnalyticNonMemberOnly: ldt.ResponsibilityNonMemberOnly(cfg.AnalyticN, m),
		}
		memb, nonMemb, err := fig3Empirical(cfg, frac, cfg.Seed+int64(i)*100)
		if err != nil {
			return nil, err
		}
		row.EmpiricalMemberOnly = memb
		row.EmpiricalNonMemberOnly = nonMemb
		rows = append(rows, row)
	}
	return rows, nil
}

// fig3Empirical builds a Bristle instance and counts the per-stationary
// load of both designs.
//
// Member-only: stationary peers carry only the published location records
// and the registrations mobile peers place on them (O(M/(N−M)·log N)).
//
// Non-member-only: each mobile peer's tree additionally recruits the
// stationary forwarders along the stationary-layer routes from each
// registry member's entry point to the root's key — the
// O(log N)×O(log N) construction analyzed in Section 2.3. We count each
// forwarding appearance as one unit of responsibility.
func fig3Empirical(cfg Fig3Config, frac float64, seed int64) (memberOnly, nonMemberOnly float64, err error) {
	net, err := newUnderlay(cfg.Routers, seed)
	if err != nil {
		return 0, 0, err
	}
	mobile := int(float64(cfg.EmpiricalN) * frac)
	stationaryN := cfg.EmpiricalN - mobile
	if stationaryN < 2 {
		return 0, 0, fmt.Errorf("experiments: fraction %v leaves <2 stationary", frac)
	}
	rng := rand.New(rand.NewSource(seed + 11))
	bn := core.NewNetwork(core.Config{
		Naming:            core.Scrambled,
		Overlay:           overlay.DefaultConfig(),
		ReplicationFactor: 1,
		UnitCost:          1,
	}, net, nil, rng)
	for i := 0; i < stationaryN; i++ {
		if _, err := bn.AddPeer(core.Stationary, drawCapacity(rng, 15)); err != nil {
			return 0, 0, err
		}
	}
	var mobiles []*core.Peer
	for i := 0; i < mobile; i++ {
		p, err := bn.AddPeer(core.Mobile, drawCapacity(rng, 15))
		if err != nil {
			return 0, 0, err
		}
		mobiles = append(mobiles, p)
	}
	bn.RefreshEntries()
	bn.BuildRegistries()

	// Member-only load: location records + registrations held on
	// stationary peers for mobile peers.
	memberLoad := 0.0
	for _, p := range mobiles {
		if _, err := bn.PublishLocation(p); err != nil {
			return 0, 0, err
		}
		for _, r := range p.Registry() {
			if r.Kind == core.Stationary {
				memberLoad++ // a stationary peer tracks this mobile peer
			}
		}
	}
	for _, p := range bn.Peers() {
		if p.Kind == core.Stationary {
			memberLoad += float64(core.StoreSize(p))
		}
	}

	// Non-member-only load: stationary forwarders on the routes from each
	// registry member's entry to the mobile root's key.
	nonMemberLoad := memberLoad
	for _, p := range mobiles {
		for _, r := range p.Registry() {
			entry := r
			if entry.Kind != core.Stationary {
				// Mobile members inject through their stationary entry.
				entry = bn.LookupStationary(r.Key)
			}
			res, rerr := bn.StationaryRing.Route(entry.StatRingID, p.Key, nil)
			if rerr != nil {
				return 0, 0, rerr
			}
			nonMemberLoad += float64(res.NumHops()) // each forwarder holds tree state
		}
	}

	denom := float64(stationaryN)
	return memberLoad / denom, nonMemberLoad / denom, nil
}

// RenderFig3 produces the paper-style table.
func RenderFig3(rows []Fig3Row) string {
	t := metrics.NewTable("M/N (%)", "analytic member-only", "analytic non-member",
		"empirical member-only", "empirical non-member")
	for _, r := range rows {
		t.AddRow(r.MobileFrac*100, r.AnalyticMemberOnly, r.AnalyticNonMemberOnly,
			r.EmpiricalMemberOnly, r.EmpiricalNonMemberOnly)
	}
	return "Figure 3: per-stationary-node responsibility, member-only vs non-member-only LDTs\n" + t.String()
}
