package experiments

import (
	"fmt"
	"math/rand"

	"bristle/internal/chord"
	"bristle/internal/core"
	"bristle/internal/metrics"
	"bristle/internal/overlay"
	"bristle/internal/simnet"
)

// Fig7Config parameterizes the state-discovery experiment of Section 4.1:
// routes between random stationary pairs under the scrambled vs clustered
// naming schemes, for a sweep of mobile fractions.
//
// Paper parameters: 2,000 stationary nodes, M = 0..8,000 mobile
// (M/N = 0..80%), 10,000 sample routes, transit-stub underlay. The
// defaults scale this down ~4× for laptop runs; pass the paper's values to
// reproduce at full scale.
type Fig7Config struct {
	Stationary  int       // number of stationary peers (paper: 2000)
	MobileFracs []float64 // M/N values to sweep (paper: 0, 0.1, ..., 0.8)
	Routes      int       // sample routes per point (paper: 10000)
	Routers     int       // approximate underlay router count
	Seed        int64
	// Substrate selects the overlay both layers run on: "" or "ring" for
	// the Tornado-style bidirectional ring, "chord" for the unidirectional
	// Chord substrate (the generality claim of the paper's conclusion).
	Substrate string
}

// DefaultFig7 returns the laptop-scale configuration.
func DefaultFig7() Fig7Config {
	return Fig7Config{
		Stationary:  500,
		MobileFracs: []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8},
		Routes:      2000,
		Routers:     1200,
		Seed:        1,
	}
}

// PaperFig7 returns the paper's full-scale parameters.
func PaperFig7() Fig7Config {
	return Fig7Config{
		Stationary:  2000,
		MobileFracs: []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8},
		Routes:      10000,
		Routers:     2600,
		Seed:        1,
	}
}

// Fig7Row is one sweep point: mean application-level hops and mean actual
// path cost per route for both naming schemes, plus the two RDP series of
// Figure 7(b).
type Fig7Row struct {
	MobileFrac    float64
	ScrambledHops float64
	ClusteredHops float64
	ScrambledCost float64
	ClusteredCost float64
	RDPHops       float64 // scrambled/clustered, application-level hops
	RDPCost       float64 // scrambled/clustered, actual path cost
	ScrambledDisc float64 // mean discoveries per route (diagnostic)
	ClusteredDisc float64
}

// RunFig7 executes the experiment and returns one row per mobile fraction.
func RunFig7(cfg Fig7Config) ([]Fig7Row, error) {
	if cfg.Stationary < 2 {
		return nil, fmt.Errorf("experiments: need ≥2 stationary peers")
	}
	rows := make([]Fig7Row, 0, len(cfg.MobileFracs))
	for i, frac := range cfg.MobileFracs {
		if frac < 0 || frac >= 1 {
			return nil, fmt.Errorf("experiments: mobile fraction %v out of [0,1)", frac)
		}
		seed := cfg.Seed + int64(i)*1000
		sHops, sCost, sDisc, err := fig7Point(cfg, core.Scrambled, frac, seed)
		if err != nil {
			return nil, fmt.Errorf("scrambled M/N=%v: %w", frac, err)
		}
		cHops, cCost, cDisc, err := fig7Point(cfg, core.Clustered, frac, seed)
		if err != nil {
			return nil, fmt.Errorf("clustered M/N=%v: %w", frac, err)
		}
		rows = append(rows, Fig7Row{
			MobileFrac:    frac,
			ScrambledHops: sHops.Mean(),
			ClusteredHops: cHops.Mean(),
			ScrambledCost: sCost.Mean(),
			ClusteredCost: cCost.Mean(),
			RDPHops:       metrics.RDP(sHops.Mean(), cHops.Mean()),
			RDPCost:       metrics.RDP(sCost.Mean(), cCost.Mean()),
			ScrambledDisc: sDisc.Mean(),
			ClusteredDisc: cDisc.Mean(),
		})
	}
	return rows, nil
}

// fig7Point builds one Bristle network and measures cfg.Routes random
// stationary-to-stationary routes.
func fig7Point(cfg Fig7Config, naming core.Naming, frac float64, seed int64) (hops, cost, disc *metrics.Sample, err error) {
	net, err := newUnderlay(cfg.Routers, seed)
	if err != nil {
		return nil, nil, nil, err
	}
	mobile := int(float64(cfg.Stationary) / (1 - frac) * frac)
	total := cfg.Stationary + mobile

	rng := rand.New(rand.NewSource(seed + 7))
	bcfg := core.Config{
		Naming:             naming,
		StationaryFraction: float64(cfg.Stationary) / float64(total),
		Overlay:            overlay.DefaultConfig(),
		ReplicationFactor:  1,
		UnitCost:           1,
		CacheResolved:      false, // measure steady-state per-route resolution
	}
	switch cfg.Substrate {
	case "", "ring":
	case "chord":
		bcfg.NewSubstrate = func(oc overlay.Config, sn *simnet.Network) core.Substrate {
			return chord.New(chord.FromOverlayConfig(oc), sn)
		}
	default:
		return nil, nil, nil, fmt.Errorf("experiments: unknown substrate %q", cfg.Substrate)
	}
	bn := core.NewNetwork(bcfg, net, nil, rng)
	for i := 0; i < cfg.Stationary; i++ {
		if _, err := bn.AddPeer(core.Stationary, drawCapacity(rng, 15)); err != nil {
			return nil, nil, nil, err
		}
	}
	var mobiles []*core.Peer
	for i := 0; i < mobile; i++ {
		p, err := bn.AddPeer(core.Mobile, drawCapacity(rng, 15))
		if err != nil {
			return nil, nil, nil, err
		}
		mobiles = append(mobiles, p)
	}
	bn.RefreshEntries()

	// Section 4.1 setup: every mobile node has moved and advertises its
	// location only to the stationary layer.
	for _, p := range mobiles {
		bn.MoveSilently(p)
		if _, err := bn.PublishLocation(p); err != nil {
			return nil, nil, nil, err
		}
	}

	var stationary []*core.Peer
	for _, p := range bn.Peers() {
		if p.Kind == core.Stationary {
			stationary = append(stationary, p)
		}
	}

	hops, cost, disc = &metrics.Sample{}, &metrics.Sample{}, &metrics.Sample{}
	for i := 0; i < cfg.Routes; i++ {
		src := stationary[rng.Intn(len(stationary))]
		dst := stationary[rng.Intn(len(stationary))]
		if src.ID == dst.ID {
			i--
			continue
		}
		rs, err := bn.RouteData(src, dst.Key)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("route %d: %w", i, err)
		}
		hops.Add(float64(rs.TotalHops))
		cost.Add(rs.Cost)
		disc.Add(float64(rs.Discoveries))
	}
	return hops, cost, disc, nil
}

// RenderFig7 produces the two paper-style tables (7a hops, 7b RDP).
func RenderFig7(rows []Fig7Row) string {
	ta := metrics.NewTable("M/N (%)", "scrambled hops", "clustered hops", "scrambled cost", "clustered cost")
	tb := metrics.NewTable("M/N (%)", "RDP hops", "RDP path cost", "disc/route scrambled", "disc/route clustered")
	for _, r := range rows {
		pct := r.MobileFrac * 100
		ta.AddRow(pct, r.ScrambledHops, r.ClusteredHops, r.ScrambledCost, r.ClusteredCost)
		tb.AddRow(pct, r.RDPHops, r.RDPCost, r.ScrambledDisc, r.ClusteredDisc)
	}
	return "Figure 7(a): application-level hops per route\n" + ta.String() +
		"\nFigure 7(b): relative delay penalty (scrambled/clustered)\n" + tb.String()
}
