package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"bristle/internal/ldt"
	"bristle/internal/metrics"
)

// Fig8Config parameterizes the state-advertisement experiment of
// Section 4.2: how LDTs adapt to workload (capacity) and heterogeneity.
//
// Paper parameters: 25,000 nodes; each node's capacity (number of
// available network connections) uniform in [1, MAX] for MAX = 1..15;
// registry size ⌈log₂ 25,000⌉ = 15; all LDTs in the system measured, and
// 15 trees sampled for the heterogeneity plot.
type Fig8Config struct {
	Nodes        int // population (paper: 25000)
	RegistrySize int // interested nodes per tree (paper: 15)
	MaxCapacity  int // largest MAX in the sweep (paper: 15)
	Trees        int // LDTs measured per MAX value (paper: all = Nodes)
	SampleTrees  int // trees sampled for the 8(b) heterogeneity table
	Seed         int64
	// UsedFraction models present workload: each member's Used is this
	// fraction of its capacity (Figure 4's Used_i). The paper varies
	// workload through the capacity draw; this knob additionally shows
	// the "tree depth becomes lengthened under heavy workload" effect at
	// a fixed capacity distribution. 0 reproduces the paper's setting.
	UsedFraction float64
}

// DefaultFig8 returns the laptop-scale configuration (fewer trees per
// point; the distribution converges long before the paper's 25,000).
func DefaultFig8() Fig8Config {
	return Fig8Config{
		Nodes:        25000,
		RegistrySize: 15,
		MaxCapacity:  15,
		Trees:        2000,
		SampleTrees:  15,
		Seed:         8,
	}
}

// PaperFig8 measures every tree, as the paper does.
func PaperFig8() Fig8Config {
	cfg := DefaultFig8()
	cfg.Trees = cfg.Nodes
	return cfg
}

// Fig8LevelRow is one Figure 8(a) column: for a given MAX capacity, the
// percentage of tree nodes at each level (level 1 = root).
type Fig8LevelRow struct {
	MaxCapacity  int
	LevelPercent []float64 // index 0 unused; [l] = % of nodes at level l
	MeanDepth    float64
	MaxDepth     int
}

// Fig8NodeRow is one member of one sampled tree in Figure 8(b).
type Fig8NodeRow struct {
	Tree     int     // sampled tree index (0-based)
	NodeRank int     // 1 = highest available capacity, as in the paper
	Capacity float64 // available capacity (gray bar)
	Assigned int     // |partition(rank)|: members delegated (dark bar)
	IsRoot   bool
}

// Fig8Result bundles both subfigures.
type Fig8Result struct {
	Levels []Fig8LevelRow
	Nodes  []Fig8NodeRow
}

// RunFig8 builds LDTs for every MAX value and collects the level
// distribution (8a) and the per-node assignment of sampled trees (8b).
func RunFig8(cfg Fig8Config) (*Fig8Result, error) {
	if cfg.RegistrySize < 1 || cfg.Trees < 1 {
		return nil, fmt.Errorf("experiments: invalid Fig8 config %+v", cfg)
	}
	// The paper motivates RegistrySize = ⌈log₂ Nodes⌉.
	if want := int(math.Ceil(math.Log2(float64(cfg.Nodes)))); cfg.RegistrySize != want {
		// Not an error — but keep the invariant visible to callers reading
		// the result.
		_ = want
	}
	res := &Fig8Result{}
	for max := 1; max <= cfg.MaxCapacity; max++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(max)*977))
		depths := &metrics.Sample{}
		levelCounts := []int{}
		totalNodes := 0
		for tr := 0; tr < cfg.Trees; tr++ {
			tree, err := buildFig8Tree(cfg, max, rng)
			if err != nil {
				return nil, err
			}
			depths.Add(float64(tree.Depth()))
			hist := tree.LevelHistogram()
			for l := 1; l < len(hist); l++ {
				for len(levelCounts) <= l {
					levelCounts = append(levelCounts, 0)
				}
				levelCounts[l] += hist[l]
				totalNodes += hist[l]
			}
		}
		row := Fig8LevelRow{
			MaxCapacity:  max,
			LevelPercent: make([]float64, len(levelCounts)),
			MeanDepth:    depths.Mean(),
			MaxDepth:     int(depths.Max()),
		}
		for l := 1; l < len(levelCounts); l++ {
			row.LevelPercent[l] = 100 * float64(levelCounts[l]) / float64(totalNodes)
		}
		res.Levels = append(res.Levels, row)
	}

	// Figure 8(b): sample trees at MAX capacity, report members sorted by
	// available capacity with their delegated counts.
	rng := rand.New(rand.NewSource(cfg.Seed + 31337))
	for tr := 0; tr < cfg.SampleTrees; tr++ {
		tree, err := buildFig8Tree(cfg, cfg.MaxCapacity, rng)
		if err != nil {
			return nil, err
		}
		type rec struct {
			cap      float64
			assigned int
			isRoot   bool
		}
		var recs []rec
		tree.Walk(func(n *ldt.Node) {
			recs = append(recs, rec{cap: n.Member.Avail(), assigned: n.Assigned, isRoot: n.Level == 1})
		})
		// Sort by decreasing available capacity (paper's node ID order);
		// stable tie-break keeps walk order.
		for i := 0; i < len(recs); i++ {
			for j := i + 1; j < len(recs); j++ {
				if recs[j].cap > recs[i].cap {
					recs[i], recs[j] = recs[j], recs[i]
				}
			}
		}
		for rank, r := range recs {
			res.Nodes = append(res.Nodes, Fig8NodeRow{
				Tree:     tr,
				NodeRank: rank + 1,
				Capacity: r.cap,
				Assigned: r.assigned,
				IsRoot:   r.isRoot,
			})
		}
	}
	return res, nil
}

// buildFig8Tree draws a root and RegistrySize members with capacities
// uniform in [1, max] and builds the member-only LDT.
func buildFig8Tree(cfg Fig8Config, max int, rng *rand.Rand) (*ldt.Tree, error) {
	mk := func(id int32) ldt.Member {
		c := drawCapacity(rng, max)
		return ldt.Member{ID: id, Capacity: c, Used: cfg.UsedFraction * c}
	}
	root := mk(0)
	reg := make([]ldt.Member, cfg.RegistrySize)
	for i := range reg {
		reg[i] = mk(int32(i + 1))
	}
	return ldt.Build(root, reg, ldt.Params{UnitCost: 1})
}

// RenderFig8 produces the paper-style tables for both subfigures.
func RenderFig8(res *Fig8Result) string {
	// 8(a): one row per MAX, columns = % at levels 1..deepest.
	deepest := 0
	for _, r := range res.Levels {
		if len(r.LevelPercent)-1 > deepest {
			deepest = len(r.LevelPercent) - 1
		}
	}
	headers := []string{"MAX cap", "mean depth", "max depth"}
	for l := 1; l <= deepest; l++ {
		headers = append(headers, fmt.Sprintf("L%d%%", l))
	}
	ta := metrics.NewTable(headers...)
	for _, r := range res.Levels {
		cells := []interface{}{r.MaxCapacity, r.MeanDepth, r.MaxDepth}
		for l := 1; l <= deepest; l++ {
			if l < len(r.LevelPercent) {
				cells = append(cells, r.LevelPercent[l])
			} else {
				cells = append(cells, 0.0)
			}
		}
		ta.AddRow(cells...)
	}

	tb := metrics.NewTable("tree", "node rank", "avail capacity", "assigned", "root")
	for _, n := range res.Nodes {
		tb.AddRow(n.Tree+1, n.NodeRank, n.Capacity, n.Assigned, n.IsRoot)
	}
	return "Figure 8(a): LDT level distribution vs maximum capacity\n" + ta.String() +
		"\nFigure 8(b): per-node assignment in sampled trees (heterogeneity)\n" + tb.String()
}
