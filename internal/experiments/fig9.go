package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"bristle/internal/ldt"
	"bristle/internal/metrics"
	"bristle/internal/simnet"
	"bristle/internal/topology"
)

// Fig9Config parameterizes the advertisement/network-proximity experiment
// of Section 4.3: the average per-tree per-edge cost of all LDTs, with and
// without network locality, as the mobile population grows.
//
// Paper parameters: a 10,000-node underlay; nodes dynamically increased
// and randomly attached; capacities uniform in [1, 15]; every LDT's edge
// costs measured via shortest-path weights; M/N swept 0..100%.
type Fig9Config struct {
	Routers      int       // underlay router count (paper: 10000)
	Fracs        []float64 // node density sweep: nodes = frac × Routers
	RegistrySize int       // interested nodes per mobile node (≈ log₂ N)
	// CandidateFrac is the fraction of the population a locality-aware
	// joiner may consider when picking the nodes it registers to. As the
	// population grows the candidate pool grows with it — the paper's
	// §4.3 observation (3) that density gives joiners "greater
	// alternative" in picking nearby interested nodes.
	CandidateFrac float64
	MaxCapacity   int
	Seed          int64
}

// DefaultFig9 returns the laptop-scale configuration.
func DefaultFig9() Fig9Config {
	return Fig9Config{
		Routers:       2000,
		Fracs:         []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
		RegistrySize:  15,
		CandidateFrac: 0.15,
		MaxCapacity:   15,
		Seed:          9,
	}
}

// PaperFig9 uses the paper's 10,000-router underlay.
func PaperFig9() Fig9Config {
	cfg := DefaultFig9()
	cfg.Routers = 10000
	return cfg
}

// Fig9Row is one density point.
type Fig9Row struct {
	Frac                float64 // nodes as a fraction of the router count
	Nodes               int
	WithLocality        float64 // avg per-tree per-edge cost
	WithoutLocality     float64
	LocalityImprovement float64 // without/with ratio
}

// RunFig9 sweeps node density and measures all LDT edge costs.
//
// "With locality" applies the paper's two locality levers: a joining node
// registers to the underlay-nearest candidates among those it could be
// interested in (§4.3 observation 3), and the Figure 4 partitioning
// assigns members to the nearest head (package ldt). "Without locality"
// picks registry members uniformly and partitions by pure round-robin.
func RunFig9(cfg Fig9Config) ([]Fig9Row, error) {
	if cfg.RegistrySize < 1 || cfg.CandidateFrac <= 0 || cfg.CandidateFrac > 1 {
		return nil, fmt.Errorf("experiments: invalid Fig9 config %+v", cfg)
	}
	base := rand.New(rand.NewSource(cfg.Seed))
	g, err := topology.GenerateTransitStub(topology.DefaultTransitStub(cfg.Routers), base)
	if err != nil {
		return nil, err
	}
	net := simnet.NewNetwork(g, nil)

	rows := make([]Fig9Row, 0, len(cfg.Fracs))
	for i, frac := range cfg.Fracs {
		if frac <= 0 || frac > 1 {
			return nil, fmt.Errorf("experiments: density %v out of (0,1]", frac)
		}
		nodes := int(frac * float64(cfg.Routers))
		if nodes <= cfg.RegistrySize {
			nodes = cfg.RegistrySize + 1
		}
		seed := cfg.Seed + int64(i)*131
		with, err := fig9Point(cfg, net, nodes, true, seed)
		if err != nil {
			return nil, err
		}
		without, err := fig9Point(cfg, net, nodes, false, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig9Row{
			Frac:                frac,
			Nodes:               nodes,
			WithLocality:        with,
			WithoutLocality:     without,
			LocalityImprovement: metrics.RDP(without, with),
		})
	}
	return rows, nil
}

// fig9Point attaches the node population, builds one LDT per node, and
// returns the average per-tree per-edge cost.
func fig9Point(cfg Fig9Config, net *simnet.Network, nodes int, locality bool, seed int64) (float64, error) {
	rng := rand.New(rand.NewSource(seed))
	stubs := net.StubRouters()
	routers := make([]topology.RouterID, nodes)
	caps := make([]float64, nodes)
	for i := range routers {
		routers[i] = stubs[rng.Intn(len(stubs))]
		caps[i] = drawCapacity(rng, cfg.MaxCapacity)
	}

	params := ldt.Params{UnitCost: 1, Locality: locality}
	if locality {
		params.Dist = net.RouterDistance
	}

	perTree := &metrics.Sample{}
	for root := 0; root < nodes; root++ {
		members := pickRegistry(cfg, net, routers, caps, root, locality, rng)
		tree, err := ldt.Build(ldt.Member{
			ID:       int32(root),
			Capacity: caps[root],
			Router:   routers[root],
		}, members, params)
		if err != nil {
			return 0, err
		}
		if tree.Edges() == 0 {
			continue
		}
		perTree.Add(tree.EdgeCost(net.RouterDistance) / float64(tree.Edges()))
	}
	return perTree.Mean(), nil
}

// pickRegistry selects RegistrySize interested nodes for root. With
// locality the root examines Candidates random nodes and registers the
// nearest; without, it takes the first RegistrySize random nodes.
func pickRegistry(cfg Fig9Config, net *simnet.Network, routers []topology.RouterID,
	caps []float64, root int, locality bool, rng *rand.Rand) []ldt.Member {

	candCount := cfg.RegistrySize
	if locality {
		candCount = int(cfg.CandidateFrac * float64(len(routers)))
		if candCount < cfg.RegistrySize {
			candCount = cfg.RegistrySize
		}
	}
	seen := map[int]bool{root: true}
	type cand struct {
		idx  int
		dist float64
	}
	var cands []cand
	for len(cands) < candCount && len(seen) < len(routers) {
		j := rng.Intn(len(routers))
		if seen[j] {
			continue
		}
		seen[j] = true
		d := 0.0
		if locality {
			d = net.RouterDistance(routers[root], routers[j])
		}
		cands = append(cands, cand{idx: j, dist: d})
	}
	if locality {
		sort.Slice(cands, func(a, b int) bool { return cands[a].dist < cands[b].dist })
	}
	n := cfg.RegistrySize
	if n > len(cands) {
		n = len(cands)
	}
	members := make([]ldt.Member, n)
	for i := 0; i < n; i++ {
		j := cands[i].idx
		members[i] = ldt.Member{ID: int32(j), Capacity: caps[j], Router: routers[j]}
	}
	return members
}

// RenderFig9 produces the paper-style table.
func RenderFig9(rows []Fig9Row) string {
	t := metrics.NewTable("M/N (%)", "nodes", "with locality", "without locality", "improvement (×)")
	for _, r := range rows {
		t.AddRow(r.Frac*100, r.Nodes, r.WithLocality, r.WithoutLocality, r.LocalityImprovement)
	}
	return "Figure 9: average per-tree per-edge LDT cost, with vs without network locality\n" + t.String()
}
