package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"bristle/internal/chord"
	"bristle/internal/core"
	"bristle/internal/hashkey"
	"bristle/internal/metrics"
	"bristle/internal/overlay"
	"bristle/internal/simnet"
)

// ScalingConfig parameterizes the O(log N) validation of the paper's
// §2.3.2 properties: per-node routing state (scalability), route hops
// (responsiveness), and registry/LDT size — across a population sweep,
// for both substrates.
type ScalingConfig struct {
	Sizes  []int // populations to sweep
	Routes int   // sample routes per point
	Seed   int64
}

// DefaultScaling returns the laptop-scale configuration.
func DefaultScaling() ScalingConfig {
	return ScalingConfig{
		Sizes:  []int{128, 256, 512, 1024, 2048, 4096},
		Routes: 500,
		Seed:   12,
	}
}

// ScalingRow is one population point for one substrate.
type ScalingRow struct {
	Substrate  string
	N          int
	MeanHops   float64
	P99Hops    float64
	MeanState  float64
	MaxState   int
	HopsPerLog float64 // MeanHops / log2(N): flat ⇒ O(log N) confirmed
}

// RunScaling measures both substrates across the size sweep.
func RunScaling(cfg ScalingConfig) ([]ScalingRow, error) {
	if len(cfg.Sizes) == 0 || cfg.Routes < 1 {
		return nil, fmt.Errorf("experiments: invalid scaling config %+v", cfg)
	}
	var rows []ScalingRow
	for _, substrate := range []string{"ring", "chord"} {
		for i, n := range cfg.Sizes {
			if n < 2 {
				return nil, fmt.Errorf("experiments: size %d too small", n)
			}
			row, err := scalingPoint(substrate, n, cfg.Routes, cfg.Seed+int64(i)*37)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func scalingPoint(substrate string, n, routes int, seed int64) (ScalingRow, error) {
	row := ScalingRow{Substrate: substrate, N: n}
	rng := rand.New(rand.NewSource(seed))

	var sub core.Substrate
	switch substrate {
	case "ring":
		sub = overlay.NewRing(overlay.DefaultConfig(), nil)
	case "chord":
		sub = chord.New(chord.DefaultConfig(), nil)
	default:
		return row, fmt.Errorf("experiments: unknown substrate %q", substrate)
	}
	for i := 0; i < n; i++ {
		for {
			if _, err := sub.AddNode(hashkey.Random(rng), simnet.NoHost); err == nil {
				break
			}
		}
	}
	refs := sub.Refs()

	hops := &metrics.Sample{}
	for i := 0; i < routes; i++ {
		src := refs[rng.Intn(len(refs))]
		res, err := sub.Route(src.ID, hashkey.Random(rng), nil)
		if err != nil {
			return row, err
		}
		hops.Add(float64(res.NumHops()))
	}
	state := &metrics.Sample{}
	maxState := 0
	for _, r := range refs {
		s := sub.StateSizeOf(r.ID)
		state.Add(float64(s))
		if s > maxState {
			maxState = s
		}
	}
	row.MeanHops = hops.Mean()
	row.P99Hops = hops.Percentile(99)
	row.MeanState = state.Mean()
	row.MaxState = maxState
	row.HopsPerLog = row.MeanHops / math.Log2(float64(n))
	return row, nil
}

// RenderScaling produces the validation table.
func RenderScaling(rows []ScalingRow) string {
	t := metrics.NewTable("substrate", "N", "mean hops", "p99 hops", "hops/log2(N)", "mean state", "max state")
	for _, r := range rows {
		t.AddRow(r.Substrate, r.N, r.MeanHops, r.P99Hops, r.HopsPerLog, r.MeanState, r.MaxState)
	}
	return "Scaling validation (§2.3.2): O(log N) route hops and per-node state\n" + t.String()
}
