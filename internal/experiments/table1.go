package experiments

import (
	"fmt"
	"math/rand"

	"bristle/internal/baseline"
	"bristle/internal/core"
	"bristle/internal/metrics"
	"bristle/internal/overlay"
	"bristle/internal/simnet"
)

// Table1Config parameterizes the quantitative re-derivation of the
// paper's Table 1: Type A (leave+rejoin over IP), Type B (HS-P2P over
// Mobile IP) and Bristle compared on the same underlay and workload.
type Table1Config struct {
	Stationary int // stationary peers / correspondents
	Mobile     int // mobile peers (session targets)
	Sessions   int // correspondent→mobile sessions
	Rounds     int // movement rounds; each mobile moves once per round
	// FailFraction of the supporting infrastructure is killed before the
	// final round: home agents for Type B, stationary peers for Bristle
	// (Type A has no infrastructure to fail).
	FailFraction float64
	Routers      int
	Seed         int64
}

// DefaultTable1 returns the laptop-scale configuration.
func DefaultTable1() Table1Config {
	return Table1Config{
		Stationary:   300,
		Mobile:       150,
		Sessions:     400,
		Rounds:       4,
		FailFraction: 0.1,
		Routers:      1000,
		Seed:         42,
	}
}

// Table1Row is one design's measured behaviour.
type Table1Row struct {
	Design         string
	Infrastructure string
	// DeliveryPct is the fraction of session messages delivered across
	// movement rounds (end-to-end semantics in practice).
	DeliveryPct float64
	// DeliveryAfterFailPct is the delivery rate after FailFraction of the
	// design's supporting infrastructure fails (reliability).
	DeliveryAfterFailPct float64
	// CostPenalty is mean delivered cost / direct path cost (performance).
	CostPenalty float64
	// MaintPerMove is the mean maintenance messages per movement
	// (scalability of mobility handling).
	MaintPerMove float64
	// EndToEnd reports whether the design preserves end-to-end semantics
	// (a correspondent can keep addressing the peer it opened a session
	// with).
	EndToEnd bool
}

// RunTable1 builds all three systems and drives the same movement/session
// workload through each.
func RunTable1(cfg Table1Config) ([]Table1Row, error) {
	if cfg.Stationary < 10 || cfg.Mobile < 2 {
		return nil, fmt.Errorf("experiments: population too small: %+v", cfg)
	}
	rows := make([]Table1Row, 0, 3)

	bristleRow, err := table1Bristle(cfg)
	if err != nil {
		return nil, fmt.Errorf("bristle: %w", err)
	}
	typeARow, err := table1TypeA(cfg)
	if err != nil {
		return nil, fmt.Errorf("type A: %w", err)
	}
	typeBRow, err := table1TypeB(cfg)
	if err != nil {
		return nil, fmt.Errorf("type B: %w", err)
	}
	rows = append(rows, typeARow, typeBRow, bristleRow)
	return rows, nil
}

type session struct {
	src int // index into correspondents
	dst int // index into mobiles
}

func table1Sessions(cfg Table1Config, rng *rand.Rand) []session {
	out := make([]session, cfg.Sessions)
	for i := range out {
		out[i] = session{src: rng.Intn(cfg.Stationary), dst: rng.Intn(cfg.Mobile)}
	}
	return out
}

func table1Bristle(cfg Table1Config) (Table1Row, error) {
	row := Table1Row{Design: "Bristle", Infrastructure: "IP", EndToEnd: true}
	net, err := newUnderlay(cfg.Routers, cfg.Seed)
	if err != nil {
		return row, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	bn := core.NewNetwork(core.Config{
		Naming:             core.Clustered,
		StationaryFraction: float64(cfg.Stationary) / float64(cfg.Stationary+cfg.Mobile),
		Overlay:            overlay.DefaultConfig(),
		ReplicationFactor:  3,
		UnitCost:           1,
		LDTLocality:        true,
		CacheResolved:      true,
	}, net, nil, rng)

	var stats, mobiles []*core.Peer
	for i := 0; i < cfg.Stationary; i++ {
		p, err := bn.AddPeer(core.Stationary, drawCapacity(rng, 15))
		if err != nil {
			return row, err
		}
		stats = append(stats, p)
	}
	for i := 0; i < cfg.Mobile; i++ {
		p, err := bn.AddPeer(core.Mobile, drawCapacity(rng, 15))
		if err != nil {
			return row, err
		}
		mobiles = append(mobiles, p)
	}
	bn.RefreshEntries()
	bn.BuildRegistries()
	for _, p := range mobiles {
		if _, err := bn.PublishLocation(p); err != nil {
			return row, err
		}
	}

	sessions := table1Sessions(cfg, rng)
	// Session start: the correspondent registers its interest (§2.3.1).
	for _, s := range sessions {
		bn.Register(stats[s.src], mobiles[s.dst])
	}

	delivered, attempted := 0, 0
	costs, directs := &metrics.Sample{}, &metrics.Sample{}
	maint := &metrics.Sample{}
	moves := 0

	runRound := func(countInto *int, okInto *int) error {
		for _, p := range mobiles {
			bn.MoveSilently(p)
			us, err := bn.UpdateLocation(p)
			if err != nil {
				return err
			}
			maint.Add(float64(us.Messages + us.Publish.Hops))
			moves++
		}
		for _, s := range sessions {
			*countInto++
			ss, err := bn.SendDirect(stats[s.src], mobiles[s.dst])
			if err != nil {
				continue // dropped
			}
			*okInto++
			costs.Add(ss.Cost)
			directs.Add(ss.DirectCost)
		}
		return nil
	}

	for r := 0; r < cfg.Rounds-1; r++ {
		if err := runRound(&attempted, &delivered); err != nil {
			return row, err
		}
	}

	// Failure phase: kill FailFraction of the stationary layer.
	kills := int(cfg.FailFraction * float64(cfg.Stationary))
	killed := map[int]bool{}
	for len(killed) < kills {
		i := rng.Intn(len(stats))
		if killed[i] {
			continue
		}
		// Keep session sources alive so we measure infrastructure loss,
		// not correspondent loss.
		used := false
		for _, s := range sessions {
			if s.src == i {
				used = true
				break
			}
		}
		if used {
			continue
		}
		if err := bn.Leave(stats[i]); err != nil {
			return row, err
		}
		killed[i] = true
	}

	failAttempted, failDelivered := 0, 0
	if err := runRound(&failAttempted, &failDelivered); err != nil {
		return row, err
	}

	row.DeliveryPct = pct(delivered, attempted)
	row.DeliveryAfterFailPct = pct(failDelivered, failAttempted)
	row.CostPenalty = penalty(costs, directs)
	row.MaintPerMove = maint.Mean()
	return row, nil
}

func table1TypeA(cfg Table1Config) (Table1Row, error) {
	row := Table1Row{Design: "Type A", Infrastructure: "IP", EndToEnd: false}
	net, err := newUnderlay(cfg.Routers, cfg.Seed)
	if err != nil {
		return row, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	a := baseline.NewTypeA(overlay.DefaultConfig(), net, rng)

	var stats, mobiles []*baseline.APeer
	for i := 0; i < cfg.Stationary; i++ {
		p, err := a.AddPeer(net.AttachHostRandom(rng), false)
		if err != nil {
			return row, err
		}
		stats = append(stats, p)
	}
	for i := 0; i < cfg.Mobile; i++ {
		p, err := a.AddPeer(net.AttachHostRandom(rng), true)
		if err != nil {
			return row, err
		}
		mobiles = append(mobiles, p)
	}

	sessions := table1Sessions(cfg, rng)
	// Capture each session target's identity at session start.
	epochs := make([]int, len(sessions))
	for i, s := range sessions {
		epochs[i] = mobiles[s.dst].Epoch
	}

	delivered, attempted := 0, 0
	costs, directs := &metrics.Sample{}, &metrics.Sample{}
	movesBefore := a.Stats.MaintenanceMessages

	runRound := func(countInto, okInto *int) error {
		for _, p := range mobiles {
			if err := a.Move(p); err != nil {
				return err
			}
		}
		for i, s := range sessions {
			*countInto++
			cost, _, ok, err := a.SendToIdentity(stats[s.src], mobiles[s.dst].Index, epochs[i])
			if err != nil {
				return err
			}
			if ok {
				*okInto++
				costs.Add(cost)
				directs.Add(net.Cost(stats[s.src].Host, mobiles[s.dst].Host))
			}
		}
		return nil
	}
	for r := 0; r < cfg.Rounds-1; r++ {
		if err := runRound(&attempted, &delivered); err != nil {
			return row, err
		}
	}
	// Type A has no supporting infrastructure to fail; the failure-phase
	// round measures the same (broken) movement behaviour.
	failAttempted, failDelivered := 0, 0
	if err := runRound(&failAttempted, &failDelivered); err != nil {
		return row, err
	}

	totalMoves := float64(cfg.Mobile * cfg.Rounds)
	row.DeliveryPct = pct(delivered, attempted)
	row.DeliveryAfterFailPct = pct(failDelivered, failAttempted)
	row.CostPenalty = penalty(costs, directs)
	row.MaintPerMove = float64(a.Stats.MaintenanceMessages-movesBefore) / totalMoves
	return row, nil
}

func table1TypeB(cfg Table1Config) (Table1Row, error) {
	row := Table1Row{Design: "Type B", Infrastructure: "Mobile IP", EndToEnd: true}
	net, err := newUnderlay(cfg.Routers, cfg.Seed)
	if err != nil {
		return row, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	m := baseline.NewMobileIP(net)

	var stats []simnet.HostID
	for i := 0; i < cfg.Stationary; i++ {
		stats = append(stats, net.AttachHostRandom(rng))
	}
	var mobiles []simnet.HostID
	for i := 0; i < cfg.Mobile; i++ {
		h := net.AttachHostRandom(rng)
		m.AssignHomeAgent(h)
		mobiles = append(mobiles, h)
	}

	sessions := table1Sessions(cfg, rng)
	delivered, attempted := 0, 0
	costs, directs := &metrics.Sample{}, &metrics.Sample{}

	runRound := func(countInto, okInto *int) {
		for _, h := range mobiles {
			m.Move(h, rng)
		}
		for _, s := range sessions {
			*countInto++
			tri, direct, err := m.Send(stats[s.src], mobiles[s.dst])
			if err != nil {
				continue
			}
			*okInto++
			costs.Add(tri)
			directs.Add(direct)
		}
	}
	for r := 0; r < cfg.Rounds-1; r++ {
		runRound(&attempted, &delivered)
	}

	// Failure phase: kill FailFraction of home agents.
	kills := int(cfg.FailFraction * float64(cfg.Mobile))
	for i := 0; i < kills; i++ {
		m.FailHomeAgent(mobiles[rng.Intn(len(mobiles))])
	}
	failAttempted, failDelivered := 0, 0
	runRound(&failAttempted, &failDelivered)

	row.DeliveryPct = pct(delivered, attempted)
	row.DeliveryAfterFailPct = pct(failDelivered, failAttempted)
	row.CostPenalty = penalty(costs, directs)
	// Maintenance: one care-of registration per move.
	row.MaintPerMove = 1
	return row, nil
}

func pct(ok, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(ok) / float64(total)
}

func penalty(costs, directs *metrics.Sample) float64 {
	if directs.Sum() == 0 {
		return 0
	}
	return costs.Sum() / directs.Sum()
}

// RenderTable1 produces the quantitative Table 1.
func RenderTable1(rows []Table1Row) string {
	t := metrics.NewTable("design", "infrastructure", "delivery %", "delivery % (infra failures)",
		"cost penalty (×direct)", "maint msgs/move", "end-to-end")
	for _, r := range rows {
		t.AddRow(r.Design, r.Infrastructure, r.DeliveryPct, r.DeliveryAfterFailPct,
			r.CostPenalty, r.MaintPerMove, r.EndToEnd)
	}
	return "Table 1: mobility design comparison (measured)\n" + t.String()
}
