package harness

// churn.go is the production-shaped churn scheduler. Where GenSchedule
// (soak.go) draws op kinds from a flat distribution, GenChurn simulates
// each mobile member's session process on a virtual clock: session
// (online) and offline durations are drawn from Weibull distributions —
// the fit measurement studies report for deployed P2P networks, whose
// shape < 1 captures the observed heavy tail of many short-lived peers
// and few long-lived ones — and the per-node on/off events are merged
// into one time-ordered Crash/Restart schedule with resolve/move
// workload interleaved. Everything is drawn from the caller's rng, so
// one seed yields one byte-identical schedule (ScheduleString): the
// replay contract that makes a failing soak debuggable.

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// Weibull is a two-parameter Weibull distribution over durations:
// Shape is the usual k, Scale the usual λ. Shape < 1 gives the
// heavy-tailed session lengths measured in real P2P populations;
// Shape 1 degrades to exponential.
type Weibull struct {
	Shape float64
	Scale time.Duration
}

// Sample draws one duration by the inverse-CDF transform
// λ·(−ln(1−u))^{1/k}, clamped below at 1ms so a pathological draw can
// never produce a zero-length session.
func (w Weibull) Sample(rng *rand.Rand) time.Duration {
	u := rng.Float64() // in [0, 1): 1-u never 0, the log never infinite
	d := time.Duration(float64(w.Scale) * math.Pow(-math.Log1p(-u), 1/w.Shape))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// ChurnOptions shapes a generated churn schedule. The zero value is
// usable: heavy-tailed sessions averaging a few virtual minutes over a
// ten-minute horizon.
type ChurnOptions struct {
	// Session and Offline are the per-mobile online/offline duration
	// distributions on the virtual clock. Defaults: shape 0.6 (heavy
	// tail), scale 60s sessions and 30s offline gaps.
	Session Weibull
	Offline Weibull
	// Horizon bounds the virtual clock; each mobile's on/off process is
	// simulated until it crosses the horizon. Default 10 minutes. The
	// virtual clock orders events — it is never slept on, so a long
	// horizon does not mean a long test.
	Horizon time.Duration
	// MaxEvents caps the merged Crash/Restart event count (the event
	// budget that bounds a soak's wall clock regardless of cluster
	// size). The time-ordered prefix is kept; members still offline at
	// the cut are restarted by the epilogue. Default 64.
	MaxEvents int
	// MoveProb is the per-event probability of a tolerated Move of a
	// random online mobile between churn events. Default 0.25.
	MoveProb float64
	// ResolveProb is the per-event probability of a tolerated Resolve of
	// a random online mobile between churn events. Default 0.5.
	ResolveProb float64
	// Watchers is how many mobiles get a stationary watcher registered
	// in the prologue (exercising update delivery under churn). Default
	// 4, capped at the mobile population.
	Watchers int
}

func (o ChurnOptions) withDefaults() ChurnOptions {
	if o.Session == (Weibull{}) {
		o.Session = Weibull{Shape: 0.6, Scale: 60 * time.Second}
	}
	if o.Offline == (Weibull{}) {
		o.Offline = Weibull{Shape: 0.6, Scale: 30 * time.Second}
	}
	if o.Horizon <= 0 {
		o.Horizon = 10 * time.Minute
	}
	if o.MaxEvents <= 0 {
		o.MaxEvents = 64
	}
	if o.MoveProb <= 0 {
		o.MoveProb = 0.25
	}
	if o.ResolveProb <= 0 {
		o.ResolveProb = 0.5
	}
	if o.Watchers <= 0 {
		o.Watchers = 4
	}
	return o
}

// churnEvent is one on/off transition of one mobile on the virtual clock.
type churnEvent struct {
	at   time.Duration
	down bool // true: session ends (Crash); false: node returns (Restart)
	node string
}

// GenChurn derives a Weibull-churn op schedule deterministically from
// rng. Every mobile starts online; its first session length is drawn
// from Session, after which it alternates Offline/Session draws until
// the horizon. The merged, time-ordered transition stream (truncated to
// MaxEvents) becomes Crash/Restart ops with tolerated Resolve/Move
// workload interleaved; the prologue bulk-publishes the fleet and
// registers a few stationary watchers, and the epilogue restarts
// whoever the truncated stream left offline so the quiescence
// invariants cover the full membership.
//
// Only mobiles churn: the stationary core is the paper's stable
// infrastructure layer, and the record-loss story under stationary
// failure is the soak generator's (GenSchedule) territory.
func GenChurn(cfg Config, rng *rand.Rand, opt ChurnOptions) []Op {
	opt = opt.withDefaults()

	var events []churnEvent
	for _, m := range cfg.Mobile {
		t := opt.Session.Sample(rng)
		for t < opt.Horizon {
			events = append(events, churnEvent{at: t, down: true, node: m})
			back := t + opt.Offline.Sample(rng)
			if back >= opt.Horizon {
				break // still offline at the horizon; epilogue restarts it
			}
			events = append(events, churnEvent{at: back, down: false, node: m})
			t = back + opt.Session.Sample(rng)
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].node < events[j].node // deterministic tiebreak
	})
	if len(events) > opt.MaxEvents {
		events = events[:opt.MaxEvents]
	}

	// Prologue: the whole fleet publishes in bulk, sampled mobiles gain a
	// stationary watcher, and the ring syncs once.
	ops := []Op{PublishAll{}}
	for _, target := range pickDistinct(rng, cfg.Mobile, opt.Watchers) {
		ops = append(ops, Register{
			Watcher: cfg.Stationary[rng.Intn(len(cfg.Stationary))],
			Target:  target,
		})
	}
	ops = append(ops, Gossip{Rounds: 1})

	online := make(map[string]bool, len(cfg.Mobile))
	for _, m := range cfg.Mobile {
		online[m] = true
	}
	onlineMobiles := func() []string {
		var out []string
		for _, m := range cfg.Mobile {
			if online[m] {
				out = append(out, m)
			}
		}
		return out
	}
	for _, ev := range events {
		// Workload between transitions: best-effort resolves and moves of
		// whoever is online right now — under churn a single attempt may
		// fail legitimately, so both are tolerated; the quiescence
		// invariants are the real assertion.
		if up := onlineMobiles(); len(up) > 0 {
			if rng.Float64() < opt.ResolveProb {
				from := cfg.Stationary[rng.Intn(len(cfg.Stationary))]
				ops = append(ops, Try{Resolve{From: from, Target: up[rng.Intn(len(up))]}})
			}
			if rng.Float64() < opt.MoveProb {
				ops = append(ops, Try{Move{Node: up[rng.Intn(len(up))]}})
			}
		}
		if ev.down == online[ev.node] { // transition is real, not a truncation artifact
			online[ev.node] = !ev.down
			if ev.down {
				ops = append(ops, Crash{Node: ev.node})
			} else {
				ops = append(ops, Restart{Node: ev.node})
			}
		}
	}

	// Epilogue: the world comes back whole.
	for _, m := range cfg.Mobile {
		if !online[m] {
			ops = append(ops, Restart{Node: m})
		}
	}
	ops = append(ops, Gossip{Rounds: 2})
	return ops
}
