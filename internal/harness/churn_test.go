package harness_test

import (
	"math/rand"
	"testing"
	"time"

	"bristle/internal/harness"
)

// TestChurnScheduleDeterministic is GenChurn's replay contract: one
// seed, one schedule — byte-identical across runs, divergent across
// seeds.
func TestChurnScheduleDeterministic(t *testing.T) {
	cfg := harness.FabricCluster(41, 4, 24)
	opt := harness.ChurnOptions{MaxEvents: 48}
	a := harness.ScheduleString(harness.GenChurn(cfg, rand.New(rand.NewSource(41)), opt))
	b := harness.ScheduleString(harness.GenChurn(cfg, rand.New(rand.NewSource(41)), opt))
	if a != b {
		t.Fatalf("same seed produced different churn schedules:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	if a == harness.ScheduleString(harness.GenChurn(cfg, rand.New(rand.NewSource(42)), opt)) {
		t.Fatal("different seeds produced identical churn schedules")
	}
}

// TestChurnScheduleWellFormed walks a generated schedule's implied
// lifecycle: no double crash, no restart of a running node, and a whole
// world at the end (every crashed node restarted before the final op).
func TestChurnScheduleWellFormed(t *testing.T) {
	cfg := harness.FabricCluster(7, 4, 32)
	ops := harness.GenChurn(cfg, rand.New(rand.NewSource(7)), harness.ChurnOptions{MaxEvents: 200})
	down := make(map[string]bool)
	for i, op := range ops {
		switch o := op.(type) {
		case harness.Crash:
			if down[o.Node] {
				t.Fatalf("op %d crashes already-crashed %s", i, o.Node)
			}
			down[o.Node] = true
		case harness.Restart:
			if !down[o.Node] {
				t.Fatalf("op %d restarts running %s", i, o.Node)
			}
			delete(down, o.Node)
		}
	}
	if len(down) != 0 {
		t.Fatalf("schedule ends with crashed nodes: %v", down)
	}
}

// TestWeibullSample pins the sampler's shape: deterministic under one
// rng stream, strictly positive, and with the heavy-tail mean the
// inverse-CDF transform implies (λ·Γ(1+1/k); for k=0.5 that is 2λ).
func TestWeibullSample(t *testing.T) {
	w := harness.Weibull{Shape: 0.5, Scale: time.Second}
	var sum time.Duration
	rng := rand.New(rand.NewSource(9))
	const n = 20000
	for i := 0; i < n; i++ {
		d := w.Sample(rng)
		if d <= 0 {
			t.Fatalf("sample %d not positive: %v", i, d)
		}
		sum += d
	}
	mean := sum / n
	if mean < 1600*time.Millisecond || mean > 2400*time.Millisecond {
		t.Fatalf("k=0.5 mean = %v, want ≈ 2s (2λ)", mean)
	}
	a := harness.Weibull{Shape: 0.6, Scale: time.Minute}.Sample(rand.New(rand.NewSource(3)))
	b := harness.Weibull{Shape: 0.6, Scale: time.Minute}.Sample(rand.New(rand.NewSource(3)))
	if a != b {
		t.Fatalf("same rng stream produced different samples: %v vs %v", a, b)
	}
}

// TestChurn200Weibull is the race-mode churn regression: a 200-member
// fabric (16 stationary, 184 verified observer mobiles) rides a
// Weibull-churn schedule with the full invariant set — resolvability,
// update delivery, counter conservation, no-resurrection, and the
// exact-zero drainer book — under an event-budgeted checker sample.
// The schedule is regenerated from the pinned seed first and compared,
// so the run also re-asserts the replay contract end to end.
func TestChurn200Weibull(t *testing.T) {
	if testing.Short() {
		t.Skip("200-node churn skipped in -short mode")
	}
	const seed = 200_41
	cfg := harness.FabricCluster(seed, 16, 184)
	cfg.CheckBudget = 64
	opt := harness.ChurnOptions{MaxEvents: 48, Watchers: 6}
	schedule := harness.GenChurn(cfg, rand.New(rand.NewSource(seed)), opt)
	replay := harness.GenChurn(cfg, rand.New(rand.NewSource(seed)), opt)
	if harness.ScheduleString(schedule) != harness.ScheduleString(replay) {
		t.Fatal("churn schedule is not replayable from its seed")
	}
	harness.Run(t, harness.Scenario{
		Name:     "churn-200-weibull",
		Cluster:  cfg,
		Ops:      schedule,
		Checkers: append(harness.DefaultCheckers(), &harness.NoResurrection{}),
		Quiesce:  200 * time.Millisecond,
	})
}

// TestDrainerLifecycleUnderChurn is the drainer-leak regression: a
// watcher that crashes and restarts while its targets fan updates out
// must end with its drainer revived exactly once, and the cluster's
// drainer book must read zero after shutdown. Before ensureDrainer
// serialized the alive-check with the drain-channel publication, the
// boot-time drainer start raced Crash's teardown and could strand the
// goroutine — the exact-zero ActiveDrainers assertion is what catches
// that regression.
func TestDrainerLifecycleUnderChurn(t *testing.T) {
	cfg := harness.FabricCluster(101, 3, 6)
	c, err := harness.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	if err := c.PublishAll(); err != nil {
		t.Fatal(err)
	}
	if got := c.ActiveDrainers(); got != 0 {
		t.Fatalf("drainers before any registration: %d, want 0 (drainers must be lazy)", got)
	}
	// Two watchers registered on two targets each: drainers attach lazily.
	for _, w := range []string{"m1", "m2"} {
		for _, target := range []string{"m3", "m4"} {
			if err := c.Register(w, target); err != nil {
				t.Fatalf("register %s→%s: %v", w, target, err)
			}
		}
	}
	if got := c.ActiveDrainers(); got != 2 {
		t.Fatalf("drainers after 2 watchers registered: %d, want 2", got)
	}

	// Heavy fan-out while the watcher churns: the targets move (pushing
	// updates at the watcher's address) as m1 crashes and restarts.
	for cycle := 0; cycle < 3; cycle++ {
		if err := c.Crash("m1"); err != nil {
			t.Fatal(err)
		}
		for _, target := range []string{"m3", "m4"} {
			if err := c.Move(target); err != nil {
				t.Fatal(err)
			}
		}
		if got := c.ActiveDrainers(); got != 1 {
			t.Fatalf("cycle %d: drainers with m1 down: %d, want 1", cycle, got)
		}
		if err := c.Restart("m1"); err != nil {
			t.Fatal(err)
		}
		if got := c.ActiveDrainers(); got != 2 {
			t.Fatalf("cycle %d: drainers after m1 restart: %d, want 2 (watcher's drainer must revive)", cycle, got)
		}
	}

	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if got := c.ActiveDrainers(); got != 0 {
		t.Fatalf("drainers after shutdown: %d, want exactly 0", got)
	}
	nl := &harness.NoLeaks{}
	if err := nl.AfterShutdown(c); err != nil {
		t.Fatalf("NoLeaks: %v", err)
	}
}
