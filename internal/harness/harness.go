// Package harness is an in-process cluster fabric for scenario-testing
// the live Bristle stack end to end: it spins up N live.Nodes over a
// seeded fault-injection transport, executes a scripted scenario of
// typed ops — Move, Crash/Restart, Partition/Heal, Publish/Register/
// Resolve bursts — from one PRNG seed, and runs pluggable invariant
// checkers after each step and at quiescence.
//
// Everything observable is derived from Config.Seed: the fault streams
// (per directed link, via transport.Faulty), the gossip partner choices,
// and — for the randomized soak — the op schedule itself (soak.go), so a
// failing run is reproduced by re-running with the printed seed.
//
// The harness models mobility and failure the way the paper does:
//
//   - Move rebinds a mobile node to a fresh attachment point (new
//     address), republishes, and pushes the update down its LDT.
//   - Crash kills a node outright (its address goes dark); Restart
//     reoccupies the same address — a reboot, not a relocation — so the
//     stale membership views other nodes hold become true again, and the
//     records the node held as a replica are simply lost (late binding
//     and lease renewal must recover them).
//   - Partition/Heal install and remove named bidirectional splits on
//     the transport.
//
// Invariants (invariants.go): resolvability, update delivery, counter
// conservation, goroutine-leak-free shutdown.
package harness

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bristle/internal/hashkey"
	"bristle/internal/live"
	"bristle/internal/metrics"
	"bristle/internal/transport"
)

// Config parameterizes a cluster. The zero value is not useful — at
// least one stationary node is required (location records live in the
// stationary layer).
type Config struct {
	// Seed roots every PRNG in the run: fault streams, gossip partner
	// selection, and (for generated schedules) the ops themselves.
	Seed int64
	// Stationary and Mobile name the cluster members. Names double as
	// transport endpoint names, so partitions match them directly.
	Stationary []string
	Mobile     []string
	// LeaseTTL is every node's lease (published records, registrations,
	// and the resolve cache write-throughs). Zero disables expiry.
	LeaseTTL time.Duration
	// Replication is the per-record replica count (default 2).
	Replication int
	// Faults is the chaos profile switched on after a clean bootstrap.
	// Its Seed and Counters are overridden to the cluster's own.
	Faults transport.FaultConfig
	// Maintain, when non-nil, starts background maintenance on every
	// node (its Rand is re-seeded per node from Seed).
	Maintain *live.MaintainConfig
	// OpTimeout bounds one scenario op (default 30s).
	OpTimeout time.Duration
	// Tune optionally adjusts one node's config before construction.
	Tune func(name string, cfg *live.Config)
	// Logf receives harness narration; nil silences it.
	Logf func(format string, args ...interface{})
	// Verified gives every member a deterministic cryptographic identity
	// (derived from the cluster seed and the member name) and makes every
	// node require verified joins: member keys become self-certifying
	// (live.Config.Identity) instead of name hashes.
	Verified bool
	// Fabric switches bootstrap to the production-scale shape: only the
	// stationary core is joined into ring membership and gossiped to full
	// convergence; mobile members boot concurrently (BootWorkers wide),
	// admit as observers — they receive the stationary directory without
	// being ingested into any COW membership view — and skip gossip
	// entirely, so per-mobile bootstrap cost is O(1) and a 10k-member
	// cluster boots in seconds instead of cloning 10k-entry membership
	// maps 10k times. Fabric implies Verified.
	Fabric bool
	// BootWorkers bounds the concurrency of the Fabric mobile bootstrap
	// and of PublishAll (default 128).
	BootWorkers int
	// CheckBudget bounds the pair-probing invariant checkers
	// (resolvability, no-resurrection, update delivery): each samples at
	// most CheckBudget pairs per evaluation, drawn deterministically from
	// the cluster seed, keeping checker cost O(checked) instead of
	// O(cluster²). Zero means exhaustive — the pre-scale behaviour.
	CheckBudget int
}

// member is one cluster slot: the current live.Node occupying it plus
// everything that must survive a crash/restart cycle (the name, the
// address being reoccupied, and the updates the slot has observed).
type member struct {
	name   string
	mobile bool
	ident  *hashkey.Identity // non-nil under Config.Verified; survives restarts

	mu        sync.Mutex
	key       hashkey.Key // the node's ring key, recorded at first boot
	node      *live.Node
	addr      string // last bound address; Restart reoccupies it
	alive     bool
	published bool
	moves     int
	watcher   bool // has ever registered interest; drives lazy drainer revival
	stopMaint func()
	drainStop chan struct{} // nil until the lazy drainer starts
	drainDone chan struct{}
	observed  map[hashkey.Key]string // last pushed address per key, drained from Updates()
	owned     []hashkey.Key          // resource keys the slot owns; re-applied on restart
}

func (m *member) current() (*live.Node, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.node, m.alive
}

// Cluster is a running set of live nodes over one Faulty transport.
type Cluster struct {
	cfg      Config
	Net      *transport.Faulty
	Counters *metrics.Counters
	Gauges   *metrics.Gauges

	mu         sync.Mutex
	members    map[string]*member
	names      []string // stable order: stationary then mobile, as configured
	partitions map[string][2][]string
	history    map[hashkey.Key]map[string]int // addr → bind order (1 = first bind); presence = ever bound
	bindSeq    map[hashkey.Key]int            // per-key bind counter feeding history
	watchers   map[string]map[string]bool     // target name → registered watcher names
	rng        *rand.Rand                     // scripted-choice PRNG (gossip partners, op fills)

	baseGoroutines int
	drainers       atomic.Int64 // exact count of live drainUpdates goroutines
	shutdownOnce   sync.Once
	shutdownErr    error
}

// New builds, boots, joins, and gossips the cluster on a clean transport
// until every node holds full membership, then switches cfg.Faults on.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Stationary) == 0 {
		return nil, errors.New("harness: at least one stationary node required")
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 2
	}
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = 30 * time.Second
	}
	if cfg.Fabric {
		cfg.Verified = true // observer admission is only meaningful verified
	}
	if cfg.BootWorkers <= 0 {
		// Oversubscribing a small box turns boot concurrency into queueing
		// delay that blows request timeouts, so the default follows the
		// hardware instead of a fixed fan-out.
		cfg.BootWorkers = 16 * runtime.GOMAXPROCS(0)
		if cfg.BootWorkers > 128 {
			cfg.BootWorkers = 128
		}
	}
	c := &Cluster{
		cfg:            cfg,
		Counters:       metrics.NewCounters(),
		Gauges:         metrics.NewGauges(),
		members:        make(map[string]*member),
		partitions:     make(map[string][2][]string),
		history:        make(map[hashkey.Key]map[string]int),
		bindSeq:        make(map[hashkey.Key]int),
		watchers:       make(map[string]map[string]bool),
		rng:            rand.New(rand.NewSource(cfg.Seed)),
		baseGoroutines: runtime.NumGoroutine(),
	}
	c.Net = transport.NewFaulty(transport.NewMem(), transport.FaultConfig{Seed: cfg.Seed})

	for _, name := range cfg.Stationary {
		c.addMember(name, false)
	}
	for _, name := range cfg.Mobile {
		c.addMember(name, true)
	}
	if err := c.bootstrap(); err != nil {
		c.Shutdown()
		return nil, err
	}
	if cfg.Maintain != nil {
		for _, name := range c.names {
			c.startMaintenance(c.members[name])
		}
	}
	// Chaos on: from here every frame faces the configured fault profile.
	faults := cfg.Faults
	faults.Seed = cfg.Seed
	faults.Counters = c.Counters
	c.Net.SetConfig(faults)
	return c, nil
}

func (c *Cluster) logf(format string, args ...interface{}) {
	if c.cfg.Logf != nil {
		c.cfg.Logf("harness: "+format, args...)
	}
}

// opCtxDo returns a context bounding one internal operation. The caller
// never cancels it explicitly; the timeout is the bound.
func (c *Cluster) opCtxDo() context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.OpTimeout)
	_ = cancel // bounded by timeout; op completion is the normal exit
	return ctx
}

func (c *Cluster) addMember(name string, mobile bool) {
	m := &member{name: name, mobile: mobile, observed: make(map[hashkey.Key]string)}
	if c.cfg.Verified {
		// Deterministic identity: the same (seed, name) always yields the
		// same keypair, so member keys are stable across replay runs.
		m.ident = hashkey.IdentityFromSeed([]byte(fmt.Sprintf("%d|ident|%s", c.cfg.Seed, name)))
	}
	c.members[name] = m
	c.names = append(c.names, name)
}

// ringNames returns the members joined into ring membership: everyone in
// the classic shape, only the stationary core under Fabric (mobiles are
// observers there and never appear in any COW membership view until they
// publish).
func (c *Cluster) ringNames() []string {
	if !c.cfg.Fabric {
		return c.names
	}
	return c.cfg.Stationary
}

// bootstrap boots and connects the whole cluster on the clean transport.
// Classic shape: every member boots sequentially, joins through the
// first node, and gossips to full convergence. Fabric shape: only the
// stationary core does that; the mobile fleet then boots and observer-
// joins concurrently, each mobile costing one node start plus one join
// RPC — no gossip, no membership ingestion anywhere.
func (c *Cluster) bootstrap() error {
	ring := c.ringNames()
	for _, name := range ring {
		if err := c.boot(name, ""); err != nil {
			return err
		}
	}
	boot := c.members[ring[0]]
	for _, name := range ring[1:] {
		m := c.members[name]
		if err := m.node.JoinViaContext(c.opCtxDo(), boot.node.Addr()); err != nil {
			return fmt.Errorf("harness: join %s: %w", name, err)
		}
	}
	if err := c.gossipUntilFull(); err != nil {
		return err
	}
	if !c.cfg.Fabric {
		return nil
	}
	return c.bootFabricMobiles()
}

// bootFabricMobiles boots the mobile fleet BootWorkers wide. Each mobile
// observer-joins through a stationary seed chosen round-robin, spreading
// admission load across the core.
func (c *Cluster) bootFabricMobiles() error {
	seeds := make([]string, len(c.cfg.Stationary))
	for i, s := range c.cfg.Stationary {
		seeds[i] = c.members[s].node.Addr()
	}
	work := make(chan int)
	errs := make(chan error, len(c.cfg.Mobile))
	var wg sync.WaitGroup
	workers := c.cfg.BootWorkers
	if workers > len(c.cfg.Mobile) {
		workers = len(c.cfg.Mobile)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				name := c.cfg.Mobile[i]
				if err := c.boot(name, ""); err != nil {
					errs <- err
					continue
				}
				m := c.members[name]
				if err := m.node.JoinViaContext(c.opCtxDo(), seeds[i%len(seeds)]); err != nil {
					errs <- fmt.Errorf("harness: observer join %s: %w", name, err)
				}
			}
		}()
	}
	for i := range c.cfg.Mobile {
		work <- i
	}
	close(work)
	wg.Wait()
	close(errs)
	return <-errs // nil when the channel drained empty
}

// nodeConfig mirrors the aggressive-but-bounded resilience settings the
// chaos suites converged on: short per-attempt deadlines, several
// jittered retries, a breaker that trips (and probes) fast.
func (c *Cluster) nodeConfig(m *member) live.Config {
	lc := live.Config{
		Name:               m.name,
		Capacity:           4,
		Mobile:             m.mobile,
		Replication:        c.cfg.Replication,
		LeaseTTL:           c.cfg.LeaseTTL,
		RequestTimeout:     250 * time.Millisecond,
		RetryAttempts:      6,
		RetryBase:          5 * time.Millisecond,
		RetryMax:           50 * time.Millisecond,
		SuspicionThreshold: 3,
		SuspicionCooldown:  150 * time.Millisecond,
		Counters:           c.Counters,
		Gauges:             c.Gauges,
	}
	if m.ident != nil {
		lc.Identity = m.ident
		lc.RequireVerifiedJoins = true
	}
	if c.cfg.Fabric && m.mobile {
		// Observers keep no ring membership and carry no pooled sessions:
		// at production scale the per-mobile steady-state cost must stay
		// O(1) — dial-per-request against its few record owners, not a
		// multiplexed session table per node. Their request timeout is
		// boot-scale, not chaos-scale: thousands of concurrent admissions
		// queue on real hardware, and a 250ms deadline measures that queue,
		// not the peer.
		lc.JoinAsObserver = true
		lc.Pool.Disabled = true
		lc.RequestTimeout = 2 * time.Second
	}
	if c.cfg.Tune != nil {
		c.cfg.Tune(m.name, &lc)
	}
	return lc
}

// boot constructs and starts m's live node at listenAddr ("" allocates).
// Caller ensures the slot is not alive. The update drainer is NOT
// started here: drainers are lazy (ensureDrainer), attached only to
// members that register interest — at production scale a 10k-mobile
// fleet must not cost 10k idle goroutines for update streams nobody
// reads (the node side tolerates an undrained channel: handleUpdate's
// send is non-blocking and counts updates.dropped).
func (c *Cluster) boot(name, listenAddr string) error {
	m := c.members[name]
	nd := live.NewNode(c.nodeConfig(m), c.Net.Endpoint(name))
	if err := nd.Start(listenAddr); err != nil {
		return fmt.Errorf("harness: start %s: %v", name, err)
	}
	m.mu.Lock()
	m.key = nd.Key()
	m.node = nd
	m.addr = nd.Addr()
	m.alive = true
	wasWatcher := m.watcher
	owned := append([]hashkey.Key(nil), m.owned...)
	m.mu.Unlock()
	// Ownership survives a reboot: the machine still hosts its resources,
	// it just has to republish their records (Restart does, via Publish).
	if len(owned) > 0 {
		nd.OwnKeys(owned...)
	}
	c.recordAddr(nd.Key(), nd.Addr())
	if wasWatcher {
		// A watcher's drainer survives the machine in spirit: the reboot
		// revives it, so pushed updates keep landing in observed.
		c.ensureDrainer(m)
	}
	return nil
}

// ensureDrainer starts m's update drainer if the member is alive and not
// already draining. The alive check and the drain-field publication
// happen under one critical section — the lifecycle guarantee that a
// drainer can never start against a node Crash has already begun tearing
// down, which is how a crash-restart cycle under heavy fan-out used to
// leak the goroutine (the old unconditional start raced the teardown).
// Every start increments c.drainers; every exit decrements it, so the
// leak invariant can demand an exact zero.
func (c *Cluster) ensureDrainer(m *member) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.alive || m.drainStop != nil {
		return
	}
	m.drainStop = make(chan struct{})
	m.drainDone = make(chan struct{})
	c.drainers.Add(1)
	go c.drainUpdates(m, m.node, m.drainStop, m.drainDone)
}

// drainUpdates consumes a node's update channel into the member's
// observed map, so the update-delivery invariant can ask "what is the
// last address this slot was told about key K?".
func (c *Cluster) drainUpdates(m *member, nd *live.Node, stop <-chan struct{}, done chan<- struct{}) {
	defer func() {
		close(done)
		c.drainers.Add(-1)
	}()
	for {
		select {
		case <-stop:
			return
		case up := <-nd.Updates():
			m.mu.Lock()
			m.observed[up.Key] = up.Addr
			m.mu.Unlock()
		}
	}
}

// ActiveDrainers returns the number of live drainUpdates goroutines —
// the exact book the tightened goroutine-leak invariant balances.
func (c *Cluster) ActiveDrainers() int { return int(c.drainers.Load()) }

// startMaintenance launches background maintenance on m, re-seeding its
// PRNG deterministically from the cluster seed and the member name.
func (c *Cluster) startMaintenance(m *member) {
	mc := *c.cfg.Maintain
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|maint|%s|%d", c.cfg.Seed, m.name, m.moves)
	mc.Rand = rand.New(rand.NewSource(int64(h.Sum64())))
	m.mu.Lock()
	m.stopMaint = m.node.StartMaintenance(mc)
	m.mu.Unlock()
}

// gossipUntilFull runs anti-entropy rounds until every ring member knows
// every ring member, bounded at 16 rounds. Fabric observers are not ring
// members and take no part.
func (c *Cluster) gossipUntilFull() error {
	ring := c.ringNames()
	want := len(ring)
	for round := 0; round < 16; round++ {
		full := true
		for _, name := range ring {
			m := c.members[name]
			if _, err := m.node.GossipOnce(c.rng); err != nil {
				return fmt.Errorf("harness: bootstrap gossip %s: %w", name, err)
			}
			if len(m.node.KnownPeers()) != want {
				full = false
			}
		}
		if full {
			return nil
		}
	}
	return errors.New("harness: membership never converged during bootstrap")
}

// recordAddr records addr as the newest binding for key, stamping it
// with the key's next bind-order number. Re-binding a known address (a
// Restart reoccupying its machine) refreshes its order: the checkers ask
// "how recent is this answer", not "when was it first seen".
func (c *Cluster) recordAddr(key hashkey.Key, addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	set, ok := c.history[key]
	if !ok {
		set = make(map[string]int)
		c.history[key] = set
	}
	c.bindSeq[key]++
	set[addr] = c.bindSeq[key]
}

// recordBindings records m's current address for its ring key and every
// key it owns — the post-publish/post-move bookkeeping that keeps
// EverBound and BindOrder truthful for batched multi-record publishes.
func (c *Cluster) recordBindings(m *member, nd *live.Node) {
	c.recordAddr(nd.Key(), nd.Addr())
	m.mu.Lock()
	owned := append([]hashkey.Key(nil), m.owned...)
	m.mu.Unlock()
	for _, k := range owned {
		c.recordAddr(k, nd.Addr())
	}
}

// --- accessors ---

// Seed returns the seed the whole run derives from.
func (c *Cluster) Seed() int64 { return c.cfg.Seed }

// Node returns name's current live node (nil for unknown names). The
// node may be closed if the member has crashed — check Alive.
func (c *Cluster) Node(name string) *live.Node {
	m := c.members[name]
	if m == nil {
		return nil
	}
	nd, _ := m.current()
	return nd
}

// Alive reports whether name is currently running.
func (c *Cluster) Alive(name string) bool {
	m := c.members[name]
	if m == nil {
		return false
	}
	_, alive := m.current()
	return alive
}

// Addr returns name's current address ("" when crashed or unknown).
func (c *Cluster) Addr(name string) string {
	nd := c.Node(name)
	if nd == nil || !c.Alive(name) {
		return ""
	}
	return nd.Addr()
}

// Key returns name's ring key (stable across crash/restart/move). Under
// Config.Verified this is the member's self-certifying identity key, not
// a name hash, so it is read from the slot rather than recomputed.
func (c *Cluster) Key(name string) hashkey.Key {
	m := c.members[name]
	if m == nil {
		return hashkey.FromName(name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.key
}

// Names returns every member name in configured order.
func (c *Cluster) Names() []string { return append([]string(nil), c.names...) }

// LiveNames returns the currently running members in configured order.
func (c *Cluster) LiveNames() []string {
	var out []string
	for _, name := range c.names {
		if c.Alive(name) {
			out = append(out, name)
		}
	}
	return out
}

// Mobile reports whether name was configured as a mobile node.
func (c *Cluster) Mobile(name string) bool {
	m := c.members[name]
	return m != nil && m.mobile
}

// Moves reports how many times name has moved (Move ops applied).
func (c *Cluster) Moves(name string) int {
	m := c.members[name]
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.moves
}

// Published reports whether name has published its location at least
// once (and so is expected to be resolvable while alive).
func (c *Cluster) Published(name string) bool {
	m := c.members[name]
	if m == nil {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.published
}

// Owned returns the resource keys name owns (a copy, in the order they
// were added).
func (c *Cluster) Owned(name string) []hashkey.Key {
	m := c.members[name]
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]hashkey.Key(nil), m.owned...)
}

// EverBound reports whether addr was ever a valid address for key — the
// resolvability invariant uses it to tell "stale within lease" (allowed
// transiently) from "never correct" (an immediate failure).
func (c *Cluster) EverBound(key hashkey.Key, addr string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.history[key][addr]
	return ok
}

// BindOrder returns addr's position in key's bind history (1 = first
// bind, higher = more recent) and whether addr was ever bound at all.
// The no-resurrection invariant compares these orders: once a node has
// learned bind #n it must never be walked back to #m < n.
func (c *Cluster) BindOrder(key hashkey.Key, addr string) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	seq, ok := c.history[key][addr]
	return seq, ok
}

// Observed returns the last address watcher was told target moved to
// through an LDT push ("" when no push arrived yet).
func (c *Cluster) Observed(watcher, target string) string {
	m := c.members[watcher]
	if m == nil {
		return ""
	}
	key := c.Key(target)
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.observed[key]
}

// Watchers returns the names registered as interested in target, sorted.
func (c *Cluster) Watchers(target string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for w := range c.watchers[target] {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// ActivePartitions returns the names of partitions installed through the
// cluster and not yet healed, sorted.
func (c *Cluster) ActivePartitions() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for name := range c.partitions {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// --- cluster actions (the ops in scenario.go call these) ---

// Publish pushes name's location to its key's replicas.
func (c *Cluster) Publish(name string) error {
	m := c.members[name]
	if m == nil {
		return fmt.Errorf("harness: publish: unknown node %s", name)
	}
	nd, alive := m.current()
	if !alive {
		return fmt.Errorf("harness: publish: %s is crashed", name)
	}
	if err := nd.PublishContext(c.opCtxDo()); err != nil {
		return fmt.Errorf("harness: publish %s: %w", name, err)
	}
	m.mu.Lock()
	m.published = true
	m.mu.Unlock()
	c.recordBindings(m, nd)
	return nil
}

// PublishAll publishes every live mobile member concurrently,
// BootWorkers wide — the production-scale prologue (10k sequential
// publishes would serialize ~10k RPC round trips). Failures are
// tolerated per member and the first one is returned after the sweep;
// under a fault profile the resolvability invariant is the real arbiter.
func (c *Cluster) PublishAll() error {
	var names []string
	for _, name := range c.names {
		m := c.members[name]
		if !m.mobile {
			continue
		}
		if _, alive := m.current(); alive {
			names = append(names, name)
		}
	}
	work := make(chan string)
	errs := make(chan error, len(names))
	var wg sync.WaitGroup
	workers := c.cfg.BootWorkers
	if workers > len(names) {
		workers = len(names)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for name := range work {
				if err := c.Publish(name); err != nil {
					errs <- err
				}
			}
		}()
	}
	for _, name := range names {
		work <- name
	}
	close(work)
	wg.Wait()
	close(errs)
	return <-errs
}

// samplePairs deterministically samples up to budget of the n×m index
// pairs (i < n outer, j < m inner), seeded from the cluster seed and a
// per-checker label so different checkers draw different pairs but every
// replay of one seed draws the same ones. budget <= 0, or a budget
// covering everything, yields the exhaustive enumeration.
func (c *Cluster) samplePairs(label string, n, m, budget int) [][2]int {
	total := n * m
	if total == 0 {
		return nil
	}
	if budget <= 0 || budget >= total {
		out := make([][2]int, 0, total)
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				out = append(out, [2]int{i, j})
			}
		}
		return out
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|check|%s", c.cfg.Seed, label)
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	seen := make(map[int]bool, budget)
	out := make([][2]int, 0, budget)
	for len(out) < budget {
		p := rng.Intn(total)
		if seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, [2]int{p / m, p % m})
	}
	return out
}

// CheckBudget exposes the configured invariant sampling budget (0 =
// exhaustive) to checkers.
func (c *Cluster) CheckBudget() int { return c.cfg.CheckBudget }

// OwnKeys adds resource keys to name's owned set: from the next Publish
// or Move on, the node's batched publish carries one record per owned
// key alongside its own, all bound to its current address. Ownership is
// slot state — it survives crash/restart.
func (c *Cluster) OwnKeys(name string, keys ...hashkey.Key) error {
	m := c.members[name]
	if m == nil {
		return fmt.Errorf("harness: own: unknown node %s", name)
	}
	m.mu.Lock()
	m.owned = append(m.owned, keys...)
	nd, alive := m.node, m.alive
	m.mu.Unlock()
	if alive {
		nd.OwnKeys(keys...)
	}
	return nil
}

// Move rebinds a mobile member to a fresh attachment point,
// republishing and pushing the update through its LDT.
func (c *Cluster) Move(name string) error {
	m := c.members[name]
	if m == nil {
		return fmt.Errorf("harness: move: unknown node %s", name)
	}
	nd, alive := m.current()
	if !alive {
		return fmt.Errorf("harness: move: %s is crashed", name)
	}
	err := nd.RebindContext(c.opCtxDo(), "")
	// The listener moved even when the republish failed: record the new
	// address either way so the history stays truthful.
	m.mu.Lock()
	m.addr = nd.Addr()
	m.moves++
	if err == nil {
		m.published = true
	}
	m.mu.Unlock()
	c.recordBindings(m, nd)
	if err != nil {
		return fmt.Errorf("harness: move %s: %w", name, err)
	}
	c.logf("%s moved to %s", name, nd.Addr())
	return nil
}

// Crash kills name outright: maintenance stops, the update drainer
// stops, and the node closes — its address goes dark until Restart.
func (c *Cluster) Crash(name string) error {
	m := c.members[name]
	if m == nil {
		return fmt.Errorf("harness: crash: unknown node %s", name)
	}
	m.mu.Lock()
	if !m.alive {
		m.mu.Unlock()
		return fmt.Errorf("harness: crash: %s already crashed", name)
	}
	m.alive = false
	nd := m.node
	stopMaint := m.stopMaint
	m.stopMaint = nil
	drainStop, drainDone := m.drainStop, m.drainDone
	m.drainStop, m.drainDone = nil, nil
	m.mu.Unlock()
	if stopMaint != nil {
		stopMaint()
	}
	if drainStop != nil {
		close(drainStop)
		<-drainDone
	}
	if err := nd.Close(); err != nil {
		return fmt.Errorf("harness: crash %s: %w", name, err)
	}
	c.logf("%s crashed (was %s)", name, m.addr)
	return nil
}

// Restart reboots a crashed member at its previous address (same
// machine, same attachment point), rejoins it through any live node, and
// republishes its location if it had published before the crash.
func (c *Cluster) Restart(name string) error {
	m := c.members[name]
	if m == nil {
		return fmt.Errorf("harness: restart: unknown node %s", name)
	}
	m.mu.Lock()
	if m.alive {
		m.mu.Unlock()
		return fmt.Errorf("harness: restart: %s is not crashed", name)
	}
	listenAddr := m.addr
	wasPublished := m.published
	m.mu.Unlock()

	// Fabric observers rejoin through a live stationary seed directly (no
	// scan over 10k mobiles) and never gossip — gossip would hand the
	// observer's own entry to a ring member and ingest it into the COW
	// membership the observer mode exists to stay out of.
	observer := c.cfg.Fabric && m.mobile
	var bootstrap string
	if observer {
		for _, other := range c.cfg.Stationary {
			if other != name && c.Alive(other) {
				bootstrap = c.Addr(other)
				break
			}
		}
	} else {
		for _, other := range c.LiveNames() {
			if other != name {
				bootstrap = c.Addr(other)
				break
			}
		}
	}
	if bootstrap == "" {
		return errors.New("harness: restart: no live node to rejoin through")
	}
	if err := c.boot(name, listenAddr); err != nil {
		return err
	}
	nd := c.Node(name)
	if err := nd.JoinViaContext(c.opCtxDo(), bootstrap); err != nil {
		return fmt.Errorf("harness: restart %s: rejoin: %w", name, err)
	}
	if !observer {
		for i := 0; i < 3; i++ {
			if _, err := nd.GossipOnce(c.rng); err != nil {
				c.logf("restart %s: gossip round %d: %v", name, i, err)
			}
		}
	}
	if wasPublished {
		if err := c.Publish(name); err != nil {
			return err
		}
	}
	if c.cfg.Maintain != nil {
		c.startMaintenance(m)
	}
	c.logf("%s restarted at %s", name, nd.Addr())
	return nil
}

// Partition installs a named bidirectional split between groups a and b.
func (c *Cluster) Partition(name string, a, b []string) error {
	c.mu.Lock()
	if _, dup := c.partitions[name]; dup {
		c.mu.Unlock()
		return fmt.Errorf("harness: partition %s already installed", name)
	}
	c.partitions[name] = [2][]string{append([]string(nil), a...), append([]string(nil), b...)}
	c.mu.Unlock()
	c.Net.PartitionBoth(name, a, b)
	c.logf("partition %s: %v ⟂ %v", name, a, b)
	return nil
}

// Heal removes the named partition.
func (c *Cluster) Heal(name string) error {
	c.mu.Lock()
	_, ok := c.partitions[name]
	delete(c.partitions, name)
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("harness: heal: no partition named %s", name)
	}
	c.Net.Heal(name)
	c.logf("partition %s healed", name)
	return nil
}

// HealAll removes every partition installed through the cluster.
func (c *Cluster) HealAll() {
	for _, name := range c.ActivePartitions() {
		_ = c.Heal(name)
	}
}

// Register records watcher's interest in target's movement (renewing the
// registration lease when called again).
func (c *Cluster) Register(watcher, target string) error {
	wn, tn := c.Node(watcher), c.Node(target)
	if wn == nil || tn == nil || !c.Alive(watcher) || !c.Alive(target) {
		return fmt.Errorf("harness: register %s→%s: both must be live", watcher, target)
	}
	if err := wn.RegisterWithContext(c.opCtxDo(), tn.Addr()); err != nil {
		return fmt.Errorf("harness: register %s→%s: %w", watcher, target, err)
	}
	// A registrant is about to be pushed updates: attach the lazy drainer
	// now (idempotent) and remember the role so Restart revives it. The
	// updates channel buffers, so a push landing before the drainer runs
	// is not lost.
	wm := c.members[watcher]
	wm.mu.Lock()
	wm.watcher = true
	wm.mu.Unlock()
	c.ensureDrainer(wm)
	c.mu.Lock()
	set, ok := c.watchers[target]
	if !ok {
		set = make(map[string]bool)
		c.watchers[target] = set
	}
	set[watcher] = true
	c.mu.Unlock()
	return nil
}

// Resolve resolves target's key from from's cache-first resolve path.
func (c *Cluster) Resolve(from, target string) (string, error) {
	fn := c.Node(from)
	if fn == nil || !c.Alive(from) {
		return "", fmt.Errorf("harness: resolve: %s is not live", from)
	}
	return fn.ResolveContext(c.opCtxDo(), c.Key(target))
}

// Gossip runs anti-entropy rounds across every live ring member. Fabric
// observers are excluded: a gossip exchange sends the sender's own entry,
// which would ingest the observer into the COW membership views the
// observer mode exists to stay out of.
func (c *Cluster) Gossip(rounds int) error {
	for i := 0; i < rounds; i++ {
		for _, name := range c.ringNames() {
			if !c.Alive(name) {
				continue
			}
			if _, err := c.Node(name).GossipOnce(c.rng); err != nil {
				c.logf("gossip %s: %v", name, err)
			}
		}
	}
	return nil
}

// StopMaintenance stops name's background maintenance loops (idempotent;
// used by lease-expiry scenarios that need renewal to cease).
func (c *Cluster) StopMaintenance(name string) {
	m := c.members[name]
	if m == nil {
		return
	}
	m.mu.Lock()
	stop := m.stopMaint
	m.stopMaint = nil
	m.mu.Unlock()
	if stop != nil {
		stop()
	}
}

// Shutdown stops maintenance, drainers, and every node, then waits for
// the process's goroutine count to settle back to the pre-cluster
// baseline (detached singleflight flights may outlive Close by up to a
// retry budget). Idempotent; safe to defer alongside explicit calls.
func (c *Cluster) Shutdown() error {
	c.shutdownOnce.Do(func() {
		for _, name := range c.names {
			m := c.members[name]
			if _, alive := m.current(); alive {
				if err := c.Crash(name); err != nil && c.shutdownErr == nil {
					c.shutdownErr = err
				}
			}
		}
		c.waitGoroutines()
	})
	return c.shutdownErr
}

// waitGoroutines blocks until the goroutine count returns to (near) the
// pre-cluster baseline or a generous deadline passes. It does not fail —
// the NoLeaks checker owns the assertion — it only quiesces the process
// so post-shutdown counter checks see a world at rest.
func (c *Cluster) waitGoroutines() {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= c.baseGoroutines+goroutineSlack {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// goroutineSlack absorbs runtime/testing helper goroutines that come and
// go independently of the cluster.
const goroutineSlack = 3

// DumpState renders the cluster's observable state — counters, gauges,
// live membership, partitions — for failure output, so a soak failure is
// diagnosable from its artifact alone.
func (c *Cluster) DumpState() string {
	return fmt.Sprintf(
		"seed: %d\nlive: %v\npartitions: %v (transport: %v)\ncounters: %s\ngauges: %s",
		c.cfg.Seed, c.LiveNames(), c.ActivePartitions(), c.Net.PartitionNames(),
		c.Counters, c.Gauges)
}

// Eventually retries op every 10ms until it succeeds or the deadline
// lapses, returning the last error — the standard shape for asserting
// convergence under injected faults.
func Eventually(d time.Duration, op func() error) error {
	limit := time.Now().Add(d)
	for {
		err := op()
		if err == nil {
			return nil
		}
		if time.Now().After(limit) {
			return err
		}
		time.Sleep(10 * time.Millisecond)
	}
}
