package harness_test

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"bristle/internal/harness"
	"bristle/internal/hashkey"
	"bristle/internal/live"
	"bristle/internal/transport"
)

// maintain returns the standard background-maintenance profile the
// scenario suite runs under: gossip, renewal faster than the lease, and
// suspect probing.
func maintain() *live.MaintainConfig {
	return &live.MaintainConfig{
		GossipInterval: 300 * time.Millisecond,
		RenewInterval:  400 * time.Millisecond,
		ProbeInterval:  250 * time.Millisecond,
	}
}

// TestScenarios is the table-driven acceptance suite: each entry scripts
// one mobility/fault story and every entry is judged by the same four
// invariants (plus scenario-specific checks). All run under -race.
func TestScenarios(t *testing.T) {
	scenarios := []harness.Scenario{
		ringChurn(),
		flashCrowdResolveStorm(),
		partitionDuringRebind(),
		registryUnderMoverCrash(),
		batchedMoverManyKeys(),
		rapidMovesUnderDuplication(),
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			harness.Run(t, sc)
		})
	}
}

// ringChurn churns the ring while mobiles keep moving: a stationary
// replica crashes and reboots, a mobile crashes mid-life and comes back,
// all under 15% frame loss with maintenance renewing leases throughout.
func ringChurn() harness.Scenario {
	return harness.Scenario{
		Name: "ring-churn",
		Cluster: harness.Config{
			Seed:        101,
			Stationary:  []string{"s1", "s2", "s3", "s4", "s5"},
			Mobile:      []string{"m1", "m2"},
			LeaseTTL:    2 * time.Second,
			Replication: 3,
			Faults:      transport.FaultConfig{Drop: 0.15, DelayMax: 20 * time.Millisecond},
			Maintain:    maintain(),
		},
		Ops: []harness.Op{
			harness.Publish{Node: "m1"},
			harness.Publish{Node: "m2"},
			harness.Register{Watcher: "s1", Target: "m1"},
			harness.Register{Watcher: "s2", Target: "m1"},
			harness.Register{Watcher: "s3", Target: "m2"},
			harness.Move{Node: "m1"},
			harness.Crash{Node: "s4"},
			harness.Move{Node: "m2"},
			harness.Resolve{From: "s1", Target: "m2", Within: 10 * time.Second},
			harness.Restart{Node: "s4"},
			harness.Crash{Node: "m2"},
			harness.Settle{For: 300 * time.Millisecond},
			harness.Restart{Node: "m2"},
			harness.Move{Node: "m2"},
			harness.Gossip{Rounds: 2},
		},
		Quiesce: 200 * time.Millisecond,
	}
}

// flashCrowdResolveStorm slams one freshly published mobile with a storm
// of concurrent resolvers through a single node: every resolver must get
// the right address while singleflight coalescing keeps the number of
// network discoveries far below the number of callers.
func flashCrowdResolveStorm() harness.Scenario {
	const stormers = 48
	return harness.Scenario{
		Name: "flash-crowd-resolve-storm",
		Cluster: harness.Config{
			Seed:        202,
			Stationary:  []string{"s1", "s2", "s3"},
			Mobile:      []string{"m1"},
			LeaseTTL:    30 * time.Second,
			Replication: 2,
			Faults:      transport.FaultConfig{Drop: 0.10, DelayMax: 10 * time.Millisecond},
		},
		Ops: []harness.Op{
			harness.Publish{Node: "m1"},
			harness.Storm{From: "s1", Target: "m1", Resolvers: stormers, Within: 15 * time.Second},
		},
		Checkers: append(harness.DefaultCheckers(), harness.CheckFunc{
			Label: "storm-coalesced",
			Quiesce: func(c *harness.Cluster) error {
				d := c.Counters.Get("resolve.discoveries")
				if d == 0 || d > stormers/4 {
					return fmt.Errorf("resolve.discoveries = %d for %d resolvers; want coalesced to a handful", d, stormers)
				}
				return nil
			},
		}),
	}
}

// partitionDuringRebind cuts two stationary nodes (one of them a
// registered watcher) away while a mobile rebinds, then heals: the
// formerly islanded nodes must converge on the post-move address, and
// the watcher must still observe the move through the LDT.
func partitionDuringRebind() harness.Scenario {
	island := []string{"s4", "s5"}
	mainland := []string{"s1", "s2", "s3", "m1"}
	return harness.Scenario{
		Name: "partition-during-rebind",
		Cluster: harness.Config{
			Seed:        303,
			Stationary:  []string{"s1", "s2", "s3", "s4", "s5"},
			Mobile:      []string{"m1"},
			LeaseTTL:    2 * time.Second,
			Replication: 3,
			Faults:      transport.FaultConfig{Drop: 0.15, DelayMax: 20 * time.Millisecond},
			Maintain:    maintain(),
		},
		Ops: []harness.Op{
			harness.Publish{Node: "m1"},
			harness.Register{Watcher: "s1", Target: "m1"},
			harness.Register{Watcher: "s4", Target: "m1"},
			harness.Partition{Name: "split", A: island, B: mainland},
			harness.Move{Node: "m1"},
			harness.Resolve{From: "s2", Target: "m1", Within: 10 * time.Second},
			harness.Settle{For: 500 * time.Millisecond},
			harness.Heal{Name: "split"},
			harness.Resolve{From: "s4", Target: "m1", Within: 15 * time.Second},
		},
		Quiesce: 200 * time.Millisecond,
	}
}

// registryUnderMoverCrash crashes a mover that watchers registered with:
// the crash wipes its registry, so after the reboot the watchers'
// renewed registrations must repopulate it and the next move must reach
// them again.
func registryUnderMoverCrash() harness.Scenario {
	return harness.Scenario{
		Name: "registry-under-mover-crash",
		Cluster: harness.Config{
			Seed:        404,
			Stationary:  []string{"s1", "s2", "s3", "s4"},
			Mobile:      []string{"m1"},
			LeaseTTL:    2 * time.Second,
			Replication: 2,
			Faults:      transport.FaultConfig{Drop: 0.10, DelayMax: 10 * time.Millisecond},
			Maintain:    maintain(),
		},
		Ops: []harness.Op{
			harness.Publish{Node: "m1"},
			harness.Register{Watcher: "s1", Target: "m1"},
			harness.Register{Watcher: "s2", Target: "m1"},
			harness.Move{Node: "m1"},
			harness.Crash{Node: "m1"},
			harness.Settle{For: 300 * time.Millisecond},
			harness.Restart{Node: "m1"},
			harness.Move{Node: "m1"},
		},
		Checkers: append(harness.DefaultCheckers(), harness.CheckFunc{
			Label: "registry-repopulated",
			// Runs after the update-delivery checker re-registered the
			// watchers with the rebooted mover.
			Quiesce: func(c *harness.Cluster) error {
				if got := len(c.Node("m1").Registry()); got == 0 {
					return fmt.Errorf("mover registry empty after reboot + renewed interest")
				}
				return nil
			},
		}),
		Quiesce: 200 * time.Millisecond,
	}
}

// batchedMoverManyKeys gives one mobile node a thousand owned resource
// keys and moves it twice: every record must follow the mover (sampled
// via late binding from other nodes), and the batched publish must keep
// the RPC bill O(replica groups) — a small fraction of the record count
// — rather than O(keys).
func batchedMoverManyKeys() harness.Scenario {
	const ownedKeys = 1000
	keys := make([]hashkey.Key, ownedKeys)
	for i := range keys {
		keys[i] = hashkey.FromName(fmt.Sprintf("res-%d", i))
	}
	// Sample a spread of owned keys for the quiescence resolve check.
	sample := []hashkey.Key{keys[0], keys[1], keys[250], keys[500], keys[999]}
	return harness.Scenario{
		Name: "batched-mover-many-keys",
		Cluster: harness.Config{
			Seed:        505,
			Stationary:  []string{"s1", "s2", "s3"},
			Mobile:      []string{"m1"},
			LeaseTTL:    2 * time.Second,
			Replication: 2,
			Faults:      transport.FaultConfig{Drop: 0.05, DelayMax: 10 * time.Millisecond},
			Maintain:    maintain(),
		},
		Ops: []harness.Op{
			harness.Own{Node: "m1", Keys: keys},
			harness.Publish{Node: "m1"},
			harness.Register{Watcher: "s1", Target: "m1"},
			harness.Move{Node: "m1"},
			harness.Move{Node: "m1"},
			harness.Resolve{From: "s2", Target: "m1", Within: 10 * time.Second},
		},
		Checkers: append(harness.DefaultCheckers(),
			&harness.NoResurrection{},
			harness.CheckFunc{
				Label: "owned-records-follow-the-mover",
				Quiesce: func(c *harness.Cluster) error {
					for _, key := range sample {
						key := key
						err := harness.Eventually(15*time.Second, func() error {
							addr, err := c.Node("s3").DiscoverContext(context.Background(), key)
							if err != nil {
								return err
							}
							if want := c.Addr("m1"); addr != want {
								return fmt.Errorf("owned key %v resolves to %q, mover is at %q", key, addr, want)
							}
							return nil
						})
						if err != nil {
							return err
						}
					}
					return nil
				},
			},
			harness.CheckFunc{
				Label: "publish-rpcs-stay-o-replicas",
				Quiesce: func(c *harness.Cluster) error {
					rpcs := c.Counters.Get("publish.rpcs")
					records := c.Counters.Get("publish.records")
					if rpcs == 0 || records == 0 {
						return fmt.Errorf("no batched publish traffic recorded (rpcs=%d records=%d)", rpcs, records)
					}
					// Each full publish moves ~1000 records in ~replication
					// chunk sends; renewals repeat the same shape. Anything
					// within an order of magnitude of one-RPC-per-record
					// means batching is broken.
					if rpcs*50 > records {
						return fmt.Errorf("publish.rpcs %d vs publish.records %d: not batched", rpcs, records)
					}
					return nil
				},
			}),
		Quiesce: 200 * time.Millisecond,
	}
}

// rapidMovesUnderDuplication is the stale-resurrection regression story:
// a mobile node hops A→B→C→D with no settling while every frame may be
// duplicated and delayed (never dropped), so old-address updates keep
// arriving after new ones. The NoResurrection checker asserts no cache
// and no watcher is ever walked backwards to an earlier binding.
func rapidMovesUnderDuplication() harness.Scenario {
	return harness.Scenario{
		Name: "rapid-moves-under-duplication",
		Cluster: harness.Config{
			Seed:        606,
			Stationary:  []string{"s1", "s2", "s3"},
			Mobile:      []string{"m1"},
			LeaseTTL:    2 * time.Second,
			Replication: 2,
			Faults:      transport.FaultConfig{Duplicate: 0.35, DelayMax: 15 * time.Millisecond},
			Maintain:    maintain(),
		},
		Ops: []harness.Op{
			harness.Publish{Node: "m1"},
			harness.Register{Watcher: "s1", Target: "m1"},
			harness.Register{Watcher: "s2", Target: "m1"},
			harness.Move{Node: "m1"},
			harness.Move{Node: "m1"},
			harness.Move{Node: "m1"},
			harness.Resolve{From: "s3", Target: "m1", Within: 10 * time.Second},
			harness.Move{Node: "m1"},
			harness.Settle{For: 300 * time.Millisecond},
			harness.Resolve{From: "s1", Target: "m1", Within: 10 * time.Second},
		},
		Checkers: append(harness.DefaultCheckers(), &harness.NoResurrection{}),
		Quiesce:  200 * time.Millisecond,
	}
}

// TestAfterStepCheckAndDump exercises the failure path: a scenario whose
// scripted op references a crashed node must fail with the reproducing
// seed and a state dump, not hang or panic.
func TestAfterStepCheckAndDump(t *testing.T) {
	err := harness.Execute(harness.Scenario{
		Name: "bad-script",
		Cluster: harness.Config{
			Seed:       1,
			Stationary: []string{"s1", "s2"},
			Mobile:     []string{"m1"},
		},
		Ops: []harness.Op{
			harness.Crash{Node: "m1"},
			harness.Move{Node: "m1"}, // moving a crashed node: scripted error
		},
	}, t.Logf)
	if err == nil {
		t.Fatal("scenario with an invalid script reported success")
	}
	if !strings.Contains(err.Error(), "cluster state") {
		t.Fatalf("failure lacks state dump: %v", err)
	}
}
