package harness

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"bristle/internal/hashkey"
)

// Checker is one pluggable invariant. AfterStep runs after every applied
// op (cheap, monotone checks — background goroutines are still mutating
// the world); AtQuiescence runs once the schedule is done and every
// partition is healed, with the cluster still serving; AfterShutdown
// runs after every node closed and the goroutine count settled.
type Checker interface {
	Name() string
	AfterStep(c *Cluster, op Op) error
	AtQuiescence(c *Cluster) error
	AfterShutdown(c *Cluster) error
}

// DefaultCheckers returns the four core invariants: resolvability,
// update delivery, goroutine-leak-free shutdown, counter conservation.
func DefaultCheckers() []Checker {
	return []Checker{
		&Resolvability{},
		&UpdateDelivery{},
		&NoLeaks{},
		&CounterConservation{},
	}
}

// NopChecker is an embeddable base whose hooks all pass.
type NopChecker struct{}

func (NopChecker) AfterStep(*Cluster, Op) error { return nil }
func (NopChecker) AtQuiescence(*Cluster) error  { return nil }
func (NopChecker) AfterShutdown(*Cluster) error { return nil }

// CheckFunc adapts plain functions into a Checker for scenario-specific
// assertions (nil hooks pass).
type CheckFunc struct {
	Label    string
	Step     func(c *Cluster, op Op) error
	Quiesce  func(c *Cluster) error
	Shutdown func(c *Cluster) error
}

func (f CheckFunc) Name() string { return f.Label }
func (f CheckFunc) AfterStep(c *Cluster, op Op) error {
	if f.Step == nil {
		return nil
	}
	return f.Step(c, op)
}
func (f CheckFunc) AtQuiescence(c *Cluster) error {
	if f.Quiesce == nil {
		return nil
	}
	return f.Quiesce(c)
}
func (f CheckFunc) AfterShutdown(c *Cluster) error {
	if f.Shutdown == nil {
		return nil
	}
	return f.Shutdown(c)
}

// Resolvability asserts the paper's core behavioural claim: every
// published, live key stays discoverable from every live node, and the
// resolved address is the current one — or a previously valid one still
// inside its lease/staleness window, in which case retrying must
// converge on the current address before the deadline. An address that
// was never bound to the key fails immediately.
type Resolvability struct {
	NopChecker
	// Deadline bounds convergence per (resolver, key) pair. It must
	// exceed the lease TTL: a resolver legitimately serves a cached old
	// address until the lease lapses. Default 20s.
	Deadline time.Duration
}

func (r *Resolvability) Name() string { return "resolvability" }

func (r *Resolvability) AtQuiescence(c *Cluster) error {
	if ps := c.ActivePartitions(); len(ps) > 0 {
		return fmt.Errorf("cannot check under active partitions %v", ps)
	}
	deadline := r.Deadline
	if deadline <= 0 {
		deadline = 20 * time.Second
	}
	live := c.LiveNames()
	targets := make([]string, 0, len(live))
	for _, target := range live {
		if c.Published(target) {
			targets = append(targets, target)
		}
	}
	// Event-budgeted: at production scale the full (target, resolver)
	// product is O(cluster²); the budget samples it deterministically from
	// the cluster seed (0 = exhaustive).
	for _, p := range c.samplePairs("resolvability", len(targets), len(live), c.CheckBudget()) {
		target, from := targets[p[0]], live[p[1]]
		if from == target {
			continue
		}
		err := Eventually(deadline, func() error {
			return resolveOnce(c, from, target, true)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// UpdateDelivery asserts the LDT contract: a node holding a live
// registration on a mover observes the mover's final address through
// pushed updates. Each push is best-effort per transmission, so the
// checker renews interest (re-register — which also repairs a
// registration the mover lost by crashing) and re-pushes until the
// update lands or the deadline lapses, exactly the refresh loop a real
// registrant runs.
type UpdateDelivery struct {
	NopChecker
	// Deadline bounds convergence per (watcher, mover) pair. Default 20s.
	Deadline time.Duration
}

func (u *UpdateDelivery) Name() string { return "update-delivery" }

func (u *UpdateDelivery) AtQuiescence(c *Cluster) error {
	if ps := c.ActivePartitions(); len(ps) > 0 {
		return fmt.Errorf("cannot check under active partitions %v", ps)
	}
	deadline := u.Deadline
	if deadline <= 0 {
		deadline = 20 * time.Second
	}
	type pair struct{ target, watcher string }
	var pairs []pair
	for _, target := range c.LiveNames() {
		if c.Moves(target) == 0 {
			continue
		}
		for _, watcher := range c.Watchers(target) {
			if c.Alive(watcher) {
				pairs = append(pairs, pair{target, watcher})
			}
		}
	}
	for _, idx := range c.samplePairs("update-delivery", len(pairs), 1, c.CheckBudget()) {
		target, watcher := pairs[idx[0]].target, pairs[idx[0]].watcher
		err := Eventually(deadline, func() error {
			final := c.Addr(target)
			if got := c.Observed(watcher, target); got == final {
				return nil
			}
			if err := c.Register(watcher, target); err != nil {
				return err
			}
			if err := c.Node(target).UpdateRegistryContext(c.opCtxDo()); err != nil {
				return err
			}
			time.Sleep(50 * time.Millisecond)
			if got := c.Observed(watcher, target); got != final {
				return fmt.Errorf("watcher %s observed %q for %s, want %q", watcher, got, target, final)
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("update delivery %s→%s: %w", target, watcher, err)
		}
	}
	return nil
}

// CounterConservation asserts the metrics tell a consistent story:
// every cache lookup is classified as exactly one of hit/stale/negative/
// miss, every publish-ingested record as accepted or stale-rejected, and
// every received update as applied or stale-rejected (≤ while work is in
// flight, == once the world is at rest). The pool gauges must return to
// zero after Close.
type CounterConservation struct{ NopChecker }

func (CounterConservation) Name() string { return "counter-conservation" }

func outcomeSum(c *Cluster) uint64 {
	return c.Counters.Sum("loccache.hit", "loccache.stale", "loccache.negative", "loccache.miss")
}

// conservationLaws are the "every input is classified exactly once"
// pairs: the classified sum may lag its input counter mid-flight (the
// input bumps first inside one handler) but can never lead it, and the
// two meet once the world is at rest.
func conservationLaws(c *Cluster, atRest bool) error {
	laws := []struct {
		input    string
		outcomes []string
	}{
		{"loccache.lookups", []string{"loccache.hit", "loccache.stale", "loccache.negative", "loccache.miss"}},
		{"publish.records", []string{"publish.accepted", "publish.stale_rejected"}},
		{"updates.received", []string{"updates.applied", "updates.stale_rejected"}},
	}
	for _, law := range laws {
		sum, in := c.Counters.Sum(law.outcomes...), c.Counters.Get(law.input)
		if sum > in {
			return fmt.Errorf("outcomes of %s sum to %d, exceeding the %d inputs", law.input, sum, in)
		}
		if atRest && sum != in {
			return fmt.Errorf("outcomes of %s sum to %d != %d inputs at rest", law.input, sum, in)
		}
	}
	return nil
}

func (CounterConservation) AfterStep(c *Cluster, op Op) error {
	return conservationLaws(c, false)
}

func (CounterConservation) AfterShutdown(c *Cluster) error {
	// Detached refresh flights and duplicated frames may still be landing;
	// retry briefly before declaring the books unbalanced.
	err := Eventually(5*time.Second, func() error {
		return conservationLaws(c, true)
	})
	if err != nil {
		return err
	}
	for _, g := range []string{"pool.sessions", "pool.inflight"} {
		if v := c.Gauges.Get(g); v != 0 {
			return fmt.Errorf("gauge %s = %d after shutdown, want 0 (non-zero: %v)", g, v, c.Gauges.NonZero())
		}
	}
	return nil
}

// NoResurrection asserts the epoch ordering the update paths enforce:
// once any node has learned a mobile target's bind #n (through a pushed
// update or a cached discovery), no later observation at that node may
// regress to bind #m < n — a duplicated or delayed frame must never
// resurrect a dead address. It probes only local state (the resolve
// cache and the drained update stream), so probing is itself free of
// network side effects and safe to run after every step while frames
// are still in flight — which is exactly when a resurrection would slip
// through.
//
// The invariant is sound because both sinks keep epoch memory: the
// location cache rejects older-epoch writes even for entries past their
// lease (expiry hides an entry, it does not forget its epoch), and
// handleUpdate tracks the newest epoch seen per subject for the node's
// lifetime.
type NoResurrection struct {
	NopChecker
	mu   sync.Mutex
	seen map[string]int // observation point → highest bind order seen
}

func (r *NoResurrection) Name() string { return "no-resurrection" }

func (r *NoResurrection) AfterStep(c *Cluster, op Op) error { return r.probe(c) }
func (r *NoResurrection) AtQuiescence(c *Cluster) error     { return r.probe(c) }

func (r *NoResurrection) probe(c *Cluster) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seen == nil {
		r.seen = make(map[string]int)
	}
	var targets []string
	for _, target := range c.Names() {
		if c.Mobile(target) && c.Published(target) {
			targets = append(targets, target)
		}
	}
	live := c.LiveNames()
	// Event-budgeted: the probe runs after every step, so the full
	// (target, observer) product would make each step O(cluster²). The
	// seed-deterministic sample keeps the per-point monotone records
	// meaningful across steps.
	for _, p := range c.samplePairs("no-resurrection", len(targets), len(live), c.CheckBudget()) {
		target, from := targets[p[0]], live[p[1]]
		if from == target {
			continue
		}
		key := c.Key(target)
		if addr, ok := c.Node(from).CachedAddr(key); ok {
			if err := r.observe(c, "cache "+from, target, key, addr); err != nil {
				return err
			}
		}
		if addr := c.Observed(from, target); addr != "" {
			if err := r.observe(c, "push "+from, target, key, addr); err != nil {
				return err
			}
		}
	}
	return nil
}

// observe folds one sighting of target at addr into the monotone record
// for the observation point, failing on any walk backwards.
func (r *NoResurrection) observe(c *Cluster, point, target string, key hashkey.Key, addr string) error {
	order, bound := c.BindOrder(key, addr)
	if !bound {
		return fmt.Errorf("%s holds %q for %s: never a bound address", point, addr, target)
	}
	id := point + "|" + target
	if prev := r.seen[id]; order < prev {
		return fmt.Errorf("%s resurrected %s's bind #%d (%q) after seeing bind #%d",
			point, target, order, addr, prev)
	} else if order > prev {
		r.seen[id] = order
	}
	return nil
}

// NoLeaks asserts the cluster shut down without stranding goroutines,
// with two books balanced in order of strictness:
//
//  1. Exactly zero update drainers remain. The harness counts every
//     drainUpdates start and exit, so this check has no slack at all —
//     it is what catches a drainer leaked by a crash/restart race, which
//     the ±slack process-count check below could hide.
//  2. The process goroutine count returns to the pre-cluster baseline
//     (±slack for runtime helpers).
type NoLeaks struct {
	NopChecker
	// Settle bounds how long to wait for stragglers (detached flights
	// live up to a retry budget past Close). Default 10s.
	Settle time.Duration
}

func (*NoLeaks) Name() string { return "no-goroutine-leaks" }

func (l *NoLeaks) AfterShutdown(c *Cluster) error {
	settle := l.Settle
	if settle <= 0 {
		settle = 10 * time.Second
	}
	if n := c.ActiveDrainers(); n != 0 {
		return fmt.Errorf("%d update drainers alive after shutdown, want exactly 0", n)
	}
	err := Eventually(settle, func() error {
		if n := runtime.NumGoroutine(); n > c.baseGoroutines+goroutineSlack {
			return fmt.Errorf("%d goroutines alive, baseline %d", n, c.baseGoroutines)
		}
		return nil
	})
	if err == nil {
		return nil
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	return errors.Join(err, fmt.Errorf("goroutine dump:\n%s", buf))
}
