package harness

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"bristle/internal/hashkey"
)

// Op is one typed scenario step. Ops are applied sequentially by Run;
// their String form is the canonical schedule representation (the
// determinism contract: same seed → same strings).
type Op interface {
	Apply(c *Cluster) error
	String() string
}

// Publish pushes Node's location to its replicas.
type Publish struct{ Node string }

func (o Publish) Apply(c *Cluster) error { return c.Publish(o.Node) }
func (o Publish) String() string         { return "publish " + o.Node }

// PublishAll pushes every live mobile node's location concurrently —
// the bulk prologue for large-fabric scenarios, where one Publish op
// per node would dominate the schedule.
type PublishAll struct{}

func (PublishAll) Apply(c *Cluster) error { return c.PublishAll() }
func (PublishAll) String() string         { return "publish-all" }

// Move rebinds a mobile node to a fresh attachment point.
type Move struct{ Node string }

func (o Move) Apply(c *Cluster) error { return c.Move(o.Node) }
func (o Move) String() string         { return "move " + o.Node }

// Own adds resource keys to Node's owned set: subsequent publishes and
// moves carry one record per owned key in the node's publish batch.
type Own struct {
	Node string
	Keys []hashkey.Key
}

func (o Own) Apply(c *Cluster) error { return c.OwnKeys(o.Node, o.Keys...) }
func (o Own) String() string         { return fmt.Sprintf("own %s ×%d", o.Node, len(o.Keys)) }

// Crash kills a node; its address goes dark until Restart.
type Crash struct{ Node string }

func (o Crash) Apply(c *Cluster) error { return c.Crash(o.Node) }
func (o Crash) String() string         { return "crash " + o.Node }

// Restart reboots a crashed node at its previous address.
type Restart struct{ Node string }

func (o Restart) Apply(c *Cluster) error { return c.Restart(o.Node) }
func (o Restart) String() string         { return "restart " + o.Node }

// Partition installs a named bidirectional split between groups A and B.
type Partition struct {
	Name string
	A, B []string
}

func (o Partition) Apply(c *Cluster) error { return c.Partition(o.Name, o.A, o.B) }
func (o Partition) String() string {
	return fmt.Sprintf("partition %s %v|%v", o.Name, o.A, o.B)
}

// Heal removes a named partition.
type Heal struct{ Name string }

func (o Heal) Apply(c *Cluster) error { return c.Heal(o.Name) }
func (o Heal) String() string         { return "heal " + o.Name }

// Register records Watcher's interest in Target's movement.
type Register struct{ Watcher, Target string }

func (o Register) Apply(c *Cluster) error { return c.Register(o.Watcher, o.Target) }
func (o Register) String() string         { return "register " + o.Watcher + "→" + o.Target }

// Resolve resolves Target from From. With Within > 0 it retries until
// the answer is Target's *current* address or the deadline lapses; an
// address that was never bound to the target fails immediately (cache
// corruption, not staleness). With Within == 0 a single attempt is made
// and only the never-bound check applies — a workload op under faults,
// where one attempt may legitimately time out or serve a stale lease.
type Resolve struct {
	From, Target string
	Within       time.Duration
}

func (o Resolve) Apply(c *Cluster) error {
	check := func() error { return resolveOnce(c, o.From, o.Target, o.Within > 0) }
	if o.Within > 0 {
		return Eventually(o.Within, check)
	}
	if err := check(); err != nil && errors.Is(err, errNeverBound) {
		return err // corruption is fatal even for best-effort workload
	}
	return nil
}

func (o Resolve) String() string {
	if o.Within > 0 {
		return fmt.Sprintf("resolve %s→%s within %v", o.From, o.Target, o.Within)
	}
	return fmt.Sprintf("resolve %s→%s", o.From, o.Target)
}

var errNeverBound = errors.New("resolved an address never bound to the target")

// resolveOnce performs one resolve and classifies the answer. wantFresh
// requires the target's current address; otherwise any historically
// valid address passes (stale within lease is correct behaviour).
func resolveOnce(c *Cluster, from, target string, wantFresh bool) error {
	addr, err := c.Resolve(from, target)
	if err != nil {
		return fmt.Errorf("resolve %s→%s: %w", from, target, err)
	}
	if !c.EverBound(c.Key(target), addr) {
		return fmt.Errorf("resolve %s→%s: %w: %q", from, target, errNeverBound, addr)
	}
	if wantFresh && addr != c.Addr(target) {
		return fmt.Errorf("resolve %s→%s: stale %q, current %q", from, target, addr, c.Addr(target))
	}
	return nil
}

// Storm launches Resolvers concurrent resolvers of Target through From's
// resolve path — the flash-crowd workload. Every resolver must converge
// on the target's current address within the deadline.
type Storm struct {
	From, Target string
	Resolvers    int
	Within       time.Duration
}

func (o Storm) Apply(c *Cluster) error {
	within := o.Within
	if within <= 0 {
		within = 10 * time.Second
	}
	var wg sync.WaitGroup
	errs := make(chan error, o.Resolvers)
	for i := 0; i < o.Resolvers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := Eventually(within, func() error {
				return resolveOnce(c, o.From, o.Target, true)
			}); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return fmt.Errorf("storm: %w", err)
	}
	return nil
}

func (o Storm) String() string {
	return fmt.Sprintf("storm %s→%s ×%d", o.From, o.Target, o.Resolvers)
}

// Gossip runs anti-entropy rounds across every live node.
type Gossip struct{ Rounds int }

func (o Gossip) Apply(c *Cluster) error { return c.Gossip(o.Rounds) }
func (o Gossip) String() string         { return fmt.Sprintf("gossip ×%d", o.Rounds) }

// Settle sleeps, letting leases lapse and background loops tick.
type Settle struct{ For time.Duration }

func (o Settle) Apply(c *Cluster) error { time.Sleep(o.For); return nil }
func (o Settle) String() string         { return fmt.Sprintf("settle %v", o.For) }

// Try wraps an op whose failure is tolerated — workload attempted under
// active faults, where the invariants at quiescence are the real
// assertion. The failure is still narrated.
type Try struct{ Op Op }

func (o Try) Apply(c *Cluster) error {
	if err := o.Op.Apply(c); err != nil {
		c.logf("tolerated: %s: %v", o.Op, err)
	}
	return nil
}

func (o Try) String() string { return "try(" + o.Op.String() + ")" }

// ScheduleString renders a schedule one op per line — the form the
// determinism tests compare and failure output prints.
func ScheduleString(ops []Op) string {
	lines := make([]string, len(ops))
	for i, op := range ops {
		lines[i] = op.String()
	}
	return strings.Join(lines, "\n")
}

// Scenario is one scripted run: a cluster, a schedule, and the
// invariants that must hold along the way and at quiescence.
type Scenario struct {
	Name    string
	Cluster Config
	Ops     []Op
	// Checkers defaults to DefaultCheckers() when nil.
	Checkers []Checker
	// Quiesce is an extra settle before the quiescence checks.
	Quiesce time.Duration
}

// Run executes the scenario and fails t with the reproducing seed and a
// full state dump on any violation.
func Run(t testing.TB, sc Scenario) {
	t.Helper()
	if err := Execute(sc, t.Logf); err != nil {
		t.Fatalf("scenario %q failed (reproduce with seed %d):\n%v", sc.Name, sc.Cluster.Seed, err)
	}
}

// Execute runs the scenario outside any testing context (the soak wraps
// it to control failure reporting). The returned error carries the op
// that failed, the violated invariant, and the cluster state dump.
func Execute(sc Scenario, logf func(format string, args ...interface{})) error {
	checkers := sc.Checkers
	if checkers == nil {
		checkers = DefaultCheckers()
	}
	cfg := sc.Cluster
	if cfg.Logf == nil {
		cfg.Logf = logf
	}
	c, err := New(cfg)
	if err != nil {
		return err
	}
	defer c.Shutdown()

	fail := func(stage string, err error) error {
		return fmt.Errorf("%s: %w\n--- cluster state ---\n%s", stage, err, c.DumpState())
	}
	for i, op := range sc.Ops {
		if logf != nil {
			logf("harness: step %d/%d: %s", i+1, len(sc.Ops), op)
		}
		if err := op.Apply(c); err != nil {
			return fail(fmt.Sprintf("step %d (%s)", i+1, op), err)
		}
		for _, ck := range checkers {
			if err := ck.AfterStep(c, op); err != nil {
				return fail(fmt.Sprintf("invariant %s after step %d (%s)", ck.Name(), i+1, op), err)
			}
		}
	}

	// Quiescence: faults may stay on, but splits end — a partitioned
	// network has no global invariants to check.
	c.HealAll()
	if sc.Quiesce > 0 {
		time.Sleep(sc.Quiesce)
	}
	for _, ck := range checkers {
		if err := ck.AtQuiescence(c); err != nil {
			return fail("invariant "+ck.Name()+" at quiescence", err)
		}
	}
	if err := c.Shutdown(); err != nil {
		return fail("shutdown", err)
	}
	for _, ck := range checkers {
		if err := ck.AfterShutdown(c); err != nil {
			return fail("invariant "+ck.Name()+" after shutdown", err)
		}
	}
	return nil
}
