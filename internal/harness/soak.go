package harness

import (
	"fmt"
	"math/rand"
	"time"

	"bristle/internal/live"
	"bristle/internal/transport"
)

// SoakOptions shapes a generated schedule. The zero value is usable.
type SoakOptions struct {
	// Ops is the number of randomized body ops between the fixed
	// prologue (publish + register) and epilogue (heal + restart).
	// Default 40.
	Ops int
	// MaxCrashed caps concurrently crashed nodes; the generator also
	// never drops the live stationary population below Replication+1 or
	// crashes the last live mobile. Default 2.
	MaxCrashed int
}

func (o SoakOptions) withDefaults() SoakOptions {
	if o.Ops <= 0 {
		o.Ops = 40
	}
	if o.MaxCrashed <= 0 {
		o.MaxCrashed = 2
	}
	return o
}

// GenSchedule derives a mobility/churn op schedule deterministically
// from rng: same seed and cluster config → byte-identical schedule
// (compare with ScheduleString). The generator tracks the crash and
// partition state its own ops imply, so every schedule is well-formed —
// no moving a crashed mobile, no double partitions — and ends whole:
// every partition healed, every crashed node restarted, so the
// quiescence invariants apply to the full membership.
func GenSchedule(cfg Config, rng *rand.Rand, opt SoakOptions) []Op {
	opt = opt.withDefaults()
	var ops []Op

	crashed := make(map[string]bool)
	var openPartitions []string
	partitionSeq := 0
	all := append(append([]string(nil), cfg.Stationary...), cfg.Mobile...)

	liveOf := func(names []string) []string {
		var out []string
		for _, n := range names {
			if !crashed[n] {
				out = append(out, n)
			}
		}
		return out
	}
	pick := func(names []string) string { return names[rng.Intn(len(names))] }

	// Prologue: every mobile publishes, and a couple of seeded
	// stationary watchers register interest in each.
	for _, m := range cfg.Mobile {
		ops = append(ops, Publish{Node: m})
		for _, w := range pickDistinct(rng, cfg.Stationary, 2) {
			ops = append(ops, Register{Watcher: w, Target: m})
		}
	}
	ops = append(ops, Gossip{Rounds: 1})

	for len(ops) < opt.Ops {
		liveMobiles := liveOf(cfg.Mobile)
		liveStationary := liveOf(cfg.Stationary)
		switch roll := rng.Float64(); {
		case roll < 0.30 && len(liveMobiles) > 0:
			ops = append(ops, Move{Node: pick(liveMobiles)})

		case roll < 0.40 && len(liveMobiles) > 0:
			ops = append(ops, Try{Publish{Node: pick(liveMobiles)}})

		case roll < 0.50:
			// Crash within the safety envelope: enough stationary nodes
			// stay up to host every replica set, and one mobile survives.
			var cands []string
			if len(liveStationary) > cfg.Replication+1 {
				cands = append(cands, liveStationary...)
			}
			if len(liveMobiles) > 1 {
				cands = append(cands, liveMobiles...)
			}
			if len(crashed) >= opt.MaxCrashed || len(cands) == 0 {
				continue
			}
			victim := pick(cands)
			crashed[victim] = true
			ops = append(ops, Crash{Node: victim})

		case roll < 0.60 && len(crashed) > 0:
			victim := pick(sortedKeys(crashed))
			delete(crashed, victim)
			ops = append(ops, Restart{Node: victim})

		case roll < 0.70 && len(openPartitions) == 0:
			// Island a random quarter of the live membership (at least
			// one node, never everyone).
			live := liveOf(all)
			n := len(live) / 4
			if n < 1 {
				n = 1
			}
			if n >= len(live) {
				continue
			}
			island := pickDistinct(rng, live, n)
			mainland := subtract(live, island)
			name := fmt.Sprintf("p%d", partitionSeq)
			partitionSeq++
			openPartitions = append(openPartitions, name)
			ops = append(ops, Partition{Name: name, A: island, B: mainland})

		case roll < 0.75 && len(openPartitions) > 0:
			name := openPartitions[0]
			openPartitions = openPartitions[1:]
			ops = append(ops, Heal{Name: name})

		case roll < 0.85 && len(liveMobiles) > 0:
			from := pick(liveOf(all))
			ops = append(ops, Try{Resolve{From: from, Target: pick(liveMobiles)}})

		case roll < 0.90 && len(liveMobiles) > 0 && len(liveStationary) > 0:
			ops = append(ops, Try{Storm{
				From:      pick(liveStationary),
				Target:    pick(liveMobiles),
				Resolvers: 8 + rng.Intn(24),
				Within:    10 * time.Second,
			}})

		case roll < 0.95:
			ops = append(ops, Gossip{Rounds: 1})

		default:
			ops = append(ops, Settle{For: 50 * time.Millisecond})
		}
	}

	// Epilogue: make the world whole so quiescence invariants cover the
	// full membership.
	for _, name := range openPartitions {
		ops = append(ops, Heal{Name: name})
	}
	for _, victim := range sortedKeys(crashed) {
		ops = append(ops, Restart{Node: victim})
	}
	ops = append(ops, Gossip{Rounds: 2})
	return ops
}

// pickDistinct draws n distinct elements from names in rng order.
func pickDistinct(rng *rand.Rand, names []string, n int) []string {
	if n > len(names) {
		n = len(names)
	}
	perm := rng.Perm(len(names))
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = names[perm[i]]
	}
	return out
}

func subtract(all, drop []string) []string {
	in := make(map[string]bool, len(drop))
	for _, d := range drop {
		in[d] = true
	}
	var out []string
	for _, n := range all {
		if !in[n] {
			out = append(out, n)
		}
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	// Deterministic iteration order: map ranges are randomized.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// FabricCluster is the production-shaped topology: a stationary ring
// core of nStationary members (s1…) and a fleet of nMobile verified
// observer mobiles (m1…) booted fabric-style — concurrent observer
// admission, no per-mobile gossip or membership ingestion — so cluster
// cost scales O(core² + fleet), not O(members²).
func FabricCluster(seed int64, nStationary, nMobile int) Config {
	cfg := Config{
		Seed:        seed,
		Stationary:  make([]string, nStationary),
		Mobile:      make([]string, nMobile),
		Replication: 3,
		Fabric:      true,
	}
	for i := range cfg.Stationary {
		cfg.Stationary[i] = fmt.Sprintf("s%d", i+1)
	}
	for i := range cfg.Mobile {
		cfg.Mobile[i] = fmt.Sprintf("m%d", i+1)
	}
	return cfg
}

// Soak10kCluster is the nightly 10k-member soak topology: a 64-node
// stationary core fronting a 9936-mobile observer fleet, verified
// admission everywhere, and event-budgeted invariant checking (the
// exhaustive pair products would be ~10⁸ probes). No fault injection:
// at this scale the churn schedule itself is the chaos, and a clean
// transport keeps the run deterministic enough to replay by seed.
func Soak10kCluster(seed int64) Config {
	cfg := FabricCluster(seed, 64, 9936)
	cfg.CheckBudget = 256
	return cfg
}

// SoakCluster is the standard soak topology: six stationary, three
// mobile, 2s leases, triple replication, background maintenance, and a
// lossy, slow network.
func SoakCluster(seed int64) Config {
	return Config{
		Seed:        seed,
		Stationary:  []string{"s1", "s2", "s3", "s4", "s5", "s6"},
		Mobile:      []string{"m1", "m2", "m3"},
		LeaseTTL:    2 * time.Second,
		Replication: 3,
		Faults: transport.FaultConfig{
			Drop:     0.10,
			DelayMax: 15 * time.Millisecond,
		},
		Maintain: &live.MaintainConfig{
			GossipInterval: 300 * time.Millisecond,
			RenewInterval:  500 * time.Millisecond,
			ProbeInterval:  250 * time.Millisecond,
		},
	}
}
