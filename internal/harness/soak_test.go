package harness_test

import (
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"bristle/internal/harness"
)

// TestSoakScheduleDeterministic is the replay contract: one seed, one
// schedule. Running the generator twice from the same seed must produce
// byte-identical op schedules; a different seed must diverge.
func TestSoakScheduleDeterministic(t *testing.T) {
	cfg := harness.SoakCluster(77)
	opt := harness.SoakOptions{Ops: 60}
	a := harness.ScheduleString(harness.GenSchedule(cfg, rand.New(rand.NewSource(77)), opt))
	b := harness.ScheduleString(harness.GenSchedule(cfg, rand.New(rand.NewSource(77)), opt))
	if a != b {
		t.Fatalf("same seed produced different schedules:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	other := harness.ScheduleString(harness.GenSchedule(cfg, rand.New(rand.NewSource(78)), opt))
	if a == other {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestSoak runs randomized seeded mobility/churn scenarios until the
// time budget runs out. Defaults are a CI-friendly smoke (one short
// scenario); the nightly job raises the budget via env:
//
//	BRISTLE_SOAK_SECONDS=120 BRISTLE_SOAK_OPS=40 go test -race -run TestSoak -v ./internal/harness
//
// A failure prints the reproducing seed: re-run with BRISTLE_SOAK_SEED
// set to it (and the same BRISTLE_SOAK_OPS) to replay the identical op
// schedule.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	budget := time.Duration(envInt("BRISTLE_SOAK_SECONDS", 0)) * time.Second
	ops := envInt("BRISTLE_SOAK_OPS", 25)
	seed := int64(envInt("BRISTLE_SOAK_SEED", 0))
	pinned := seed != 0
	if seed == 0 {
		seed = time.Now().UnixNano()
	}

	start := time.Now()
	for round := 0; ; round++ {
		runSeed := seed + int64(round)
		cfg := harness.SoakCluster(runSeed)
		schedule := harness.GenSchedule(cfg, rand.New(rand.NewSource(runSeed)), harness.SoakOptions{Ops: ops})
		t.Logf("soak round %d: seed %d, %d ops", round, runSeed, len(schedule))
		err := harness.Execute(harness.Scenario{
			Name:    "soak",
			Cluster: cfg,
			Ops:     schedule,
			Quiesce: 200 * time.Millisecond,
		}, t.Logf)
		if err != nil {
			t.Fatalf("soak failed — reproduce with BRISTLE_SOAK_SEED=%d BRISTLE_SOAK_OPS=%d\nschedule:\n%s\n%v",
				runSeed, ops, harness.ScheduleString(schedule), err)
		}
		if pinned || time.Since(start) >= budget {
			return // a pinned seed replays exactly one round
		}
	}
}

// TestSoak10k is the production-scale nightly soak: a 10,000-member
// fabric (64-node stationary core, 9936 verified observer mobiles)
// boots, rides a Weibull-churn schedule, and must satisfy the full
// invariant set under event-budgeted sampling. Wall clock is bounded by
// the event budget (BRISTLE_SOAK_EVENTS), not the cluster size, so the
// run fits a nightly tier. Gated behind BRISTLE_SOAK10K so tier-1 stays
// fast; `make soak-10k` is the front door. A failure prints the
// reproducing seed — replaying it regenerates the identical op
// schedule, byte for byte.
func TestSoak10k(t *testing.T) {
	if os.Getenv("BRISTLE_SOAK10K") == "" {
		t.Skip("10k soak: set BRISTLE_SOAK10K=1 (or run `make soak-10k`)")
	}
	seed := int64(envInt("BRISTLE_SOAK_SEED", 0))
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	events := envInt("BRISTLE_SOAK_EVENTS", 400)
	cfg := harness.Soak10kCluster(seed)
	schedule := harness.GenChurn(cfg, rand.New(rand.NewSource(seed)), harness.ChurnOptions{
		MaxEvents: events,
		Watchers:  32,
	})
	t.Logf("10k soak: seed %d, %d churn events, %d ops", seed, events, len(schedule))
	start := time.Now()
	err := harness.Execute(harness.Scenario{
		Name:     "soak-10k",
		Cluster:  cfg,
		Ops:      schedule,
		Checkers: append(harness.DefaultCheckers(), &harness.NoResurrection{}),
		Quiesce:  500 * time.Millisecond,
	}, nil) // per-step narration off: 10k-scale schedules drown the log
	if err != nil {
		t.Fatalf("10k soak failed — reproduce with BRISTLE_SOAK10K=1 BRISTLE_SOAK_SEED=%d BRISTLE_SOAK_EVENTS=%d\n%v",
			seed, events, err)
	}
	t.Logf("10k soak completed in %v", time.Since(start))
}

func envInt(name string, def int) int {
	v := os.Getenv(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}
