// Package hashkey implements the circular hash-key space used by Bristle
// and its underlying structured overlay.
//
// Keys are 64-bit values on a ring of size ρ = 2^64. The paper's clustered
// naming scheme (Section 3) partitions this ring into a contiguous
// stationary arc [L, U] and a mobile remainder, so all closeness and
// interval logic is expressed in ring arithmetic: clockwise distance,
// shortest-arc distance, and arc membership with wrap-around.
package hashkey

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
)

// Key is a point on the 2^64 identifier ring.
//
// The zero Key is a valid key; there is no reserved "invalid" value. Code
// that needs an optional key should track presence separately.
type Key uint64

// RingBits is the number of bits in the identifier space.
const RingBits = 64

// FromName derives a key from an arbitrary name (node endpoint, data name)
// using SHA-1, mirroring the paper's uniform-hash assumption. The first
// 8 bytes of the digest, big-endian, become the key.
func FromName(name string) Key {
	sum := sha1.Sum([]byte(name))
	return Key(binary.BigEndian.Uint64(sum[:8]))
}

// FromBytes derives a key from raw bytes via SHA-1.
func FromBytes(b []byte) Key {
	sum := sha1.Sum(b)
	return Key(binary.BigEndian.Uint64(sum[:8]))
}

// Random returns a uniformly random key drawn from rng.
func Random(rng *rand.Rand) Key {
	return Key(rng.Uint64())
}

// Clockwise returns the clockwise (increasing-key, wrapping) distance from
// a to b: the number of steps to walk from a forward around the ring until
// reaching b. Clockwise(a, a) == 0.
func Clockwise(a, b Key) uint64 {
	return uint64(b - a) // two's-complement wrap gives ring arithmetic
}

// Distance returns the shortest-arc distance between a and b, i.e.
// min(Clockwise(a,b), Clockwise(b,a)). It is symmetric and at most 2^63.
func Distance(a, b Key) uint64 {
	cw := Clockwise(a, b)
	ccw := Clockwise(b, a)
	if cw < ccw {
		return cw
	}
	return ccw
}

// Closer reports whether x is strictly closer to target than y is, using
// shortest-arc distance. Ties are broken toward the clockwise side so that
// the relation is a strict weak ordering usable for sorting.
func Closer(target, x, y Key) bool {
	dx, dy := Distance(target, x), Distance(target, y)
	if dx != dy {
		return dx < dy
	}
	// Tie (only possible when x and y are antipodal reflections around
	// target): prefer the clockwise one deterministically.
	return Clockwise(target, x) < Clockwise(target, y)
}

// InArcInclusive reports whether k lies on the clockwise arc from lo to hi,
// inclusive of both endpoints. The arc may wrap through zero. When lo == hi
// the arc is the single point lo.
func InArcInclusive(k, lo, hi Key) bool {
	return Clockwise(lo, k) <= Clockwise(lo, hi)
}

// InArcExclusive reports whether k lies on the clockwise arc from lo to hi,
// excluding both endpoints. When lo == hi the arc is empty.
func InArcExclusive(k, lo, hi Key) bool {
	if lo == hi {
		return false
	}
	ck := Clockwise(lo, k)
	return ck > 0 && ck < Clockwise(lo, hi)
}

// InArcHalfOpen reports whether k lies on the clockwise arc (lo, hi]:
// exclusive of lo, inclusive of hi. This is the Chord-style successor
// interval test. When lo == hi the arc covers the whole ring except lo.
func InArcHalfOpen(k, lo, hi Key) bool {
	if lo == hi {
		return k != lo
	}
	ck := Clockwise(lo, k)
	return ck > 0 && ck <= Clockwise(lo, hi)
}

// Direction identifies which way around the ring a route travels.
type Direction int

const (
	// CW routes clockwise (increasing keys, wrapping).
	CW Direction = iota
	// CCW routes counter-clockwise.
	CCW
)

// String returns "cw" or "ccw".
func (d Direction) String() string {
	if d == CW {
		return "cw"
	}
	return "ccw"
}

// ShorterArc returns the direction of the shorter arc from a to b, and its
// length. Ties (antipodal points) resolve to CW.
func ShorterArc(a, b Key) (Direction, uint64) {
	cw := Clockwise(a, b)
	ccw := Clockwise(b, a)
	if cw <= ccw {
		return CW, cw
	}
	return CCW, ccw
}

// Advance returns the key reached by moving dist steps from k in direction d.
func Advance(k Key, d Direction, dist uint64) Key {
	if d == CW {
		return k + Key(dist)
	}
	return k - Key(dist)
}

// DirectedDistance returns the distance from a to b when travelling in
// direction d.
func DirectedDistance(a, b Key, d Direction) uint64 {
	if d == CW {
		return Clockwise(a, b)
	}
	return Clockwise(b, a)
}

// String formats the key as a fixed-width hexadecimal literal.
func (k Key) String() string {
	return fmt.Sprintf("%016x", uint64(k))
}

// Arc is a closed clockwise interval [Lo, Hi] on the ring, possibly
// wrapping through zero. It models the stationary region [L, U] of the
// clustered naming scheme.
type Arc struct {
	Lo, Hi Key
}

// Contains reports whether k ∈ [a.Lo, a.Hi] clockwise.
func (a Arc) Contains(k Key) bool {
	return InArcInclusive(k, a.Lo, a.Hi)
}

// Width returns the number of keys on the arc minus one (the clockwise
// span). A full-ring arc cannot be represented; Width(lo, lo) == 0.
func (a Arc) Width() uint64 {
	return Clockwise(a.Lo, a.Hi)
}

// Fraction returns the fraction of the ring covered by the arc, in [0, 1).
// This is the paper's ∇ = (U − L)/ρ.
func (a Arc) Fraction() float64 {
	return float64(a.Width()) / float64(1<<63) / 2.0
}

// StationaryArc constructs the clustered-naming stationary region covering
// the given fraction of the ring (the paper's ∇ ≈ (N−M)/N), centred at the
// middle of the ring so that both L > 0 and U < ρ hold as in Section 3.
func StationaryArc(fraction float64) Arc {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	half := uint64(fraction * float64(1<<63))
	const mid = Key(1 << 63)
	return Arc{Lo: mid - Key(half), Hi: mid + Key(half-1)}
}

// RandomIn returns a uniformly random key on the closed arc.
func (a Arc) RandomIn(rng *rand.Rand) Key {
	w := a.Width()
	if w == ^uint64(0) {
		return Key(rng.Uint64())
	}
	return a.Lo + Key(randUint64n(rng, w+1))
}

// RandomOutside returns a uniformly random key strictly outside the arc.
// It panics if the arc covers the entire ring.
func (a Arc) RandomOutside(rng *rand.Rand) Key {
	w := a.Width()
	if w == ^uint64(0) {
		panic("hashkey: RandomOutside of full-ring arc")
	}
	outside := ^uint64(0) - w // number of keys outside minus zero-adjust
	if outside == 0 {
		panic("hashkey: arc leaves no outside keys")
	}
	off := randUint64n(rng, outside)
	return a.Hi + 1 + Key(off)
}

// FullRing returns the arc covering every key (Width = 2^64 − 1; the
// single missing point is immaterial for placement purposes).
func FullRing() Arc {
	return Arc{Lo: 0, Hi: Key(^uint64(0))}
}

// regionStripes is how many times each region's key segments repeat
// around an arc under RegionStriped. More stripes make segments
// narrower, so with node counts up to a few thousand each segment holds
// at most a handful of nodes and the k keys nearest any point fall into
// k adjacent segments — k distinct regions.
const regionStripes = 256

// RegionStriped derives a key for name inside arc a such that walking
// the arc clockwise rotates through regions: the arc is cut into
// len(regions) × regionStripes equal segments and segment i belongs to
// region i mod len(regions). name hashes to one of its region's
// segments (and to an offset within it), so placement stays uniform per
// region while any k adjacent stationary keys span min(k, len(regions))
// regions — a record's replica set covers the deployment's regions and
// latency-aware ordering can pick the near one.
//
// regions is the deployment's full region list and must be the same set
// on every node (order is irrelevant: it is sorted internally). If
// region is not in regions, or the arc is too narrow to stripe, the
// plain FromName key is returned.
func RegionStriped(a Arc, name, region string, regions []string) Key {
	if len(regions) == 0 {
		return FromName(name)
	}
	sorted := make([]string, len(regions))
	copy(sorted, regions)
	sort.Strings(sorted)
	idx := sort.SearchStrings(sorted, region)
	if idx >= len(sorted) || sorted[idx] != region {
		return FromName(name)
	}
	r := uint64(len(sorted))
	segLen := a.Width() / (r * regionStripes)
	if segLen == 0 {
		return FromName(name)
	}
	h := uint64(FromName(name))
	stripe := (h >> 32) % regionStripes // which repetition of the region's segment
	off := h % segLen                   // position inside the segment
	return a.Lo + Key((stripe*r+uint64(idx))*segLen+off)
}

// RegionIndex recovers which region's segment a key placed by
// RegionStriped(a, ·, ·, regions) landed in, as an index into the sorted
// region list — the inverse of the placement, computable by any node from
// the key alone (no wire metadata). nRegions must be len(regions); a and
// nRegions must match the placement's. Returns -1 when striping is not in
// effect (nRegions < 2 or the arc is too narrow), or for keys outside the
// arc.
func RegionIndex(a Arc, k Key, nRegions int) int {
	if nRegions < 2 {
		return -1
	}
	segLen := a.Width() / (uint64(nRegions) * regionStripes)
	if segLen == 0 || !a.Contains(k) {
		return -1
	}
	seg := Clockwise(a.Lo, k) / segLen
	return int(seg % uint64(nRegions))
}

// randUint64n returns a uniform value in [0, n). n must be > 0.
func randUint64n(rng *rand.Rand, n uint64) uint64 {
	if n == 0 {
		panic("hashkey: randUint64n(0)")
	}
	// Rejection sampling to avoid modulo bias.
	max := ^uint64(0) - ^uint64(0)%n
	for {
		v := rng.Uint64()
		if v < max {
			return v % n
		}
	}
}
