package hashkey

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromNameDeterministic(t *testing.T) {
	a := FromName("node-1:9000")
	b := FromName("node-1:9000")
	c := FromName("node-2:9000")
	if a != b {
		t.Fatalf("FromName not deterministic: %v != %v", a, b)
	}
	if a == c {
		t.Fatalf("distinct names collided: %v", a)
	}
}

func TestFromBytesMatchesName(t *testing.T) {
	if FromName("abc") != FromBytes([]byte("abc")) {
		t.Fatal("FromName and FromBytes disagree on identical input")
	}
}

func TestClockwiseBasics(t *testing.T) {
	cases := []struct {
		a, b Key
		want uint64
	}{
		{0, 0, 0},
		{0, 1, 1},
		{1, 0, ^uint64(0)}, // all the way around
		{10, 3, ^uint64(0) - 6},
		{^Key(0), 0, 1}, // wrap through zero
		{^Key(0), 1, 2},
	}
	for _, c := range cases {
		if got := Clockwise(c.a, c.b); got != c.want {
			t.Errorf("Clockwise(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(a, b uint64) bool {
		return Distance(Key(a), Key(b)) == Distance(Key(b), Key(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceBounded(t *testing.T) {
	f := func(a, b uint64) bool {
		return Distance(Key(a), Key(b)) <= 1<<63
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceIdentity(t *testing.T) {
	f := func(a uint64) bool {
		return Distance(Key(a), Key(a)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceTriangleOnRing(t *testing.T) {
	// Ring distance satisfies the triangle inequality.
	f := func(a, b, c uint64) bool {
		ab := Distance(Key(a), Key(b))
		bc := Distance(Key(b), Key(c))
		ac := Distance(Key(a), Key(c))
		return ac <= ab+bc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCloserStrictWeakOrder(t *testing.T) {
	target := Key(1000)
	if !Closer(target, 1001, 900) {
		t.Error("1001 should be closer to 1000 than 900")
	}
	if Closer(target, 900, 1001) {
		t.Error("900 should not be closer to 1000 than 1001")
	}
	// Irreflexive.
	if Closer(target, 42, 42) {
		t.Error("Closer must be irreflexive")
	}
}

func TestCloserAntisymmetric(t *testing.T) {
	f := func(tg, x, y uint64) bool {
		if x == y {
			return true
		}
		cx := Closer(Key(tg), Key(x), Key(y))
		cy := Closer(Key(tg), Key(y), Key(x))
		return cx != cy // exactly one direction holds for distinct keys
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInArcInclusive(t *testing.T) {
	cases := []struct {
		k, lo, hi Key
		want      bool
	}{
		{5, 0, 10, true},
		{0, 0, 10, true},
		{10, 0, 10, true},
		{11, 0, 10, false},
		{^Key(0), ^Key(0) - 5, 5, true}, // wrapping arc
		{3, ^Key(0) - 5, 5, true},
		{6, ^Key(0) - 5, 5, false},
		{7, 7, 7, true}, // degenerate single-point arc
		{8, 7, 7, false},
	}
	for _, c := range cases {
		if got := InArcInclusive(c.k, c.lo, c.hi); got != c.want {
			t.Errorf("InArcInclusive(%v,%v,%v) = %v, want %v", c.k, c.lo, c.hi, got, c.want)
		}
	}
}

func TestInArcHalfOpen(t *testing.T) {
	if InArcHalfOpen(0, 0, 10) {
		t.Error("(0,10] must exclude 0")
	}
	if !InArcHalfOpen(10, 0, 10) {
		t.Error("(0,10] must include 10")
	}
	if !InArcHalfOpen(5, 10, 10) {
		t.Error("(x,x] covers whole ring minus x")
	}
	if InArcHalfOpen(10, 10, 10) {
		t.Error("(x,x] excludes x itself")
	}
}

func TestInArcExclusive(t *testing.T) {
	if InArcExclusive(0, 0, 10) || InArcExclusive(10, 0, 10) {
		t.Error("exclusive arc must exclude endpoints")
	}
	if !InArcExclusive(5, 0, 10) {
		t.Error("exclusive arc must include interior")
	}
	if InArcExclusive(5, 7, 7) {
		t.Error("empty arc contains nothing")
	}
}

func TestArcComplementProperty(t *testing.T) {
	// Any key is either in [lo,hi] or in (hi, lo-1] — the two arcs tile the ring.
	f := func(k, lo, hi uint64) bool {
		in := InArcInclusive(Key(k), Key(lo), Key(hi))
		// Complement of closed arc [lo,hi] is the open-from-hi arc (hi, lo).
		out := InArcExclusive(Key(k), Key(hi), Key(lo)) && Key(k) != Key(lo) && Key(k) != Key(hi)
		if Key(lo) == Key(hi) {
			return in == (Key(k) == Key(lo))
		}
		return in != out || (in && (Key(k) == Key(lo) || Key(k) == Key(hi)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShorterArc(t *testing.T) {
	d, n := ShorterArc(0, 10)
	if d != CW || n != 10 {
		t.Errorf("ShorterArc(0,10) = %v,%d want CW,10", d, n)
	}
	d, n = ShorterArc(10, 0)
	if d != CCW || n != 10 {
		t.Errorf("ShorterArc(10,0) = %v,%d want CCW,10", d, n)
	}
	d, _ = ShorterArc(0, 1<<63) // antipodal tie resolves CW
	if d != CW {
		t.Errorf("antipodal tie should resolve CW, got %v", d)
	}
}

func TestAdvanceInverse(t *testing.T) {
	f := func(k, dist uint64) bool {
		fwd := Advance(Key(k), CW, dist)
		back := Advance(fwd, CCW, dist)
		return back == Key(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDirectedDistanceConsistentWithAdvance(t *testing.T) {
	f := func(a, dist uint64) bool {
		b := Advance(Key(a), CW, dist)
		return DirectedDistance(Key(a), b, CW) == dist
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStationaryArcFraction(t *testing.T) {
	for _, frac := range []float64{0.1, 0.2, 0.5, 0.8, 0.99} {
		a := StationaryArc(frac)
		got := a.Fraction()
		if diff := got - frac; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("StationaryArc(%v).Fraction() = %v", frac, got)
		}
	}
}

func TestStationaryArcExcludesZero(t *testing.T) {
	// Section 3 requires 0 < L <= U < ρ: key 0 must stay mobile territory.
	for _, frac := range []float64{0.1, 0.5, 0.9, 0.999} {
		a := StationaryArc(frac)
		if a.Contains(0) {
			t.Errorf("StationaryArc(%v) contains key 0", frac)
		}
	}
}

func TestRandomInArc(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Arc{Lo: 100, Hi: 200}
	for i := 0; i < 1000; i++ {
		k := a.RandomIn(rng)
		if !a.Contains(k) {
			t.Fatalf("RandomIn produced %v outside [100,200]", k)
		}
	}
}

func TestRandomOutsideArc(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := StationaryArc(0.5)
	for i := 0; i < 1000; i++ {
		k := a.RandomOutside(rng)
		if a.Contains(k) {
			t.Fatalf("RandomOutside produced %v inside arc", k)
		}
	}
}

func TestRandomInWrappingArc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Arc{Lo: ^Key(0) - 10, Hi: 10} // wraps through zero
	for i := 0; i < 1000; i++ {
		k := a.RandomIn(rng)
		if !a.Contains(k) {
			t.Fatalf("RandomIn (wrapping) produced %v outside arc", k)
		}
	}
}

func TestRandUint64nUniformSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	counts := make([]int, 4)
	const trials = 40000
	for i := 0; i < trials; i++ {
		counts[randUint64n(rng, 4)]++
	}
	for v, c := range counts {
		frac := float64(c) / trials
		if frac < 0.22 || frac > 0.28 {
			t.Errorf("value %d frequency %v, want ~0.25", v, frac)
		}
	}
}

func TestDirectionString(t *testing.T) {
	if CW.String() != "cw" || CCW.String() != "ccw" {
		t.Error("Direction.String mismatch")
	}
}

func TestKeyString(t *testing.T) {
	if got := Key(0xdeadbeef).String(); got != "00000000deadbeef" {
		t.Errorf("Key.String = %q", got)
	}
}
