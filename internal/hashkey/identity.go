package hashkey

// Self-certifying node identities ("Robust Node ID Assignment for Mobile
// P2P Networks"): a node's ring key is derived from its public key, so
// possession of the matching private key is the only way to occupy that
// key. A joining node proves its claim by signing a join statement; any
// verifier recomputes the key from the public key alone and rejects a
// claim it does not hash to. This turns the clustered naming scheme's
// stationary/mobile split into an enforced boundary: a mobile (or buggy,
// or adversarial) client cannot squat an arbitrary stationary-arc or
// region-striped key, because it cannot choose its key at all — only
// grind keypairs, which buys it a uniformly random position per attempt.
//
// The scheme deliberately stops at self-certification. It does not rate-
// limit keypair grinding (the papers' CA/puzzle escalations) and it does
// not attest that a node is physically in the region it claims — the
// region label only selects which stripe family the key falls in, and is
// bound into the derivation so a claimed region cannot be combined with
// a key earned under another.

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
)

// Identity is an ed25519 keypair standing in for a node's long-lived
// cryptographic identity.
type Identity struct {
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewIdentity generates a fresh random identity.
func NewIdentity() (*Identity, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	return &Identity{pub: pub, priv: priv}, nil
}

// IdentityFromSeed derives a deterministic identity from arbitrary seed
// bytes (hashed to the ed25519 seed size). Same seed, same identity —
// the form the deterministic test harness uses; production nodes should
// use NewIdentity and persist it.
func IdentityFromSeed(seed []byte) *Identity {
	h := sha256.Sum256(seed)
	priv := ed25519.NewKeyFromSeed(h[:])
	return &Identity{pub: priv.Public().(ed25519.PublicKey), priv: priv}
}

// Public returns the identity's public key bytes.
func (id *Identity) Public() []byte { return []byte(id.pub) }

// Sign signs msg with the identity's private key.
func (id *Identity) Sign(msg []byte) []byte { return ed25519.Sign(id.priv, msg) }

// VerifySig reports whether sig is a valid signature of msg under pub.
// Malformed public keys or signatures simply fail verification.
func VerifySig(pub, msg, sig []byte) bool {
	if len(pub) != ed25519.PublicKeySize || len(sig) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(ed25519.PublicKey(pub), msg, sig)
}

// IdentityName is the canonical name form of a public key — the string
// that feeds the ring hash, so key derivation and verification agree on
// one encoding.
func IdentityName(pub []byte) string {
	return "ed25519:" + hex.EncodeToString(pub)
}

// IDKey derives the self-certifying ring key for a public key. A node
// claiming a region (a stationary node under region-striped placement,
// with the deployment's full region set) lands in that region's stripes
// via RegionStriped; anything else hashes the identity name directly.
// The derivation is a pure function of (pub, region, regions), so any
// node holding the same deployment region set recomputes — and thereby
// verifies — another node's key from its public key alone.
func IDKey(pub []byte, region string, regions []string) Key {
	name := IdentityName(pub)
	if region != "" && len(regions) > 0 {
		return RegionStriped(FullRing(), name, region, regions)
	}
	return FromName(name)
}
