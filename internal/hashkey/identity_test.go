package hashkey

import (
	"bytes"
	"testing"
)

func TestIdentityFromSeedDeterministic(t *testing.T) {
	a := IdentityFromSeed([]byte("node-7"))
	b := IdentityFromSeed([]byte("node-7"))
	if !bytes.Equal(a.Public(), b.Public()) {
		t.Fatalf("same seed produced different public keys")
	}
	c := IdentityFromSeed([]byte("node-8"))
	if bytes.Equal(a.Public(), c.Public()) {
		t.Fatalf("distinct seeds produced the same public key")
	}
}

func TestIdentitySignVerify(t *testing.T) {
	id := IdentityFromSeed([]byte("signer"))
	msg := []byte("join statement")
	sig := id.Sign(msg)
	if !VerifySig(id.Public(), msg, sig) {
		t.Fatalf("valid signature failed verification")
	}
	if VerifySig(id.Public(), []byte("other statement"), sig) {
		t.Fatalf("signature verified over a different message")
	}
	other := IdentityFromSeed([]byte("impostor"))
	if VerifySig(other.Public(), msg, sig) {
		t.Fatalf("signature verified under the wrong public key")
	}
	// Malformed inputs must fail cleanly, not panic.
	if VerifySig(nil, msg, sig) || VerifySig(id.Public(), msg, nil) || VerifySig(id.Public()[:5], msg, sig[:5]) {
		t.Fatalf("malformed key/signature verified")
	}
}

func TestNewIdentityRandom(t *testing.T) {
	a, err := NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Public(), b.Public()) {
		t.Fatalf("two random identities share a public key")
	}
	msg := []byte("m")
	if !VerifySig(a.Public(), msg, a.Sign(msg)) {
		t.Fatalf("random identity signature failed verification")
	}
}

func TestIDKeyDerivation(t *testing.T) {
	regions := []string{"us-east", "us-west", "eu"}
	id := IdentityFromSeed([]byte("stationary-node"))
	pub := id.Public()

	// Mobile form (no region): plain hash of the identity name.
	mobile := IDKey(pub, "", nil)
	if want := FromName(IdentityName(pub)); mobile != want {
		t.Fatalf("mobile IDKey = %v, want %v", mobile, want)
	}

	// Stationary form: region-striped over the full ring, and a pure
	// function of (pub, region, regions).
	k1 := IDKey(pub, "eu", regions)
	k2 := IDKey(pub, "eu", regions)
	if k1 != k2 {
		t.Fatalf("IDKey not deterministic: %v vs %v", k1, k2)
	}
	if want := RegionStriped(FullRing(), IdentityName(pub), "eu", regions); k1 != want {
		t.Fatalf("stationary IDKey = %v, want %v", k1, want)
	}
	if got := RegionIndex(FullRing(), k1, len(regions)); got != 0 { // "eu" sorts first
		t.Fatalf("stationary IDKey landed in region index %d, want 0", got)
	}

	// A different region claim yields a different key: a key earned under
	// one region cannot be presented with another.
	if k1 == IDKey(pub, "us-west", regions) {
		t.Fatalf("same key derived for two different region claims")
	}
	// And a different identity cannot land on the same key.
	if k1 == IDKey(IdentityFromSeed([]byte("other")).Public(), "eu", regions) {
		t.Fatalf("two identities derived the same stationary key")
	}
}
