package hashkey

import (
	"fmt"
	"sort"
	"testing"
)

func TestRegionStripedDeterministicAndInArc(t *testing.T) {
	regions := []string{"east", "west", "south"}
	arc := StationaryArc(0.5)
	a := RegionStriped(arc, "node-7", "west", regions)
	b := RegionStriped(arc, "node-7", "west", regions)
	if a != b {
		t.Fatalf("not deterministic: %v != %v", a, b)
	}
	if !arc.Contains(a) {
		t.Fatalf("key %v outside arc [%v, %v]", a, arc.Lo, arc.Hi)
	}
	if c := RegionStriped(arc, "node-8", "west", regions); c == a {
		t.Fatalf("distinct names collided: %v", a)
	}
}

func TestRegionStripedOrderInsensitive(t *testing.T) {
	arc := FullRing()
	a := RegionStriped(arc, "n", "b", []string{"a", "b", "c"})
	b := RegionStriped(arc, "n", "b", []string{"c", "a", "b"})
	if a != b {
		t.Fatalf("region list order changed the key: %v != %v", a, b)
	}
}

func TestRegionStripedFallsBackToPlainHash(t *testing.T) {
	arc := FullRing()
	plain := FromName("n")
	if got := RegionStriped(arc, "n", "anywhere", nil); got != plain {
		t.Fatalf("empty region set: got %v, want plain %v", got, plain)
	}
	if got := RegionStriped(arc, "n", "mars", []string{"east", "west"}); got != plain {
		t.Fatalf("unknown region: got %v, want plain %v", got, plain)
	}
	// An arc too narrow to cut into len(regions)×stripes segments.
	narrow := Arc{Lo: 0, Hi: 10}
	if got := RegionStriped(narrow, "n", "east", []string{"east", "west"}); got != plain {
		t.Fatalf("narrow arc: got %v, want plain %v", got, plain)
	}
}

// TestRegionIndexRoundTrip is the property replica selection depends on:
// any node can recover a striped key's region from the key alone.
func TestRegionIndexRoundTrip(t *testing.T) {
	regions := []string{"west", "east", "south", "north"}
	sorted := append([]string(nil), regions...)
	sort.Strings(sorted)
	for _, arc := range []Arc{FullRing(), StationaryArc(0.7)} {
		for i := 0; i < 200; i++ {
			region := regions[i%len(regions)]
			k := RegionStriped(arc, fmt.Sprintf("node-%d", i), region, regions)
			got := RegionIndex(arc, k, len(regions))
			if got < 0 || sorted[got] != region {
				t.Fatalf("arc %v node-%d: RegionIndex = %d, want index of %s in %v", arc, i, got, region, sorted)
			}
		}
	}
}

// TestRegionIndexRotatesSegments pins the interleaving: walking the arc
// segment by segment cycles through region indices 0,1,...,R-1, so the
// closest few segments around any point always cover several regions.
func TestRegionIndexRotatesSegments(t *testing.T) {
	const r = 3
	arc := FullRing()
	segLen := arc.Width() / (r * regionStripes)
	for seg := uint64(0); seg < 2*r; seg++ {
		k := arc.Lo + Key(seg*segLen+segLen/2)
		if got := RegionIndex(arc, k, r); got != int(seg%r) {
			t.Fatalf("segment %d: RegionIndex = %d, want %d", seg, got, seg%r)
		}
	}
}

// TestRegionStripedAllStripesRoundTrip drives names until every one of
// the 256 stripe repetitions has hosted a key for every region, and
// asserts the round trip holds in each: stripe position must never
// perturb which region a key decodes to.
func TestRegionStripedAllStripesRoundTrip(t *testing.T) {
	regions := []string{"east", "west"}
	sorted := append([]string(nil), regions...)
	sort.Strings(sorted)
	arc := StationaryArc(0.6)
	segLen := arc.Width() / (uint64(len(regions)) * regionStripes)
	covered := make(map[uint64]bool, regionStripes)
	for i := 0; len(covered) < regionStripes; i++ {
		if i > 100*regionStripes {
			t.Fatalf("only %d/%d stripes covered after %d names", len(covered), regionStripes, i)
		}
		name := fmt.Sprintf("node-%d", i)
		for _, region := range regions {
			k := RegionStriped(arc, name, region, regions)
			if !arc.Contains(k) {
				t.Fatalf("%s@%s: key %v outside arc", name, region, k)
			}
			if got := RegionIndex(arc, k, len(regions)); got < 0 || sorted[got] != region {
				t.Fatalf("%s@%s: RegionIndex = %d, want index of %s", name, region, got, region)
			}
		}
		stripe := (uint64(FromName(fmt.Sprintf("node-%d", i))) >> 32) % regionStripes
		covered[stripe] = true
		// Both endpoints of this stripe's segment for region 0 must decode
		// back to region 0: off ∈ [0, segLen) never crosses a boundary.
		lo := arc.Lo + Key(stripe*uint64(len(regions))*segLen)
		if got := RegionIndex(arc, lo, len(regions)); got != 0 {
			t.Fatalf("stripe %d segment start: RegionIndex = %d, want 0", stripe, got)
		}
		if got := RegionIndex(arc, lo+Key(segLen-1), len(regions)); got != 0 {
			t.Fatalf("stripe %d segment end: RegionIndex = %d, want 0", stripe, got)
		}
	}
}

// TestRegionStripedMobileKeys pins how mobile keys interact with the
// striped stationary arc: a mobile key (plain FromName, no region) that
// falls outside the arc decodes to no region, so replica selection never
// mistakes a mobile node for a regional stationary one.
func TestRegionStripedMobileKeys(t *testing.T) {
	arc := StationaryArc(0.5)
	regions := []string{"east", "west", "south"}
	found := false
	for i := 0; i < 64; i++ {
		k := FromName(fmt.Sprintf("mobile-%d", i))
		if arc.Contains(k) {
			continue // a mobile hash can land inside the arc; skip those
		}
		found = true
		if got := RegionIndex(arc, k, len(regions)); got != -1 {
			t.Fatalf("mobile key %v outside arc decoded to region %d, want -1", k, got)
		}
	}
	if !found {
		t.Fatalf("no mobile key landed outside a half-ring arc in 64 tries")
	}
}

// TestRegionStripedSingleRegion: with one region the placement still
// stripes (idx 0 everywhere) but RegionIndex reports -1 — region
// diversity is meaningless on a single-region ring, and callers treat
// -1 as "no region structure".
func TestRegionStripedSingleRegion(t *testing.T) {
	arc := FullRing()
	one := []string{"only"}
	k := RegionStriped(arc, "n", "only", one)
	if k == FromName("n") {
		t.Fatalf("single-region ring fell back to the plain hash")
	}
	a := RegionStriped(arc, "n", "only", one)
	if a != k {
		t.Fatalf("single-region placement not deterministic")
	}
	if got := RegionIndex(arc, k, 1); got != -1 {
		t.Fatalf("single-region RegionIndex = %d, want -1", got)
	}
}

func TestRegionIndexUnknown(t *testing.T) {
	if got := RegionIndex(FullRing(), 42, 1); got != -1 {
		t.Fatalf("single region: RegionIndex = %d, want -1", got)
	}
	narrow := Arc{Lo: 0, Hi: 10}
	if got := RegionIndex(narrow, 5, 3); got != -1 {
		t.Fatalf("unstripable arc: RegionIndex = %d, want -1", got)
	}
	outside := StationaryArc(0.5)
	if got := RegionIndex(outside, outside.Hi+10, 3); got != -1 {
		t.Fatalf("key outside arc: RegionIndex = %d, want -1", got)
	}
}
