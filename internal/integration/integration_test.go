// Package integration drives the whole simulated stack end to end: the
// discrete-event clock, the mobility workload generator, Bristle's
// lease-based location management, churn, and the session traffic of a
// real application — asserting system-level invariants none of the unit
// suites can see.
package integration

import (
	"math"
	"math/rand"
	"testing"

	"bristle/internal/core"
	"bristle/internal/mobility"
	"bristle/internal/overlay"
	"bristle/internal/simnet"
	"bristle/internal/topology"
)

type world struct {
	sim  *simnet.Simulator
	net  *simnet.Network
	bn   *core.Network
	rng  *rand.Rand
	stat []*core.Peer
	mob  []*core.Peer
}

func buildWorld(t testing.TB, stationary, mobile int, leaseTTL simnet.Time, seed int64) *world {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, err := topology.GenerateTransitStub(topology.DefaultTransitStub(600), rng)
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	sim := &simnet.Simulator{}
	net := simnet.NewNetwork(g, sim)
	bn := core.NewNetwork(core.Config{
		Naming:             core.Clustered,
		StationaryFraction: float64(stationary) / float64(stationary+mobile),
		Overlay:            overlay.DefaultConfig(),
		ReplicationFactor:  3,
		LeaseTTL:           leaseTTL,
		UnitCost:           1,
		LDTLocality:        true,
		CacheResolved:      true,
	}, net, sim, rng)
	w := &world{sim: sim, net: net, bn: bn, rng: rng}
	for i := 0; i < stationary; i++ {
		p, err := bn.AddPeer(core.Stationary, 1+float64(rng.Intn(15)))
		if err != nil {
			t.Fatal(err)
		}
		w.stat = append(w.stat, p)
	}
	for i := 0; i < mobile; i++ {
		p, err := bn.AddPeer(core.Mobile, 1+float64(rng.Intn(15)))
		if err != nil {
			t.Fatal(err)
		}
		w.mob = append(w.mob, p)
	}
	bn.RefreshEntries()
	bn.BuildRegistries()
	for _, p := range w.mob {
		if _, err := bn.PublishLocation(p); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

// TestSessionsSurviveScheduledMobility runs a Poisson movement workload
// through the event clock with the full update protocol on every move,
// while correspondents send to their mobile targets continuously. Every
// message must be deliverable (directly or after one discovery).
func TestSessionsSurviveScheduledMobility(t *testing.T) {
	w := buildWorld(t, 80, 60, 0, 1)

	hosts := make([]simnet.HostID, len(w.mob))
	byHost := map[simnet.HostID]*core.Peer{}
	for i, p := range w.mob {
		hosts[i] = p.Host
		byHost[p.Host] = p
	}
	sched, err := mobility.Generate(hosts, mobility.Params{
		Horizon:      100,
		MeanInterval: 40,
		Jitter:       true,
	}, w.rng)
	if err != nil {
		t.Fatal(err)
	}
	moves := 0
	sched.Apply(w.sim, w.net, w.rng, func(h simnet.HostID, _ simnet.Addr) {
		moves++
		if _, err := w.bn.UpdateLocation(byHost[h]); err != nil {
			t.Errorf("update after move: %v", err)
		}
	})

	// Sessions: every 5 time units, 20 random correspondents message
	// their mobile targets.
	delivered, attempted := 0, 0
	var tick func()
	tick = func() {
		for i := 0; i < 20; i++ {
			src := w.stat[w.rng.Intn(len(w.stat))]
			dst := w.mob[w.rng.Intn(len(w.mob))]
			attempted++
			if _, err := w.bn.SendDirect(src, dst); err == nil {
				delivered++
			}
		}
		if w.sim.Now() < 95 {
			w.sim.Schedule(5, tick)
		}
	}
	w.sim.Schedule(5, tick)
	w.sim.Run(101)

	if moves == 0 {
		t.Fatal("workload scheduled no moves")
	}
	if attempted == 0 {
		t.Fatal("no sessions ran")
	}
	if delivered != attempted {
		t.Fatalf("delivery %d/%d with full update protocol; want 100%%", delivered, attempted)
	}
}

// TestLateBindingOnlyUnderLeases disables proactive updates: mobile peers
// move and republish, correspondents rely purely on discovery (late
// binding). With finite leases every send after a move needs exactly the
// protocol's fallback path, and still succeeds.
func TestLateBindingOnlyUnderLeases(t *testing.T) {
	w := buildWorld(t, 80, 40, 50, 2)

	delivered, attempted, discoveries := 0, 0, uint64(0)
	for round := 0; round < 5; round++ {
		for _, p := range w.mob {
			w.bn.MoveSilently(p)
			if _, err := w.bn.PublishLocation(p); err != nil {
				t.Fatal(err)
			}
		}
		// Advance the clock past nothing in particular; leases are fresh.
		w.sim.Schedule(10, func() {})
		w.sim.RunAll()
		before := w.bn.Stats.Discoveries
		for i := 0; i < 50; i++ {
			src := w.stat[w.rng.Intn(len(w.stat))]
			dst := w.mob[w.rng.Intn(len(w.mob))]
			attempted++
			if _, err := w.bn.SendDirect(src, dst); err == nil {
				delivered++
			}
		}
		discoveries += w.bn.Stats.Discoveries - before
	}
	if delivered != attempted {
		t.Fatalf("late binding delivery %d/%d", delivered, attempted)
	}
	if discoveries == 0 {
		t.Fatal("late binding never used discovery — test is vacuous")
	}
}

// TestLeaseExpiryUnderClock verifies that with a finite lease and no
// republish, records age out as virtual time advances.
func TestLeaseExpiryUnderClock(t *testing.T) {
	w := buildWorld(t, 40, 10, 20, 3)
	target := w.mob[0]
	src := w.stat[0]

	if _, _, err := w.bn.Discover(src, target.Key); err != nil {
		t.Fatalf("fresh discover: %v", err)
	}
	w.sim.Schedule(30, func() {}) // outlive the 20-unit lease
	w.sim.RunAll()
	if _, _, err := w.bn.Discover(src, target.Key); err != core.ErrNotFound {
		t.Fatalf("expired discover: %v, want ErrNotFound", err)
	}
	// Early binding: republish restores resolvability.
	if _, err := w.bn.PublishLocation(target); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.bn.Discover(src, target.Key); err != nil {
		t.Fatalf("post-republish discover: %v", err)
	}
}

// TestChurnDuringMobilityWorkload removes a third of the stationary layer
// and a quarter of the mobile population mid-run, adds fresh peers, and
// checks the system still routes and resolves correctly.
func TestChurnDuringMobilityWorkload(t *testing.T) {
	w := buildWorld(t, 90, 45, 0, 4)

	// Warm-up traffic.
	for i := 0; i < 30; i++ {
		src := w.stat[w.rng.Intn(len(w.stat))]
		dst := w.mob[w.rng.Intn(len(w.mob))]
		if _, err := w.bn.SendDirect(src, dst); err != nil {
			t.Fatalf("warm-up send: %v", err)
		}
	}

	// Kill 30 stationary peers (not index 0, our probe) and 11 mobile.
	for i := 0; i < 30; i++ {
		victim := w.stat[1+w.rng.Intn(len(w.stat)-1)]
		if !w.bn.MobileRing.Alive(victim.MobileRingID) {
			continue
		}
		if err := w.bn.Leave(victim); err != nil {
			t.Fatal(err)
		}
	}
	aliveMob := w.mob[:0]
	for i, p := range w.mob {
		if i%4 == 0 && w.bn.MobileRing.Alive(p.MobileRingID) {
			if err := w.bn.Leave(p); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if w.bn.MobileRing.Alive(p.MobileRingID) {
			aliveMob = append(aliveMob, p)
		}
	}
	w.mob = aliveMob

	// Join replacements dynamically.
	for i := 0; i < 10; i++ {
		js, err := w.bn.Join(core.Mobile, 1+float64(w.rng.Intn(15)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.bn.PublishLocation(js.Peer); err != nil {
			t.Fatal(err)
		}
		w.mob = append(w.mob, js.Peer)
	}
	w.bn.Stabilize()

	// Survivors move and must stay reachable (replication + republish
	// cover the departed resolvers).
	for _, p := range w.mob {
		if _, err := w.bn.MoveAndUpdate(p); err != nil {
			t.Fatalf("post-churn update: %v", err)
		}
	}
	probe := w.stat[0]
	for _, dst := range w.mob {
		if _, err := w.bn.SendDirect(probe, dst); err != nil {
			t.Fatalf("post-churn send to peer %d: %v", dst.ID, err)
		}
	}

	// Data routing on the mobile ring still converges to the true owner.
	for i := 0; i < 50; i++ {
		target := w.mob[w.rng.Intn(len(w.mob))]
		rs, err := w.bn.RouteData(probe, target.Key)
		if err != nil {
			t.Fatalf("post-churn route: %v", err)
		}
		if rs.Dest.ID != target.ID {
			t.Fatalf("route reached %d, want %d", rs.Dest.ID, target.ID)
		}
	}
}

// TestStatsConservation cross-checks the global counters against summed
// per-operation results over a known workload.
func TestStatsConservation(t *testing.T) {
	w := buildWorld(t, 60, 30, 0, 5)
	w.bn.Stats = core.Stats{} // reset after setup publishes

	wantPublishes := 0
	wantUpdates := 0
	for _, p := range w.mob[:10] {
		us, err := w.bn.MoveAndUpdate(p)
		if err != nil {
			t.Fatal(err)
		}
		wantPublishes++
		wantUpdates += us.Messages
	}
	if got := w.bn.Stats.Publishes; got != uint64(wantPublishes) {
		t.Errorf("Publishes = %d, want %d", got, wantPublishes)
	}
	if got := w.bn.Stats.UpdateMessages; got != uint64(wantUpdates) {
		t.Errorf("UpdateMessages = %d, want %d", got, wantUpdates)
	}

	before := w.bn.Stats.Discoveries
	misses := 0
	for i := 0; i < 20; i++ {
		src := w.stat[w.rng.Intn(len(w.stat))]
		dst := w.mob[10+w.rng.Intn(10)] // never moved: records still fresh
		if _, _, err := w.bn.Discover(src, dst.Key); err != nil {
			misses++
		}
	}
	if got := w.bn.Stats.Discoveries - before; got != 20 {
		t.Errorf("Discoveries delta = %d, want 20", got)
	}
	if w.bn.Stats.DiscoveryMisses != uint64(misses) {
		t.Errorf("DiscoveryMisses = %d, observed %d errors", w.bn.Stats.DiscoveryMisses, misses)
	}
}

// TestDeliveryRatioDegradesGracefully quantifies reliability: killing an
// increasing share of the stationary layer must degrade discovery success
// smoothly, never collapse (replication factor 3).
func TestDeliveryRatioDegradesGracefully(t *testing.T) {
	ratios := make([]float64, 0, 3)
	for _, kill := range []int{0, 10, 25} {
		w := buildWorld(t, 60, 30, 0, int64(100+kill))
		for _, p := range w.mob {
			w.bn.MoveSilently(p)
			if _, err := w.bn.PublishLocation(p); err != nil {
				t.Fatal(err)
			}
		}
		killed := 0
		for i := 1; i < len(w.stat) && killed < kill; i++ {
			if err := w.bn.Leave(w.stat[i]); err == nil {
				killed++
			}
		}
		ok, total := 0, 0
		probe := w.stat[0]
		for _, dst := range w.mob {
			total++
			if _, _, err := w.bn.Discover(probe, dst.Key); err == nil {
				ok++
			}
		}
		ratios = append(ratios, float64(ok)/float64(total))
	}
	if ratios[0] < 0.999 {
		t.Fatalf("baseline discovery ratio %v, want 1.0", ratios[0])
	}
	// Degradation must be graceful: even with 25 of 60 stationary peers
	// gone, most records survive on replicas.
	if ratios[2] < 0.6 {
		t.Fatalf("discovery ratio collapsed to %v after heavy stationary loss", ratios[2])
	}
	if ratios[1] < ratios[2]-1e-9 {
		t.Logf("note: ratios not monotone (%v)", ratios) // random placement; informational
	}
	if math.IsNaN(ratios[2]) {
		t.Fatal("NaN ratio")
	}
}
