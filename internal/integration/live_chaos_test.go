package integration

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"bristle/internal/live"
	"bristle/internal/metrics"
	"bristle/internal/transport"
)

// TestLiveRingLeasesRefreshUnderChaos runs the real live stack — socket
// protocol, leases, background maintenance (gossip, lease renewal,
// suspect probing) — behind a Faulty transport: 20% frame loss and
// injected delay throughout, plus a two-node partition that heals
// mid-run. Leases must keep refreshing through the loss so every mobile
// stays discoverable, and the counters must show the resilience machinery
// actually firing.
func TestLiveRingLeasesRefreshUnderChaos(t *testing.T) {
	const seed = 1234
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	counters := metrics.NewCounters()
	faulty := transport.NewFaulty(transport.NewMem(), transport.FaultConfig{Seed: seed})

	stationary := []string{"t1", "t2", "t3", "t4", "t5", "t6"}
	mobiles := []string{"u1", "u2"}
	names := append(append([]string{}, stationary...), mobiles...)

	const leaseTTL = time.Second
	nodes := make(map[string]*live.Node, len(names))
	var all []*live.Node
	for _, name := range names {
		nd := live.NewNode(live.Config{
			Name:               name,
			Capacity:           4,
			Mobile:             name[0] == 'u',
			Replication:        3,
			LeaseTTL:           leaseTTL,
			RequestTimeout:     250 * time.Millisecond,
			RetryAttempts:      5,
			RetryBase:          5 * time.Millisecond,
			RetryMax:           40 * time.Millisecond,
			SuspicionThreshold: 3,
			SuspicionCooldown:  200 * time.Millisecond,
			Counters:           counters,
		}, faulty.Endpoint(name))
		if err := nd.Start(""); err != nil {
			t.Fatalf("start %s: %v", name, err)
		}
		nodes[name] = nd
		all = append(all, nd)
	}
	defer func() {
		for _, nd := range all {
			nd.Close()
		}
	}()

	boot := all[0]
	for _, nd := range all[1:] {
		if err := nd.JoinViaContext(ctx, boot.Addr()); err != nil {
			t.Fatalf("join: %v", err)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	for round := 0; round < 4; round++ {
		for _, nd := range all {
			if _, err := nd.GossipOnce(rng); err != nil {
				t.Fatalf("gossip: %v", err)
			}
		}
	}
	for _, name := range mobiles {
		if err := nodes[name].PublishContext(ctx); err != nil {
			t.Fatalf("publish %s: %v", name, err)
		}
	}

	// Background maintenance on every node: renewal faster than the lease
	// TTL (records expire without it), plus gossip and suspect probing.
	var stops []func()
	for i, nd := range all {
		stops = append(stops, nd.StartMaintenance(live.MaintainConfig{
			GossipInterval: 300 * time.Millisecond,
			RenewInterval:  300 * time.Millisecond,
			ProbeInterval:  250 * time.Millisecond,
			Rand:           rand.New(rand.NewSource(seed + int64(i))),
		}))
	}
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()

	// Chaos on, and two nodes cut away from the rest in both directions.
	island := []string{"t6", "u2"}
	mainland := []string{"t1", "t2", "t3", "t4", "t5", "u1"}
	faulty.PartitionBoth("island", island, mainland)
	faulty.SetConfig(transport.FaultConfig{
		Seed:     seed,
		Drop:     0.20,
		DelayMax: 30 * time.Millisecond,
		Counters: counters,
	})

	// Hold the partition well past the lease TTL: mainland renewals must
	// keep u1 alive in the repository even while 20% of frames vanish.
	time.Sleep(3 * leaseTTL / 2)
	if err := nodes["u1"].RebindContext(ctx, ""); err != nil {
		t.Fatalf("rebind under chaos: %v", err)
	}
	faulty.Heal("island")
	time.Sleep(leaseTTL)

	// Every mobile stays discoverable — including the healed u2, whose
	// lease may have lapsed during isolation until its renewal loop
	// republished it. Still under 20% loss; retries absorb the noise.
	resolve := func(from *live.Node, target *live.Node) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for {
			addr, err := from.DiscoverContext(ctx, target.Key())
			if err == nil && addr == target.Addr() {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("discover %v from %v: addr=%q err=%v", target.Key(), from.Key(), addr, err)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
	for _, probe := range []string{"t1", "t6"} {
		for _, m := range mobiles {
			resolve(nodes[probe], nodes[m])
		}
	}

	// A record that stops being renewed must still expire: the lease
	// mechanism is alive, not just never-expiring storage.
	u1 := nodes["u1"]
	stops[6]() // u1's maintenance (index 6 in all = first mobile)
	stops[6] = func() {}
	u1key := u1.Key()
	expired := func() bool {
		_, err := nodes["t2"].DiscoverContext(ctx, u1key)
		return errors.Is(err, live.ErrNotFound)
	}
	expiry := time.Now().Add(15 * time.Second)
	for !expired() {
		if time.Now().After(expiry) {
			t.Fatal("lease never expired after renewal stopped")
		}
		time.Sleep(100 * time.Millisecond)
	}

	if counters.Get("fault.drop") == 0 {
		t.Error("chaos vacuous: no frames dropped")
	}
	if counters.Get("rpc.retries") == 0 {
		t.Error("no retries recorded under 20% loss")
	}
	// The whole run rode the multiplexed pool: sessions were dialed, and
	// every fault above was injected on long-lived pooled connections.
	if counters.Get("pool.dials") == 0 {
		t.Error("no pooled sessions dialed: chaos run did not exercise the pool")
	}
}

// TestResolveCoalescesUnderChaos drives the cache-first resolve path —
// singleflight discovery, lease write-through, negative caching — through
// a lossy, delaying transport. A burst of concurrent resolvers for one
// freshly published key must all converge on the right address while the
// coalescing keeps the number of network discoveries far below the
// number of callers, and the follow-up resolves must be answered from
// the cached lease without any new discovery.
func TestResolveCoalescesUnderChaos(t *testing.T) {
	const seed = 4321
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	counters := metrics.NewCounters()
	faulty := transport.NewFaulty(transport.NewMem(), transport.FaultConfig{Seed: seed})

	names := []string{"a1", "a2", "a3", "mob"}
	nodes := make(map[string]*live.Node, len(names))
	var all []*live.Node
	for _, name := range names {
		nd := live.NewNode(live.Config{
			Name:           name,
			Capacity:       4,
			Mobile:         name == "mob",
			Replication:    2,
			LeaseTTL:       30 * time.Second,
			RequestTimeout: 250 * time.Millisecond,
			RetryAttempts:  5,
			RetryBase:      5 * time.Millisecond,
			RetryMax:       40 * time.Millisecond,
			Counters:       counters,
		}, faulty.Endpoint(name))
		if err := nd.Start(""); err != nil {
			t.Fatalf("start %s: %v", name, err)
		}
		nodes[name] = nd
		all = append(all, nd)
	}
	defer func() {
		for _, nd := range all {
			nd.Close()
		}
	}()
	for _, nd := range all[1:] {
		if err := nd.JoinViaContext(ctx, all[0].Addr()); err != nil {
			t.Fatalf("join: %v", err)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	for round := 0; round < 4; round++ {
		for _, nd := range all {
			if _, err := nd.GossipOnce(rng); err != nil {
				t.Fatalf("gossip: %v", err)
			}
		}
	}
	mob := nodes["mob"]
	if err := mob.PublishContext(ctx); err != nil {
		t.Fatalf("publish: %v", err)
	}

	faulty.SetConfig(transport.FaultConfig{
		Seed:     seed,
		Drop:     0.10,
		DelayMax: 10 * time.Millisecond,
		Counters: counters,
	})

	// Background traffic keeps the chaos non-vacuous: a single coalesced
	// discovery alone exchanges too few frames to be guaranteed a drop.
	for i := 0; i < 60; i++ {
		_ = nodes["a2"].PingContext(ctx, nodes["a3"].Addr())
	}

	// Storm: 32 resolvers on one key through a node that has never seen
	// it. Retries absorb the loss; the singleflight absorbs the fan-in.
	resolver := nodes["a1"]
	const stormers = 32
	var wg sync.WaitGroup
	errsCh := make(chan error, stormers)
	for i := 0; i < stormers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			addr, err := resolver.ResolveContext(ctx, mob.Key())
			if err != nil {
				errsCh <- err
				return
			}
			if addr != mob.Addr() {
				errsCh <- fmt.Errorf("resolved %s, want %s", addr, mob.Addr())
			}
		}()
	}
	wg.Wait()
	close(errsCh)
	for err := range errsCh {
		t.Errorf("storm resolve: %v", err)
	}

	discoveries := counters.Get("resolve.discoveries")
	if discoveries == 0 || discoveries > stormers/4 {
		t.Errorf("resolve.discoveries = %d for %d concurrent resolvers; want coalesced to a handful", discoveries, stormers)
	}

	// Steady state: the lease answers locally; no new discovery happens.
	for i := 0; i < 20; i++ {
		addr, err := resolver.ResolveContext(ctx, mob.Key())
		if err != nil || addr != mob.Addr() {
			t.Fatalf("cached resolve %d: %q %v", i, addr, err)
		}
	}
	if after := counters.Get("resolve.discoveries"); after != discoveries {
		t.Errorf("steady-state resolves issued %d extra discoveries", after-discoveries)
	}
	if counters.Get("loccache.hit") < 20 {
		t.Errorf("loccache.hit = %d, want at least the 20 steady-state resolves", counters.Get("loccache.hit"))
	}
	if counters.Get("fault.drop") == 0 {
		t.Error("chaos vacuous: no frames dropped")
	}
}
