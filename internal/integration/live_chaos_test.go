package integration

// Both chaos integration tests run on the scenario harness
// (internal/harness): it owns cluster bootstrap, seeded fault
// injection, partitions, background maintenance, and leak-checked
// shutdown, so these tests only script their story and assert on the
// cluster's observable surface.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"bristle/internal/harness"
	"bristle/internal/live"
	"bristle/internal/transport"
)

// TestLiveRingLeasesRefreshUnderChaos runs the real live stack — socket
// protocol, leases, background maintenance (gossip, lease renewal,
// suspect probing) — behind a Faulty transport: 20% frame loss and
// injected delay throughout, plus a two-node partition that heals
// mid-run. Leases must keep refreshing through the loss so every mobile
// stays discoverable, and the counters must show the resilience
// machinery actually firing.
func TestLiveRingLeasesRefreshUnderChaos(t *testing.T) {
	const seed = 1234
	const leaseTTL = time.Second
	island := []string{"t6", "u2"}
	mainland := []string{"t1", "t2", "t3", "t4", "t5", "u1"}
	c, err := harness.New(harness.Config{
		Seed:        seed,
		Stationary:  []string{"t1", "t2", "t3", "t4", "t5", "t6"},
		Mobile:      []string{"u1", "u2"},
		LeaseTTL:    leaseTTL,
		Replication: 3,
		Faults:      transport.FaultConfig{Drop: 0.20, DelayMax: 30 * time.Millisecond},
		Maintain: &live.MaintainConfig{
			GossipInterval: 300 * time.Millisecond,
			RenewInterval:  300 * time.Millisecond,
			ProbeInterval:  250 * time.Millisecond,
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	must := func(what string, d time.Duration, op func() error) {
		t.Helper()
		if err := harness.Eventually(d, op); err != nil {
			t.Fatalf("%s: still failing at deadline: %v", what, err)
		}
	}
	must("u1 publish", 20*time.Second, func() error { return c.Publish("u1") })
	must("u2 publish", 20*time.Second, func() error { return c.Publish("u2") })

	// Two nodes cut away from the rest in both directions, held well past
	// the lease TTL: mainland renewals must keep u1 alive in the
	// repository even while 20% of frames vanish.
	if err := c.Partition("island", island, mainland); err != nil {
		t.Fatal(err)
	}
	time.Sleep(3 * leaseTTL / 2)
	must("u1 move under chaos", 20*time.Second, func() error { return c.Move("u1") })
	if err := c.Heal("island"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(leaseTTL)

	// Every mobile stays discoverable — including the healed u2, whose
	// lease may have lapsed during isolation until its renewal loop
	// republished it. Still under 20% loss; retries absorb the noise.
	discoverFresh := func(from, target string) {
		t.Helper()
		must(from+" discover "+target, 15*time.Second, func() error {
			addr, err := c.Node(from).Discover(c.Key(target))
			if err != nil {
				return err
			}
			if addr != c.Addr(target) {
				return fmt.Errorf("stale %q, current %q", addr, c.Addr(target))
			}
			return nil
		})
	}
	for _, probe := range []string{"t1", "t6"} {
		for _, m := range []string{"u1", "u2"} {
			discoverFresh(probe, m)
		}
	}

	// A record that stops being renewed must still expire: the lease
	// mechanism is alive, not just never-expiring storage.
	c.StopMaintenance("u1")
	must("u1 lease expiry after renewal stopped", 15*time.Second, func() error {
		_, err := c.Node("t2").Discover(c.Key("u1"))
		if errors.Is(err, live.ErrNotFound) {
			return nil
		}
		return fmt.Errorf("u1 still resolvable (err=%v)", err)
	})

	if c.Counters.Get("fault.drop") == 0 {
		t.Error("chaos vacuous: no frames dropped")
	}
	if c.Counters.Get("rpc.retries") == 0 {
		t.Error("no retries recorded under 20% loss")
	}
	// The whole run rode the multiplexed pool: sessions were dialed, and
	// every fault above was injected on long-lived pooled connections.
	if c.Counters.Get("pool.dials") == 0 {
		t.Error("no pooled sessions dialed: chaos run did not exercise the pool")
	}
}

// TestResolveCoalescesUnderChaos drives the cache-first resolve path —
// singleflight discovery, lease write-through, negative caching — through
// a lossy, delaying transport. A burst of concurrent resolvers for one
// freshly published key must all converge on the right address while the
// coalescing keeps the number of network discoveries far below the
// number of callers, and the follow-up resolves must be answered from
// the cached lease without any new discovery.
func TestResolveCoalescesUnderChaos(t *testing.T) {
	const seed = 4321
	c, err := harness.New(harness.Config{
		Seed:        seed,
		Stationary:  []string{"a1", "a2", "a3"},
		Mobile:      []string{"mob"},
		LeaseTTL:    30 * time.Second,
		Replication: 2,
		Faults:      transport.FaultConfig{Drop: 0.10, DelayMax: 10 * time.Millisecond},
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	if err := harness.Eventually(20*time.Second, func() error { return c.Publish("mob") }); err != nil {
		t.Fatalf("publish: %v", err)
	}

	// Background traffic keeps the chaos non-vacuous: a single coalesced
	// discovery alone exchanges too few frames to be guaranteed a drop.
	for i := 0; i < 60; i++ {
		_ = c.Node("a2").Ping(c.Addr("a3"))
	}

	// Storm: 32 resolvers on one key through a node that has never seen
	// it. Retries absorb the loss; the singleflight absorbs the fan-in.
	const stormers = 32
	before := c.Counters.Get("resolve.discoveries")
	storm := harness.Storm{From: "a1", Target: "mob", Resolvers: stormers, Within: 30 * time.Second}
	if err := storm.Apply(c); err != nil {
		t.Fatalf("storm: %v", err)
	}
	discoveries := c.Counters.Get("resolve.discoveries") - before
	if discoveries == 0 || discoveries > stormers/4 {
		t.Errorf("resolve.discoveries = %d for %d concurrent resolvers; want coalesced to a handful", discoveries, stormers)
	}

	// Steady state: the lease answers locally; no new discovery happens.
	hitsBefore := c.Counters.Get("loccache.hit")
	for i := 0; i < 20; i++ {
		addr, err := c.Resolve("a1", "mob")
		if err != nil || addr != c.Addr("mob") {
			t.Fatalf("cached resolve %d: %q %v", i, addr, err)
		}
	}
	if after := c.Counters.Get("resolve.discoveries") - before; after != discoveries {
		t.Errorf("steady-state resolves issued %d extra discoveries", after-discoveries)
	}
	if got := c.Counters.Get("loccache.hit") - hitsBefore; got < 20 {
		t.Errorf("loccache.hit grew by %d, want at least the 20 steady-state resolves", got)
	}
	if c.Counters.Get("fault.drop") == 0 {
		t.Error("chaos vacuous: no frames dropped")
	}
}
