// Package ldt implements Bristle's location dissemination trees
// (Section 2.3): per-mobile-node multicast trees over the registry nodes
// interested in that node's movement, shaped by each member's capacity and
// current workload exactly as in the paper's Figure 4 advertisement
// algorithm.
//
// A tree is *member-only*: it contains the mobile node (root) and its
// registered interested nodes, nothing else — the design the paper selects
// after the responsibility analysis of Figure 3. The package also provides
// the analytic responsibility formulas for both design alternatives, tree
// shape metrics (depth, level histogram), edge costs over an underlay
// distance function, and a locality-aware partition assignment used in the
// Figure 9 comparison.
package ldt

import (
	"fmt"
	"math"
	"sort"

	"bristle/internal/topology"
)

// Member is a participant of a location dissemination tree: the root
// (mobile node) or one of its registry nodes.
type Member struct {
	// ID is an opaque member identity (an overlay node ID in Bristle).
	ID int32
	// Capacity is the node's advertised ability C_t (the evaluation uses
	// the maximum number of network connections).
	Capacity float64
	// Used is the node's present workload Used_t; Avail = Capacity − Used.
	Used float64
	// Router is the member's current underlay attachment point, used for
	// locality-aware partitioning and edge-cost accounting.
	Router topology.RouterID
}

// Avail returns the member's remaining capacity.
func (m Member) Avail() float64 { return m.Capacity - m.Used }

// DistanceFunc returns the underlay cost between two attachment routers.
type DistanceFunc func(a, b topology.RouterID) float64

// Params configures tree construction.
type Params struct {
	// UnitCost is v, the cost of sending one update message. Must be > 0.
	UnitCost float64

	// Locality enables locality-aware partition assignment: after the
	// partition heads are chosen by capacity (as in Figure 4), remaining
	// members join the underlay-nearest head's partition subject to the
	// near-equal-size guarantee. Requires Dist.
	Locality bool

	// Dist supplies underlay distances; required when Locality is set and
	// for EdgeCost accounting (may be nil otherwise).
	Dist DistanceFunc
}

func (p Params) validate() error {
	if p.UnitCost <= 0 {
		return fmt.Errorf("ldt: UnitCost must be positive, got %v", p.UnitCost)
	}
	if p.Locality && p.Dist == nil {
		return fmt.Errorf("ldt: Locality requires a Dist function")
	}
	return nil
}

// Node is a vertex of a built tree.
type Node struct {
	Member   Member
	Level    int // root is level 1, matching Figure 8(a)'s labeling
	Children []*Node
	// Assigned is the number of registry members delegated to this node by
	// its parent (|partition(k)| in Figure 4), i.e. the subtree size minus
	// itself. The root's Assigned is len(registry).
	Assigned int
}

// Tree is a built location dissemination tree.
type Tree struct {
	Root *Node
	size int
}

// Size returns the number of members in the tree (root + registry).
func (t *Tree) Size() int { return t.size }

// Depth returns the number of levels (root-only tree has depth 1).
func (t *Tree) Depth() int {
	max := 0
	t.Walk(func(n *Node) {
		if n.Level > max {
			max = n.Level
		}
	})
	return max
}

// Walk visits every node in preorder.
func (t *Tree) Walk(fn func(*Node)) {
	var rec func(*Node)
	rec = func(n *Node) {
		fn(n)
		for _, c := range n.Children {
			rec(c)
		}
	}
	if t.Root != nil {
		rec(t.Root)
	}
}

// LevelHistogram returns the number of members at each level, indexed from
// 1 (index 0 is unused). This reproduces the stacking of Figure 8(a).
func (t *Tree) LevelHistogram() []int {
	h := make([]int, t.Depth()+1)
	t.Walk(func(n *Node) { h[n.Level]++ })
	return h
}

// Edges returns the number of tree edges (Size−1 for a non-empty tree).
func (t *Tree) Edges() int {
	if t.size == 0 {
		return 0
	}
	return t.size - 1
}

// EdgeCost sums dist(parent, child) over all tree edges — the tree cost
// measured in Figure 9 (each edge's cost is the minimal underlay path
// weight between the two members' attachment routers).
func (t *Tree) EdgeCost(dist DistanceFunc) float64 {
	total := 0.0
	var rec func(n *Node)
	rec = func(n *Node) {
		for _, c := range n.Children {
			total += dist(n.Member.Router, c.Member.Router)
			rec(c)
		}
	}
	if t.Root != nil {
		rec(t.Root)
	}
	return total
}

// Build constructs the LDT for a mobile node (root) over its registry set
// by running the Figure 4 advertisement algorithm recursively. The
// registry slice is not modified.
func Build(root Member, registry []Member, p Params) (*Tree, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	rootNode := &Node{Member: root, Level: 1, Assigned: len(registry)}
	rest := make([]Member, len(registry))
	copy(rest, registry)
	advertise(rootNode, rest, p)
	return &Tree{Root: rootNode, size: 1 + len(registry)}, nil
}

// advertise implements Figure 4: node parent must deliver the update to
// every member of list, delegating according to its available capacity.
func advertise(parent *Node, list []Member, p Params) {
	if len(list) == 0 {
		return
	}
	// sort R(i) in decreasing order of capacity (stable on ID for
	// determinism).
	sort.SliceStable(list, func(i, j int) bool {
		if list[i].Capacity != list[j].Capacity {
			return list[i].Capacity > list[j].Capacity
		}
		return list[i].ID < list[j].ID
	})

	avail := parent.Member.Avail()
	k := int(math.Floor(avail / p.UnitCost))
	if avail-p.UnitCost <= 0 || k < 1 {
		// Overloaded: report only to the registry node with the maximum
		// capacity; it advertises to the others on our behalf.
		head := list[0]
		child := &Node{Member: head, Level: parent.Level + 1, Assigned: len(list) - 1}
		parent.Children = append(parent.Children, child)
		advertise(child, list[1:], p)
		return
	}
	if k > len(list) {
		k = len(list)
	}

	partitions := partition(list, k, p)
	for _, part := range partitions {
		if len(part) == 0 {
			continue
		}
		head := part[0]
		child := &Node{Member: head, Level: parent.Level + 1, Assigned: len(part) - 1}
		parent.Children = append(parent.Children, child)
		advertise(child, part[1:], p)
	}
}

// partition splits the capacity-sorted list into k near-equal lists.
//
// Without locality this is the paper's round-robin deal: element j goes to
// partition j mod k, so partition heads are the k most capable members and
// every partition's size differs by at most one.
//
// With locality the heads are still the top-k members by capacity, but the
// remaining members are dealt (in capacity order) to the underlay-nearest
// head whose partition has not yet reached the balanced size bound — the
// Figure 9 "with locality" variant. Both keep the head the most capable
// member of its partition.
func partition(list []Member, k int, p Params) [][]Member {
	parts := make([][]Member, k)
	if !p.Locality {
		for j, m := range list {
			parts[j%k] = append(parts[j%k], m)
		}
		return parts
	}

	// Heads: top-k by capacity.
	for j := 0; j < k; j++ {
		parts[j] = append(parts[j], list[j])
	}
	rest := list[k:]
	bound := (len(list) + k - 1) / k // max partition size (head included)
	for _, m := range rest {
		bestIdx := -1
		bestDist := math.Inf(1)
		for j := 0; j < k; j++ {
			if len(parts[j]) >= bound {
				continue
			}
			d := p.Dist(parts[j][0].Router, m.Router)
			if d < bestDist {
				bestDist, bestIdx = d, j
			}
		}
		if bestIdx == -1 {
			// All partitions at bound (can happen when len(list) divides
			// evenly); relax to the nearest head outright.
			for j := 0; j < k; j++ {
				d := p.Dist(parts[j][0].Router, m.Router)
				if d < bestDist {
					bestDist, bestIdx = d, j
				}
			}
		}
		parts[bestIdx] = append(parts[bestIdx], m)
	}
	return parts
}

// ResponsibilityMemberOnly returns the paper's analytic per-stationary-node
// responsibility for the member-only design: O(M/(N−M) · log N)
// (Section 2.3, plotted in Figure 3).
func ResponsibilityMemberOnly(n, m float64) float64 {
	if m >= n || n <= 1 {
		return math.Inf(1)
	}
	return m / (n - m) * math.Log2(n)
}

// ResponsibilityNonMemberOnly returns the analytic responsibility for the
// non-member-only design: O(M/(N−M) · (log N)²).
func ResponsibilityNonMemberOnly(n, m float64) float64 {
	if m >= n || n <= 1 {
		return math.Inf(1)
	}
	l := math.Log2(n)
	return m / (n - m) * l * l
}

// IdealDepth returns the depth of a perfectly balanced k-way advertisement
// over s registry members: the paper's O(log_k N) bound (footnote to
// Section 2.3.1), counting the root as level 1.
func IdealDepth(s, k int) int {
	if s <= 0 {
		return 1
	}
	if k < 2 {
		return s + 1 // chain
	}
	depth, covered, width := 1, 0, 1
	for covered < s {
		width *= k
		covered += width
		depth++
	}
	return depth
}
