package ldt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bristle/internal/topology"
)

func mkMembers(n int, maxCap float64, rng *rand.Rand) []Member {
	ms := make([]Member, n)
	for i := range ms {
		ms[i] = Member{
			ID:       int32(i + 1),
			Capacity: 1 + math.Floor(rng.Float64()*maxCap),
			Router:   topology.RouterID(rng.Intn(50)),
		}
	}
	return ms
}

func mustBuild(t testing.TB, root Member, reg []Member, p Params) *Tree {
	t.Helper()
	tree, err := Build(root, reg, p)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tree
}

func collectIDs(t *Tree) map[int32]int {
	ids := map[int32]int{}
	t.Walk(func(n *Node) { ids[n.Member.ID]++ })
	return ids
}

func TestBuildContainsExactlyMembers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	root := Member{ID: 0, Capacity: 5, Router: 0}
	reg := mkMembers(20, 10, rng)
	tree := mustBuild(t, root, reg, Params{UnitCost: 1})
	ids := collectIDs(tree)
	if len(ids) != 21 {
		t.Fatalf("tree has %d distinct members, want 21", len(ids))
	}
	for id, count := range ids {
		if count != 1 {
			t.Fatalf("member %d appears %d times", id, count)
		}
	}
	if tree.Size() != 21 {
		t.Fatalf("Size() = %d, want 21", tree.Size())
	}
	if tree.Edges() != 20 {
		t.Fatalf("Edges() = %d, want 20", tree.Edges())
	}
}

func TestMemberOnlyProperty(t *testing.T) {
	// Property: every node in the tree is the root or a registry member —
	// the member-only design (§2.3). Checked over random inputs.
	f := func(seed int64, n uint8, maxCap uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%40) + 1
		cap := float64(maxCap%15) + 1
		root := Member{ID: -1, Capacity: cap, Router: 0}
		reg := mkMembers(count, cap, rng)
		tree, err := Build(root, reg, Params{UnitCost: 1})
		if err != nil {
			return false
		}
		allowed := map[int32]bool{-1: true}
		for _, m := range reg {
			allowed[m.ID] = true
		}
		ok := true
		seen := 0
		tree.Walk(func(nd *Node) {
			seen++
			if !allowed[nd.Member.ID] {
				ok = false
			}
		})
		return ok && seen == count+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestOverloadedRootDelegatesToSingleChild(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	root := Member{ID: 0, Capacity: 1, Used: 1} // Avail = 0 ⇒ overloaded
	reg := mkMembers(10, 8, rng)
	tree := mustBuild(t, root, reg, Params{UnitCost: 1})
	if len(tree.Root.Children) != 1 {
		t.Fatalf("overloaded root has %d children, want 1", len(tree.Root.Children))
	}
	// The single child must be the registry node with maximum capacity.
	maxCap := 0.0
	for _, m := range reg {
		if m.Capacity > maxCap {
			maxCap = m.Capacity
		}
	}
	if got := tree.Root.Children[0].Member.Capacity; got != maxCap {
		t.Fatalf("delegate capacity %v, want max %v", got, maxCap)
	}
}

func TestFanoutBoundedByAvailableCapacity(t *testing.T) {
	// k×v ≤ Avail < (k+1)×v: a node may have at most ⌊Avail/v⌋ children.
	rng := rand.New(rand.NewSource(3))
	root := Member{ID: 0, Capacity: 7.5} // Avail 7.5, v=2 ⇒ k=3
	reg := mkMembers(30, 10, rng)
	tree := mustBuild(t, root, reg, Params{UnitCost: 2})
	if got := len(tree.Root.Children); got > 3 {
		t.Fatalf("root fanout %d exceeds ⌊7.5/2⌋=3", got)
	}
	tree.Walk(func(n *Node) {
		k := int(math.Floor(n.Member.Avail() / 2))
		if k < 1 {
			k = 1 // overloaded nodes delegate to exactly one child
		}
		if len(n.Children) > k {
			t.Fatalf("node %d fanout %d exceeds bound %d", n.Member.ID, len(n.Children), k)
		}
	})
}

func TestPartitionSizesNearEqual(t *testing.T) {
	// Figure 4 guarantees the delegated subsets have nearly equal sizes.
	rng := rand.New(rand.NewSource(4))
	root := Member{ID: 0, Capacity: 6} // k = 6 with v=1
	reg := mkMembers(40, 10, rng)
	tree := mustBuild(t, root, reg, Params{UnitCost: 1})
	sizes := make([]int, 0, len(tree.Root.Children))
	for _, c := range tree.Root.Children {
		sizes = append(sizes, c.Assigned+1)
	}
	min, max := sizes[0], sizes[0]
	for _, s := range sizes {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max-min > 1 {
		t.Fatalf("partition sizes not near-equal: %v", sizes)
	}
}

func TestHeadsAreMostCapable(t *testing.T) {
	// The direct children of a node must be the top-k most capable
	// members of the delegated set.
	rng := rand.New(rand.NewSource(5))
	root := Member{ID: 0, Capacity: 4}
	reg := mkMembers(25, 10, rng)
	tree := mustBuild(t, root, reg, Params{UnitCost: 1})
	k := len(tree.Root.Children)
	caps := make([]float64, len(reg))
	for i, m := range reg {
		caps[i] = m.Capacity
	}
	// k-th largest capacity:
	sorted := append([]float64{}, caps...)
	for i := 0; i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] > sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	kth := sorted[k-1]
	for _, c := range tree.Root.Children {
		if c.Member.Capacity < kth {
			t.Fatalf("child capacity %v below k-th largest %v", c.Member.Capacity, kth)
		}
	}
}

func TestDepthShrinksWithCapacity(t *testing.T) {
	// Figure 8(a): light workload (high capacity) ⇒ shallow trees; heavy
	// workload (capacity 1, k=1 chains) ⇒ deep trees.
	rng := rand.New(rand.NewSource(6))
	reg := mkMembers(15, 1, rng) // capacity 1 everywhere
	for i := range reg {
		reg[i].Capacity = 1
	}
	root := Member{ID: 0, Capacity: 1}
	chain := mustBuild(t, root, reg, Params{UnitCost: 1})

	for i := range reg {
		reg[i].Capacity = 15
	}
	root.Capacity = 15
	bushy := mustBuild(t, root, reg, Params{UnitCost: 1})

	if chain.Depth() <= bushy.Depth() {
		t.Fatalf("chain depth %d not deeper than bushy depth %d", chain.Depth(), bushy.Depth())
	}
	if bushy.Depth() > 3 {
		t.Fatalf("capacity-15 tree over 15 members should be ≤3 deep, got %d", bushy.Depth())
	}
	if chain.Depth() != 16 {
		t.Fatalf("capacity-1 tree should be a 16-level chain, got %d", chain.Depth())
	}
}

func TestLevelHistogramSumsToSize(t *testing.T) {
	f := func(seed int64, n, maxCap uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%50) + 1
		cap := float64(maxCap%15) + 1
		root := Member{ID: -1, Capacity: cap}
		tree, err := Build(root, mkMembers(count, cap, rng), Params{UnitCost: 1})
		if err != nil {
			return false
		}
		sum := 0
		for _, c := range tree.LevelHistogram() {
			sum += c
		}
		return sum == tree.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAssignedMatchesSubtreeSize(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	root := Member{ID: 0, Capacity: 5}
	tree := mustBuild(t, root, mkMembers(33, 9, rng), Params{UnitCost: 1})
	var check func(n *Node) int
	check = func(n *Node) int {
		size := 1
		for _, c := range n.Children {
			size += check(c)
		}
		if n.Assigned != size-1 {
			t.Fatalf("node %d Assigned=%d but subtree size-1=%d", n.Member.ID, n.Assigned, size-1)
		}
		return size
	}
	check(tree.Root)
}

func TestBuildRejectsBadParams(t *testing.T) {
	if _, err := Build(Member{}, nil, Params{UnitCost: 0}); err == nil {
		t.Error("UnitCost=0 accepted")
	}
	if _, err := Build(Member{}, nil, Params{UnitCost: 1, Locality: true}); err == nil {
		t.Error("Locality without Dist accepted")
	}
}

func TestEmptyRegistry(t *testing.T) {
	tree := mustBuild(t, Member{ID: 1, Capacity: 3}, nil, Params{UnitCost: 1})
	if tree.Size() != 1 || tree.Depth() != 1 || tree.Edges() != 0 {
		t.Fatalf("singleton tree wrong: size=%d depth=%d", tree.Size(), tree.Depth())
	}
	if tree.EdgeCost(func(a, b topology.RouterID) float64 { return 1 }) != 0 {
		t.Fatal("singleton tree has nonzero edge cost")
	}
}

func TestLocalityReducesEdgeCost(t *testing.T) {
	// Members cluster at two distant routers; locality-aware partitioning
	// should wire same-cluster members together and beat round-robin.
	dist := func(a, b topology.RouterID) float64 {
		if a == b {
			return 0
		}
		da, db := a/100, b/100
		if da == db {
			return 1 // same cluster
		}
		return 100 // cross-cluster
	}
	rng := rand.New(rand.NewSource(8))
	reg := make([]Member, 24)
	for i := range reg {
		cluster := topology.RouterID((i % 2) * 100)
		reg[i] = Member{
			ID:       int32(i + 1),
			Capacity: 2 + math.Floor(rng.Float64()*6),
			Router:   cluster + topology.RouterID(rng.Intn(10)),
		}
	}
	root := Member{ID: 0, Capacity: 3, Router: 0}

	plain := mustBuild(t, root, reg, Params{UnitCost: 1})
	local := mustBuild(t, root, reg, Params{UnitCost: 1, Locality: true, Dist: dist})

	cPlain := plain.EdgeCost(dist)
	cLocal := local.EdgeCost(dist)
	if cLocal >= cPlain {
		t.Fatalf("locality cost %v not below round-robin cost %v", cLocal, cPlain)
	}
	// Locality must not break the member-only guarantee or sizes.
	if local.Size() != plain.Size() {
		t.Fatalf("locality changed tree size: %d vs %d", local.Size(), plain.Size())
	}
}

func TestLocalityPreservesBalance(t *testing.T) {
	dist := func(a, b topology.RouterID) float64 { return math.Abs(float64(a - b)) }
	rng := rand.New(rand.NewSource(9))
	reg := mkMembers(30, 8, rng)
	root := Member{ID: 0, Capacity: 5}
	tree := mustBuild(t, root, reg, Params{UnitCost: 1, Locality: true, Dist: dist})
	sizes := []int{}
	for _, c := range tree.Root.Children {
		sizes = append(sizes, c.Assigned+1)
	}
	min, max := sizes[0], sizes[0]
	for _, s := range sizes {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max-min > 1 {
		t.Fatalf("locality partition sizes unbalanced: %v", sizes)
	}
}

func TestResponsibilityFormulas(t *testing.T) {
	n := math.Pow(2, 20) // the paper's N = 1,048,576
	logN := 20.0
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.8} {
		m := frac * n
		member := ResponsibilityMemberOnly(n, m)
		nonMember := ResponsibilityNonMemberOnly(n, m)
		wantMember := m / (n - m) * logN
		if math.Abs(member-wantMember) > 1e-9 {
			t.Errorf("member-only resp(%v) = %v, want %v", frac, member, wantMember)
		}
		if math.Abs(nonMember-member*logN) > 1e-6 {
			t.Errorf("non-member resp should be log N × member-only: %v vs %v", nonMember, member*logN)
		}
	}
	// As M→N the responsibility explodes (the Figure 3 blow-up).
	if !math.IsInf(ResponsibilityMemberOnly(100, 100), 1) {
		t.Error("M=N should yield infinite responsibility")
	}
}

func TestResponsibilityMonotoneInM(t *testing.T) {
	f := func(a, b uint16) bool {
		n := 4096.0
		m1 := float64(a%4000) + 1
		m2 := float64(b%4000) + 1
		if m1 > m2 {
			m1, m2 = m2, m1
		}
		return ResponsibilityMemberOnly(n, m1) <= ResponsibilityMemberOnly(n, m2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIdealDepth(t *testing.T) {
	cases := []struct{ s, k, want int }{
		{0, 3, 1},
		{1, 3, 2},
		{3, 3, 2},
		{4, 3, 3},  // 3 + 9 covers 12 ≥ 4 at depth 3
		{12, 3, 3}, // 3+9 = 12 exactly
		{13, 3, 4},
		{5, 1, 6}, // chain
	}
	for _, c := range cases {
		if got := IdealDepth(c.s, c.k); got != c.want {
			t.Errorf("IdealDepth(%d,%d) = %d, want %d", c.s, c.k, got, c.want)
		}
	}
}

func TestDepthNearIdealForUniformCapacity(t *testing.T) {
	// With uniform capacity c (so k = c everywhere) the built tree's depth
	// should equal the ideal ⌈log_k⌉ depth: the O(log_k N) claim.
	for _, c := range []float64{2, 3, 5} {
		reg := make([]Member, 40)
		for i := range reg {
			reg[i] = Member{ID: int32(i + 1), Capacity: c}
		}
		root := Member{ID: 0, Capacity: c}
		tree := mustBuild(t, root, reg, Params{UnitCost: 1})
		want := IdealDepth(40, int(c))
		if tree.Depth() != want {
			t.Errorf("capacity %v: depth %d, ideal %d", c, tree.Depth(), want)
		}
	}
}

func TestUsedCapacityReducesFanout(t *testing.T) {
	reg := mkMembers(20, 5, rand.New(rand.NewSource(10)))
	fresh := Member{ID: 0, Capacity: 6}
	busy := Member{ID: 0, Capacity: 6, Used: 4}
	t1 := mustBuild(t, fresh, reg, Params{UnitCost: 1})
	t2 := mustBuild(t, busy, reg, Params{UnitCost: 1})
	if len(t2.Root.Children) >= len(t1.Root.Children) {
		t.Fatalf("busy root fanout %d not below fresh fanout %d",
			len(t2.Root.Children), len(t1.Root.Children))
	}
}

func TestDeterministicConstruction(t *testing.T) {
	rng1 := rand.New(rand.NewSource(11))
	rng2 := rand.New(rand.NewSource(11))
	reg1 := mkMembers(25, 9, rng1)
	reg2 := mkMembers(25, 9, rng2)
	root := Member{ID: 0, Capacity: 4}
	t1 := mustBuild(t, root, reg1, Params{UnitCost: 1})
	t2 := mustBuild(t, root, reg2, Params{UnitCost: 1})
	var shape func(n *Node) string
	shape = func(n *Node) string {
		s := string(rune(n.Member.ID)) + "("
		for _, c := range n.Children {
			s += shape(c)
		}
		return s + ")"
	}
	if shape(t1.Root) != shape(t2.Root) {
		t.Fatal("identical inputs produced different trees")
	}
}
