package ldt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bristle/internal/topology"
)

// shapeString serializes a tree for structural comparison.
func shapeString(t *Tree) string {
	var b []byte
	var rec func(n *Node)
	rec = func(n *Node) {
		b = append(b, byte('('))
		b = append(b, []byte{byte(n.Member.ID), byte(n.Member.ID >> 8)}...)
		for _, c := range n.Children {
			rec(c)
		}
		b = append(b, byte(')'))
	}
	rec(t.Root)
	return string(b)
}

// TestPropertyPermutationInvariance: the Figure 4 algorithm sorts the
// registry first, so tree shape must not depend on input order.
func TestPropertyPermutationInvariance(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%30) + 1
		reg := mkMembers(count, 10, rng)
		root := Member{ID: -1, Capacity: 5}

		t1, err := Build(root, reg, Params{UnitCost: 1})
		if err != nil {
			return false
		}
		perm := make([]Member, count)
		for i, j := range rng.Perm(count) {
			perm[i] = reg[j]
		}
		t2, err := Build(root, perm, Params{UnitCost: 1})
		if err != nil {
			return false
		}
		return shapeString(t1) == shapeString(t2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyEdgeCostNonNegativeAndAdditive: edge cost over any metric
// is the sum over edges; with a constant metric it equals Edges()×c.
func TestPropertyEdgeCostNonNegativeAndAdditive(t *testing.T) {
	f := func(seed int64, n, cRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%25) + 1
		c := float64(cRaw%9) + 1
		tree, err := Build(Member{ID: -1, Capacity: 4}, mkMembers(count, 8, rng), Params{UnitCost: 1})
		if err != nil {
			return false
		}
		got := tree.EdgeCost(func(a, b topology.RouterID) float64 { return c })
		want := float64(tree.Edges()) * c
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDepthBounds: depth is between the ideal balanced depth for
// the maximum capacity and the chain length.
func TestPropertyDepthBounds(t *testing.T) {
	f := func(seed int64, n, capRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%40) + 1
		maxCap := int(capRaw%10) + 1
		reg := mkMembers(count, float64(maxCap), rng)
		tree, err := Build(Member{ID: -1, Capacity: float64(maxCap)}, reg, Params{UnitCost: 1})
		if err != nil {
			return false
		}
		d := tree.Depth()
		// Lower bound: a tree where everyone had the max capacity.
		lower := IdealDepth(count, maxCap)
		// Upper bound: the full chain.
		upper := count + 1
		return d >= lower && d <= upper
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLocalityNeverChangesMembership: locality-aware partitioning
// reshapes the tree but must deliver to exactly the same member set.
func TestPropertyLocalityNeverChangesMembership(t *testing.T) {
	dist := func(a, b topology.RouterID) float64 {
		d := float64(a - b)
		if d < 0 {
			d = -d
		}
		return d
	}
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%30) + 1
		reg := mkMembers(count, 8, rng)
		root := Member{ID: -1, Capacity: 4}
		plain, err := Build(root, reg, Params{UnitCost: 1})
		if err != nil {
			return false
		}
		local, err := Build(root, reg, Params{UnitCost: 1, Locality: true, Dist: dist})
		if err != nil {
			return false
		}
		ids := func(tr *Tree) map[int32]bool {
			m := map[int32]bool{}
			tr.Walk(func(nd *Node) { m[nd.Member.ID] = true })
			return m
		}
		a, b := ids(plain), ids(local)
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
