package live

// This file is the LDT push path: UpdateRegistryContext (the paper's
// Figure 4 fan-out to registered correspondents) and advertise (the
// recursive re-delegation each tree level performs), both feeding a
// coalescing per-node update queue.
//
// The queue is the write-side dual of the resolve path's singleflight:
// where N concurrent resolvers share one _discovery, N pending pushes of
// the same subject to the same recipient collapse to one frame carrying
// the newest epoch. A mobile node that moves A→B→C faster than its tree
// drains sends C — B is subsumed in the queue, never on the wire — and a
// recipient can therefore never be pushed backwards. A single flusher
// goroutine drains the queue; its sends ride the pooled per-peer writer
// (pool.go writeLoop), so frames queued back-to-back for one recipient
// batch onto one connection write cycle. All flusher I/O is bounded by
// the node's lifecycle context: Close cancels it and the flusher exits
// mid-fan-out instead of stalling shutdown behind a slow subtree.

import (
	"context"
	"sort"
	"sync"
	"time"

	"bristle/internal/hashkey"
	"bristle/internal/ldt"
	"bristle/internal/wire"
)

// updateKey identifies a coalescing slot: one pending frame per
// (recipient, subject) pair.
type updateKey struct {
	addr    string
	subject hashkey.Key
}

// pendingUpdate is one queued LDT push. done closes when the frame has
// been handed to the transport (or the queue closed), so a rebind can
// await its own fan-out without pinning the frame that actually ships —
// coalescing may have replaced it with a newer one.
type pendingUpdate struct {
	addr string
	msg  *wire.Message
	done chan struct{}
}

// updateQueue coalesces pending LDT pushes until the flusher takes them.
type updateQueue struct {
	mu      sync.Mutex
	pending map[updateKey]*pendingUpdate
	order   []updateKey // FIFO of live slots
	wake    chan struct{}
	closed  bool
}

func newUpdateQueue() *updateQueue {
	return &updateQueue{
		pending: make(map[updateKey]*pendingUpdate),
		wake:    make(chan struct{}, 1),
	}
}

// closedChan is returned by enqueue after close: waiters proceed
// immediately rather than blocking on a push that will never ship.
var closedChan = func() chan struct{} {
	c := make(chan struct{})
	close(c)
	return c
}()

// enqueue queues msg for addr, coalescing against any pending push of
// the same subject to the same recipient: an older-epoch msg is subsumed
// by the pending one, a newer-epoch msg replaces it wholesale (its
// delegation partition supersedes), and an equal-epoch msg unions the
// delegated entries (two pushes of the same move must still reach both
// subtrees). Returns the done channel to await and whether the call
// coalesced into an existing slot.
func (q *updateQueue) enqueue(addr string, msg *wire.Message) (<-chan struct{}, bool) {
	k := updateKey{addr: addr, subject: msg.Self.Key}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return closedChan, false
	}
	if p, ok := q.pending[k]; ok {
		switch {
		case msg.Self.Epoch < p.msg.Self.Epoch:
			// Stale before it ever shipped: the pending frame already
			// carries a later move.
		case msg.Self.Epoch > p.msg.Self.Epoch:
			p.msg = msg
		default:
			p.msg = mergeDelegations(p.msg, msg)
		}
		return p.done, true
	}
	p := &pendingUpdate{addr: addr, msg: msg, done: make(chan struct{})}
	q.pending[k] = p
	q.order = append(q.order, k)
	select {
	case q.wake <- struct{}{}:
	default:
	}
	return p.done, false
}

// mergeDelegations unions the delegated entries of two equal-epoch
// frames (newest-entry-wins per key via epoch). A fresh Message is
// built so neither input is mutated.
func mergeDelegations(a, b *wire.Message) *wire.Message {
	out := &wire.Message{Type: a.Type, Self: a.Self}
	seen := make(map[hashkey.Key]int, len(a.Entries)+len(b.Entries))
	for _, e := range a.Entries {
		seen[e.Key] = len(out.Entries)
		out.Entries = append(out.Entries, e)
	}
	for _, e := range b.Entries {
		if i, ok := seen[e.Key]; ok {
			if e.Epoch > out.Entries[i].Epoch {
				out.Entries[i] = e
			}
			continue
		}
		seen[e.Key] = len(out.Entries)
		out.Entries = append(out.Entries, e)
	}
	return out
}

// take blocks until at least one pending push exists (returning the
// whole backlog in FIFO order) or the queue closes (returning nil).
// Taken items are no longer coalescing targets: a new enqueue for the
// same slot starts a fresh frame.
func (q *updateQueue) take() []*pendingUpdate {
	for {
		q.mu.Lock()
		if len(q.order) > 0 {
			batch := make([]*pendingUpdate, 0, len(q.order))
			for _, k := range q.order {
				if p, ok := q.pending[k]; ok {
					batch = append(batch, p)
					delete(q.pending, k)
				}
			}
			q.order = q.order[:0]
			q.mu.Unlock()
			return batch
		}
		if q.closed {
			q.mu.Unlock()
			return nil
		}
		q.mu.Unlock()
		<-q.wake
	}
}

// close shuts the queue: pending (untaken) pushes are abandoned with
// their done channels closed, enqueue becomes a no-op, and the flusher's
// take returns nil once the backlog it already holds is flushed.
func (q *updateQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	for k, p := range q.pending {
		close(p.done)
		delete(q.pending, k)
	}
	q.order = q.order[:0]
	// Safe: enqueue checks closed under this same mutex before sending.
	close(q.wake)
}

// enqueueUpdate queues one LDT push and lazily starts the flusher.
func (n *Node) enqueueUpdate(addr string, msg *wire.Message) <-chan struct{} {
	n.ensureFlusher()
	done, coalesced := n.updq.enqueue(addr, msg)
	if coalesced {
		n.count("updates.coalesced")
	}
	return done
}

// ensureFlusher starts the update flusher goroutine on first use. Lazy
// start keeps nodes that never push updates goroutine-free and — because
// it checks stopped under lifeMu — guarantees no flusher is spawned
// after Close has begun (Close sets stopped before waiting on wg).
func (n *Node) ensureFlusher() {
	n.lifeMu.Lock()
	defer n.lifeMu.Unlock()
	if n.stopped || n.flusherOn {
		return
	}
	n.flusherOn = true
	n.wg.Add(1)
	go n.updateFlusher()
}

// updateFlusher drains the coalescing queue: each round takes the whole
// backlog, groups it by recipient, and ships each recipient's frames
// sequentially over its pooled connection (concurrently across
// recipients). Waiting for a round to finish before taking the next is
// what buys coalescing: pushes arriving while a slow round is in flight
// pile into the queue and merge.
func (n *Node) updateFlusher() {
	defer n.wg.Done()
	for {
		batch := n.updq.take()
		if batch == nil {
			return
		}
		byAddr := make(map[string][]*pendingUpdate)
		var addrs []string
		for _, p := range batch {
			if _, ok := byAddr[p.addr]; !ok {
				addrs = append(addrs, p.addr)
			}
			byAddr[p.addr] = append(byAddr[p.addr], p)
		}
		var fan sync.WaitGroup
		for _, addr := range addrs {
			fan.Add(1)
			go func(addr string, ps []*pendingUpdate) {
				defer fan.Done()
				for _, p := range ps {
					// Bounded by the node's lifecycle, not any caller's
					// deadline: a dead delegate is not an error (§2.3.2 —
					// its subtree recovers through late binding), and a
					// closing node abandons the send instantly.
					if err := n.oneWay(n.runCtx, addr, p.msg); err != nil {
						n.logf("update push to %s failed: %v", addr, err)
					}
					close(p.done)
				}
			}(addr, byAddr[addr])
		}
		fan.Wait()
	}
}

// UpdateRegistryContext pushes this node's current address to every
// registered node through the capacity-aware LDT of Figure 4. The pushes
// go through the coalescing queue — a second move queued before the
// first finished replaces it — and this call waits until its own frames
// (or newer ones that subsumed them) have been handed to the transport,
// or ctx fires. Canonical form of UpdateRegistry (api.go).
func (n *Node) UpdateRegistryContext(ctx context.Context) error {
	now := time.Now()
	// Lapsed registrants miss the push by design.
	if expired := n.registry.sweep(now); expired > 0 {
		n.cfg.Counters.Add("registry.expired", uint64(expired))
	}
	v := n.registry.snapshot()
	members := make([]ldt.Member, 0, len(v.byKey))
	index := make(map[int32]wire.Entry, len(v.byKey))
	i := int32(1)
	for _, r := range v.byKey {
		members = append(members, ldt.Member{ID: i, Capacity: r.entry.Capacity})
		index[i] = r.entry
		i++
	}
	self := n.SelfEntry()
	rootCap := n.cfg.Capacity
	if len(members) == 0 {
		return nil
	}
	sort.Slice(members, func(a, b int) bool { return members[a].ID < members[b].ID })

	tree, err := ldt.Build(ldt.Member{ID: 0, Capacity: rootCap}, members, ldt.Params{UnitCost: 1})
	if err != nil {
		return err
	}
	// Convert the tree's first level into wire delegations: each direct
	// child receives its whole subtree as entries.
	var dones []<-chan struct{}
	for _, child := range tree.Root.Children {
		entry, ok := index[child.Member.ID]
		if !ok {
			continue
		}
		delegated := collectSubtree(child, index)
		msg := &wire.Message{Type: wire.TUpdate, Self: self, Entries: delegated}
		dones = append(dones, n.enqueueUpdate(entry.Addr, msg))
	}
	for _, done := range dones {
		select {
		case <-done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// advertise forwards an update to the heads of a delegated subset,
// re-partitioning by capacity (the receiving node runs Figure 4 on the
// subset it was handed). Fire-and-forget: the frames are queued for the
// flusher and this returns immediately — a handler must never block its
// connection's worker on downstream fan-out.
func (n *Node) advertise(subject wire.Entry, delegated []wire.Entry) {
	if len(delegated) == 0 {
		return
	}
	members := make([]ldt.Member, len(delegated))
	index := make(map[int32]wire.Entry, len(delegated))
	for i, e := range delegated {
		id := int32(i + 1)
		members[i] = ldt.Member{ID: id, Capacity: e.Capacity}
		index[id] = e
	}
	tree, err := ldt.Build(ldt.Member{ID: 0, Capacity: n.cfg.Capacity}, members, ldt.Params{UnitCost: 1})
	if err != nil {
		n.logf("advertise: %v", err)
		return
	}
	for _, child := range tree.Root.Children {
		entry, ok := index[child.Member.ID]
		if !ok {
			continue
		}
		sub := collectSubtree(child, index)
		n.enqueueUpdate(entry.Addr, &wire.Message{Type: wire.TUpdate, Self: subject, Entries: sub})
	}
}

// collectSubtree gathers the wire entries of every node strictly below
// root in the tree (root itself is the recipient).
func collectSubtree(root *ldt.Node, index map[int32]wire.Entry) []wire.Entry {
	var out []wire.Entry
	var rec func(*ldt.Node)
	rec = func(t *ldt.Node) {
		for _, c := range t.Children {
			if e, ok := index[c.Member.ID]; ok {
				out = append(out, e)
			}
			rec(c)
		}
	}
	rec(root)
	return out
}
