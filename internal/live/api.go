package live

// This file is the node's consolidated public surface. The
// context-taking forms are canonical — they observe the caller's
// cancellation and deadline end to end, through retries, backoff pauses,
// dials, and pooled exchanges — and every suffix-less name below is a
// one-line alias over context.Background(). Introspection is likewise
// one method: Stats returns everything the ad-hoc accessors used to
// expose (and more) as a single coherent snapshot.

import (
	"context"
	"fmt"

	"bristle/internal/hashkey"
	"bristle/internal/loccache"
	"bristle/internal/wire"
)

// Resolve is an alias for ResolveContext (resolve.go, the canonical
// form) with the background context.
func (n *Node) Resolve(key hashkey.Key) (string, error) {
	return n.ResolveContext(context.Background(), key)
}

// Discover is an alias for DiscoverContext (resolve.go, the canonical
// form) with the background context.
func (n *Node) Discover(key hashkey.Key) (string, error) {
	return n.DiscoverContext(context.Background(), key)
}

// Publish is an alias for PublishContext (publish.go, the canonical
// form) with the background context.
func (n *Node) Publish() error { return n.PublishContext(context.Background()) }

// Rebind is an alias for RebindContext (node.go, the canonical form)
// with the background context.
func (n *Node) Rebind(listenAddr string) error {
	return n.RebindContext(context.Background(), listenAddr)
}

// UpdateRegistry is an alias for UpdateRegistryContext (advertise.go,
// the canonical form) with the background context.
func (n *Node) UpdateRegistry() error {
	return n.UpdateRegistryContext(context.Background())
}

// JoinVia is an alias for JoinViaContext (the canonical form) with the
// background context.
func (n *Node) JoinVia(bootstrapAddr string) error {
	return n.JoinViaContext(context.Background(), bootstrapAddr)
}

// JoinViaContext contacts a bootstrap node, announces this node, and
// adopts the returned membership. With an Identity configured the join
// carries a signed proof of the node's self-certifying key (join.go);
// with JoinAsObserver it requests the stationary directory without being
// ingested into the bootstrap's ring membership.
func (n *Node) JoinViaContext(ctx context.Context, bootstrapAddr string) error {
	req := &wire.Message{Type: wire.TJoin, Self: n.SelfEntry(), Observer: n.cfg.JoinAsObserver}
	n.joinProof(req)
	resp, err := n.request(ctx, bootstrapAddr, req)
	if err != nil {
		return fmt.Errorf("live: join via %s: %w", bootstrapAddr, err)
	}
	if resp.Type != wire.TJoinResp || !resp.Found {
		return fmt.Errorf("live: join rejected by %s", bootstrapAddr)
	}
	for _, e := range resp.Entries {
		n.members.merge(n.key, e)
	}
	return nil
}

// RegisterWith is an alias for RegisterWithContext (the canonical form)
// with the background context.
func (n *Node) RegisterWith(targetAddr string) error {
	return n.RegisterWithContext(context.Background(), targetAddr)
}

// RegisterWithContext records this node's interest in the movement of the
// node currently reachable at targetAddr.
func (n *Node) RegisterWithContext(ctx context.Context, targetAddr string) error {
	resp, err := n.request(ctx, targetAddr, &wire.Message{Type: wire.TRegister, Self: n.SelfEntry()})
	if err != nil {
		return fmt.Errorf("live: register with %s: %w", targetAddr, err)
	}
	if resp.Type != wire.TRegisterAck || !resp.Found {
		return fmt.Errorf("live: registration rejected by %s", targetAddr)
	}
	return nil
}

// Ping is an alias for PingContext (the canonical form) with the
// background context.
func (n *Node) Ping(addr string) error { return n.PingContext(context.Background(), addr) }

// PingContext checks liveness of a peer address.
func (n *Node) PingContext(ctx context.Context, addr string) error {
	resp, err := n.request(ctx, addr, &wire.Message{Type: wire.TPing})
	if err != nil {
		return err
	}
	if resp.Type != wire.TPong {
		return fmt.Errorf("live: unexpected ping response %v", resp.Type)
	}
	return nil
}

// CachedAddr returns this node's cached address for key, if its lease is
// still fresh. A read-only probe: it neither promotes the entry nor
// records cache metrics.
func (n *Node) CachedAddr(key hashkey.Key) (string, bool) {
	if n.loc == nil {
		return "", false
	}
	addr, state := n.loc.Peek(key)
	if state != loccache.Fresh {
		return "", false
	}
	return addr, true
}

// Stats is a coherent point-in-time snapshot of a node's observable
// state — identity, binding, table sizes, suspicion, and the counter
// registry — replacing the former piecemeal accessors (Epoch,
// PoolSessions, CacheEntries, Suspects).
type Stats struct {
	// Key is the node's hash key; Addr and Epoch its current binding.
	Key   hashkey.Key
	Addr  string
	Epoch uint64
	// Peers is the size of the membership view (including self).
	Peers int
	// Registrations is the size of R(self), including not-yet-swept
	// lapsed leases.
	Registrations int
	// OwnedKeys counts the resource keys published at this node's address
	// beyond its identity key.
	OwnedKeys int
	// StoreRecords counts the location records this node holds as an
	// owner/replica (including not-yet-lapsed leases).
	StoreRecords int
	// CacheEntries counts the location cache's entries (0 when the cache
	// is disabled).
	CacheEntries int
	// PoolSessions counts the open pooled peer sessions (0 when pooling
	// is disabled).
	PoolSessions int
	// Suspects lists the peer addresses whose circuit breakers are open
	// or half-open — the peers this node currently routes around. Sorted.
	Suspects []string
	// Region is the node's configured locality label ("" when unset).
	Region string
	// PeerRTTs is the per-peer round-trip table behind latency-ordered
	// replica selection: each known peer's smoothed RTT (an EWMA over this
	// node's own exchanges with it — no probe traffic), its sample count,
	// and whether its breaker currently marks it suspect. Ascending by RTT.
	PeerRTTs []PeerRTT
	// Counters is a snapshot of the node's counter registry (empty when
	// no Counters were configured).
	Counters map[string]uint64
}

// Stats returns a snapshot of the node's observable state. Safe to call
// concurrently with any operation; each field is individually consistent.
func (n *Node) Stats() Stats {
	b := n.self.Load()
	s := Stats{
		Key:           n.key,
		Addr:          b.addr,
		Epoch:         b.epoch,
		Peers:         n.members.size(),
		Registrations: n.registry.size(),
		StoreRecords:  n.store.size(),
		Suspects:      n.peersTbl.suspectAddrs(),
		Region:        n.cfg.Region,
		PeerRTTs:      n.peerRTTs(),
		Counters:      n.cfg.Counters.Snapshot(),
	}
	n.ownedMu.Lock()
	s.OwnedKeys = len(n.owned)
	n.ownedMu.Unlock()
	if n.loc != nil {
		s.CacheEntries = n.loc.Len()
	}
	if n.pool != nil {
		s.PoolSessions = n.pool.sessionCount()
	}
	return s
}

// CountersDelta returns the per-counter increase since prev (an earlier
// Stats snapshot), omitting counters that did not change — the shape a
// periodic stats reporter wants.
func (s Stats) CountersDelta(prev Stats) map[string]uint64 {
	out := make(map[string]uint64)
	for k, v := range s.Counters {
		if p, ok := prev.Counters[k]; ok && p <= v {
			if v > p {
				out[k] = v - p
			}
			continue
		}
		if v > 0 {
			out[k] = v
		}
	}
	return out
}
