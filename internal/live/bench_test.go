package live

// Benchmarks for the live stack's two hot paths.
//
// BenchmarkRPC* contrast the two RPC transports: a fresh dial per
// exchange (the pre-pool behaviour, kept as the saturation fallback)
// versus multiplexing every exchange over one pooled connection.
// Run with: go test -bench=BenchmarkRPC -benchmem ./internal/live
//
// BenchmarkDiscover and BenchmarkResolve* contrast address resolution
// with and without the lease-aware location cache: Discover always pays
// a network round trip; ResolveHot answers from a fresh lease,
// ResolveStale serves optimistically while revalidating, ResolveColdMiss
// pays the network plus the cache fill. `make bench` records these in
// BENCH_resolve.json for cross-PR comparison.
import (
	"context"
	"fmt"
	"testing"
	"time"

	"bristle/internal/hashkey"
	"bristle/internal/metrics"
	"bristle/internal/transport"
	"bristle/internal/wire"
)

// benchPair starts a ping server and returns a client node plus the
// server address. Retries are disabled: a benchmark exchange either works
// or the benchmark should fail loudly.
func benchPair(b *testing.B, pooled bool) (*Node, string) {
	b.Helper()
	mem := transport.NewMem()
	server := NewNode(Config{Name: "bench-server", Capacity: 2}, mem)
	if err := server.Start(""); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { server.Close() })

	cfg := Config{Name: "bench-client", Capacity: 1, RetryAttempts: 1}
	cfg.Pool.Disabled = !pooled
	client := NewNode(cfg, mem)
	b.Cleanup(func() { client.Close() })
	return client, server.Addr()
}

func BenchmarkRPCSequentialDial(b *testing.B) {
	client, addr := benchPair(b, false)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.PingContext(ctx, addr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRPCPooled(b *testing.B) {
	client, addr := benchPair(b, true)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.PingContext(ctx, addr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRPCSequentialDialParallel(b *testing.B) {
	client, addr := benchPair(b, false)
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := client.PingContext(ctx, addr); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkRPCPooledParallel(b *testing.B) {
	client, addr := benchPair(b, true)
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := client.PingContext(ctx, addr); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRPCPooledRaw measures the pool's round trip without the
// breaker/retry wrapping — the mux floor itself.
func BenchmarkRPCPooledRaw(b *testing.B) {
	client, addr := benchPair(b, true)
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := client.pool.roundTrip(ctx, addr, &wire.Message{Type: wire.TPing}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// resolveBench starts a two-server ring with a published target record
// and returns a warmed client plus the target's key and address.
func resolveBench(b *testing.B) (*Node, hashkey.Key, string) {
	b.Helper()
	mem := transport.NewMem()
	var servers []*Node
	for _, name := range []string{"bench-a", "bench-b"} {
		nd := NewNode(Config{Name: name, Capacity: 4, RetryAttempts: 1}, mem)
		if err := nd.Start(""); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { nd.Close() })
		servers = append(servers, nd)
	}
	client := NewNode(Config{Name: "bench-resolver", Capacity: 1, RetryAttempts: 1}, mem)
	if err := client.Start(""); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { client.Close() })
	for _, nd := range append(servers[1:], client) {
		if err := nd.JoinVia(servers[0].Addr()); err != nil {
			b.Fatal(err)
		}
	}
	target := servers[0]
	if err := target.Publish(); err != nil {
		b.Fatal(err)
	}
	return client, target.Key(), target.Addr()
}

// BenchmarkDiscover is the cold baseline: every resolution is a network
// _discovery round trip (forced late binding) — what every lookup cost
// before the location cache existed.
func BenchmarkDiscover(b *testing.B) {
	client, key, _ := resolveBench(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.DiscoverContext(ctx, key); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResolveHot is the steady state the cache buys: a fresh lease
// answers every resolve with one sharded map read — no network, no
// shared protocol lock.
func BenchmarkResolveHot(b *testing.B) {
	client, key, _ := resolveBench(b)
	ctx := context.Background()
	if _, err := client.ResolveContext(ctx, key); err != nil {
		b.Fatal(err) // warm the cache
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.ResolveContext(ctx, key); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResolveHotParallel: the hot path under contention — many
// goroutines resolving the same key concurrently.
func BenchmarkResolveHotParallel(b *testing.B) {
	client, key, _ := resolveBench(b)
	ctx := context.Background()
	if _, err := client.ResolveContext(ctx, key); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := client.ResolveContext(ctx, key); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkResolveStale measures stale-while-revalidate: the lease has
// lapsed, so each resolve serves the stale address immediately and (at
// most once at a time) launches a background refresh flight.
func BenchmarkResolveStale(b *testing.B) {
	client, key, addr := resolveBench(b)
	ctx := context.Background()
	client.loc.Put(key, addr, time.Nanosecond)
	time.Sleep(time.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := client.ResolveContext(ctx, key)
		if err != nil {
			b.Fatal(err)
		}
		// A background refresh may freshen the entry mid-run; re-stale it
		// outside the interesting path only when that happened.
		if _, ok := client.CachedAddr(key); ok {
			b.StopTimer()
			client.loc.Put(key, got, time.Nanosecond)
			b.StartTimer()
		}
	}
}

// BenchmarkResolveColdMiss: the worst case with the cache on — every
// iteration misses (the entry is invalidated each time) and pays the
// singleflight + network + fill.
func BenchmarkResolveColdMiss(b *testing.B) {
	client, key, _ := resolveBench(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		client.loc.Invalidate(key)
		if _, err := client.ResolveContext(ctx, key); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPublishCluster starts three stationary replicas plus one mobile
// publisher that owns ownedKeys resource records beyond its identity key.
func benchPublishCluster(b *testing.B, ownedKeys int) (*Node, *metrics.Counters) {
	b.Helper()
	counters := metrics.NewCounters()
	mem := transport.NewMem()
	var servers []*Node
	for _, name := range []string{"bench-r1", "bench-r2", "bench-r3"} {
		nd := NewNode(Config{Name: name, Capacity: 4, RetryAttempts: 1}, mem)
		if err := nd.Start(""); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { nd.Close() })
		servers = append(servers, nd)
	}
	pub := NewNode(Config{Name: "bench-pub", Capacity: 2, Mobile: true, RetryAttempts: 1, Counters: counters}, mem)
	if err := pub.Start(""); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { pub.Close() })
	for _, nd := range append(servers[1:], pub) {
		if err := nd.JoinVia(servers[0].Addr()); err != nil {
			b.Fatal(err)
		}
	}
	keys := make([]hashkey.Key, ownedKeys)
	for i := range keys {
		keys[i] = hashkey.FromName(fmt.Sprintf("bench-obj-%d", i))
	}
	pub.OwnKeys(keys...)
	return pub, counters
}

// benchmarkPublishBatch measures one full publication of the publisher's
// record set (1, 100, or 10k records) and reports the measured RPC count
// per publish — the tentpole's O(replicas) claim as a recorded metric:
// rpcs/op must stay ~constant (≤ one frame chunk per distinct replica
// address) while records/op grows 10000×. `make bench` records these in
// BENCH_publish.json.
func benchmarkPublishBatch(b *testing.B, ownedKeys int) {
	pub, counters := benchPublishCluster(b, ownedKeys)
	ctx := context.Background()
	before := counters.Get("publish.rpcs")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pub.PublishContext(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	rpcs := counters.Get("publish.rpcs") - before
	b.ReportMetric(float64(rpcs)/float64(b.N), "rpcs/op")
}

func BenchmarkPublishBatch1(b *testing.B)   { benchmarkPublishBatch(b, 0) }
func BenchmarkPublishBatch100(b *testing.B) { benchmarkPublishBatch(b, 99) }
func BenchmarkPublishBatch10k(b *testing.B) { benchmarkPublishBatch(b, 9999) }

// sinkEntries keeps the compiler from eliding the registry reads below.
var sinkEntries []wire.Entry

// BenchmarkPublishIngestParallel drives the server-side batch ingest path
// (handlePublishBatch) from all cores at once against a bare node — the
// hot serve loop as the wire dispatch runs it, minus the transport. The
// steady state re-ingests a known batch (same addresses, same epoch):
// every record overwrites its existing shard slot and the membership
// fast path short-circuits, so the path must report 0 allocs/op. `make
// bench` records this in BENCH_publish.json and `make bench-gate`
// enforces the zero.
func BenchmarkPublishIngestParallel(b *testing.B) {
	n := NewNode(Config{Name: "bench-ingest", Capacity: 4}, transport.NewMem())
	if err := n.Start(""); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { n.Close() })

	self := wire.Entry{Key: hashkey.FromName("bench-mob"), Addr: "mem:bench-mob", Capacity: 2, Mobile: true, Epoch: 7}
	entries := make([]wire.Entry, 64)
	for i := range entries {
		entries[i] = wire.Entry{Key: hashkey.FromName(fmt.Sprintf("bench-ing-%d", i)), Addr: self.Addr, Epoch: self.Epoch}
	}
	msg := &wire.Message{Type: wire.TPublishBatch, Self: self, Entries: entries}
	n.handlePublishBatch(msg) // warm: all slots exist, membership knows the publisher

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n.handlePublishBatch(msg)
		}
	})
}

// BenchmarkRegistryReadParallel reads R(self) from all cores while the
// table sits behind its copy-on-write snapshot: the reads share no lock
// with each other or with writers, so throughput must scale with cores
// instead of serializing on a node-global mutex as the monolithic node
// did.
func BenchmarkRegistryReadParallel(b *testing.B) {
	n := NewNode(Config{Name: "bench-registry", Capacity: 4}, transport.NewMem())
	if err := n.Start(""); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { n.Close() })
	for i := 0; i < 64; i++ {
		e := wire.Entry{Key: hashkey.FromName(fmt.Sprintf("bench-reg-%d", i)), Addr: fmt.Sprintf("mem:reg-%d", i), Capacity: 1}
		n.registry.put(e.Key, registration{entry: e})
	}

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			sinkEntries = n.Registry()
		}
	})
}
