package live

// Benchmarks for the live stack's two hot paths.
//
// BenchmarkRPC* contrast the two RPC transports: a fresh dial per
// exchange (the pre-pool behaviour, kept as the saturation fallback)
// versus multiplexing every exchange over one pooled connection.
// Run with: go test -bench=BenchmarkRPC -benchmem ./internal/live
//
// BenchmarkDiscover and BenchmarkResolve* contrast address resolution
// with and without the lease-aware location cache: Discover always pays
// a network round trip; ResolveHot answers from a fresh lease,
// ResolveStale serves optimistically while revalidating, ResolveColdMiss
// pays the network plus the cache fill. `make bench` records these in
// BENCH_resolve.json for cross-PR comparison.
import (
	"context"
	"testing"
	"time"

	"bristle/internal/hashkey"
	"bristle/internal/transport"
	"bristle/internal/wire"
)

// benchPair starts a ping server and returns a client node plus the
// server address. Retries are disabled: a benchmark exchange either works
// or the benchmark should fail loudly.
func benchPair(b *testing.B, pooled bool) (*Node, string) {
	b.Helper()
	mem := transport.NewMem()
	server := NewNode(Config{Name: "bench-server", Capacity: 2}, mem)
	if err := server.Start(""); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { server.Close() })

	cfg := Config{Name: "bench-client", Capacity: 1, RetryAttempts: 1}
	cfg.Pool.Disabled = !pooled
	client := NewNode(cfg, mem)
	b.Cleanup(func() { client.Close() })
	return client, server.Addr()
}

func BenchmarkRPCSequentialDial(b *testing.B) {
	client, addr := benchPair(b, false)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.PingContext(ctx, addr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRPCPooled(b *testing.B) {
	client, addr := benchPair(b, true)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.PingContext(ctx, addr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRPCSequentialDialParallel(b *testing.B) {
	client, addr := benchPair(b, false)
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := client.PingContext(ctx, addr); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkRPCPooledParallel(b *testing.B) {
	client, addr := benchPair(b, true)
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := client.PingContext(ctx, addr); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRPCPooledRaw measures the pool's round trip without the
// breaker/retry wrapping — the mux floor itself.
func BenchmarkRPCPooledRaw(b *testing.B) {
	client, addr := benchPair(b, true)
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := client.pool.roundTrip(ctx, addr, &wire.Message{Type: wire.TPing}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// resolveBench starts a two-server ring with a published target record
// and returns a warmed client plus the target's key and address.
func resolveBench(b *testing.B) (*Node, hashkey.Key, string) {
	b.Helper()
	mem := transport.NewMem()
	var servers []*Node
	for _, name := range []string{"bench-a", "bench-b"} {
		nd := NewNode(Config{Name: name, Capacity: 4, RetryAttempts: 1}, mem)
		if err := nd.Start(""); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { nd.Close() })
		servers = append(servers, nd)
	}
	client := NewNode(Config{Name: "bench-resolver", Capacity: 1, RetryAttempts: 1}, mem)
	if err := client.Start(""); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { client.Close() })
	for _, nd := range append(servers[1:], client) {
		if err := nd.JoinVia(servers[0].Addr()); err != nil {
			b.Fatal(err)
		}
	}
	target := servers[0]
	if err := target.Publish(); err != nil {
		b.Fatal(err)
	}
	return client, target.Key(), target.Addr()
}

// BenchmarkDiscover is the cold baseline: every resolution is a network
// _discovery round trip (forced late binding) — what every lookup cost
// before the location cache existed.
func BenchmarkDiscover(b *testing.B) {
	client, key, _ := resolveBench(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.DiscoverContext(ctx, key); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResolveHot is the steady state the cache buys: a fresh lease
// answers every resolve with one sharded map read — no network, no
// shared protocol lock.
func BenchmarkResolveHot(b *testing.B) {
	client, key, _ := resolveBench(b)
	ctx := context.Background()
	if _, err := client.ResolveContext(ctx, key); err != nil {
		b.Fatal(err) // warm the cache
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.ResolveContext(ctx, key); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResolveHotParallel: the hot path under contention — many
// goroutines resolving the same key concurrently.
func BenchmarkResolveHotParallel(b *testing.B) {
	client, key, _ := resolveBench(b)
	ctx := context.Background()
	if _, err := client.ResolveContext(ctx, key); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := client.ResolveContext(ctx, key); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkResolveStale measures stale-while-revalidate: the lease has
// lapsed, so each resolve serves the stale address immediately and (at
// most once at a time) launches a background refresh flight.
func BenchmarkResolveStale(b *testing.B) {
	client, key, addr := resolveBench(b)
	ctx := context.Background()
	client.loc.Put(key, addr, time.Nanosecond)
	time.Sleep(time.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := client.ResolveContext(ctx, key)
		if err != nil {
			b.Fatal(err)
		}
		// A background refresh may freshen the entry mid-run; re-stale it
		// outside the interesting path only when that happened.
		if _, ok := client.CachedAddr(key); ok {
			b.StopTimer()
			client.loc.Put(key, got, time.Nanosecond)
			b.StartTimer()
		}
	}
}

// BenchmarkResolveColdMiss: the worst case with the cache on — every
// iteration misses (the entry is invalidated each time) and pays the
// singleflight + network + fill.
func BenchmarkResolveColdMiss(b *testing.B) {
	client, key, _ := resolveBench(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		client.loc.Invalidate(key)
		if _, err := client.ResolveContext(ctx, key); err != nil {
			b.Fatal(err)
		}
	}
}
