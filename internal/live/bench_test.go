package live

// Benchmarks contrasting the two RPC transports: a fresh dial per
// exchange (the pre-pool behaviour, kept as the saturation fallback)
// versus multiplexing every exchange over one pooled connection.
// Run with: go test -bench=BenchmarkRPC -benchmem ./internal/live
import (
	"context"
	"testing"

	"bristle/internal/transport"
	"bristle/internal/wire"
)

// benchPair starts a ping server and returns a client node plus the
// server address. Retries are disabled: a benchmark exchange either works
// or the benchmark should fail loudly.
func benchPair(b *testing.B, pooled bool) (*Node, string) {
	b.Helper()
	mem := transport.NewMem()
	server := NewNode(Config{Name: "bench-server", Capacity: 2}, mem)
	if err := server.Start(""); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { server.Close() })

	cfg := Config{Name: "bench-client", Capacity: 1, RetryAttempts: 1}
	cfg.Pool.Disabled = !pooled
	client := NewNode(cfg, mem)
	b.Cleanup(func() { client.Close() })
	return client, server.Addr()
}

func BenchmarkRPCSequentialDial(b *testing.B) {
	client, addr := benchPair(b, false)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.PingContext(ctx, addr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRPCPooled(b *testing.B) {
	client, addr := benchPair(b, true)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.PingContext(ctx, addr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRPCSequentialDialParallel(b *testing.B) {
	client, addr := benchPair(b, false)
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := client.PingContext(ctx, addr); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkRPCPooledParallel(b *testing.B) {
	client, addr := benchPair(b, true)
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := client.PingContext(ctx, addr); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRPCPooledRaw measures the pool's round trip without the
// breaker/retry wrapping — the mux floor itself.
func BenchmarkRPCPooledRaw(b *testing.B) {
	client, addr := benchPair(b, true)
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := client.pool.roundTrip(ctx, addr, &wire.Message{Type: wire.TPing}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
