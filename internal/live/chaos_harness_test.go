// Chaos acceptance tests rewired onto the scenario harness
// (internal/harness): the harness owns cluster bootstrap, fault
// injection, partitions, update draining, and leak-checked shutdown;
// the tests script the story and assert through the cluster's
// observable surface. They live in package live_test because the
// harness itself imports live.
package live_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"bristle/internal/harness"
	"bristle/internal/live"
	"bristle/internal/transport"
)

// TestChaosRingConvergesUnderLossDelayAndPartition is the acceptance
// scenario: an 8-node live ring under 20% seeded frame loss and ~50ms
// p95 injected delay, with a 2-node island partitioned away and healed
// mid-run. Every member completes publish → move → discover → LDT
// update; no discovery ever returns ErrNotFound; retries and breaker
// trips are observable on the counters. Deterministic under seed 42;
// run with -race.
func TestChaosRingConvergesUnderLossDelayAndPartition(t *testing.T) {
	mainland := []string{"s1", "s2", "s3", "s4", "s5", "m1"}
	island := []string{"s6", "m2"}
	c, err := harness.New(harness.Config{
		Seed:        42,
		Stationary:  []string{"s1", "s2", "s3", "s4", "s5", "s6"},
		Mobile:      []string{"m1", "m2"},
		Replication: 2,
		Faults:      transport.FaultConfig{Drop: 0.20, DelayMax: 52 * time.Millisecond},
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	must := func(what string, d time.Duration, op func() error) {
		t.Helper()
		if err := harness.Eventually(d, op); err != nil {
			t.Fatalf("%s: still failing at deadline: %v", what, err)
		}
	}
	// discoverFresh forces late binding (always network) and requires the
	// target's current address; ErrNotFound is forbidden outright — the
	// record must never drop out of the repository.
	discoverFresh := func(from, target string) {
		t.Helper()
		must(from+" discover "+target, 20*time.Second, func() error {
			addr, err := c.Node(from).Discover(c.Key(target))
			if errors.Is(err, live.ErrNotFound) {
				t.Fatalf("%s discover %s: hit forbidden ErrNotFound", from, target)
			}
			if err != nil {
				return err
			}
			if addr != c.Addr(target) {
				return errors.New("stale address " + addr)
			}
			return nil
		})
	}

	// Cut the island off in both directions. The fault profile is already
	// live: from here every frame faces 20% loss and 0–52ms extra latency.
	if err := c.Partition("island", island, mainland); err != nil {
		t.Fatal(err)
	}

	// Mainland flow under loss: m1 publishes, every mainland stationary
	// node registers interest, m1 moves.
	must("m1 publish", 20*time.Second, func() error { return c.Publish("m1") })
	for _, w := range []string{"s1", "s2", "s3", "s4", "s5"} {
		w := w
		must(w+" register", 20*time.Second, func() error { return c.Register(w, "m1") })
	}
	must("m1 move", 20*time.Second, func() error { return c.Move("m1") })

	// Discovery under loss, across replicas, with zero ErrNotFound: every
	// mainland node resolves m1's fresh address.
	for _, w := range mainland {
		if w == "m1" {
			continue
		}
		discoverFresh(w, "m1")
	}

	// LDT update delivery under loss: each push is best-effort per
	// transmission, so the mobile re-advertises until every registrant has
	// observed the post-move address (the harness drains Updates() into
	// Observed).
	must("LDT update delivery", 30*time.Second, func() error {
		for _, w := range c.Watchers("m1") {
			if got, want := c.Observed(w, "m1"), c.Addr("m1"); got != want {
				if err := c.Node("m1").UpdateRegistry(); err != nil {
					return err
				}
				return fmt.Errorf("watcher %s observed %q, want %q", w, got, want)
			}
		}
		return nil
	})

	// Trip a breaker across the partition: s1 repeatedly fails to reach
	// s6 and marks it suspect — subsequent calls fail fast.
	s6addr := c.Addr("s6")
	for i := 0; i < 3; i++ {
		if err := c.Node("s1").Ping(s6addr); err == nil {
			t.Fatal("ping across the partition succeeded")
		}
	}
	if got := c.Counters.Get("breaker.trips"); got == 0 {
		t.Fatal("partition produced no breaker trips")
	}
	if err := c.Node("s1").Ping(s6addr); !errors.Is(err, live.ErrPeerSuspect) {
		t.Fatalf("suspect peer not failing fast: %v", err)
	}

	// Heal mid-run. The island catches up: m2 publishes, its neighbor s6
	// registers, m2 moves, and everyone — island and mainland — resolves
	// both mobiles' fresh addresses. Still under 20% loss.
	if err := c.Heal("island"); err != nil {
		t.Fatal(err)
	}
	must("m2 publish after heal", 20*time.Second, func() error { return c.Publish("m2") })
	must("s6 register with m2", 20*time.Second, func() error { return c.Register("s6", "m2") })
	must("m2 move", 20*time.Second, func() error { return c.Move("m2") })
	for _, w := range []string{"s1", "s2", "s3", "s4", "s5", "s6"} {
		discoverFresh(w, "m1")
		discoverFresh(w, "m2")
	}
	must("s6 LDT update", 20*time.Second, func() error {
		if got, want := c.Observed("s6", "m2"), c.Addr("m2"); got != want {
			if err := c.Node("m2").UpdateRegistry(); err != nil {
				return err
			}
			return fmt.Errorf("s6 observed %q, want %q", got, want)
		}
		return nil
	})

	// The healed peer is readmitted after a successful probe.
	must("s6 readmitted", 20*time.Second, func() error {
		return c.Node("s1").Ping(s6addr)
	})
	if s := c.Node("s1").Stats().Suspects; len(s) != 0 {
		t.Fatalf("breakers still open after recovery: %v", s)
	}

	// Resilience observable: faults were injected and retried.
	for _, name := range []string{"fault.drop", "rpc.retries", "breaker.trips"} {
		if c.Counters.Get(name) == 0 {
			t.Errorf("counter %s = 0 under chaos", name)
		}
	}

	// Tear down through the harness invariants: leak-free shutdown and
	// balanced pool gauges.
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	for _, ck := range []harness.Checker{&harness.NoLeaks{}, &harness.CounterConservation{}} {
		if err := ck.AfterShutdown(c); err != nil {
			t.Errorf("invariant %s: %v", ck.Name(), err)
		}
	}
}

// TestCleanTransportZeroRetriesZeroTrips is the control experiment: the
// full protocol flow over a clean (zero-rate) fault transport must
// record zero retries, zero timeouts, and zero breaker trips.
func TestCleanTransportZeroRetriesZeroTrips(t *testing.T) {
	c, err := harness.New(harness.Config{
		Seed:        9,
		Stationary:  []string{"s1", "s2", "s3"},
		Mobile:      []string{"mob"},
		Replication: 2,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	if err := c.Publish("mob"); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("s1", "mob"); err != nil {
		t.Fatal(err)
	}
	if err := c.Move("mob"); err != nil {
		t.Fatal(err)
	}
	if addr, err := c.Resolve("s2", "mob"); err != nil || addr != c.Addr("mob") {
		t.Fatalf("resolve: %v %s", err, addr)
	}
	if err := harness.Eventually(5*time.Second, func() error {
		if got, want := c.Observed("s1", "mob"), c.Addr("mob"); got != want {
			return fmt.Errorf("watcher observed %q, want %q", got, want)
		}
		return nil
	}); err != nil {
		t.Fatalf("watcher missed the update on a clean transport: %v", err)
	}
	for _, name := range []string{"rpc.retries", "rpc.timeouts", "rpc.failures", "breaker.trips", "breaker.fastfail"} {
		if got := c.Counters.Get(name); got != 0 {
			t.Errorf("clean transport recorded %s = %d, want 0 (%s)", name, got, c.Counters)
		}
	}
	if c.Counters.Get("rpc.attempts") == 0 {
		t.Fatal("instrumentation vacuous: no attempts recorded at all")
	}
}
