package live

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"bristle/internal/hashkey"
	"bristle/internal/metrics"
	"bristle/internal/transport"
)

// chaosNodeConfig returns aggressive-but-bounded resilience settings so
// chaos tests converge in seconds: short per-attempt socket deadlines,
// several jittered retries, and a breaker that trips (and probes) fast.
func chaosNodeConfig(name string, mobile bool, counters *metrics.Counters) Config {
	return Config{
		Name:               name,
		Capacity:           4,
		Mobile:             mobile,
		Replication:        2,
		RequestTimeout:     250 * time.Millisecond,
		RetryAttempts:      6,
		RetryBase:          5 * time.Millisecond,
		RetryMax:           50 * time.Millisecond,
		SuspicionThreshold: 3,
		SuspicionCooldown:  150 * time.Millisecond,
		Counters:           counters,
	}
}

// startChaosRing boots one live node per name, each behind its own named
// endpoint of a Faulty transport (clean at bootstrap — tests switch chaos
// on afterwards with SetConfig), joined via the first name with full
// membership gossiped.
func startChaosRing(t *testing.T, faulty *transport.Faulty, names []string, mobile map[string]bool, counters *metrics.Counters) (map[string]*Node, func()) {
	t.Helper()
	nodes := make(map[string]*Node, len(names))
	var started []*Node
	for _, name := range names {
		nd := NewNode(chaosNodeConfig(name, mobile[name], counters), faulty.Endpoint(name))
		if err := nd.Start(""); err != nil {
			t.Fatalf("start %s: %v", name, err)
		}
		nodes[name] = nd
		started = append(started, nd)
	}
	boot := started[0]
	for _, nd := range started[1:] {
		if err := nd.JoinVia(boot.Addr()); err != nil {
			t.Fatalf("join: %v", err)
		}
	}
	rng := rand.New(rand.NewSource(1))
	for round := 0; round < 4; round++ {
		for _, nd := range started {
			if _, err := nd.GossipOnce(rng); err != nil {
				t.Fatalf("gossip: %v", err)
			}
		}
	}
	for name, nd := range started {
		if got := len(nd.KnownPeers()); got != len(names) {
			t.Fatalf("node %v knows %d peers, want %d", name, got, len(names))
		}
	}
	return nodes, func() {
		for _, nd := range started {
			nd.Close()
		}
	}
}

// mustEventually retries op until it succeeds, failing the test if it
// still errors at the deadline. forbidden (optional) names an error that
// fails the test immediately — used to assert zero ErrNotFound.
func mustEventually(t *testing.T, what string, deadline time.Duration, forbidden error, op func() error) {
	t.Helper()
	limit := time.Now().Add(deadline)
	for {
		err := op()
		if err == nil {
			return
		}
		if forbidden != nil && errors.Is(err, forbidden) {
			t.Fatalf("%s: hit forbidden error %v", what, err)
		}
		if time.Now().After(limit) {
			t.Fatalf("%s: still failing at deadline: %v", what, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// drainForAddr consumes a node's update channel looking for key@addr.
func drainForAddr(n *Node, key hashkey.Key, addr string, wait time.Duration) bool {
	deadline := time.After(wait)
	for {
		select {
		case up := <-n.Updates():
			if up.Key == key && up.Addr == addr {
				return true
			}
		case <-deadline:
			return false
		}
	}
}

// TestChaosRingConvergesUnderLossDelayAndPartition is the acceptance
// scenario: an 8-node live ring under 20% seeded frame loss and ~50ms p95
// injected delay, with a 2-node island partitioned away and healed
// mid-run. Every member completes publish → rebind → discover → LDT
// update; no discovery ever returns ErrNotFound; retries and breaker
// trips are observable on the counters. Deterministic under seed 42; run
// with -race.
func TestChaosRingConvergesUnderLossDelayAndPartition(t *testing.T) {
	const seed = 42
	counters := metrics.NewCounters()
	faulty := transport.NewFaulty(transport.NewMem(), transport.FaultConfig{Seed: seed})

	mainland := []string{"s1", "s2", "s3", "s4", "s5", "m1"}
	island := []string{"s6", "m2"}
	names := append(append([]string{}, mainland...), island...)
	nodes, cleanup := startChaosRing(t, faulty, names, map[string]bool{"m1": true, "m2": true}, counters)
	defer cleanup()
	m1, m2 := nodes["m1"], nodes["m2"]

	// Cut the island off (both directions) and switch the chaos on: from
	// here every frame faces 20% loss and 0–52ms extra latency.
	faulty.PartitionBoth("island", island, mainland)
	faulty.SetConfig(transport.FaultConfig{
		Seed:     seed,
		Drop:     0.20,
		DelayMax: 52 * time.Millisecond,
		Counters: counters,
	})

	// Mainland flow under loss: m1 publishes, every mainland stationary
	// node registers interest, m1 moves.
	mustEventually(t, "m1 publish", 20*time.Second, nil, m1.Publish)
	for _, w := range []string{"s1", "s2", "s3", "s4", "s5"} {
		w := w
		mustEventually(t, w+" register", 20*time.Second, nil, func() error {
			return nodes[w].RegisterWith(m1.Addr())
		})
	}
	mustEventually(t, "m1 rebind", 20*time.Second, nil, func() error { return m1.Rebind("") })

	// Discovery under loss, across replicas, with zero ErrNotFound: every
	// mainland node resolves m1's fresh address.
	for _, w := range mainland {
		if w == "m1" {
			continue
		}
		w := w
		mustEventually(t, w+" discover m1", 20*time.Second, ErrNotFound, func() error {
			addr, err := nodes[w].Discover(m1.Key())
			if err != nil {
				return err
			}
			if addr != m1.Addr() {
				return errors.New("stale address " + addr)
			}
			return nil
		})
	}

	// LDT update delivery under loss: the push is best-effort per
	// transmission, so the mobile node re-advertises (early binding
	// refresh) until every registrant has heard; each individual delivery
	// still has to cross the lossy links through the dissemination tree.
	pending := map[string]bool{"s1": true, "s2": true, "s3": true, "s4": true, "s5": true}
	updateDeadline := time.Now().Add(30 * time.Second)
	for len(pending) > 0 {
		for w := range pending {
			if drainForAddr(nodes[w], m1.Key(), m1.Addr(), 200*time.Millisecond) {
				delete(pending, w)
			}
		}
		if len(pending) == 0 {
			break
		}
		if time.Now().After(updateDeadline) {
			t.Fatalf("registrants never received the LDT update: %v", pending)
		}
		if err := m1.UpdateRegistry(); err != nil {
			t.Fatalf("update registry: %v", err)
		}
	}

	// Trip a breaker across the partition: s1 repeatedly fails to reach
	// s6 and marks it suspect — subsequent calls fail fast.
	s6addr := nodes["s6"].Addr()
	for i := 0; i < 3; i++ {
		if err := nodes["s1"].Ping(s6addr); err == nil {
			t.Fatal("ping across the partition succeeded")
		}
	}
	if got := counters.Get("breaker.trips"); got == 0 {
		t.Fatal("partition produced no breaker trips")
	}
	if err := nodes["s1"].Ping(s6addr); !errors.Is(err, ErrPeerSuspect) {
		t.Fatalf("suspect peer not failing fast: %v", err)
	}

	// Heal mid-run. The island catches up: m2 publishes, its neighbor s6
	// registers, m2 moves, and everyone — island and mainland — resolves
	// both mobiles' fresh addresses. Still under 20% loss.
	faulty.Heal("island")
	mustEventually(t, "m2 publish after heal", 20*time.Second, nil, m2.Publish)
	mustEventually(t, "s6 register with m2", 20*time.Second, nil, func() error {
		return nodes["s6"].RegisterWith(m2.Addr())
	})
	mustEventually(t, "m2 rebind", 20*time.Second, nil, func() error { return m2.Rebind("") })
	for _, w := range names {
		w := w
		if nodes[w].cfg.Mobile {
			continue
		}
		for _, target := range []*Node{m1, m2} {
			target := target
			mustEventually(t, w+" discover post-heal", 20*time.Second, ErrNotFound, func() error {
				addr, err := nodes[w].Discover(target.Key())
				if err != nil {
					return err
				}
				if addr != target.Addr() {
					return errors.New("stale address " + addr)
				}
				return nil
			})
		}
	}
	if !drainForAddr(nodes["s6"], m2.Key(), m2.Addr(), 5*time.Second) {
		// s6 may have missed the one-shot push; refresh until it lands.
		mustEventually(t, "s6 LDT update", 20*time.Second, nil, func() error {
			if err := m2.UpdateRegistry(); err != nil {
				return err
			}
			if !drainForAddr(nodes["s6"], m2.Key(), m2.Addr(), 200*time.Millisecond) {
				return errors.New("update not yet delivered")
			}
			return nil
		})
	}

	// The healed peer is readmitted after a successful probe.
	mustEventually(t, "s6 readmitted", 20*time.Second, nil, func() error {
		return nodes["s1"].Ping(s6addr)
	})
	if s := nodes["s1"].Suspects(); len(s) != 0 {
		t.Fatalf("breakers still open after recovery: %v", s)
	}

	// Resilience observable: faults were injected and retried.
	for _, c := range []string{"fault.drop", "rpc.retries", "breaker.trips"} {
		if counters.Get(c) == 0 {
			t.Errorf("counter %s = 0 under chaos", c)
		}
	}
}

// TestBreakerTripsFastFailsAndRecovers drives the suspicion circuit
// end to end on a clean transport: consecutive failures trip it, tripped
// peers fail fast without network I/O, and a successful probe after the
// cooldown readmits the peer.
func TestBreakerTripsFastFailsAndRecovers(t *testing.T) {
	mem := transport.NewMem()
	counters := metrics.NewCounters()
	cfg := Config{
		Name:               "a",
		Capacity:           2,
		RequestTimeout:     200 * time.Millisecond,
		RetryAttempts:      2,
		RetryBase:          time.Millisecond,
		RetryMax:           2 * time.Millisecond,
		SuspicionThreshold: 2,
		SuspicionCooldown:  300 * time.Millisecond,
		Counters:           counters,
	}
	a := NewNode(cfg, mem)
	if err := a.Start(""); err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	b := NewNode(Config{Name: "b", Capacity: 2}, mem)
	if err := b.Start("b-home"); err != nil {
		t.Fatal(err)
	}
	if err := a.Ping("b-home"); err != nil {
		t.Fatalf("healthy ping: %v", err)
	}
	b.Close()

	// Two consecutive failed exchanges reach the threshold.
	for i := 0; i < 2; i++ {
		if err := a.Ping("b-home"); err == nil {
			t.Fatal("ping to dead peer succeeded")
		}
	}
	if got := counters.Get("breaker.trips"); got != 1 {
		t.Fatalf("breaker.trips = %d, want 1", got)
	}
	if s := a.Suspects(); len(s) != 1 || s[0] != "b-home" {
		t.Fatalf("Suspects = %v", s)
	}

	// Fail fast: before the cooldown no I/O happens at all.
	start := time.Now()
	if err := a.Ping("b-home"); !errors.Is(err, ErrPeerSuspect) {
		t.Fatalf("err = %v, want ErrPeerSuspect", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("fast-fail took %v", elapsed)
	}
	if counters.Get("breaker.fastfail") == 0 {
		t.Fatal("fast-fail not counted")
	}

	// The peer comes back at the same address; after the cooldown the
	// next call is admitted as a probe and closes the breaker.
	b2 := NewNode(Config{Name: "b2", Capacity: 2}, mem)
	if err := b2.Start("b-home"); err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	time.Sleep(320 * time.Millisecond)
	if err := a.Ping("b-home"); err != nil {
		t.Fatalf("probe after recovery: %v", err)
	}
	if s := a.Suspects(); len(s) != 0 {
		t.Fatalf("breaker still open after successful probe: %v", s)
	}
	if counters.Get("breaker.probes") == 0 || counters.Get("breaker.closes") == 0 {
		t.Fatalf("probe/close not counted: %s", counters)
	}
}

// TestDiscoverSuspicionAwareReplicaOrder kills the nearest replica of a
// record: discovery falls over to the surviving replica, the dead one's
// breaker trips, and from then on the suspect replica is deprioritized so
// discovery doesn't pay its timeout again.
func TestDiscoverSuspicionAwareReplicaOrder(t *testing.T) {
	counters := metrics.NewCounters()
	faulty := transport.NewFaulty(transport.NewMem(), transport.FaultConfig{Seed: 3})
	names := []string{"s1", "s2", "s3", "s4", "mob"}
	nodes, cleanup := startChaosRing(t, faulty, names, map[string]bool{"mob": true}, counters)
	defer cleanup()
	mob := nodes["mob"]
	if err := mob.Publish(); err != nil {
		t.Fatal(err)
	}

	byKey := map[hashkey.Key]*Node{}
	for _, nd := range nodes {
		byKey[nd.Key()] = nd
	}
	owners, err := mob.ownersOf(mob.Key(), 2)
	if err != nil {
		t.Fatal(err)
	}
	primary, backup := owners[0], owners[1]
	var prober *Node
	for _, name := range []string{"s1", "s2", "s3", "s4"} {
		nd := nodes[name]
		if nd.Key() != primary.Key && nd.Key() != backup.Key {
			prober = nd
			break
		}
	}
	if prober == nil {
		t.Fatal("no stationary prober outside the replica set")
	}

	byKey[primary.Key].Close() // the nearest replica dies

	// Each discovery falls over to the backup replica; after
	// SuspicionThreshold failures the primary's breaker trips.
	for i := 0; i < 3; i++ {
		addr, err := prober.Discover(mob.Key())
		if err != nil {
			t.Fatalf("discover %d with dead primary: %v", i, err)
		}
		if addr != mob.Addr() {
			t.Fatalf("discover %d resolved %s", i, addr)
		}
	}
	if !prober.suspect(primary.Addr) {
		t.Fatal("dead primary never became suspect")
	}
	reordered, err := prober.ownersOf(mob.Key(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if reordered[0].Key != backup.Key {
		t.Fatalf("suspicion-aware order still leads with the dead replica: %v", reordered[0].Key)
	}

	// With the suspect deprioritized (and failing fast when reached), the
	// next discovery costs exactly one successful exchange.
	before := counters.Get("rpc.attempts")
	if _, err := prober.Discover(mob.Key()); err != nil {
		t.Fatal(err)
	}
	if got := counters.Get("rpc.attempts") - before; got != 1 {
		t.Fatalf("suspicion-aware discovery used %d attempts, want 1", got)
	}
}

// TestCleanTransportZeroRetriesZeroTrips is the control experiment: the
// full protocol flow over the clean Mem transport must record zero
// retries, zero timeouts, and zero breaker trips.
func TestCleanTransportZeroRetriesZeroTrips(t *testing.T) {
	counters := metrics.NewCounters()
	faulty := transport.NewFaulty(transport.NewMem(), transport.FaultConfig{Seed: 9}) // zero rates: clean
	names := []string{"s1", "s2", "s3", "mob"}
	nodes, cleanup := startChaosRing(t, faulty, names, map[string]bool{"mob": true}, counters)
	defer cleanup()
	mob := nodes["mob"]

	if err := mob.Publish(); err != nil {
		t.Fatal(err)
	}
	if err := nodes["s1"].RegisterWith(mob.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := mob.Rebind(""); err != nil {
		t.Fatal(err)
	}
	if addr, err := nodes["s2"].Discover(mob.Key()); err != nil || addr != mob.Addr() {
		t.Fatalf("discover: %v %s", err, addr)
	}
	if !drainForAddr(nodes["s1"], mob.Key(), mob.Addr(), 5*time.Second) {
		t.Fatal("watcher missed the update on a clean transport")
	}
	for _, c := range []string{"rpc.retries", "rpc.timeouts", "rpc.failures", "breaker.trips", "breaker.fastfail"} {
		if got := counters.Get(c); got != 0 {
			t.Errorf("clean transport recorded %s = %d, want 0 (%s)", c, got, counters)
		}
	}
	if counters.Get("rpc.attempts") == 0 {
		t.Fatal("instrumentation vacuous: no attempts recorded at all")
	}
}
