package live

// The black-box chaos acceptance scenarios (full ring under loss/delay/
// partition, clean-transport control) moved to chaos_harness_test.go,
// rebuilt on internal/harness. This file keeps the white-box tests that
// need unexported access (ownersOf, suspect) and the minimal ring
// bootstrap they share.

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"bristle/internal/hashkey"
	"bristle/internal/metrics"
	"bristle/internal/transport"
)

// chaosNodeConfig returns aggressive-but-bounded resilience settings so
// chaos tests converge in seconds: short per-attempt socket deadlines,
// several jittered retries, and a breaker that trips (and probes) fast.
func chaosNodeConfig(name string, mobile bool, counters *metrics.Counters) Config {
	return Config{
		Name:               name,
		Capacity:           4,
		Mobile:             mobile,
		Replication:        2,
		RequestTimeout:     250 * time.Millisecond,
		RetryAttempts:      6,
		RetryBase:          5 * time.Millisecond,
		RetryMax:           50 * time.Millisecond,
		SuspicionThreshold: 3,
		SuspicionCooldown:  150 * time.Millisecond,
		Counters:           counters,
	}
}

// startChaosRing boots one live node per name, each behind its own named
// endpoint of a Faulty transport (clean at bootstrap — tests switch chaos
// on afterwards with SetConfig), joined via the first name with full
// membership gossiped.
func startChaosRing(t *testing.T, faulty *transport.Faulty, names []string, mobile map[string]bool, counters *metrics.Counters) (map[string]*Node, func()) {
	t.Helper()
	nodes := make(map[string]*Node, len(names))
	var started []*Node
	for _, name := range names {
		nd := NewNode(chaosNodeConfig(name, mobile[name], counters), faulty.Endpoint(name))
		if err := nd.Start(""); err != nil {
			t.Fatalf("start %s: %v", name, err)
		}
		nodes[name] = nd
		started = append(started, nd)
	}
	boot := started[0]
	for _, nd := range started[1:] {
		if err := nd.JoinVia(boot.Addr()); err != nil {
			t.Fatalf("join: %v", err)
		}
	}
	rng := rand.New(rand.NewSource(1))
	for round := 0; round < 4; round++ {
		for _, nd := range started {
			if _, err := nd.GossipOnce(rng); err != nil {
				t.Fatalf("gossip: %v", err)
			}
		}
	}
	for name, nd := range started {
		if got := len(nd.KnownPeers()); got != len(names) {
			t.Fatalf("node %v knows %d peers, want %d", name, got, len(names))
		}
	}
	return nodes, func() {
		for _, nd := range started {
			nd.Close()
		}
	}
}

// TestBreakerTripsFastFailsAndRecovers drives the suspicion circuit
// end to end on a clean transport: consecutive failures trip it, tripped
// peers fail fast without network I/O, and a successful probe after the
// cooldown readmits the peer.
func TestBreakerTripsFastFailsAndRecovers(t *testing.T) {
	mem := transport.NewMem()
	counters := metrics.NewCounters()
	cfg := Config{
		Name:               "a",
		Capacity:           2,
		RequestTimeout:     200 * time.Millisecond,
		RetryAttempts:      2,
		RetryBase:          time.Millisecond,
		RetryMax:           2 * time.Millisecond,
		SuspicionThreshold: 2,
		SuspicionCooldown:  300 * time.Millisecond,
		Counters:           counters,
	}
	a := NewNode(cfg, mem)
	if err := a.Start(""); err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	b := NewNode(Config{Name: "b", Capacity: 2}, mem)
	if err := b.Start("b-home"); err != nil {
		t.Fatal(err)
	}
	if err := a.Ping("b-home"); err != nil {
		t.Fatalf("healthy ping: %v", err)
	}
	b.Close()

	// Two consecutive failed exchanges reach the threshold.
	for i := 0; i < 2; i++ {
		if err := a.Ping("b-home"); err == nil {
			t.Fatal("ping to dead peer succeeded")
		}
	}
	if got := counters.Get("breaker.trips"); got != 1 {
		t.Fatalf("breaker.trips = %d, want 1", got)
	}
	if s := a.Stats().Suspects; len(s) != 1 || s[0] != "b-home" {
		t.Fatalf("Suspects = %v", s)
	}

	// Fail fast: before the cooldown no I/O happens at all.
	start := time.Now()
	if err := a.Ping("b-home"); !errors.Is(err, ErrPeerSuspect) {
		t.Fatalf("err = %v, want ErrPeerSuspect", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("fast-fail took %v", elapsed)
	}
	if counters.Get("breaker.fastfail") == 0 {
		t.Fatal("fast-fail not counted")
	}

	// The peer comes back at the same address; after the cooldown the
	// next call is admitted as a probe and closes the breaker.
	b2 := NewNode(Config{Name: "b2", Capacity: 2}, mem)
	if err := b2.Start("b-home"); err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	time.Sleep(320 * time.Millisecond)
	if err := a.Ping("b-home"); err != nil {
		t.Fatalf("probe after recovery: %v", err)
	}
	if s := a.Stats().Suspects; len(s) != 0 {
		t.Fatalf("breaker still open after successful probe: %v", s)
	}
	if counters.Get("breaker.probes") == 0 || counters.Get("breaker.closes") == 0 {
		t.Fatalf("probe/close not counted: %s", counters)
	}
}

// TestDiscoverSuspicionAwareReplicaOrder drives latency- and
// suspicion-aware replica selection end to end: with per-link latencies
// injected and RTT estimates warmed, discovery leads with the measured
// nearest replica; when that replica dies, discovery falls over to the
// next-nearest, the dead one's breaker trips, and from then on the
// suspect replica sorts last regardless of its (stale, attractive) RTT —
// so discovery doesn't pay its timeout again.
func TestDiscoverSuspicionAwareReplicaOrder(t *testing.T) {
	counters := metrics.NewCounters()
	// Per-directed-link latencies keyed by endpoint names, installed after
	// the ring bootstraps (the hook reads the map on every frame).
	var latMu sync.Mutex
	lat := map[[2]string]time.Duration{}
	faulty := transport.NewFaulty(transport.NewMem(), transport.FaultConfig{
		Seed: 3,
		Latency: func(from, to string) time.Duration {
			latMu.Lock()
			defer latMu.Unlock()
			return lat[[2]string{from, to}]
		},
	})
	names := []string{"s1", "s2", "s3", "s4", "mob"}
	nodes, cleanup := startChaosRing(t, faulty, names, map[string]bool{"mob": true}, counters)
	defer cleanup()
	mob := nodes["mob"]
	if err := mob.Publish(); err != nil {
		t.Fatal(err)
	}

	byKey := map[hashkey.Key]*Node{}
	for _, nd := range nodes {
		byKey[nd.Key()] = nd
	}
	owners, err := mob.ownersOf(mob.Key(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Designate the replica set's near/far roles by injecting latency:
	// whatever order ownersOf returned, owners[0] becomes the low-RTT
	// replica from the prober's vantage point and owners[1] the high-RTT
	// one.
	near, far := owners[0], owners[1]
	var prober *Node
	for _, name := range []string{"s1", "s2", "s3", "s4"} {
		nd := nodes[name]
		if nd.Key() != near.Key && nd.Key() != far.Key {
			prober = nd
			break
		}
	}
	if prober == nil {
		t.Fatal("no stationary prober outside the replica set")
	}
	latMu.Lock()
	lat[[2]string{prober.cfg.Name, byKey[near.Key].cfg.Name}] = 2 * time.Millisecond
	lat[[2]string{prober.cfg.Name, byKey[far.Key].cfg.Name}] = 25 * time.Millisecond
	latMu.Unlock()
	// Warm the prober's estimators over ordinary exchanges (pings — no
	// probe machinery). Several rounds, because bootstrap-era exchanges
	// already seeded the EWMAs at in-memory-transport speed and the
	// injected latency has to pull them up.
	for round := 0; round < 8; round++ {
		for _, owner := range owners {
			if err := prober.Ping(owner.Addr); err != nil {
				t.Fatalf("warm ping: %v", err)
			}
		}
	}
	nearEst, _, okNear := prober.rtt.estimate(near.Addr)
	farEst, _, okFar := prober.rtt.estimate(far.Addr)
	if !okNear || !okFar || nearEst < time.Millisecond || farEst <= nearEst {
		t.Fatalf("warmed estimates near=%v far=%v, want 1ms <= near < far", nearEst, farEst)
	}

	// With both replicas measured, ordering is deterministic: the
	// low-latency replica leads.
	ordered, err := prober.ownersOf(mob.Key(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if ordered[0].Key != near.Key {
		t.Fatalf("latency-aware order does not lead with the nearest replica: %v", ordered[0].Key)
	}

	byKey[near.Key].Close() // the nearest replica dies

	// Each discovery tries the (still lowest-RTT, not yet suspect) dead
	// replica first and falls over to the next-nearest; after
	// SuspicionThreshold failed exchanges the near breaker trips.
	for i := 0; i < 3; i++ {
		addr, err := prober.Discover(mob.Key())
		if err != nil {
			t.Fatalf("discover %d with dead nearest replica: %v", i, err)
		}
		if addr != mob.Addr() {
			t.Fatalf("discover %d resolved %s", i, addr)
		}
	}
	if !prober.suspect(near.Addr) {
		t.Fatal("dead nearest replica never became suspect")
	}
	// Suspicion outranks RTT: the dead replica's estimate is still the
	// most attractive, but the suspect sorts last.
	reordered, err := prober.ownersOf(mob.Key(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if reordered[0].Key != far.Key {
		t.Fatalf("suspicion-aware order still leads with the dead replica: %v", reordered[0].Key)
	}

	// With the suspect deprioritized (and failing fast when reached), the
	// next discovery costs exactly one successful exchange.
	before := counters.Get("rpc.attempts")
	if _, err := prober.Discover(mob.Key()); err != nil {
		t.Fatal(err)
	}
	if got := counters.Get("rpc.attempts") - before; got != 1 {
		t.Fatalf("suspicion-aware discovery used %d attempts, want 1", got)
	}
	// The Stats RTT table surfaces both estimates, suspect flag included.
	stats := prober.Stats()
	found := map[string]PeerRTT{}
	for _, pr := range stats.PeerRTTs {
		found[pr.Addr] = pr
	}
	if pr, ok := found[near.Addr]; !ok || !pr.Suspect || pr.Samples == 0 {
		t.Fatalf("near peer missing or wrong in Stats.PeerRTTs: %+v", pr)
	}
	if pr, ok := found[far.Addr]; !ok || pr.Suspect || pr.RTT < 20*time.Millisecond {
		t.Fatalf("far peer missing or wrong in Stats.PeerRTTs: %+v", pr)
	}
}
