package live

// Regression tests for the epoch-ordered update paths and the batched
// publish. The handler-level tests are deterministic reproductions of
// the stale-address-resurrection bugs: before epochs, handlePublish and
// handleUpdate were last-writer-wins, so a frame the network delayed or
// duplicated past a newer binding would drag the repository (or a
// resolver's cache) back to a dead address.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"bristle/internal/hashkey"
	"bristle/internal/metrics"
	"bristle/internal/transport"
	"bristle/internal/wire"
)

// TestHandlePublishRejectsStaleEpoch replays the exact frame order a
// duplicated-and-delayed publish produces: the epoch-2 binding (addr B)
// lands first, then the epoch-1 ghost (addr A) arrives late. The store
// must keep B. Pre-fix, the second frame overwrote the first.
func TestHandlePublishRejectsStaleEpoch(t *testing.T) {
	counters := metrics.NewCounters()
	mem := transport.NewMem()
	n := NewNode(Config{Name: "owner", Capacity: 2, Counters: counters}, mem)
	if err := n.Start(""); err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	key := hashkey.FromName("subject")
	n.handlePublish(&wire.Message{Type: wire.TPublish, Self: wire.Entry{Key: key, Addr: "addr-B", Epoch: 2}})
	n.handlePublish(&wire.Message{Type: wire.TPublish, Self: wire.Entry{Key: key, Addr: "addr-A", Epoch: 1}})

	resp := n.handleDiscover(&wire.Message{Type: wire.TDiscover, Key: key})
	if !resp.Found || resp.Self.Addr != "addr-B" {
		t.Fatalf("store resurrected stale address: got %q (found %v), want addr-B", resp.Self.Addr, resp.Found)
	}
	if resp.Self.Epoch != 2 {
		t.Fatalf("discover reported epoch %d, want 2", resp.Self.Epoch)
	}
	if got := counters.Get("publish.stale_rejected"); got != 1 {
		t.Fatalf("publish.stale_rejected = %d, want 1", got)
	}
	// An expired newer record no longer outranks anything: the ghost is
	// at least a reachable address from this key's past, while a lapsed
	// lease is a promise nobody renewed.
	key2 := hashkey.FromName("subject-2")
	n.handlePublish(&wire.Message{Type: wire.TPublish, Self: wire.Entry{Key: key2, Addr: "addr-B", Epoch: 2, TTLMilli: 1}})
	time.Sleep(5 * time.Millisecond)
	n.handlePublish(&wire.Message{Type: wire.TPublish, Self: wire.Entry{Key: key2, Addr: "addr-A", Epoch: 1, TTLMilli: 60000}})
	if resp := n.handleDiscover(&wire.Message{Type: wire.TDiscover, Key: key2}); !resp.Found || resp.Self.Addr != "addr-A" {
		t.Fatalf("expired record still outranks: got %q (found %v), want addr-A", resp.Self.Addr, resp.Found)
	}
}

// TestHandleUpdateRejectsStaleEpoch drives the early-binding path with
// the same out-of-order delivery: the epoch-3 push (addr C) first, then
// a duplicated epoch-2 push (addr B). Neither the location cache nor the
// membership map may regress, and the stale push must not recurse into
// the delegated subtree.
func TestHandleUpdateRejectsStaleEpoch(t *testing.T) {
	counters := metrics.NewCounters()
	mem := transport.NewMem()
	n := NewNode(Config{Name: "watcher", Capacity: 2, Counters: counters}, mem)
	if err := n.Start(""); err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	subject := hashkey.FromName("mover")
	n.handleUpdate(&wire.Message{Type: wire.TUpdate, Self: wire.Entry{Key: subject, Addr: "addr-C", TTLMilli: 60000, Epoch: 3}})
	n.handleUpdate(&wire.Message{Type: wire.TUpdate, Self: wire.Entry{Key: subject, Addr: "addr-B", TTLMilli: 60000, Epoch: 2}})

	if addr, ok := n.CachedAddr(subject); !ok || addr != "addr-C" {
		t.Fatalf("cache resurrected stale address: got %q (ok %v), want addr-C", addr, ok)
	}
	for _, p := range n.KnownPeers() {
		if p.Key == subject && p.Addr != "addr-C" {
			t.Fatalf("peers map resurrected stale address: %q", p.Addr)
		}
	}
	if got := counters.Get("updates.stale_rejected"); got != 1 {
		t.Fatalf("updates.stale_rejected = %d, want 1", got)
	}
	if got := counters.Get("updates.applied"); got != 1 {
		t.Fatalf("updates.applied = %d, want 1", got)
	}
	// The stale push must not have been delivered to the application.
	select {
	case u := <-n.Updates():
		if u.Addr != "addr-C" {
			t.Fatalf("application saw stale update %q", u.Addr)
		}
	default:
		t.Fatal("applied update was not delivered")
	}
	select {
	case u := <-n.Updates():
		t.Fatalf("stale update delivered to application: %+v", u)
	default:
	}
}

// TestRebindBumpsEpoch pins the ordering source itself: every rebind
// must advance the publish epoch, and the new self entry must carry it.
func TestRebindBumpsEpoch(t *testing.T) {
	nodes, cleanup := startCluster(t, []string{"s1", "s2", "mob"}, map[string]bool{"mob": true}, nil)
	defer cleanup()
	mob := nodes["mob"]
	before := mob.Stats().Epoch
	if err := mob.Rebind(""); err != nil {
		t.Fatal(err)
	}
	after := mob.Stats().Epoch
	if after <= before {
		t.Fatalf("rebind did not advance epoch: %d → %d", before, after)
	}
	if got := mob.SelfEntry().Epoch; got != after {
		t.Fatalf("self entry epoch %d, want %d", got, after)
	}
}

// TestPublishBatchRPCCountAndAtomicIngest is the tentpole's O(replicas)
// claim as a test: a node owning many keys re-homes all of them in at
// most one RPC per distinct replica address — not one per key — and
// every record is discoverable afterwards.
func TestPublishBatchRPCCountAndAtomicIngest(t *testing.T) {
	counters := metrics.NewCounters()
	mem := transport.NewMem()
	names := []string{"s1", "s2", "s3", "mob"}
	nodes := make(map[string]*Node, len(names))
	var started []*Node
	for _, name := range names {
		cfg := Config{Name: name, Capacity: 4, Mobile: name == "mob", RequestTimeout: time.Second, Counters: counters}
		nd := NewNode(cfg, mem)
		if err := nd.Start(""); err != nil {
			t.Fatalf("start %s: %v", name, err)
		}
		nodes[name] = nd
		started = append(started, nd)
	}
	defer func() {
		for _, nd := range started {
			nd.Close()
		}
	}()
	for _, nd := range started[1:] {
		if err := nd.JoinVia(started[0].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	mob := nodes["mob"]
	if err := mob.JoinVia(started[0].Addr()); err != nil {
		t.Fatal(err)
	}

	const numKeys = 200
	keys := make([]hashkey.Key, numKeys)
	for i := range keys {
		keys[i] = hashkey.FromName(fmt.Sprintf("res-%d", i))
	}
	mob.OwnKeys(keys...)

	before := counters.Get("publish.rpcs")
	if err := mob.Publish(); err != nil {
		t.Fatal(err)
	}
	rpcs := counters.Get("publish.rpcs") - before
	// 201 records × replication 2 across ≤3 stationary peers: the batch
	// must collapse to at most one frame per distinct replica address.
	if rpcs == 0 || rpcs > 3 {
		t.Fatalf("batched publish used %d RPCs, want 1..3 (O(replicas), not O(keys))", rpcs)
	}
	for _, k := range keys {
		addr, err := nodes["s1"].Discover(k)
		if err != nil {
			t.Fatalf("discover %v: %v", k, err)
		}
		if addr != mob.Addr() {
			t.Fatalf("key %v resolved to %q, want %q", k, addr, mob.Addr())
		}
	}
}

// TestPublishedKeysFollowRebind: the whole point of the owned set — a
// move re-homes every record, and the rebound epoch makes the new
// bindings authoritative.
func TestPublishedKeysFollowRebind(t *testing.T) {
	nodes, cleanup := startCluster(t, []string{"s1", "s2", "s3", "mob"}, map[string]bool{"mob": true}, nil)
	defer cleanup()
	mob := nodes["mob"]
	keys := []hashkey.Key{hashkey.FromName("obj-a"), hashkey.FromName("obj-b"), hashkey.FromName("obj-c")}
	mob.OwnKeys(keys...)
	if err := mob.Publish(); err != nil {
		t.Fatal(err)
	}
	oldAddr := mob.Addr()
	if err := mob.Rebind(""); err != nil {
		t.Fatal(err)
	}
	if mob.Addr() == oldAddr {
		t.Fatal("rebind did not change address")
	}
	for _, k := range keys {
		addr, err := nodes["s1"].Discover(k)
		if err != nil {
			t.Fatalf("discover after rebind: %v", err)
		}
		if addr != mob.Addr() {
			t.Fatalf("owned key %v still at %q after rebind to %q", k, addr, mob.Addr())
		}
	}
}

// TestNoStaleResurrectionUnderDuplication runs the full stack over a
// duplicating, delaying link (no drops: every frame eventually arrives,
// possibly twice and late) through three rapid moves. Every stationary
// replica and the watcher's cache must settle on the final address —
// pre-epoch, a late duplicate of an earlier publish could win the race
// and stick, because nothing newer would ever displace it again.
func TestNoStaleResurrectionUnderDuplication(t *testing.T) {
	counters := metrics.NewCounters()
	faulty := transport.NewFaulty(transport.NewMem(), transport.FaultConfig{
		Seed:      42,
		Duplicate: 0.5,
		DelayMin:  0,
		DelayMax:  10 * time.Millisecond,
	})
	names := []string{"s1", "s2", "s3", "mob", "watcher"}
	mobile := map[string]bool{"mob": true}
	nodes, cleanup := startChaosRing(t, faulty, names, mobile, counters)
	defer cleanup()

	mob, watcher := nodes["mob"], nodes["watcher"]
	if err := mob.Publish(); err != nil {
		t.Fatal(err)
	}
	if err := watcher.RegisterWith(mob.Addr()); err != nil {
		t.Fatal(err)
	}
	for move := 0; move < 3; move++ {
		if err := mob.Rebind(""); err != nil {
			t.Fatalf("move %d: %v", move, err)
		}
	}
	final := mob.Addr()

	deadline := time.Now().Add(10 * time.Second)
	for {
		addr, err := nodes["s1"].Discover(mob.Key())
		if err == nil && addr == final {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas never converged on final address: got %q (%v), want %q", addr, err, final)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Convergence must be sticky: duplicates of pre-move frames are still
	// in flight for a while; none may flip any replica back.
	time.Sleep(100 * time.Millisecond)
	for i := 0; i < 10; i++ {
		addr, err := nodes["s1"].Discover(mob.Key())
		if err != nil {
			t.Fatalf("re-discover: %v", err)
		}
		if addr != final {
			t.Fatalf("stale address resurrected after convergence: %q, want %q", addr, final)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if addr, ok := watcher.CachedAddr(mob.Key()); ok && addr != final {
		t.Fatalf("watcher cache pinned stale address %q, want %q", addr, final)
	}
}

// TestCloseUnblocksLDTFanOut pins satellite fix 3: a node handling a
// TUpdate whose delegated subtree includes an unreachable peer used to
// re-advertise synchronously under context.Background(), so Close waited
// out the full request timeout behind the handler. Now the handler only
// enqueues; the flusher's send is bounded by the node's lifecycle
// context and Close returns promptly, leaking no goroutines.
func TestCloseUnblocksLDTFanOut(t *testing.T) {
	baseline := runtime.NumGoroutine()
	mem := transport.NewMem()
	mem.BacklogWait = 30 * time.Second // a saturated dial blocks ~forever unless ctx-bounded

	// A black hole: listening, never accepting, backlog pre-filled so any
	// further dial parks in the backlog wait.
	bl, err := mem.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer bl.Close()
	for i := 0; i < 64; i++ {
		c, err := mem.Dial(bl.Addr())
		if err != nil {
			t.Fatalf("backlog fill %d: %v", i, err)
		}
		defer c.Close()
	}

	cfg := Config{Name: "relay", Capacity: 2, RequestTimeout: 20 * time.Second, RetryAttempts: 1}
	n := NewNode(cfg, mem)
	if err := n.Start(""); err != nil {
		t.Fatal(err)
	}
	sender := NewNode(Config{Name: "sender", Capacity: 1, RequestTimeout: time.Second}, mem)
	if err := sender.Start(""); err != nil {
		t.Fatal(err)
	}
	defer sender.Close()

	// Deliver, over the wire, an update that delegates the black hole to
	// the relay: its flusher will park inside the dial.
	msg := &wire.Message{
		Type:    wire.TUpdate,
		Self:    wire.Entry{Key: hashkey.FromName("mover"), Addr: "mem:nowhere", Capacity: 1, Epoch: 1},
		Entries: []wire.Entry{{Key: hashkey.FromName("delegate"), Addr: bl.Addr(), Capacity: 1}},
	}
	if err := sender.oneWay(sender.runCtx, n.Addr(), msg); err != nil {
		t.Fatalf("send update: %v", err)
	}
	// Wait until the relay has ingested the update (the handler must not
	// block on the fan-out).
	deadline := time.Now().Add(5 * time.Second)
	for {
		select {
		case <-n.Updates():
		default:
		}
		if _, ok := n.CachedAddr(hashkey.FromName("mover")); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("relay never ingested the update — handler blocked on fan-out?")
		}
		time.Sleep(5 * time.Millisecond)
	}

	start := time.Now()
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Close stalled %v behind the LDT fan-out (want prompt abort)", elapsed)
	}
	sender.Close()

	// No goroutine may outlive the nodes — the parked dial must have been
	// aborted, not abandoned.
	for end := time.Now().Add(5 * time.Second); ; {
		if runtime.NumGoroutine() <= baseline+2 {
			break
		}
		if time.Now().After(end) {
			t.Fatalf("goroutines leaked mid-fan-out: %d, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestUpdateQueueCoalesces unit-tests the queue's merge law: per
// (recipient, subject) slot, newest epoch wins, older epochs are
// subsumed, equal epochs union their delegations.
func TestUpdateQueueCoalesces(t *testing.T) {
	subject := hashkey.FromName("mover")
	mk := func(epoch uint64, addr string, delegated ...string) *wire.Message {
		m := &wire.Message{Type: wire.TUpdate, Self: wire.Entry{Key: subject, Addr: addr, Epoch: epoch}}
		for _, d := range delegated {
			m.Entries = append(m.Entries, wire.Entry{Key: hashkey.FromName(d), Addr: d})
		}
		return m
	}

	q := newUpdateQueue()
	d1, co := q.enqueue("peer:1", mk(1, "addr-A"))
	if co {
		t.Fatal("first enqueue reported coalesced")
	}
	d2, co := q.enqueue("peer:1", mk(2, "addr-B"))
	if !co || d1 != d2 {
		t.Fatalf("rapid re-push did not coalesce (coalesced=%v, same done=%v)", co, d1 == d2)
	}
	if _, co := q.enqueue("peer:1", mk(3, "addr-C")); !co {
		t.Fatal("third push did not coalesce")
	}
	// An even older frame arriving late must be subsumed, not shipped.
	if _, co := q.enqueue("peer:1", mk(2, "addr-B")); !co {
		t.Fatal("stale push did not coalesce")
	}
	// A different recipient is its own slot.
	if _, co := q.enqueue("peer:2", mk(3, "addr-C")); co {
		t.Fatal("distinct recipient coalesced")
	}

	batch := q.take()
	if len(batch) != 2 {
		t.Fatalf("take returned %d frames, want 2 (one per recipient)", len(batch))
	}
	if got := batch[0].msg.Self; got.Epoch != 3 || got.Addr != "addr-C" {
		t.Fatalf("peer:1 frame = %s@%d, want addr-C@3 (A→B→C must deliver only C)", got.Addr, got.Epoch)
	}

	// Equal epochs union their delegated subtrees: two partitions of the
	// same move must both be reached.
	q.enqueue("peer:1", mk(4, "addr-D", "w1", "w2"))
	q.enqueue("peer:1", mk(4, "addr-D", "w2", "w3"))
	batch = q.take()
	if len(batch) != 1 {
		t.Fatalf("take returned %d frames, want 1", len(batch))
	}
	if got := len(batch[0].msg.Entries); got != 3 {
		t.Fatalf("equal-epoch merge kept %d delegations, want 3 (union of w1,w2,w3)", got)
	}

	// After close: enqueue is a no-op whose done channel is already
	// closed, so waiters never block on a push that cannot ship.
	q.close()
	done, co := q.enqueue("peer:1", mk(5, "addr-E"))
	if co {
		t.Fatal("enqueue after close reported coalesced")
	}
	select {
	case <-done:
	default:
		t.Fatal("post-close done channel not closed")
	}
	if batch := q.take(); batch != nil {
		t.Fatalf("take after close returned %d frames, want nil", len(batch))
	}
}
