package live

// This file is the package's error taxonomy — every sentinel a caller of
// the live stack may need to classify, in one documented place.
//
// Classification cheat-sheet:
//
//   - ErrNotFound        terminal for this exchange; the record may appear
//                        later (late binding), so poll, don't retry inline.
//   - ErrStopped         terminal: the local node was closed.
//   - ErrPeerSuspect     fail-fast from an open circuit breaker; no network
//                        I/O happened. Clears after a successful probe.
//   - ErrPoolClosed      terminal: the node's connection pool was shut down
//                        (the node is closing).
//   - ErrBacklogFull     transient backpressure from transport dial — the
//                        peer exists but its accept queue stayed saturated;
//                        re-exported from transport for discoverability.
//   - wire.Fatal(err)    true for errors no retry can cure (protocol
//                        version mismatch, unencodable local message);
//                        everything else a live exchange returns is
//                        transient under the paper's failure model and the
//                        RPC layer retries it with capped jittered backoff.
//
// Retryable (below) is the one-stop classifier combining all of these.

import (
	"errors"

	"bristle/internal/transport"
	"bristle/internal/wire"
)

var (
	// ErrNotFound is returned by discovery when no replica holds a valid
	// (unexpired) location record for the key.
	ErrNotFound = errors.New("live: no valid location record")

	// ErrStopped is returned when an operation races the node's Close.
	ErrStopped = errors.New("live: node stopped")

	// ErrPeerSuspect is returned without any network I/O when the target
	// peer's circuit breaker is open: recent exchanges failed repeatedly,
	// and the cooldown before the next probe has not elapsed.
	ErrPeerSuspect = errors.New("live: peer suspect (circuit open)")

	// ErrPoolClosed is returned by exchanges that race the connection
	// pool's shutdown during node Close.
	ErrPoolClosed = errors.New("live: connection pool closed")

	// ErrBacklogFull re-exports transport.ErrBacklogFull: the peer's
	// accept queue stayed saturated for the bounded dial wait. Treat it as
	// backpressure (retry soon), not absence.
	ErrBacklogFull = transport.ErrBacklogFull
)

// Retryable reports whether a backed-off retry of the same exchange may
// cure err. Protocol-fatal errors (wire.Fatal), local terminal states
// (ErrStopped, ErrPoolClosed), and breaker fast-fails (ErrPeerSuspect —
// retrying before the cooldown cannot help) are not retryable; transient
// transport noise (timeouts, refused dials, torn or corrupted streams,
// ErrBacklogFull) is.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrPeerSuspect) || errors.Is(err, ErrStopped) || errors.Is(err, ErrPoolClosed) {
		return false
	}
	return wire.Retryable(err)
}
