package live

// This file is the verifiable admission path. A joining node's hash key
// is self-certifying (hashkey.IDKey): it is a hash of the node's public
// identity, region-striped for regional stationary nodes. The join
// carries the public key, the claimed region, and a signature over a
// canonical join statement; handleJoin recomputes the key from the
// public key alone and rejects any claim that doesn't hash to it. That
// makes the stationary/mobile split an enforced boundary — a client
// cannot squat the stationary arc, a region's stripes, or another node's
// key, because it cannot choose its key at all.
//
// Every rejection increments a dedicated counter (join.rejected.<why>)
// and the admission path obeys a conservation law the harness checks:
// join.requests = join.accepted + Σ join.rejected.*.

import (
	"crypto/sha256"
	"encoding/binary"

	"bristle/internal/hashkey"
	"bristle/internal/wire"
)

// joinStatement builds the canonical byte string a joiner signs: a
// domain tag, then every field of the claim (key, layer, region,
// address, epoch), each length-delimited or fixed-width so no two
// distinct claims serialize identically. Both sides construct it from
// the message fields, so there is nothing to parse — only to recompute.
func joinStatement(self wire.Entry, region string) []byte {
	b := make([]byte, 0, 64+len(region)+len(self.Addr))
	b = append(b, "bristle-join-v1\x00"...)
	b = binary.BigEndian.AppendUint64(b, uint64(self.Key))
	if self.Mobile {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(region)))
	b = append(b, region...)
	b = binary.BigEndian.AppendUint16(b, uint16(len(self.Addr)))
	b = append(b, self.Addr...)
	b = binary.BigEndian.AppendUint64(b, self.Epoch)
	return b
}

// joinProof attaches this node's identity proof to an outgoing TJoin.
// Without an identity the join goes out unsigned (legacy form).
func (n *Node) joinProof(m *wire.Message) {
	id := n.cfg.Identity
	if id == nil {
		return
	}
	m.Pub = id.Public()
	m.Region = stationaryRegion(n.cfg)
	m.Sig = id.Sign(joinStatement(m.Self, m.Region))
}

// stationaryRegion is the region a node's key derivation actually uses:
// mobile nodes never stripe, so their proofs claim no region.
func stationaryRegion(cfg Config) string {
	if cfg.Mobile {
		return ""
	}
	return cfg.Region
}

// verifyJoin checks a TJoin's identity claim. It returns "" to admit, or
// a short reason slug — the suffix of the join.rejected.* counter — to
// reject:
//
//	unsigned     — no proof, and this node requires one
//	bad_sig      — the signature doesn't verify over the join statement
//	key_mismatch — the claimed key is not IDKey(pub, region, regions):
//	               a forged stationary/striped key, a region squat, or
//	               a key belonging to some other identity
//	duplicate_id — the key is already bound to a different identity
//	               (or an unsigned join claims a verified key)
func (n *Node) verifyJoin(m *wire.Message) string {
	if len(m.Pub) == 0 {
		if n.cfg.RequireVerifiedJoins {
			return "unsigned"
		}
		// Unverified joins may coexist with verified ones, but must not
		// claim a key some identity has already proven ownership of.
		n.idsMu.Lock()
		_, taken := n.ids[m.Self.Key]
		n.idsMu.Unlock()
		if taken {
			return "duplicate_id"
		}
		return ""
	}
	if !hashkey.VerifySig(m.Pub, joinStatement(m.Self, m.Region), m.Sig) {
		return "bad_sig"
	}
	region := m.Region
	if m.Self.Mobile {
		region = "" // mobile keys never stripe, whatever the claim says
	}
	if hashkey.IDKey(m.Pub, region, n.cfg.Regions) != m.Self.Key {
		return "key_mismatch"
	}
	fp := sha256.Sum256(m.Pub)
	n.idsMu.Lock()
	defer n.idsMu.Unlock()
	if prev, ok := n.ids[m.Self.Key]; ok && prev != fp {
		return "duplicate_id"
	}
	n.ids[m.Self.Key] = fp
	return ""
}

// handleJoin admits (or rejects) a joining node. Admitted non-observer
// joiners are ingested into ring membership and receive the full view;
// admitted observers receive the stationary directory only and are NOT
// ingested — at production scale the membership table must not grow (and
// be re-cloned) once per mobile client, so observers stay invisible
// until their publish traffic introduces them to their record's owners.
func (n *Node) handleJoin(m *wire.Message) *wire.Message {
	n.count("join.requests")
	if why := n.verifyJoin(m); why != "" {
		n.count("join.rejected." + why)
		n.logf("join rejected (%s) from %v (%s)", why, m.Self.Key, m.Self.Addr)
		return &wire.Message{Type: wire.TJoinResp, Seq: m.Seq}
	}
	n.count("join.accepted")
	if n.cfg.Logger != nil {
		n.logf("join from %v (%s)", m.Self.Key, m.Self.Addr)
	}
	if m.Observer {
		return &wire.Message{Type: wire.TJoinResp, Seq: m.Seq, Found: true, Entries: n.stationarySnapshot()}
	}
	n.members.update(m.Self)
	return &wire.Message{Type: wire.TJoinResp, Seq: m.Seq, Found: true, Entries: n.KnownPeers()}
}
