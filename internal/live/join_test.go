package live

// Tests for the verifiable admission path (join.go): self-certifying
// keys, the join-statement signature, and every rejection slug — forged
// stationary keys, region-stripe squatting, duplicate identities — plus
// the counters each one increments and the admission conservation law.

import (
	"testing"
	"time"

	"bristle/internal/hashkey"
	"bristle/internal/metrics"
	"bristle/internal/transport"
	"bristle/internal/wire"
)

var testRegions = []string{"east", "west", "south"}

// startVerifier boots one stationary node that requires verified joins.
func startVerifier(t *testing.T) (*Node, func()) {
	t.Helper()
	mem := transport.NewMem()
	nd := NewNode(Config{
		Name:                 "verifier",
		Identity:             hashkey.IdentityFromSeed([]byte("verifier")),
		Region:               "east",
		Regions:              testRegions,
		RequireVerifiedJoins: true,
		RequestTimeout:       time.Second,
		Counters:             metrics.NewCounters(),
	}, mem)
	if err := nd.Start(""); err != nil {
		t.Fatalf("start verifier: %v", err)
	}
	return nd, func() { nd.Close() }
}

// signedJoin builds a correctly signed TJoin for id claiming the given
// key, layer, and region.
func signedJoin(id *hashkey.Identity, key hashkey.Key, mobile bool, region, addr string) *wire.Message {
	m := &wire.Message{
		Type:   wire.TJoin,
		Self:   wire.Entry{Key: key, Addr: addr, Mobile: mobile, Epoch: 1},
		Pub:    id.Public(),
		Region: region,
	}
	m.Sig = id.Sign(joinStatement(m.Self, region))
	return m
}

func counter(n *Node, name string) uint64 { return n.Stats().Counters[name] }

// checkAdmissionConservation asserts the join conservation law on n:
// every request was either accepted or rejected with a reason.
func checkAdmissionConservation(t *testing.T, n *Node) {
	t.Helper()
	s := n.Stats()
	var outcomes uint64
	for name, v := range s.Counters {
		if name == "join.accepted" || (len(name) > 14 && name[:14] == "join.rejected.") {
			outcomes += v
		}
	}
	if reqs := s.Counters["join.requests"]; reqs != outcomes {
		t.Fatalf("admission conservation violated: %d requests, %d outcomes (%v)", reqs, outcomes, s.Counters)
	}
}

func TestJoinVerifiedAccepted(t *testing.T) {
	v, stop := startVerifier(t)
	defer stop()

	// A well-formed mobile joiner.
	mid := hashkey.IdentityFromSeed([]byte("mobile-1"))
	mkey := hashkey.IDKey(mid.Public(), "", nil)
	resp := v.handleJoin(signedJoin(mid, mkey, true, "", "m:1"))
	if !resp.Found {
		t.Fatalf("honest mobile join rejected: %v", v.Stats().Counters)
	}
	// A well-formed stationary joiner in a striped region.
	sid := hashkey.IdentityFromSeed([]byte("stationary-1"))
	skey := hashkey.IDKey(sid.Public(), "west", testRegions)
	if resp := v.handleJoin(signedJoin(sid, skey, false, "west", "s:1")); !resp.Found {
		t.Fatalf("honest stationary join rejected: %v", v.Stats().Counters)
	}
	if got := counter(v, "join.accepted"); got != 2 {
		t.Fatalf("join.accepted = %d, want 2", got)
	}
	checkAdmissionConservation(t, v)
}

func TestJoinRejectsUnsigned(t *testing.T) {
	v, stop := startVerifier(t)
	defer stop()
	resp := v.handleJoin(&wire.Message{Type: wire.TJoin, Self: wire.Entry{Key: 42, Addr: "x:1"}})
	if resp.Found {
		t.Fatal("unsigned join accepted by a verifying node")
	}
	if got := counter(v, "join.rejected.unsigned"); got != 1 {
		t.Fatalf("join.rejected.unsigned = %d, want 1", got)
	}
	checkAdmissionConservation(t, v)
}

func TestJoinRejectsBadSignature(t *testing.T) {
	v, stop := startVerifier(t)
	defer stop()
	id := hashkey.IdentityFromSeed([]byte("claimant"))
	key := hashkey.IDKey(id.Public(), "", nil)

	// Signature by a different identity over the same statement.
	m := signedJoin(id, key, true, "", "x:1")
	m.Sig = hashkey.IdentityFromSeed([]byte("impostor")).Sign(joinStatement(m.Self, ""))
	if v.handleJoin(m).Found {
		t.Fatal("join with an impostor's signature accepted")
	}
	// Signature over a different statement (the address was swapped after
	// signing — a captured proof replayed for another endpoint).
	m = signedJoin(id, key, true, "", "x:1")
	m.Self.Addr = "hijack:9"
	if v.handleJoin(m).Found {
		t.Fatal("join with a replayed signature accepted")
	}
	if got := counter(v, "join.rejected.bad_sig"); got != 2 {
		t.Fatalf("join.rejected.bad_sig = %d, want 2", got)
	}
	checkAdmissionConservation(t, v)
}

// TestJoinRejectsForgedStationaryKey is the acceptance-criteria pin: a
// node presenting a valid identity but claiming a stationary/striped key
// that identity didn't earn is rejected, and the rejection is visible as
// a counter in Stats().
func TestJoinRejectsForgedStationaryKey(t *testing.T) {
	v, stop := startVerifier(t)
	defer stop()
	id := hashkey.IdentityFromSeed([]byte("squatter"))

	// Claim a key adjacent to the verifier's own (a targeted squat on a
	// stationary neighborhood), correctly signed — the signature is honest
	// about the claim, the claim itself is the forgery.
	forged := v.Key() + 1
	if v.handleJoin(signedJoin(id, forged, false, "east", "sq:1")).Found {
		t.Fatal("forged stationary key accepted")
	}

	// Region-stripe squatting: the key was legitimately earned under
	// "west", then presented with a "east" region claim to land in east's
	// replica-selection stripes.
	westKey := hashkey.IDKey(id.Public(), "west", testRegions)
	if v.handleJoin(signedJoin(id, westKey, false, "east", "sq:2")).Found {
		t.Fatal("region-stripe squat accepted")
	}

	// A mobile join claiming a striped stationary key: mobile keys never
	// stripe, so the region claim must not sway the derivation.
	if v.handleJoin(signedJoin(id, westKey, true, "west", "sq:3")).Found {
		t.Fatal("mobile join with a stationary striped key accepted")
	}

	if got := counter(v, "join.rejected.key_mismatch"); got != 3 {
		t.Fatalf("join.rejected.key_mismatch = %d, want 3: %v", got, v.Stats().Counters)
	}
	if _, ok := v.Stats().Counters["join.rejected.key_mismatch"]; !ok {
		t.Fatal("rejection counter not surfaced in Stats()")
	}
	checkAdmissionConservation(t, v)
}

func TestJoinRejectsDuplicateIdentity(t *testing.T) {
	v, stop := startVerifier(t)
	defer stop()
	id := hashkey.IdentityFromSeed([]byte("original"))
	key := hashkey.IDKey(id.Public(), "", nil)
	if !v.handleJoin(signedJoin(id, key, true, "", "a:1")).Found {
		t.Fatal("original join rejected")
	}
	// The same identity may re-join (a restart): not a duplicate.
	if !v.handleJoin(signedJoin(id, key, true, "", "a:2")).Found {
		t.Fatal("re-join by the same identity rejected")
	}
	// ed25519 keys cannot be chosen to collide on the ring, so a second
	// identity presenting the first one's key can only arise from a forged
	// derivation — but the duplicate-ID table must still hold the line if
	// key derivation were ever weakened. Simulate by handing the second
	// identity a statement over the first one's key (valid signature,
	// forged claim): key_mismatch fires first, which is fine; then check
	// the unsigned-squat arm, which is the duplicate table's own job.
	v2, stop2 := startVerifierWithoutRequirement(t)
	defer stop2()
	if !v2.handleJoin(signedJoin(id, key, true, "", "a:1")).Found {
		t.Fatal("verified join rejected by permissive node")
	}
	// An unsigned join claiming the verified identity's key: squatting.
	if v2.handleJoin(&wire.Message{Type: wire.TJoin, Self: wire.Entry{Key: key, Addr: "sq:1"}}).Found {
		t.Fatal("unsigned join claiming a verified key accepted")
	}
	if got := counter(v2, "join.rejected.duplicate_id"); got != 1 {
		t.Fatalf("join.rejected.duplicate_id = %d, want 1", got)
	}
	// But an unsigned join for an unclaimed key passes on a permissive node.
	if !v2.handleJoin(&wire.Message{Type: wire.TJoin, Self: wire.Entry{Key: 7, Addr: "u:1"}}).Found {
		t.Fatal("permissive node rejected a plain unsigned join")
	}
	checkAdmissionConservation(t, v)
	checkAdmissionConservation(t, v2)
}

// startVerifierWithoutRequirement boots a node that verifies proofs when
// present but still admits unsigned joins (the mixed-fleet rollout mode).
func startVerifierWithoutRequirement(t *testing.T) (*Node, func()) {
	t.Helper()
	mem := transport.NewMem()
	nd := NewNode(Config{
		Name:           "permissive",
		Identity:       hashkey.IdentityFromSeed([]byte("permissive")),
		RequestTimeout: time.Second,
		Counters:       metrics.NewCounters(),
	}, mem)
	if err := nd.Start(""); err != nil {
		t.Fatalf("start permissive: %v", err)
	}
	return nd, func() { nd.Close() }
}

// TestJoinObserverNotIngested pins the scalable admission mode: an
// observer join returns the stationary directory but must not grow the
// bootstrap's membership view.
func TestJoinObserverNotIngested(t *testing.T) {
	v, stop := startVerifier(t)
	defer stop()
	before := v.Stats().Peers
	id := hashkey.IdentityFromSeed([]byte("observer"))
	m := signedJoin(id, hashkey.IDKey(id.Public(), "", nil), true, "", "o:1")
	m.Observer = true
	resp := v.handleJoin(m)
	if !resp.Found {
		t.Fatalf("observer join rejected: %v", v.Stats().Counters)
	}
	if got := v.Stats().Peers; got != before {
		t.Fatalf("observer join grew membership: %d -> %d", before, got)
	}
	for _, e := range resp.Entries {
		if e.Mobile {
			t.Fatalf("observer directory contains a mobile entry: %+v", e)
		}
	}
	if len(resp.Entries) == 0 {
		t.Fatal("observer directory empty: expected at least the bootstrap")
	}
}

// TestJoinEndToEndVerified runs the full wire path: an identity-bearing
// node joins a verifying bootstrap over the mem transport, and a forged
// claimant is turned away with an error.
func TestJoinEndToEndVerified(t *testing.T) {
	mem := transport.NewMem()
	counters := metrics.NewCounters()
	boot := NewNode(Config{
		Name:                 "boot",
		Identity:             hashkey.IdentityFromSeed([]byte("boot")),
		Region:               "east",
		Regions:              testRegions,
		RequireVerifiedJoins: true,
		RequestTimeout:       time.Second,
		Counters:             counters,
	}, mem)
	if err := boot.Start(""); err != nil {
		t.Fatal(err)
	}
	defer boot.Close()

	good := NewNode(Config{
		Name:           "good",
		Identity:       hashkey.IdentityFromSeed([]byte("good")),
		Mobile:         true,
		RequestTimeout: time.Second,
	}, mem)
	if err := good.Start(""); err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	if err := good.JoinVia(boot.Addr()); err != nil {
		t.Fatalf("verified join failed: %v", err)
	}

	// A node with no identity is refused outright.
	legacy := NewNode(Config{Name: "legacy", Mobile: true, RequestTimeout: time.Second}, mem)
	if err := legacy.Start(""); err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	if err := legacy.JoinVia(boot.Addr()); err == nil {
		t.Fatal("unsigned join succeeded against a verifying bootstrap")
	}
	if got := counters.Get("join.rejected.unsigned"); got != 1 {
		t.Fatalf("join.rejected.unsigned = %d, want 1", got)
	}
	checkAdmissionConservation(t, boot)
}
