package live

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"bristle/internal/transport"
)

// TestDeadDelegateSubtreeFallsBackToDiscovery kills the most capable
// registrant — the LDT delegate that would re-advertise to the rest —
// before the mobile node moves. Its subtree misses the proactive push
// (the §2.3.2 failure case) but every survivor still resolves the new
// address reactively.
func TestDeadDelegateSubtreeFallsBackToDiscovery(t *testing.T) {
	names := []string{"srv", "head", "w1", "w2", "w3", "mob"}
	caps := map[string]float64{
		"srv": 8,
		// head is the most capable registrant: with a low-capacity root it
		// receives the whole delegated list.
		"head": 7,
		"w1":   2, "w2": 2, "w3": 2,
		"mob": 1.5, // k = 1: single delegate
	}
	nodes, cleanup := startCluster(t, names, map[string]bool{"mob": true}, caps)
	defer cleanup()
	mob := nodes["mob"]
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(mob.Publish())
	for _, w := range []string{"head", "w1", "w2", "w3"} {
		must(nodes[w].RegisterWith(mob.Addr()))
	}

	// The delegate dies silently.
	nodes["head"].Close()

	must(mob.Rebind(""))

	// Workers w1..w3 were behind the dead delegate: they must NOT receive
	// the proactive update.
	missed := 0
	for _, w := range []string{"w1", "w2", "w3"} {
		select {
		case <-nodes[w].Updates():
			// Received directly — possible if the LDT put them at level 2
			// under the root rather than under head.
		case <-time.After(300 * time.Millisecond):
			missed++
		}
	}
	if missed == 0 {
		t.Skip("tree shape delivered everyone directly; nothing to verify")
	}

	// Late binding covers: every survivor resolves the fresh address.
	for _, w := range []string{"w1", "w2", "w3"} {
		addr, err := nodes[w].Discover(mob.Key())
		if err != nil {
			t.Fatalf("%s discovery after delegate death: %v", w, err)
		}
		if addr != mob.Addr() {
			t.Fatalf("%s resolved stale address %s", w, addr)
		}
		if err := nodes[w].Ping(addr); err != nil {
			t.Fatalf("%s cannot reach resolved address: %v", w, err)
		}
	}
}

// TestConcurrentOperationsRace exercises gossip, publish, discover,
// register and rebind concurrently; run with -race.
func TestConcurrentOperationsRace(t *testing.T) {
	names := []string{"s1", "s2", "s3", "mob"}
	nodes, cleanup := startCluster(t, names, map[string]bool{"mob": true}, nil)
	defer cleanup()
	mob := nodes["mob"]
	if err := mob.Publish(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Gossipers (lightly throttled so the stress doesn't starve the
	// scheduler on small GOMAXPROCS).
	for i, name := range []string{"s1", "s2", "s3"} {
		nd := nodes[name]
		seed := int64(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
					nd.GossipOnce(rng)
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}
	// Discoverers + registrants.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if addr, err := nodes["s1"].Discover(mob.Key()); err == nil {
				nodes["s1"].RegisterWith(addr)
			}
		}
	}()
	// Publisher under churny rebinding.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := mob.Rebind(""); err != nil {
				t.Errorf("rebind %d: %v", i, err)
				return
			}
		}
	}()
	// Drain updates so the channel never blocks semantics.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-nodes["s1"].Updates():
			}
		}
	}()

	done := make(chan struct{})
	go func() {
		time.Sleep(500 * time.Millisecond)
		close(stop)
	}()
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("concurrent operations deadlocked")
	}

	// System still coherent: final address resolvable.
	addr, err := nodes["s2"].Discover(mob.Key())
	if err != nil {
		t.Fatalf("final discover: %v", err)
	}
	if addr != mob.Addr() {
		t.Fatalf("final address stale: %s vs %s", addr, mob.Addr())
	}
}

// TestRegisterSurvivesTargetRebind ensures registrations established
// before a move keep receiving updates after multiple rebinds.
func TestRegisterSurvivesTargetRebind(t *testing.T) {
	nodes, cleanup := startCluster(t, []string{"s1", "s2", "watch", "mob"},
		map[string]bool{"mob": true}, nil)
	defer cleanup()
	mob := nodes["mob"]
	watch := nodes["watch"]
	if err := mob.Publish(); err != nil {
		t.Fatal(err)
	}
	if err := watch.RegisterWith(mob.Addr()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := mob.Rebind(""); err != nil {
			t.Fatal(err)
		}
		select {
		case up := <-watch.Updates():
			if up.Addr != mob.Addr() {
				t.Fatalf("rebind %d: stale update %s", i, up.Addr)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("rebind %d: no update", i)
		}
	}
	if got := len(mob.Registry()); got != 1 {
		t.Fatalf("registry size %d after rebinds, want 1", got)
	}
}

func TestMemTransportClosedBootstrapJoinFails(t *testing.T) {
	mem := transport.NewMem()
	boot := NewNode(Config{Name: "boot", Capacity: 2}, mem)
	if err := boot.Start(""); err != nil {
		t.Fatal(err)
	}
	addr := boot.Addr()
	boot.Close()

	joiner := NewNode(Config{Name: "joiner", Capacity: 2}, mem)
	if err := joiner.Start(""); err != nil {
		t.Fatal(err)
	}
	defer joiner.Close()
	if err := joiner.JoinVia(addr); err == nil {
		t.Fatal("join via dead bootstrap succeeded")
	}
}
