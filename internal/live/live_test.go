package live

import (
	"math/rand"
	"testing"
	"time"

	"bristle/internal/hashkey"
	"bristle/internal/transport"
)

// startCluster boots n nodes on the mem transport, joined through the
// first node, with full membership propagated.
func startCluster(t *testing.T, names []string, mobile map[string]bool, caps map[string]float64) (map[string]*Node, func()) {
	t.Helper()
	mem := transport.NewMem()
	nodes := make(map[string]*Node, len(names))
	var started []*Node
	for _, name := range names {
		// Short request timeout keeps rebind races cheap in tests: a
		// request dialed into a just-closed listener's backlog errors out
		// quickly instead of waiting the production default.
		cfg := Config{Name: name, Capacity: 4, Mobile: mobile[name], RequestTimeout: time.Second}
		if c, ok := caps[name]; ok {
			cfg.Capacity = c
		}
		nd := NewNode(cfg, mem)
		if err := nd.Start(""); err != nil {
			t.Fatalf("start %s: %v", name, err)
		}
		nodes[name] = nd
		started = append(started, nd)
	}
	boot := started[0]
	for _, nd := range started[1:] {
		if err := nd.JoinVia(boot.Addr()); err != nil {
			t.Fatalf("join: %v", err)
		}
	}
	// A few deterministic gossip rounds give everyone full membership.
	rng := rand.New(rand.NewSource(1))
	for round := 0; round < 4; round++ {
		for _, nd := range started {
			if _, err := nd.GossipOnce(rng); err != nil {
				t.Fatalf("gossip: %v", err)
			}
		}
	}
	cleanup := func() {
		for _, nd := range started {
			nd.Close()
		}
	}
	return nodes, cleanup
}

func TestJoinAndGossipConverges(t *testing.T) {
	names := []string{"s1", "s2", "s3", "m1", "m2"}
	nodes, cleanup := startCluster(t, names, map[string]bool{"m1": true, "m2": true}, nil)
	defer cleanup()
	for name, nd := range nodes {
		if got := len(nd.KnownPeers()); got != len(names) {
			t.Errorf("%s knows %d peers, want %d", name, got, len(names))
		}
	}
}

func TestPublishDiscoverRoundTrip(t *testing.T) {
	nodes, cleanup := startCluster(t, []string{"s1", "s2", "s3", "mob"},
		map[string]bool{"mob": true}, nil)
	defer cleanup()
	mob := nodes["mob"]
	if err := mob.Publish(); err != nil {
		t.Fatalf("publish: %v", err)
	}
	addr, err := nodes["s1"].Discover(mob.Key())
	if err != nil {
		t.Fatalf("discover: %v", err)
	}
	if addr != mob.Addr() {
		t.Fatalf("discovered %s, want %s", addr, mob.Addr())
	}
}

func TestDiscoverUnknownKeyMisses(t *testing.T) {
	nodes, cleanup := startCluster(t, []string{"s1", "s2"}, nil, nil)
	defer cleanup()
	if _, err := nodes["s1"].Discover(hashkey.FromName("ghost")); err != ErrNotFound {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestRebindRepublishesAndReachable(t *testing.T) {
	nodes, cleanup := startCluster(t, []string{"s1", "s2", "s3", "mob"},
		map[string]bool{"mob": true}, nil)
	defer cleanup()
	mob := nodes["mob"]
	if err := mob.Publish(); err != nil {
		t.Fatal(err)
	}
	oldAddr := mob.Addr()
	if err := mob.Rebind(""); err != nil {
		t.Fatalf("rebind: %v", err)
	}
	if mob.Addr() == oldAddr {
		t.Fatal("rebind kept the old address")
	}
	// The location layer serves the new address.
	addr, err := nodes["s1"].Discover(mob.Key())
	if err != nil {
		t.Fatalf("discover after rebind: %v", err)
	}
	if addr != mob.Addr() {
		t.Fatalf("discovered %s, want new %s", addr, mob.Addr())
	}
	// The old attachment point is really gone.
	if err := nodes["s1"].Ping(oldAddr); err == nil {
		t.Fatal("old address still answers")
	}
	// The new one answers.
	if err := nodes["s1"].Ping(mob.Addr()); err != nil {
		t.Fatalf("new address unreachable: %v", err)
	}
}

func TestRebindStationaryRejected(t *testing.T) {
	nodes, cleanup := startCluster(t, []string{"s1", "s2"}, nil, nil)
	defer cleanup()
	if err := nodes["s1"].Rebind(""); err == nil {
		t.Fatal("stationary node rebound")
	}
}

func TestRegisterAndLDTUpdatePush(t *testing.T) {
	names := []string{"s1", "s2", "s3", "s4", "s5", "mob"}
	caps := map[string]float64{"s1": 5, "s2": 4, "s3": 3, "s4": 2, "s5": 1, "mob": 2}
	nodes, cleanup := startCluster(t, names, map[string]bool{"mob": true}, caps)
	defer cleanup()
	mob := nodes["mob"]
	if err := mob.Publish(); err != nil {
		t.Fatal(err)
	}
	// All five stationary nodes register interest.
	for _, s := range []string{"s1", "s2", "s3", "s4", "s5"} {
		if err := nodes[s].RegisterWith(mob.Addr()); err != nil {
			t.Fatalf("register %s: %v", s, err)
		}
	}
	if got := len(mob.Registry()); got != 5 {
		t.Fatalf("registry size %d, want 5", got)
	}

	if err := mob.Rebind(""); err != nil {
		t.Fatalf("rebind: %v", err)
	}

	// Every registrant receives the proactive update (directly or через
	// delegated re-advertisement), within a generous deadline.
	for _, s := range []string{"s1", "s2", "s3", "s4", "s5"} {
		select {
		case up := <-nodes[s].Updates():
			if up.Key != mob.Key() {
				t.Fatalf("%s got update for wrong key", s)
			}
			if up.Addr != mob.Addr() {
				t.Fatalf("%s got stale address %s, want %s", s, up.Addr, mob.Addr())
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s never received the LDT update", s)
		}
	}
	// Registrants' caches now hold the fresh address.
	if addr, ok := nodes["s5"].CachedAddr(mob.Key()); !ok || addr != mob.Addr() {
		t.Fatalf("cache not refreshed: %v %v", addr, ok)
	}
}

func TestUpdateDelegationRecursion(t *testing.T) {
	// With a root of capacity 1 (overloaded after one message) the update
	// must fan out through delegates rather than directly — and still
	// reach everyone.
	names := []string{"a", "b", "c", "d", "e", "f", "g", "mob"}
	caps := map[string]float64{"mob": 1.5} // k = 1: single delegate chain
	for _, n := range names[:7] {
		caps[n] = 3
	}
	nodes, cleanup := startCluster(t, names, map[string]bool{"mob": true}, caps)
	defer cleanup()
	mob := nodes["mob"]
	for _, s := range names[:7] {
		if err := nodes[s].RegisterWith(mob.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	if err := mob.Rebind(""); err != nil {
		t.Fatal(err)
	}
	for _, s := range names[:7] {
		select {
		case up := <-nodes[s].Updates():
			if up.Addr != mob.Addr() {
				t.Fatalf("%s got wrong address", s)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s never received the delegated update", s)
		}
	}
}

func TestLeaseExpiryLive(t *testing.T) {
	mem := transport.NewMem()
	server := NewNode(Config{Name: "server", Capacity: 3}, mem)
	if err := server.Start(""); err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	mob := NewNode(Config{Name: "mob", Capacity: 2, Mobile: true, LeaseTTL: 50 * time.Millisecond}, mem)
	if err := mob.Start(""); err != nil {
		t.Fatal(err)
	}
	defer mob.Close()
	if err := mob.JoinVia(server.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := mob.Publish(); err != nil {
		t.Fatal(err)
	}
	// Fresh: resolvable.
	if _, err := server.Discover(mob.Key()); err != nil {
		t.Fatalf("fresh discover: %v", err)
	}
	time.Sleep(80 * time.Millisecond)
	// Expired: the record must no longer be served.
	if _, err := server.Discover(mob.Key()); err != ErrNotFound {
		t.Fatalf("expired discover: %v, want ErrNotFound", err)
	}
}

func TestPingPong(t *testing.T) {
	nodes, cleanup := startCluster(t, []string{"s1", "s2"}, nil, nil)
	defer cleanup()
	if err := nodes["s1"].Ping(nodes["s2"].Addr()); err != nil {
		t.Fatalf("ping: %v", err)
	}
}

func TestCloseIdempotentAndStopsServing(t *testing.T) {
	mem := transport.NewMem()
	nd := NewNode(Config{Name: "x", Capacity: 1}, mem)
	if err := nd.Start(""); err != nil {
		t.Fatal(err)
	}
	addr := nd.Addr()
	if err := nd.Close(); err != nil {
		t.Fatal(err)
	}
	if err := nd.Close(); err != nil {
		t.Fatal(err)
	}
	other := NewNode(Config{Name: "y", Capacity: 1}, mem)
	if err := other.Start(""); err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if err := other.Ping(addr); err == nil {
		t.Fatal("closed node still answers")
	}
}

func TestLiveOverTCP(t *testing.T) {
	// One end-to-end pass over real localhost sockets.
	tr := &transport.TCP{}
	server := NewNode(Config{Name: "tcp-server", Capacity: 3}, tr)
	if err := server.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	mob := NewNode(Config{Name: "tcp-mob", Capacity: 2, Mobile: true}, tr)
	if err := mob.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer mob.Close()

	watcher := NewNode(Config{Name: "tcp-watcher", Capacity: 2}, tr)
	if err := watcher.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer watcher.Close()

	if err := mob.JoinVia(server.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := watcher.JoinVia(server.Addr()); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 3; i++ {
		mob.GossipOnce(rng)
		watcher.GossipOnce(rng)
		server.GossipOnce(rng)
	}

	if err := mob.Publish(); err != nil {
		t.Fatal(err)
	}
	if err := watcher.RegisterWith(mob.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := mob.Rebind("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	select {
	case up := <-watcher.Updates():
		if up.Addr != mob.Addr() {
			t.Fatalf("TCP update has wrong address: %s vs %s", up.Addr, mob.Addr())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("TCP watcher never received the update")
	}
	addr, err := watcher.Discover(mob.Key())
	if err != nil || addr != mob.Addr() {
		t.Fatalf("TCP discover: %v %s", err, addr)
	}
}
