package live

import (
	"math/rand"
	"sync"
	"time"
)

// MaintainConfig tunes the background maintenance of a live node.
type MaintainConfig struct {
	// GossipInterval is the anti-entropy membership exchange period.
	// Zero disables gossip.
	GossipInterval time.Duration
	// RenewInterval is the location republish period (early binding lease
	// renewal, §2.3.2). Zero derives LeaseTTL/2 when a lease is set, else
	// disables renewal.
	RenewInterval time.Duration
	// ProbeInterval is how often suspect peers (open circuit breakers) are
	// probed so they can be readmitted without waiting for live traffic to
	// half-open them. Zero disables background probing.
	ProbeInterval time.Duration
	// RefreshInterval is the early-binding refresher period: each tick
	// re-resolves the most-recently-used cached locations whose lease is
	// about to lapse, so steady-state sends keep answering from fresh
	// leases instead of blocking on reactive discovery. Zero disables it.
	RefreshInterval time.Duration
	// RefreshTopK bounds how many MRU cache entries one refresh tick may
	// re-resolve. Default 32.
	RefreshTopK int
	// RefreshWindow is how far ahead of lease expiry an entry becomes
	// eligible for refresh. Default 2×RefreshInterval.
	RefreshWindow time.Duration
	// RegistrySweepInterval is how often lapsed registrations (registrants
	// whose lease expired without a renewing re-register) are swept out of
	// R(self). Zero derives LeaseTTL/2 when a lease is set, else disables
	// the sweep; the LDT fan-out also sweeps inline, so the periodic sweep
	// only bounds how long a dead registrant occupies memory.
	RegistrySweepInterval time.Duration
	// Rand seeds gossip partner selection; nil uses a time-seeded source.
	Rand *rand.Rand
}

// StartMaintenance launches the node's periodic duties — anti-entropy
// gossip and lease renewal — and returns a stop function. Stopping is
// idempotent and waits for the loops to exit. Errors inside the loops are
// logged (when a Logger is configured) and do not stop maintenance: a
// missed gossip round or renewal retries on the next tick.
func (n *Node) StartMaintenance(cfg MaintainConfig) (stop func()) {
	if cfg.RenewInterval == 0 && n.cfg.LeaseTTL > 0 {
		cfg.RenewInterval = n.cfg.LeaseTTL / 2
	}
	if cfg.RegistrySweepInterval == 0 && n.cfg.LeaseTTL > 0 {
		cfg.RegistrySweepInterval = n.cfg.LeaseTTL / 2
	}
	rng := cfg.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}

	done := make(chan struct{})
	var wg sync.WaitGroup

	if cfg.GossipInterval > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := time.NewTicker(cfg.GossipInterval)
			defer t.Stop()
			for {
				select {
				case <-done:
					return
				case <-t.C:
					if _, err := n.GossipOnce(rng); err != nil {
						n.logf("maintenance gossip: %v", err)
					}
				}
			}
		}()
	}
	if cfg.RenewInterval > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := time.NewTicker(cfg.RenewInterval)
			defer t.Stop()
			for {
				select {
				case <-done:
					return
				case <-t.C:
					if err := n.Publish(); err != nil {
						n.logf("maintenance renew: %v", err)
					}
				}
			}
		}()
	}
	if cfg.ProbeInterval > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := time.NewTicker(cfg.ProbeInterval)
			defer t.Stop()
			for {
				select {
				case <-done:
					return
				case <-t.C:
					n.ProbeSuspects()
				}
			}
		}()
	}
	if cfg.RegistrySweepInterval > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := time.NewTicker(cfg.RegistrySweepInterval)
			defer t.Stop()
			for {
				select {
				case <-done:
					return
				case <-t.C:
					n.SweepRegistry()
				}
			}
		}()
	}
	if cfg.RefreshInterval > 0 && n.loc != nil {
		topK := cfg.RefreshTopK
		if topK <= 0 {
			topK = 32
		}
		window := cfg.RefreshWindow
		if window <= 0 {
			window = 2 * cfg.RefreshInterval
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := time.NewTicker(cfg.RefreshInterval)
			defer t.Stop()
			for {
				select {
				case <-done:
					return
				case <-t.C:
					n.refreshExpiring(topK, window)
				}
			}
		}()
	}

	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}
