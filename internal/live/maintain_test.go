package live

import (
	"math/rand"
	"testing"
	"time"

	"bristle/internal/transport"
)

func TestMaintenanceRenewsLeases(t *testing.T) {
	mem := transport.NewMem()
	server := NewNode(Config{Name: "srv", Capacity: 3}, mem)
	if err := server.Start(""); err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	mob := NewNode(Config{
		Name: "mob", Capacity: 2, Mobile: true,
		LeaseTTL: 80 * time.Millisecond,
	}, mem)
	if err := mob.Start(""); err != nil {
		t.Fatal(err)
	}
	defer mob.Close()
	if err := mob.JoinVia(server.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := mob.Publish(); err != nil {
		t.Fatal(err)
	}

	stop := mob.StartMaintenance(MaintainConfig{
		RenewInterval: 25 * time.Millisecond,
		Rand:          rand.New(rand.NewSource(1)),
	})
	defer stop()

	// Well past the raw TTL, the record must still resolve thanks to the
	// periodic republish (early binding).
	time.Sleep(300 * time.Millisecond)
	if _, err := server.Discover(mob.Key()); err != nil {
		t.Fatalf("lease lapsed despite renewal: %v", err)
	}

	// After stopping maintenance the record ages out.
	stop()
	time.Sleep(200 * time.Millisecond)
	if _, err := server.Discover(mob.Key()); err != ErrNotFound {
		t.Fatalf("record survived TTL without renewal: %v", err)
	}
}

func TestMaintenanceGossipPropagatesMembership(t *testing.T) {
	mem := transport.NewMem()
	var all []*Node
	mk := func(name string) *Node {
		nd := NewNode(Config{Name: name, Capacity: 2}, mem)
		if err := nd.Start(""); err != nil {
			t.Fatal(err)
		}
		all = append(all, nd)
		return nd
	}
	boot := mk("boot")
	a := mk("a")
	b := mk("b")
	c := mk("c")
	defer func() {
		for _, nd := range all {
			nd.Close()
		}
	}()

	// a and b join via boot; c joins via a — nobody knows everyone yet.
	for i, nd := range []*Node{a, b} {
		if err := nd.JoinVia(boot.Addr()); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	if err := c.JoinVia(a.Addr()); err != nil {
		t.Fatal(err)
	}

	var stops []func()
	for i, nd := range all {
		stops = append(stops, nd.StartMaintenance(MaintainConfig{
			GossipInterval: 10 * time.Millisecond,
			Rand:           rand.New(rand.NewSource(int64(i))),
		}))
	}
	defer func() {
		for _, s := range stops {
			s()
		}
	}()

	deadline := time.After(5 * time.Second)
	for {
		complete := true
		for _, nd := range all {
			if len(nd.KnownPeers()) != len(all) {
				complete = false
			}
		}
		if complete {
			return
		}
		select {
		case <-deadline:
			for _, nd := range all {
				t.Logf("%v knows %d peers", nd.Key(), len(nd.KnownPeers()))
			}
			t.Fatal("gossip never converged")
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func TestMaintenanceStopIdempotent(t *testing.T) {
	mem := transport.NewMem()
	nd := NewNode(Config{Name: "x", Capacity: 1}, mem)
	if err := nd.Start(""); err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	stop := nd.StartMaintenance(MaintainConfig{GossipInterval: 5 * time.Millisecond})
	stop()
	stop() // second call must not panic or hang
}
