package live

// This file is the node's membership and registry state, both held as
// copy-on-write snapshots behind atomic pointers: readers (KnownPeers,
// Registry, replica selection for every publish and discover) load one
// pointer and walk an immutable view — no lock, no contention with
// writers or with each other. Writers clone under a small private mutex
// and swap the pointer; the membership write path additionally has a
// lock-free fast path for the overwhelmingly common case of re-ingesting
// a binding that is already known (every steady-state publish renewal),
// which is what keeps batch ingest allocation-free.

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bristle/internal/hashkey"
	"bristle/internal/wire"
)

// memberView is one immutable membership snapshot. sorted and stationary
// are derived once at construction and must never be mutated — callers
// that need to reorder entries (ownersForKey sorts in place) copy first.
type memberView struct {
	byKey      map[hashkey.Key]wire.Entry
	sorted     []wire.Entry // every entry, ascending by key (incl. self)
	stationary []wire.Entry // the non-mobile subset, ascending by key
}

func (v *memberView) with(e wire.Entry) *memberView {
	nv := &memberView{byKey: make(map[hashkey.Key]wire.Entry, len(v.byKey)+1)}
	for k, cur := range v.byKey {
		nv.byKey[k] = cur
	}
	nv.byKey[e.Key] = e
	nv.sorted = make([]wire.Entry, 0, len(nv.byKey))
	for _, cur := range nv.byKey {
		nv.sorted = append(nv.sorted, cur)
	}
	sort.Slice(nv.sorted, func(i, j int) bool { return nv.sorted[i].Key < nv.sorted[j].Key })
	for _, cur := range nv.sorted {
		if !cur.Mobile {
			nv.stationary = append(nv.stationary, cur)
		}
	}
	return nv
}

// membership is the COW membership table.
type membership struct {
	mu   sync.Mutex // serializes writers only
	view atomic.Pointer[memberView]
}

func (m *membership) init() {
	m.view.Store(&memberView{byKey: make(map[hashkey.Key]wire.Entry)})
}

func (m *membership) snapshot() *memberView { return m.view.Load() }

// update records e under newest-epoch-wins: an entry carrying an older
// epoch than the one already known is out-of-order news and is dropped;
// an equal epoch overwrites (a renewal may legitimately change lease or
// capacity without a move). The unlocked identical-entry check in front
// makes re-ingesting a known binding — every steady-state publish — free.
func (m *membership) update(e wire.Entry) {
	if cur, ok := m.view.Load().byKey[e.Key]; ok && cur == e {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	v := m.view.Load()
	if cur, ok := v.byKey[e.Key]; ok && (cur.Epoch > e.Epoch || cur == e) {
		return
	}
	m.view.Store(v.with(e))
}

// merge adopts a gossiped peer entry if the key is unknown or the entry
// carries a strictly newer epoch (the ordering makes adopting hearsay
// safe: a newer epoch is a later binding by definition, so merge stays
// idempotent and can never regress an address). The caller's own entry
// is never adopted from hearsay.
func (m *membership) merge(selfKey hashkey.Key, e wire.Entry) {
	if e.Key == selfKey {
		return
	}
	if cur, ok := m.view.Load().byKey[e.Key]; ok && e.Epoch <= cur.Epoch {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	v := m.view.Load()
	if cur, ok := v.byKey[e.Key]; ok && e.Epoch <= cur.Epoch {
		return
	}
	m.view.Store(v.with(e))
}

func (m *membership) size() int { return len(m.view.Load().byKey) }

// registration is one R(self) entry held under its registrant's lease: a
// registrant that stops renewing its interest (re-registering) lapses out
// of the LDT fan-out instead of receiving pushes forever. TTLMilli 0
// registers without a lease.
type registration struct {
	entry   wire.Entry
	expires time.Time
	hasTTL  bool
}

func (r registration) live(now time.Time) bool {
	return !r.hasTTL || now.Before(r.expires)
}

type registryView struct {
	byKey map[hashkey.Key]registration
}

// registryTable is the COW R(self) table: TRegister writes, the LDT
// fan-out and Registry read, the sweeps rebuild without lapsed leases.
type registryTable struct {
	mu   sync.Mutex // serializes writers only
	view atomic.Pointer[registryView]
}

func (t *registryTable) init() {
	t.view.Store(&registryView{byKey: make(map[hashkey.Key]registration)})
}

func (t *registryTable) snapshot() *registryView { return t.view.Load() }

func (t *registryTable) put(k hashkey.Key, reg registration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := t.view.Load()
	nv := &registryView{byKey: make(map[hashkey.Key]registration, len(v.byKey)+1)}
	for key, r := range v.byKey {
		nv.byKey[key] = r
	}
	nv.byKey[k] = reg
	t.view.Store(nv)
}

// sweep drops registrations whose lease lapsed before now, returning how
// many were removed. When nothing lapsed, the view is left untouched.
func (t *registryTable) sweep(now time.Time) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := t.view.Load()
	lapsed := 0
	for _, r := range v.byKey {
		if !r.live(now) {
			lapsed++
		}
	}
	if lapsed == 0 {
		return 0
	}
	nv := &registryView{byKey: make(map[hashkey.Key]registration, len(v.byKey)-lapsed)}
	for k, r := range v.byKey {
		if r.live(now) {
			nv.byKey[k] = r
		}
	}
	t.view.Store(nv)
	return lapsed
}

func (t *registryTable) size() int { return len(t.view.Load().byKey) }

func (n *Node) handleLeafExchange(m *wire.Message) *wire.Message {
	for _, e := range m.Entries {
		n.members.merge(n.key, e)
	}
	return &wire.Message{Type: wire.TLeafExchange, Seq: m.Seq, Found: true, Entries: n.KnownPeers()}
}

// handleRegister records the sender's interest in this node's movement.
// The registrant's own lease bounds that interest: re-registering renews
// it, silence lets it lapse (swept by maintenance and by the LDT fan-out
// itself).
func (n *Node) handleRegister(m *wire.Message) *wire.Message {
	reg := registration{entry: m.Self}
	if m.Self.TTLMilli > 0 {
		reg.hasTTL = true
		reg.expires = time.Now().Add(time.Duration(m.Self.TTLMilli) * time.Millisecond)
	}
	n.registry.put(m.Self.Key, reg)
	if n.cfg.Logger != nil {
		n.logf("register from %v (%s)", m.Self.Key, m.Self.Addr)
	}
	return &wire.Message{Type: wire.TRegisterAck, Seq: m.Seq, Found: true}
}

// KnownPeers returns the node's current membership view (including
// itself), sorted by key. Lock-free: it copies one immutable snapshot.
func (n *Node) KnownPeers() []wire.Entry {
	v := n.members.snapshot()
	out := make([]wire.Entry, len(v.sorted))
	copy(out, v.sorted)
	return out
}

// Registry returns R(self): the entries registered as interested in this
// node's movement whose lease has not lapsed, sorted by key. Lock-free:
// it reads one immutable snapshot.
func (n *Node) Registry() []wire.Entry {
	now := time.Now()
	v := n.registry.snapshot()
	out := make([]wire.Entry, 0, len(v.byKey))
	for _, r := range v.byKey {
		if r.live(now) {
			out = append(out, r.entry)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// SweepRegistry drops registrations whose lease has lapsed and returns
// how many were removed (counted as registry.expired). StartMaintenance
// calls it periodically; the LDT fan-out also sweeps inline, so the
// periodic sweep only bounds how long a dead registrant occupies memory.
func (n *Node) SweepRegistry() int {
	removed := n.registry.sweep(time.Now())
	if removed > 0 {
		n.cfg.Counters.Add("registry.expired", uint64(removed))
		n.logf("swept %d lapsed registrations", removed)
	}
	return removed
}

// GossipOnce performs one anti-entropy round with a random known peer,
// exchanging membership views. Returns the number of entries learned.
func (n *Node) GossipOnce(rng *rand.Rand) (int, error) {
	v := n.members.snapshot()
	before := len(v.byKey)
	others := make([]wire.Entry, 0, len(v.sorted))
	for _, e := range v.sorted {
		if e.Key != n.key {
			others = append(others, e)
		}
	}
	if len(others) == 0 {
		return 0, nil
	}
	// Prefer partners that are not currently suspect; fall back to the
	// full set so an all-suspect view still gossips (and probes).
	healthy := others[:0:0]
	for _, e := range others {
		if !n.suspect(e.Addr) {
			healthy = append(healthy, e)
		}
	}
	if len(healthy) > 0 {
		others = healthy
	}
	target := others[rng.Intn(len(others))]
	resp, err := n.request(context.Background(), target.Addr, &wire.Message{Type: wire.TLeafExchange, Entries: v.sorted})
	if err != nil {
		return 0, err
	}
	for _, e := range resp.Entries {
		n.members.merge(n.key, e)
	}
	return n.members.size() - before, nil
}

// stationarySnapshot returns a private copy of the known stationary
// peers — the only legal owners of location records (Section 2.1; mobile
// peers' addresses are exactly what's being resolved). A copy because
// ownersForKey re-sorts its candidate slice in place.
func (n *Node) stationarySnapshot() []wire.Entry {
	v := n.members.snapshot()
	if len(v.stationary) == 0 {
		return nil
	}
	out := make([]wire.Entry, len(v.stationary))
	copy(out, v.stationary)
	return out
}

// ownersForKey picks the key's replica set via SelectReplicas and orders
// it for contact: healthy before suspect, then by effective RTT (h is
// one pre-sampled peerHealth snapshot, so a batched publish ranks
// thousands of keys without re-locking the breaker table or re-drawing
// exploration jitter per key). cands is re-sorted in place: the
// returned slice aliases it and must be consumed before the next call.
func ownersForKey(cands []wire.Entry, h *peerHealth, key hashkey.Key, k, regions int) []wire.Entry {
	owners := SelectReplicas(cands, key, k, regions)
	OrderReplicas(owners, h.suspect, h.eff)
	return owners
}

// SelectReplicas picks key's k-replica set from cands: the k closest by
// ring distance, diversified across regions when the deployment is
// region-striped (regions = len(Config.Regions), 0 or 1 disables it).
//
// Under region-striped placement (hashkey.RegionStriped) a stationary
// peer's region is recoverable from its key alone (hashkey.RegionIndex),
// so diversification needs no wire metadata and every node — publisher
// or resolver — computes the identical set from the same membership:
// walking outward from key, the closest candidate of each distinct
// region is taken first; remaining slots fill with the closest passed-
// over candidates. Plain k-closest placement can put a record's whole
// replica set in one region (labels are i.i.d. across the sorted ring —
// only k!/k^k of sets span k regions); diversified selection makes every
// set span min(k, regions) regions, which is what gives every resolver a
// near replica for latency-ordered contact to find.
//
// cands is re-sorted in place; the result aliases it. Exported so the
// stretch evaluation (internal/stretch) places records exactly as the
// live node does.
func SelectReplicas(cands []wire.Entry, key hashkey.Key, k, regions int) []wire.Entry {
	sort.Slice(cands, func(i, j int) bool {
		return hashkey.Closer(key, cands[i].Key, cands[j].Key)
	})
	if k >= len(cands) {
		return cands
	}
	if regions < 2 {
		return cands[:k]
	}
	// One in-place stable pass: bubble the closest candidate of each
	// not-yet-seen region forward into the take region [0, taken), keeping
	// everything else in distance order, then cut at k.
	seen := make(map[int]bool, regions)
	taken := 0
	for i := 0; i < len(cands) && taken < k && len(seen) < regions; i++ {
		ri := hashkey.RegionIndex(hashkey.FullRing(), cands[i].Key, regions)
		if ri < 0 || seen[ri] {
			continue
		}
		seen[ri] = true
		e := cands[i]
		copy(cands[taken+1:i+1], cands[taken:i])
		cands[taken] = e
		taken++
	}
	return cands[:k]
}

// OrderReplicas stable-sorts a replica set into contact order: peers in
// suspect sort after healthy ones regardless of RTT (a near but broken
// replica still costs a timeout before the breaker trips), and within
// each class peers sort by ascending effective RTT from eff. Addresses
// missing from eff compare equal at zero, so with no estimates at all
// the incoming (key-distance) order is preserved — exactly the
// pre-proximity behavior. Exported so the simulation harness
// (internal/stretch) measures the same ordering the live node runs.
func OrderReplicas(replicas []wire.Entry, suspect map[string]bool, eff map[string]time.Duration) {
	sort.SliceStable(replicas, func(i, j int) bool {
		si, sj := suspect[replicas[i].Addr], suspect[replicas[j].Addr]
		if si != sj {
			return !si
		}
		return eff[replicas[i].Addr] < eff[replicas[j].Addr]
	})
}

// peerHealth is one fan-out's frozen view of replica quality: the
// suspect set (one scan of the breaker table, not one lock round per
// candidate per key) and every candidate's effective RTT — the measured
// EWMA where one exists, otherwise a jittered exploration bonus drawn
// once per fan-out. Freezing both keeps replica ordering stable across
// the thousands of keys of a batched publish and makes its cost
// O(candidates) instead of O(candidates × keys).
type peerHealth struct {
	suspect map[string]bool
	eff     map[string]time.Duration
}

// peerHealth samples suspicion and RTT once for a fan-out over cands.
//
// Unknown-RTT candidates draw an effective RTT uniformly in [0, mean of
// the measured candidates] (floor rttExploreFloor when nothing is
// measured yet): small enough that a new peer is tried ahead of far
// replicas — which is how its estimate gets seeded — but random enough
// that it doesn't permanently preempt the measured nearest one.
func (n *Node) peerHealth(cands []wire.Entry) *peerHealth {
	h := &peerHealth{
		suspect: n.peersTbl.suspectSet(),
		eff:     make(map[string]time.Duration, len(cands)),
	}
	var sum time.Duration
	known := 0
	for _, e := range cands {
		if _, ok := h.eff[e.Addr]; ok {
			continue
		}
		if est, _, ok := n.rtt.estimate(e.Addr); ok {
			h.eff[e.Addr] = est
			sum += est
			known++
		}
	}
	mean := rttExploreFloor
	if known > 0 {
		if mean = sum / time.Duration(known); mean <= 0 {
			mean = 1
		}
	}
	for _, e := range cands {
		if _, ok := h.eff[e.Addr]; !ok {
			h.eff[e.Addr] = n.jitterDuration(mean)
		}
	}
	return h
}

// jitterDuration draws uniformly from [0, max] on the node's seeded rng.
func (n *Node) jitterDuration(max time.Duration) time.Duration {
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	return time.Duration(n.rng.Int63n(int64(max) + 1))
}

// ownersOf returns the k known *stationary* peers closest to key,
// replicated for §2.3.2 availability, ordered for contact: suspects
// last, then ascending measured RTT — so publish and discovery fall
// over across replicas nearest-healthy-first and pay a suspect peer's
// timeout only when every healthy replica failed.
func (n *Node) ownersOf(key hashkey.Key, k int) ([]wire.Entry, error) {
	cands := n.stationarySnapshot()
	if len(cands) == 0 {
		return nil, errors.New("live: no known stationary peers")
	}
	return ownersForKey(cands, n.peerHealth(cands), key, k, len(n.cfg.Regions)), nil
}
