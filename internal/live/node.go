// Package live runs Bristle's location-management protocol over real
// connections (TCP or the in-memory test transport): publish, discover,
// register, and LDT-driven location updates, with leases, exactly as
// Section 2.3 describes.
//
// A live node keeps full membership knowledge refreshed by anti-entropy
// gossip — appropriate for the small rings a single machine can host.
// (The O(log N) routing-state behaviour of large overlays is exercised by
// the simulation packages; the live node demonstrates the protocol end to
// end: a mobile node re-binds to a new port, republishes, pushes updates
// down a capacity-scheduled dissemination tree, and correspondents keep
// reaching it.)
//
// Every public operation that can touch the network has a Context-suffixed
// form (PublishContext, DiscoverContext, ...) that observes the caller's
// cancellation and deadline end to end — through retries, backoff pauses,
// dials, and pooled exchanges. The suffix-less forms are thin wrappers
// over context.Background() kept for compatibility.
package live

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bristle/internal/hashkey"
	"bristle/internal/loccache"
	"bristle/internal/metrics"
	"bristle/internal/transport"
	"bristle/internal/wire"
)

// Update is a proactive location update delivered to a registered node.
type Update struct {
	Key  hashkey.Key
	Addr string
}

// Config parameterizes a live node. Prefer constructing nodes with New
// and functional options (options.go); Config remains public for callers
// that want to build the whole policy in one literal.
type Config struct {
	// Name seeds the node's hash key (FromName), standing in for a stable
	// node identity independent of its network address.
	Name string
	// Capacity is the advertised C_X used to schedule LDTs.
	Capacity float64
	// Mobile marks the node as relocatable (Rebind allowed).
	Mobile bool
	// LeaseTTL bounds how long published locations and caches stay valid.
	// Zero disables expiry.
	LeaseTTL time.Duration
	// Replication is how many stationary peers hold this node's location
	// record (§2.3.2 availability; discovery falls over across them).
	// Minimum effective value 1; default 2.
	Replication int
	// RequestTimeout bounds one attempt of a request/response exchange —
	// a peer that accepts but never answers costs at most this long per
	// attempt. Default 10s.
	RequestTimeout time.Duration
	// RetryAttempts caps how many times one exchange is attempted before
	// giving up (default 4; 1 restores single-shot semantics).
	RetryAttempts int
	// RetryBase is the cap of the first backoff pause; it doubles per
	// retry (full jitter: the pause is uniform in [0, cap]). Default 25ms.
	RetryBase time.Duration
	// RetryMax caps a single backoff pause. Default 1s.
	RetryMax time.Duration
	// RetryBudget bounds the total wall time of one exchange across all
	// attempts and pauses. Default RetryAttempts × RequestTimeout.
	RetryBudget time.Duration
	// SuspicionThreshold is how many consecutive failed exchanges trip a
	// peer's circuit breaker; tripped peers fail fast and are deprioritized
	// as replicas until a probe succeeds. Default 3; negative disables
	// suspicion entirely.
	SuspicionThreshold int
	// SuspicionCooldown is how long a tripped breaker fails fast before it
	// lets one probe through (half-open). Default 2s.
	SuspicionCooldown time.Duration
	// Pool tunes the multiplexed per-peer connection pool under the RPC
	// layer. The zero value enables pooling with defaults; set
	// Pool.Disabled to revert to dial-per-request exchanges.
	Pool PoolConfig
	// Cache tunes the lease-aware sharded location cache behind Resolve
	// (resolve.go). The zero value enables the cache with defaults; set
	// Cache.Disabled to make every resolve a network discovery.
	Cache CacheConfig
	// Counters optionally records resilience events (rpc.retries,
	// rpc.timeouts, breaker.trips, pool.dials, ...); nil disables them.
	Counters *metrics.Counters
	// Gauges optionally exposes instantaneous pool state (pool.sessions,
	// pool.inflight); nil disables them.
	Gauges *metrics.Gauges
	// Logger receives protocol diagnostics; nil silences them.
	Logger *log.Logger
}

// withDefaults fills every unset knob — the single place defaults live,
// shared by NewNode and New.
func (cfg Config) withDefaults() Config {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1
	}
	if cfg.Replication < 1 {
		cfg.Replication = 2
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.RetryAttempts <= 0 {
		cfg.RetryAttempts = 4
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 25 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = time.Second
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = time.Duration(cfg.RetryAttempts) * cfg.RequestTimeout
	}
	if cfg.SuspicionThreshold == 0 {
		cfg.SuspicionThreshold = 3
	}
	if cfg.SuspicionCooldown <= 0 {
		cfg.SuspicionCooldown = 2 * time.Second
	}
	cfg.Pool = cfg.Pool.withDefaults()
	// Cache defaults live in loccache.Config.withDefaults; zero values
	// pass through so one place owns them.
	return cfg
}

type storedLoc struct {
	addr    string
	expires time.Time
	hasTTL  bool
	epoch   uint64 // publisher's move counter; newest-epoch-wins
}

func (s storedLoc) valid(now time.Time) bool {
	return s.addr != "" && (!s.hasTTL || now.Before(s.expires))
}

// registration is one R(self) entry held under its registrant's lease: a
// registrant that stops renewing its interest (re-registering) lapses out
// of the LDT fan-out instead of receiving pushes forever. TTLMilli 0
// registers without a lease.
type registration struct {
	entry   wire.Entry
	expires time.Time
	hasTTL  bool
}

func (r registration) live(now time.Time) bool {
	return !r.hasTTL || now.Before(r.expires)
}

// listenerState is one network attachment point: the listener plus every
// connection accepted through it, so closing the attachment also closes
// the long-lived multiplexed connections remote pools hold against it
// (without this, Close would wait forever on their serve goroutines).
type listenerState struct {
	l transport.Listener

	mu     sync.Mutex
	closed bool
	conns  map[transport.Conn]struct{}
}

func newListenerState(l transport.Listener) *listenerState {
	return &listenerState{l: l, conns: make(map[transport.Conn]struct{})}
}

func (ls *listenerState) addr() string { return ls.l.Addr() }

// track registers an accepted conn; false means the attachment already
// closed and the conn must not be served.
func (ls *listenerState) track(c transport.Conn) bool {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.closed {
		return false
	}
	ls.conns[c] = struct{}{}
	return true
}

func (ls *listenerState) forget(c transport.Conn) {
	ls.mu.Lock()
	delete(ls.conns, c)
	ls.mu.Unlock()
}

// close shuts the listener and every tracked conn. Idempotent.
func (ls *listenerState) close() {
	ls.mu.Lock()
	if ls.closed {
		ls.mu.Unlock()
		return
	}
	ls.closed = true
	conns := make([]transport.Conn, 0, len(ls.conns))
	for c := range ls.conns {
		conns = append(conns, c)
	}
	ls.mu.Unlock()
	ls.l.Close()
	for _, c := range conns {
		c.Close()
	}
}

// Node is one live Bristle participant.
type Node struct {
	cfg  Config
	key  hashkey.Key
	tr   transport.Transport
	pool *pool // nil when cfg.Pool.Disabled

	mu       sync.Mutex
	listener *listenerState
	addr     string
	peers    map[hashkey.Key]wire.Entry   // known membership (incl. self)
	registry map[hashkey.Key]registration // R(self): interested nodes, leased
	seq      uint32
	stopped  bool

	// epoch is this node's publish ordering: every frame that asserts
	// "key K is at address A" carries the epoch A was bound under, and
	// receivers apply newest-epoch-wins. Bumped by every rebind; seeded
	// from the wall clock so a restarted node (fresh process, same name)
	// still outranks its pre-crash publications.
	epoch uint64
	// owned is the set of resource keys published at this node's address
	// beyond its own identity key — the records a move must re-home. All
	// of them ride one TPublishBatch per owner replica.
	owned map[hashkey.Key]struct{}
	// seenUpdates tracks, per subject, the newest epoch this node has
	// ingested through TUpdate — the guard that keeps a delayed or
	// duplicated push from regressing the cache/peers to a pre-move
	// address.
	seenUpdates map[hashkey.Key]uint64

	// store is the location *repository* fragment this node holds as an
	// owner/replica of other nodes' keys: written only by TPublish (their
	// publications), read only to answer TDiscover. It is the thing the
	// network asks this node about.
	store map[hashkey.Key]storedLoc

	// loc is the opposite direction: locations this node has *learned*
	// about others — TUpdate pushes (early binding) and discover answers
	// (late binding) write through it; ResolveContext reads it. It is
	// never served to the network, and it is deliberately outside mu so
	// the resolve hot path shares no lock with the protocol path. Nil
	// when Cache.Disabled.
	loc     *loccache.Cache
	flights loccache.Group // coalesces concurrent discoveries per key
	closed  atomic.Bool    // set by Close; gates background refreshes

	bmu      sync.Mutex          // guards breakers, independent of mu
	breakers map[string]*breaker // per-peer suspicion circuit breakers

	rngMu sync.Mutex
	rng   *rand.Rand // seeds retry jitter; per-node deterministic

	wg      sync.WaitGroup
	updates chan Update

	// runCtx is the node's lifecycle context: canceled by Close, it bounds
	// every background send the node originates on its own behalf (LDT
	// re-advertisement, the update flusher) so shutdown never stalls on
	// in-flight fan-out.
	runCtx    context.Context
	runCancel context.CancelFunc
	updq      *updateQueue // coalescing LDT push queue (advertise.go)
	flusherOn bool         // under mu: update flusher goroutine started
}

// NewNode creates a stopped node. Call Start to begin serving. (New in
// options.go is the preferred constructor.)
func NewNode(cfg Config, tr transport.Transport) *Node {
	cfg = cfg.withDefaults()
	key := hashkey.FromName(cfg.Name)
	n := &Node{
		cfg:         cfg,
		key:         key,
		tr:          tr,
		peers:       make(map[hashkey.Key]wire.Entry),
		store:       make(map[hashkey.Key]storedLoc),
		registry:    make(map[hashkey.Key]registration),
		breakers:    make(map[string]*breaker),
		rng:         rand.New(rand.NewSource(int64(key))), // deterministic per-node jitter
		updates:     make(chan Update, 64),
		epoch:       nextEpoch(0),
		owned:       make(map[hashkey.Key]struct{}),
		seenUpdates: make(map[hashkey.Key]uint64),
		updq:        newUpdateQueue(),
	}
	n.runCtx, n.runCancel = context.WithCancel(context.Background())
	if !cfg.Pool.Disabled {
		n.pool = newPool(tr, cfg.Pool, cfg.Counters, cfg.Gauges)
	}
	if !cfg.Cache.Disabled {
		n.loc = loccache.New(loccache.Config{
			Shards:      cfg.Cache.Shards,
			MaxEntries:  cfg.Cache.MaxEntries,
			NegativeTTL: cfg.Cache.NegativeTTL,
			StaleWindow: cfg.Cache.StaleWindow,
			Counters:    cfg.Counters,
			Gauges:      cfg.Gauges,
		})
	}
	return n
}

// Key returns the node's hash key.
func (n *Node) Key() hashkey.Key { return n.key }

// Addr returns the node's current dialable address ("" before Start).
func (n *Node) Addr() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.addr
}

// Updates delivers proactive location updates pushed to this node through
// the dissemination trees it registered with.
func (n *Node) Updates() <-chan Update { return n.updates }

// Start binds a listener on listenAddr (":0" for an ephemeral port) and
// begins serving the protocol.
func (n *Node) Start(listenAddr string) error {
	l, err := n.tr.Listen(listenAddr)
	if err != nil {
		return err
	}
	ls := newListenerState(l)
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		ls.close()
		return ErrStopped
	}
	n.listener = ls
	n.addr = ls.addr()
	n.peers[n.key] = n.selfEntryLocked()
	n.mu.Unlock()

	n.wg.Add(1)
	go n.acceptLoop(ls)
	return nil
}

// Close stops serving: the connection pool drains, the listener and every
// accepted connection close, and all server goroutines exit.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return nil
	}
	n.stopped = true
	ls := n.listener
	n.mu.Unlock()
	n.closed.Store(true) // stop launching background refreshes
	n.runCancel()        // abort in-flight LDT fan-out and flusher sends
	n.updq.close()       // unblock enqueue waiters; the flusher drains out
	if n.pool != nil {
		n.pool.Close()
	}
	if ls != nil {
		ls.close()
	}
	n.wg.Wait()
	return nil
}

func (n *Node) selfEntryLocked() wire.Entry {
	return wire.Entry{
		Key:      n.key,
		Addr:     n.addr,
		Capacity: n.cfg.Capacity,
		TTLMilli: uint32(n.cfg.LeaseTTL / time.Millisecond),
		Mobile:   n.cfg.Mobile,
		Epoch:    n.epoch,
	}
}

// nextEpoch returns a publish epoch strictly greater than prev. Seeding
// from the wall clock makes epochs monotonic across process restarts
// (a rebooted publisher must outrank its own pre-crash records at
// replicas that survived it); the prev+1 arm keeps them monotonic even
// against a clock that stands still or steps backwards.
func nextEpoch(prev uint64) uint64 {
	now := uint64(time.Now().UnixNano())
	if now <= prev {
		return prev + 1
	}
	return now
}

// Epoch returns the node's current publish epoch.
func (n *Node) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// OwnKeys adds resource keys to the set this node publishes at its own
// address: PublishContext re-homes them all (batched per owner replica)
// and every rebind moves them with the node.
func (n *Node) OwnKeys(keys ...hashkey.Key) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, k := range keys {
		n.owned[k] = struct{}{}
	}
}

// DisownKeys removes resource keys from the owned set. Already-published
// records lapse with their lease rather than being withdrawn.
func (n *Node) DisownKeys(keys ...hashkey.Key) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, k := range keys {
		delete(n.owned, k)
	}
}

// OwnedKeys returns the resource keys currently published at this node's
// address (beyond its identity key), sorted.
func (n *Node) OwnedKeys() []hashkey.Key {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]hashkey.Key, 0, len(n.owned))
	for k := range n.owned {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SelfEntry returns the node's current state-pair.
func (n *Node) SelfEntry() wire.Entry {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.selfEntryLocked()
}

func (n *Node) logf(format string, args ...interface{}) {
	if n.cfg.Logger != nil {
		n.cfg.Logger.Printf("[%s %s] "+format, append([]interface{}{n.cfg.Name, n.key}, args...)...)
	}
}

func (n *Node) acceptLoop(ls *listenerState) {
	defer n.wg.Done()
	for {
		conn, err := ls.l.Accept()
		if err != nil {
			return
		}
		if !ls.track(conn) {
			conn.Close()
			return
		}
		n.wg.Add(1)
		go n.serveConn(ls, conn)
	}
}

// serveConnWorkers bounds the concurrently running handlers of one
// accepted connection.
const serveConnWorkers = 64

// serveConn serves one accepted connection. Each inbound message is
// dispatched on its own goroutine (bounded by serveConnWorkers) with
// responses serialized by a send mutex — a handler that blocks, or a
// response that is slow to produce, cannot head-of-line-block the other
// exchanges multiplexed on this connection.
func (n *Node) serveConn(ls *listenerState, conn transport.Conn) {
	defer n.wg.Done()
	defer ls.forget(conn)
	defer conn.Close()
	var sendMu sync.Mutex
	sem := make(chan struct{}, serveConnWorkers)
	var handlers sync.WaitGroup
	for {
		msg, err := conn.Recv()
		if err != nil {
			break
		}
		sem <- struct{}{}
		handlers.Add(1)
		go func(msg *wire.Message) {
			defer handlers.Done()
			defer func() { <-sem }()
			if resp := n.handle(msg); resp != nil {
				sendMu.Lock()
				err := conn.Send(resp)
				sendMu.Unlock()
				if err != nil {
					return // conn broken; the Recv loop is failing too
				}
			}
		}(msg)
	}
	handlers.Wait()
}

// handle dispatches one inbound message and returns the response frame
// (nil for one-way messages).
func (n *Node) handle(m *wire.Message) *wire.Message {
	switch m.Type {
	case wire.TPing:
		return &wire.Message{Type: wire.TPong, Seq: m.Seq}

	case wire.TJoin:
		return n.handleJoin(m)

	case wire.TPublish:
		n.handlePublish(m)
		return &wire.Message{Type: wire.TPublishAck, Seq: m.Seq, Found: true}

	case wire.TPublishBatch:
		n.handlePublishBatch(m)
		return &wire.Message{Type: wire.TPublishAck, Seq: m.Seq, Found: true}

	case wire.TDiscover:
		return n.handleDiscover(m)

	case wire.TRegister:
		// The registrant's own lease bounds its interest: re-registering
		// renews it, silence lets it lapse (swept by maintenance and by
		// the LDT fan-out itself).
		reg := registration{entry: m.Self}
		if m.Self.TTLMilli > 0 {
			reg.hasTTL = true
			reg.expires = time.Now().Add(time.Duration(m.Self.TTLMilli) * time.Millisecond)
		}
		n.mu.Lock()
		n.registry[m.Self.Key] = reg
		n.mu.Unlock()
		n.logf("register from %v (%s)", m.Self.Key, m.Self.Addr)
		return &wire.Message{Type: wire.TRegisterAck, Seq: m.Seq, Found: true}

	case wire.TUpdate:
		n.handleUpdate(m)
		return nil

	case wire.TLeafExchange:
		return n.handleLeafExchange(m)

	default:
		n.logf("dropping unknown message type %v", m.Type)
		return nil
	}
}

func (n *Node) handleJoin(m *wire.Message) *wire.Message {
	n.mu.Lock()
	n.updatePeerLocked(m.Self)
	entries := n.knownEntriesLocked()
	n.mu.Unlock()
	n.logf("join from %v (%s)", m.Self.Key, m.Self.Addr)
	return &wire.Message{Type: wire.TJoinResp, Seq: m.Seq, Found: true, Entries: entries}
}

// applyPublishLocked ingests one published record under newest-epoch-
// wins: a record whose epoch is older than the live one already stored
// is the ghost of a pre-move publication (a frame transport.Faulty
// delayed or duplicated) and must not resurrect the old address. A
// record whose lease has lapsed no longer outranks anything. Caller
// holds n.mu; reports whether the record was stored.
func (n *Node) applyPublishLocked(e wire.Entry, now time.Time) bool {
	if old, ok := n.store[e.Key]; ok && old.valid(now) && old.epoch > e.Epoch {
		return false
	}
	rec := storedLoc{addr: e.Addr, epoch: e.Epoch}
	if e.TTLMilli > 0 {
		rec.hasTTL = true
		rec.expires = now.Add(time.Duration(e.TTLMilli) * time.Millisecond)
	}
	n.store[e.Key] = rec
	return true
}

func (n *Node) handlePublish(m *wire.Message) {
	n.mu.Lock()
	ok := n.applyPublishLocked(m.Self, time.Now())
	if ok {
		// A publisher is also a live peer worth knowing about.
		n.updatePeerLocked(m.Self)
	}
	n.mu.Unlock()
	n.count("publish.records")
	if ok {
		n.count("publish.accepted")
		n.logf("stored location of %v → %s (epoch %d)", m.Self.Key, m.Self.Addr, m.Self.Epoch)
	} else {
		n.count("publish.stale_rejected")
		n.logf("rejected stale publish of %v → %s (epoch %d)", m.Self.Key, m.Self.Addr, m.Self.Epoch)
	}
}

// handlePublishBatch ingests a multi-record publish atomically: every
// record lands (or is rejected as stale) under one hold of the protocol
// mutex, so a discover served concurrently sees either none or all of
// the batch — never a half-moved key set.
func (n *Node) handlePublishBatch(m *wire.Message) {
	now := time.Now()
	accepted := 0
	n.mu.Lock()
	for _, e := range m.Entries {
		if n.applyPublishLocked(e, now) {
			accepted++
		}
	}
	n.updatePeerLocked(m.Self)
	n.mu.Unlock()
	n.cfg.Counters.Add("publish.records", uint64(len(m.Entries)))
	n.cfg.Counters.Add("publish.accepted", uint64(accepted))
	if rejected := len(m.Entries) - accepted; rejected > 0 {
		n.cfg.Counters.Add("publish.stale_rejected", uint64(rejected))
	}
	n.logf("batch publish from %v: %d records, %d accepted (epoch %d)",
		m.Self.Key, len(m.Entries), accepted, m.Self.Epoch)
}

// updatePeerLocked records e in the membership map under newest-epoch-
// wins: an entry carrying an older epoch than the one already known is
// out-of-order news and is dropped. Caller holds n.mu.
func (n *Node) updatePeerLocked(e wire.Entry) {
	if cur, ok := n.peers[e.Key]; ok && cur.Epoch > e.Epoch {
		return
	}
	n.peers[e.Key] = e
}

// handleDiscover answers a _discovery from this node's repository
// fragment (store) only. Serving an answer deliberately does NOT write
// the node's own location cache: the server merely relayed a record it
// owns — it expressed no interest in the key, and polluting its cache
// here would let third-party queries evict its own working set.
//
// The response carries the record's remaining lease, so the querier's
// cache entry expires exactly when the repository record does — without
// it, late-binding results would never go stale client-side.
func (n *Node) handleDiscover(m *wire.Message) *wire.Message {
	n.mu.Lock()
	rec, ok := n.store[m.Key]
	n.mu.Unlock()
	resp := &wire.Message{Type: wire.TDiscoverResp, Seq: m.Seq, Key: m.Key}
	if ok && rec.valid(time.Now()) {
		resp.Found = true
		resp.Self = wire.Entry{Key: m.Key, Addr: rec.addr, TTLMilli: remainingTTLMilli(rec), Epoch: rec.epoch}
	}
	return resp
}

// remainingTTLMilli converts a stored record's remaining lease into the
// wire's millisecond form: 0 means "no lease", so a live-but-nearly-done
// lease clamps up to 1ms rather than becoming immortal, and durations
// beyond the uint32 range saturate.
func remainingTTLMilli(rec storedLoc) uint32 {
	if !rec.hasTTL {
		return 0
	}
	ms := time.Until(rec.expires) / time.Millisecond
	switch {
	case ms < 1:
		return 1
	case ms > math.MaxUint32:
		return math.MaxUint32
	}
	return uint32(ms)
}

// handleUpdate ingests a proactive location push (early binding). The
// subject's new address belongs in the location *cache* — this node
// registered interest and learned where the subject moved — not in the
// repository (store): the pushing node is not publishing to us as an
// owner, and serving this hearsay to _discovery queries would bypass the
// replica placement. The write-through shares one source of truth with
// late-binding discover results.
func (n *Node) handleUpdate(m *wire.Message) {
	n.count("updates.received")
	n.mu.Lock()
	if seen, ok := n.seenUpdates[m.Self.Key]; ok && seen > m.Self.Epoch {
		n.mu.Unlock()
		// An out-of-order push (delayed or duplicated by the network): the
		// subject has already moved past this address. Applying it would
		// regress every resolver behind this node's cache — and recursing
		// would spread the regression down the delegated subtree.
		n.count("updates.stale_rejected")
		n.logf("rejected stale update: %v → %s (epoch %d, seen %d)",
			m.Self.Key, m.Self.Addr, m.Self.Epoch, n.seenEpoch(m.Self.Key))
		return
	}
	n.seenUpdates[m.Self.Key] = m.Self.Epoch
	n.updatePeerLocked(m.Self)
	n.mu.Unlock()
	n.count("updates.applied")
	if n.loc != nil {
		// Epoch-aware write-through: belt and braces under the seenUpdates
		// guard — a concurrent discover fill for the same key races this
		// write, and the cache's own newest-epoch-wins breaks the tie.
		n.loc.PutEpoch(m.Self.Key, m.Self.Addr, time.Duration(m.Self.TTLMilli)*time.Millisecond, m.Self.Epoch)
	}
	select {
	case n.updates <- Update{Key: m.Self.Key, Addr: m.Self.Addr}:
	default:
		// Applications that don't drain updates must not block the tree —
		// but the loss has to be observable, not silent.
		n.count("updates.dropped")
		n.logf("updates channel full; dropped update for %v (%s)", m.Self.Key, m.Self.Addr)
	}
	n.logf("location update: %v now at %s, delegating %d", m.Self.Key, m.Self.Addr, len(m.Entries))
	// Re-advertise to the delegated subtree (Figure 4 recursion) through
	// the coalescing queue: the handler returns immediately, the flusher
	// sends under the node's lifecycle context — a Close mid-fan-out
	// aborts the recursion instead of stalling behind it.
	if len(m.Entries) > 0 {
		n.advertise(m.Self, m.Entries)
	}
}

// seenEpoch reads the newest ingested update epoch for key (logging
// helper). Caller must NOT hold n.mu.
func (n *Node) seenEpoch(key hashkey.Key) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.seenUpdates[key]
}

func (n *Node) handleLeafExchange(m *wire.Message) *wire.Message {
	n.mu.Lock()
	for _, e := range m.Entries {
		n.mergePeerLocked(e)
	}
	entries := n.knownEntriesLocked()
	n.mu.Unlock()
	return &wire.Message{Type: wire.TLeafExchange, Seq: m.Seq, Found: true, Entries: entries}
}

// mergePeerLocked adopts a gossiped peer entry if the key is unknown or
// the entry carries a strictly newer epoch (the ordering makes adopting
// hearsay safe: a newer epoch is a later binding by definition, so merge
// stays idempotent and can never regress an address).
func (n *Node) mergePeerLocked(e wire.Entry) {
	if e.Key == n.key {
		return
	}
	if cur, known := n.peers[e.Key]; !known || e.Epoch > cur.Epoch {
		n.peers[e.Key] = e
	}
}

func (n *Node) knownEntriesLocked() []wire.Entry {
	out := make([]wire.Entry, 0, len(n.peers))
	for _, e := range n.peers {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// KnownPeers returns the node's current membership view (including
// itself), sorted by key.
func (n *Node) KnownPeers() []wire.Entry {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.knownEntriesLocked()
}

// Registry returns R(self): the entries registered as interested in this
// node's movement whose lease has not lapsed.
func (n *Node) Registry() []wire.Entry {
	now := time.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]wire.Entry, 0, len(n.registry))
	for _, r := range n.registry {
		if r.live(now) {
			out = append(out, r.entry)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// sweepRegistryLocked drops registrations whose lease lapsed before now,
// returning how many were removed. Caller holds n.mu.
func (n *Node) sweepRegistryLocked(now time.Time) int {
	removed := 0
	for key, r := range n.registry {
		if !r.live(now) {
			delete(n.registry, key)
			removed++
		}
	}
	return removed
}

// SweepRegistry drops registrations whose lease has lapsed and returns
// how many were removed (counted as registry.expired). StartMaintenance
// calls it periodically; the LDT fan-out also sweeps inline, so the
// periodic sweep only bounds how long a dead registrant occupies memory.
func (n *Node) SweepRegistry() int {
	now := time.Now()
	n.mu.Lock()
	removed := n.sweepRegistryLocked(now)
	n.mu.Unlock()
	if removed > 0 {
		n.cfg.Counters.Add("registry.expired", uint64(removed))
		n.logf("swept %d lapsed registrations", removed)
	}
	return removed
}

// --- client-side operations ---
// (request and oneWay live in rpc.go: retry/backoff + circuit breakers,
// multiplexed over the connection pool in pool.go.)

// JoinVia calls JoinViaContext with the background context.
func (n *Node) JoinVia(bootstrapAddr string) error {
	return n.JoinViaContext(context.Background(), bootstrapAddr)
}

// JoinViaContext contacts a bootstrap node, announces this node, and
// adopts the returned membership.
func (n *Node) JoinViaContext(ctx context.Context, bootstrapAddr string) error {
	resp, err := n.request(ctx, bootstrapAddr, &wire.Message{Type: wire.TJoin, Self: n.SelfEntry()})
	if err != nil {
		return fmt.Errorf("live: join via %s: %w", bootstrapAddr, err)
	}
	if resp.Type != wire.TJoinResp || !resp.Found {
		return fmt.Errorf("live: join rejected by %s", bootstrapAddr)
	}
	n.mu.Lock()
	for _, e := range resp.Entries {
		n.mergePeerLocked(e)
	}
	n.mu.Unlock()
	return nil
}

// GossipOnce performs one anti-entropy round with a random known peer,
// exchanging membership views. Returns the number of entries learned.
func (n *Node) GossipOnce(rng *rand.Rand) (int, error) {
	n.mu.Lock()
	var others []wire.Entry
	for k, e := range n.peers {
		if k != n.key {
			others = append(others, e)
		}
	}
	mine := n.knownEntriesLocked()
	before := len(n.peers)
	n.mu.Unlock()
	if len(others) == 0 {
		return 0, nil
	}
	sort.Slice(others, func(i, j int) bool { return others[i].Key < others[j].Key })
	// Prefer partners that are not currently suspect; fall back to the
	// full set so an all-suspect view still gossips (and probes).
	healthy := others[:0:0]
	for _, e := range others {
		if !n.suspect(e.Addr) {
			healthy = append(healthy, e)
		}
	}
	if len(healthy) > 0 {
		others = healthy
	}
	target := others[rng.Intn(len(others))]
	resp, err := n.request(context.Background(), target.Addr, &wire.Message{Type: wire.TLeafExchange, Entries: mine})
	if err != nil {
		return 0, err
	}
	n.mu.Lock()
	for _, e := range resp.Entries {
		n.mergePeerLocked(e)
	}
	after := len(n.peers)
	n.mu.Unlock()
	return after - before, nil
}

// stationaryPeersLocked snapshots the known stationary peers — the only
// legal owners of location records (Section 2.1; mobile peers' addresses
// are exactly what's being resolved). Caller holds n.mu.
func (n *Node) stationaryPeersLocked() []wire.Entry {
	var cands []wire.Entry
	for _, e := range n.peers {
		if !e.Mobile {
			cands = append(cands, e)
		}
	}
	return cands
}

// ownersForKey picks the k candidates closest to key, healthy replicas
// first (suspect is a pre-sampled breaker snapshot, so a batched publish
// ranks thousands of keys without re-locking the breaker table per key).
// cands is re-sorted in place: the returned slice aliases it and must be
// consumed before the next call.
func ownersForKey(cands []wire.Entry, suspect map[string]bool, key hashkey.Key, k int) []wire.Entry {
	sort.Slice(cands, func(i, j int) bool {
		return hashkey.Closer(key, cands[i].Key, cands[j].Key)
	})
	if k > len(cands) {
		k = len(cands)
	}
	owners := cands[:k]
	sort.SliceStable(owners, func(i, j int) bool {
		return !suspect[owners[i].Addr] && suspect[owners[j].Addr]
	})
	return owners
}

// suspectSnapshot samples every candidate's breaker once, so replica
// ordering cannot flap mid-batch.
func (n *Node) suspectSnapshot(cands []wire.Entry) map[string]bool {
	suspect := make(map[string]bool, len(cands))
	for _, e := range cands {
		if _, ok := suspect[e.Addr]; !ok {
			suspect[e.Addr] = n.suspect(e.Addr)
		}
	}
	return suspect
}

// ownersOf returns the k known *stationary* peers closest to key,
// replicated for §2.3.2 availability. Within the replica set, peers
// whose circuit breaker is open sort last, so publish and discovery fall
// over across replicas in suspicion-aware order and pay the suspect
// peers' timeouts only when every healthy replica failed.
func (n *Node) ownersOf(key hashkey.Key, k int) ([]wire.Entry, error) {
	n.mu.Lock()
	cands := n.stationaryPeersLocked()
	n.mu.Unlock()
	if len(cands) == 0 {
		return nil, errors.New("live: no known stationary peers")
	}
	return ownersForKey(cands, n.suspectSnapshot(cands), key, k), nil
}

// publishBatchMax bounds the records per TPublishBatch frame, keeping a
// worst-case frame comfortably under wire.MaxFrame.
const publishBatchMax = 8192

// Publish calls PublishContext with the background context.
func (n *Node) Publish() error { return n.PublishContext(context.Background()) }

// PublishContext pushes this node's current address — and every record
// in its owned set — to the owners of each key (the paper's location
// publication, k-replicated). Records are grouped by owner replica so a
// move re-homes N keys in O(replicas) RPCs, not O(N): each distinct
// replica address receives one TPublishBatch (chunked at
// publishBatchMax) ingested atomically on the far side. A node owning
// nothing beyond its identity key sends the classic single-record
// TPublish. It succeeds when every record was stored at ≥1 replica.
func (n *Node) PublishContext(ctx context.Context) error {
	now := time.Now()
	n.mu.Lock()
	self := n.selfEntryLocked()
	records := make([]wire.Entry, 0, 1+len(n.owned))
	records = append(records, self)
	for k := range n.owned {
		records = append(records, wire.Entry{Key: k, Addr: n.addr, TTLMilli: self.TTLMilli, Epoch: n.epoch})
	}
	cands := n.stationaryPeersLocked()
	n.mu.Unlock()
	if len(cands) == 0 {
		return errors.New("live: no known stationary peers")
	}
	sort.Slice(records, func(i, j int) bool { return records[i].Key < records[j].Key })
	suspect := n.suspectSnapshot(cands)

	// Group every record's replica set by owner address. Self-owned
	// records (a stationary node can be its own replica) are ingested
	// locally without a frame.
	groups := make(map[string][]wire.Entry)
	var order []string
	var selfRecs []wire.Entry
	for _, rec := range records {
		for _, owner := range ownersForKey(cands, suspect, rec.Key, n.cfg.Replication) {
			if owner.Key == n.key {
				selfRecs = append(selfRecs, rec)
				continue
			}
			if _, ok := groups[owner.Addr]; !ok {
				order = append(order, owner.Addr)
			}
			groups[owner.Addr] = append(groups[owner.Addr], rec)
		}
	}

	stored := make(map[hashkey.Key]int, len(records)) // replicas holding each record
	if len(selfRecs) > 0 {
		accepted := 0
		n.mu.Lock()
		for _, rec := range selfRecs {
			if n.applyPublishLocked(rec, now) {
				accepted++
				stored[rec.Key]++
			}
		}
		n.mu.Unlock()
		n.cfg.Counters.Add("publish.records", uint64(len(selfRecs)))
		n.cfg.Counters.Add("publish.accepted", uint64(accepted))
		if rej := len(selfRecs) - accepted; rej > 0 {
			n.cfg.Counters.Add("publish.stale_rejected", uint64(rej))
		}
	}

	type chunkResult struct {
		recs []wire.Entry
		err  error
	}
	results := make(chan chunkResult)
	outstanding := 0
	for _, addr := range order {
		recs := groups[addr]
		outstanding += (len(recs) + publishBatchMax - 1) / publishBatchMax
		go func(addr string, recs []wire.Entry) {
			for start := 0; start < len(recs); start += publishBatchMax {
				end := start + publishBatchMax
				if end > len(recs) {
					end = len(recs)
				}
				chunk := recs[start:end]
				// Each replica gets its own message: Seq is stamped per
				// exchange, so concurrent fan-out must not share frames.
				msg := &wire.Message{Type: wire.TPublishBatch, Self: self, Entries: chunk}
				if len(records) == 1 {
					// Nothing owned beyond the identity key: keep the
					// classic single-record publish on the wire.
					msg = &wire.Message{Type: wire.TPublish, Self: self}
				}
				n.count("publish.rpcs")
				resp, err := n.request(ctx, addr, msg)
				switch {
				case err != nil:
					results <- chunkResult{chunk, fmt.Errorf("live: publish to %s: %w", addr, err)}
				case resp.Type != wire.TPublishAck:
					results <- chunkResult{chunk, fmt.Errorf("live: unexpected publish response %v", resp.Type)}
				default:
					results <- chunkResult{chunk, nil}
				}
			}
		}(addr, recs)
	}
	var lastErr error
	for i := 0; i < outstanding; i++ {
		r := <-results
		if r.err != nil {
			lastErr = r.err
			continue
		}
		for _, rec := range r.recs {
			stored[rec.Key]++
		}
	}
	missing := 0
	for _, rec := range records {
		if stored[rec.Key] == 0 {
			missing++
		}
	}
	if missing > 0 {
		if lastErr != nil {
			return fmt.Errorf("live: publish: %d of %d records stored nowhere: %w", missing, len(records), lastErr)
		}
		return fmt.Errorf("live: publish: %d of %d records stored nowhere", missing, len(records))
	}
	return nil
}

// (Discover, DiscoverContext, Resolve, and ResolveContext live in
// resolve.go: cache-first resolution with singleflight discovery.)

// RegisterWith calls RegisterWithContext with the background context.
func (n *Node) RegisterWith(targetAddr string) error {
	return n.RegisterWithContext(context.Background(), targetAddr)
}

// RegisterWithContext records this node's interest in the movement of the
// node currently reachable at targetAddr.
func (n *Node) RegisterWithContext(ctx context.Context, targetAddr string) error {
	resp, err := n.request(ctx, targetAddr, &wire.Message{Type: wire.TRegister, Self: n.SelfEntry()})
	if err != nil {
		return fmt.Errorf("live: register with %s: %w", targetAddr, err)
	}
	if resp.Type != wire.TRegisterAck || !resp.Found {
		return fmt.Errorf("live: registration rejected by %s", targetAddr)
	}
	return nil
}

// Rebind calls RebindContext with the background context.
func (n *Node) Rebind(listenAddr string) error {
	return n.RebindContext(context.Background(), listenAddr)
}

// RebindContext moves a mobile node to a new listener (a new network
// attachment point), republishes its location, and pushes the update
// through its dissemination tree. Connections accepted through the old
// attachment point close with it, exactly as a real relocation severs
// them.
func (n *Node) RebindContext(ctx context.Context, listenAddr string) error {
	if !n.cfg.Mobile {
		return errors.New("live: node is not mobile")
	}
	newL, err := n.tr.Listen(listenAddr)
	if err != nil {
		return err
	}
	ls := newListenerState(newL)
	n.mu.Lock()
	old := n.listener
	n.listener = ls
	n.addr = ls.addr()
	// The new binding supersedes every frame sent for the old one: bump
	// the epoch before any peer can learn the new address, so a delayed
	// or duplicated pre-move frame can never displace it anywhere.
	n.epoch = nextEpoch(n.epoch)
	n.peers[n.key] = n.selfEntryLocked()
	n.mu.Unlock()
	if old != nil {
		old.close() // the old attachment point disappears
	}
	n.wg.Add(1)
	go n.acceptLoop(ls)
	n.logf("rebound to %s", n.Addr())

	if err := n.PublishContext(ctx); err != nil {
		return err
	}
	return n.UpdateRegistryContext(ctx)
}

// (UpdateRegistry, UpdateRegistryContext, and the recursive advertise
// live in advertise.go: LDT fan-out through the coalescing update queue.)

// CachedAddr returns this node's cached address for key, if its lease is
// still fresh. A read-only probe: it neither promotes the entry nor
// records cache metrics.
func (n *Node) CachedAddr(key hashkey.Key) (string, bool) {
	if n.loc == nil {
		return "", false
	}
	addr, state := n.loc.Peek(key)
	if state != loccache.Fresh {
		return "", false
	}
	return addr, true
}

// CacheEntries reports how many entries the location cache currently
// holds (0 when the cache is disabled).
func (n *Node) CacheEntries() int {
	if n.loc == nil {
		return 0
	}
	return n.loc.Len()
}

// Ping calls PingContext with the background context.
func (n *Node) Ping(addr string) error { return n.PingContext(context.Background(), addr) }

// PingContext checks liveness of a peer address.
func (n *Node) PingContext(ctx context.Context, addr string) error {
	resp, err := n.request(ctx, addr, &wire.Message{Type: wire.TPing})
	if err != nil {
		return err
	}
	if resp.Type != wire.TPong {
		return fmt.Errorf("live: unexpected ping response %v", resp.Type)
	}
	return nil
}

// PoolSessions reports how many pooled peer sessions are currently open
// (0 when pooling is disabled).
func (n *Node) PoolSessions() int {
	if n.pool == nil {
		return 0
	}
	return n.pool.sessionCount()
}
