// Package live runs Bristle's location-management protocol over real
// connections (TCP or the in-memory test transport): publish, discover,
// register, and LDT-driven location updates, with leases, exactly as
// Section 2.3 describes.
//
// A live node keeps full membership knowledge refreshed by anti-entropy
// gossip — appropriate for the small rings a single machine can host.
// (The O(log N) routing-state behaviour of large overlays is exercised by
// the simulation packages; the live node demonstrates the protocol end to
// end: a mobile node re-binds to a new port, republishes, pushes updates
// down a capacity-scheduled dissemination tree, and correspondents keep
// reaching it.)
//
// The implementation is split by concern, with no node-global mutex on
// any request path (DESIGN.md §13 maps every lock):
//
//   - node.go       — Config, lifecycle (Start/Close/Rebind), connection
//     serving and dispatch
//   - api.go        — the consolidated public surface: canonical
//     *Context methods, their suffix-less aliases, Stats
//   - store.go      — the sharded record repository and the ingest/serve
//     handlers (publish, discover, update)
//   - membership.go — copy-on-write membership and registry views;
//     join/gossip/register; replica selection
//   - publish.go    — the owned-key set and the batched publish fan-out
//   - resolve.go    — the cache-first resolve hot path
//   - advertise.go  — the coalescing LDT push queue and fan-out
//   - rpc.go        — retries, backoff, sharded per-peer circuit breakers
//   - pool.go       — the sharded multiplexed connection pool
//
// Every public operation that can touch the network has a Context-suffixed
// form (PublishContext, DiscoverContext, ...) that observes the caller's
// cancellation and deadline end to end — through retries, backoff pauses,
// dials, and pooled exchanges. The suffix-less forms are one-line aliases
// over context.Background(), collected in api.go.
package live

import (
	"context"
	"errors"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"bristle/internal/hashkey"
	"bristle/internal/loccache"
	"bristle/internal/metrics"
	"bristle/internal/transport"
	"bristle/internal/wire"
)

// Update is a proactive location update delivered to a registered node.
type Update struct {
	Key  hashkey.Key
	Addr string
}

// Config parameterizes a live node. Prefer constructing nodes with New
// and functional options (options.go); Config remains public for callers
// that want to build the whole policy in one literal.
type Config struct {
	// Name seeds the node's hash key (FromName), standing in for a stable
	// node identity independent of its network address. When Identity is
	// set the key derives from the public key instead and Name is only a
	// diagnostic label.
	Name string
	// Identity is the node's cryptographic identity. When set, the node's
	// hash key is self-certifying — hashkey.IDKey(pub, region, regions) —
	// and joins carry a signed proof of the claim, so verifying peers can
	// reject a node squatting a key it didn't earn. Nil keeps the legacy
	// name-derived key and sends unsigned joins.
	Identity *hashkey.Identity
	// RequireVerifiedJoins makes this node reject TJoin requests that carry
	// no identity proof. (Joins that carry a proof are always verified,
	// with or without this flag.)
	RequireVerifiedJoins bool
	// JoinAsObserver makes this node's joins request the stationary
	// directory without being ingested into ring membership — the scalable
	// admission mode for client/mobile nodes, which stationary peers learn
	// about through publish traffic instead of join-time gossip.
	JoinAsObserver bool
	// Capacity is the advertised C_X used to schedule LDTs.
	Capacity float64
	// Mobile marks the node as relocatable (Rebind allowed).
	Mobile bool
	// Region labels where this node physically sits (a datacenter, a
	// transit domain — any coarse locality bucket). When a stationary node
	// has both Region and Regions set, its hash key is drawn from the
	// region's stripes of the ring (hashkey.RegionStriped) so that the k
	// closest stationary keys to any resource key span k distinct regions:
	// every resolver then has a replica in or near its own region for
	// latency-ordered selection to find. Mobile nodes ignore it for key
	// derivation (they don't host records) but still report it in Stats.
	Region string
	// Regions is the full deployment-wide region list (order-insensitive;
	// every node must use the same set). Empty disables region-striped
	// placement and keys fall back to plain FromName hashing.
	Regions []string
	// LeaseTTL bounds how long published locations and caches stay valid.
	// Zero disables expiry.
	LeaseTTL time.Duration
	// Replication is how many stationary peers hold this node's location
	// record (§2.3.2 availability; discovery falls over across them).
	// Minimum effective value 1; default 2.
	Replication int
	// RequestTimeout bounds one attempt of a request/response exchange —
	// a peer that accepts but never answers costs at most this long per
	// attempt. Default 10s.
	RequestTimeout time.Duration
	// RetryAttempts caps how many times one exchange is attempted before
	// giving up (default 4; 1 restores single-shot semantics).
	RetryAttempts int
	// RetryBase is the cap of the first backoff pause; it doubles per
	// retry (full jitter: the pause is uniform in [0, cap]). Default 25ms.
	RetryBase time.Duration
	// RetryMax caps a single backoff pause. Default 1s.
	RetryMax time.Duration
	// RetryBudget bounds the total wall time of one exchange across all
	// attempts and pauses. Default RetryAttempts × RequestTimeout.
	RetryBudget time.Duration
	// SuspicionThreshold is how many consecutive failed exchanges trip a
	// peer's circuit breaker; tripped peers fail fast and are deprioritized
	// as replicas until a probe succeeds. Default 3; negative disables
	// suspicion entirely.
	SuspicionThreshold int
	// SuspicionCooldown is how long a tripped breaker fails fast before it
	// lets one probe through (half-open). Default 2s.
	SuspicionCooldown time.Duration
	// Pool tunes the multiplexed per-peer connection pool under the RPC
	// layer. The zero value enables pooling with defaults; set
	// Pool.Disabled to revert to dial-per-request exchanges.
	Pool PoolConfig
	// Cache tunes the lease-aware sharded location cache behind Resolve
	// (resolve.go). The zero value enables the cache with defaults; set
	// Cache.Disabled to make every resolve a network discovery.
	Cache CacheConfig
	// Counters optionally records resilience events (rpc.retries,
	// rpc.timeouts, breaker.trips, pool.dials, ...); nil disables them.
	Counters *metrics.Counters
	// Gauges optionally exposes instantaneous pool state (pool.sessions,
	// pool.inflight); nil disables them.
	Gauges *metrics.Gauges
	// Logger receives protocol diagnostics; nil silences them.
	Logger *log.Logger
}

// withDefaults fills every unset knob — the single place defaults live,
// shared by NewNode and New.
func (cfg Config) withDefaults() Config {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1
	}
	if cfg.Replication < 1 {
		cfg.Replication = 2
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.RetryAttempts <= 0 {
		cfg.RetryAttempts = 4
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 25 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = time.Second
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = time.Duration(cfg.RetryAttempts) * cfg.RequestTimeout
	}
	if cfg.SuspicionThreshold == 0 {
		cfg.SuspicionThreshold = 3
	}
	if cfg.SuspicionCooldown <= 0 {
		cfg.SuspicionCooldown = 2 * time.Second
	}
	cfg.Pool = cfg.Pool.withDefaults()
	// Cache defaults live in loccache.Config.withDefaults; zero values
	// pass through so one place owns them.
	return cfg
}

// listenerState is one network attachment point: the listener plus every
// connection accepted through it, so closing the attachment also closes
// the long-lived multiplexed connections remote pools hold against it
// (without this, Close would wait forever on their serve goroutines).
type listenerState struct {
	l transport.Listener

	mu     sync.Mutex
	closed bool
	conns  map[transport.Conn]struct{}
}

func newListenerState(l transport.Listener) *listenerState {
	return &listenerState{l: l, conns: make(map[transport.Conn]struct{})}
}

func (ls *listenerState) addr() string { return ls.l.Addr() }

// track registers an accepted conn; false means the attachment already
// closed and the conn must not be served.
func (ls *listenerState) track(c transport.Conn) bool {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.closed {
		return false
	}
	ls.conns[c] = struct{}{}
	return true
}

func (ls *listenerState) forget(c transport.Conn) {
	ls.mu.Lock()
	delete(ls.conns, c)
	ls.mu.Unlock()
}

// close shuts the listener and every tracked conn. Idempotent.
func (ls *listenerState) close() {
	ls.mu.Lock()
	if ls.closed {
		ls.mu.Unlock()
		return
	}
	ls.closed = true
	conns := make([]transport.Conn, 0, len(ls.conns))
	for c := range ls.conns {
		conns = append(conns, c)
	}
	ls.mu.Unlock()
	ls.l.Close()
	for _, c := range conns {
		c.Close()
	}
}

// binding is the node's current (address, epoch) pair, published
// atomically as one unit: a reader can never observe a new address with
// a pre-move epoch or vice versa. Written only under lifeMu (Start and
// Rebind), read lock-free everywhere.
type binding struct {
	addr  string
	epoch uint64
}

// Node is one live Bristle participant.
//
// There is no node-global mutex. State is split per concern — each piece
// guards itself, and no request-path operation (publish ingest, discover,
// update, register, resolve) takes a lock shared with any other concern:
//
//   - lifeMu guards lifecycle transitions only (listener swaps, the stop
//     flag, flusher startup); handlers never touch it.
//   - self is the atomically published (addr, epoch) binding.
//   - members and registry are copy-on-write snapshots (membership.go):
//     reads are lock-free, writes clone under a private writer mutex.
//   - store and seen are sixteen-way key-sharded tables (store.go).
//   - owned has its own small mutex (publish.go).
//   - breakers live in a sharded per-peer table (rpc.go); pooled
//     sessions in a sharded address table (pool.go).
type Node struct {
	cfg  Config
	key  hashkey.Key
	tr   transport.Transport
	pool *pool // nil when cfg.Pool.Disabled

	lifeMu    sync.Mutex
	listener  *listenerState
	stopped   bool
	flusherOn bool // update flusher goroutine started (advertise.go)

	self atomic.Pointer[binding]
	seq  atomic.Uint32 // one-shot (unpooled) exchange sequence numbers

	members  membership    // known peers (incl. self); COW snapshots
	registry registryTable // R(self): interested nodes, leased; COW
	store    recordStore   // sharded repository of published records
	seen     epochTable    // sharded newest-ingested TUpdate epochs

	// ids binds each verified joiner's key to a fingerprint of the public
	// identity that earned it (join.go): a later join may re-present the
	// same identity, never a different one, and an unsigned join can never
	// claim a verified key.
	idsMu sync.Mutex
	ids   map[hashkey.Key][32]byte

	// owned is the set of resource keys published at this node's address
	// beyond its own identity key — the records a move must re-home. All
	// of them ride one TPublishBatch per owner replica.
	ownedMu sync.Mutex
	owned   map[hashkey.Key]struct{}

	// loc holds locations this node has *learned* about others — TUpdate
	// pushes (early binding) and discover answers (late binding) write
	// through it; ResolveContext reads it. It is never served to the
	// network, and the resolve hot path shares no lock with the protocol
	// path. Nil when Cache.Disabled.
	loc     *loccache.Cache
	flights loccache.Group // coalesces concurrent discoveries per key
	closed  atomic.Bool    // set by Close; gates background refreshes

	peersTbl peerTable // sharded per-peer suspicion circuit breakers
	rtt      rttTable  // sharded per-peer RTT estimators (rtt.go)

	rngMu sync.Mutex
	rng   *rand.Rand // seeds retry jitter; per-node deterministic

	wg      sync.WaitGroup
	updates chan Update

	// runCtx is the node's lifecycle context: canceled by Close, it bounds
	// every background send the node originates on its own behalf (LDT
	// re-advertisement, the update flusher) so shutdown never stalls on
	// in-flight fan-out.
	runCtx    context.Context
	runCancel context.CancelFunc
	updq      *updateQueue // coalescing LDT push queue (advertise.go)
}

// NewNode creates a stopped node. Call Start to begin serving. (New in
// options.go is the preferred constructor.)
func NewNode(cfg Config, tr transport.Transport) *Node {
	cfg = cfg.withDefaults()
	var key hashkey.Key
	switch {
	case cfg.Identity != nil:
		// Self-certifying key: derived from the public identity (region-
		// striped for regional stationary nodes), so the join proof any
		// peer verifies recomputes exactly this value.
		key = hashkey.IDKey(cfg.Identity.Public(), stationaryRegion(cfg), cfg.Regions)
	case !cfg.Mobile && cfg.Region != "" && len(cfg.Regions) > 0:
		// Region-clustered stationary placement: the key lands in one of
		// this region's ring stripes, so consecutive stationary keys — and
		// therefore any record's k-closest replica set — interleave regions.
		key = hashkey.RegionStriped(hashkey.FullRing(), cfg.Name, cfg.Region, cfg.Regions)
	default:
		key = hashkey.FromName(cfg.Name)
	}
	n := &Node{
		cfg:     cfg,
		key:     key,
		tr:      tr,
		rng:     rand.New(rand.NewSource(int64(key))), // deterministic per-node jitter
		updates: make(chan Update, 64),
		owned:   make(map[hashkey.Key]struct{}),
		ids:     make(map[hashkey.Key][32]byte),
		updq:    newUpdateQueue(),
	}
	// The epoch is seeded from the wall clock so a restarted node (fresh
	// process, same name) still outranks its pre-crash publications.
	n.self.Store(&binding{epoch: nextEpoch(0)})
	n.members.init()
	n.registry.init()
	n.store.init()
	n.seen.init()
	n.peersTbl.init()
	n.rtt.init()
	n.runCtx, n.runCancel = context.WithCancel(context.Background())
	if !cfg.Pool.Disabled {
		n.pool = newPool(tr, cfg.Pool, cfg.Counters, cfg.Gauges)
	}
	if !cfg.Cache.Disabled {
		n.loc = loccache.New(loccache.Config{
			Shards:      cfg.Cache.Shards,
			MaxEntries:  cfg.Cache.MaxEntries,
			NegativeTTL: cfg.Cache.NegativeTTL,
			StaleWindow: cfg.Cache.StaleWindow,
			Counters:    cfg.Counters,
			Gauges:      cfg.Gauges,
		})
	}
	return n
}

// Key returns the node's hash key.
func (n *Node) Key() hashkey.Key { return n.key }

// Addr returns the node's current dialable address ("" before Start).
// Lock-free.
func (n *Node) Addr() string { return n.self.Load().addr }

// Updates delivers proactive location updates pushed to this node through
// the dissemination trees it registered with.
func (n *Node) Updates() <-chan Update { return n.updates }

// SelfEntry returns the node's current state-pair. Lock-free: the
// (addr, epoch) binding is read as one atomic unit.
func (n *Node) SelfEntry() wire.Entry {
	b := n.self.Load()
	return wire.Entry{
		Key:      n.key,
		Addr:     b.addr,
		Capacity: n.cfg.Capacity,
		TTLMilli: uint32(n.cfg.LeaseTTL / time.Millisecond),
		Mobile:   n.cfg.Mobile,
		Epoch:    b.epoch,
	}
}

// nextEpoch returns a publish epoch strictly greater than prev. Seeding
// from the wall clock makes epochs monotonic across process restarts
// (a rebooted publisher must outrank its own pre-crash records at
// replicas that survived it); the prev+1 arm keeps them monotonic even
// against a clock that stands still or steps backwards.
func nextEpoch(prev uint64) uint64 {
	now := uint64(time.Now().UnixNano())
	if now <= prev {
		return prev + 1
	}
	return now
}

// Start binds a listener on listenAddr (":0" for an ephemeral port) and
// begins serving the protocol.
func (n *Node) Start(listenAddr string) error {
	l, err := n.tr.Listen(listenAddr)
	if err != nil {
		return err
	}
	ls := newListenerState(l)
	n.lifeMu.Lock()
	if n.stopped {
		n.lifeMu.Unlock()
		ls.close()
		return ErrStopped
	}
	n.listener = ls
	b := n.self.Load()
	n.self.Store(&binding{addr: ls.addr(), epoch: b.epoch})
	n.lifeMu.Unlock()
	n.members.update(n.SelfEntry())

	n.wg.Add(1)
	go n.acceptLoop(ls)
	return nil
}

// Close stops serving: the connection pool drains, the listener and every
// accepted connection close, and all server goroutines exit.
func (n *Node) Close() error {
	n.lifeMu.Lock()
	if n.stopped {
		n.lifeMu.Unlock()
		return nil
	}
	n.stopped = true
	ls := n.listener
	n.lifeMu.Unlock()
	n.closed.Store(true) // stop launching background refreshes
	n.runCancel()        // abort in-flight LDT fan-out and flusher sends
	n.updq.close()       // unblock enqueue waiters; the flusher drains out
	if n.pool != nil {
		n.pool.Close()
	}
	if ls != nil {
		ls.close()
	}
	n.wg.Wait()
	return nil
}

// RebindContext moves a mobile node to a new listener (a new network
// attachment point), republishes its location, and pushes the update
// through its dissemination tree. Connections accepted through the old
// attachment point close with it, exactly as a real relocation severs
// them. Canonical form of Rebind (api.go).
func (n *Node) RebindContext(ctx context.Context, listenAddr string) error {
	if !n.cfg.Mobile {
		return errors.New("live: node is not mobile")
	}
	newL, err := n.tr.Listen(listenAddr)
	if err != nil {
		return err
	}
	ls := newListenerState(newL)
	n.lifeMu.Lock()
	old := n.listener
	n.listener = ls
	// The new binding supersedes every frame sent for the old one: the
	// epoch bumps atomically with the address, before any peer can learn
	// it, so a delayed or duplicated pre-move frame can never displace it
	// anywhere.
	b := n.self.Load()
	n.self.Store(&binding{addr: ls.addr(), epoch: nextEpoch(b.epoch)})
	n.lifeMu.Unlock()
	n.members.update(n.SelfEntry())
	if old != nil {
		old.close() // the old attachment point disappears
	}
	n.wg.Add(1)
	go n.acceptLoop(ls)
	n.logf("rebound to %s", n.Addr())

	if err := n.PublishContext(ctx); err != nil {
		return err
	}
	return n.UpdateRegistryContext(ctx)
}

func (n *Node) logf(format string, args ...interface{}) {
	if n.cfg.Logger != nil {
		n.cfg.Logger.Printf("[%s %s] "+format, append([]interface{}{n.cfg.Name, n.key}, args...)...)
	}
}

func (n *Node) acceptLoop(ls *listenerState) {
	defer n.wg.Done()
	for {
		conn, err := ls.l.Accept()
		if err != nil {
			return
		}
		if !ls.track(conn) {
			conn.Close()
			return
		}
		n.wg.Add(1)
		go n.serveConn(ls, conn)
	}
}

// serveConnWorkers bounds the concurrently running handlers of one
// accepted connection.
const serveConnWorkers = 64

// serveConn serves one accepted connection. Each inbound message is
// dispatched on its own goroutine (bounded by serveConnWorkers) with
// responses serialized by a send mutex — a handler that blocks, or a
// response that is slow to produce, cannot head-of-line-block the other
// exchanges multiplexed on this connection.
//
// Fully handled frames (and shipped responses) go back to the wire
// codec's message pool: the handlers copy everything they keep, so the
// steady-state serve path recycles its messages instead of allocating
// one per frame.
func (n *Node) serveConn(ls *listenerState, conn transport.Conn) {
	defer n.wg.Done()
	defer ls.forget(conn)
	defer conn.Close()
	var sendMu sync.Mutex
	sem := make(chan struct{}, serveConnWorkers)
	var handlers sync.WaitGroup
	for {
		msg, err := conn.Recv()
		if err != nil {
			break
		}
		sem <- struct{}{}
		handlers.Add(1)
		go func(msg *wire.Message) {
			defer handlers.Done()
			defer func() { <-sem }()
			resp := n.handle(msg)
			wire.PutMessage(msg)
			if resp != nil {
				sendMu.Lock()
				err := conn.Send(resp)
				sendMu.Unlock()
				wire.PutMessage(resp)
				if err != nil {
					return // conn broken; the Recv loop is failing too
				}
			}
		}(msg)
	}
	handlers.Wait()
}

// handle dispatches one inbound message and returns the response frame
// (nil for one-way messages).
func (n *Node) handle(m *wire.Message) *wire.Message {
	switch m.Type {
	case wire.TPing:
		return &wire.Message{Type: wire.TPong, Seq: m.Seq}

	case wire.TJoin:
		return n.handleJoin(m)

	case wire.TPublish:
		n.handlePublish(m)
		return &wire.Message{Type: wire.TPublishAck, Seq: m.Seq, Found: true}

	case wire.TPublishBatch:
		n.handlePublishBatch(m)
		return &wire.Message{Type: wire.TPublishAck, Seq: m.Seq, Found: true}

	case wire.TDiscover:
		return n.handleDiscover(m)

	case wire.TRegister:
		return n.handleRegister(m)

	case wire.TUpdate:
		n.handleUpdate(m)
		return nil

	case wire.TLeafExchange:
		return n.handleLeafExchange(m)

	default:
		n.logf("dropping unknown message type %v", m.Type)
		return nil
	}
}
