package live

// This file is the package's preferred constructor: New(name, transport,
// options...). Functional options keep the call site readable, let the
// defaults live in one place (Config.withDefaults), and let validation
// reject contradictory policies before a node exists — NewNode(Config,
// ...) remains for callers that want to spell out the whole Config.

import (
	"errors"
	"fmt"
	"log"
	"time"

	"bristle/internal/hashkey"
	"bristle/internal/metrics"
	"bristle/internal/transport"
)

// Option adjusts one aspect of a node's configuration.
type Option func(*Config)

// WithCapacity sets the advertised C_X used to schedule LDTs.
func WithCapacity(c float64) Option { return func(cfg *Config) { cfg.Capacity = c } }

// WithMobile marks the node as relocatable (Rebind allowed).
func WithMobile() Option { return func(cfg *Config) { cfg.Mobile = true } }

// WithRegion labels the node's locality bucket and declares the full
// deployment-wide region set (order-insensitive, but identical on every
// node). A stationary node with a region draws its hash key from that
// region's ring stripes (hashkey.RegionStriped) so replica sets span
// regions; mobile nodes keep their plain key but still report the label.
func WithRegion(region string, regions ...string) Option {
	return func(cfg *Config) {
		cfg.Region = region
		cfg.Regions = regions
	}
}

// WithIdentity gives the node a cryptographic identity: its hash key
// becomes self-certifying (hashkey.IDKey over the public key, region-
// striped for regional stationary nodes) and its joins carry a signed
// proof of that claim.
func WithIdentity(id *hashkey.Identity) Option {
	return func(cfg *Config) { cfg.Identity = id }
}

// WithVerifiedJoins makes the node reject join requests that carry no
// identity proof. Joins that carry one are always verified.
func WithVerifiedJoins() Option {
	return func(cfg *Config) { cfg.RequireVerifiedJoins = true }
}

// WithObserverJoin makes the node's joins request the stationary
// directory without being ingested into ring membership — the scalable
// admission mode for client/mobile nodes.
func WithObserverJoin() Option {
	return func(cfg *Config) { cfg.JoinAsObserver = true }
}

// WithLease bounds how long published locations and caches stay valid.
func WithLease(ttl time.Duration) Option { return func(cfg *Config) { cfg.LeaseTTL = ttl } }

// WithReplication sets how many stationary peers hold the node's
// location record.
func WithReplication(k int) Option { return func(cfg *Config) { cfg.Replication = k } }

// WithRequestTimeout bounds a single attempt of an exchange.
func WithRequestTimeout(d time.Duration) Option {
	return func(cfg *Config) { cfg.RequestTimeout = d }
}

// WithRetryBudget shapes the whole retry policy in one call: at most
// attempts tries, full-jitter backoff capped per pause at [base, max]
// doubling from base, all attempts bounded by total wall time.
func WithRetryBudget(attempts int, base, max, total time.Duration) Option {
	return func(cfg *Config) {
		cfg.RetryAttempts = attempts
		cfg.RetryBase = base
		cfg.RetryMax = max
		cfg.RetryBudget = total
	}
}

// WithSuspicion tunes the per-peer circuit breakers: threshold
// consecutive failures trip a breaker, which fails fast for cooldown
// before admitting a probe. A negative threshold disables suspicion.
func WithSuspicion(threshold int, cooldown time.Duration) Option {
	return func(cfg *Config) {
		cfg.SuspicionThreshold = threshold
		cfg.SuspicionCooldown = cooldown
	}
}

// WithPool tunes the multiplexed per-peer connection pool.
func WithPool(pc PoolConfig) Option { return func(cfg *Config) { cfg.Pool = pc } }

// WithoutPool reverts every exchange to dial-per-request.
func WithoutPool() Option { return func(cfg *Config) { cfg.Pool.Disabled = true } }

// WithResolveCache tunes the lease-aware sharded location cache behind
// Resolve (sharding, bound, negative TTL, stale window).
func WithResolveCache(cc CacheConfig) Option { return func(cfg *Config) { cfg.Cache = cc } }

// WithoutResolveCache disables the location cache: every Resolve becomes
// a network discovery.
func WithoutResolveCache() Option { return func(cfg *Config) { cfg.Cache.Disabled = true } }

// WithCounters records resilience events (rpc.retries, breaker.trips,
// pool.dials, ...) on the given registry.
func WithCounters(c *metrics.Counters) Option { return func(cfg *Config) { cfg.Counters = c } }

// WithGauges exposes instantaneous pool state (pool.sessions,
// pool.inflight) on the given registry.
func WithGauges(g *metrics.Gauges) Option { return func(cfg *Config) { cfg.Gauges = g } }

// WithLogger receives protocol diagnostics.
func WithLogger(l *log.Logger) Option { return func(cfg *Config) { cfg.Logger = l } }

// New builds a stopped node named name over tr, applying opts on top of
// the package defaults and validating the result. Call Start to begin
// serving.
func New(name string, tr transport.Transport, opts ...Option) (*Node, error) {
	if name == "" {
		return nil, errors.New("live: node name must not be empty")
	}
	if tr == nil {
		return nil, errors.New("live: transport must not be nil")
	}
	cfg := Config{Name: name}
	for _, opt := range opts {
		opt(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return NewNode(cfg, tr), nil
}

// validate rejects configurations no default can repair. It runs before
// withDefaults, so zero values are fine — only explicit nonsense fails.
func (cfg Config) validate() error {
	if cfg.Capacity < 0 {
		return fmt.Errorf("live: capacity must be >= 0, got %g", cfg.Capacity)
	}
	if cfg.Replication < 0 {
		return fmt.Errorf("live: replication must be >= 0, got %d", cfg.Replication)
	}
	if cfg.RequestTimeout < 0 {
		return fmt.Errorf("live: request timeout must be >= 0, got %v", cfg.RequestTimeout)
	}
	if cfg.RetryAttempts < 0 {
		return fmt.Errorf("live: retry attempts must be >= 0, got %d", cfg.RetryAttempts)
	}
	if cfg.RetryBase < 0 || cfg.RetryMax < 0 || cfg.RetryBudget < 0 {
		return errors.New("live: retry durations must be >= 0")
	}
	if cfg.RetryBase > 0 && cfg.RetryMax > 0 && cfg.RetryBase > cfg.RetryMax {
		return fmt.Errorf("live: retry base %v exceeds retry max %v", cfg.RetryBase, cfg.RetryMax)
	}
	if cfg.LeaseTTL < 0 {
		return fmt.Errorf("live: lease TTL must be >= 0, got %v", cfg.LeaseTTL)
	}
	if cfg.Region != "" && len(cfg.Regions) > 0 {
		found := false
		for _, r := range cfg.Regions {
			if r == cfg.Region {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("live: region %q is not in the declared region set %v", cfg.Region, cfg.Regions)
		}
	}
	if cfg.Pool.MaxSessions < 0 || cfg.Pool.MaxInflight < 0 {
		return errors.New("live: pool limits must be >= 0")
	}
	if cfg.Cache.Shards < 0 || cfg.Cache.MaxEntries < 0 {
		return errors.New("live: cache sizes must be >= 0")
	}
	if cfg.Cache.NegativeTTL < 0 || cfg.Cache.StaleWindow < 0 {
		return errors.New("live: cache durations must be >= 0")
	}
	return nil
}
