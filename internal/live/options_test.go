package live

import (
	"reflect"
	"testing"
	"time"

	"bristle/internal/metrics"
	"bristle/internal/transport"
)

func TestNewAppliesOptionsAndDefaults(t *testing.T) {
	mem := transport.NewMem()
	counters := metrics.NewCounters()
	gauges := metrics.NewGauges()
	n, err := New("opt-node", mem,
		WithCapacity(7),
		WithMobile(),
		WithLease(5*time.Second),
		WithReplication(3),
		WithRequestTimeout(2*time.Second),
		WithRetryBudget(6, 10*time.Millisecond, 500*time.Millisecond, 20*time.Second),
		WithSuspicion(5, 3*time.Second),
		WithCounters(counters),
		WithGauges(gauges),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	cfg := n.cfg
	if cfg.Capacity != 7 || !cfg.Mobile || cfg.LeaseTTL != 5*time.Second || cfg.Replication != 3 {
		t.Errorf("identity options not applied: %+v", cfg)
	}
	if cfg.RequestTimeout != 2*time.Second || cfg.RetryAttempts != 6 ||
		cfg.RetryBase != 10*time.Millisecond || cfg.RetryMax != 500*time.Millisecond ||
		cfg.RetryBudget != 20*time.Second {
		t.Errorf("retry options not applied: %+v", cfg)
	}
	if cfg.SuspicionThreshold != 5 || cfg.SuspicionCooldown != 3*time.Second {
		t.Errorf("suspicion options not applied: %+v", cfg)
	}
	if cfg.Counters != counters || cfg.Gauges != gauges {
		t.Error("metrics registries not applied")
	}
	// Unset knobs get defaults; the pool is on by default.
	if cfg.Pool.MaxSessions != 64 || cfg.Pool.MaxInflight != 128 || cfg.Pool.IdleTimeout != 60*time.Second {
		t.Errorf("pool defaults not applied: %+v", cfg.Pool)
	}
	if n.pool == nil {
		t.Error("pool should be enabled by default")
	}
}

func TestNewDefaultsMatchNewNode(t *testing.T) {
	mem := transport.NewMem()
	n, err := New("defaults", mem)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	legacy := NewNode(Config{Name: "defaults"}, mem)
	defer legacy.Close()
	if !reflect.DeepEqual(n.cfg, legacy.cfg) {
		t.Errorf("New defaults diverge from NewNode:\n  New:     %+v\n  NewNode: %+v", n.cfg, legacy.cfg)
	}
}

func TestNewWithoutPool(t *testing.T) {
	mem := transport.NewMem()
	n, err := New("poolless", mem, WithoutPool())
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if n.pool != nil {
		t.Error("WithoutPool should leave the node unpooled")
	}
	if got := n.Stats().PoolSessions; got != 0 {
		t.Errorf("PoolSessions on unpooled node = %d, want 0", got)
	}
}

func TestNewValidation(t *testing.T) {
	mem := transport.NewMem()
	cases := []struct {
		name string
		node string
		tr   transport.Transport
		opts []Option
	}{
		{"empty name", "", mem, nil},
		{"nil transport", "x", nil, nil},
		{"negative replication", "x", mem, []Option{WithReplication(-1)}},
		{"negative capacity", "x", mem, []Option{WithCapacity(-2)}},
		{"negative timeout", "x", mem, []Option{WithRequestTimeout(-time.Second)}},
		{"base above max", "x", mem, []Option{WithRetryBudget(3, time.Second, time.Millisecond, time.Minute)}},
		{"negative pool limits", "x", mem, []Option{WithPool(PoolConfig{MaxSessions: -1})}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.node, tc.tr, tc.opts...); err == nil {
				t.Errorf("New(%q) accepted invalid config", tc.name)
			}
		})
	}
}
