package live

// This file is the multiplexed connection pool under the RPC layer: one
// long-lived transport.Conn per peer, shared by every concurrent exchange
// with that peer. A writer goroutine serializes outbound frames, a reader
// goroutine demultiplexes replies back to waiting callers by sequence
// number — so an exchange costs a frame, not a dial, and many requests
// are in flight on one connection at once. Broken sessions tear down,
// fail their waiters with retryable errors, and are transparently
// re-dialed by the next attempt, composing with the retry/backoff and
// circuit-breaker machinery in rpc.go.
//
// The session table is sharded by peer address (same FNV-1a layout as the
// breaker table): acquiring a session for one peer never contends with
// exchanges against peers in other shards. The global MaxSessions cap is
// enforced with an atomic reservation counter rather than a pool-wide
// lock.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bristle/internal/metrics"
	"bristle/internal/transport"
	"bristle/internal/wire"
)

// PoolConfig tunes the per-peer multiplexed connection pool.
type PoolConfig struct {
	// Disabled reverts every exchange to the dial-per-request path (the
	// pre-pool behaviour; also the baseline of BenchmarkRPCSequentialDial).
	Disabled bool
	// MaxSessions caps how many peers hold a pooled session at once. At
	// the cap the least-recently-used idle session is evicted; if every
	// session is busy the overflow exchange runs on a one-shot connection.
	// Default 64.
	MaxSessions int
	// MaxInflight bounds the outbound frames queued to one session's
	// writer; enqueues past it wait (backpressure). Default 128.
	MaxInflight int
	// IdleTimeout evicts sessions with no traffic for this long. Zero
	// defaults to 60s; negative disables idle eviction.
	IdleTimeout time.Duration
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 128
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 60 * time.Second
	}
	return c
}

// errPoolSaturated is internal: every session slot is busy, so the
// caller should fall back to a one-shot connection for this exchange.
var errPoolSaturated = errors.New("live: pool saturated")

// errSessionIdle marks idle-eviction teardowns (never seen by callers:
// an idle session has no waiters).
var errSessionIdle = errors.New("live: session idle-evicted")

// poolShard is one slice of the per-peer session table.
type poolShard struct {
	mu sync.Mutex
	m  map[string]*session
}

// pool owns at most one session per peer address, sharded by address.
type pool struct {
	tr       transport.Transport
	cfg      PoolConfig
	counters *metrics.Counters
	gauges   *metrics.Gauges

	closed atomic.Bool
	nsess  atomic.Int64 // reserved session slots (the MaxSessions cap)
	shards [stateShards]poolShard

	stopJanitor chan struct{}
	wg          sync.WaitGroup // janitor + per-session read/write loops
}

func newPool(tr transport.Transport, cfg PoolConfig, counters *metrics.Counters, gauges *metrics.Gauges) *pool {
	p := &pool{
		tr:       tr,
		cfg:      cfg.withDefaults(),
		counters: counters,
		gauges:   gauges,
	}
	for i := range p.shards {
		p.shards[i].m = make(map[string]*session)
	}
	if p.cfg.IdleTimeout > 0 {
		p.stopJanitor = make(chan struct{})
		p.wg.Add(1)
		go p.janitor()
	}
	return p
}

func (p *pool) count(name string)             { p.counters.Inc(name) }
func (p *pool) gaugeAdd(name string, d int64) { p.gauges.Add(name, d) }

// shard selects addr's slice of the session table (addrShard: the same
// FNV-1a as the breaker and RTT tables).
func (p *pool) shard(addr string) *poolShard {
	return &p.shards[addrShard(addr)]
}

// session is one peer's long-lived multiplexed connection.
type session struct {
	p    *pool
	addr string

	ready   chan struct{} // closed once the creator's dial resolved
	dialErr error         // set before ready closes

	conn    transport.Conn
	writeCh chan *wire.Message

	mu       sync.Mutex
	torn     bool
	err      error // teardown cause, set before done closes
	pending  map[uint32]chan *wire.Message
	nextSeq  uint32
	inflight int
	lastUse  time.Time

	done chan struct{} // closed by teardown
}

// acquire returns a live session for addr, dialing one if absent. The
// creator dials inline (bounded by its ctx); concurrent acquirers of the
// same address wait for that dial instead of racing their own. At the
// MaxSessions cap the least-recently-used idle session is evicted and
// the acquire retried; with no idle victim the pool reports saturation
// and the caller falls back to a one-shot dial.
func (p *pool) acquire(ctx context.Context, addr string) (*session, error) {
	// Bounded retry: each round either returns, fails, or has evicted an
	// idle victim (freeing a slot that a rival may steal first).
	for tries := 0; tries < 4; tries++ {
		if p.closed.Load() {
			return nil, ErrPoolClosed
		}
		sh := p.shard(addr)
		sh.mu.Lock()
		// Close CAS-marks closed before sweeping the shards, so an acquire
		// that sees closed==false here either beats the sweep (its session
		// is swept and torn down with the rest) or observes closed==true.
		if p.closed.Load() {
			sh.mu.Unlock()
			return nil, ErrPoolClosed
		}
		if s, ok := sh.m[addr]; ok {
			sh.mu.Unlock()
			select {
			case <-s.ready:
			case <-s.done:
				return nil, s.teardownErr()
			case <-ctx.Done():
				return nil, fmt.Errorf("live: pooled dial %s: %w", addr, ctx.Err())
			}
			if s.dialErr != nil {
				return nil, s.dialErr
			}
			return s, nil
		}
		// Absent: reserve a slot before inserting, so the cap holds
		// globally without a pool-wide lock.
		if p.nsess.Add(1) > int64(p.cfg.MaxSessions) {
			p.nsess.Add(-1)
			sh.mu.Unlock()
			victim := p.lruIdle()
			if victim == nil {
				return nil, errPoolSaturated
			}
			p.count("pool.evictions.cap")
			victim.teardown(errSessionIdle) // its drop releases the slot
			continue
		}
		s := &session{
			p:       p,
			addr:    addr,
			ready:   make(chan struct{}),
			done:    make(chan struct{}),
			writeCh: make(chan *wire.Message, p.cfg.MaxInflight),
			pending: make(map[uint32]chan *wire.Message),
			lastUse: time.Now(),
		}
		sh.m[addr] = s
		p.gauges.Set("pool.sessions", p.nsess.Load())
		sh.mu.Unlock()
		return s, s.dial(ctx)
	}
	return nil, errPoolSaturated
}

// dial is run once, by the session's creator. On success it starts the
// session's read and write loops.
func (s *session) dial(ctx context.Context) error {
	conn, err := transport.DialContext(ctx, s.p.tr, s.addr)
	if err != nil {
		s.dialErr = err
		close(s.ready)
		s.p.drop(s)
		s.teardown(err)
		return err
	}
	s.mu.Lock()
	if s.torn { // pool closed or session evicted while dialing
		err := s.err
		s.mu.Unlock()
		conn.Close()
		s.dialErr = err
		close(s.ready)
		return err
	}
	s.conn = conn
	s.mu.Unlock()
	close(s.ready)
	s.p.count("pool.dials")
	s.p.wg.Add(2)
	go s.writeLoop()
	go s.readLoop()
	return nil
}

func (s *session) writeLoop() {
	defer s.p.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case m := <-s.writeCh:
			if err := s.conn.Send(m); err != nil {
				s.teardown(fmt.Errorf("live: pooled send to %s: %w", s.addr, err))
				return
			}
		}
	}
}

// readLoop demultiplexes inbound frames to their waiting callers by
// sequence number. Replies nobody is waiting for — a duplicated frame's
// second answer, or the answer to an abandoned (timed-out) request — are
// counted and dropped. Any receive error tears the session down: on a
// real stream a framing error is unrecoverable, and a fresh connection
// is one retry away.
func (s *session) readLoop() {
	defer s.p.wg.Done()
	for {
		m, err := s.conn.Recv()
		if err != nil {
			s.teardown(fmt.Errorf("live: pooled recv from %s: %w", s.addr, err))
			return
		}
		s.mu.Lock()
		ch, ok := s.pending[m.Seq]
		if ok {
			delete(s.pending, m.Seq)
		}
		s.mu.Unlock()
		if !ok {
			s.p.count("pool.demux.orphans")
			continue
		}
		ch <- m // buffered (cap 1); never blocks
	}
}

// teardown closes the session exactly once: waiters fail, the conn
// closes, and the pool forgets the session so the next attempt re-dials.
func (s *session) teardown(err error) {
	s.mu.Lock()
	if s.torn {
		s.mu.Unlock()
		return
	}
	s.torn = true
	s.err = err
	conn := s.conn
	pend := s.pending
	s.pending = nil
	s.mu.Unlock()
	close(s.done)
	if conn != nil {
		conn.Close()
	}
	s.p.drop(s)
	for _, ch := range pend {
		close(ch) // closed reply channel = session failed; see roundTrip
	}
	if err != errSessionIdle && err != ErrPoolClosed {
		s.p.count("pool.broken")
	}
}

func (s *session) teardownErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return ErrPoolClosed
}

// register assigns the next sequence number and parks a reply channel
// for it. Fails if the session is already torn.
func (s *session) register(m *wire.Message) (uint32, chan *wire.Message, error) {
	s.mu.Lock()
	if s.torn {
		err := s.err
		s.mu.Unlock()
		return 0, nil, err
	}
	s.nextSeq++
	seq := s.nextSeq
	m.Seq = seq
	reply := make(chan *wire.Message, 1)
	s.pending[seq] = reply
	s.inflight++
	s.lastUse = time.Now()
	s.mu.Unlock()
	s.p.gaugeAdd("pool.inflight", 1)
	return seq, reply, nil
}

func (s *session) unregister(seq uint32) {
	s.mu.Lock()
	if s.pending != nil {
		delete(s.pending, seq)
	}
	s.mu.Unlock()
}

func (s *session) endUse() {
	s.mu.Lock()
	s.inflight--
	s.lastUse = time.Now()
	s.mu.Unlock()
	s.p.gaugeAdd("pool.inflight", -1)
}

// roundTrip runs one request/response exchange over the shared
// connection, bounded by ctx. A slow reply to another caller cannot
// block this one: each waiter parks on its own demux channel.
//
// The frame is enqueued as a private shallow copy: an abandoned attempt's
// frame may still sit in the write queue when the retry re-stamps Seq, so
// attempts must never share a Message with the writer.
func (s *session) roundTrip(ctx context.Context, m *wire.Message) (*wire.Message, error) {
	mm := *m
	seq, reply, err := s.register(&mm)
	if err != nil {
		return nil, err
	}
	defer s.endUse()
	select {
	case s.writeCh <- &mm:
	case <-s.done:
		s.unregister(seq)
		return nil, s.teardownErr()
	case <-ctx.Done():
		s.unregister(seq)
		return nil, fmt.Errorf("live: pooled request to %s: %w", s.addr, ctx.Err())
	}
	select {
	case resp, ok := <-reply:
		if !ok {
			return nil, s.teardownErr()
		}
		return resp, nil
	case <-ctx.Done():
		s.unregister(seq)
		return nil, fmt.Errorf("live: pooled request to %s: %w", s.addr, ctx.Err())
	}
}

// send enqueues a one-way frame (no reply expected) on the shared
// connection.
func (s *session) send(ctx context.Context, m *wire.Message) error {
	mm := *m
	s.mu.Lock()
	if s.torn {
		err := s.err
		s.mu.Unlock()
		return err
	}
	s.nextSeq++
	mm.Seq = s.nextSeq
	s.lastUse = time.Now()
	s.mu.Unlock()
	select {
	case s.writeCh <- &mm:
		return nil
	case <-s.done:
		return s.teardownErr()
	case <-ctx.Done():
		return fmt.Errorf("live: pooled send to %s: %w", s.addr, ctx.Err())
	}
}

// roundTrip acquires (or dials) addr's session and runs one exchange.
func (p *pool) roundTrip(ctx context.Context, addr string, m *wire.Message) (*wire.Message, error) {
	s, err := p.acquire(ctx, addr)
	if err != nil {
		return nil, err
	}
	return s.roundTrip(ctx, m)
}

// send acquires (or dials) addr's session and enqueues a one-way frame.
func (p *pool) send(ctx context.Context, addr string, m *wire.Message) error {
	s, err := p.acquire(ctx, addr)
	if err != nil {
		return err
	}
	return s.send(ctx, m)
}

// drop forgets s unless a newer session already replaced it, releasing
// its slot reservation. The identity check makes the double-drop from
// the dial-failure path (drop + teardown→drop) harmless.
func (p *pool) drop(s *session) {
	sh := p.shard(s.addr)
	sh.mu.Lock()
	if sh.m[s.addr] == s {
		delete(sh.m, s.addr)
		p.gauges.Set("pool.sessions", p.nsess.Add(-1))
	}
	sh.mu.Unlock()
}

// lruIdle returns the least-recently-used session with nothing in
// flight, or nil. Shards are scanned one at a time; the answer is a best
// effort under concurrent churn, which eviction tolerates by design.
func (p *pool) lruIdle() *session {
	var oldest *session
	var oldestUse time.Time
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for _, s := range sh.m {
			s.mu.Lock()
			idle := !s.torn && s.inflight == 0
			use := s.lastUse
			s.mu.Unlock()
			if idle && (oldest == nil || use.Before(oldestUse)) {
				oldest, oldestUse = s, use
			}
		}
		sh.mu.Unlock()
	}
	return oldest
}

func (p *pool) janitor() {
	defer p.wg.Done()
	interval := p.cfg.IdleTimeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-p.stopJanitor:
			return
		case now := <-t.C:
			p.evictIdle(now)
		}
	}
}

func (p *pool) evictIdle(now time.Time) {
	var victims []*session
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for _, s := range sh.m {
			s.mu.Lock()
			idle := !s.torn && s.inflight == 0 && now.Sub(s.lastUse) >= p.cfg.IdleTimeout
			s.mu.Unlock()
			if idle {
				victims = append(victims, s)
			}
		}
		sh.mu.Unlock()
	}
	for _, s := range victims {
		p.count("pool.evictions.idle")
		s.teardown(errSessionIdle)
	}
}

// sessionCount reports the current number of pooled sessions.
func (p *pool) sessionCount() int { return int(p.nsess.Load()) }

// Close tears down every session and stops the janitor, then waits for
// all pool goroutines to exit. Idempotent.
func (p *pool) Close() {
	if !p.closed.CompareAndSwap(false, true) {
		return
	}
	var victims []*session
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for _, s := range sh.m {
			victims = append(victims, s)
		}
		sh.m = make(map[string]*session)
		sh.mu.Unlock()
	}
	p.nsess.Store(0)
	p.gauges.Set("pool.sessions", 0)
	if p.stopJanitor != nil {
		close(p.stopJanitor)
	}
	for _, s := range victims {
		s.teardown(ErrPoolClosed)
	}
	p.wg.Wait()
}
