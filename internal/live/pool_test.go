package live

// Tests for the multiplexed connection pool: correct demultiplexing under
// concurrency and injected frame faults, idle eviction, transparent
// re-dial of broken sessions, saturation fallback, and the
// head-of-line-blocking regression (a slow exchange must not delay a fast
// one sharing the connection).

import (
	"context"
	"sync"
	"testing"
	"time"

	"bristle/internal/hashkey"
	"bristle/internal/metrics"
	"bristle/internal/transport"
	"bristle/internal/wire"
)

// poolTestConfig returns a client policy tuned for fast tests: short
// per-attempt timeouts, quick retries, suspicion off (injected faults
// must not trip breakers and mask pool behaviour).
func poolTestConfig(name string, counters *metrics.Counters, gauges *metrics.Gauges) Config {
	return Config{
		Name:               name,
		Capacity:           1,
		RequestTimeout:     300 * time.Millisecond,
		RetryAttempts:      8,
		RetryBase:          2 * time.Millisecond,
		RetryMax:           20 * time.Millisecond,
		RetryBudget:        10 * time.Second,
		SuspicionThreshold: -1,
		Counters:           counters,
		Gauges:             gauges,
	}
}

// TestPoolConcurrentDemuxUnderFaults hammers one pooled session from many
// goroutines through a lossy, duplicating link. Every exchange must
// complete (retries cover dropped frames), replies must land with their
// own callers (demux by seq), and the whole load must ride a handful of
// dials, not one per request.
func TestPoolConcurrentDemuxUnderFaults(t *testing.T) {
	mem := transport.NewMem()
	faulty := transport.NewFaulty(mem, transport.FaultConfig{
		Seed:      42,
		Drop:      0.08,
		Duplicate: 0.15,
	})

	server := NewNode(Config{Name: "demux-server", Capacity: 2}, faulty.Endpoint("server"))
	if err := server.Start(""); err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	counters := metrics.NewCounters()
	gauges := metrics.NewGauges()
	client := NewNode(poolTestConfig("demux-client", counters, gauges), faulty.Endpoint("client"))
	defer client.Close()

	const workers = 16
	const perWorker = 20
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := client.PingContext(ctx, server.Addr()); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("ping under faults: %v", err)
	}

	if got := client.Stats().PoolSessions; got != 1 {
		t.Errorf("PoolSessions = %d, want 1 (one peer)", got)
	}
	if got := gauges.Get("pool.inflight"); got != 0 {
		t.Errorf("pool.inflight gauge = %d after quiescence, want 0", got)
	}
	dials := counters.Get("pool.dials")
	if dials == 0 || dials > 20 {
		t.Errorf("pool.dials = %d, want a handful (reuse, not dial-per-request)", dials)
	}
	t.Logf("counters: %s", counters)
}

// pingServer is a minimal hand-rolled peer: answers pings, lets the test
// reach into its accepted connections to break them.
type pingServer struct {
	l     transport.Listener
	conns chan transport.Conn
}

func startPingServer(t *testing.T, tr transport.Transport) *pingServer {
	t.Helper()
	l, err := tr.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	s := &pingServer{l: l, conns: make(chan transport.Conn, 16)}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			s.conns <- c
			go func(c transport.Conn) {
				for {
					m, err := c.Recv()
					if err != nil {
						return
					}
					if m.Type == wire.TPing {
						if err := c.Send(&wire.Message{Type: wire.TPong, Seq: m.Seq}); err != nil {
							return
						}
					}
				}
			}(c)
		}
	}()
	t.Cleanup(func() { l.Close() })
	return s
}

func TestPoolIdleEviction(t *testing.T) {
	mem := transport.NewMem()
	server := startPingServer(t, mem)

	counters := metrics.NewCounters()
	gauges := metrics.NewGauges()
	cfg := poolTestConfig("idle-client", counters, gauges)
	cfg.Pool.IdleTimeout = 40 * time.Millisecond
	client := NewNode(cfg, mem)
	defer client.Close()

	ctx := context.Background()
	if err := client.PingContext(ctx, server.l.Addr()); err != nil {
		t.Fatal(err)
	}
	if got := client.Stats().PoolSessions; got != 1 {
		t.Fatalf("PoolSessions after ping = %d, want 1", got)
	}

	deadline := time.Now().Add(2 * time.Second)
	for client.Stats().PoolSessions != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle session never evicted; sessions=%d", client.Stats().PoolSessions)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := counters.Get("pool.evictions.idle"); got == 0 {
		t.Errorf("pool.evictions.idle = 0, want >= 1")
	}
	if got := gauges.Get("pool.sessions"); got != 0 {
		t.Errorf("pool.sessions gauge = %d after eviction, want 0", got)
	}

	// The next exchange transparently re-dials.
	if err := client.PingContext(ctx, server.l.Addr()); err != nil {
		t.Fatalf("ping after eviction: %v", err)
	}
	if got := counters.Get("pool.dials"); got != 2 {
		t.Errorf("pool.dials = %d, want 2 (initial + re-dial)", got)
	}
}

func TestPoolRedialAfterBrokenSession(t *testing.T) {
	mem := transport.NewMem()
	server := startPingServer(t, mem)

	counters := metrics.NewCounters()
	client := NewNode(poolTestConfig("redial-client", counters, nil), mem)
	defer client.Close()

	ctx := context.Background()
	if err := client.PingContext(ctx, server.l.Addr()); err != nil {
		t.Fatal(err)
	}
	first := <-server.conns
	first.Close() // the peer's end of the pooled session dies

	// The client's read loop notices and tears the session down.
	deadline := time.Now().Add(2 * time.Second)
	for client.Stats().PoolSessions != 0 {
		if time.Now().After(deadline) {
			t.Fatal("broken session never torn down")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The next exchange re-dials without caller involvement.
	if err := client.PingContext(ctx, server.l.Addr()); err != nil {
		t.Fatalf("ping after broken session: %v", err)
	}
	if got := counters.Get("pool.dials"); got != 2 {
		t.Errorf("pool.dials = %d, want 2", got)
	}
	if got := counters.Get("pool.broken"); got == 0 {
		t.Errorf("pool.broken = 0, want >= 1")
	}
}

// slowServer answers pings immediately but delays discover responses,
// replying out of order — the probe for head-of-line blocking.
func startSlowServer(t *testing.T, tr transport.Transport, slowFor time.Duration) transport.Listener {
	t.Helper()
	l, err := tr.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c transport.Conn) {
				var sendMu sync.Mutex
				for {
					m, err := c.Recv()
					if err != nil {
						return
					}
					switch m.Type {
					case wire.TPing:
						sendMu.Lock()
						c.Send(&wire.Message{Type: wire.TPong, Seq: m.Seq})
						sendMu.Unlock()
					case wire.TDiscover:
						go func(seq uint32) {
							time.Sleep(slowFor)
							sendMu.Lock()
							c.Send(&wire.Message{Type: wire.TDiscoverResp, Seq: seq, Found: true})
							sendMu.Unlock()
						}(m.Seq)
					}
				}
			}(c)
		}
	}()
	t.Cleanup(func() { l.Close() })
	return l
}

// TestPoolNoHeadOfLineBlocking shares one session between a slow exchange
// and a fast one; the fast reply must come back while the slow exchange
// is still pending.
func TestPoolNoHeadOfLineBlocking(t *testing.T) {
	mem := transport.NewMem()
	const slowFor = 400 * time.Millisecond
	l := startSlowServer(t, mem, slowFor)

	p := newPool(mem, PoolConfig{}, nil, nil)
	defer p.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	slowDone := make(chan error, 1)
	go func() {
		_, err := p.roundTrip(ctx, l.Addr(), &wire.Message{Type: wire.TDiscover, Key: hashkey.FromName("slow")})
		slowDone <- err
	}()
	// Let the slow request reach the wire before racing it.
	time.Sleep(50 * time.Millisecond)

	start := time.Now()
	if _, err := p.roundTrip(ctx, l.Addr(), &wire.Message{Type: wire.TPing}); err != nil {
		t.Fatalf("fast ping: %v", err)
	}
	fast := time.Since(start)
	if fast > slowFor/2 {
		t.Errorf("fast exchange took %v behind a %v-slow one: head-of-line blocking", fast, slowFor)
	}
	if err := <-slowDone; err != nil {
		t.Fatalf("slow exchange: %v", err)
	}
	if p.sessionCount() != 1 {
		t.Errorf("sessions = %d, want 1 (both exchanges share the conn)", p.sessionCount())
	}
}

// TestPoolSaturationFallsBack pins the only session slot on a busy peer;
// an exchange with a second peer must fall back to a one-shot dial and
// still succeed.
func TestPoolSaturationFallsBack(t *testing.T) {
	mem := transport.NewMem()
	slow := startSlowServer(t, mem, 300*time.Millisecond)
	fastSrv := startPingServer(t, mem)

	counters := metrics.NewCounters()
	cfg := poolTestConfig("saturated-client", counters, nil)
	cfg.Pool.MaxSessions = 1
	client := NewNode(cfg, mem)
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// Occupy the single slot with an in-flight exchange.
	slowDone := make(chan error, 1)
	go func() {
		_, err := client.pool.roundTrip(ctx, slow.Addr(), &wire.Message{Type: wire.TDiscover, Key: hashkey.FromName("x")})
		slowDone <- err
	}()
	time.Sleep(50 * time.Millisecond)

	if err := client.PingContext(ctx, fastSrv.l.Addr()); err != nil {
		t.Fatalf("ping during saturation: %v", err)
	}
	if got := counters.Get("pool.fallbacks"); got == 0 {
		t.Errorf("pool.fallbacks = 0, want >= 1 (one-shot dial under saturation)")
	}
	if err := <-slowDone; err != nil {
		t.Fatalf("pinned exchange: %v", err)
	}
}

// TestPoolClosedIsTerminal verifies exchanges racing Close fail with the
// non-retryable ErrPoolClosed instead of hanging or retrying.
func TestPoolClosedIsTerminal(t *testing.T) {
	mem := transport.NewMem()
	server := startPingServer(t, mem)

	p := newPool(mem, PoolConfig{}, nil, nil)
	ctx := context.Background()
	if _, err := p.roundTrip(ctx, server.l.Addr(), &wire.Message{Type: wire.TPing}); err != nil {
		t.Fatal(err)
	}
	p.Close()
	_, err := p.roundTrip(ctx, server.l.Addr(), &wire.Message{Type: wire.TPing})
	if err != ErrPoolClosed {
		t.Fatalf("roundTrip after Close: err = %v, want ErrPoolClosed", err)
	}
	if Retryable(err) {
		t.Error("ErrPoolClosed must not be retryable")
	}
}
