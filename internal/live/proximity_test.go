package live

// White-box tests for proximity-aware replica selection: the OrderReplicas
// comparator (suspicion outranks RTT), the exploration jitter for
// unmeasured peers, and the sharded RTT estimator table.

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"bristle/internal/hashkey"
	"bristle/internal/transport"
	"bristle/internal/wire"
)

func entries(addrs ...string) []wire.Entry {
	out := make([]wire.Entry, len(addrs))
	for i, a := range addrs {
		out[i] = wire.Entry{Addr: a}
	}
	return out
}

func addrsOf(es []wire.Entry) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.Addr
	}
	return out
}

func TestOrderReplicas(t *testing.T) {
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	cases := []struct {
		name    string
		in      []string
		suspect map[string]bool
		eff     map[string]time.Duration
		want    []string
	}{
		{
			name: "ascending RTT",
			in:   []string{"c", "a", "b"},
			eff:  map[string]time.Duration{"a": ms(1), "b": ms(2), "c": ms(3)},
			want: []string{"a", "b", "c"},
		},
		{
			name:    "suspects last regardless of RTT",
			in:      []string{"fast-dead", "slow-live"},
			suspect: map[string]bool{"fast-dead": true},
			eff:     map[string]time.Duration{"fast-dead": ms(1), "slow-live": ms(50)},
			want:    []string{"slow-live", "fast-dead"},
		},
		{
			name:    "suspects keep RTT order among themselves",
			in:      []string{"s-far", "ok", "s-near"},
			suspect: map[string]bool{"s-far": true, "s-near": true},
			eff:     map[string]time.Duration{"s-far": ms(9), "ok": ms(5), "s-near": ms(2)},
			want:    []string{"ok", "s-near", "s-far"},
		},
		{
			name: "no data preserves input (key-distance) order",
			in:   []string{"x", "y", "z"},
			want: []string{"x", "y", "z"},
		},
		{
			name: "missing eff sorts first but stably",
			in:   []string{"measured", "unknown1", "unknown2"},
			eff:  map[string]time.Duration{"measured": ms(4)},
			want: []string{"unknown1", "unknown2", "measured"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := entries(tc.in...)
			OrderReplicas(got, tc.suspect, tc.eff)
			if fmt.Sprint(addrsOf(got)) != fmt.Sprint(tc.want) {
				t.Errorf("OrderReplicas(%v) = %v, want %v", tc.in, addrsOf(got), tc.want)
			}
		})
	}
}

// TestSelectReplicasRegionDiversity: under region-striped placement
// every record's replica set spans min(k, regions) distinct regions, the
// diversified set still takes the closest candidate of each region, and
// regions < 2 degrades to plain k-closest.
func TestSelectReplicasRegionDiversity(t *testing.T) {
	regions := []string{"east", "west", "south"}
	arc := hashkey.FullRing()
	cands := make([]wire.Entry, 0, 90)
	for i := 0; i < 90; i++ {
		name := fmt.Sprintf("s-%d", i)
		cands = append(cands, wire.Entry{
			Key:  hashkey.RegionStriped(arc, name, regions[i%3], regions),
			Addr: name,
		})
	}
	for q := 0; q < 50; q++ {
		key := hashkey.FromName(fmt.Sprintf("record-%d", q))

		plain := SelectReplicas(append([]wire.Entry(nil), cands...), key, 3, 0)
		byDist := append([]wire.Entry(nil), cands...)
		sort.Slice(byDist, func(i, j int) bool { return hashkey.Closer(key, byDist[i].Key, byDist[j].Key) })
		for i := range plain {
			if plain[i].Addr != byDist[i].Addr {
				t.Fatalf("record %d: regions=0 selection diverges from plain k-closest at %d", q, i)
			}
		}

		div := SelectReplicas(append([]wire.Entry(nil), cands...), key, 3, 3)
		seen := map[int]bool{}
		for _, e := range div {
			ri := hashkey.RegionIndex(arc, e.Key, 3)
			if seen[ri] {
				t.Fatalf("record %d: replica set repeats region %d: %v", q, ri, div)
			}
			seen[ri] = true
		}
		// Each member is the closest candidate of its own region.
		for _, e := range div {
			ri := hashkey.RegionIndex(arc, e.Key, 3)
			for _, c := range byDist {
				if hashkey.RegionIndex(arc, c.Key, 3) != ri {
					continue
				}
				if c.Addr != e.Addr {
					t.Fatalf("record %d: region %d replica %s is not its region's closest (%s)", q, ri, e.Addr, c.Addr)
				}
				break
			}
		}
		// The region-diverse set must be deterministic across callers: a
		// second computation over a reshuffled candidate slice agrees.
		shuffled := append([]wire.Entry(nil), cands...)
		for i := range shuffled {
			j := (i * 37) % len(shuffled)
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		}
		again := SelectReplicas(shuffled, key, 3, 3)
		for i := range div {
			if div[i].Addr != again[i].Addr {
				t.Fatalf("record %d: selection depends on candidate order: %v vs %v", q, addrsOf(div), addrsOf(again))
			}
		}
	}
	// k beyond the region count fills the tail with the closest
	// passed-over candidates, still leading with one per region.
	key := hashkey.FromName("wide-record")
	wide := SelectReplicas(append([]wire.Entry(nil), cands...), key, 5, 3)
	if len(wide) != 5 {
		t.Fatalf("k=5 selection returned %d replicas", len(wide))
	}
	lead := map[int]bool{}
	for _, e := range wide[:3] {
		lead[hashkey.RegionIndex(arc, e.Key, 3)] = true
	}
	if len(lead) != 3 {
		t.Fatalf("k=5 selection's first 3 replicas span %d regions, want 3", len(lead))
	}
}

// TestPeerHealthExploresUnknownPeers pins the exploration policy: an
// unmeasured candidate gets a jittered effective RTT in [0, mean of the
// measured candidates], so it is neither always first nor exiled behind
// every measured peer, and the jitter is frozen per snapshot (the sort
// comparator must be consistent).
func TestPeerHealthExploresUnknownPeers(t *testing.T) {
	n := NewNode(Config{Name: "prober"}, transport.NewMem())
	defer n.Close()
	n.rtt.observe("measured-a", 10*time.Millisecond)
	n.rtt.observe("measured-b", 30*time.Millisecond)
	cands := entries("measured-a", "measured-b", "unknown")

	mean := 20 * time.Millisecond
	leadCount := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		h := n.peerHealth(cands)
		if h.eff["measured-a"] != 10*time.Millisecond || h.eff["measured-b"] != 30*time.Millisecond {
			t.Fatalf("measured eff wrong: %v", h.eff)
		}
		ex := h.eff["unknown"]
		if ex < 0 || ex > mean {
			t.Fatalf("exploration jitter %v outside [0, %v]", ex, mean)
		}
		if ex < 10*time.Millisecond {
			leadCount++
		}
	}
	// The jitter is uniform over [0, 20ms]: the unknown peer should lead
	// (draw under measured-a's 10ms) roughly half the time.
	if leadCount == 0 || leadCount == trials {
		t.Fatalf("unknown peer led %d/%d fan-outs; exploration is degenerate", leadCount, trials)
	}
}

// TestPeerHealthNoMeasurementsUsesFloor: with nothing measured the
// exploration scale falls back to rttExploreFloor rather than zero.
func TestPeerHealthNoMeasurementsUsesFloor(t *testing.T) {
	n := NewNode(Config{Name: "cold"}, transport.NewMem())
	defer n.Close()
	cands := entries("p", "q")
	sawNonZero := false
	for i := 0; i < 100; i++ {
		h := n.peerHealth(cands)
		for _, addr := range []string{"p", "q"} {
			if h.eff[addr] < 0 || h.eff[addr] > rttExploreFloor {
				t.Fatalf("cold jitter %v outside [0, %v]", h.eff[addr], rttExploreFloor)
			}
			if h.eff[addr] > 0 {
				sawNonZero = true
			}
		}
	}
	if !sawNonZero {
		t.Fatal("cold exploration jitter never non-zero")
	}
}

func TestRTTTableObserveEstimate(t *testing.T) {
	var tbl rttTable
	tbl.init()
	if _, _, ok := tbl.estimate("nobody"); ok {
		t.Fatal("estimate for unseen peer should be absent")
	}
	tbl.observe("p", 10*time.Millisecond)
	est, samples, ok := tbl.estimate("p")
	if !ok || samples != 1 || est != 10*time.Millisecond {
		t.Fatalf("first sample = (%v, %d, %v), want exactly 10ms", est, samples, ok)
	}
	tbl.observe("p", 20*time.Millisecond)
	est, samples, _ = tbl.estimate("p")
	want := time.Duration((1-rttAlpha)*float64(10*time.Millisecond) + rttAlpha*float64(20*time.Millisecond))
	if samples != 2 || est < want-time.Millisecond || est > want+time.Millisecond {
		t.Fatalf("smoothed = (%v, %d), want ~%v", est, samples, want)
	}
	// Non-positive durations (clock granularity) still count as samples.
	tbl.observe("q", 0)
	if _, samples, ok := tbl.estimate("q"); !ok || samples != 1 {
		t.Fatal("zero-duration sample not counted")
	}
}

// TestRTTTableConcurrent hammers observe/estimate across peers and
// goroutines; run under -race this pins the lock-free read discipline.
func TestRTTTableConcurrent(t *testing.T) {
	var tbl rttTable
	tbl.init()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				addr := fmt.Sprintf("peer-%d", i%37)
				tbl.observe(addr, time.Duration(g+1)*time.Millisecond)
				tbl.estimate(addr)
			}
		}(g)
	}
	wg.Wait()
	for i := 0; i < 37; i++ {
		if _, samples, ok := tbl.estimate(fmt.Sprintf("peer-%d", i)); !ok || samples == 0 {
			t.Fatalf("peer-%d missing after concurrent observes", i)
		}
	}
}

// TestRTTFedFromOrdinaryExchanges: a live node's estimator table fills
// from its normal request path (here: pings through the pool), with no
// probe traffic, and the estimate tracks the injected link latency.
func TestRTTFedFromOrdinaryExchanges(t *testing.T) {
	faulty := transport.NewFaulty(transport.NewMem(), transport.FaultConfig{
		Seed: 7,
		Latency: func(from, to string) time.Duration {
			if from == "a" && to == "b" {
				return 5 * time.Millisecond
			}
			return 0
		},
	})
	a := NewNode(Config{Name: "a"}, faulty.Endpoint("a"))
	if err := a.Start(""); err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b := NewNode(Config{Name: "b"}, faulty.Endpoint("b"))
	if err := b.Start(""); err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for i := 0; i < 4; i++ {
		if err := a.Ping(b.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	est, samples, ok := a.rtt.estimate(b.Addr())
	if !ok || samples != 4 {
		t.Fatalf("estimate = (%v, %d, %v), want 4 samples", est, samples, ok)
	}
	if est < 4*time.Millisecond || est > 50*time.Millisecond {
		t.Fatalf("estimate %v does not track the 5ms injected link latency", est)
	}
}
