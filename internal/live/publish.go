package live

// This file is the publish path: the owned-key set (the resource records
// a mobile host re-homes when it moves) and PublishContext, the
// O(replicas) batched publication. The owned set has its own small
// mutex — OwnKeys/DisownKeys/OwnedKeys and a concurrent PublishContext
// never touch any other node state, so key churn can ride alongside a
// large in-flight publication.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"bristle/internal/hashkey"
	"bristle/internal/wire"
)

// OwnKeys adds resource keys to the set this node publishes at its own
// address: PublishContext re-homes them all (batched per owner replica)
// and every rebind moves them with the node.
func (n *Node) OwnKeys(keys ...hashkey.Key) {
	n.ownedMu.Lock()
	defer n.ownedMu.Unlock()
	for _, k := range keys {
		n.owned[k] = struct{}{}
	}
}

// DisownKeys removes resource keys from the owned set. Already-published
// records lapse with their lease rather than being withdrawn.
func (n *Node) DisownKeys(keys ...hashkey.Key) {
	n.ownedMu.Lock()
	defer n.ownedMu.Unlock()
	for _, k := range keys {
		delete(n.owned, k)
	}
}

// OwnedKeys returns the resource keys currently published at this node's
// address (beyond its identity key), sorted.
func (n *Node) OwnedKeys() []hashkey.Key {
	n.ownedMu.Lock()
	out := make([]hashkey.Key, 0, len(n.owned))
	for k := range n.owned {
		out = append(out, k)
	}
	n.ownedMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// publishBatchMax bounds the records per TPublishBatch frame, keeping a
// worst-case frame comfortably under wire.MaxFrame.
const publishBatchMax = 8192

// PublishContext pushes this node's current address — and every record
// in its owned set — to the owners of each key (the paper's location
// publication, k-replicated). Records are grouped by owner replica so a
// move re-homes N keys in O(replicas) RPCs, not O(N): each distinct
// replica address receives one TPublishBatch (chunked at
// publishBatchMax) ingested record-by-record on the far side. A node
// owning nothing beyond its identity key sends the classic single-record
// TPublish. It succeeds when every record was stored at ≥1 replica.
func (n *Node) PublishContext(ctx context.Context) error {
	now := time.Now()
	// One atomic read of (addr, epoch): every record of this publication
	// asserts the same binding, even against a concurrent rebind.
	self := n.SelfEntry()
	n.ownedMu.Lock()
	records := make([]wire.Entry, 0, 1+len(n.owned))
	records = append(records, self)
	for k := range n.owned {
		records = append(records, wire.Entry{Key: k, Addr: self.Addr, TTLMilli: self.TTLMilli, Epoch: self.Epoch})
	}
	n.ownedMu.Unlock()
	cands := n.stationarySnapshot()
	if len(cands) == 0 {
		return errors.New("live: no known stationary peers")
	}
	sort.Slice(records, func(i, j int) bool { return records[i].Key < records[j].Key })
	// One peerHealth snapshot ranks the whole fan-out: suspicion is one
	// breaker-table scan (not one lock round per record) and every
	// candidate's effective RTT — measured or exploration-jittered — is
	// frozen, so replica ordering cannot flap mid-batch.
	health := n.peerHealth(cands)

	// Group every record's replica set by owner address. Self-owned
	// records (a stationary node can be its own replica) are ingested
	// locally without a frame.
	groups := make(map[string][]wire.Entry)
	var order []string
	var selfRecs []wire.Entry
	for _, rec := range records {
		for _, owner := range ownersForKey(cands, health, rec.Key, n.cfg.Replication, len(n.cfg.Regions)) {
			if owner.Key == n.key {
				selfRecs = append(selfRecs, rec)
				continue
			}
			if _, ok := groups[owner.Addr]; !ok {
				order = append(order, owner.Addr)
			}
			groups[owner.Addr] = append(groups[owner.Addr], rec)
		}
	}

	stored := make(map[hashkey.Key]int, len(records)) // replicas holding each record
	if len(selfRecs) > 0 {
		accepted := 0
		for _, rec := range selfRecs {
			if n.store.apply(rec, now) {
				accepted++
				stored[rec.Key]++
			}
		}
		n.cfg.Counters.Add("publish.records", uint64(len(selfRecs)))
		n.cfg.Counters.Add("publish.accepted", uint64(accepted))
		if rej := len(selfRecs) - accepted; rej > 0 {
			n.cfg.Counters.Add("publish.stale_rejected", uint64(rej))
		}
	}

	type chunkResult struct {
		recs []wire.Entry
		err  error
	}
	results := make(chan chunkResult)
	outstanding := 0
	for _, addr := range order {
		recs := groups[addr]
		outstanding += (len(recs) + publishBatchMax - 1) / publishBatchMax
		go func(addr string, recs []wire.Entry) {
			for start := 0; start < len(recs); start += publishBatchMax {
				end := start + publishBatchMax
				if end > len(recs) {
					end = len(recs)
				}
				chunk := recs[start:end]
				// Each replica gets its own message: Seq is stamped per
				// exchange, so concurrent fan-out must not share frames.
				msg := &wire.Message{Type: wire.TPublishBatch, Self: self, Entries: chunk}
				if len(records) == 1 {
					// Nothing owned beyond the identity key: keep the
					// classic single-record publish on the wire.
					msg = &wire.Message{Type: wire.TPublish, Self: self}
				}
				n.count("publish.rpcs")
				resp, err := n.request(ctx, addr, msg)
				switch {
				case err != nil:
					results <- chunkResult{chunk, fmt.Errorf("live: publish to %s: %w", addr, err)}
				case resp.Type != wire.TPublishAck:
					results <- chunkResult{chunk, fmt.Errorf("live: unexpected publish response %v", resp.Type)}
				default:
					results <- chunkResult{chunk, nil}
				}
			}
		}(addr, recs)
	}
	var lastErr error
	for i := 0; i < outstanding; i++ {
		r := <-results
		if r.err != nil {
			lastErr = r.err
			continue
		}
		for _, rec := range r.recs {
			stored[rec.Key]++
		}
	}
	missing := 0
	for _, rec := range records {
		if stored[rec.Key] == 0 {
			missing++
		}
	}
	if missing > 0 {
		if lastErr != nil {
			return fmt.Errorf("live: publish: %d of %d records stored nowhere: %w", missing, len(records), lastErr)
		}
		return fmt.Errorf("live: publish: %d of %d records stored nowhere", missing, len(records))
	}
	return nil
}
