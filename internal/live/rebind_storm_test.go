package live

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bristle/internal/metrics"
	"bristle/internal/transport"
)

// TestRebindUnderConcurrentResolvers races a resolver storm against a
// live rebind: while goroutines hammer ResolveContext for a mobile's
// key, the mobile relocates. Every answer the storm observes must be an
// address the key actually held (old or new — never garbage, never
// not-found), and once the old lease lapses every resolver must
// converge on the post-move address. Run under -race this also proves
// the cache/rebind interleaving is data-race clean.
func TestRebindUnderConcurrentResolvers(t *testing.T) {
	const leaseTTL = 400 * time.Millisecond

	mem := transport.NewMem()
	ctrs := metrics.NewCounters()
	mk := func(name string, mobile bool) *Node {
		n := NewNode(Config{
			Name:        name,
			Capacity:    4,
			Mobile:      mobile,
			LeaseTTL:    leaseTTL,
			Replication: 2,
			Counters:    ctrs,
		}, mem)
		if err := n.Start(""); err != nil {
			t.Fatalf("start %s: %v", name, err)
		}
		t.Cleanup(func() { n.Close() })
		return n
	}
	s1, s2, s3 := mk("s1", false), mk("s2", false), mk("s3", false)
	mob := mk("mob", true)
	stationary := []*Node{s1, s2, s3}
	for _, n := range []*Node{s2, s3, mob} {
		if err := n.JoinVia(s1.Addr()); err != nil {
			t.Fatalf("join %s: %v", n.cfg.Name, err)
		}
	}
	rng := rand.New(rand.NewSource(1))
	for round := 0; round < 6; round++ {
		for _, n := range []*Node{s1, s2, s3, mob} {
			if _, err := n.GossipOnce(rng); err != nil {
				t.Fatalf("gossip: %v", err)
			}
		}
	}
	if err := mob.Publish(); err != nil {
		t.Fatalf("publish: %v", err)
	}
	oldAddr := mob.Addr()

	// newAddr is unset until the rebind lands; resolvers poll it to know
	// when convergence becomes possible.
	var newAddr atomic.Value

	const resolvers = 24
	var wg sync.WaitGroup
	results := make(chan map[string]bool, resolvers) // per-goroutine set of observed addrs
	errs := make(chan error, resolvers)
	// Convergence bound: the old binding may legally be served until its
	// lease lapses; past that, one refresh must land the new address. The
	// extra headroom absorbs scheduler jitter under -race, not protocol
	// slack.
	deadline := time.Now().Add(leaseTTL + 5*time.Second)

	for i := 0; i < resolvers; i++ {
		from := stationary[i%len(stationary)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			seen := make(map[string]bool)
			defer func() { results <- seen }()
			for time.Now().Before(deadline) {
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				addr, err := from.ResolveContext(ctx, mob.Key())
				cancel()
				if err != nil {
					errs <- err
					return
				}
				seen[addr] = true
				if na := newAddr.Load(); na != nil && addr == na.(string) {
					return // converged
				}
				time.Sleep(time.Millisecond)
			}
			errs <- context.DeadlineExceeded // never converged
		}()
	}

	// Let the storm warm every cache onto the old address, then move.
	time.Sleep(50 * time.Millisecond)
	if err := mob.Rebind(""); err != nil {
		t.Fatalf("rebind: %v", err)
	}
	if got := mob.Addr(); got == oldAddr {
		t.Fatalf("rebind kept address %s", got)
	}
	newAddr.Store(mob.Addr())

	wg.Wait()
	close(errs)
	close(results)
	for err := range errs {
		t.Errorf("resolver: %v", err)
	}
	final := newAddr.Load().(string)
	for seen := range results {
		if !seen[final] {
			t.Errorf("resolver finished without observing the new address (saw %v)", seen)
		}
		for addr := range seen {
			if addr != oldAddr && addr != final {
				t.Errorf("resolver observed %q, an address the key never held (valid: %q, %q)", addr, oldAddr, final)
			}
		}
	}
	t.Logf("storm: %d lookups, %d discoveries, %d coalesced",
		ctrs.Get("loccache.lookups"), ctrs.Get("resolve.discoveries"), ctrs.Get("loccache.coalesced"))
}
