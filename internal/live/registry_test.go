package live

import (
	"testing"
	"time"

	"bristle/internal/hashkey"
	"bristle/internal/metrics"
	"bristle/internal/transport"
	"bristle/internal/wire"
)

// TestUpdateChannelDropCounted fills the updates channel past capacity:
// the overflow must be dropped (the tree never blocks) but counted and
// never silent.
func TestUpdateChannelDropCounted(t *testing.T) {
	ctrs := metrics.NewCounters()
	n := NewNode(Config{Name: "sink", Counters: ctrs}, transport.NewMem())
	key := hashkey.FromName("subject")

	const capacity = 64 // the updates channel's buffer
	const overflow = 7
	for i := 0; i < capacity+overflow; i++ {
		n.handleUpdate(&wire.Message{Type: wire.TUpdate, Self: wire.Entry{Key: key, Addr: "addr-1"}})
	}
	if got := ctrs.Get("updates.dropped"); got != overflow {
		t.Fatalf("updates.dropped = %d, want %d", got, overflow)
	}
	// The buffered prefix is still delivered intact.
	for i := 0; i < capacity; i++ {
		select {
		case up := <-n.Updates():
			if up.Key != key {
				t.Fatalf("update %d carries key %v", i, up.Key)
			}
		default:
			t.Fatalf("only %d updates buffered, want %d", i, capacity)
		}
	}
	select {
	case <-n.Updates():
		t.Fatal("dropped update was delivered anyway")
	default:
	}
}

// TestRegistrationLeaseExpires drives the registry lease end to end: a
// registrant's TTL bounds its interest, Registry() stops reporting it
// after the lease lapses, the LDT fan-out sweeps it instead of pushing
// to it, and re-registering renews the lease.
func TestRegistrationLeaseExpires(t *testing.T) {
	mem := transport.NewMem()
	ctrs := metrics.NewCounters()
	target := NewNode(Config{Name: "target", Capacity: 2, Mobile: true, Counters: ctrs}, mem)
	if err := target.Start(""); err != nil {
		t.Fatal(err)
	}
	defer target.Close()

	// dead registers under a 150ms lease, then disappears.
	dead := NewNode(Config{Name: "dead", Capacity: 2, LeaseTTL: 150 * time.Millisecond}, mem)
	if err := dead.Start(""); err != nil {
		t.Fatal(err)
	}
	// keeper registers without a lease (TTL 0): interest never lapses.
	keeper := NewNode(Config{Name: "keeper", Capacity: 2}, mem)
	if err := keeper.Start(""); err != nil {
		t.Fatal(err)
	}
	defer keeper.Close()

	for _, nd := range []*Node{dead, keeper} {
		if err := nd.RegisterWith(target.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(target.Registry()); got != 2 {
		t.Fatalf("registry holds %d entries, want 2", got)
	}
	dead.Close()
	time.Sleep(200 * time.Millisecond)

	// The lapsed registrant is invisible before any sweep ran...
	reg := target.Registry()
	if len(reg) != 1 || reg[0].Key != keeper.Key() {
		t.Fatalf("registry after lapse = %v, want only keeper", reg)
	}
	// ...and the LDT fan-out sweeps it out instead of pushing to it.
	if err := target.UpdateRegistry(); err != nil {
		t.Fatal(err)
	}
	if got := ctrs.Get("registry.expired"); got != 1 {
		t.Fatalf("registry.expired = %d, want 1", got)
	}
	if stored := target.registry.size(); stored != 1 {
		t.Fatalf("registry map holds %d entries after sweep, want 1", stored)
	}
	// The live registrant received the push the dead one missed.
	select {
	case up := <-keeper.Updates():
		if up.Key != target.Key() {
			t.Fatalf("keeper observed update for %v", up.Key)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("live registrant missed the LDT push")
	}

	// Re-registering renews a lease: a fresh 150ms registration is live
	// again until it lapses anew.
	late := NewNode(Config{Name: "late", Capacity: 2, LeaseTTL: 150 * time.Millisecond}, mem)
	if err := late.Start(""); err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	if err := late.RegisterWith(target.Addr()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if err := late.RegisterWith(target.Addr()); err != nil { // renewal resets the clock
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // 200ms after first register, 100ms after renewal
	found := false
	for _, e := range target.Registry() {
		if e.Key == late.Key() {
			found = true
		}
	}
	if !found {
		t.Fatal("renewed registration lapsed on the original lease clock")
	}
}

// TestMaintenanceSweepsRegistry proves the background sweep alone — no
// LDT push — evicts lapsed registrations.
func TestMaintenanceSweepsRegistry(t *testing.T) {
	mem := transport.NewMem()
	ctrs := metrics.NewCounters()
	target := NewNode(Config{Name: "swept", Capacity: 2, Counters: ctrs}, mem)
	if err := target.Start(""); err != nil {
		t.Fatal(err)
	}
	defer target.Close()
	stop := target.StartMaintenance(MaintainConfig{RegistrySweepInterval: 25 * time.Millisecond})
	defer stop()

	ghost := NewNode(Config{Name: "ghost", Capacity: 2, LeaseTTL: 50 * time.Millisecond}, mem)
	if err := ghost.Start(""); err != nil {
		t.Fatal(err)
	}
	if err := ghost.RegisterWith(target.Addr()); err != nil {
		t.Fatal(err)
	}
	ghost.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if target.registry.size() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("maintenance never swept the lapsed registration")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := ctrs.Get("registry.expired"); got != 1 {
		t.Fatalf("registry.expired = %d, want 1", got)
	}
}
