package live

// This file is the address-resolution hot path. The paper gives a mobile
// node two ways to be found: early binding (it pushes <key, addr> to
// registered correspondents through its dissemination tree) and late
// binding (a correspondent asks the location repository via _discovery,
// Figure 2). Both feed the same lease-aware sharded cache
// (internal/loccache), and ResolveContext reads it first:
//
//   Fresh    → answer from the lease; no lock shared with the protocol
//              path, no network.
//   Stale    → answer optimistically and re-resolve in the background
//              (stale-while-revalidate); steady-state senders never
//              block on discovery.
//   Negative → a recent _discovery already proved the record absent;
//              fail fast with ErrNotFound instead of re-polling every
//              replica.
//   Miss     → go to the network, but through a singleflight group:
//              concurrent misses for one key share a single _discovery
//              RPC (counted as loccache.coalesced).
//
// DiscoverContext remains the always-network form (late binding forced);
// it now write-throughs its answer — with the replica's remaining lease —
// into the same cache, so reactive results expire client-side exactly
// like pushed ones.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"bristle/internal/hashkey"
	"bristle/internal/loccache"
	"bristle/internal/wire"
)

// CacheConfig tunes the node's location cache (the resolve hot path).
// The zero value enables the cache with defaults; set Disabled to make
// every Resolve a network discovery.
type CacheConfig struct {
	// Disabled turns the cache off entirely.
	Disabled bool
	// Shards is the number of independently locked cache segments
	// (rounded up to a power of two). Default 16.
	Shards int
	// MaxEntries bounds the cache across all shards. Default 4096.
	MaxEntries int
	// NegativeTTL is how long a "no record" discovery answer suppresses
	// repeat lookups for the same key. Default 1s.
	NegativeTTL time.Duration
	// StaleWindow is how long past its lease an entry may still be served
	// while a background refresh runs. Default 30s.
	StaleWindow time.Duration
}

// ResolveContext resolves key's current address, cache first. A fresh
// lease answers immediately; a stale one answers while a background
// refresh re-resolves; a cache miss goes to the network through a
// singleflight group so N concurrent misses cost one _discovery. The
// context bounds only this caller's wait — an in-flight discovery keeps
// running for its other waiters.
func (n *Node) ResolveContext(ctx context.Context, key hashkey.Key) (string, error) {
	if n.loc == nil {
		return n.DiscoverContext(ctx, key)
	}
	addr, state := n.loc.Lookup(key)
	switch state {
	case loccache.Fresh:
		return addr, nil
	case loccache.Negative:
		return "", ErrNotFound
	case loccache.Stale:
		n.launchRefresh(key)
		return addr, nil
	}
	addr, shared, err := n.flights.Do(ctx, key, func() (string, error) {
		return n.flightDiscover(key, false)
	})
	if shared {
		n.count("loccache.coalesced")
	}
	return addr, err
}

// flightDiscover is the body of one singleflight discovery: a detached
// context (bounded by the node's retry budget, not any one waiter's
// deadline) so the flight outlives impatient waiters, then one network
// resolution written through the cache.
//
// A demand-miss flight (revalidate=false) double-checks the cache first:
// a caller can miss, lose its timeslice, and only start its flight after
// a concurrent flight for the same key already completed — the re-lookup
// turns that duplicate into a cache answer instead of a second
// _discovery. Refresh flights (revalidate=true) exist precisely to
// replace a still-cached entry, so they always go to the network.
func (n *Node) flightDiscover(key hashkey.Key, revalidate bool) (string, error) {
	if !revalidate {
		switch addr, state := n.loc.Lookup(key); state {
		case loccache.Fresh:
			return addr, nil
		case loccache.Negative:
			return "", ErrNotFound
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.RetryBudget)
	defer cancel()
	return n.discoverAndFill(ctx, key)
}

// discoverAndFill performs one network discovery and records the outcome
// in the cache: a found address under its remaining lease, a definitive
// miss as a negative entry. Transport failures cache nothing — absence
// of evidence is not evidence of absence.
func (n *Node) discoverAndFill(ctx context.Context, key hashkey.Key) (string, error) {
	n.count("resolve.discoveries")
	addr, ttl, epoch, err := n.discoverNetwork(ctx, key)
	switch {
	case errors.Is(err, ErrNotFound):
		n.loc.PutNegative(key)
		return "", err
	case err != nil:
		return "", err
	}
	// Epoch-aware fill: if an LDT push raced this discovery with a newer
	// binding, the cache keeps the push and this stale answer is dropped
	// on the floor (the caller still gets it once; the next resolve hits
	// the newer cached address).
	n.loc.PutEpoch(key, addr, ttl, epoch)
	return addr, nil
}

// launchRefresh starts a background re-resolution of key unless one is
// already in flight (or the node is closing). Reports whether a flight
// was started.
func (n *Node) launchRefresh(key hashkey.Key) bool {
	if n.closed.Load() {
		return false
	}
	started := n.flights.Launch(key, func() (string, error) {
		return n.flightDiscover(key, true)
	})
	if started {
		n.count("loccache.refreshes")
	}
	return started
}

// refreshExpiring re-resolves up to topK most-recently-used cached
// entries whose lease lapses within window — the early-binding refresher
// step: renew the working set's bindings before they expire so the hot
// path keeps answering from fresh leases. Returns how many refresh
// flights were started.
func (n *Node) refreshExpiring(topK int, window time.Duration) int {
	if n.loc == nil {
		return 0
	}
	started := 0
	for _, cand := range n.loc.ExpiringSoon(topK, window) {
		if n.launchRefresh(cand.Key) {
			started++
		}
	}
	return started
}

// DiscoverContext resolves key's current address through the location
// layer, always over the network (forced late binding). The answer —
// including the replica's remaining lease — is written through the
// location cache, so a subsequent ResolveContext answers locally until
// the lease lapses. Prefer ResolveContext on hot paths.
func (n *Node) DiscoverContext(ctx context.Context, key hashkey.Key) (string, error) {
	addr, ttl, epoch, err := n.discoverNetwork(ctx, key)
	if err != nil {
		return "", err
	}
	if n.loc != nil {
		n.loc.PutEpoch(key, addr, ttl, epoch)
	}
	return addr, nil
}

// discoverNetwork asks the record's replicas for key's address, falling
// over across them (§2.3.2) in suspicion-aware order. The replicas are
// tried sequentially on purpose: the common case is answered by the
// first healthy replica for the cost of one exchange, and the ordering
// (healthy first) already bounds the tail. Returns the address, the
// remaining lease the serving replica reported (0 = no lease), and the
// publish epoch the record was bound under.
func (n *Node) discoverNetwork(ctx context.Context, key hashkey.Key) (string, time.Duration, uint64, error) {
	owners, err := n.ownersOf(key, n.cfg.Replication)
	if err != nil {
		return "", 0, 0, err
	}
	var lastErr error = ErrNotFound
	for _, owner := range owners {
		var resp *wire.Message
		if owner.Key == n.key {
			resp = n.handleDiscover(&wire.Message{Type: wire.TDiscover, Key: key})
		} else {
			resp, err = n.request(ctx, owner.Addr, &wire.Message{Type: wire.TDiscover, Key: key})
			if err != nil {
				lastErr = fmt.Errorf("live: discover via %s: %w", owner.Addr, err)
				continue
			}
		}
		if resp.Type != wire.TDiscoverResp || !resp.Found {
			continue
		}
		ttl := time.Duration(resp.Self.TTLMilli) * time.Millisecond
		return resp.Self.Addr, ttl, resp.Self.Epoch, nil
	}
	if lastErr != ErrNotFound {
		return "", 0, 0, lastErr
	}
	return "", 0, 0, ErrNotFound
}
