package live

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bristle/internal/hashkey"
	"bristle/internal/loccache"
	"bristle/internal/metrics"
	"bristle/internal/transport"
	"bristle/internal/wire"
)

// resolveCluster boots stationary servers plus a client wired with a
// counter registry, all joined and gossiped to full membership.
func resolveCluster(t *testing.T, servers int) (client *Node, cluster []*Node, ctrs *metrics.Counters, cleanup func()) {
	t.Helper()
	mem := transport.NewMem()
	ctrs = metrics.NewCounters()
	var all []*Node
	for i := 0; i < servers; i++ {
		nd := NewNode(Config{Name: fmt.Sprintf("srv%d", i), Capacity: 4, RequestTimeout: time.Second}, mem)
		if err := nd.Start(""); err != nil {
			t.Fatalf("start: %v", err)
		}
		all = append(all, nd)
	}
	client = NewNode(Config{Name: "client", Capacity: 4, RequestTimeout: time.Second, Counters: ctrs}, mem)
	if err := client.Start(""); err != nil {
		t.Fatalf("start client: %v", err)
	}
	all = append(all, client)
	for _, nd := range all[1:] {
		if err := nd.JoinVia(all[0].Addr()); err != nil {
			t.Fatalf("join: %v", err)
		}
	}
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 4; round++ {
		for _, nd := range all {
			if _, err := nd.GossipOnce(rng); err != nil {
				t.Fatalf("gossip: %v", err)
			}
		}
	}
	return client, all, ctrs, func() {
		for _, nd := range all {
			nd.Close()
		}
	}
}

// TestResolveStormSingleDiscovery is the concurrent-miss contract: a
// storm of ResolveContext calls for one missing key must issue exactly
// one network _discovery — every other caller either coalesces onto the
// in-flight request or is answered by the negative entry it produced.
func TestResolveStormSingleDiscovery(t *testing.T) {
	client, _, ctrs, cleanup := resolveCluster(t, 3)
	defer cleanup()
	ghost := hashkey.FromName("ghost")

	const stormers = 64
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < stormers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := client.ResolveContext(context.Background(), ghost); !errors.Is(err, ErrNotFound) {
				t.Errorf("storm resolve: %v, want ErrNotFound", err)
			}
		}()
	}
	close(start)
	wg.Wait()

	if got := ctrs.Get("resolve.discoveries"); got != 1 {
		t.Fatalf("resolve.discoveries = %d, want exactly 1 for %d concurrent misses", got, stormers)
	}
	coalesced := ctrs.Get("loccache.coalesced")
	negative := ctrs.Get("loccache.negative")
	if coalesced+negative != stormers-1 {
		t.Fatalf("coalesced(%d) + negative(%d) = %d, want %d (every non-leader served without a discovery)",
			coalesced, negative, coalesced+negative, stormers-1)
	}
}

// TestResolveCoalescesWaiters pins the join path: with a flight already
// in progress for the key, ResolveContext callers join it and zero
// network discoveries happen. (Exact N-waiters/1-fn coalescing is pinned
// deterministically by the loccache singleflight tests; here the flight
// also fills the cache, so even a caller that races past the flight's
// completion is answered without a discovery.)
func TestResolveCoalescesWaiters(t *testing.T) {
	client, _, ctrs, cleanup := resolveCluster(t, 2)
	defer cleanup()
	key := hashkey.FromName("slow")
	gate := make(chan struct{})
	if !client.flights.Launch(key, func() (string, error) {
		<-gate
		client.loc.Put(key, "1.2.3.4:5", time.Minute)
		return "1.2.3.4:5", nil
	}) {
		t.Fatal("could not start gated flight")
	}

	const waiters = 10
	var wg sync.WaitGroup
	var arrived atomic.Int32
	addrs := make([]string, waiters)
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arrived.Add(1)
			addrs[i], errs[i] = client.ResolveContext(context.Background(), key)
		}(i)
	}
	// The flight cannot complete while the gate is shut, so every caller
	// that reaches the singleflight group before the gate opens joins it.
	for arrived.Load() != waiters {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()

	for i := 0; i < waiters; i++ {
		if errs[i] != nil || addrs[i] != "1.2.3.4:5" {
			t.Fatalf("waiter %d: %q %v", i, addrs[i], errs[i])
		}
	}
	if got := ctrs.Get("resolve.discoveries"); got != 0 {
		t.Fatalf("resolve.discoveries = %d, want 0 (all waiters joined the gated flight)", got)
	}
	if got := ctrs.Get("loccache.coalesced"); got == 0 {
		t.Fatal("no waiter coalesced onto the gated flight")
	}
}

// TestDiscoveredAddressGoesStale is the lease-propagation regression:
// a late-binding (DiscoverContext) result must carry the repository
// record's remaining lease into the client cache and expire there. It
// used to be cached without a TTL and never went stale.
func TestDiscoveredAddressGoesStale(t *testing.T) {
	mem := transport.NewMem()
	server := NewNode(Config{Name: "server", Capacity: 3}, mem)
	if err := server.Start(""); err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	mob := NewNode(Config{Name: "mob", Capacity: 2, Mobile: true, LeaseTTL: 150 * time.Millisecond}, mem)
	if err := mob.Start(""); err != nil {
		t.Fatal(err)
	}
	defer mob.Close()
	watcher := NewNode(Config{Name: "watcher", Capacity: 2, RequestTimeout: time.Second}, mem)
	if err := watcher.Start(""); err != nil {
		t.Fatal(err)
	}
	defer watcher.Close()
	for _, nd := range []*Node{mob, watcher} {
		if err := nd.JoinVia(server.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3; i++ {
		server.GossipOnce(rng)
		mob.GossipOnce(rng)
		watcher.GossipOnce(rng)
	}
	if err := mob.Publish(); err != nil {
		t.Fatal(err)
	}

	addr, err := watcher.DiscoverContext(context.Background(), mob.Key())
	if err != nil {
		t.Fatalf("discover: %v", err)
	}
	if got, ok := watcher.CachedAddr(mob.Key()); !ok || got != addr {
		t.Fatalf("discover result not cached fresh: %q %v", got, ok)
	}

	time.Sleep(250 * time.Millisecond) // past the 150ms lease
	if got, ok := watcher.CachedAddr(mob.Key()); ok {
		t.Fatalf("discovered address still fresh after its lease lapsed: %q", got)
	}
	if _, state := watcher.loc.Peek(mob.Key()); state != loccache.Stale {
		t.Fatalf("entry state %v after lease lapse, want Stale", state)
	}
}

// TestStoreAndCacheRoles pins the two location maps' roles: a TPublish
// lands in the repository fragment (store) and is served to _discovery;
// a TUpdate push lands in the learned-location cache and is NOT served
// to _discovery; answering a _discovery writes neither.
func TestStoreAndCacheRoles(t *testing.T) {
	mem := transport.NewMem()
	n := NewNode(Config{Name: "subject", Capacity: 2}, mem)
	if err := n.Start(""); err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	published := hashkey.FromName("published")
	pushed := hashkey.FromName("pushed")

	n.handlePublish(&wire.Message{Type: wire.TPublish, Self: wire.Entry{Key: published, Addr: "10.0.0.1:1"}})
	n.handleUpdate(&wire.Message{Type: wire.TUpdate, Self: wire.Entry{Key: pushed, Addr: "10.0.0.2:2"}})

	// The publication is served to the network but is not a learned
	// location of this node's own.
	if resp := n.handleDiscover(&wire.Message{Type: wire.TDiscover, Key: published}); !resp.Found {
		t.Fatal("published record not served to _discovery")
	}
	if _, ok := n.CachedAddr(published); ok {
		t.Fatal("publication leaked into the location cache")
	}

	// The push is a learned location but must never be served to the
	// network: the pusher did not publish to us as an owner.
	if addr, ok := n.CachedAddr(pushed); !ok || addr != "10.0.0.2:2" {
		t.Fatalf("update push not cached: %q %v", addr, ok)
	}
	if resp := n.handleDiscover(&wire.Message{Type: wire.TDiscover, Key: pushed}); resp.Found {
		t.Fatal("pushed (hearsay) location served to _discovery")
	}

	// Answering a discovery changes neither map.
	before := n.Stats().CacheEntries
	n.handleDiscover(&wire.Message{Type: wire.TDiscover, Key: published})
	if n.Stats().CacheEntries != before {
		t.Fatal("serving a discovery populated the server's own cache")
	}
}

// TestResolveHotPathServesFromCache: after one discovery the resolve hot
// path answers from the lease without any network traffic.
func TestResolveHotPathServesFromCache(t *testing.T) {
	client, cluster, ctrs, cleanup := resolveCluster(t, 3)
	defer cleanup()
	target := cluster[1] // any stationary peer publishes itself
	if err := target.Publish(); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 10; i++ {
		addr, err := client.Resolve(target.Key())
		if err != nil || addr != target.Addr() {
			t.Fatalf("resolve %d: %q %v", i, addr, err)
		}
	}
	if got := ctrs.Get("resolve.discoveries"); got != 1 {
		t.Fatalf("resolve.discoveries = %d, want 1 (nine hot hits)", got)
	}
	if got := ctrs.Get("loccache.hit"); got != 9 {
		t.Fatalf("loccache.hit = %d, want 9", got)
	}
}

// TestResolveNegativeCaching: a definitive "no record" answer suppresses
// repeat discoveries for the negative TTL.
func TestResolveNegativeCaching(t *testing.T) {
	client, _, ctrs, cleanup := resolveCluster(t, 2)
	defer cleanup()
	ghost := hashkey.FromName("ghost")
	for i := 0; i < 5; i++ {
		if _, err := client.Resolve(ghost); !errors.Is(err, ErrNotFound) {
			t.Fatalf("resolve %d: %v", i, err)
		}
	}
	if got := ctrs.Get("resolve.discoveries"); got != 1 {
		t.Fatalf("resolve.discoveries = %d, want 1 (four negative hits)", got)
	}
	if got := ctrs.Get("loccache.negative"); got != 4 {
		t.Fatalf("loccache.negative = %d, want 4", got)
	}
}

// TestResolveStaleWhileRevalidate: a lapsed lease is served immediately
// while a background flight re-resolves and freshens the entry.
func TestResolveStaleWhileRevalidate(t *testing.T) {
	client, cluster, ctrs, cleanup := resolveCluster(t, 3)
	defer cleanup()
	target := cluster[1]
	if err := target.Publish(); err != nil {
		t.Fatal(err)
	}

	// Plant an already-stale entry with a superseded address.
	client.loc.Put(target.Key(), "old-stale-addr", time.Millisecond)
	time.Sleep(5 * time.Millisecond)

	addr, err := client.Resolve(target.Key())
	if err != nil || addr != "old-stale-addr" {
		t.Fatalf("stale resolve returned %q %v, want the stale address immediately", addr, err)
	}
	if got := ctrs.Get("loccache.stale"); got != 1 {
		t.Fatalf("loccache.stale = %d, want 1", got)
	}

	// The background refresh replaces the stale address with the real one.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got, ok := client.CachedAddr(target.Key()); ok && got == target.Addr() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background refresh never freshened the stale entry")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := ctrs.Get("loccache.refreshes"); got == 0 {
		t.Fatal("no refresh flight recorded")
	}
}

// TestRefreshExpiringRenewsLease: the early-binding refresher re-resolves
// an entry before its lease lapses, so the hot path never observes the
// expiry.
func TestRefreshExpiringRenewsLease(t *testing.T) {
	client, cluster, ctrs, cleanup := resolveCluster(t, 3)
	defer cleanup()
	target := cluster[1]
	if err := target.Publish(); err != nil {
		t.Fatal(err)
	}

	// A lease about to lapse (the server record itself has no TTL, so the
	// refresh will fetch a fresh, unleased binding).
	client.loc.Put(target.Key(), target.Addr(), 200*time.Millisecond)

	if started := client.refreshExpiring(8, 400*time.Millisecond); started != 1 {
		t.Fatalf("refreshExpiring started %d flights, want 1", started)
	}
	deadline := time.Now().Add(5 * time.Second)
	for ctrs.Get("resolve.discoveries") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("refresh flight never discovered")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// An entry far from expiry is not eligible.
	client.loc.Put(hashkey.FromName("durable"), "x", time.Hour)
	if started := client.refreshExpiring(8, 400*time.Millisecond); started != 0 {
		t.Fatalf("refreshExpiring touched a durable lease (%d flights)", started)
	}
}

// TestMaintenanceRefresherKeepsLeaseFresh runs the real maintenance loop:
// a mobile renews its own publication while the watcher's refresher keeps
// the watcher-side lease fresh, so CachedAddr stays valid well past the
// original lease TTL without any foreground resolve.
func TestMaintenanceRefresherKeepsLeaseFresh(t *testing.T) {
	mem := transport.NewMem()
	server := NewNode(Config{Name: "server", Capacity: 3}, mem)
	if err := server.Start(""); err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	ctrs := metrics.NewCounters()
	mob := NewNode(Config{Name: "mob", Capacity: 2, Mobile: true, LeaseTTL: 600 * time.Millisecond}, mem)
	if err := mob.Start(""); err != nil {
		t.Fatal(err)
	}
	defer mob.Close()
	watcher := NewNode(Config{Name: "watcher", Capacity: 2, RequestTimeout: time.Second, Counters: ctrs}, mem)
	if err := watcher.Start(""); err != nil {
		t.Fatal(err)
	}
	defer watcher.Close()
	for _, nd := range []*Node{mob, watcher} {
		if err := nd.JoinVia(server.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 3; i++ {
		server.GossipOnce(rng)
		mob.GossipOnce(rng)
		watcher.GossipOnce(rng)
	}
	if err := mob.Publish(); err != nil {
		t.Fatal(err)
	}
	if _, err := watcher.Resolve(mob.Key()); err != nil {
		t.Fatal(err)
	}

	stopMob := mob.StartMaintenance(MaintainConfig{RenewInterval: 150 * time.Millisecond})
	defer stopMob()
	stopWatch := watcher.StartMaintenance(MaintainConfig{RefreshInterval: 100 * time.Millisecond, RefreshTopK: 8})
	defer stopWatch()

	// Sample well past the original 600ms lease: the refresher must keep
	// the watcher-side entry fresh the whole time.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := watcher.CachedAddr(mob.Key()); !ok {
			// Stale is tolerable only mid-refresh; a hard miss is not.
			if _, state := watcher.loc.Peek(mob.Key()); state == loccache.Miss || state == loccache.Negative {
				t.Fatalf("watcher lost the binding (state %v) despite the refresher", state)
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	if got := ctrs.Get("loccache.refreshes"); got == 0 {
		t.Fatal("maintenance refresher never fired")
	}
}

// TestResolveConcurrentKeysRaceClean drives many goroutines through the
// full resolve path over distinct and shared keys — shard contention,
// coalescing, and write-through all under the race detector.
func TestResolveConcurrentKeysRaceClean(t *testing.T) {
	client, cluster, _, cleanup := resolveCluster(t, 4)
	defer cleanup()
	var keys []hashkey.Key
	for _, nd := range cluster[:4] {
		if err := nd.Publish(); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, nd.Key())
	}
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := keys[(w+i)%len(keys)]
				if _, err := client.Resolve(k); err != nil {
					t.Errorf("worker %d resolve %v: %v", w, k, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestResolveWithCacheDisabled: WithoutResolveCache degrades Resolve to
// plain network discovery.
func TestResolveWithCacheDisabled(t *testing.T) {
	mem := transport.NewMem()
	ctrs := metrics.NewCounters()
	server := NewNode(Config{Name: "server", Capacity: 3}, mem)
	if err := server.Start(""); err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := New("client", mem, WithoutResolveCache(), WithCounters(ctrs), WithRequestTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Start(""); err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.JoinVia(server.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := server.Publish(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if addr, err := client.Resolve(server.Key()); err != nil || addr != server.Addr() {
			t.Fatalf("resolve %d: %q %v", i, addr, err)
		}
	}
	if _, ok := client.CachedAddr(server.Key()); ok {
		t.Fatal("disabled cache still cached")
	}
	if got := ctrs.Get("loccache.hit"); got != 0 {
		t.Fatalf("loccache.hit = %d with cache disabled", got)
	}
}
