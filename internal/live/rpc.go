package live

// This file is the resilient RPC layer: every request/response exchange
// a live node makes gets capped exponential backoff with full jitter
// under an overall deadline, and every peer gets a suspicion circuit
// breaker — repeated failures mark it suspect so later operations fail
// fast instead of burning a timeout, until a probe succeeds (§2.3.2's
// graceful degradation, applied to the transport itself).
//
// Exchanges ride the multiplexed connection pool (pool.go) when one is
// configured: one long-lived connection per peer, demultiplexed by
// sequence number, with a transparent fallback to a one-shot dial when
// the pool is saturated or disabled. Every exchange is bounded by the
// caller's context on top of the per-attempt RequestTimeout.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"bristle/internal/transport"
	"bristle/internal/wire"
)

// breakerState is the classic three-state circuit.
type breakerState int

const (
	bkClosed   breakerState = iota // healthy: all traffic flows
	bkOpen                         // suspect: fail fast until probeAt
	bkHalfOpen                     // one probe in flight; others fail fast
)

type breaker struct {
	state   breakerState
	fails   int       // consecutive failed exchanges
	probeAt time.Time // when open: earliest next probe
}

// peerShard is one slice of the per-peer breaker table.
type peerShard struct {
	mu sync.Mutex
	m  map[string]*breaker
}

// peerTable holds every peer's circuit breaker, sharded by address hash:
// an exchange's allow/record pair contends only with exchanges against
// peers in the same shard, never with the whole fan-out of a publish.
type peerTable struct {
	shards [stateShards]peerShard
}

func (t *peerTable) init() {
	for i := range t.shards {
		t.shards[i].m = make(map[string]*breaker)
	}
}

// addrShard hashes an address to a shard index by FNV-1a — addresses
// are short strings, and the keyed tables' mask trick needs a
// well-mixed integer first. Shared by the breaker, RTT, and pool
// tables so one peer's state co-locates by construction.
func addrShard(addr string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(addr); i++ {
		h ^= uint32(addr[i])
		h *= 16777619
	}
	return h & (stateShards - 1)
}

// shard selects addr's breaker shard.
func (t *peerTable) shard(addr string) *peerShard {
	return &t.shards[addrShard(addr)]
}

// suspectAddrs returns the addresses whose breakers are open or
// half-open, sorted — the peers currently routed around.
func (t *peerTable) suspectAddrs() []string {
	var out []string
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for addr, b := range sh.m {
			if b.state != bkClosed {
				out = append(out, addr)
			}
		}
		sh.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// suspectSet returns the set of peers whose breakers are non-closed,
// nil when every breaker is closed — the steady state, in which the
// whole scan costs one mutex round per shard and zero allocations.
// One call snapshots suspicion for an entire fan-out, where the old
// per-candidate sampling re-locked the table once per candidate per
// key ranked.
func (t *peerTable) suspectSet() map[string]bool {
	var out map[string]bool
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for addr, b := range sh.m {
			if b.state != bkClosed {
				if out == nil {
					out = make(map[string]bool)
				}
				out[addr] = true
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// count bumps a named counter on the node's registry (nil-safe).
func (n *Node) count(name string) { n.cfg.Counters.Inc(name) }

// breakerAllow consults addr's breaker before any network I/O. A closed
// breaker admits the call; an open one past its cooldown moves to
// half-open and admits this single call as the probe; anything else fails
// fast with ErrPeerSuspect.
func (n *Node) breakerAllow(addr string) error {
	if n.cfg.SuspicionThreshold < 0 {
		return nil
	}
	sh := n.peersTbl.shard(addr)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	b := sh.m[addr]
	if b == nil || b.state == bkClosed {
		return nil
	}
	if b.state == bkOpen && !time.Now().Before(b.probeAt) {
		b.state = bkHalfOpen
		n.count("breaker.probes")
		return nil
	}
	n.count("breaker.fastfail")
	return fmt.Errorf("%w: %s", ErrPeerSuspect, addr)
}

// breakerResult records the outcome of an exchange with addr. Success
// closes (and forgets) the breaker; failures accumulate and trip it at
// SuspicionThreshold, or re-open it immediately from half-open.
func (n *Node) breakerResult(addr string, err error) {
	if n.cfg.SuspicionThreshold < 0 {
		return
	}
	sh := n.peersTbl.shard(addr)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	b := sh.m[addr]
	if err == nil {
		if b != nil {
			if b.state != bkClosed {
				n.count("breaker.closes")
				n.logf("peer %s healthy again; breaker closed", addr)
			}
			delete(sh.m, addr)
		}
		return
	}
	if errors.Is(err, ErrPeerSuspect) {
		return // a fast-fail is not fresh evidence
	}
	if b == nil {
		b = &breaker{}
		sh.m[addr] = b
	}
	b.fails++
	if b.state == bkHalfOpen || b.fails >= n.cfg.SuspicionThreshold {
		if b.state != bkOpen {
			n.count("breaker.trips")
			n.logf("peer %s suspect after %d consecutive failures", addr, b.fails)
		}
		b.state = bkOpen
		b.probeAt = time.Now().Add(n.cfg.SuspicionCooldown)
	}
}

// suspect reports whether addr's breaker is currently non-closed.
func (n *Node) suspect(addr string) bool {
	sh := n.peersTbl.shard(addr)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	b := sh.m[addr]
	return b != nil && b.state != bkClosed
}

// ProbeSuspects pings every suspect peer whose cooldown allows a probe;
// a successful probe closes the breaker. Failures only refresh the
// breaker's own state, so this is safe to call from a maintenance loop.
// (The suspect list itself is surfaced through Stats().Suspects.)
func (n *Node) ProbeSuspects() {
	for _, addr := range n.peersTbl.suspectAddrs() {
		if err := n.Ping(addr); err == nil {
			n.logf("probe of suspect %s succeeded", addr)
		}
	}
}

// request performs one request/response exchange with addr under the full
// resilience policy: breaker fail-fast, then up to RetryAttempts attempts
// with capped exponential backoff and full jitter, each attempt bounded
// by RequestTimeout, all attempts bounded by RetryBudget and by ctx.
func (n *Node) request(ctx context.Context, addr string, m *wire.Message) (*wire.Message, error) {
	if err := n.breakerAllow(addr); err != nil {
		return nil, err
	}
	resp, err := n.requestRetry(ctx, addr, m)
	// A failure caused by the caller giving up (ctx canceled or expired)
	// is not evidence against the peer; success still counts in its favor.
	if err == nil || ctx.Err() == nil {
		n.breakerResult(addr, err)
	}
	return resp, err
}

func (n *Node) requestRetry(ctx context.Context, addr string, m *wire.Message) (*wire.Message, error) {
	deadline := time.Now().Add(n.cfg.RetryBudget)
	var lastErr error
	for attempt := 0; attempt < n.cfg.RetryAttempts; attempt++ {
		if attempt > 0 {
			pause := n.backoff(attempt)
			if time.Now().Add(pause).After(deadline) {
				break // budget exhausted: report the last real error
			}
			if err := sleepCtx(ctx, pause); err != nil {
				break // caller gave up mid-backoff
			}
			n.count("rpc.retries")
		}
		if err := ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = fmt.Errorf("live: request to %s: %w", addr, err)
			}
			break
		}
		n.count("rpc.attempts")
		resp, err := n.attempt(ctx, addr, m)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if transport.IsTimeout(err) {
			n.count("rpc.timeouts")
		}
		if !Retryable(err) {
			n.count("rpc.fatal")
			return nil, err
		}
	}
	n.count("rpc.failures")
	return nil, lastErr
}

// sleepCtx pauses for d, or returns ctx's error if it fires first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// attempt runs a single exchange and, on success, folds its measured
// round-trip time into addr's RTT estimator (rtt.go) — proximity data
// comes for free with the traffic the node already sends, never from
// extra probes. Failures feed nothing: a timeout's duration measures
// the timeout, not the link.
func (n *Node) attempt(ctx context.Context, addr string, m *wire.Message) (*wire.Message, error) {
	start := time.Now()
	resp, err := n.attemptOnce(ctx, addr, m)
	if err == nil {
		n.rtt.observe(addr, time.Since(start))
	}
	return resp, err
}

// attemptOnce runs a single exchange, bounded by min(ctx, RequestTimeout).
// With a pool, the exchange is multiplexed over addr's shared connection;
// a saturated pool falls back to a one-shot dial for just this exchange.
func (n *Node) attemptOnce(ctx context.Context, addr string, m *wire.Message) (*wire.Message, error) {
	actx, cancel := context.WithTimeout(ctx, n.cfg.RequestTimeout)
	defer cancel()
	if p := n.pool; p != nil {
		resp, err := p.roundTrip(actx, addr, m)
		if !errors.Is(err, errPoolSaturated) {
			return resp, err
		}
		n.count("pool.fallbacks")
	}
	return n.attemptDial(actx, addr, m)
}

// attemptDial is the unpooled path: dial, send, await the correlated
// reply, close. The context bounds the dial and — via the socket deadline
// — the exchange itself.
func (n *Node) attemptDial(ctx context.Context, addr string, m *wire.Message) (*wire.Message, error) {
	conn, err := transport.DialContext(ctx, n.tr, addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(dl)
	}
	// A cancellation (not just a deadline) must also unblock Recv: force
	// the socket deadline into the past the moment ctx fires.
	stop := context.AfterFunc(ctx, func() { _ = conn.SetDeadline(time.Unix(1, 0)) })
	defer stop()
	seq := n.seq.Add(1)
	m.Seq = seq
	if err := conn.Send(m); err != nil {
		return nil, err
	}
	for {
		resp, err := conn.Recv()
		if err != nil {
			return nil, err
		}
		// A duplicated request frame makes the server answer twice; skip
		// anything that does not correlate with this exchange.
		if resp.Seq == seq {
			return resp, nil
		}
	}
}

// backoff returns the pause before the attempt-th retry: full jitter over
// an exponentially growing cap — uniform in [0, min(RetryMax,
// RetryBase·2^(attempt-1))] — which decorrelates the retry storms of
// nodes that failed together.
func (n *Node) backoff(attempt int) time.Duration {
	cap := n.cfg.RetryBase << uint(attempt-1)
	if cap > n.cfg.RetryMax || cap <= 0 {
		cap = n.cfg.RetryMax
	}
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	return time.Duration(n.rng.Int63n(int64(cap) + 1))
}

// oneWay sends m to addr without waiting for a response. It still
// consults the breaker (a suspect peer fails fast; late binding covers
// the missed push) and feeds the outcome back into it.
func (n *Node) oneWay(ctx context.Context, addr string, m *wire.Message) error {
	if err := n.breakerAllow(addr); err != nil {
		return err
	}
	err := n.oneWaySend(ctx, addr, m)
	if err == nil || ctx.Err() == nil {
		n.breakerResult(addr, err)
	}
	return err
}

func (n *Node) oneWaySend(ctx context.Context, addr string, m *wire.Message) error {
	actx, cancel := context.WithTimeout(ctx, n.cfg.RequestTimeout)
	defer cancel()
	if p := n.pool; p != nil {
		err := p.send(actx, addr, m)
		if !errors.Is(err, errPoolSaturated) {
			return err
		}
		n.count("pool.fallbacks")
	}
	conn, err := transport.DialContext(actx, n.tr, addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if dl, ok := actx.Deadline(); ok {
		_ = conn.SetDeadline(dl)
	}
	return conn.Send(m)
}
