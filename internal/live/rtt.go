package live

// This file is the per-peer RTT estimator behind proximity-aware
// replica ordering. Estimates are fed exclusively from the timing of
// exchanges the node already makes (rpc.go times every successful
// attempt) — zero probe traffic — and are kept in a table sharded like
// the breaker table, with reads following the same atomic-pointer
// discipline as the membership views: one pointer load plus one atomic
// EWMA load, no lock, no allocation. Writers only take the shard mutex
// to admit a previously unseen peer (a copy-on-write map clone); the
// steady-state sample just CASes the peer's packed EWMA word.

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bristle/internal/metrics"
)

// rttAlpha is the EWMA smoothing factor per sample: heavy enough that a
// peer's estimate converges within a handful of exchanges, light enough
// that one GC pause or retransmit doesn't swing the ordering.
const rttAlpha = 0.25

// rttExploreFloor is the exploration scale used when no candidate has a
// measured RTT yet: unknown peers draw a jittered effective RTT in
// [0, floor] so the very first fan-outs spread across replicas.
const rttExploreFloor = time.Millisecond

// rttView is one immutable addr → estimator map. The *metrics.EWMA
// values are shared across views (an estimator lives as long as the
// peer), so cloning the map on admit does not reset anyone's estimate.
type rttView struct {
	m map[string]*metrics.EWMA
}

type rttShard struct {
	mu   sync.Mutex // serializes admissions only
	view atomic.Pointer[rttView]
}

// rttTable is the sharded per-peer RTT estimator table.
type rttTable struct {
	shards [stateShards]rttShard
}

func (t *rttTable) init() {
	for i := range t.shards {
		t.shards[i].view.Store(&rttView{m: make(map[string]*metrics.EWMA)})
	}
}

// observe folds one measured round trip into addr's estimator. The
// steady state (peer already admitted) is lock-free and allocation-free.
func (t *rttTable) observe(addr string, d time.Duration) {
	if d <= 0 {
		d = 1 // a clock granularity artifact; keep the sample countable
	}
	sh := &t.shards[addrShard(addr)]
	if e, ok := sh.view.Load().m[addr]; ok {
		e.Observe(float64(d), rttAlpha)
		return
	}
	sh.mu.Lock()
	v := sh.view.Load()
	e, ok := v.m[addr]
	if !ok {
		nm := make(map[string]*metrics.EWMA, len(v.m)+1)
		for k, est := range v.m {
			nm[k] = est
		}
		e = &metrics.EWMA{}
		nm[addr] = e
		sh.view.Store(&rttView{m: nm})
	}
	sh.mu.Unlock()
	e.Observe(float64(d), rttAlpha)
}

// estimate returns addr's smoothed RTT and sample count. Lock-free.
func (t *rttTable) estimate(addr string) (time.Duration, uint32, bool) {
	e, ok := t.shards[addrShard(addr)].view.Load().m[addr]
	if !ok {
		return 0, 0, false
	}
	v, n := e.Load()
	if n == 0 {
		return 0, 0, false
	}
	return time.Duration(v), n, true
}

// PeerRTT is one peer's smoothed round-trip estimate as surfaced by
// Stats: the EWMA over the node's own exchanges with it (no probe
// traffic), how many exchanges fed it, and whether the peer's circuit
// breaker currently marks it suspect.
type PeerRTT struct {
	Addr    string
	RTT     time.Duration
	Samples uint32
	Suspect bool
}

// peerRTTs snapshots the RTT table for Stats, ascending by RTT (address
// as tiebreak). Reads are lock-free; only the suspect flags take the
// breaker shard locks, once each.
func (n *Node) peerRTTs() []PeerRTT {
	suspects := n.peersTbl.suspectSet()
	var out []PeerRTT
	for i := range n.rtt.shards {
		v := n.rtt.shards[i].view.Load()
		for addr, e := range v.m {
			val, cnt := e.Load()
			if cnt == 0 {
				continue
			}
			out = append(out, PeerRTT{Addr: addr, RTT: time.Duration(val), Samples: cnt, Suspect: suspects[addr]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].RTT != out[j].RTT {
			return out[i].RTT < out[j].RTT
		}
		return out[i].Addr < out[j].Addr
	})
	return out
}
