package live

// This file is the node's repository fragment — the location records it
// holds as an owner/replica of other nodes' keys — plus the server-side
// handlers that ingest and serve them (TPublish, TPublishBatch,
// TDiscover, TUpdate).
//
// Both tables are sharded sixteen ways by key, mirroring loccache's
// layout: a publish batch ingesting thousands of records contends only
// per shard, never with concurrent discovers for unrelated keys, and
// never with membership, registry, or lifecycle state. The handlers are
// deliberately allocation-free in steady state (re-publishing a known
// record overwrites a map slot; logging is gated before the variadic
// call boxes its arguments), which is what keeps the hot serve path at
// 0 allocs/op (BenchmarkPublishIngestParallel).

import (
	"math"
	"sync"
	"time"

	"bristle/internal/hashkey"
	"bristle/internal/wire"
)

// stateShards is the shard count of the node's keyed protocol tables
// (record store, seen-update epochs). Power of two so shard selection is
// a mask.
const stateShards = 16

type storedLoc struct {
	addr    string
	expires time.Time
	hasTTL  bool
	epoch   uint64 // publisher's move counter; newest-epoch-wins
}

func (s storedLoc) valid(now time.Time) bool {
	return s.addr != "" && (!s.hasTTL || now.Before(s.expires))
}

type storeShard struct {
	mu sync.Mutex
	m  map[hashkey.Key]storedLoc
}

// recordStore is the sharded location repository: written by publishes,
// read to answer discovers. The epoch check runs under the record's
// shard lock, so concurrent publishes of one key serialize exactly where
// they must and nowhere else.
type recordStore struct {
	shards [stateShards]storeShard
}

func (s *recordStore) init() {
	for i := range s.shards {
		s.shards[i].m = make(map[hashkey.Key]storedLoc)
	}
}

func (s *recordStore) shard(k hashkey.Key) *storeShard {
	return &s.shards[uint64(k)&(stateShards-1)]
}

// apply ingests one published record under newest-epoch-wins: a record
// whose epoch is older than the live one already stored is the ghost of
// a pre-move publication (a frame transport.Faulty delayed or
// duplicated) and must not resurrect the old address. A record whose
// lease has lapsed no longer outranks anything. Reports whether the
// record was stored.
func (s *recordStore) apply(e wire.Entry, now time.Time) bool {
	sh := s.shard(e.Key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if old, ok := sh.m[e.Key]; ok && old.valid(now) && old.epoch > e.Epoch {
		return false
	}
	rec := storedLoc{addr: e.Addr, epoch: e.Epoch}
	if e.TTLMilli > 0 {
		rec.hasTTL = true
		rec.expires = now.Add(time.Duration(e.TTLMilli) * time.Millisecond)
	}
	sh.m[e.Key] = rec
	return true
}

func (s *recordStore) get(k hashkey.Key) (storedLoc, bool) {
	sh := s.shard(k)
	sh.mu.Lock()
	rec, ok := sh.m[k]
	sh.mu.Unlock()
	return rec, ok
}

func (s *recordStore) size() int {
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		total += len(sh.m)
		sh.mu.Unlock()
	}
	return total
}

type epochShard struct {
	mu sync.Mutex
	m  map[hashkey.Key]uint64
}

// epochTable tracks, per subject, the newest epoch this node has
// ingested through TUpdate — the guard that keeps a delayed or
// duplicated push from regressing the cache/peers to a pre-move address.
type epochTable struct {
	shards [stateShards]epochShard
}

func (t *epochTable) init() {
	for i := range t.shards {
		t.shards[i].m = make(map[hashkey.Key]uint64)
	}
}

func (t *epochTable) shard(k hashkey.Key) *epochShard {
	return &t.shards[uint64(k)&(stateShards-1)]
}

// observe admits epoch for key unless a strictly newer epoch was already
// ingested; admission records it. The check-and-record is atomic per
// key's shard, so two racing pushes of different epochs resolve to the
// newer one no matter the interleaving.
func (t *epochTable) observe(k hashkey.Key, epoch uint64) bool {
	sh := t.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if seen, ok := sh.m[k]; ok && seen > epoch {
		return false
	}
	sh.m[k] = epoch
	return true
}

func (t *epochTable) get(k hashkey.Key) uint64 {
	sh := t.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.m[k]
}

func (n *Node) handlePublish(m *wire.Message) {
	ok := n.store.apply(m.Self, time.Now())
	if ok {
		// A publisher is also a live peer worth knowing about.
		n.members.update(m.Self)
	}
	n.count("publish.records")
	if ok {
		n.count("publish.accepted")
		if n.cfg.Logger != nil {
			n.logf("stored location of %v → %s (epoch %d)", m.Self.Key, m.Self.Addr, m.Self.Epoch)
		}
	} else {
		n.count("publish.stale_rejected")
		if n.cfg.Logger != nil {
			n.logf("rejected stale publish of %v → %s (epoch %d)", m.Self.Key, m.Self.Addr, m.Self.Epoch)
		}
	}
}

// handlePublishBatch ingests a multi-record publish record by record,
// each under its own shard lock: concurrent discovers never stall behind
// the batch, and two batches for one publisher interleave per key with
// the epoch check breaking every tie. A discover served mid-batch may
// see a partially applied move, but never a regressed record — the
// not-yet-applied keys still answer with the previous (epoch-older)
// binding, exactly as they would have an instant earlier, and the next
// record to land supersedes it.
func (n *Node) handlePublishBatch(m *wire.Message) {
	now := time.Now()
	accepted := 0
	for i := range m.Entries {
		if n.store.apply(m.Entries[i], now) {
			accepted++
		}
	}
	n.members.update(m.Self)
	n.cfg.Counters.Add("publish.records", uint64(len(m.Entries)))
	n.cfg.Counters.Add("publish.accepted", uint64(accepted))
	if rejected := len(m.Entries) - accepted; rejected > 0 {
		n.cfg.Counters.Add("publish.stale_rejected", uint64(rejected))
	}
	if n.cfg.Logger != nil {
		n.logf("batch publish from %v: %d records, %d accepted (epoch %d)",
			m.Self.Key, len(m.Entries), accepted, m.Self.Epoch)
	}
}

// handleDiscover answers a _discovery from this node's repository
// fragment (store) only. Serving an answer deliberately does NOT write
// the node's own location cache: the server merely relayed a record it
// owns — it expressed no interest in the key, and polluting its cache
// here would let third-party queries evict its own working set.
//
// The response carries the record's remaining lease, so the querier's
// cache entry expires exactly when the repository record does — without
// it, late-binding results would never go stale client-side.
func (n *Node) handleDiscover(m *wire.Message) *wire.Message {
	rec, ok := n.store.get(m.Key)
	resp := &wire.Message{Type: wire.TDiscoverResp, Seq: m.Seq, Key: m.Key}
	if ok && rec.valid(time.Now()) {
		resp.Found = true
		resp.Self = wire.Entry{Key: m.Key, Addr: rec.addr, TTLMilli: remainingTTLMilli(rec), Epoch: rec.epoch}
	}
	return resp
}

// remainingTTLMilli converts a stored record's remaining lease into the
// wire's millisecond form: 0 means "no lease", so a live-but-nearly-done
// lease clamps up to 1ms rather than becoming immortal, and durations
// beyond the uint32 range saturate.
func remainingTTLMilli(rec storedLoc) uint32 {
	if !rec.hasTTL {
		return 0
	}
	ms := time.Until(rec.expires) / time.Millisecond
	switch {
	case ms < 1:
		return 1
	case ms > math.MaxUint32:
		return math.MaxUint32
	}
	return uint32(ms)
}

// handleUpdate ingests a proactive location push (early binding). The
// subject's new address belongs in the location *cache* — this node
// registered interest and learned where the subject moved — not in the
// repository (store): the pushing node is not publishing to us as an
// owner, and serving this hearsay to _discovery queries would bypass the
// replica placement. The write-through shares one source of truth with
// late-binding discover results.
func (n *Node) handleUpdate(m *wire.Message) {
	n.count("updates.received")
	if !n.seen.observe(m.Self.Key, m.Self.Epoch) {
		// An out-of-order push (delayed or duplicated by the network): the
		// subject has already moved past this address. Applying it would
		// regress every resolver behind this node's cache — and recursing
		// would spread the regression down the delegated subtree.
		n.count("updates.stale_rejected")
		if n.cfg.Logger != nil {
			n.logf("rejected stale update: %v → %s (epoch %d, seen %d)",
				m.Self.Key, m.Self.Addr, m.Self.Epoch, n.seen.get(m.Self.Key))
		}
		return
	}
	n.members.update(m.Self)
	n.count("updates.applied")
	if n.loc != nil {
		// Epoch-aware write-through: belt and braces under the epochTable
		// guard — a concurrent discover fill for the same key races this
		// write, and the cache's own newest-epoch-wins breaks the tie.
		n.loc.PutEpoch(m.Self.Key, m.Self.Addr, time.Duration(m.Self.TTLMilli)*time.Millisecond, m.Self.Epoch)
	}
	select {
	case n.updates <- Update{Key: m.Self.Key, Addr: m.Self.Addr}:
	default:
		// Applications that don't drain updates must not block the tree —
		// but the loss has to be observable, not silent.
		n.count("updates.dropped")
		if n.cfg.Logger != nil {
			n.logf("updates channel full; dropped update for %v (%s)", m.Self.Key, m.Self.Addr)
		}
	}
	if n.cfg.Logger != nil {
		n.logf("location update: %v now at %s, delegating %d", m.Self.Key, m.Self.Addr, len(m.Entries))
	}
	// Re-advertise to the delegated subtree (Figure 4 recursion) through
	// the coalescing queue: the handler returns immediately, the flusher
	// sends under the node's lifecycle context — a Close mid-fan-out
	// aborts the recursion instead of stalling behind it.
	if len(m.Entries) > 0 {
		n.advertise(m.Self, m.Entries)
	}
}
