package live

// Race-mode stress for the sharded node: every request-path concern —
// batch ingest, rebind, registry sweep, parallel resolves, owned-key
// churn — interleaved at once, with the conservation laws and the
// no-stale-resurrection invariant asserted at the end. Run with
// `go test -race` to make the scheduler adversarial.

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"bristle/internal/hashkey"
	"bristle/internal/metrics"
	"bristle/internal/transport"
	"bristle/internal/wire"
)

// TestShardedNodeStressRace interleaves PublishBatch ingestion, Rebind,
// registry sweeps, stale-epoch ghost injection, and 64 parallel
// resolvers against one cluster sharing a counter registry, then checks:
//
//   - counter conservation: every ingested publish record was either
//     accepted or stale-rejected, every received update either applied
//     or stale-rejected — no record lost between shards;
//   - no stale resurrection: after the storm, discovery converges on the
//     mobile node's final address and stays there.
func TestShardedNodeStressRace(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	counters := metrics.NewCounters()
	mem := transport.NewMem()
	names := []string{"s1", "s2", "s3", "mob", "client"}
	nodes := make(map[string]*Node, len(names))
	var started []*Node
	for _, name := range names {
		cfg := Config{Name: name, Capacity: 4, Mobile: name == "mob", RequestTimeout: time.Second, Counters: counters}
		nd := NewNode(cfg, mem)
		if err := nd.Start(""); err != nil {
			t.Fatalf("start %s: %v", name, err)
		}
		nodes[name] = nd
		started = append(started, nd)
	}
	defer func() {
		for _, nd := range started {
			nd.Close()
		}
	}()
	for _, nd := range started[1:] {
		if err := nd.JoinVia(started[0].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	mob, client := nodes["mob"], nodes["client"]

	keys := make([]hashkey.Key, 128)
	for i := range keys {
		keys[i] = hashkey.FromName(fmt.Sprintf("stress-res-%d", i))
	}
	mob.OwnKeys(keys...)
	if err := mob.Publish(); err != nil {
		t.Fatal(err)
	}
	if err := client.RegisterWith(mob.Addr()); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	var wg sync.WaitGroup

	// Publisher: re-homes the whole owned set over and over.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := mob.PublishContext(ctx); err != nil {
				t.Errorf("publish %d: %v", i, err)
				return
			}
		}
	}()

	// Rebinder: moves the mobile node while publishes are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := mob.RebindContext(ctx, ""); err != nil {
				t.Errorf("rebind %d: %v", i, err)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Registry churn: the client re-registers (renewing its lease via the
	// mobile node's current address) while sweeps run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			mob.SweepRegistry()
			if addr := mob.Addr(); addr != "" {
				_ = client.RegisterWithContext(ctx, addr) // may race a rebind; retried next round
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Ghost injector: replays epoch-1 frames straight into a replica's
	// ingest path — the delayed-duplicate scenario. Every one must be
	// rejected as stale (the live records carry wall-clock epochs).
	wg.Add(1)
	go func() {
		defer wg.Done()
		ghost := wire.Entry{Key: mob.Key(), Addr: "ghost:1", Epoch: 1}
		ents := make([]wire.Entry, 0, 9)
		ents = append(ents, ghost)
		for _, k := range keys[:8] {
			ents = append(ents, wire.Entry{Key: k, Addr: "ghost:1", Epoch: 1})
		}
		for i := 0; i < 100; i++ {
			nodes["s1"].handlePublishBatch(&wire.Message{Type: wire.TPublishBatch, Self: ghost, Entries: ents})
		}
	}()

	// 64 parallel resolvers hammering the client's resolve path. Errors
	// are tolerated mid-storm (a rebind can race an attempt past its
	// retries); correctness is asserted after convergence below.
	for r := 0; r < 64; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			k := keys[r%len(keys)]
			for i := 0; i < 20; i++ {
				_, _ = client.ResolveContext(ctx, k)
			}
		}(r)
	}

	wg.Wait()

	// Storm over: one final publication, then every probe must converge on
	// the final address and stick there (no ghost, no pre-move binding).
	if err := mob.PublishContext(ctx); err != nil {
		t.Fatal(err)
	}
	final := mob.Addr()
	probe := keys[3]
	deadline := time.Now().Add(10 * time.Second)
	for {
		addr, err := client.DiscoverContext(ctx, probe)
		if err == nil && addr == final {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never converged: got %q (%v), want %q", addr, err, final)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		addr, err := client.DiscoverContext(ctx, probe)
		if err != nil || addr != final {
			t.Fatalf("stale resurrection after convergence: %q (%v), want %q", addr, err, final)
		}
	}

	// Conservation: the sharded ingest paths may not lose records.
	snap := counters.Snapshot()
	if recs, acc, rej := snap["publish.records"], snap["publish.accepted"], snap["publish.stale_rejected"]; recs != acc+rej {
		t.Errorf("publish conservation violated: records=%d accepted=%d stale_rejected=%d", recs, acc, rej)
	}
	if recv, app, rej := snap["updates.received"], snap["updates.applied"], snap["updates.stale_rejected"]; recv != app+rej {
		t.Errorf("update conservation violated: received=%d applied=%d stale_rejected=%d", recv, app, rej)
	}
	if snap["publish.stale_rejected"] == 0 {
		t.Error("ghost injections were never rejected — epoch guard inert?")
	}
}

// TestOwnedKeysConcurrentWithPublish pins the owned-set lock: OwnKeys,
// DisownKeys, and OwnedKeys racing a stream of PublishContext calls must
// neither tear the set nor trip the race detector, and the final state
// must be exactly what the last writers left.
func TestOwnedKeysConcurrentWithPublish(t *testing.T) {
	nodes, cleanup := startCluster(t, []string{"s1", "s2", "mob"}, map[string]bool{"mob": true}, nil)
	defer cleanup()
	mob := nodes["mob"]

	churn := make([]hashkey.Key, 64)
	for i := range churn {
		churn[i] = hashkey.FromName(fmt.Sprintf("churn-%d", i))
	}

	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			mob.OwnKeys(churn[i%len(churn)], churn[(i+7)%len(churn)])
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			mob.DisownKeys(churn[(i+3)%len(churn)])
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = mob.OwnedKeys()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := mob.Publish(); err != nil {
				t.Errorf("publish under churn: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	// Settle to a known state and verify the set is exact.
	mob.DisownKeys(churn...)
	want := []hashkey.Key{churn[1], churn[5], churn[9]}
	mob.OwnKeys(want...)
	got := mob.OwnedKeys()
	wantSorted := append([]hashkey.Key(nil), want...)
	for i := range wantSorted {
		for j := i + 1; j < len(wantSorted); j++ {
			if wantSorted[j] < wantSorted[i] {
				wantSorted[i], wantSorted[j] = wantSorted[j], wantSorted[i]
			}
		}
	}
	if !reflect.DeepEqual(got, wantSorted) {
		t.Fatalf("owned set torn by concurrent churn: got %v, want %v", got, wantSorted)
	}
	if err := mob.Publish(); err != nil {
		t.Fatal(err)
	}
	if st := mob.Stats(); st.OwnedKeys != len(want) {
		t.Fatalf("Stats().OwnedKeys = %d, want %d", st.OwnedKeys, len(want))
	}
}
