// Package loccache is the lease-aware location cache behind the live
// stack's resolve hot path. It holds the <key, addr> state-pairs a node
// has *learned* about other nodes — pushed through dissemination trees
// (early binding) or fetched reactively via _discovery (late binding,
// Figure 2) — and classifies every lookup into the states the binding
// machinery acts on:
//
//   - Fresh:    a live lease; serve it without touching the network.
//   - Stale:    the lease lapsed recently (within StaleWindow); serve it
//               anyway while a background refresh re-resolves the key
//               (stale-while-revalidate — the paper's late binding with
//               the latency hidden).
//   - Negative: a recent _discovery answered "no record"; fail fast
//               instead of re-asking every replica for NegativeTTL.
//   - Miss:     nothing usable; the caller must go to the network.
//
// The cache is sharded by key so concurrent resolves contend only on a
// 1/Shards slice of the keyspace, never on the node's protocol mutex.
// Each shard is bounded and evicts expired entries before live ones
// (LRU-of-expired-first): under pressure the cache sheds dead weight and
// keeps leases that still save round-trips.
package loccache

import (
	"container/list"
	"sort"
	"sync"
	"time"

	"bristle/internal/hashkey"
	"bristle/internal/metrics"
)

// State classifies a lookup result.
type State int

const (
	// Miss: no usable entry; resolve over the network.
	Miss State = iota
	// Fresh: the lease is live; the address is authoritative enough to use.
	Fresh
	// Stale: the lease lapsed within StaleWindow; usable optimistically
	// while a refresh runs.
	Stale
	// Negative: a recent discovery proved the record absent; fail fast.
	Negative
)

func (s State) String() string {
	switch s {
	case Fresh:
		return "fresh"
	case Stale:
		return "stale"
	case Negative:
		return "negative"
	default:
		return "miss"
	}
}

// Config tunes a Cache. The zero value is usable: every field has a
// default applied by New.
type Config struct {
	// Shards is the number of independently locked segments; rounded up
	// to a power of two. Default 16.
	Shards int
	// MaxEntries bounds the whole cache (spread evenly across shards).
	// Default 4096.
	MaxEntries int
	// NegativeTTL is how long a "no record" answer is trusted. Default 1s.
	NegativeTTL time.Duration
	// StaleWindow is how long past its lease an entry may still be served
	// as Stale; beyond it the entry reads as a Miss. Default 30s.
	StaleWindow time.Duration
	// Clock overrides time.Now, for tests. Nil uses time.Now.
	Clock func() time.Time
	// Counters receives loccache.lookups/hit/miss/stale/negative/evicted
	// events; nil disables them.
	Counters *metrics.Counters
	// Gauges exposes loccache.entries; nil disables it.
	Gauges *metrics.Gauges
}

func (cfg Config) withDefaults() Config {
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	// Round up to a power of two so the shard index is a mask, not a mod.
	n := 1
	for n < cfg.Shards {
		n <<= 1
	}
	cfg.Shards = n
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 4096
	}
	if cfg.NegativeTTL <= 0 {
		cfg.NegativeTTL = time.Second
	}
	if cfg.StaleWindow <= 0 {
		cfg.StaleWindow = 30 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return cfg
}

// entry is one cached state-pair. lastUsed orders the early-binding
// refresher's MRU ranking; elem is the entry's position in its shard's
// LRU list (front = most recent).
type entry struct {
	key      hashkey.Key
	addr     string
	expires  time.Time
	hasTTL   bool
	negative bool
	epoch    uint64 // publisher's move counter; 0 = unordered
	lastUsed time.Time
	elem     *list.Element
}

// state classifies e at instant now under the given stale window.
func (e *entry) state(now time.Time, staleWindow time.Duration) State {
	if e.negative {
		if now.Before(e.expires) {
			return Negative
		}
		return Miss
	}
	if !e.hasTTL || now.Before(e.expires) {
		return Fresh
	}
	if now.Before(e.expires.Add(staleWindow)) {
		return Stale
	}
	return Miss
}

// expired reports whether e's lease (or negative TTL) has lapsed — the
// eviction preference, independent of the stale window.
func (e *entry) expired(now time.Time) bool {
	return (e.hasTTL || e.negative) && !now.Before(e.expires)
}

type shard struct {
	mu  sync.Mutex
	m   map[hashkey.Key]*entry
	lru *list.List // of *entry; front = most recently used
}

// Cache is a sharded, bounded, lease-aware location cache. All methods
// are safe for concurrent use.
type Cache struct {
	cfg      Config
	mask     uint64
	perShard int
	shards   []shard
}

// New builds a Cache from cfg (zero-value fields take defaults).
func New(cfg Config) *Cache {
	cfg = cfg.withDefaults()
	per := cfg.MaxEntries / cfg.Shards
	if per < 1 {
		per = 1
	}
	c := &Cache{
		cfg:      cfg,
		mask:     uint64(cfg.Shards - 1),
		perShard: per,
		shards:   make([]shard, cfg.Shards),
	}
	for i := range c.shards {
		c.shards[i].m = make(map[hashkey.Key]*entry)
		c.shards[i].lru = list.New()
	}
	return c
}

// shardOf picks the shard for key. Keys come from SHA-1 (hashkey), so
// the low bits are already uniformly distributed.
func (c *Cache) shardOf(key hashkey.Key) *shard {
	return &c.shards[uint64(key)&c.mask]
}

func (c *Cache) count(name string) { c.cfg.Counters.Inc(name) }

// Lookup classifies key and returns its cached address (empty unless
// Fresh or Stale). A usable hit is promoted to the shard's MRU position
// and counted (loccache.hit/stale/negative/miss). Every call also counts
// loccache.lookups, so hit+stale+negative+miss == lookups is a checkable
// conservation invariant (≤ while lookups are in flight, == at rest).
func (c *Cache) Lookup(key hashkey.Key) (string, State) {
	c.count("loccache.lookups")
	now := c.cfg.Clock()
	s := c.shardOf(key)
	s.mu.Lock()
	e, ok := s.m[key]
	if !ok {
		s.mu.Unlock()
		c.count("loccache.miss")
		return "", Miss
	}
	st := e.state(now, c.cfg.StaleWindow)
	var addr string
	switch st {
	case Fresh, Stale:
		addr = e.addr
		e.lastUsed = now
		s.lru.MoveToFront(e.elem)
	case Miss:
		// Too stale (or a lapsed negative) to be worth keeping.
		s.removeLocked(e)
		c.cfg.Gauges.Add("loccache.entries", -1)
	}
	s.mu.Unlock()
	switch st {
	case Fresh:
		c.count("loccache.hit")
	case Stale:
		c.count("loccache.stale")
	case Negative:
		c.count("loccache.negative")
	case Miss:
		c.count("loccache.miss")
	}
	return addr, st
}

// Peek classifies key without promoting it or recording metrics — a
// read-only probe for introspection (CachedAddr, tests).
func (c *Cache) Peek(key hashkey.Key) (string, State) {
	now := c.cfg.Clock()
	s := c.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[key]
	if !ok {
		return "", Miss
	}
	st := e.state(now, c.cfg.StaleWindow)
	if st == Fresh || st == Stale {
		return e.addr, st
	}
	return "", st
}

// Put stores addr for key under a lease of ttl (0 = no expiry), replacing
// any previous entry — positive or negative — and promoting it to MRU.
func (c *Cache) Put(key hashkey.Key, addr string, ttl time.Duration) {
	now := c.cfg.Clock()
	e := &entry{key: key, addr: addr, lastUsed: now}
	if ttl > 0 {
		e.hasTTL = true
		e.expires = now.Add(ttl)
	}
	c.insert(e)
}

// PutEpoch stores addr for key like Put, but carries the publisher's
// epoch and applies newest-epoch-wins: if the cached entry is a positive
// record with a strictly newer epoch, the write is rejected (counted as
// loccache.epoch_rejected) and the cache keeps the newer address.
// Reports whether the write was applied. Negative entries and plain Put
// entries (epoch 0) never outrank an ordered write — absence of an
// ordering is not evidence of freshness.
func (c *Cache) PutEpoch(key hashkey.Key, addr string, ttl time.Duration, epoch uint64) bool {
	now := c.cfg.Clock()
	e := &entry{key: key, addr: addr, epoch: epoch, lastUsed: now}
	if ttl > 0 {
		e.hasTTL = true
		e.expires = now.Add(ttl)
	}
	s := c.shardOf(key)
	s.mu.Lock()
	if old, ok := s.m[key]; ok && !old.negative && old.epoch > epoch {
		s.mu.Unlock()
		c.count("loccache.epoch_rejected")
		return false
	}
	c.storeLocked(s, e)
	s.mu.Unlock()
	c.cfg.Gauges.Add("loccache.entries", 1)
	return true
}

// PutNegative records that key currently has no location record, so
// resolves fail fast for NegativeTTL instead of re-asking the replicas.
func (c *Cache) PutNegative(key hashkey.Key) {
	now := c.cfg.Clock()
	c.insert(&entry{
		key:      key,
		negative: true,
		hasTTL:   true,
		expires:  now.Add(c.cfg.NegativeTTL),
		lastUsed: now,
	})
}

func (c *Cache) insert(e *entry) {
	s := c.shardOf(e.key)
	s.mu.Lock()
	c.storeLocked(s, e)
	s.mu.Unlock()
	c.cfg.Gauges.Add("loccache.entries", 1)
}

// storeLocked replaces any existing entry for e.key with e, evicting if
// the shard is full. Caller holds s.mu and accounts the +1 entries gauge
// after unlocking.
func (c *Cache) storeLocked(s *shard, e *entry) {
	now := e.lastUsed
	if old, ok := s.m[e.key]; ok {
		s.removeLocked(old)
		c.cfg.Gauges.Add("loccache.entries", -1)
	}
	if len(s.m) >= c.perShard {
		s.evictLocked(now)
		c.count("loccache.evicted")
		c.cfg.Gauges.Add("loccache.entries", -1)
	}
	s.m[e.key] = e
	e.elem = s.lru.PushFront(e)
}

// evictScan bounds how far from the LRU tail eviction searches for an
// expired victim before settling for plain LRU — keeps insert O(1).
const evictScan = 16

// evictLocked drops one entry: the least-recently-used *expired* entry
// within evictScan of the tail if any, else the LRU tail itself.
func (s *shard) evictLocked(now time.Time) {
	victim := s.lru.Back()
	scanned := 0
	for el := s.lru.Back(); el != nil && scanned < evictScan; el = el.Prev() {
		if el.Value.(*entry).expired(now) {
			victim = el
			break
		}
		scanned++
	}
	if victim != nil {
		s.removeLocked(victim.Value.(*entry))
	}
}

func (s *shard) removeLocked(e *entry) {
	delete(s.m, e.key)
	s.lru.Remove(e.elem)
}

// Invalidate drops key's entry, if any.
func (c *Cache) Invalidate(key hashkey.Key) {
	s := c.shardOf(key)
	s.mu.Lock()
	e, ok := s.m[key]
	if ok {
		s.removeLocked(e)
	}
	s.mu.Unlock()
	if ok {
		c.cfg.Gauges.Add("loccache.entries", -1)
	}
}

// Len reports the total number of entries across all shards.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Candidate is one entry the early-binding refresher should re-resolve.
type Candidate struct {
	Key     hashkey.Key
	Addr    string
	Expires time.Time
}

// ExpiringSoon returns up to k positive, leased entries whose lease
// lapses within window (including already-stale ones a refresh would
// revive), most-recently-used first — the working set worth re-binding
// early so steady-state sends never block on discovery.
func (c *Cache) ExpiringSoon(k int, window time.Duration) []Candidate {
	if k <= 0 {
		return nil
	}
	now := c.cfg.Clock()
	horizon := now.Add(window)
	type ranked struct {
		cand Candidate
		used time.Time
	}
	var all []ranked
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, e := range s.m {
			if e.negative || !e.hasTTL || e.expires.After(horizon) {
				continue
			}
			if e.state(now, c.cfg.StaleWindow) == Miss {
				continue // too far gone; demand traffic can revive it
			}
			all = append(all, ranked{
				cand: Candidate{Key: e.key, Addr: e.addr, Expires: e.expires},
				used: e.lastUsed,
			})
		}
		s.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].used.After(all[j].used) })
	if k > len(all) {
		k = len(all)
	}
	out := make([]Candidate, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].cand
	}
	return out
}
