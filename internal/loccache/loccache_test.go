package loccache

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"bristle/internal/hashkey"
	"bristle/internal/metrics"
)

// fakeClock is a settable clock for deterministic lease tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (fc *fakeClock) now() time.Time {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.t
}

func (fc *fakeClock) advance(d time.Duration) {
	fc.mu.Lock()
	fc.t = fc.t.Add(d)
	fc.mu.Unlock()
}

func TestLookupStates(t *testing.T) {
	fc := newFakeClock()
	ctrs := metrics.NewCounters()
	c := New(Config{NegativeTTL: time.Second, StaleWindow: 5 * time.Second, Clock: fc.now, Counters: ctrs})
	k := hashkey.FromName("a")

	if _, st := c.Lookup(k); st != Miss {
		t.Fatalf("empty cache: state %v, want Miss", st)
	}

	c.Put(k, "addr1", 2*time.Second)
	if addr, st := c.Lookup(k); st != Fresh || addr != "addr1" {
		t.Fatalf("fresh lookup: %q %v", addr, st)
	}

	fc.advance(3 * time.Second) // lease lapsed, within stale window
	if addr, st := c.Lookup(k); st != Stale || addr != "addr1" {
		t.Fatalf("stale lookup: %q %v", addr, st)
	}

	fc.advance(10 * time.Second) // beyond stale window
	if _, st := c.Lookup(k); st != Miss {
		t.Fatalf("dead lookup: state %v, want Miss", st)
	}
	if c.Len() != 0 {
		t.Fatalf("dead entry not dropped: len %d", c.Len())
	}

	c.PutNegative(k)
	if _, st := c.Lookup(k); st != Negative {
		t.Fatalf("negative lookup: state %v, want Negative", st)
	}
	fc.advance(2 * time.Second) // negative TTL lapsed
	if _, st := c.Lookup(k); st != Miss {
		t.Fatalf("lapsed negative: state %v, want Miss", st)
	}

	for _, want := range []struct {
		name string
		n    uint64
	}{{"loccache.hit", 1}, {"loccache.stale", 1}, {"loccache.negative", 1}, {"loccache.miss", 3}} {
		if got := ctrs.Get(want.name); got != want.n {
			t.Errorf("%s = %d, want %d", want.name, got, want.n)
		}
	}
}

func TestNoTTLNeverExpires(t *testing.T) {
	fc := newFakeClock()
	c := New(Config{Clock: fc.now})
	k := hashkey.FromName("forever")
	c.Put(k, "addr", 0)
	fc.advance(1000 * time.Hour)
	if addr, st := c.Lookup(k); st != Fresh || addr != "addr" {
		t.Fatalf("no-TTL entry: %q %v, want Fresh", addr, st)
	}
}

func TestPutReplacesNegative(t *testing.T) {
	fc := newFakeClock()
	c := New(Config{Clock: fc.now})
	k := hashkey.FromName("b")
	c.PutNegative(k)
	c.Put(k, "found", time.Minute)
	if addr, st := c.Lookup(k); st != Fresh || addr != "found" {
		t.Fatalf("positive put did not replace negative: %q %v", addr, st)
	}
	if c.Len() != 1 {
		t.Fatalf("len %d, want 1", c.Len())
	}
}

func TestEvictionPrefersExpired(t *testing.T) {
	fc := newFakeClock()
	ctrs := metrics.NewCounters()
	// Single shard, capacity 4, so eviction order is fully observable.
	c := New(Config{Shards: 1, MaxEntries: 4, StaleWindow: time.Hour, Clock: fc.now, Counters: ctrs})

	expired := hashkey.FromName("expired")
	c.Put(expired, "old", time.Second)
	var live []hashkey.Key
	for i := 0; i < 3; i++ {
		k := hashkey.FromName(fmt.Sprintf("live%d", i))
		live = append(live, k)
		c.Put(k, "addr", time.Hour)
	}
	fc.advance(2 * time.Second) // only "expired" has lapsed

	// Touch the expired entry so plain LRU would evict a live one instead.
	if _, st := c.Lookup(expired); st != Stale {
		t.Fatalf("setup: expected stale, got %v", st)
	}

	over := hashkey.FromName("overflow")
	c.Put(over, "new", time.Hour)

	if _, st := c.Peek(expired); st != Miss {
		t.Fatalf("expired entry survived eviction: %v", st)
	}
	for _, k := range live {
		if _, st := c.Peek(k); st != Fresh {
			t.Fatalf("live entry %v evicted: %v", k, st)
		}
	}
	if _, st := c.Peek(over); st != Fresh {
		t.Fatalf("inserted entry missing: %v", st)
	}
	if got := ctrs.Get("loccache.evicted"); got != 1 {
		t.Fatalf("loccache.evicted = %d, want 1", got)
	}
}

func TestEvictionFallsBackToLRU(t *testing.T) {
	fc := newFakeClock()
	c := New(Config{Shards: 1, MaxEntries: 3, Clock: fc.now})
	keys := []hashkey.Key{hashkey.FromName("k0"), hashkey.FromName("k1"), hashkey.FromName("k2")}
	for _, k := range keys {
		c.Put(k, "addr", time.Hour)
	}
	// Touch k0 so k1 becomes the LRU tail.
	c.Lookup(keys[0])
	c.Put(hashkey.FromName("k3"), "addr", time.Hour)
	if _, st := c.Peek(keys[1]); st != Miss {
		t.Fatalf("LRU tail k1 not evicted: %v", st)
	}
	if _, st := c.Peek(keys[0]); st != Fresh {
		t.Fatalf("recently used k0 evicted: %v", st)
	}
}

func TestEntriesGauge(t *testing.T) {
	g := metrics.NewGauges()
	c := New(Config{Gauges: g})
	a, b := hashkey.FromName("a"), hashkey.FromName("b")
	c.Put(a, "x", 0)
	c.Put(b, "y", 0)
	c.Put(a, "z", 0) // replace, not grow
	if got := g.Get("loccache.entries"); got != 2 {
		t.Fatalf("entries gauge %d, want 2", got)
	}
	c.Invalidate(a)
	if got := g.Get("loccache.entries"); got != 1 {
		t.Fatalf("entries gauge after invalidate %d, want 1", got)
	}
}

func TestExpiringSoonMRUOrder(t *testing.T) {
	fc := newFakeClock()
	c := New(Config{StaleWindow: time.Hour, Clock: fc.now})
	cold := hashkey.FromName("cold")
	hot := hashkey.FromName("hot")
	far := hashkey.FromName("far")
	neg := hashkey.FromName("neg")
	c.Put(cold, "c", time.Minute)
	fc.advance(time.Second)
	c.Put(hot, "h", time.Minute)
	c.Put(far, "f", time.Hour) // outside the window
	c.PutNegative(neg)         // never refreshed
	fc.advance(time.Second)
	c.Lookup(hot) // hot is most recently used

	got := c.ExpiringSoon(10, 5*time.Minute)
	if len(got) != 2 {
		t.Fatalf("candidates %d, want 2 (hot, cold): %+v", len(got), got)
	}
	if got[0].Key != hot || got[1].Key != cold {
		t.Fatalf("MRU order wrong: %+v", got)
	}
	if one := c.ExpiringSoon(1, 5*time.Minute); len(one) != 1 || one[0].Key != hot {
		t.Fatalf("top-1 should be hot: %+v", one)
	}
}

func TestConcurrentShardAccess(t *testing.T) {
	c := New(Config{Shards: 16, MaxEntries: 256})
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := hashkey.FromName(fmt.Sprintf("key-%d", i%64))
				switch i % 4 {
				case 0:
					c.Put(k, "addr", time.Minute)
				case 1:
					c.Lookup(k)
				case 2:
					c.PutNegative(k)
				case 3:
					c.Invalidate(k)
				}
			}
		}(w)
	}
	wg.Wait()
	if n := c.Len(); n > 64 {
		t.Fatalf("len %d exceeds distinct keys", n)
	}
}

func TestShardBoundHolds(t *testing.T) {
	c := New(Config{Shards: 4, MaxEntries: 64})
	for i := 0; i < 10_000; i++ {
		c.Put(hashkey.FromName(fmt.Sprintf("k%d", i)), "addr", time.Minute)
	}
	if n := c.Len(); n > 64 {
		t.Fatalf("cache grew to %d entries, bound is 64", n)
	}
}

// TestPutEpochNewestWins pins the stale-resurrection guard: a write
// carrying an older epoch than the cached positive entry is rejected
// (and counted), an equal or newer one replaces it, and unordered Put
// writes (epoch 0) never outrank an ordered entry through PutEpoch.
func TestPutEpochNewestWins(t *testing.T) {
	fc := newFakeClock()
	ctrs := metrics.NewCounters()
	c := New(Config{Clock: fc.now, Counters: ctrs})
	k := hashkey.FromName("mover")

	if !c.PutEpoch(k, "B", time.Minute, 2) {
		t.Fatal("first ordered write rejected")
	}
	// The delayed duplicate of the pre-move frame arrives late.
	if c.PutEpoch(k, "A", time.Minute, 1) {
		t.Fatal("older epoch accepted over newer")
	}
	if addr, st := c.Peek(k); st != Fresh || addr != "B" {
		t.Fatalf("after stale write: %q %v, want fresh B", addr, st)
	}
	if got := ctrs.Get("loccache.epoch_rejected"); got != 1 {
		t.Fatalf("epoch_rejected = %d, want 1", got)
	}
	// Same epoch re-applies (duplicate of the current frame: harmless).
	if !c.PutEpoch(k, "B", time.Minute, 2) {
		t.Fatal("equal epoch rejected")
	}
	// A newer move replaces.
	if !c.PutEpoch(k, "C", time.Minute, 3) {
		t.Fatal("newer epoch rejected")
	}
	if addr, _ := c.Peek(k); addr != "C" {
		t.Fatalf("newest write lost: %q", addr)
	}
	// An unordered write (epoch 0) through PutEpoch loses to an ordered one.
	if c.PutEpoch(k, "Z", time.Minute, 0) {
		t.Fatal("unordered write displaced an ordered entry")
	}
}

// TestPutEpochReplacesNegativeAndExpired: a negative entry never blocks
// an ordered positive write, and epoch memory survives the entry going
// stale (the guard still holds until the entry is actually dropped).
func TestPutEpochReplacesNegativeAndExpired(t *testing.T) {
	fc := newFakeClock()
	c := New(Config{NegativeTTL: time.Second, StaleWindow: 5 * time.Second, Clock: fc.now})
	k := hashkey.FromName("x")

	c.PutNegative(k)
	if !c.PutEpoch(k, "A", time.Second, 5) {
		t.Fatal("ordered write lost to a negative entry")
	}
	fc.advance(2 * time.Second) // entry now stale, still present
	if c.PutEpoch(k, "OLD", time.Second, 4) {
		t.Fatal("stale entry lost its epoch memory")
	}
	if addr, st := c.Peek(k); st != Stale || addr != "A" {
		t.Fatalf("stale peek: %q %v", addr, st)
	}
}
