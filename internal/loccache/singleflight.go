package loccache

// Singleflight for discovery: when many goroutines miss on the same key
// at once, exactly one _discovery goes to the network and its answer
// serves every waiter. The flight runs in its own goroutine with its own
// lifetime (the caller hands it a detached, budgeted context), so one
// waiter giving up — or even the waiter that started it — never cancels
// the resolution the others are blocked on. Waiters honor their own
// contexts independently.

import (
	"context"
	"sync"

	"bristle/internal/hashkey"
)

type flight struct {
	done chan struct{} // closed when addr/err are final
	addr string
	err  error
}

// Group coalesces concurrent resolutions per key. The zero value is
// ready to use.
type Group struct {
	mu      sync.Mutex
	flights map[hashkey.Key]*flight
}

// Do returns key's in-progress flight result, starting fn in a new
// goroutine if no flight is running. shared reports whether this call
// joined a flight someone else started (the coalesced case). ctx bounds
// only this caller's wait: on cancellation Do returns ctx.Err() and the
// flight keeps running for the remaining waiters.
func (g *Group) Do(ctx context.Context, key hashkey.Key, fn func() (string, error)) (addr string, shared bool, err error) {
	g.mu.Lock()
	if g.flights == nil {
		g.flights = make(map[hashkey.Key]*flight)
	}
	f, ok := g.flights[key]
	if !ok {
		f = &flight{done: make(chan struct{})}
		g.flights[key] = f
		go g.run(key, f, fn)
	}
	g.mu.Unlock()
	select {
	case <-f.done:
		return f.addr, ok, f.err
	case <-ctx.Done():
		return "", ok, ctx.Err()
	}
}

// Launch starts a detached flight for key if none is running and reports
// whether it did — the fire-and-forget form behind stale-while-revalidate
// and the early-binding refresher. Nobody waits on the result here; a
// concurrent Do for the same key joins the launched flight.
func (g *Group) Launch(key hashkey.Key, fn func() (string, error)) bool {
	g.mu.Lock()
	if g.flights == nil {
		g.flights = make(map[hashkey.Key]*flight)
	}
	if _, ok := g.flights[key]; ok {
		g.mu.Unlock()
		return false
	}
	f := &flight{done: make(chan struct{})}
	g.flights[key] = f
	g.mu.Unlock()
	go g.run(key, f, fn)
	return true
}

// run executes one flight and publishes its result. The map entry is
// removed before done closes, so a waiter that wakes and retries always
// either joins a live flight or starts a fresh one — never observes a
// finished flight as "in progress".
func (g *Group) run(key hashkey.Key, f *flight, fn func() (string, error)) {
	f.addr, f.err = fn()
	g.mu.Lock()
	delete(g.flights, key)
	g.mu.Unlock()
	close(f.done)
}

// Inflight reports how many flights are currently running.
func (g *Group) Inflight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.flights)
}
