package loccache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bristle/internal/hashkey"
)

func TestDoCoalescesConcurrentCallers(t *testing.T) {
	var g Group
	k := hashkey.FromName("k")
	var calls atomic.Int32
	gate := make(chan struct{})
	fn := func() (string, error) {
		calls.Add(1)
		<-gate
		return "addr", nil
	}

	const waiters = 16
	var wg sync.WaitGroup
	var arrived atomic.Int32
	sharedCount := atomic.Int32{}
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			arrived.Add(1)
			addr, shared, err := g.Do(context.Background(), k, fn)
			if err != nil || addr != "addr" {
				t.Errorf("Do: %q %v", addr, err)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// The flight cannot complete while the gate is shut, so every caller
	// that reaches Do before the gate opens joins the same flight. Wait
	// for all of them to be at Do's doorstep (plus a scheduling grace
	// period) before releasing it.
	for arrived.Load() != waiters {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	if got := sharedCount.Load(); got != waiters-1 {
		t.Fatalf("%d callers saw shared, want %d", got, waiters-1)
	}
}

func TestDoWaiterCancellationLeavesFlightRunning(t *testing.T) {
	var g Group
	k := hashkey.FromName("k")
	gate := make(chan struct{})
	started := make(chan struct{})
	fn := func() (string, error) {
		close(started)
		<-gate
		return "late", nil
	}

	if !g.Launch(k, fn) {
		t.Fatal("Launch refused with no flight running")
	}
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := g.Do(ctx, k, fn); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter err = %v", err)
	}

	// The flight survived the waiter's departure: a patient waiter still
	// gets its result. (The waiter's fallback fn returns the same value,
	// so the assertion holds even if it races past the flight's finish.)
	done := make(chan string, 1)
	go func() {
		addr, _, _ := g.Do(context.Background(), k, func() (string, error) { return "late", nil })
		done <- addr
	}()
	close(gate)
	if addr := <-done; addr != "late" {
		t.Fatalf("patient waiter got %q, want late", addr)
	}
}

func TestLaunchDeduplicates(t *testing.T) {
	var g Group
	k := hashkey.FromName("k")
	gate := make(chan struct{})
	var calls atomic.Int32
	fn := func() (string, error) {
		calls.Add(1)
		<-gate
		return "", nil
	}
	if !g.Launch(k, fn) {
		t.Fatal("first Launch refused")
	}
	if g.Launch(k, fn) {
		t.Fatal("second Launch started a duplicate flight")
	}
	close(gate)
	for g.Inflight() != 0 {
		time.Sleep(time.Millisecond)
	}
	if calls.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", calls.Load())
	}
	// After completion the key is free again.
	if !g.Launch(k, func() (string, error) { return "", nil }) {
		t.Fatal("Launch refused after flight completed")
	}
}

func TestSequentialDoDoesNotShare(t *testing.T) {
	var g Group
	k := hashkey.FromName("k")
	for i := 0; i < 3; i++ {
		addr, shared, err := g.Do(context.Background(), k, func() (string, error) { return "a", nil })
		if err != nil || addr != "a" || shared {
			t.Fatalf("iteration %d: %q shared=%v err=%v", i, addr, shared, err)
		}
	}
}

func TestDoPropagatesError(t *testing.T) {
	var g Group
	sentinel := errors.New("boom")
	_, _, err := g.Do(context.Background(), hashkey.FromName("k"), func() (string, error) { return "", sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}
