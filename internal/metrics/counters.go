package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Counters is a concurrency-safe registry of named monotonic event
// counters, used by the live stack and the fault-injection transport to
// make resilience behaviour observable: retries, timeouts, breaker trips,
// injected faults. A nil *Counters is a valid no-op sink, so
// instrumentation sites never need to guard against an absent registry.
type Counters struct {
	mu sync.Mutex
	m  map[string]uint64
}

// NewCounters returns an empty registry.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]uint64)}
}

// Inc adds 1 to the named counter.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Add adds n to the named counter. No-op on a nil registry.
func (c *Counters) Add(name string, n uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.m[name] += n
	c.mu.Unlock()
}

// Get returns the named counter's value (0 when absent or nil registry).
func (c *Counters) Get(name string) uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Sum returns the total of the named counters — the building block of
// conservation invariants ("these outcomes partition those attempts").
func (c *Counters) Sum(names ...string) uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var total uint64
	for _, name := range names {
		total += c.m[name]
	}
	return total
}

// Snapshot copies every counter, for iteration without holding the lock.
func (c *Counters) Snapshot() map[string]uint64 {
	out := make(map[string]uint64)
	if c == nil {
		return out
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Diff returns the per-counter increase since prev (a Snapshot taken
// earlier). Counters whose value did not change are omitted, so the
// result reads as "what happened during this interval" — the shape a
// periodic stats reporter wants. Counters are monotonic; a prev entry
// above the current value (a different registry, or a restart) is
// treated as new and reported at its full current value.
func (c *Counters) Diff(prev map[string]uint64) map[string]uint64 {
	cur := c.Snapshot()
	out := make(map[string]uint64)
	for k, v := range cur {
		if p, ok := prev[k]; ok && p <= v {
			if v > p {
				out[k] = v - p
			}
			continue
		}
		if v > 0 {
			out[k] = v
		}
	}
	return out
}

// Names returns the registered counter names in sorted order.
func (c *Counters) Names() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.m))
	for k := range c.m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// String renders the counters as "name=value" pairs in sorted order —
// compact enough for a periodic log line.
func (c *Counters) String() string {
	snap := c.Snapshot()
	if len(snap) == 0 {
		return "(no events)"
	}
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, k := range names {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", k, snap[k])
	}
	return b.String()
}
