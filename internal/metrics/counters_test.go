package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCountersBasics(t *testing.T) {
	c := NewCounters()
	if got := c.Get("missing"); got != 0 {
		t.Fatalf("absent counter = %d, want 0", got)
	}
	c.Inc("a")
	c.Add("a", 2)
	c.Inc("b")
	if got := c.Get("a"); got != 3 {
		t.Fatalf("a = %d, want 3", got)
	}
	snap := c.Snapshot()
	if snap["a"] != 3 || snap["b"] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
	if got := c.String(); got != "a=3 b=1" {
		t.Fatalf("String() = %q", got)
	}
	if names := c.Names(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names() = %v", names)
	}
}

func TestCountersNilIsNoOpSink(t *testing.T) {
	var c *Counters
	c.Inc("x") // must not panic
	c.Add("x", 5)
	if got := c.Get("x"); got != 0 {
		t.Fatalf("nil Get = %d", got)
	}
	if snap := c.Snapshot(); len(snap) != 0 {
		t.Fatalf("nil Snapshot = %v", snap)
	}
	if !strings.Contains(c.String(), "no events") {
		t.Fatalf("nil String = %q", c.String())
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc("shared")
			}
		}()
	}
	wg.Wait()
	if got := c.Get("shared"); got != 8000 {
		t.Fatalf("shared = %d, want 8000", got)
	}
}
