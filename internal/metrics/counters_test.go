package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCountersBasics(t *testing.T) {
	c := NewCounters()
	if got := c.Get("missing"); got != 0 {
		t.Fatalf("absent counter = %d, want 0", got)
	}
	c.Inc("a")
	c.Add("a", 2)
	c.Inc("b")
	if got := c.Get("a"); got != 3 {
		t.Fatalf("a = %d, want 3", got)
	}
	snap := c.Snapshot()
	if snap["a"] != 3 || snap["b"] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
	if got := c.String(); got != "a=3 b=1" {
		t.Fatalf("String() = %q", got)
	}
	if names := c.Names(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names() = %v", names)
	}
}

func TestCountersNilIsNoOpSink(t *testing.T) {
	var c *Counters
	c.Inc("x") // must not panic
	c.Add("x", 5)
	if got := c.Get("x"); got != 0 {
		t.Fatalf("nil Get = %d", got)
	}
	if snap := c.Snapshot(); len(snap) != 0 {
		t.Fatalf("nil Snapshot = %v", snap)
	}
	if !strings.Contains(c.String(), "no events") {
		t.Fatalf("nil String = %q", c.String())
	}
}

func TestCountersDiff(t *testing.T) {
	c := NewCounters()
	c.Add("steady", 5)
	c.Add("busy", 10)
	prev := c.Snapshot()

	c.Add("busy", 7)
	c.Inc("fresh")
	d := c.Diff(prev)
	if len(d) != 2 || d["busy"] != 7 || d["fresh"] != 1 {
		t.Fatalf("Diff = %v, want busy=7 fresh=1 only", d)
	}
	if _, ok := d["steady"]; ok {
		t.Fatal("unchanged counter must be omitted from Diff")
	}

	// A prev entry above the current value (different registry / restart)
	// reports the full current value rather than underflowing.
	other := NewCounters()
	other.Add("busy", 3)
	if d := other.Diff(prev); d["busy"] != 3 {
		t.Fatalf("regressed counter Diff = %v, want busy=3", d)
	}

	// Nil registry: empty diff, no panic.
	var nilC *Counters
	if d := nilC.Diff(prev); len(d) != 0 {
		t.Fatalf("nil Diff = %v", d)
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc("shared")
			}
		}()
	}
	wg.Wait()
	if got := c.Get("shared"); got != 8000 {
		t.Fatalf("shared = %d, want 8000", got)
	}
}
