package metrics

// EWMA is a lock-free exponentially weighted moving average with a
// sample count, packed into one atomic word: the high 32 bits hold the
// smoothed value as a float32, the low 32 bits the number of samples
// folded in. Readers pay one atomic load (no lock, no allocation), and
// writers a CAS loop — cheap enough to sit on an RPC completion path.
//
// The float32 value gives ~7 significant digits, ample for latency
// estimates (a 10s RTT in nanoseconds is still exact to ~1µs). The
// count saturates at MaxUint32 instead of wrapping.
//
// The zero EWMA is empty and ready to use.

import (
	"math"
	"sync/atomic"
)

// EWMA is a packed, lock-free exponentially weighted moving average.
type EWMA struct {
	bits atomic.Uint64
}

func ewmaPack(v float32, n uint32) uint64 {
	return uint64(math.Float32bits(v))<<32 | uint64(n)
}

func ewmaUnpack(bits uint64) (float32, uint32) {
	return math.Float32frombits(uint32(bits >> 32)), uint32(bits)
}

// Observe folds one sample into the average with smoothing factor alpha
// in (0, 1]: next = (1-alpha)·cur + alpha·sample. The first sample sets
// the average directly. Safe for concurrent use; allocation-free.
func (e *EWMA) Observe(sample, alpha float64) {
	for {
		old := e.bits.Load()
		cur, n := ewmaUnpack(old)
		next := sample
		if n > 0 {
			next = (1-alpha)*float64(cur) + alpha*sample
		}
		if n != math.MaxUint32 {
			n++
		}
		if e.bits.CompareAndSwap(old, ewmaPack(float32(next), n)) {
			return
		}
	}
}

// Load returns the current average and how many samples produced it
// (0 samples means the value is meaningless). One atomic load: the pair
// is consistent even against concurrent Observes.
func (e *EWMA) Load() (value float64, samples uint32) {
	v, n := ewmaUnpack(e.bits.Load())
	return float64(v), n
}

// Reset discards the average and count.
func (e *EWMA) Reset() { e.bits.Store(0) }
