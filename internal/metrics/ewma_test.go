package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestEWMAFirstSampleSetsValue(t *testing.T) {
	var e EWMA
	if v, n := e.Load(); v != 0 || n != 0 {
		t.Fatalf("zero EWMA = (%v, %d), want (0, 0)", v, n)
	}
	e.Observe(250, 0.25)
	v, n := e.Load()
	if n != 1 {
		t.Fatalf("samples = %d, want 1", n)
	}
	if v != 250 {
		t.Fatalf("first sample gave %v, want 250", v)
	}
}

func TestEWMASmoothing(t *testing.T) {
	var e EWMA
	e.Observe(100, 0.5)
	e.Observe(200, 0.5)
	v, n := e.Load()
	if n != 2 {
		t.Fatalf("samples = %d, want 2", n)
	}
	if math.Abs(v-150) > 1e-3 {
		t.Fatalf("EWMA after 100,200 (alpha 0.5) = %v, want 150", v)
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	var e EWMA
	e.Observe(1e6, 0.25) // far-off seed
	for i := 0; i < 200; i++ {
		e.Observe(42, 0.25)
	}
	v, _ := e.Load()
	if math.Abs(v-42) > 0.5 {
		t.Fatalf("EWMA did not converge: %v, want ≈42", v)
	}
}

func TestEWMAReset(t *testing.T) {
	var e EWMA
	e.Observe(7, 0.5)
	e.Reset()
	if v, n := e.Load(); v != 0 || n != 0 {
		t.Fatalf("after Reset = (%v, %d), want (0, 0)", v, n)
	}
}

// TestEWMAConcurrent hammers one EWMA from many goroutines with a
// constant sample: the count must equal the number of observations and
// the value must equal the sample exactly (a torn read/write would show
// up as either). Run under -race this also proves the atomicity claim.
func TestEWMAConcurrent(t *testing.T) {
	var e EWMA
	const goroutines, per = 8, 10_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				e.Observe(500, 0.25)
			}
		}()
	}
	wg.Wait()
	v, n := e.Load()
	if n != goroutines*per {
		t.Fatalf("samples = %d, want %d", n, goroutines*per)
	}
	if v != 500 {
		t.Fatalf("value = %v, want exactly 500", v)
	}
}

func TestEWMACountSaturates(t *testing.T) {
	var e EWMA
	e.bits.Store(ewmaPack(9, math.MaxUint32))
	e.Observe(9, 0.5)
	if _, n := e.Load(); n != math.MaxUint32 {
		t.Fatalf("count wrapped: %d", n)
	}
}
