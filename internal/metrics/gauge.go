package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Gauges is a concurrency-safe registry of named instantaneous values —
// the level-style counterpart of Counters, used by the live connection
// pool to expose how many sessions are open and how many requests are in
// flight right now. Like Counters, a nil *Gauges is a valid no-op sink.
type Gauges struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewGauges returns an empty registry.
func NewGauges() *Gauges {
	return &Gauges{m: make(map[string]int64)}
}

// Add moves the named gauge by d (negative to decrement). No-op on a nil
// registry.
func (g *Gauges) Add(name string, d int64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.m[name] += d
	g.mu.Unlock()
}

// Set pins the named gauge to v. No-op on a nil registry.
func (g *Gauges) Set(name string, v int64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.m[name] = v
	g.mu.Unlock()
}

// Get returns the named gauge's value (0 when absent or nil registry).
func (g *Gauges) Get(name string) int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.m[name]
}

// Snapshot copies every gauge, for iteration without holding the lock.
func (g *Gauges) Snapshot() map[string]int64 {
	out := make(map[string]int64)
	if g == nil {
		return out
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for k, v := range g.m {
		out[k] = v
	}
	return out
}

// NonZero returns the gauges currently holding a non-zero value — the
// shape a shutdown invariant wants ("every level returned to zero").
func (g *Gauges) NonZero() map[string]int64 {
	out := make(map[string]int64)
	for k, v := range g.Snapshot() {
		if v != 0 {
			out[k] = v
		}
	}
	return out
}

// String renders the gauges as "name=value" pairs in sorted order.
func (g *Gauges) String() string {
	snap := g.Snapshot()
	if len(snap) == 0 {
		return "(no gauges)"
	}
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, k := range names {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", k, snap[k])
	}
	return b.String()
}
