// Package metrics provides the statistics accumulators and table/CSV
// renderers used by every experiment in the evaluation harness: sample
// summaries (mean, standard deviation, percentiles), integer histograms,
// and the relative-delay-penalty helper from Figure 7(b).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample accumulates float64 observations. The zero value is empty and
// ready to use.
type Sample struct {
	values []float64
	sum    float64
	sorted bool
}

// Add appends one observation.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	s.sum += v
	s.sorted = false
}

// AddN appends v with multiplicity n.
func (s *Sample) AddN(v float64, n int) {
	for i := 0; i < n; i++ {
		s.Add(v)
	}
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.sum / float64(len(s.values))
}

// Sum returns the total of all observations.
func (s *Sample) Sum() float64 { return s.sum }

// Std returns the population standard deviation.
func (s *Sample) Std() float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	var ss float64
	for _, v := range s.values {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Min returns the smallest observation (0 when empty).
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	min := s.values[0]
	for _, v := range s.values[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the largest observation (0 when empty).
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	max := s.values[0]
	for _, v := range s.values[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using
// nearest-rank interpolation. Empty samples return 0.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
	if p <= 0 {
		return s.values[0]
	}
	if p >= 100 {
		return s.values[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.values[lo]
	}
	frac := rank - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// String summarizes the sample for logs.
func (s *Sample) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f min=%.3f p50=%.3f p99=%.3f max=%.3f",
		s.N(), s.Mean(), s.Std(), s.Min(), s.Median(), s.Percentile(99), s.Max())
}

// RDP computes the relative delay penalty of Figure 7(b): the ratio of the
// baseline cost to the optimized cost. Zero optimized cost yields +Inf
// unless the baseline is also zero (then 1, no penalty).
func RDP(baseline, optimized float64) float64 {
	if optimized == 0 {
		if baseline == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return baseline / optimized
}

// Histogram counts integer-valued observations in unit bins.
type Histogram struct {
	counts map[int]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int)}
}

// Add counts one observation of value v.
func (h *Histogram) Add(v int) {
	h.counts[v]++
	h.total++
}

// Count returns the number of observations equal to v.
func (h *Histogram) Count(v int) int { return h.counts[v] }

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// Fraction returns Count(v)/Total (0 when empty).
func (h *Histogram) Fraction(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[v]) / float64(h.total)
}

// Keys returns the observed values in ascending order.
func (h *Histogram) Keys() []int {
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Table renders aligned text tables matching the paper's row/series style.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e12 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.header, ","))
	b.WriteByte('\n')
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
