package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Std() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("zero Sample not neutral")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	if s.Std() != 2 { // classic example: population std = 2
		t.Fatalf("Std = %v, want 2", s.Std())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.Sum() != 40 {
		t.Fatalf("Sum = %v", s.Sum())
	}
}

func TestSampleAddN(t *testing.T) {
	var s Sample
	s.AddN(3, 4)
	if s.N() != 4 || s.Mean() != 3 {
		t.Fatalf("AddN wrong: n=%d mean=%v", s.N(), s.Mean())
	}
}

func TestPercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Errorf("p100 = %v", got)
	}
	if got := s.Median(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("median = %v, want 50.5", got)
	}
	if got := s.Percentile(25); math.Abs(got-25.75) > 1e-9 {
		t.Errorf("p25 = %v, want 25.75", got)
	}
}

func TestPercentileAfterAddReSorts(t *testing.T) {
	var s Sample
	s.Add(10)
	s.Add(1)
	_ = s.Median() // forces sort
	s.Add(0.5)     // must invalidate the sort
	if got := s.Min(); got != 0.5 {
		t.Fatalf("Min after re-add = %v", got)
	}
	if got := s.Percentile(0); got != 0.5 {
		t.Fatalf("p0 after re-add = %v", got)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(vals []float64, a, b uint8) bool {
		var s Sample
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				s.Add(v)
			}
		}
		p1 := float64(a % 101)
		p2 := float64(b % 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return s.Percentile(p1) <= s.Percentile(p2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMeanWithinMinMaxProperty(t *testing.T) {
	f := func(vals []float64) bool {
		var s Sample
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e15 {
				s.Add(v)
			}
		}
		if s.N() == 0 {
			return true
		}
		return s.Min() <= s.Mean()+1e-6 && s.Mean() <= s.Max()+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRDP(t *testing.T) {
	if got := RDP(30, 10); got != 3 {
		t.Errorf("RDP(30,10) = %v", got)
	}
	if got := RDP(0, 0); got != 1 {
		t.Errorf("RDP(0,0) = %v, want 1", got)
	}
	if !math.IsInf(RDP(5, 0), 1) {
		t.Error("RDP(5,0) should be +Inf")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{1, 2, 2, 3, 3, 3} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Count(3) != 3 || h.Count(99) != 0 {
		t.Fatal("Count wrong")
	}
	if got := h.Fraction(2); math.Abs(got-1.0/3) > 1e-9 {
		t.Fatalf("Fraction(2) = %v", got)
	}
	keys := h.Keys()
	if len(keys) != 3 || keys[0] != 1 || keys[2] != 3 {
		t.Fatalf("Keys = %v", keys)
	}
	empty := NewHistogram()
	if empty.Fraction(1) != 0 {
		t.Fatal("empty histogram Fraction != 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("M/N (%)", "hops", "rdp")
	tb.AddRow(10, 5.25, 1.0)
	tb.AddRow(80, 25.0, 3.125)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "M/N (%)") {
		t.Fatalf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[2], "5.250") {
		t.Fatalf("float not formatted: %q", lines[2])
	}
	if !strings.Contains(lines[3], "25") {
		t.Fatalf("integral float not compact: %q", lines[3])
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow(1, 2.5)
	csv := tb.CSV()
	want := "a,b\n1,2.500\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestSampleString(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Add(2)
	out := s.String()
	if !strings.Contains(out, "n=2") || !strings.Contains(out, "mean=1.500") {
		t.Fatalf("String() = %q", out)
	}
}
