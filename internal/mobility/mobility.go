// Package mobility generates the movement workloads the evaluation drives
// Bristle with: which nodes are mobile, when each moves to a new network
// attachment point, and the lease/refresh timing that governs state
// freshness (Section 2.3.2's early/late binding).
package mobility

import (
	"fmt"
	"math/rand"
	"sort"

	"bristle/internal/simnet"
)

// Move is one scheduled re-attachment of a host.
type Move struct {
	At   simnet.Time
	Host simnet.HostID
}

// Schedule is a time-ordered list of movement events.
type Schedule []Move

// Params configures workload generation.
type Params struct {
	// Horizon is the simulated duration over which moves are scheduled.
	Horizon simnet.Time
	// MeanInterval is the mean time between consecutive moves of one
	// mobile host (exponential inter-arrival, a Poisson movement process).
	MeanInterval simnet.Time
	// Jitter, if true, staggers each host's first move uniformly so the
	// population does not move in lockstep. Default workloads want this.
	Jitter bool
}

func (p Params) validate() error {
	if p.Horizon <= 0 {
		return fmt.Errorf("mobility: Horizon must be positive, got %v", p.Horizon)
	}
	if p.MeanInterval <= 0 {
		return fmt.Errorf("mobility: MeanInterval must be positive, got %v", p.MeanInterval)
	}
	return nil
}

// Generate produces a movement schedule for the given mobile hosts. Each
// host moves at exponential intervals with the configured mean until the
// horizon. The result is sorted by time.
func Generate(hosts []simnet.HostID, p Params, rng *rand.Rand) (Schedule, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	var sched Schedule
	for _, h := range hosts {
		t := simnet.Time(0)
		if p.Jitter {
			t = simnet.Time(rng.Float64()) * p.MeanInterval
		}
		for {
			t += simnet.Time(rng.ExpFloat64()) * p.MeanInterval
			if t > p.Horizon {
				break
			}
			sched = append(sched, Move{At: t, Host: h})
		}
	}
	sort.Slice(sched, func(i, j int) bool {
		if sched[i].At != sched[j].At {
			return sched[i].At < sched[j].At
		}
		return sched[i].Host < sched[j].Host
	})
	return sched, nil
}

// Apply installs the schedule into the simulator: at each move time the
// host re-attaches to a random stub router and onMove (if non-nil) is
// invoked with the new address — the hook Bristle uses to trigger location
// updates.
func (s Schedule) Apply(sim *simnet.Simulator, net *simnet.Network, rng *rand.Rand,
	onMove func(h simnet.HostID, addr simnet.Addr)) {
	for _, mv := range s {
		mv := mv
		sim.At(mv.At, func() {
			addr := net.MoveRandom(mv.Host, rng)
			if onMove != nil {
				onMove(mv.Host, addr)
			}
		})
	}
}

// CountByHost returns the number of scheduled moves per host.
func (s Schedule) CountByHost() map[simnet.HostID]int {
	out := make(map[simnet.HostID]int)
	for _, mv := range s {
		out[mv.Host]++
	}
	return out
}

// PickMobile selects m distinct hosts out of n (IDs 0..n-1) uniformly at
// random to act as the mobile population; the rest are stationary.
func PickMobile(n, m int, rng *rand.Rand) []simnet.HostID {
	if m > n {
		m = n
	}
	perm := rng.Perm(n)
	out := make([]simnet.HostID, m)
	for i := 0; i < m; i++ {
		out[i] = simnet.HostID(perm[i])
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
