package mobility

import (
	"math/rand"
	"testing"

	"bristle/internal/simnet"
	"bristle/internal/topology"
)

func TestGenerateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Generate(nil, Params{Horizon: 0, MeanInterval: 1}, rng); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := Generate(nil, Params{Horizon: 10, MeanInterval: 0}, rng); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestGenerateSortedWithinHorizon(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	hosts := []simnet.HostID{0, 1, 2, 3, 4}
	sched, err := Generate(hosts, Params{Horizon: 100, MeanInterval: 5, Jitter: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) == 0 {
		t.Fatal("empty schedule for 5 hosts over 20 mean intervals")
	}
	for i := 1; i < len(sched); i++ {
		if sched[i].At < sched[i-1].At {
			t.Fatal("schedule not sorted")
		}
	}
	for _, mv := range sched {
		if mv.At > 100 || mv.At < 0 {
			t.Fatalf("move at %v outside horizon", mv.At)
		}
	}
}

func TestGenerateMeanRate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	hosts := make([]simnet.HostID, 50)
	for i := range hosts {
		hosts[i] = simnet.HostID(i)
	}
	sched, err := Generate(hosts, Params{Horizon: 1000, MeanInterval: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Expect ~100 moves per host ⇒ ~5000 total; allow wide tolerance.
	if len(sched) < 4000 || len(sched) > 6000 {
		t.Fatalf("total moves %d, expected ≈5000", len(sched))
	}
	counts := sched.CountByHost()
	if len(counts) != 50 {
		t.Fatalf("only %d hosts moved", len(counts))
	}
}

func TestApplyMovesHosts(t *testing.T) {
	g, err := topology.GenerateTransitStub(topology.TransitStubParams{
		TransitDomains: 1, TransitPerDomain: 2,
		StubsPerTransit: 3, StubPerDomain: 4, EdgeProb: 0.3,
	}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	var sim simnet.Simulator
	net := simnet.NewNetwork(g, &sim)
	rng := rand.New(rand.NewSource(5))
	h := net.AttachHostRandom(rng)
	orig := net.AddrOf(h)

	sched := Schedule{{At: 1, Host: h}, {At: 2, Host: h}}
	callbacks := 0
	var lastAddr simnet.Addr
	sched.Apply(&sim, net, rng, func(host simnet.HostID, addr simnet.Addr) {
		if host != h {
			t.Errorf("callback for wrong host %d", host)
		}
		callbacks++
		lastAddr = addr
	})
	sim.RunAll()
	if callbacks != 2 {
		t.Fatalf("callbacks = %d, want 2", callbacks)
	}
	if net.Valid(orig) {
		t.Fatal("original address still valid after moves")
	}
	if !net.Valid(lastAddr) {
		t.Fatal("final reported address not valid")
	}
	if lastAddr.Epoch != orig.Epoch+2 {
		t.Fatalf("epoch advanced %d→%d, want +2", orig.Epoch, lastAddr.Epoch)
	}
}

func TestPickMobileDistinctAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	picked := PickMobile(100, 30, rng)
	if len(picked) != 30 {
		t.Fatalf("picked %d, want 30", len(picked))
	}
	seen := map[simnet.HostID]bool{}
	for _, h := range picked {
		if h < 0 || int(h) >= 100 {
			t.Fatalf("host %d out of range", h)
		}
		if seen[h] {
			t.Fatalf("host %d picked twice", h)
		}
		seen[h] = true
	}
	// Over-asking clamps.
	if got := PickMobile(5, 99, rng); len(got) != 5 {
		t.Fatalf("over-ask returned %d", len(got))
	}
}

func TestPickMobileSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	picked := PickMobile(1000, 100, rng)
	for i := 1; i < len(picked); i++ {
		if picked[i-1] >= picked[i] {
			t.Fatal("PickMobile result not sorted/unique")
		}
	}
}
