// Package overlay implements the hash-based structured P2P substrate that
// Bristle is deployed on (the role Tornado [2] plays in the paper).
//
// The overlay is a bidirectional greedy ring: every node keeps a leaf set
// (its closest neighbors clockwise and counter-clockwise) plus log-spaced
// finger entries in both directions, optionally chosen by network proximity
// among key-eligible candidates (proximity neighbor selection, the paper's
// Section 3 optimization (1)). Routing is *monotone*: the source picks the
// shorter arc direction and every hop moves strictly toward the target key
// without overshooting, so all intermediate keys lie on the source→target
// arc. That property is exactly what the clustered naming scheme's
// Equation (1) requires, and what Figure 6 depicts.
//
// The package provides every HS-P2P property the paper relies on:
// O(log N) per-node state, O(log N) route hops, join/leave with local
// repair, periodic refresh (finger rebuild), and a replication
// neighborhood of the k nodes closest to a key.
package overlay

import (
	"fmt"
	"math/bits"
	"sort"

	"bristle/internal/hashkey"
	"bristle/internal/simnet"
)

// NodeID identifies an overlay node within a Ring. IDs are dense and never
// reused; departed nodes keep their IDs but are marked dead.
type NodeID int32

// NoNode is the sentinel for "no node".
const NoNode NodeID = -1

// Ref is a state-pair's identity half: the hash key and node it names.
// (The address half lives in Bristle's state tables; the plain overlay
// resolves addresses through the simnet directly.)
type Ref struct {
	Key hashkey.Key
	ID  NodeID
}

// Config tunes the overlay geometry.
type Config struct {
	// LeafSize is the number of leaf-set entries kept on each side of a
	// node (clockwise and counter-clockwise). Minimum effective value 1.
	LeafSize int

	// ProximityChoices is how many key-eligible candidates are examined
	// when filling each finger entry; the nearest by underlay distance
	// wins. 0 disables proximity neighbor selection (first candidate wins).
	ProximityChoices int
}

// DefaultConfig mirrors common structured-overlay deployments: 4 leaves
// per side and 3-way proximity choice.
func DefaultConfig() Config {
	return Config{LeafSize: 4, ProximityChoices: 3}
}

func (c *Config) sanitize() {
	if c.LeafSize < 1 {
		c.LeafSize = 1
	}
	if c.ProximityChoices < 0 {
		c.ProximityChoices = 0
	}
}

// Node is one overlay participant's routing state.
type Node struct {
	Ref  Ref
	Host simnet.HostID

	// Leaf sets ordered by increasing arc distance from Ref.Key.
	leafCW  []Ref
	leafCCW []Ref

	// Fingers per direction, deduplicated, ordered by increasing directed
	// distance. Each entry is roughly the first node ≥ 2^i away.
	fingersCW  []Ref
	fingersCCW []Ref
}

// Neighbors returns every distinct state entry the node maintains, leaf
// sets first. The slice is freshly allocated.
func (n *Node) Neighbors() []Ref {
	seen := make(map[NodeID]bool, len(n.leafCW)+len(n.leafCCW)+len(n.fingersCW)+len(n.fingersCCW))
	var out []Ref
	add := func(rs []Ref) {
		for _, r := range rs {
			if !seen[r.ID] {
				seen[r.ID] = true
				out = append(out, r)
			}
		}
	}
	add(n.leafCW)
	add(n.leafCCW)
	add(n.fingersCW)
	add(n.fingersCCW)
	return out
}

// StateSize returns the number of distinct routing-state entries, the
// paper's per-node memory overhead (§2.3.2 scalability property).
func (n *Node) StateSize() int { return len(n.Neighbors()) }

// Ring is a structured overlay instance. It is not safe for concurrent
// mutation; experiments drive it from a single goroutine (the simulator).
type Ring struct {
	cfg   Config
	net   *simnet.Network // may be nil: proximity selection disabled
	nodes []*Node         // indexed by NodeID; nil entries are departed
	alive int

	// sorted is the key-ordered membership index. It is the simulation
	// oracle used to *construct* routing state (standing in for the join
	// message walk of Figure 5); routing itself uses only per-node state.
	sorted []Ref
}

// NewRing creates an empty overlay. net may be nil when no underlay
// proximity information is available or wanted.
func NewRing(cfg Config, net *simnet.Network) *Ring {
	cfg.sanitize()
	return &Ring{cfg: cfg, net: net}
}

// Size returns the number of live nodes.
func (r *Ring) Size() int { return r.alive }

// Node returns the node with the given ID, or nil if departed/unknown.
func (r *Ring) Node(id NodeID) *Node {
	if int(id) >= len(r.nodes) || id < 0 {
		return nil
	}
	return r.nodes[id]
}

// Nodes returns the live nodes in key order. The slice is freshly
// allocated; the *Node pointers are shared.
func (r *Ring) Nodes() []*Node {
	out := make([]*Node, 0, r.alive)
	for _, ref := range r.sorted {
		out = append(out, r.nodes[ref.ID])
	}
	return out
}

// AddNode joins a node with the given key and host, builds its routing
// state (Figure 5: collect states from the nodes a join walk would visit,
// preferring network-close candidates), and repairs the leaf sets of its
// new neighbors. Fingers of existing nodes are refreshed lazily via
// Stabilize, as in deployed systems. Duplicate keys are rejected.
func (r *Ring) AddNode(key hashkey.Key, host simnet.HostID) (NodeID, error) {
	idx := r.searchIndex(key)
	if idx < len(r.sorted) && r.sorted[idx].Key == key {
		return NoNode, fmt.Errorf("overlay: key %v already present", key)
	}
	id := NodeID(len(r.nodes))
	n := &Node{Ref: Ref{Key: key, ID: id}, Host: host}
	r.nodes = append(r.nodes, n)

	// Insert into the sorted index.
	r.sorted = append(r.sorted, Ref{})
	copy(r.sorted[idx+1:], r.sorted[idx:])
	r.sorted[idx] = n.Ref
	r.alive++

	r.buildLeafSets(n)
	r.buildFingers(n)
	r.repairAround(key)
	return id, nil
}

// RemoveNode departs a node. Its neighbors' leaf sets are repaired; stale
// finger entries elsewhere are tolerated by routing (dead entries are
// skipped) and cleaned by Stabilize.
func (r *Ring) RemoveNode(id NodeID) error {
	n := r.Node(id)
	if n == nil {
		return fmt.Errorf("overlay: node %d unknown or departed", id)
	}
	idx := r.searchIndex(n.Ref.Key)
	if idx >= len(r.sorted) || r.sorted[idx].ID != id {
		return fmt.Errorf("overlay: index corrupt for node %d", id)
	}
	r.sorted = append(r.sorted[:idx], r.sorted[idx+1:]...)
	r.nodes[id] = nil
	r.alive--
	if r.alive > 0 {
		r.repairAround(n.Ref.Key)
	}
	return nil
}

// Stabilize rebuilds leaf sets and fingers of every live node, the
// simulation analogue of the periodic state refresh in §2.3.3.
func (r *Ring) Stabilize() {
	for _, ref := range r.sorted {
		n := r.nodes[ref.ID]
		r.buildLeafSets(n)
		r.buildFingers(n)
	}
}

// searchIndex returns the first index in sorted whose key is >= key.
func (r *Ring) searchIndex(key hashkey.Key) int {
	return sort.Search(len(r.sorted), func(i int) bool {
		return r.sorted[i].Key >= key
	})
}

// successorIdx returns the index of the first node clockwise from key
// (including key itself), wrapping.
func (r *Ring) successorIdx(key hashkey.Key) int {
	idx := r.searchIndex(key)
	if idx == len(r.sorted) {
		return 0
	}
	return idx
}

// Closest returns the live node whose key is nearest to target by
// shortest-arc distance (ties clockwise) — the membership oracle used to
// verify routing.
func (r *Ring) Closest(target hashkey.Key) *Node {
	if r.alive == 0 {
		return nil
	}
	i := r.successorIdx(target)
	succ := r.sorted[i]
	pred := r.sorted[(i-1+len(r.sorted))%len(r.sorted)]
	if hashkey.Closer(target, pred.Key, succ.Key) {
		return r.nodes[pred.ID]
	}
	return r.nodes[succ.ID]
}

// Neighborhood returns the k live nodes closest to key (the replication
// set of §2.3.2 availability property), nearest first.
func (r *Ring) Neighborhood(key hashkey.Key, k int) []*Node {
	if k <= 0 || r.alive == 0 {
		return nil
	}
	if k > r.alive {
		k = r.alive
	}
	out := make([]*Node, 0, k)
	n := len(r.sorted)
	up := r.successorIdx(key)
	down := (up - 1 + n) % n
	for len(out) < k {
		upRef := r.sorted[up%n]
		downRef := r.sorted[(down+n)%n]
		if len(out)+1 < k && upRef.ID != downRef.ID {
			if hashkey.Closer(key, upRef.Key, downRef.Key) {
				out = append(out, r.nodes[upRef.ID])
				up++
			} else {
				out = append(out, r.nodes[downRef.ID])
				down--
			}
			continue
		}
		if hashkey.Closer(key, upRef.Key, downRef.Key) || upRef.ID == downRef.ID {
			out = append(out, r.nodes[upRef.ID])
			up++
		} else {
			out = append(out, r.nodes[downRef.ID])
			down--
		}
	}
	return out
}

// buildLeafSets fills n's leaf sets from the membership index.
func (r *Ring) buildLeafSets(n *Node) {
	l := r.cfg.LeafSize
	n.leafCW = n.leafCW[:0]
	n.leafCCW = n.leafCCW[:0]
	m := len(r.sorted)
	if m <= 1 {
		return
	}
	self := r.searchIndex(n.Ref.Key)
	for i := 1; i <= l && i < m; i++ {
		n.leafCW = append(n.leafCW, r.sorted[(self+i)%m])
		n.leafCCW = append(n.leafCCW, r.sorted[(self-i+m*2)%m])
	}
}

// buildFingers fills n's finger tables with proximity neighbor selection.
// For each power-of-two distance band [2^i, 2^(i+1)) in each direction the
// node keeps one entry; among up to ProximityChoices+1 candidates in the
// band, the underlay-nearest is chosen.
func (r *Ring) buildFingers(n *Node) {
	n.fingersCW = r.buildFingerDir(n, hashkey.CW, n.fingersCW[:0])
	n.fingersCCW = r.buildFingerDir(n, hashkey.CCW, n.fingersCCW[:0])
}

func (r *Ring) buildFingerDir(n *Node, dir hashkey.Direction, out []Ref) []Ref {
	m := len(r.sorted)
	if m <= 1 {
		return out
	}
	lastID := NoNode
	for i := uint(0); i < hashkey.RingBits; i++ {
		lo := uint64(1) << i
		var hi uint64
		if i == hashkey.RingBits-1 {
			hi = ^uint64(0)
		} else {
			hi = (uint64(1) << (i + 1)) - 1
		}
		ref, ok := r.pickInBand(n, dir, lo, hi)
		if !ok || ref.ID == lastID || ref.ID == n.Ref.ID {
			continue
		}
		out = append(out, ref)
		lastID = ref.ID
	}
	return out
}

// pickInBand selects a node at directed distance within [lo, hi] from n in
// dir, proximity-preferring. Returns false if the band is empty.
func (r *Ring) pickInBand(n *Node, dir hashkey.Direction, lo, hi uint64) (Ref, bool) {
	m := len(r.sorted)
	// First candidate: the first node at directed distance >= lo.
	var startKey hashkey.Key
	var first int
	if dir == hashkey.CW {
		startKey = n.Ref.Key + hashkey.Key(lo)
		first = r.successorIdx(startKey)
	} else {
		startKey = n.Ref.Key - hashkey.Key(lo)
		// First node counter-clockwise from startKey: predecessor-or-equal.
		idx := r.searchIndex(startKey)
		if idx < m && r.sorted[idx].Key == startKey {
			first = idx
		} else {
			first = (idx - 1 + m) % m
		}
	}
	best := Ref{ID: NoNode}
	bestDist := 0.0
	step := 1
	if dir == hashkey.CCW {
		step = m - 1 // walk backwards via modular arithmetic
	}
	idx := first
	checked := 0
	limit := r.cfg.ProximityChoices + 1
	for checked < limit {
		ref := r.sorted[idx%m]
		d := hashkey.DirectedDistance(n.Ref.Key, ref.Key, dir)
		if d < lo || d > hi || ref.ID == n.Ref.ID {
			break
		}
		if best.ID == NoNode {
			best = ref
			if r.net != nil && limit > 1 {
				bestDist = r.net.Cost(n.Host, r.nodes[ref.ID].Host)
			} else {
				break // no proximity selection: first match wins
			}
		} else {
			d := r.net.Cost(n.Host, r.nodes[ref.ID].Host)
			if d < bestDist {
				best, bestDist = ref, d
			}
		}
		checked++
		idx = (idx + step) % m
		if idx == first {
			break
		}
	}
	if best.ID == NoNode {
		return Ref{}, false
	}
	return best, true
}

// repairAround rebuilds the leaf sets of the LeafSize nodes on each side
// of key (local join/leave repair).
func (r *Ring) repairAround(key hashkey.Key) {
	m := len(r.sorted)
	if m == 0 {
		return
	}
	start := r.successorIdx(key)
	for off := -r.cfg.LeafSize; off <= r.cfg.LeafSize; off++ {
		ref := r.sorted[((start+off)%m+m)%m]
		r.buildLeafSets(r.nodes[ref.ID])
	}
}

// log2ceil returns ⌈log₂ n⌉ for n ≥ 1.
func log2ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// --- substrate-interface adapters ---------------------------------------
//
// Bristle's core treats its two layers as abstract HS-P2P substrates so
// that other overlays (e.g. the Chord-style one in internal/chord) can
// stand in for this ring, per the paper's closing claim that the concept
// applies to existing HS-P2Ps. The methods below express the Ring in
// those substrate terms.

// Alive reports whether the node is a live member.
func (r *Ring) Alive(id NodeID) bool { return r.Node(id) != nil }

// HostOf returns the node's underlay host, if the node is live.
func (r *Ring) HostOf(id NodeID) (simnet.HostID, bool) {
	n := r.Node(id)
	if n == nil {
		return simnet.NoHost, false
	}
	return n.Host, true
}

// RefOf returns the node's Ref, if live.
func (r *Ring) RefOf(id NodeID) (Ref, bool) {
	n := r.Node(id)
	if n == nil {
		return Ref{}, false
	}
	return n.Ref, true
}

// NeighborsOf returns the node's distinct state entries (nil for departed
// nodes).
func (r *Ring) NeighborsOf(id NodeID) []Ref {
	n := r.Node(id)
	if n == nil {
		return nil
	}
	return n.Neighbors()
}

// ClosestRef returns the Ref of the live node closest to target.
func (r *Ring) ClosestRef(target hashkey.Key) (Ref, bool) {
	n := r.Closest(target)
	if n == nil {
		return Ref{}, false
	}
	return n.Ref, true
}

// NeighborhoodRefs returns the Refs of the k live nodes closest to key,
// nearest first.
func (r *Ring) NeighborhoodRefs(key hashkey.Key, k int) []Ref {
	nodes := r.Neighborhood(key, k)
	out := make([]Ref, len(nodes))
	for i, n := range nodes {
		out[i] = n.Ref
	}
	return out
}

// Refs returns the Refs of all live nodes in key order.
func (r *Ring) Refs() []Ref {
	out := make([]Ref, len(r.sorted))
	copy(out, r.sorted)
	return out
}

// StateSizeOf returns the node's routing-state entry count (0 if departed).
func (r *Ring) StateSizeOf(id NodeID) int {
	n := r.Node(id)
	if n == nil {
		return 0
	}
	return n.StateSize()
}
