package overlay

import (
	"math"
	"math/rand"
	"testing"

	"bristle/internal/hashkey"
	"bristle/internal/simnet"
	"bristle/internal/topology"
)

// buildRing creates a ring of n nodes with random keys over an optional
// underlay.
func buildRing(t testing.TB, n int, seed int64, withNet bool) (*Ring, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var net *simnet.Network
	if withNet {
		g, err := topology.GenerateTransitStub(topology.TransitStubParams{
			TransitDomains:   2,
			TransitPerDomain: 3,
			StubsPerTransit:  3,
			StubPerDomain:    4,
			EdgeProb:         0.3,
			WeightJitter:     0.2,
		}, rng)
		if err != nil {
			t.Fatalf("topology: %v", err)
		}
		net = simnet.NewNetwork(g, nil)
	}
	ring := NewRing(DefaultConfig(), net)
	for i := 0; i < n; i++ {
		var host simnet.HostID = simnet.NoHost
		if net != nil {
			host = net.AttachHostRandom(rng)
		}
		for {
			if _, err := ring.AddNode(hashkey.Random(rng), host); err == nil {
				break
			}
		}
	}
	return ring, rng
}

func TestAddNodeDuplicateKeyRejected(t *testing.T) {
	ring := NewRing(DefaultConfig(), nil)
	if _, err := ring.AddNode(42, simnet.NoHost); err != nil {
		t.Fatal(err)
	}
	if _, err := ring.AddNode(42, simnet.NoHost); err == nil {
		t.Fatal("duplicate key accepted")
	}
}

func TestClosestMatchesBruteForce(t *testing.T) {
	ring, rng := buildRing(t, 200, 1, false)
	nodes := ring.Nodes()
	for trial := 0; trial < 200; trial++ {
		target := hashkey.Random(rng)
		want := nodes[0]
		for _, n := range nodes[1:] {
			if hashkey.Closer(target, n.Ref.Key, want.Ref.Key) {
				want = n
			}
		}
		got := ring.Closest(target)
		if got.Ref.ID != want.Ref.ID {
			t.Fatalf("Closest(%v) = node %d (key %v), brute force %d (key %v)",
				target, got.Ref.ID, got.Ref.Key, want.Ref.ID, want.Ref.Key)
		}
	}
}

func TestRouteReachesClosest(t *testing.T) {
	for _, size := range []int{2, 3, 10, 64, 500} {
		ring, rng := buildRing(t, size, int64(size), false)
		nodes := ring.Nodes()
		for trial := 0; trial < 100; trial++ {
			src := nodes[rng.Intn(len(nodes))]
			target := hashkey.Random(rng)
			res, err := ring.Route(src.Ref.ID, target, nil)
			if err != nil {
				t.Fatalf("size %d: route error: %v", size, err)
			}
			want := ring.Closest(target)
			if res.Dest.ID != want.Ref.ID {
				t.Fatalf("size %d: route dest %d, closest %d (target %v)",
					size, res.Dest.ID, want.Ref.ID, target)
			}
		}
	}
}

func TestRouteToOwnKeyZeroHops(t *testing.T) {
	ring, _ := buildRing(t, 50, 3, false)
	for _, n := range ring.Nodes() {
		res, err := ring.Route(n.Ref.ID, n.Ref.Key, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.NumHops() != 0 || res.Dest.ID != n.Ref.ID {
			t.Fatalf("route to own key took %d hops to %d", res.NumHops(), res.Dest.ID)
		}
	}
}

func TestRouteMonotoneStaysOnArc(t *testing.T) {
	// Every non-final hop key must lie on the closed arc from the source
	// key to the target in the chosen direction — the property Equation (1)
	// and the clustered naming scheme depend on.
	ring, rng := buildRing(t, 300, 4, false)
	nodes := ring.Nodes()
	for trial := 0; trial < 300; trial++ {
		src := nodes[rng.Intn(len(nodes))]
		target := hashkey.Random(rng)
		res, err := ring.Route(src.Ref.ID, target, nil)
		if err != nil {
			t.Fatal(err)
		}
		total := hashkey.DirectedDistance(src.Ref.Key, target, res.Dir)
		for _, h := range res.Hops {
			if h.Final {
				continue
			}
			d := hashkey.DirectedDistance(src.Ref.Key, h.To.Key, res.Dir)
			if d > total {
				t.Fatalf("hop to %v leaves arc (dist %d > total %d, dir %v)",
					h.To.Key, d, total, res.Dir)
			}
		}
	}
}

func TestRouteProgressStrictlyMonotone(t *testing.T) {
	ring, rng := buildRing(t, 300, 5, false)
	nodes := ring.Nodes()
	for trial := 0; trial < 100; trial++ {
		src := nodes[rng.Intn(len(nodes))]
		target := hashkey.Random(rng)
		res, err := ring.Route(src.Ref.ID, target, nil)
		if err != nil {
			t.Fatal(err)
		}
		prev := hashkey.DirectedDistance(src.Ref.Key, target, res.Dir)
		for _, h := range res.Hops {
			if h.Final {
				continue
			}
			d := hashkey.DirectedDistance(h.To.Key, target, res.Dir)
			if d >= prev {
				t.Fatalf("hop did not progress: %d → %d", prev, d)
			}
			prev = d
		}
	}
}

func TestRouteHopsLogarithmic(t *testing.T) {
	// O(log N) claim (§2.3.2 responsiveness): mean hops should stay within
	// a small multiple of log2(N).
	for _, size := range []int{100, 400, 1600} {
		ring, rng := buildRing(t, size, int64(100+size), false)
		nodes := ring.Nodes()
		totalHops := 0
		const trials = 300
		for i := 0; i < trials; i++ {
			src := nodes[rng.Intn(len(nodes))]
			res, err := ring.Route(src.Ref.ID, hashkey.Random(rng), nil)
			if err != nil {
				t.Fatal(err)
			}
			totalHops += res.NumHops()
		}
		mean := float64(totalHops) / trials
		logN := math.Log2(float64(size))
		if mean > 2.0*logN {
			t.Errorf("size %d: mean hops %.2f > 2·log2(N)=%.2f", size, mean, 2*logN)
		}
	}
}

func TestStateSizeLogarithmic(t *testing.T) {
	// O(log N) memory per node (§2.3.2 scalability).
	ring, _ := buildRing(t, 1000, 7, false)
	maxState := 0
	for _, n := range ring.Nodes() {
		if s := n.StateSize(); s > maxState {
			maxState = s
		}
	}
	logN := math.Log2(1000)
	if float64(maxState) > 6*logN {
		t.Errorf("max state size %d exceeds 6·log2(N)=%.1f", maxState, 6*logN)
	}
}

func TestHopVisitorAbort(t *testing.T) {
	ring, rng := buildRing(t, 200, 8, false)
	nodes := ring.Nodes()
	src := nodes[rng.Intn(len(nodes))]
	target := hashkey.Random(rng)
	full, err := ring.Route(src.Ref.ID, target, nil)
	if err != nil {
		t.Fatal(err)
	}
	if full.NumHops() < 2 {
		t.Skip("route too short to abort mid-way")
	}
	seen := 0
	res, err := ring.Route(src.Ref.ID, target, func(Hop) bool {
		seen++
		return seen < 2 // abort before the 2nd hop
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumHops() != 1 {
		t.Fatalf("aborted route recorded %d hops, want 1", res.NumHops())
	}
}

func TestNeighborhoodOrderedAndCorrect(t *testing.T) {
	ring, rng := buildRing(t, 300, 9, false)
	for trial := 0; trial < 50; trial++ {
		target := hashkey.Random(rng)
		k := 1 + rng.Intn(8)
		got := ring.Neighborhood(target, k)
		if len(got) != k {
			t.Fatalf("Neighborhood returned %d, want %d", len(got), k)
		}
		// Nearest-first ordering.
		for i := 1; i < len(got); i++ {
			if hashkey.Closer(target, got[i].Ref.Key, got[i-1].Ref.Key) {
				t.Fatalf("neighborhood not ordered at %d", i)
			}
		}
		// Head must be the closest node overall.
		if got[0].Ref.ID != ring.Closest(target).Ref.ID {
			t.Fatal("neighborhood head is not the closest node")
		}
		// No duplicates.
		seen := map[NodeID]bool{}
		for _, n := range got {
			if seen[n.Ref.ID] {
				t.Fatal("duplicate node in neighborhood")
			}
			seen[n.Ref.ID] = true
		}
	}
}

func TestNeighborhoodClamps(t *testing.T) {
	ring, _ := buildRing(t, 5, 10, false)
	if got := ring.Neighborhood(123, 50); len(got) != 5 {
		t.Fatalf("Neighborhood over-asked returned %d, want 5", len(got))
	}
	if got := ring.Neighborhood(123, 0); got != nil {
		t.Fatal("Neighborhood(k=0) should be nil")
	}
}

func TestRemoveNodeRoutesStillConverge(t *testing.T) {
	ring, rng := buildRing(t, 300, 11, false)
	nodes := ring.Nodes()
	// Remove 30% of nodes.
	for i := 0; i < 90; i++ {
		victim := nodes[rng.Intn(len(nodes))]
		if ring.Node(victim.Ref.ID) == nil {
			continue
		}
		if err := ring.RemoveNode(victim.Ref.ID); err != nil {
			t.Fatal(err)
		}
	}
	ring.Stabilize() // periodic refresh cleans stale fingers
	live := ring.Nodes()
	if len(live) == 0 {
		t.Skip("all nodes removed")
	}
	for trial := 0; trial < 100; trial++ {
		src := live[rng.Intn(len(live))]
		target := hashkey.Random(rng)
		res, err := ring.Route(src.Ref.ID, target, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Dest.ID != ring.Closest(target).Ref.ID {
			t.Fatalf("post-churn route dest %d != closest %d", res.Dest.ID, ring.Closest(target).Ref.ID)
		}
	}
}

func TestRemoveNodeWithoutStabilizeStillConverges(t *testing.T) {
	// Leaf repair alone must keep routing correct (fingers may be stale;
	// dead entries are skipped).
	ring, rng := buildRing(t, 200, 12, false)
	nodes := ring.Nodes()
	for i := 0; i < 40; i++ {
		victim := nodes[rng.Intn(len(nodes))]
		if ring.Node(victim.Ref.ID) == nil {
			continue
		}
		if err := ring.RemoveNode(victim.Ref.ID); err != nil {
			t.Fatal(err)
		}
	}
	live := ring.Nodes()
	for trial := 0; trial < 100; trial++ {
		src := live[rng.Intn(len(live))]
		target := hashkey.Random(rng)
		res, err := ring.Route(src.Ref.ID, target, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Dest.ID != ring.Closest(target).Ref.ID {
			t.Fatalf("stale-finger route dest %d != closest %d", res.Dest.ID, ring.Closest(target).Ref.ID)
		}
	}
}

func TestRemoveUnknownNode(t *testing.T) {
	ring, _ := buildRing(t, 10, 13, false)
	if err := ring.RemoveNode(NodeID(999)); err == nil {
		t.Fatal("removing unknown node succeeded")
	}
	nodes := ring.Nodes()
	if err := ring.RemoveNode(nodes[0].Ref.ID); err != nil {
		t.Fatal(err)
	}
	if err := ring.RemoveNode(nodes[0].Ref.ID); err == nil {
		t.Fatal("double remove succeeded")
	}
}

func TestProximitySelectionReducesHopCost(t *testing.T) {
	// With proximity neighbor selection the mean underlay cost per overlay
	// hop should not exceed the cost without it (usually strictly lower).
	const n = 400
	seed := int64(14)

	meanHopCost := func(prox int) float64 {
		rng := rand.New(rand.NewSource(seed))
		g, err := topology.GenerateTransitStub(topology.TransitStubParams{
			TransitDomains:   3,
			TransitPerDomain: 3,
			StubsPerTransit:  3,
			StubPerDomain:    4,
			EdgeProb:         0.3,
			WeightJitter:     0.2,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		net := simnet.NewNetwork(g, nil)
		ring := NewRing(Config{LeafSize: 4, ProximityChoices: prox}, net)
		for i := 0; i < n; i++ {
			host := net.AttachHostRandom(rng)
			for {
				if _, err := ring.AddNode(hashkey.Random(rng), host); err == nil {
					break
				}
			}
		}
		nodes := ring.Nodes()
		total, hops := 0.0, 0
		for trial := 0; trial < 400; trial++ {
			src := nodes[rng.Intn(len(nodes))]
			res, err := ring.Route(src.Ref.ID, hashkey.Random(rng), nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, h := range res.Hops {
				total += net.Cost(ring.Node(h.From.ID).Host, ring.Node(h.To.ID).Host)
				hops++
			}
		}
		return total / float64(hops)
	}

	withPNS := meanHopCost(4)
	withoutPNS := meanHopCost(0)
	if withPNS > withoutPNS*1.05 {
		t.Errorf("proximity selection made hops costlier: %.2f vs %.2f", withPNS, withoutPNS)
	}
}

func TestRouteGreedyAlsoConverges(t *testing.T) {
	ring, rng := buildRing(t, 300, 15, false)
	nodes := ring.Nodes()
	for trial := 0; trial < 100; trial++ {
		src := nodes[rng.Intn(len(nodes))]
		target := hashkey.Random(rng)
		res, err := ring.RouteGreedy(src.Ref.ID, target, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Dest.ID != ring.Closest(target).Ref.ID {
			t.Fatalf("greedy route dest %d != closest %d", res.Dest.ID, ring.Closest(target).Ref.ID)
		}
	}
}

func TestSingleNodeRing(t *testing.T) {
	ring := NewRing(DefaultConfig(), nil)
	id, err := ring.AddNode(100, simnet.NoHost)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ring.Route(id, 999999, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dest.ID != id || res.NumHops() != 0 {
		t.Fatalf("single-node route: %+v", res)
	}
	if got := ring.Closest(12345); got.Ref.ID != id {
		t.Fatal("single-node Closest broken")
	}
}

func TestRouteFromUnknownNode(t *testing.T) {
	ring, _ := buildRing(t, 10, 16, false)
	if _, err := ring.Route(NodeID(999), 5, nil); err == nil {
		t.Fatal("route from unknown node succeeded")
	}
	if _, err := ring.RouteGreedy(NodeID(999), 5, nil); err == nil {
		t.Fatal("greedy route from unknown node succeeded")
	}
}

func TestNodesSortedByKey(t *testing.T) {
	ring, _ := buildRing(t, 100, 17, false)
	nodes := ring.Nodes()
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1].Ref.Key >= nodes[i].Ref.Key {
			t.Fatal("Nodes() not sorted by key")
		}
	}
}

func TestNeighborsNoDuplicatesNoSelf(t *testing.T) {
	ring, _ := buildRing(t, 200, 18, true)
	for _, n := range ring.Nodes() {
		seen := map[NodeID]bool{}
		for _, ref := range n.Neighbors() {
			if ref.ID == n.Ref.ID {
				t.Fatal("node lists itself as neighbor")
			}
			if seen[ref.ID] {
				t.Fatal("duplicate neighbor entry")
			}
			seen[ref.ID] = true
		}
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := log2ceil(n); got != want {
			t.Errorf("log2ceil(%d) = %d, want %d", n, got, want)
		}
	}
}
