package overlay

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bristle/internal/hashkey"
	"bristle/internal/simnet"
)

// TestPropertyRouteConvergesOnRandomRings builds fresh rings from random
// seeds and checks the central correctness property: Route always reaches
// the oracle-closest node.
func TestPropertyRouteConvergesOnRandomRings(t *testing.T) {
	f := func(seed int64, sizeRaw uint8, targetRaw uint64) bool {
		size := int(sizeRaw%60) + 2
		rng := rand.New(rand.NewSource(seed))
		ring := NewRing(DefaultConfig(), nil)
		for i := 0; i < size; i++ {
			for {
				if _, err := ring.AddNode(hashkey.Random(rng), simnet.NoHost); err == nil {
					break
				}
			}
		}
		nodes := ring.Nodes()
		src := nodes[rng.Intn(len(nodes))]
		target := hashkey.Key(targetRaw)
		res, err := ring.Route(src.Ref.ID, target, nil)
		if err != nil {
			return false
		}
		return res.Dest.ID == ring.Closest(target).Ref.ID
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRouteDeterministic runs the same route twice: identical hop
// sequences (routing state is static between calls).
func TestPropertyRouteDeterministic(t *testing.T) {
	ring, rng := buildRing(t, 200, 31, false)
	nodes := ring.Nodes()
	for trial := 0; trial < 100; trial++ {
		src := nodes[rng.Intn(len(nodes))]
		target := hashkey.Random(rng)
		r1, err1 := ring.Route(src.Ref.ID, target, nil)
		r2, err2 := ring.Route(src.Ref.ID, target, nil)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if len(r1.Hops) != len(r2.Hops) || r1.Dest != r2.Dest {
			t.Fatal("route not deterministic")
		}
		for i := range r1.Hops {
			if r1.Hops[i] != r2.Hops[i] {
				t.Fatal("hop sequences differ")
			}
		}
	}
}

// TestPropertyNeighborhoodContainsClosest: for any key and k ≥ 1, the
// replication neighborhood contains the closest node.
func TestPropertyNeighborhoodContainsClosest(t *testing.T) {
	ring, rng := buildRing(t, 150, 32, false)
	f := func(keyRaw uint64, kRaw uint8) bool {
		key := hashkey.Key(keyRaw)
		k := int(kRaw%10) + 1
		nb := ring.Neighborhood(key, k)
		if len(nb) == 0 {
			return false
		}
		closest := ring.Closest(key)
		for _, n := range nb {
			if n.Ref.ID == closest.Ref.ID {
				return true
			}
		}
		return false
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyNeighborhoodExpandsMonotonically: Neighborhood(key, k) is a
// prefix of Neighborhood(key, k+1).
func TestPropertyNeighborhoodExpandsMonotonically(t *testing.T) {
	ring, rng := buildRing(t, 120, 33, false)
	for trial := 0; trial < 100; trial++ {
		key := hashkey.Random(rng)
		k := 1 + rng.Intn(8)
		small := ring.Neighborhood(key, k)
		big := ring.Neighborhood(key, k+1)
		if len(big) != len(small)+1 {
			t.Fatalf("sizes %d vs %d", len(small), len(big))
		}
		for i := range small {
			if small[i].Ref.ID != big[i].Ref.ID {
				t.Fatal("neighborhood not a prefix of the larger one")
			}
		}
	}
}

// TestPropertyLeafSetsMutual: if y is in x's leaf set (closest l on one
// side), then x is in y's leaf set on the opposite side — ring symmetry
// after a full Stabilize.
func TestPropertyLeafSetsMutual(t *testing.T) {
	ring, _ := buildRing(t, 100, 34, false)
	ring.Stabilize()
	for _, x := range ring.Nodes() {
		for _, yRef := range x.leafCW {
			y := ring.Node(yRef.ID)
			found := false
			for _, back := range y.leafCCW {
				if back.ID == x.Ref.ID {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("leaf symmetry broken: %d has %d CW but not vice versa",
					x.Ref.ID, y.Ref.ID)
			}
		}
	}
}

// TestPropertyStateSizesUniform: no node's state is more than ~4× the
// median (no hotspots in routing state).
func TestPropertyStateSizesUniform(t *testing.T) {
	ring, _ := buildRing(t, 500, 35, false)
	sizes := []int{}
	for _, n := range ring.Nodes() {
		sizes = append(sizes, n.StateSize())
	}
	// Median via simple selection.
	med := sizes[len(sizes)/2]
	for i, s := range sizes {
		if s > 4*med+4 {
			t.Fatalf("node %d state %d vs median %d", i, s, med)
		}
	}
}
