package overlay

import (
	"errors"
	"fmt"

	"bristle/internal/hashkey"
)

// ErrNoProgress is returned when routing stalls before reaching the
// closest node (possible only with corrupted state tables).
var ErrNoProgress = errors.New("overlay: routing made no progress")

// Hop describes one application-level forwarding step.
type Hop struct {
	From Ref
	To   Ref
	// Final marks the terminal leaf-set adjustment hop (the step from the
	// arc predecessor of the target to the globally closest node, which
	// may leave the source→target arc).
	Final bool
}

// HopVisitor observes each hop as it is taken. Returning false aborts the
// route (used by Bristle when an address resolution fails terminally).
type HopVisitor func(Hop) bool

// RouteResult summarizes a completed route.
type RouteResult struct {
	Dest Ref   // node whose key is closest to the target
	Hops []Hop // application-level hops in order; empty if source was closest
	Dir  hashkey.Direction
}

// NumHops returns the application-level hop count.
func (r *RouteResult) NumHops() int { return len(r.Hops) }

// RouteOptions tune route behaviour beyond the defaults.
type RouteOptions struct {
	// ForceDir, when non-nil, routes in the given ring direction instead
	// of picking the shorter arc at the source — the unidirectional
	// (Chord-style) discipline used by the Equation (1) analysis, where a
	// route from x1 to x2 with x1 > x2 must wrap through the low-key
	// region.
	ForceDir *hashkey.Direction

	// Prefer, when non-nil, partitions candidate next hops into preferred
	// and non-preferred. Each hop takes the farthest *preferred* candidate
	// on the arc; non-preferred candidates are used only when no preferred
	// one advances. Bristle uses this to keep stationary-to-stationary
	// routes on stationary forwarders (Section 3 optimization (2)).
	Prefer func(Ref) bool
}

// Route forwards a message from the node src toward the node responsible
// for target, mirroring the paper's Figure 2 loop: while some state entry
// is closer to the target, forward to it. The route is monotone along the
// shorter arc from the source key to the target (every intermediate key
// lies on that arc), followed by at most one leaf-set adjustment hop to
// the globally closest node.
//
// visit (may be nil) observes each hop before it is taken; returning false
// aborts with the partial result and a nil error — the caller decided to
// stop, not the overlay.
func (r *Ring) Route(src NodeID, target hashkey.Key, visit HopVisitor) (RouteResult, error) {
	return r.RouteWithOptions(src, target, RouteOptions{}, visit)
}

// RouteWithOptions is Route with an explicit direction and/or next-hop
// preference policy.
func (r *Ring) RouteWithOptions(src NodeID, target hashkey.Key, opts RouteOptions, visit HopVisitor) (RouteResult, error) {
	cur := r.Node(src)
	if cur == nil {
		return RouteResult{}, fmt.Errorf("overlay: route from unknown node %d", src)
	}
	var dir hashkey.Direction
	if opts.ForceDir != nil {
		dir = *opts.ForceDir
	} else {
		dir, _ = hashkey.ShorterArc(cur.Ref.Key, target)
	}
	res := RouteResult{Dir: dir}

	maxHops := 8 * (log2ceil(r.alive) + 4) // generous safety bound
	for step := 0; step < maxHops; step++ {
		next, ok := r.monotoneNextPreferring(cur, target, dir, opts.Prefer)
		if !ok {
			break
		}
		hop := Hop{From: cur.Ref, To: next}
		if visit != nil && !visit(hop) {
			res.Dest = cur.Ref
			return res, nil
		}
		res.Hops = append(res.Hops, hop)
		nn := r.Node(next.ID)
		if nn == nil {
			return res, fmt.Errorf("overlay: routed to departed node %d", next.ID)
		}
		cur = nn
		if cur.Ref.Key == target {
			res.Dest = cur.Ref
			return res, nil
		}
	}

	// Terminal leaf-set adjustment: cur believes no entry is closer along
	// the arc; the globally closest node is cur or one of its leaves.
	best := cur.Ref
	for _, l := range append(append([]Ref{}, cur.leafCW...), cur.leafCCW...) {
		if r.Node(l.ID) != nil && hashkey.Closer(target, l.Key, best.Key) {
			best = l
		}
	}
	if best.ID != cur.Ref.ID {
		hop := Hop{From: cur.Ref, To: best, Final: true}
		if visit != nil && !visit(hop) {
			res.Dest = cur.Ref
			return res, nil
		}
		res.Hops = append(res.Hops, hop)
		cur = r.Node(best.ID)
	}
	res.Dest = cur.Ref

	// Sanity: with healthy state the destination is the oracle-closest node.
	if len(res.Hops) >= maxHops {
		return res, ErrNoProgress
	}
	return res, nil
}

// monotoneNextPreferring picks the state entry of cur that makes the
// largest progress toward target in direction dir without overshooting,
// restricted to prefer-satisfying candidates when any of them advances.
// ok is false when no live entry lies strictly between cur and target on
// the arc.
func (r *Ring) monotoneNextPreferring(cur *Node, target hashkey.Key, dir hashkey.Direction, prefer func(Ref) bool) (Ref, bool) {
	remain := hashkey.DirectedDistance(cur.Ref.Key, target, dir)
	if remain == 0 {
		return Ref{}, false
	}
	var best, bestPref Ref
	bestAdv, bestPrefAdv := uint64(0), uint64(0)
	consider := func(refs []Ref) {
		for _, ref := range refs {
			if ref.ID == cur.Ref.ID || r.Node(ref.ID) == nil {
				continue
			}
			adv := hashkey.DirectedDistance(cur.Ref.Key, ref.Key, dir)
			if adv == 0 || adv > remain {
				continue // behind us or overshooting: not on the arc segment
			}
			if adv > bestAdv {
				bestAdv = adv
				best = ref
			}
			if prefer != nil && prefer(ref) && adv > bestPrefAdv {
				bestPrefAdv = adv
				bestPref = ref
			}
		}
	}
	if dir == hashkey.CW {
		consider(cur.leafCW)
		consider(cur.fingersCW)
	} else {
		consider(cur.leafCCW)
		consider(cur.fingersCCW)
	}
	if bestPrefAdv > 0 {
		return bestPref, true
	}
	if bestAdv == 0 {
		return Ref{}, false
	}
	return best, true
}

// RouteGreedy is the non-monotone ablation: each hop moves to the state
// entry with minimum shortest-arc distance to the target, regardless of
// direction (it may overshoot and re-cross the target key). Used by the
// BenchmarkAblationMonotone comparison in DESIGN.md §6.
func (r *Ring) RouteGreedy(src NodeID, target hashkey.Key, visit HopVisitor) (RouteResult, error) {
	cur := r.Node(src)
	if cur == nil {
		return RouteResult{}, fmt.Errorf("overlay: route from unknown node %d", src)
	}
	var res RouteResult
	maxHops := 8 * (log2ceil(r.alive) + 4)
	for step := 0; step < maxHops; step++ {
		best := cur.Ref
		for _, ref := range cur.Neighbors() {
			if r.Node(ref.ID) == nil {
				continue
			}
			if hashkey.Closer(target, ref.Key, best.Key) {
				best = ref
			}
		}
		if best.ID == cur.Ref.ID {
			res.Dest = cur.Ref
			return res, nil
		}
		hop := Hop{From: cur.Ref, To: best}
		if visit != nil && !visit(hop) {
			res.Dest = cur.Ref
			return res, nil
		}
		res.Hops = append(res.Hops, hop)
		cur = r.Node(best.ID)
	}
	res.Dest = cur.Ref
	return res, ErrNoProgress
}
