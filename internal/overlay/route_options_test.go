package overlay

import (
	"math/rand"
	"testing"

	"bristle/internal/hashkey"
)

func TestRouteForcedDirectionConverges(t *testing.T) {
	ring, rng := buildRing(t, 300, 21, false)
	nodes := ring.Nodes()
	for _, dir := range []hashkey.Direction{hashkey.CW, hashkey.CCW} {
		dir := dir
		for trial := 0; trial < 100; trial++ {
			src := nodes[rng.Intn(len(nodes))]
			target := hashkey.Random(rng)
			res, err := ring.RouteWithOptions(src.Ref.ID, target,
				RouteOptions{ForceDir: &dir}, nil)
			if err != nil {
				t.Fatalf("dir %v: %v", dir, err)
			}
			if res.Dir != dir {
				t.Fatalf("route ignored forced direction: got %v want %v", res.Dir, dir)
			}
			if res.Dest.ID != ring.Closest(target).Ref.ID {
				t.Fatalf("dir %v: dest %d != closest %d", dir, res.Dest.ID, ring.Closest(target).Ref.ID)
			}
		}
	}
}

func TestRouteForcedDirectionMonotoneInThatDirection(t *testing.T) {
	ring, rng := buildRing(t, 300, 22, false)
	nodes := ring.Nodes()
	cw := hashkey.CW
	for trial := 0; trial < 100; trial++ {
		src := nodes[rng.Intn(len(nodes))]
		target := hashkey.Random(rng)
		res, err := ring.RouteWithOptions(src.Ref.ID, target, RouteOptions{ForceDir: &cw}, nil)
		if err != nil {
			t.Fatal(err)
		}
		prev := hashkey.Clockwise(src.Ref.Key, target)
		for _, h := range res.Hops {
			if h.Final {
				continue
			}
			d := hashkey.Clockwise(h.To.Key, target)
			if d >= prev {
				t.Fatalf("forced-CW hop not monotone: %d → %d", prev, d)
			}
			prev = d
		}
	}
}

func TestRouteForcedDirectionTakesLongWay(t *testing.T) {
	// When the CCW arc is much shorter, a forced-CW route must still go
	// clockwise — more hops, same destination.
	ring, rng := buildRing(t, 500, 23, false)
	nodes := ring.Nodes()
	cw := hashkey.CW
	longer := 0
	for trial := 0; trial < 200; trial++ {
		src := nodes[rng.Intn(len(nodes))]
		target := hashkey.Random(rng)
		if d, _ := hashkey.ShorterArc(src.Ref.Key, target); d != hashkey.CCW {
			continue // want cases where CW is the long way
		}
		free, err := ring.Route(src.Ref.ID, target, nil)
		if err != nil {
			t.Fatal(err)
		}
		forced, err := ring.RouteWithOptions(src.Ref.ID, target, RouteOptions{ForceDir: &cw}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if forced.Dest.ID != free.Dest.ID {
			t.Fatalf("forced route found different destination")
		}
		if forced.NumHops() > free.NumHops() {
			longer++
		}
	}
	if longer == 0 {
		t.Error("forced long-way routes never cost extra hops — suspicious")
	}
}

func TestRoutePreferPolicyHonored(t *testing.T) {
	// Mark half the nodes preferred; every non-final hop should land on a
	// preferred node whenever one advancing existed. We verify the
	// weaker, directly observable property: routes still converge and
	// use strictly more preferred hops than the inverted policy.
	ring, rng := buildRing(t, 400, 24, false)
	nodes := ring.Nodes()
	preferred := map[NodeID]bool{}
	for i, n := range nodes {
		if i%2 == 0 {
			preferred[n.Ref.ID] = true
		}
	}
	countPreferred := func(prefer func(Ref) bool) (hits, total int) {
		for trial := 0; trial < 200; trial++ {
			src := nodes[trial%len(nodes)]
			target := hashkey.Random(rng)
			res, err := ring.RouteWithOptions(src.Ref.ID, target,
				RouteOptions{Prefer: prefer}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if res.Dest.ID != ring.Closest(target).Ref.ID {
				t.Fatal("preference broke convergence")
			}
			for _, h := range res.Hops {
				if h.Final {
					continue
				}
				total++
				if preferred[h.To.ID] {
					hits++
				}
			}
		}
		return hits, total
	}
	rng = rand.New(rand.NewSource(24)) // same targets for both policies
	hitsPro, totalPro := countPreferred(func(r Ref) bool { return preferred[r.ID] })
	rng = rand.New(rand.NewSource(24))
	hitsAnti, totalAnti := countPreferred(func(r Ref) bool { return !preferred[r.ID] })
	fracPro := float64(hitsPro) / float64(totalPro)
	fracAnti := float64(hitsAnti) / float64(totalAnti)
	if fracPro <= fracAnti {
		t.Fatalf("preference had no effect: preferred-hop fraction %v (pro) vs %v (anti)",
			fracPro, fracAnti)
	}
}

func TestRoutePreferNeverBlocksProgress(t *testing.T) {
	// A policy that prefers nothing must behave exactly like no policy.
	ring, rng := buildRing(t, 200, 25, false)
	nodes := ring.Nodes()
	for trial := 0; trial < 100; trial++ {
		src := nodes[rng.Intn(len(nodes))]
		target := hashkey.Random(rng)
		plain, err := ring.Route(src.Ref.ID, target, nil)
		if err != nil {
			t.Fatal(err)
		}
		never, err := ring.RouteWithOptions(src.Ref.ID, target,
			RouteOptions{Prefer: func(Ref) bool { return false }}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if plain.Dest.ID != never.Dest.ID || plain.NumHops() != never.NumHops() {
			t.Fatalf("never-prefer policy changed the route: %d/%d vs %d/%d hops",
				plain.NumHops(), plain.Dest.ID, never.NumHops(), never.Dest.ID)
		}
	}
}
