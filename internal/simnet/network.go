package simnet

import (
	"fmt"
	"math/rand"

	"bristle/internal/topology"
)

// HostID identifies an end host (an overlay node's machine). Hosts are
// dense: 0..NumHosts-1.
type HostID int32

// NoHost is the sentinel for "no host".
const NoHost HostID = -1

// Addr is a network attachment address — the simulation analogue of the
// paper's "IP address and port number". It encodes both the attachment
// router and an epoch that increments every time the host moves, so a
// cached Addr taken before a move no longer matches and models a stale
// state-pair.
type Addr struct {
	Host   HostID
	Router topology.RouterID
	Epoch  uint32
}

// IsZero reports whether a is the zero ("null" / unresolved) address,
// the paper's p.addr = null case.
func (a Addr) IsZero() bool { return a == Addr{} }

// String formats the address like host:router#epoch.
func (a Addr) String() string {
	return fmt.Sprintf("h%d:r%d#%d", a.Host, a.Router, a.Epoch)
}

type hostState struct {
	router topology.RouterID
	epoch  uint32
	alive  bool
}

// Counters aggregates traffic accounting for an experiment run.
type Counters struct {
	MessagesSent      uint64  // delivery attempts issued
	MessagesDelivered uint64  // reached a live host at a current address
	MessagesStale     uint64  // sent to an out-of-date address
	MessagesDead      uint64  // sent to a departed host
	MessagesLost      uint64  // dropped by loss injection
	TotalCost         float64 // sum of underlay path costs of delivered messages
}

// Network models the underlay: hosts attached to stub routers of a weighted
// transit-stub graph. It provides address management, movement, distance
// queries, and (optionally clocked) message delivery with cost accounting.
type Network struct {
	Graph *topology.Graph
	Dist  *topology.DistanceCache
	Sim   *Simulator // may be nil for purely synchronous use

	hosts []hostState
	stubs []topology.RouterID

	// LatencyScale converts underlay path cost to seconds of delivery
	// latency for clocked sends. Default 1e-3 (cost 10 → 10 ms).
	LatencyScale float64

	// lossRate drops clocked sends with this probability (failure
	// injection); lossRNG supplies the coin flips.
	lossRate float64
	lossRNG  *rand.Rand

	Counters Counters
}

// NewNetwork wraps a generated topology. sim may be nil when only
// synchronous cost queries are needed.
func NewNetwork(g *topology.Graph, sim *Simulator) *Network {
	return &Network{
		Graph:        g,
		Dist:         topology.NewDistanceCache(g, 0),
		Sim:          sim,
		stubs:        g.StubRouters(),
		LatencyScale: 1e-3,
	}
}

// NumHosts returns the number of hosts ever attached (including departed).
func (n *Network) NumHosts() int { return len(n.hosts) }

// AttachHost creates a new host on the given router and returns its ID.
func (n *Network) AttachHost(r topology.RouterID) HostID {
	if int(r) >= n.Graph.NumRouters() || r < 0 {
		panic(fmt.Sprintf("simnet: attach to unknown router %d", r))
	}
	id := HostID(len(n.hosts))
	n.hosts = append(n.hosts, hostState{router: r, epoch: 1, alive: true})
	return id
}

// AttachHostRandom attaches a new host to a uniformly random stub router.
func (n *Network) AttachHostRandom(rng *rand.Rand) HostID {
	if len(n.stubs) == 0 {
		panic("simnet: topology has no stub routers")
	}
	return n.AttachHost(n.stubs[rng.Intn(len(n.stubs))])
}

// AddrOf returns the host's current address. Panics on unknown hosts;
// returns the last address (stale by construction) for departed hosts.
func (n *Network) AddrOf(h HostID) Addr {
	st := &n.hosts[h]
	return Addr{Host: h, Router: st.router, Epoch: st.epoch}
}

// RouterOf returns the host's current attachment router.
func (n *Network) RouterOf(h HostID) topology.RouterID { return n.hosts[h].router }

// Alive reports whether the host is attached.
func (n *Network) Alive(h HostID) bool { return n.hosts[h].alive }

// Move reattaches h to router r, invalidating all previously issued
// addresses, and returns the new address. This is the paper's "node moves
// to a new network attachment point".
func (n *Network) Move(h HostID, r topology.RouterID) Addr {
	if int(r) >= n.Graph.NumRouters() || r < 0 {
		panic(fmt.Sprintf("simnet: move to unknown router %d", r))
	}
	st := &n.hosts[h]
	st.router = r
	st.epoch++
	return n.AddrOf(h)
}

// MoveRandom reattaches h to a random stub router different from the
// current one (when more than one exists).
func (n *Network) MoveRandom(h HostID, rng *rand.Rand) Addr {
	cur := n.hosts[h].router
	for tries := 0; tries < 32; tries++ {
		r := n.stubs[rng.Intn(len(n.stubs))]
		if r != cur || len(n.stubs) == 1 {
			return n.Move(h, r)
		}
	}
	return n.Move(h, cur)
}

// Detach marks h as departed; all its addresses become dead.
func (n *Network) Detach(h HostID) {
	n.hosts[h].alive = false
}

// Valid reports whether addr still reaches its host: the host is alive and
// has not moved since the address was issued.
func (n *Network) Valid(addr Addr) bool {
	if addr.IsZero() || int(addr.Host) >= len(n.hosts) {
		return false
	}
	st := &n.hosts[addr.Host]
	return st.alive && st.epoch == addr.Epoch && st.router == addr.Router
}

// Cost returns the underlay shortest-path cost between the *current*
// attachment routers of two hosts.
func (n *Network) Cost(a, b HostID) float64 {
	return n.Dist.Distance(n.hosts[a].router, n.hosts[b].router)
}

// CostToAddr returns the underlay cost from host src to the router encoded
// in addr (regardless of addr validity — wasted traffic still pays cost).
func (n *Network) CostToAddr(src HostID, addr Addr) float64 {
	return n.Dist.Distance(n.hosts[src].router, addr.Router)
}

// RouterDistance exposes raw router-to-router shortest-path cost.
func (n *Network) RouterDistance(a, b topology.RouterID) float64 {
	return n.Dist.Distance(a, b)
}

// SendSync accounts for a synchronous message from src to addr and reports
// whether it was deliverable. Cost accrues whether or not delivery
// succeeds (packets to stale addresses still traverse the network).
func (n *Network) SendSync(src HostID, addr Addr) (delivered bool, cost float64) {
	cost = n.CostToAddr(src, addr)
	n.Counters.MessagesSent++
	switch {
	case addr.IsZero():
		n.Counters.MessagesStale++
		return false, 0
	case !n.hosts[addr.Host].alive:
		n.Counters.MessagesDead++
		return false, cost
	case !n.Valid(addr):
		n.Counters.MessagesStale++
		return false, cost
	default:
		n.Counters.MessagesDelivered++
		n.Counters.TotalCost += cost
		return true, cost
	}
}

// Send delivers payload to addr after the latency implied by underlay cost,
// invoking onDeliver on success or onFail (which may be nil) if the address
// is stale or dead at delivery time. It requires a Simulator.
func (n *Network) Send(src HostID, addr Addr, onDeliver func(), onFail func()) {
	if n.Sim == nil {
		panic("simnet: Send requires a Simulator; use SendSync")
	}
	n.Counters.MessagesSent++
	if addr.IsZero() {
		n.Counters.MessagesStale++
		if onFail != nil {
			n.Sim.Schedule(0, onFail)
		}
		return
	}
	if n.lossRate > 0 && n.lossRNG.Float64() < n.lossRate {
		n.Counters.MessagesLost++
		if onFail != nil {
			n.Sim.Schedule(0, onFail)
		}
		return
	}
	cost := n.CostToAddr(src, addr)
	n.Sim.Schedule(Time(cost*n.LatencyScale), func() {
		if n.Valid(addr) {
			n.Counters.MessagesDelivered++
			n.Counters.TotalCost += cost
			onDeliver()
			return
		}
		if n.hosts[addr.Host].alive {
			n.Counters.MessagesStale++
		} else {
			n.Counters.MessagesDead++
		}
		if onFail != nil {
			onFail()
		}
	})
}

// SetLoss enables loss injection for clocked sends: each Send is dropped
// with probability rate using rng's coin flips. rate 0 disables; rng may
// be nil only when rate is 0.
func (n *Network) SetLoss(rate float64, rng *rand.Rand) {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	if rate > 0 && rng == nil {
		panic("simnet: SetLoss with positive rate needs an rng")
	}
	n.lossRate = rate
	n.lossRNG = rng
}

// StubRouters exposes the underlay's stub routers (host attachment points).
func (n *Network) StubRouters() []topology.RouterID { return n.stubs }

// ResetCounters zeroes the traffic counters between experiment phases.
func (n *Network) ResetCounters() { n.Counters = Counters{} }
