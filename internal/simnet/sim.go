// Package simnet provides the discrete-event simulation substrate for the
// Bristle evaluation: a virtual clock with an event heap, and an underlay
// network model in which hosts attach to stub routers of a transit-stub
// topology, move between attachment points, and exchange messages whose
// latency and cost are shortest-path link-weight sums (Section 4 of the
// paper).
//
// The simulator is deliberately single-threaded: experiments are
// deterministic functions of (topology seed, workload seed), which makes
// every figure in EXPERIMENTS.md reproducible bit-for-bit.
package simnet

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is virtual simulation time in seconds.
type Time float64

// Inf is a time later than any event.
const Inf = Time(math.MaxFloat64)

type event struct {
	at  Time
	seq uint64 // tie-break so same-time events run FIFO
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Simulator is a discrete-event executor. The zero value is ready to use.
type Simulator struct {
	now    Time
	seq    uint64
	events eventHeap
	ran    uint64
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Schedule runs fn at now+delay. Negative delays are clamped to zero
// (the event runs after currently queued same-time events).
func (s *Simulator) Schedule(delay Time, fn func()) {
	if fn == nil {
		panic("simnet: Schedule(nil)")
	}
	if delay < 0 {
		delay = 0
	}
	s.seq++
	heap.Push(&s.events, event{at: s.now + delay, seq: s.seq, fn: fn})
}

// At runs fn at the absolute virtual time t (clamped to now).
func (s *Simulator) At(t Time, fn func()) {
	s.Schedule(t-s.now, fn)
}

// Step executes the next event, if any, and reports whether one ran.
func (s *Simulator) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(event)
	s.now = e.at
	s.ran++
	e.fn()
	return true
}

// Run executes events until the queue drains or the clock passes limit.
// It returns the number of events executed.
func (s *Simulator) Run(limit Time) uint64 {
	start := s.ran
	for len(s.events) > 0 && s.events[0].at <= limit {
		s.Step()
	}
	if s.now < limit && limit != Inf {
		s.now = limit
	}
	return s.ran - start
}

// RunAll executes every queued event (including ones scheduled while
// running) and returns the count. Use only with workloads that quiesce.
func (s *Simulator) RunAll() uint64 {
	return s.Run(Inf)
}

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.events) }

// Executed returns the total number of events run so far.
func (s *Simulator) Executed() uint64 { return s.ran }

// String summarizes simulator state for logs.
func (s *Simulator) String() string {
	return fmt.Sprintf("simnet.Simulator{now=%v pending=%d ran=%d}", s.now, len(s.events), s.ran)
}
