package simnet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bristle/internal/topology"
)

func testGraph(t testing.TB, seed int64) *topology.Graph {
	t.Helper()
	g, err := topology.GenerateTransitStub(topology.TransitStubParams{
		TransitDomains:   2,
		TransitPerDomain: 2,
		StubsPerTransit:  2,
		StubPerDomain:    3,
		EdgeProb:         0.4,
		WeightJitter:     0.1,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	return g
}

func TestSimulatorOrdering(t *testing.T) {
	var sim Simulator
	var got []int
	sim.Schedule(3, func() { got = append(got, 3) })
	sim.Schedule(1, func() { got = append(got, 1) })
	sim.Schedule(2, func() { got = append(got, 2) })
	sim.RunAll()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events ran out of order: %v", got)
	}
	if sim.Now() != 3 {
		t.Fatalf("final clock = %v, want 3", sim.Now())
	}
}

func TestSimulatorFIFOTieBreak(t *testing.T) {
	var sim Simulator
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		sim.Schedule(5, func() { got = append(got, i) })
	}
	sim.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestSimulatorNestedScheduling(t *testing.T) {
	var sim Simulator
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			sim.Schedule(1, tick)
		}
	}
	sim.Schedule(1, tick)
	sim.RunAll()
	if count != 5 {
		t.Fatalf("nested events ran %d times, want 5", count)
	}
	if sim.Now() != 5 {
		t.Fatalf("clock = %v, want 5", sim.Now())
	}
}

func TestSimulatorRunLimit(t *testing.T) {
	var sim Simulator
	ran := 0
	for i := 1; i <= 10; i++ {
		sim.Schedule(Time(i), func() { ran++ })
	}
	n := sim.Run(5)
	if n != 5 || ran != 5 {
		t.Fatalf("Run(5) executed %d events (cb %d), want 5", n, ran)
	}
	if sim.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", sim.Pending())
	}
	if sim.Now() != 5 {
		t.Fatalf("clock advanced to %v, want 5", sim.Now())
	}
	sim.RunAll()
	if ran != 10 {
		t.Fatalf("after RunAll ran=%d, want 10", ran)
	}
}

func TestSimulatorNegativeDelayClamped(t *testing.T) {
	var sim Simulator
	sim.Schedule(10, func() {})
	sim.Step()
	fired := false
	sim.Schedule(-5, func() { fired = true })
	sim.RunAll()
	if !fired {
		t.Fatal("negative-delay event never ran")
	}
	if sim.Now() != 10 {
		t.Fatalf("clock moved backwards: %v", sim.Now())
	}
}

func TestSimulatorAt(t *testing.T) {
	var sim Simulator
	var at Time
	sim.At(7, func() { at = sim.Now() })
	sim.RunAll()
	if at != 7 {
		t.Fatalf("At(7) ran at %v", at)
	}
}

func TestSimulatorScheduleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(nil) did not panic")
		}
	}()
	var sim Simulator
	sim.Schedule(1, nil)
}

func TestClockMonotonicProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		var sim Simulator
		last := Time(-1)
		ok := true
		for _, d := range delays {
			sim.Schedule(Time(d)/100, func() {
				if sim.Now() < last {
					ok = false
				}
				last = sim.Now()
			})
		}
		sim.RunAll()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNetworkAttachMoveValid(t *testing.T) {
	g := testGraph(t, 1)
	net := NewNetwork(g, nil)
	rng := rand.New(rand.NewSource(2))
	h := net.AttachHostRandom(rng)
	a1 := net.AddrOf(h)
	if !net.Valid(a1) {
		t.Fatal("fresh address invalid")
	}
	a2 := net.MoveRandom(h, rng)
	if net.Valid(a1) {
		t.Fatal("pre-move address still valid")
	}
	if !net.Valid(a2) {
		t.Fatal("post-move address invalid")
	}
	if a2.Epoch != a1.Epoch+1 {
		t.Fatalf("epoch %d → %d, want increment", a1.Epoch, a2.Epoch)
	}
	net.Detach(h)
	if net.Valid(a2) {
		t.Fatal("address of departed host still valid")
	}
}

func TestZeroAddrInvalid(t *testing.T) {
	g := testGraph(t, 1)
	net := NewNetwork(g, nil)
	if net.Valid(Addr{}) {
		t.Fatal("zero address must be invalid (paper's null addr)")
	}
	if !(Addr{}).IsZero() {
		t.Fatal("IsZero on zero Addr")
	}
}

func TestSendSyncAccounting(t *testing.T) {
	g := testGraph(t, 3)
	net := NewNetwork(g, nil)
	rng := rand.New(rand.NewSource(4))
	a := net.AttachHostRandom(rng)
	b := net.AttachHostRandom(rng)

	addrB := net.AddrOf(b)
	ok, cost := net.SendSync(a, addrB)
	if !ok {
		t.Fatal("send to fresh address failed")
	}
	if cost != net.Cost(a, b) {
		t.Fatalf("cost %v != Cost() %v", cost, net.Cost(a, b))
	}

	net.MoveRandom(b, rng)
	ok, _ = net.SendSync(a, addrB) // stale
	if ok {
		t.Fatal("send to stale address succeeded")
	}

	net.Detach(b)
	ok, _ = net.SendSync(a, net.AddrOf(b))
	if ok {
		t.Fatal("send to dead host succeeded")
	}

	c := net.Counters
	if c.MessagesSent != 3 || c.MessagesDelivered != 1 || c.MessagesStale != 1 || c.MessagesDead != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestSendClockedDelivery(t *testing.T) {
	g := testGraph(t, 5)
	var sim Simulator
	net := NewNetwork(g, &sim)
	rng := rand.New(rand.NewSource(6))
	a := net.AttachHostRandom(rng)
	b := net.AttachHostRandom(rng)

	delivered := false
	var deliveredAt Time
	net.Send(a, net.AddrOf(b), func() {
		delivered = true
		deliveredAt = sim.Now()
	}, nil)
	sim.RunAll()
	if !delivered {
		t.Fatal("clocked send not delivered")
	}
	wantLatency := Time(net.Cost(a, b) * net.LatencyScale)
	if deliveredAt != wantLatency {
		t.Fatalf("delivered at %v, want %v", deliveredAt, wantLatency)
	}
}

func TestSendClockedStaleAtDeliveryTime(t *testing.T) {
	// The address is valid when the packet leaves but the host moves
	// in-flight: delivery must fail. This models the late-binding race in
	// Section 2.3.2.
	g := testGraph(t, 7)
	var sim Simulator
	net := NewNetwork(g, &sim)
	rng := rand.New(rand.NewSource(8))
	a := net.AttachHostRandom(rng)
	b := net.AttachHostRandom(rng)

	failed := false
	addrB := net.AddrOf(b)
	net.Send(a, addrB, func() { t.Error("delivered to moved host") }, func() { failed = true })
	// Move b before the packet lands (latency > 0 since hosts differ).
	sim.Schedule(0, func() { net.MoveRandom(b, rng) })
	sim.RunAll()
	if !failed {
		t.Fatal("in-flight move did not fail delivery")
	}
	if net.Counters.MessagesStale != 1 {
		t.Fatalf("stale counter = %d", net.Counters.MessagesStale)
	}
}

func TestSendZeroAddrFailsFast(t *testing.T) {
	g := testGraph(t, 9)
	var sim Simulator
	net := NewNetwork(g, &sim)
	rng := rand.New(rand.NewSource(10))
	a := net.AttachHostRandom(rng)
	failed := false
	net.Send(a, Addr{}, func() { t.Error("delivered to null addr") }, func() { failed = true })
	sim.RunAll()
	if !failed {
		t.Fatal("null-address send did not fail")
	}
}

func TestSendWithoutSimulatorPanics(t *testing.T) {
	g := testGraph(t, 9)
	net := NewNetwork(g, nil)
	rng := rand.New(rand.NewSource(10))
	a := net.AttachHostRandom(rng)
	defer func() {
		if recover() == nil {
			t.Fatal("Send without Simulator did not panic")
		}
	}()
	net.Send(a, Addr{}, func() {}, nil)
}

func TestCostSymmetricAndZeroSelf(t *testing.T) {
	g := testGraph(t, 11)
	net := NewNetwork(g, nil)
	rng := rand.New(rand.NewSource(12))
	a := net.AttachHostRandom(rng)
	b := net.AttachHostRandom(rng)
	if net.Cost(a, a) != 0 {
		t.Fatal("self cost nonzero")
	}
	if net.Cost(a, b) != net.Cost(b, a) {
		t.Fatal("cost asymmetric")
	}
}

func TestMoveChangesOnlyTarget(t *testing.T) {
	g := testGraph(t, 13)
	net := NewNetwork(g, nil)
	rng := rand.New(rand.NewSource(14))
	a := net.AttachHostRandom(rng)
	b := net.AttachHostRandom(rng)
	addrA := net.AddrOf(a)
	net.MoveRandom(b, rng)
	if !net.Valid(addrA) {
		t.Fatal("moving b invalidated a's address")
	}
}

func TestLossInjection(t *testing.T) {
	g := testGraph(t, 17)
	var sim Simulator
	net := NewNetwork(g, &sim)
	rng := rand.New(rand.NewSource(18))
	a := net.AttachHostRandom(rng)
	b := net.AttachHostRandom(rng)

	net.SetLoss(0.5, rand.New(rand.NewSource(19)))
	delivered, failed := 0, 0
	const sends = 400
	for i := 0; i < sends; i++ {
		net.Send(a, net.AddrOf(b), func() { delivered++ }, func() { failed++ })
	}
	sim.RunAll()
	if delivered+failed != sends {
		t.Fatalf("accounting: %d+%d != %d", delivered, failed, sends)
	}
	frac := float64(net.Counters.MessagesLost) / sends
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("loss fraction %v, want ≈0.5", frac)
	}
	// Disabling restores full delivery.
	net.SetLoss(0, nil)
	ok := false
	net.Send(a, net.AddrOf(b), func() { ok = true }, nil)
	sim.RunAll()
	if !ok {
		t.Fatal("delivery failed after disabling loss")
	}
}

func TestSetLossValidation(t *testing.T) {
	g := testGraph(t, 17)
	net := NewNetwork(g, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("SetLoss(0.5, nil) did not panic")
		}
	}()
	net.SetLoss(0.5, nil)
}

func TestResetCounters(t *testing.T) {
	g := testGraph(t, 15)
	net := NewNetwork(g, nil)
	rng := rand.New(rand.NewSource(16))
	a := net.AttachHostRandom(rng)
	b := net.AttachHostRandom(rng)
	net.SendSync(a, net.AddrOf(b))
	net.ResetCounters()
	if net.Counters != (Counters{}) {
		t.Fatalf("counters not reset: %+v", net.Counters)
	}
}
