// Package store implements replicated data placement on a structured
// overlay — the HS-P2P storage substrate the paper builds on (§2.3.2):
// "a data item published to a HS-P2P can simply be replicated to k nodes
// clustered with the hash keys closest to the one represented the data
// item. Once one of these nodes fails, the requested data item can be
// rapidly accessed in the remaining k−1 nodes."
//
// The store also quantifies the data-churn cost the paper's introduction
// attributes to mobility: when node keys are bound to addresses (Type A),
// every movement re-keys a node and forces item transfers; under Bristle
// keys survive movement and placement is stable.
package store

import (
	"errors"
	"fmt"

	"bristle/internal/hashkey"
	"bristle/internal/overlay"
)

// ErrNotFound is returned when no replica holds the requested item.
var ErrNotFound = errors.New("store: item not found")

// Item is one stored object.
type Item struct {
	Key     hashkey.Key
	Value   []byte
	Version uint64 // monotonically increasing per key
}

// Stats counts storage-plane traffic.
type Stats struct {
	Puts         uint64
	Gets         uint64
	GetFallbacks uint64 // reads served by a non-primary replica
	GetMisses    uint64
	RouteHops    uint64 // overlay hops spent locating primaries
	Transfers    uint64 // item copies moved during rebalancing
	Drops        uint64 // surplus copies removed during rebalancing
}

// Substrate is the minimal structured-overlay surface the store needs;
// both internal/overlay.Ring and internal/chord.Chord satisfy it (a
// subset of core.Substrate).
type Substrate interface {
	// Route forwards toward the node responsible for target.
	Route(src overlay.NodeID, target hashkey.Key, visit overlay.HopVisitor) (overlay.RouteResult, error)
	// NeighborhoodRefs returns the k-node replication set for key.
	NeighborhoodRefs(key hashkey.Key, k int) []overlay.Ref
	// Alive reports node liveness.
	Alive(id overlay.NodeID) bool
}

// Store is a replicated key-value layer over a structured overlay. It is
// not safe for concurrent use (experiments are single-threaded).
type Store struct {
	ring Substrate
	k    int

	// frag holds each node's storage fragment.
	frag map[overlay.NodeID]map[hashkey.Key]Item

	// Stats accumulates traffic counters.
	Stats Stats
}

// New creates a store over the substrate with replication factor k (min 1).
func New(ring Substrate, k int) *Store {
	if k < 1 {
		k = 1
	}
	return &Store{
		ring: ring,
		k:    k,
		frag: make(map[overlay.NodeID]map[hashkey.Key]Item),
	}
}

// ReplicationFactor returns k.
func (s *Store) ReplicationFactor() int { return s.k }

// fragOf returns (creating) a node's fragment.
func (s *Store) fragOf(id overlay.NodeID) map[hashkey.Key]Item {
	f, ok := s.frag[id]
	if !ok {
		f = make(map[hashkey.Key]Item)
		s.frag[id] = f
	}
	return f
}

// Put routes from the given node to the item's primary and replicates it
// to the k closest nodes. The new version number is returned.
func (s *Store) Put(from overlay.NodeID, key hashkey.Key, value []byte) (uint64, error) {
	res, err := s.ring.Route(from, key, nil)
	if err != nil {
		return 0, fmt.Errorf("store: put route: %w", err)
	}
	s.Stats.Puts++
	s.Stats.RouteHops += uint64(res.NumHops())

	version := uint64(1)
	if cur, ok := s.fragOf(res.Dest.ID)[key]; ok {
		version = cur.Version + 1
	}
	item := Item{Key: key, Value: append([]byte(nil), value...), Version: version}
	for _, ref := range s.ring.NeighborhoodRefs(key, s.k) {
		s.fragOf(ref.ID)[key] = item
	}
	return version, nil
}

// Get routes from the given node to the primary and reads the item,
// falling over to the remaining replicas if the primary lacks it.
func (s *Store) Get(from overlay.NodeID, key hashkey.Key) (Item, error) {
	res, err := s.ring.Route(from, key, nil)
	if err != nil {
		return Item{}, fmt.Errorf("store: get route: %w", err)
	}
	s.Stats.Gets++
	s.Stats.RouteHops += uint64(res.NumHops())

	if item, ok := s.fragOf(res.Dest.ID)[key]; ok {
		return item, nil
	}
	// §2.3.2 availability: read the remaining k−1 replicas.
	for _, ref := range s.ring.NeighborhoodRefs(key, s.k) {
		if ref.ID == res.Dest.ID {
			continue
		}
		if item, ok := s.fragOf(ref.ID)[key]; ok {
			s.Stats.GetFallbacks++
			return item, nil
		}
	}
	s.Stats.GetMisses++
	return Item{}, ErrNotFound
}

// ItemsOn returns the number of items stored on a node.
func (s *Store) ItemsOn(id overlay.NodeID) int { return len(s.frag[id]) }

// TotalCopies returns the number of item copies across all fragments.
func (s *Store) TotalCopies() int {
	total := 0
	for _, f := range s.frag {
		total += len(f)
	}
	return total
}

// DropNode discards a departed node's fragment (the data it held is gone;
// replicas keep the items alive until Rebalance restores full
// replication).
func (s *Store) DropNode(id overlay.NodeID) {
	delete(s.frag, id)
}

// Rebalance restores the placement invariant after churn: every item
// resides on exactly the k live nodes closest to its key. It returns the
// number of copies transferred to new replicas; surplus copies on nodes
// that are no longer replicas are dropped. The scan touches every stored
// item (an anti-entropy sweep a deployment would amortize).
func (s *Store) Rebalance() (transferred int) {
	// Gather the authoritative copy (highest version) of every item.
	latest := make(map[hashkey.Key]Item)
	for id, f := range s.frag {
		if !s.ring.Alive(id) {
			// Fragment of a departed node that was never dropped.
			delete(s.frag, id)
			continue
		}
		for k, item := range f {
			if cur, ok := latest[k]; !ok || item.Version > cur.Version {
				latest[k] = item
			}
		}
	}
	// Compute desired placement and apply the diff.
	desired := make(map[overlay.NodeID]map[hashkey.Key]Item, len(s.frag))
	for k, item := range latest {
		for _, ref := range s.ring.NeighborhoodRefs(k, s.k) {
			m, ok := desired[ref.ID]
			if !ok {
				m = make(map[hashkey.Key]Item)
				desired[ref.ID] = m
			}
			m[k] = item
		}
	}
	for id, want := range desired {
		have := s.fragOf(id)
		for k, item := range want {
			if cur, ok := have[k]; !ok || cur.Version < item.Version {
				have[k] = item
				transferred++
				s.Stats.Transfers++
			}
		}
	}
	for id, have := range s.frag {
		want := desired[id]
		for k := range have {
			if want == nil {
				delete(have, k)
				s.Stats.Drops++
				continue
			}
			if _, ok := want[k]; !ok {
				delete(have, k)
				s.Stats.Drops++
			}
		}
	}
	return transferred
}

// CheckPlacement verifies the invariant that every item's replica set is
// exactly the k closest live nodes; it returns the number of violations
// (0 after a successful Rebalance).
func (s *Store) CheckPlacement() int {
	violations := 0
	seen := make(map[hashkey.Key]bool)
	for _, f := range s.frag {
		for k := range f {
			if seen[k] {
				continue
			}
			seen[k] = true
			for _, ref := range s.ring.NeighborhoodRefs(k, s.k) {
				if _, ok := s.fragOf(ref.ID)[k]; !ok {
					violations++
				}
			}
		}
	}
	return violations
}
