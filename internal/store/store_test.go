package store

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"bristle/internal/chord"
	"bristle/internal/hashkey"
	"bristle/internal/overlay"
	"bristle/internal/simnet"
)

func buildRing(t testing.TB, n int, seed int64) (*overlay.Ring, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ring := overlay.NewRing(overlay.DefaultConfig(), nil)
	for i := 0; i < n; i++ {
		for {
			if _, err := ring.AddNode(hashkey.Random(rng), simnet.NoHost); err == nil {
				break
			}
		}
	}
	return ring, rng
}

func anyNode(ring *overlay.Ring, rng *rand.Rand) overlay.NodeID {
	nodes := ring.Nodes()
	return nodes[rng.Intn(len(nodes))].Ref.ID
}

func TestPutGetRoundTrip(t *testing.T) {
	ring, rng := buildRing(t, 100, 1)
	s := New(ring, 3)
	key := hashkey.FromName("object-1")
	v, err := s.Put(anyNode(ring, rng), key, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("first version = %d", v)
	}
	item, err := s.Get(anyNode(ring, rng), key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(item.Value, []byte("hello")) {
		t.Fatalf("value = %q", item.Value)
	}
}

func TestGetMissing(t *testing.T) {
	ring, rng := buildRing(t, 50, 2)
	s := New(ring, 2)
	if _, err := s.Get(anyNode(ring, rng), hashkey.FromName("ghost")); err != ErrNotFound {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if s.Stats.GetMisses != 1 {
		t.Fatalf("miss counter = %d", s.Stats.GetMisses)
	}
}

func TestPutOverwriteBumpsVersion(t *testing.T) {
	ring, rng := buildRing(t, 80, 3)
	s := New(ring, 3)
	key := hashkey.FromName("versioned")
	from := anyNode(ring, rng)
	if _, err := s.Put(from, key, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Put(from, key, []byte("v2"))
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("second version = %d", v)
	}
	item, err := s.Get(from, key)
	if err != nil {
		t.Fatal(err)
	}
	if string(item.Value) != "v2" || item.Version != 2 {
		t.Fatalf("got %q v%d", item.Value, item.Version)
	}
}

func TestReplicationCount(t *testing.T) {
	ring, rng := buildRing(t, 100, 4)
	s := New(ring, 4)
	key := hashkey.FromName("replicated")
	if _, err := s.Put(anyNode(ring, rng), key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := s.TotalCopies(); got != 4 {
		t.Fatalf("copies = %d, want 4", got)
	}
	if v := s.CheckPlacement(); v != 0 {
		t.Fatalf("placement violations = %d", v)
	}
}

func TestValueIsolation(t *testing.T) {
	// The store must copy values: caller mutation after Put must not leak.
	ring, rng := buildRing(t, 60, 5)
	s := New(ring, 2)
	key := hashkey.FromName("isolated")
	buf := []byte("original")
	from := anyNode(ring, rng)
	if _, err := s.Put(from, key, buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "MUTATED!")
	item, err := s.Get(from, key)
	if err != nil {
		t.Fatal(err)
	}
	if string(item.Value) != "original" {
		t.Fatalf("stored value aliased caller buffer: %q", item.Value)
	}
}

func TestSurvivesPrimaryLoss(t *testing.T) {
	ring, rng := buildRing(t, 120, 6)
	s := New(ring, 3)
	key := hashkey.FromName("durable")
	from := anyNode(ring, rng)
	if _, err := s.Put(from, key, []byte("keep me")); err != nil {
		t.Fatal(err)
	}
	// Kill the primary: the item survives on the k−1 remaining replicas
	// and the next-closest of them serves the read directly.
	primary := ring.Closest(key)
	if err := ring.RemoveNode(primary.Ref.ID); err != nil {
		t.Fatal(err)
	}
	s.DropNode(primary.Ref.ID)
	if ring.Node(from) == nil {
		from = anyNode(ring, rng)
	}
	item, err := s.Get(from, key)
	if err != nil {
		t.Fatalf("read after primary loss: %v", err)
	}
	if string(item.Value) != "keep me" {
		t.Fatalf("value = %q", item.Value)
	}
}

func TestGetFallbackWhenPrimaryLacksItem(t *testing.T) {
	// A node joining right at the key becomes the route destination but
	// holds no data until the next rebalance: the read must fall over to
	// the replicas that do.
	ring, rng := buildRing(t, 120, 6)
	s := New(ring, 3)
	key := hashkey.FromName("fallback")
	from := anyNode(ring, rng)
	if _, err := s.Put(from, key, []byte("keep me")); err != nil {
		t.Fatal(err)
	}
	if _, err := ring.AddNode(key, simnet.NoHost); err != nil {
		t.Fatal(err)
	}
	item, err := s.Get(from, key)
	if err != nil {
		t.Fatalf("read behind fresh join: %v", err)
	}
	if string(item.Value) != "keep me" {
		t.Fatalf("value = %q", item.Value)
	}
	if s.Stats.GetFallbacks == 0 {
		t.Fatal("fallback not recorded")
	}
}

func TestRebalanceRestoresReplication(t *testing.T) {
	ring, rng := buildRing(t, 150, 7)
	s := New(ring, 3)
	keys := make([]hashkey.Key, 60)
	from := anyNode(ring, rng)
	for i := range keys {
		keys[i] = hashkey.Random(rng)
		if _, err := s.Put(from, keys[i], []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Kill a third of the ring in batches, with an anti-entropy sweep
	// between batches — replication only protects data when repair runs
	// faster than correlated replica loss, exactly like a deployment.
	nodes := ring.Nodes()
	totalMoved := 0
	killed := 0
	for killed < 50 {
		for batch := 0; batch < 5 && killed < 50; batch++ {
			victim := nodes[rng.Intn(len(nodes))]
			if ring.Node(victim.Ref.ID) == nil || victim.Ref.ID == from {
				continue
			}
			if err := ring.RemoveNode(victim.Ref.ID); err != nil {
				t.Fatal(err)
			}
			s.DropNode(victim.Ref.ID)
			killed++
		}
		ring.Stabilize()
		totalMoved += s.Rebalance()
	}

	if v := s.CheckPlacement(); v != 0 {
		t.Fatalf("placement violations after rebalance: %d", v)
	}
	if totalMoved == 0 {
		t.Fatal("rebalance after heavy churn moved nothing — suspicious")
	}
	// Every item is still readable with its latest value.
	for i, k := range keys {
		item, err := s.Get(from, k)
		if err != nil {
			t.Fatalf("item %d lost after churn+rebalance: %v", i, err)
		}
		if len(item.Value) != 1 || item.Value[0] != byte(i) {
			t.Fatalf("item %d corrupted", i)
		}
	}
}

func TestRebalanceDropsSurplus(t *testing.T) {
	ring, rng := buildRing(t, 100, 8)
	s := New(ring, 2)
	key := hashkey.FromName("surplus")
	from := anyNode(ring, rng)
	if _, err := s.Put(from, key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// A join right at the key shifts the replica set; the old copy
	// becomes surplus after rebalance.
	if _, err := ring.AddNode(key, simnet.NoHost); err != nil {
		t.Fatal(err)
	}
	s.Rebalance()
	if got := s.TotalCopies(); got != 2 {
		t.Fatalf("copies after join+rebalance = %d, want 2", got)
	}
	if v := s.CheckPlacement(); v != 0 {
		t.Fatalf("placement violations = %d", v)
	}
	// The new closest node must hold it now.
	if s.ItemsOn(ring.Closest(key).Ref.ID) != 1 {
		t.Fatal("new primary does not hold the item")
	}
}

func TestRebalanceKeepsNewestVersion(t *testing.T) {
	ring, rng := buildRing(t, 100, 9)
	s := New(ring, 3)
	key := hashkey.FromName("latest-wins")
	from := anyNode(ring, rng)
	for v := 1; v <= 5; v++ {
		if _, err := s.Put(from, key, []byte{byte(v)}); err != nil {
			t.Fatal(err)
		}
	}
	s.Rebalance()
	item, err := s.Get(from, key)
	if err != nil {
		t.Fatal(err)
	}
	if item.Version != 5 || item.Value[0] != 5 {
		t.Fatalf("got v%d value %v", item.Version, item.Value)
	}
}

func TestPlacementStableUnderKeyPreservingMovement(t *testing.T) {
	// Bristle's whole point for storage: movement does not change keys,
	// so placement is untouched — zero transfers. (A Type A move re-keys
	// the node; TestRebalanceDropsSurplus shows a single key shift already
	// forces transfers.)
	ring, rng := buildRing(t, 100, 10)
	s := New(ring, 3)
	from := anyNode(ring, rng)
	for i := 0; i < 40; i++ {
		if _, err := s.Put(from, hashkey.Random(rng), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// "Movement" that preserves keys = no ring change at all.
	if moved := s.Rebalance(); moved != 0 {
		t.Fatalf("key-preserving movement transferred %d copies, want 0", moved)
	}
}

func TestPropertyAllPutsReadable(t *testing.T) {
	ring, rng := buildRing(t, 80, 11)
	s := New(ring, 3)
	from := anyNode(ring, rng)
	f := func(raw []byte, seed uint32) bool {
		key := hashkey.FromBytes(append(raw, byte(seed)))
		if _, err := s.Put(from, key, raw); err != nil {
			return false
		}
		item, err := s.Get(from, key)
		if err != nil {
			return false
		}
		return bytes.Equal(item.Value, raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStoreOnChordSubstrate(t *testing.T) {
	// The store is substrate-generic: the same operations run on Chord's
	// successor-based geometry.
	rng := rand.New(rand.NewSource(13))
	ch := chord.New(chord.DefaultConfig(), nil)
	for i := 0; i < 100; i++ {
		for {
			if _, err := ch.AddNode(hashkey.Random(rng), simnet.NoHost); err == nil {
				break
			}
		}
	}
	s := New(ch, 3)
	client := ch.Refs()[0].ID
	keys := make([]hashkey.Key, 30)
	for i := range keys {
		keys[i] = hashkey.Random(rng)
		if _, err := s.Put(client, keys[i], []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if v := s.CheckPlacement(); v != 0 {
		t.Fatalf("placement violations on chord: %d", v)
	}
	// Churn + repair still preserves everything.
	refs := ch.Refs()
	for i := 0; i < 20; i++ {
		victim := refs[rng.Intn(len(refs))]
		if !ch.Alive(victim.ID) || victim.ID == client {
			continue
		}
		if err := ch.RemoveNode(victim.ID); err != nil {
			t.Fatal(err)
		}
		s.DropNode(victim.ID)
		if i%5 == 4 {
			ch.Stabilize()
			s.Rebalance()
		}
	}
	ch.Stabilize()
	s.Rebalance()
	for i, k := range keys {
		item, err := s.Get(client, k)
		if err != nil {
			t.Fatalf("item %d lost on chord: %v", i, err)
		}
		if item.Value[0] != byte(i) {
			t.Fatalf("item %d corrupted", i)
		}
	}
}

func TestReplicationClampedToRingSize(t *testing.T) {
	ring, rng := buildRing(t, 2, 12)
	s := New(ring, 10)
	key := hashkey.FromName("tiny-ring")
	if _, err := s.Put(anyNode(ring, rng), key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := s.TotalCopies(); got != 2 {
		t.Fatalf("copies = %d, want 2 (ring size)", got)
	}
}
