package stretch

// The recorded stretch evaluation (make bench-stretch → BENCH_stretch.json):
// one 10k-router transit-stub run per variant, same seed and workload, so
// the three metric sets are directly comparable. benchgate holds the
// proximity median under its ceiling and the random baseline above its
// floor — the gap is the feature.

import "testing"

func benchConfig(placement, ordering bool) Config {
	return Config{
		Seed:            42,
		Routers:         10000,
		Stationary:      1024,
		Records:         2048,
		Clients:         128,
		Replication:     4,
		Correspondents:  8,
		Warmup:          12,
		Queries:         4096,
		RegionPlacement: placement,
		LatencyOrdering: ordering,
		RTTNoise:        0.1,
	}
}

func runStretchBench(b *testing.B, placement, ordering bool) {
	for i := 0; i < b.N; i++ {
		res, err := Run(benchConfig(placement, ordering))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MedianStretch, "median-stretch/op")
		b.ReportMetric(res.P90Stretch, "p90-stretch/op")
		b.ReportMetric(res.MeanChosenCost, "mean-cost/op")
	}
}

// BenchmarkStretchProximity10k: region-striped placement + latency
// ordering — the full proximity stack.
func BenchmarkStretchProximity10k(b *testing.B) { runStretchBench(b, true, true) }

// BenchmarkStretchOrderingOnly10k: latency ordering over plain-hash
// replica sets — what a deployment gets without WithRegion.
func BenchmarkStretchOrderingOnly10k(b *testing.B) { runStretchBench(b, false, true) }

// BenchmarkStretchRandom10k: the pre-proximity baseline — key-distance
// placement, key-distance contact order.
func BenchmarkStretchRandom10k(b *testing.B) { runStretchBench(b, false, false) }
