// Package stretch measures resolution stretch — the underlay cost a
// client pays contacting the replica it picked, over the cost of the
// best (nearest live) replica of the same record — on generated
// transit-stub topologies with Dijkstra ground-truth distances.
//
// It is the honest evaluation for proximity-aware resolution: the
// replica placement is exactly the live node's (hashkey.RegionStriped
// keys, live.SelectReplicas region-diverse k-closest sets) and the
// contact ordering is exactly the live node's (live.OrderReplicas over
// per-peer EWMA RTT estimates fed only by the client's own exchanges,
// with the same exploration jitter for unmeasured peers). Toggling
// RegionPlacement and LatencyOrdering isolates each mechanism's
// contribution; the random baseline (both off) is the pre-proximity
// behavior. Runs are fully deterministic per seed.
package stretch

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"bristle/internal/hashkey"
	"bristle/internal/live"
	"bristle/internal/metrics"
	"bristle/internal/simnet"
	"bristle/internal/topology"
	"bristle/internal/wire"
)

// rttAlpha mirrors the live node's EWMA smoothing factor.
const rttAlpha = 0.25

// costToRTT converts an underlay one-way path cost to the round-trip
// duration a client would measure (cost 10 → 20ms), matching simnet's
// LatencyScale convention of cost-as-milliseconds.
func costToRTT(cost float64) time.Duration {
	return time.Duration(2 * cost * float64(time.Millisecond))
}

// Config parameterizes one stretch run.
type Config struct {
	Seed    int64
	Routers int // target router count for the transit-stub generator

	Stationary  int // stationary overlay nodes (replica hosts)
	Records     int // published records (global pool)
	Clients     int // resolving clients
	Replication int // replicas per record

	// Correspondents is each client's working-set size: the records it
	// repeatedly resolves (per-peer RTT estimation only helps traffic a
	// client actually repeats, so the workload models the paper's
	// correspondent-host pattern rather than uniform one-shot lookups).
	Correspondents int
	// Warmup is how many rounds over its correspondent set each client
	// runs before measurement — the exchanges that feed its estimators.
	Warmup int
	// Queries is the number of measured resolutions across all clients.
	Queries int

	// RegionPlacement keys stationary nodes with hashkey.RegionStriped
	// (region = serving transit domain) and selects replica sets with
	// region diversity, as a live deployment configured WithRegion does.
	RegionPlacement bool
	// LatencyOrdering contacts replicas in live.OrderReplicas order
	// (measured EWMA RTT, exploration jitter for unknowns). Off, clients
	// contact replicas in placement (key-distance) order.
	LatencyOrdering bool
	// RTTNoise perturbs each RTT observation by a uniform multiplicative
	// factor in [1-RTTNoise, 1+RTTNoise] — measurement jitter.
	RTTNoise float64
}

// Result is the outcome of one run.
type Result struct {
	MedianStretch float64
	P90Stretch    float64
	MeanStretch   float64

	MeanChosenCost float64 // mean underlay cost to the contacted replica
	MeanBestCost   float64 // mean cost to the nearest replica (lower bound)

	Queries          int // measured resolutions contributing a stretch sample
	SkippedColocated int // resolutions where the best replica cost 0 (same router)

	Routers    int
	Regions    int
	Stationary int
}

type client struct {
	host           simnet.HostID
	correspondents []int                    // record indices
	est            map[string]*metrics.EWMA // addr → RTT estimator
}

// Run executes one deterministic stretch experiment.
func Run(cfg Config) (Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g, err := topology.GenerateTransitStub(topology.DefaultTransitStub(cfg.Routers), rng)
	if err != nil {
		return Result{}, err
	}
	net := simnet.NewNetwork(g, nil)

	// Region labels come from the underlay itself: every host behind the
	// same transit domain shares a geography.
	domains := map[int32]bool{}
	for _, r := range g.StubRouters() {
		domains[g.TransitDomainOf(r)] = true
	}
	regions := make([]string, 0, len(domains))
	for d := range domains {
		regions = append(regions, fmt.Sprintf("region-%02d", d))
	}
	sort.Strings(regions)
	regionOfDomain := func(d int32) string { return fmt.Sprintf("region-%02d", d) }

	// Stationary nodes: attached to random stub routers, keyed either by
	// plain hashing or region-striped by their transit domain.
	arc := hashkey.FullRing()
	cands := make([]wire.Entry, cfg.Stationary)
	hostOf := make(map[string]simnet.HostID, cfg.Stationary)
	for i := 0; i < cfg.Stationary; i++ {
		h := net.AttachHostRandom(rng)
		name := fmt.Sprintf("s%d", i)
		key := hashkey.FromName(name)
		if cfg.RegionPlacement {
			region := regionOfDomain(g.TransitDomainOf(net.RouterOf(h)))
			key = hashkey.RegionStriped(arc, name, region, regions)
		}
		cands[i] = wire.Entry{Key: key, Addr: name}
		hostOf[name] = h
	}

	// Replica sets, exactly as every live node computes them from the
	// same membership snapshot.
	selectionRegions := 0
	if cfg.RegionPlacement {
		selectionRegions = len(regions)
	}
	replicaSets := make([][]wire.Entry, cfg.Records)
	scratch := make([]wire.Entry, len(cands))
	for r := 0; r < cfg.Records; r++ {
		key := hashkey.FromName(fmt.Sprintf("record-%d", r))
		copy(scratch, cands)
		set := live.SelectReplicas(scratch, key, cfg.Replication, selectionRegions)
		replicaSets[r] = append([]wire.Entry(nil), set...)
	}

	clients := make([]client, cfg.Clients)
	for c := range clients {
		clients[c] = client{
			host: net.AttachHostRandom(rng),
			est:  make(map[string]*metrics.EWMA),
		}
		for i := 0; i < cfg.Correspondents; i++ {
			clients[c].correspondents = append(clients[c].correspondents, rng.Intn(cfg.Records))
		}
	}

	observe := func(cl *client, addr string, cost float64) {
		rtt := costToRTT(cost)
		if cfg.RTTNoise > 0 {
			rtt = time.Duration(float64(rtt) * (1 + cfg.RTTNoise*(2*rng.Float64()-1)))
		}
		e, ok := cl.est[addr]
		if !ok {
			e = &metrics.EWMA{}
			cl.est[addr] = e
		}
		e.Observe(float64(rtt), rttAlpha)
	}

	// contact resolves one record for one client: it picks the contact
	// order (live.OrderReplicas over the client's estimates when ordering
	// is on; placement order otherwise), "sends" to the first replica —
	// every replica is alive here, so discovery succeeds on the first
	// contact — and feeds the client's estimator exactly as the live RPC
	// layer does from a successful exchange.
	ordered := make([]wire.Entry, cfg.Replication)
	contact := func(cl *client, record int) (chosenCost float64) {
		set := replicaSets[record]
		replicas := ordered[:len(set)]
		copy(replicas, set)
		if cfg.LatencyOrdering {
			eff := make(map[string]time.Duration, len(replicas))
			var sum time.Duration
			known := 0
			for _, e := range replicas {
				if est, ok := cl.est[e.Addr]; ok {
					if v, n := est.Load(); n > 0 {
						eff[e.Addr] = time.Duration(v)
						sum += eff[e.Addr]
						known++
					}
				}
			}
			// The live node's exploration policy: unknowns draw uniformly
			// in [0, mean of the measured]; floor 1ms when nothing is.
			mean := time.Millisecond
			if known > 0 {
				if mean = sum / time.Duration(known); mean <= 0 {
					mean = 1
				}
			}
			for _, e := range replicas {
				if _, ok := eff[e.Addr]; !ok {
					eff[e.Addr] = time.Duration(rng.Int63n(int64(mean) + 1))
				}
			}
			live.OrderReplicas(replicas, nil, eff)
		}
		chosen := replicas[0]
		_, cost := net.SendSync(cl.host, net.AddrOf(hostOf[chosen.Addr]))
		observe(cl, chosen.Addr, cost)
		return cost
	}

	for round := 0; round < cfg.Warmup; round++ {
		for c := range clients {
			cl := &clients[c]
			for _, record := range cl.correspondents {
				contact(cl, record)
			}
		}
	}

	res := Result{Routers: g.NumRouters(), Regions: len(regions), Stationary: cfg.Stationary}
	stretches := make([]float64, 0, cfg.Queries)
	var sumChosen, sumBest float64
	for q := 0; q < cfg.Queries; q++ {
		cl := &clients[q%len(clients)]
		record := cl.correspondents[rng.Intn(len(cl.correspondents))]
		chosenCost := contact(cl, record)
		best := chosenCost
		for _, e := range replicaSets[record] {
			if c := net.Cost(cl.host, hostOf[e.Addr]); c < best {
				best = c
			}
		}
		sumChosen += chosenCost
		sumBest += best
		if best == 0 {
			// The client shares a router with the nearest replica; the
			// ratio is undefined, the absolute costs still accumulate.
			res.SkippedColocated++
			continue
		}
		stretches = append(stretches, chosenCost/best)
	}
	res.Queries = len(stretches)
	if total := res.Queries + res.SkippedColocated; total > 0 {
		res.MeanChosenCost = sumChosen / float64(total)
		res.MeanBestCost = sumBest / float64(total)
	}
	if len(stretches) > 0 {
		sort.Float64s(stretches)
		res.MedianStretch = quantile(stretches, 0.5)
		res.P90Stretch = quantile(stretches, 0.9)
		var sum float64
		for _, s := range stretches {
			sum += s
		}
		res.MeanStretch = sum / float64(len(stretches))
	}
	return res, nil
}

// quantile reads the q-quantile from an ascending-sorted slice.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}
