package stretch

import (
	"reflect"
	"testing"
)

func testConfig(placement, ordering bool) Config {
	return Config{
		Seed:            42,
		Routers:         1000,
		Stationary:      256,
		Records:         512,
		Clients:         64,
		Replication:     4,
		Correspondents:  8,
		Warmup:          12,
		Queries:         2048,
		RegionPlacement: placement,
		LatencyOrdering: ordering,
		RTTNoise:        0.1,
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(testConfig(true, true))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testConfig(true, true))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n  %+v\n  %+v", a, b)
	}
}

func TestRunSanity(t *testing.T) {
	res, err := Run(testConfig(true, true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries+res.SkippedColocated != 2048 {
		t.Fatalf("queries %d + skipped %d != 2048", res.Queries, res.SkippedColocated)
	}
	if res.MedianStretch < 1 || res.P90Stretch < res.MedianStretch {
		t.Fatalf("impossible quantiles: median %v p90 %v (stretch is >= 1 by construction)", res.MedianStretch, res.P90Stretch)
	}
	if res.MeanChosenCost < res.MeanBestCost {
		t.Fatalf("chosen cost %v below the best-replica lower bound %v", res.MeanChosenCost, res.MeanBestCost)
	}
	if res.Regions < 2 {
		t.Fatalf("topology yielded %d regions; the experiment needs several", res.Regions)
	}
}

// TestProximityBeatsRandom is the package's reason to exist: with
// region-diverse placement and latency-ordered contact, clients resolve
// against measurably nearer replicas than the pre-proximity baseline.
func TestProximityBeatsRandom(t *testing.T) {
	prox, err := Run(testConfig(true, true))
	if err != nil {
		t.Fatal(err)
	}
	random, err := Run(testConfig(false, false))
	if err != nil {
		t.Fatal(err)
	}
	if prox.MedianStretch >= random.MedianStretch {
		t.Fatalf("proximity median stretch %.3f not below baseline %.3f", prox.MedianStretch, random.MedianStretch)
	}
	if prox.MeanChosenCost >= random.MeanChosenCost {
		t.Fatalf("proximity mean cost %.2f not below baseline %.2f", prox.MeanChosenCost, random.MeanChosenCost)
	}
}

// TestOrderingAloneHelps: even without region placement, latency-ordered
// contact over the same replica sets lowers the paid cost.
func TestOrderingAloneHelps(t *testing.T) {
	ordered, err := Run(testConfig(false, true))
	if err != nil {
		t.Fatal(err)
	}
	unordered, err := Run(testConfig(false, false))
	if err != nil {
		t.Fatal(err)
	}
	if ordered.MedianStretch >= unordered.MedianStretch {
		t.Fatalf("ordering-only median stretch %.3f not below unordered %.3f", ordered.MedianStretch, unordered.MedianStretch)
	}
}
