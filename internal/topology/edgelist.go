package topology

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList serializes the graph as a plain-text edge list — one
// "src dst weight" line per undirected edge, preceded by a header line
// recording each router's level and domain. The format round-trips with
// ParseEdgeList and is close enough to GT-ITM's alt output that external
// topologies can be converted with a one-line awk script.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# bristle-topology v1 routers=%d edges=%d\n", g.NumRouters(), g.NumEdges())
	for r := 0; r < g.NumRouters(); r++ {
		id := RouterID(r)
		fmt.Fprintf(bw, "node %d %s %d\n", r, g.LevelOf(id), g.DomainOf(id))
	}
	for r := 0; r < g.NumRouters(); r++ {
		for _, e := range g.Neighbors(RouterID(r)) {
			if int(e.To) > r {
				// -1 precision: shortest decimal that round-trips exactly.
				fmt.Fprintf(bw, "edge %d %d %s\n", r, e.To,
					strconv.FormatFloat(e.Weight, 'g', -1, 64))
			}
		}
	}
	return bw.Flush()
}

// ParseEdgeList reads a graph in the WriteEdgeList format. Unknown lines
// starting with '#' are ignored; any other malformed line is an error
// with its line number.
func ParseEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	g := NewGraph(0)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "node":
			if len(fields) != 4 {
				return nil, fmt.Errorf("topology: line %d: node wants 3 args", lineNo)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id != g.NumRouters() {
				return nil, fmt.Errorf("topology: line %d: node ids must be dense and ordered", lineNo)
			}
			var level Level
			switch fields[2] {
			case "transit":
				level = Transit
			case "stub":
				level = Stub
			default:
				return nil, fmt.Errorf("topology: line %d: unknown level %q", lineNo, fields[2])
			}
			dom, err := strconv.ParseInt(fields[3], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("topology: line %d: bad domain %q", lineNo, fields[3])
			}
			g.AddRouter(level, int32(dom))
		case "edge":
			if len(fields) != 4 {
				return nil, fmt.Errorf("topology: line %d: edge wants 3 args", lineNo)
			}
			a, err1 := strconv.Atoi(fields[1])
			b, err2 := strconv.Atoi(fields[2])
			w, err3 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("topology: line %d: malformed edge", lineNo)
			}
			if err := g.AddEdge(RouterID(a), RouterID(b), w); err != nil {
				return nil, fmt.Errorf("topology: line %d: %v", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("topology: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, nil
}
