package topology

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g1 := mustGen(t, smallParams(), 41)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g1); err != nil {
		t.Fatal(err)
	}
	g2, err := ParseEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumRouters() != g2.NumRouters() || g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("size mismatch: %d/%d vs %d/%d",
			g1.NumRouters(), g1.NumEdges(), g2.NumRouters(), g2.NumEdges())
	}
	for r := 0; r < g1.NumRouters(); r++ {
		id := RouterID(r)
		if g1.LevelOf(id) != g2.LevelOf(id) || g1.DomainOf(id) != g2.DomainOf(id) {
			t.Fatalf("router %d metadata mismatch", r)
		}
	}
	// Shortest paths must be identical (weights survived serialization).
	d1 := Dijkstra(g1, 0)
	d2 := Dijkstra(g2, 0)
	for i := range d1 {
		if math.Abs(d1[i]-d2[i]) > 1e-9 {
			t.Fatalf("distance mismatch at %d: %v vs %v", i, d1[i], d2[i])
		}
	}
}

func TestParseEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"unknown record":  "wat 1 2 3\n",
		"short node":      "node 0 stub\n",
		"bad level":       "node 0 core 0\n",
		"non-dense ids":   "node 5 stub 0\n",
		"short edge":      "node 0 stub 0\nedge 0 1\n",
		"bad edge weight": "node 0 stub 0\nnode 1 stub 0\nedge 0 1 x\n",
		"edge to unknown": "node 0 stub 0\nedge 0 9 1.5\n",
		"self loop":       "node 0 stub 0\nedge 0 0 1.5\n",
		"negative weight": "node 0 stub 0\nnode 1 stub 0\nedge 0 1 -2\n",
		"bad domain":      "node 0 stub z\n",
	}
	for name, input := range cases {
		if _, err := ParseEdgeList(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted %q", name, input)
		}
	}
}

func TestParseEdgeListIgnoresCommentsAndBlanks(t *testing.T) {
	input := "# header\n\nnode 0 transit 0\nnode 1 stub 1\n# mid comment\nedge 0 1 2.5\n"
	g, err := ParseEdgeList(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRouters() != 2 || g.NumEdges() != 1 {
		t.Fatalf("parsed %d routers %d edges", g.NumRouters(), g.NumEdges())
	}
	if g.LevelOf(0) != Transit || g.LevelOf(1) != Stub {
		t.Fatal("levels wrong")
	}
	if w := g.Neighbors(0)[0].Weight; w != 2.5 {
		t.Fatalf("weight = %v", w)
	}
}
