// Package topology builds the weighted router-level networks the Bristle
// evaluation runs on.
//
// The paper models the underlay as a GT-ITM Transit-Stub topology: a
// two-level hierarchy where high-level transit domains bridge low-level
// stub domains. Overlay path costs are sums of link weights along Dijkstra
// shortest paths (Section 4). This package provides the graph type, the
// generator, single-source shortest paths with a binary heap, and a
// per-source distance cache sized for repeated overlay queries.
package topology

import (
	"fmt"
	"math"
)

// RouterID identifies a router (graph vertex). IDs are dense: 0..N-1.
type RouterID int32

// None is the sentinel for "no router".
const None RouterID = -1

// Edge is one directed half of an undirected weighted link.
type Edge struct {
	To     RouterID
	Weight float64
}

// Level classifies a router within the transit-stub hierarchy.
type Level uint8

const (
	// Transit routers form the top-level domains bridging stubs.
	Transit Level = iota
	// Stub routers form the low-level domains hosts attach to.
	Stub
)

// String returns "transit" or "stub".
func (l Level) String() string {
	if l == Transit {
		return "transit"
	}
	return "stub"
}

// Graph is an undirected weighted graph in adjacency-list form.
// The zero Graph is empty; use AddRouter/AddEdge or the generator.
type Graph struct {
	adj     [][]Edge
	levels  []Level
	domain  []int32 // domain index per router (transit domains first)
	transit []int32 // serving transit domain per router (-1 = unknown)
	edges   int
}

// NewGraph returns an empty graph with capacity hints for n routers.
func NewGraph(n int) *Graph {
	return &Graph{
		adj:    make([][]Edge, 0, n),
		levels: make([]Level, 0, n),
		domain: make([]int32, 0, n),
	}
}

// AddRouter appends a router with the given level and domain index and
// returns its ID.
func (g *Graph) AddRouter(level Level, domain int32) RouterID {
	id := RouterID(len(g.adj))
	g.adj = append(g.adj, nil)
	g.levels = append(g.levels, level)
	g.domain = append(g.domain, domain)
	g.transit = append(g.transit, -1)
	return id
}

// SetTransitDomain records which transit domain serves router r: the
// router's own domain for transit routers, the sponsor's for stub
// routers. The transit-stub generator fills this in; hand-built graphs
// may leave it unset (-1).
func (g *Graph) SetTransitDomain(r RouterID, d int32) { g.transit[r] = d }

// TransitDomainOf returns the transit domain serving router r, or -1
// when unknown. For generated transit-stub topologies this is the
// natural "region" label: every host behind the same transit domain
// shares a geography.
func (g *Graph) TransitDomainOf(r RouterID) int32 { return g.transit[r] }

// AddEdge inserts an undirected edge with the given weight. Self-loops and
// non-positive weights are rejected. Duplicate edges are merged keeping the
// smaller weight.
func (g *Graph) AddEdge(a, b RouterID, w float64) error {
	if a == b {
		return fmt.Errorf("topology: self-loop at router %d", a)
	}
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("topology: invalid edge weight %v", w)
	}
	if int(a) >= len(g.adj) || int(b) >= len(g.adj) || a < 0 || b < 0 {
		return fmt.Errorf("topology: edge endpoints %d-%d out of range", a, b)
	}
	if g.updateIfPresent(a, b, w) {
		g.updateIfPresent(b, a, w)
		return nil
	}
	g.adj[a] = append(g.adj[a], Edge{To: b, Weight: w})
	g.adj[b] = append(g.adj[b], Edge{To: a, Weight: w})
	g.edges++
	return nil
}

func (g *Graph) updateIfPresent(a, b RouterID, w float64) bool {
	for i := range g.adj[a] {
		if g.adj[a][i].To == b {
			if w < g.adj[a][i].Weight {
				g.adj[a][i].Weight = w
			}
			return true
		}
	}
	return false
}

// NumRouters returns the number of routers.
func (g *Graph) NumRouters() int { return len(g.adj) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.edges }

// LevelOf returns the hierarchy level of router r.
func (g *Graph) LevelOf(r RouterID) Level { return g.levels[r] }

// DomainOf returns the domain index of router r.
func (g *Graph) DomainOf(r RouterID) int32 { return g.domain[r] }

// Neighbors returns the adjacency list of r. The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) Neighbors(r RouterID) []Edge { return g.adj[r] }

// StubRouters returns the IDs of all stub-level routers, in ID order.
func (g *Graph) StubRouters() []RouterID {
	var out []RouterID
	for i, l := range g.levels {
		if l == Stub {
			out = append(out, RouterID(i))
		}
	}
	return out
}

// TransitRouters returns the IDs of all transit-level routers, in ID order.
func (g *Graph) TransitRouters() []RouterID {
	var out []RouterID
	for i, l := range g.levels {
		if l == Transit {
			out = append(out, RouterID(i))
		}
	}
	return out
}

// Connected reports whether the graph is a single connected component.
// The empty graph is considered connected.
func (g *Graph) Connected() bool {
	n := len(g.adj)
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	stack := []RouterID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[v] {
			if !seen[e.To] {
				seen[e.To] = true
				count++
				stack = append(stack, e.To)
			}
		}
	}
	return count == n
}
