package topology

import (
	"container/heap"
	"math"
	"sync"
)

// Dijkstra computes single-source shortest path distances from src over the
// graph's link weights. The returned slice is indexed by RouterID;
// unreachable routers hold +Inf.
func Dijkstra(g *Graph, src RouterID) []float64 {
	dist, _ := dijkstraWithParents(g, src, false)
	return dist
}

// DijkstraWithParents additionally returns the shortest-path tree parents
// (None for the source and unreachable routers), enabling path extraction.
func DijkstraWithParents(g *Graph, src RouterID) ([]float64, []RouterID) {
	return dijkstraWithParents(g, src, true)
}

func dijkstraWithParents(g *Graph, src RouterID, wantParents bool) ([]float64, []RouterID) {
	n := g.NumRouters()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	var parent []RouterID
	if wantParents {
		parent = make([]RouterID, n)
		for i := range parent {
			parent[i] = None
		}
	}
	dist[src] = 0

	pq := &distHeap{items: []distItem{{r: src, d: 0}}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.d > dist[it.r] {
			continue // stale entry
		}
		for _, e := range g.Neighbors(it.r) {
			nd := it.d + e.Weight
			if nd < dist[e.To] {
				dist[e.To] = nd
				if wantParents {
					parent[e.To] = it.r
				}
				heap.Push(pq, distItem{r: e.To, d: nd})
			}
		}
	}
	return dist, parent
}

// Path reconstructs the router sequence from src to dst given the parent
// array from DijkstraWithParents(g, src). It returns nil if dst is
// unreachable. The path includes both endpoints.
func Path(parent []RouterID, src, dst RouterID) []RouterID {
	if src == dst {
		return []RouterID{src}
	}
	if parent[dst] == None {
		return nil
	}
	var rev []RouterID
	for at := dst; at != None; at = parent[at] {
		rev = append(rev, at)
		if at == src {
			break
		}
	}
	if rev[len(rev)-1] != src {
		return nil
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

type distItem struct {
	r RouterID
	d float64
}

type distHeap struct{ items []distItem }

func (h *distHeap) Len() int           { return len(h.items) }
func (h *distHeap) Less(i, j int) bool { return h.items[i].d < h.items[j].d }
func (h *distHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *distHeap) Push(x interface{}) { h.items = append(h.items, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// DistanceCache memoizes per-source Dijkstra results. Overlay experiments
// query distances between the attachment routers of overlay nodes; sources
// repeat heavily, so caching whole distance vectors amortizes to O(1) per
// query. The cache is safe for concurrent use and evicts nothing: callers
// bound memory by bounding distinct sources (MaxSources).
type DistanceCache struct {
	g          *Graph
	mu         sync.RWMutex
	bySource   map[RouterID][]float64
	maxSources int
	hits       uint64
	misses     uint64
}

// NewDistanceCache wraps g. maxSources caps the number of cached source
// vectors; 0 means unlimited. When the cap is reached, further sources are
// computed on the fly without caching.
func NewDistanceCache(g *Graph, maxSources int) *DistanceCache {
	return &DistanceCache{
		g:          g,
		bySource:   make(map[RouterID][]float64),
		maxSources: maxSources,
	}
}

// Distance returns the shortest-path cost between routers a and b.
func (c *DistanceCache) Distance(a, b RouterID) float64 {
	if a == b {
		return 0
	}
	c.mu.RLock()
	row, ok := c.bySource[a]
	if !ok {
		// Symmetric graph: a row for b serves (a, b) too.
		row, ok = c.bySource[b]
		if ok {
			b = a
		}
	}
	c.mu.RUnlock()
	if ok {
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
		return row[b]
	}
	dist := Dijkstra(c.g, a)
	c.mu.Lock()
	c.misses++
	if c.maxSources == 0 || len(c.bySource) < c.maxSources {
		c.bySource[a] = dist
	}
	c.mu.Unlock()
	return dist[b]
}

// Row returns the full distance vector from src, caching it when capacity
// allows. The returned slice must not be modified.
func (c *DistanceCache) Row(src RouterID) []float64 {
	c.mu.RLock()
	row, ok := c.bySource[src]
	c.mu.RUnlock()
	if ok {
		return row
	}
	dist := Dijkstra(c.g, src)
	c.mu.Lock()
	if c.maxSources == 0 || len(c.bySource) < c.maxSources {
		c.bySource[src] = dist
	}
	c.mu.Unlock()
	return dist
}

// Stats returns cache hit/miss counters (for tests and tuning).
func (c *DistanceCache) Stats() (hits, misses uint64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.hits, c.misses
}
