package topology

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustGen(t testing.TB, p TransitStubParams, seed int64) *Graph {
	t.Helper()
	g, err := GenerateTransitStub(p, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("GenerateTransitStub: %v", err)
	}
	return g
}

func smallParams() TransitStubParams {
	return TransitStubParams{
		TransitDomains:    2,
		TransitPerDomain:  3,
		StubsPerTransit:   2,
		StubPerDomain:     4,
		EdgeProb:          0.4,
		ExtraTransitEdges: 2,
		WeightJitter:      0.1,
	}
}

func TestGraphAddEdgeValidation(t *testing.T) {
	g := NewGraph(4)
	a := g.AddRouter(Stub, 0)
	b := g.AddRouter(Stub, 0)
	if err := g.AddEdge(a, a, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(a, b, 0); err == nil {
		t.Error("zero weight accepted")
	}
	if err := g.AddEdge(a, b, -3); err == nil {
		t.Error("negative weight accepted")
	}
	if err := g.AddEdge(a, b, math.NaN()); err == nil {
		t.Error("NaN weight accepted")
	}
	if err := g.AddEdge(a, RouterID(99), 1); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if err := g.AddEdge(a, b, 2); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestGraphDuplicateEdgeKeepsMinWeight(t *testing.T) {
	g := NewGraph(2)
	a := g.AddRouter(Stub, 0)
	b := g.AddRouter(Stub, 0)
	if err := g.AddEdge(a, b, 5); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(a, b, 3); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("duplicate edge not merged: NumEdges = %d", g.NumEdges())
	}
	if w := g.Neighbors(a)[0].Weight; w != 3 {
		t.Fatalf("merged weight = %v, want 3", w)
	}
	if w := g.Neighbors(b)[0].Weight; w != 3 {
		t.Fatalf("reverse merged weight = %v, want 3", w)
	}
}

func TestGenerateCounts(t *testing.T) {
	p := smallParams()
	g := mustGen(t, p, 1)
	wantTransit := p.TransitDomains * p.TransitPerDomain
	wantStub := wantTransit * p.StubsPerTransit * p.StubPerDomain
	if got := len(g.TransitRouters()); got != wantTransit {
		t.Errorf("transit routers = %d, want %d", got, wantTransit)
	}
	if got := len(g.StubRouters()); got != wantStub {
		t.Errorf("stub routers = %d, want %d", got, wantStub)
	}
	if g.NumRouters() != wantTransit+wantStub {
		t.Errorf("total routers = %d, want %d", g.NumRouters(), wantTransit+wantStub)
	}
}

func TestGenerateConnected(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := mustGen(t, smallParams(), seed)
		if !g.Connected() {
			t.Fatalf("seed %d produced disconnected graph", seed)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g1 := mustGen(t, smallParams(), 42)
	g2 := mustGen(t, smallParams(), 42)
	if g1.NumRouters() != g2.NumRouters() || g1.NumEdges() != g2.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	d1 := Dijkstra(g1, 0)
	d2 := Dijkstra(g2, 0)
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("distance mismatch at router %d: %v vs %v", i, d1[i], d2[i])
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := GenerateTransitStub(TransitStubParams{}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero params accepted")
	}
	bad := smallParams()
	bad.EdgeProb = 1.5
	if _, err := GenerateTransitStub(bad, rand.New(rand.NewSource(1))); err == nil {
		t.Error("EdgeProb > 1 accepted")
	}
}

func TestDefaultTransitStubScale(t *testing.T) {
	p := DefaultTransitStub(10000)
	g := mustGen(t, p, 7)
	n := g.NumRouters()
	if n < 5000 || n > 20000 {
		t.Errorf("DefaultTransitStub(10000) produced %d routers", n)
	}
	if !g.Connected() {
		t.Error("default topology disconnected")
	}
}

func TestDijkstraSourceZeroAndSymmetry(t *testing.T) {
	g := mustGen(t, smallParams(), 3)
	src := RouterID(0)
	dist := Dijkstra(g, src)
	if dist[src] != 0 {
		t.Fatalf("dist to self = %v", dist[src])
	}
	// Undirected graph ⇒ symmetric metric.
	other := RouterID(g.NumRouters() - 1)
	back := Dijkstra(g, other)
	if math.Abs(dist[other]-back[src]) > 1e-9 {
		t.Fatalf("asymmetric distances: %v vs %v", dist[other], back[src])
	}
}

func TestDijkstraTriangleInequality(t *testing.T) {
	g := mustGen(t, smallParams(), 4)
	n := g.NumRouters()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		a := RouterID(rng.Intn(n))
		b := RouterID(rng.Intn(n))
		c := RouterID(rng.Intn(n))
		da := Dijkstra(g, a)
		db := Dijkstra(g, b)
		if da[c] > da[b]+db[c]+1e-9 {
			t.Fatalf("triangle violation: d(%d,%d)=%v > %v+%v", a, c, da[c], da[b], db[c])
		}
	}
}

func TestDijkstraMatchesBellmanFordSmall(t *testing.T) {
	// Cross-check against a naive O(VE) Bellman-Ford on a small graph.
	g := mustGen(t, TransitStubParams{
		TransitDomains: 1, TransitPerDomain: 2,
		StubsPerTransit: 2, StubPerDomain: 3,
		EdgeProb: 0.5,
	}, 5)
	n := g.NumRouters()
	src := RouterID(0)
	want := make([]float64, n)
	for i := range want {
		want[i] = math.Inf(1)
	}
	want[src] = 0
	for iter := 0; iter < n; iter++ {
		for v := 0; v < n; v++ {
			for _, e := range g.Neighbors(RouterID(v)) {
				if want[v]+e.Weight < want[e.To] {
					want[e.To] = want[v] + e.Weight
				}
			}
		}
	}
	got := Dijkstra(g, src)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("router %d: dijkstra %v, bellman-ford %v", i, got[i], want[i])
		}
	}
}

func TestPathReconstruction(t *testing.T) {
	g := mustGen(t, smallParams(), 6)
	src := RouterID(0)
	dist, parent := DijkstraWithParents(g, src)
	for dst := 0; dst < g.NumRouters(); dst += 5 {
		p := Path(parent, src, RouterID(dst))
		if p == nil {
			t.Fatalf("no path to reachable router %d", dst)
		}
		if p[0] != src || p[len(p)-1] != RouterID(dst) {
			t.Fatalf("path endpoints wrong: %v", p)
		}
		// Sum of edge weights along the path must equal the distance.
		sum := 0.0
		for i := 0; i+1 < len(p); i++ {
			found := false
			for _, e := range g.Neighbors(p[i]) {
				if e.To == p[i+1] {
					sum += e.Weight
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("path uses nonexistent edge %d-%d", p[i], p[i+1])
			}
		}
		if math.Abs(sum-dist[dst]) > 1e-9 {
			t.Fatalf("path cost %v != distance %v", sum, dist[dst])
		}
	}
}

func TestPathSelf(t *testing.T) {
	g := mustGen(t, smallParams(), 6)
	_, parent := DijkstraWithParents(g, 3)
	p := Path(parent, 3, 3)
	if len(p) != 1 || p[0] != 3 {
		t.Fatalf("self path = %v", p)
	}
}

func TestDistanceCacheCorrectAndCached(t *testing.T) {
	g := mustGen(t, smallParams(), 8)
	c := NewDistanceCache(g, 0)
	rng := rand.New(rand.NewSource(10))
	n := g.NumRouters()
	for i := 0; i < 100; i++ {
		a := RouterID(rng.Intn(n))
		b := RouterID(rng.Intn(n))
		want := Dijkstra(g, a)[b]
		if got := c.Distance(a, b); math.Abs(got-want) > 1e-9 {
			t.Fatalf("cache Distance(%d,%d) = %v, want %v", a, b, got, want)
		}
	}
	hits, misses := c.Stats()
	if hits == 0 {
		t.Error("expected cache hits after repeated queries")
	}
	if misses == 0 {
		t.Error("expected at least one miss")
	}
}

func TestDistanceCacheCap(t *testing.T) {
	g := mustGen(t, smallParams(), 8)
	c := NewDistanceCache(g, 2)
	n := g.NumRouters()
	for i := 0; i < n; i++ {
		c.Row(RouterID(i))
	}
	c.mu.RLock()
	size := len(c.bySource)
	c.mu.RUnlock()
	if size > 2 {
		t.Fatalf("cache exceeded cap: %d rows", size)
	}
}

func TestDistanceCacheSymmetryShortcut(t *testing.T) {
	g := mustGen(t, smallParams(), 11)
	c := NewDistanceCache(g, 0)
	a, b := RouterID(1), RouterID(5)
	d1 := c.Distance(a, b)
	d2 := c.Distance(b, a) // should reuse a's row via symmetry
	if math.Abs(d1-d2) > 1e-9 {
		t.Fatalf("asymmetric cache results: %v vs %v", d1, d2)
	}
	hits, _ := c.Stats()
	if hits == 0 {
		t.Error("symmetric lookup did not hit cache")
	}
}

func TestLevelDomainAccessors(t *testing.T) {
	g := mustGen(t, smallParams(), 12)
	for _, r := range g.TransitRouters() {
		if g.LevelOf(r) != Transit {
			t.Fatalf("router %d misclassified", r)
		}
	}
	for _, r := range g.StubRouters() {
		if g.LevelOf(r) != Stub {
			t.Fatalf("router %d misclassified", r)
		}
	}
	if Transit.String() != "transit" || Stub.String() != "stub" {
		t.Error("Level.String mismatch")
	}
}

func TestStubToStubPathsCrossTransit(t *testing.T) {
	// A stub router in one domain reaching a stub in another domain must
	// traverse at least one transit router — the 2-level hierarchy works.
	g := mustGen(t, smallParams(), 13)
	stubs := g.StubRouters()
	var a, b RouterID = None, None
	for _, s := range stubs {
		if a == None {
			a = s
			continue
		}
		if g.DomainOf(s) != g.DomainOf(a) {
			b = s
			break
		}
	}
	if a == None || b == None {
		t.Skip("not enough stub domains")
	}
	_, parent := DijkstraWithParents(g, a)
	p := Path(parent, a, b)
	sawTransit := false
	for _, r := range p {
		if g.LevelOf(r) == Transit {
			sawTransit = true
		}
	}
	if !sawTransit {
		t.Fatalf("cross-domain stub path %v bypasses transit level", p)
	}
}

func TestConnectedEmptyAndSingle(t *testing.T) {
	g := NewGraph(0)
	if !g.Connected() {
		t.Error("empty graph should be connected")
	}
	g.AddRouter(Stub, 0)
	if !g.Connected() {
		t.Error("single-router graph should be connected")
	}
	g.AddRouter(Stub, 0)
	if g.Connected() {
		t.Error("two isolated routers reported connected")
	}
}

func TestQuickGeneratedGraphsConnected(t *testing.T) {
	f := func(seed int64, td, tpd, spt, spd uint8) bool {
		p := TransitStubParams{
			TransitDomains:   int(td%3) + 1,
			TransitPerDomain: int(tpd%4) + 1,
			StubsPerTransit:  int(spt % 3),
			StubPerDomain:    int(spd%4) + 1,
			EdgeProb:         0.3,
		}
		g, err := GenerateTransitStub(p, rand.New(rand.NewSource(seed)))
		return err == nil && g.Connected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTransitDomainOfGenerated(t *testing.T) {
	p := smallParams()
	g := mustGen(t, p, 21)
	counts := map[int32]int{}
	for r := RouterID(0); int(r) < g.NumRouters(); r++ {
		d := g.TransitDomainOf(r)
		if d < 0 || int(d) >= p.TransitDomains {
			t.Fatalf("router %d: transit domain %d out of range", r, d)
		}
		if g.LevelOf(r) == Transit && d != g.DomainOf(r) {
			t.Fatalf("transit router %d: serving domain %d != own domain %d", r, d, g.DomainOf(r))
		}
		counts[d]++
	}
	if len(counts) != p.TransitDomains {
		t.Fatalf("routers span %d transit domains, want %d", len(counts), p.TransitDomains)
	}
}

func TestTransitDomainOfHandBuilt(t *testing.T) {
	g := NewGraph(2)
	a := g.AddRouter(Transit, 0)
	if got := g.TransitDomainOf(a); got != -1 {
		t.Fatalf("unset transit domain = %d, want -1", got)
	}
	g.SetTransitDomain(a, 3)
	if got := g.TransitDomainOf(a); got != 3 {
		t.Fatalf("transit domain = %d, want 3", got)
	}
}
