package topology

import (
	"fmt"
	"math/rand"
)

// TransitStubParams configures the GT-ITM-style generator.
//
// The generated topology has:
//
//   - TransitDomains top-level domains, each a connected random graph of
//     TransitPerDomain routers joined by intra-transit edges;
//   - transit domains interconnected by a ring plus ExtraTransitEdges
//     random shortcuts (guaranteeing top-level connectivity);
//   - each transit router attaching StubsPerTransit stub domains, each a
//     connected random graph of StubPerDomain routers;
//   - per-class link weights, so shortest-path costs reflect the 2-level
//     routing hierarchy the paper relies on.
type TransitStubParams struct {
	TransitDomains   int // number of transit domains (≥1)
	TransitPerDomain int // routers per transit domain (≥1)
	StubsPerTransit  int // stub domains hanging off each transit router (≥0)
	StubPerDomain    int // routers per stub domain (≥1)

	// EdgeProb is the probability of an extra intra-domain edge beyond the
	// spanning connectivity ring, for both transit and stub domains.
	EdgeProb float64

	// ExtraTransitEdges adds this many random transit-transit shortcuts
	// between distinct domains.
	ExtraTransitEdges int

	// Link weights per class. Zero values take the defaults, which follow
	// the usual GT-ITM convention that crossing the hierarchy is costlier:
	// intra-stub 1, stub-transit 2, intra-transit 5, transit-transit 10.
	IntraStubWeight      float64
	StubTransitWeight    float64
	IntraTransitWeight   float64
	TransitTransitWeight float64

	// WeightJitter, if positive, multiplies every link weight by a uniform
	// factor in [1, 1+WeightJitter] so that distinct paths have distinct
	// costs and Dijkstra tie-breaks don't dominate results.
	WeightJitter float64
}

// DefaultTransitStub returns parameters yielding roughly n routers,
// split 1:9 between transit and stub levels, mirroring the scale of the
// paper's 10,000-router networks when n = 10000.
func DefaultTransitStub(n int) TransitStubParams {
	if n < 20 {
		n = 20
	}
	// Solve approximately: routers = T*Tn*(1 + S*Sn) with T*Tn ≈ n/10.
	transit := n / 10
	td := 4
	tpd := transit / td
	if tpd < 1 {
		td, tpd = 1, transit
	}
	if tpd < 1 {
		tpd = 1
	}
	// Remaining go to stubs: each transit router carries S stub domains of
	// size Sn with S*Sn ≈ 9.
	return TransitStubParams{
		TransitDomains:    td,
		TransitPerDomain:  tpd,
		StubsPerTransit:   3,
		StubPerDomain:     3,
		EdgeProb:          0.3,
		ExtraTransitEdges: td,
		WeightJitter:      0.2,
	}
}

func (p *TransitStubParams) applyDefaults() {
	if p.IntraStubWeight == 0 {
		p.IntraStubWeight = 1
	}
	if p.StubTransitWeight == 0 {
		p.StubTransitWeight = 2
	}
	if p.IntraTransitWeight == 0 {
		p.IntraTransitWeight = 5
	}
	if p.TransitTransitWeight == 0 {
		p.TransitTransitWeight = 10
	}
}

func (p *TransitStubParams) validate() error {
	if p.TransitDomains < 1 || p.TransitPerDomain < 1 {
		return fmt.Errorf("topology: need at least one transit domain and router, got %d×%d",
			p.TransitDomains, p.TransitPerDomain)
	}
	if p.StubsPerTransit < 0 || p.StubPerDomain < 1 && p.StubsPerTransit > 0 {
		return fmt.Errorf("topology: invalid stub configuration %d×%d",
			p.StubsPerTransit, p.StubPerDomain)
	}
	if p.EdgeProb < 0 || p.EdgeProb > 1 {
		return fmt.Errorf("topology: EdgeProb %v out of [0,1]", p.EdgeProb)
	}
	return nil
}

// GenerateTransitStub builds a connected transit-stub topology from params
// using rng for all randomness. The result is deterministic for a fixed
// seed and parameter set.
func GenerateTransitStub(p TransitStubParams, rng *rand.Rand) (*Graph, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	p.applyDefaults()

	total := p.TransitDomains * p.TransitPerDomain * (1 + p.StubsPerTransit*p.StubPerDomain)
	g := NewGraph(total)
	weight := func(base float64) float64 {
		if p.WeightJitter > 0 {
			return base * (1 + rng.Float64()*p.WeightJitter)
		}
		return base
	}

	// Transit domains.
	transitRouters := make([][]RouterID, p.TransitDomains)
	domainIdx := int32(0)
	for d := 0; d < p.TransitDomains; d++ {
		ids := make([]RouterID, p.TransitPerDomain)
		for i := range ids {
			ids[i] = g.AddRouter(Transit, domainIdx)
			g.SetTransitDomain(ids[i], int32(d))
		}
		connectDomain(g, ids, p.EdgeProb, func() float64 { return weight(p.IntraTransitWeight) }, rng)
		transitRouters[d] = ids
		domainIdx++
	}

	// Inter-transit ring plus random shortcuts.
	for d := 0; d < p.TransitDomains; d++ {
		next := (d + 1) % p.TransitDomains
		if next == d {
			break
		}
		a := transitRouters[d][rng.Intn(len(transitRouters[d]))]
		b := transitRouters[next][rng.Intn(len(transitRouters[next]))]
		if err := g.AddEdge(a, b, weight(p.TransitTransitWeight)); err != nil {
			return nil, err
		}
	}
	for i := 0; i < p.ExtraTransitEdges && p.TransitDomains > 1; i++ {
		d1 := rng.Intn(p.TransitDomains)
		d2 := rng.Intn(p.TransitDomains)
		if d1 == d2 {
			continue
		}
		a := transitRouters[d1][rng.Intn(len(transitRouters[d1]))]
		b := transitRouters[d2][rng.Intn(len(transitRouters[d2]))]
		_ = g.AddEdge(a, b, weight(p.TransitTransitWeight)) // duplicate merge is fine
	}

	// Stub domains: each transit router sponsors StubsPerTransit of them.
	for d := 0; d < p.TransitDomains; d++ {
		for _, tr := range transitRouters[d] {
			for s := 0; s < p.StubsPerTransit; s++ {
				ids := make([]RouterID, p.StubPerDomain)
				for i := range ids {
					ids[i] = g.AddRouter(Stub, domainIdx)
					g.SetTransitDomain(ids[i], int32(d))
				}
				connectDomain(g, ids, p.EdgeProb, func() float64 { return weight(p.IntraStubWeight) }, rng)
				// Gateway link from a random stub router up to the sponsor.
				gw := ids[rng.Intn(len(ids))]
				if err := g.AddEdge(gw, tr, weight(p.StubTransitWeight)); err != nil {
					return nil, err
				}
				domainIdx++
			}
		}
	}

	if !g.Connected() {
		return nil, fmt.Errorf("topology: generated graph not connected (bug)")
	}
	return g, nil
}

// connectDomain wires ids into a connected random subgraph: a random
// spanning chain first, then independent extra edges with probability prob.
func connectDomain(g *Graph, ids []RouterID, prob float64, w func() float64, rng *rand.Rand) {
	if len(ids) <= 1 {
		return
	}
	perm := rng.Perm(len(ids))
	for i := 1; i < len(perm); i++ {
		// Attach each router to a random earlier one: random spanning tree.
		j := perm[rng.Intn(i)]
		_ = g.AddEdge(ids[perm[i]], ids[j], w())
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if rng.Float64() < prob {
				_ = g.AddEdge(ids[i], ids[j], w())
			}
		}
	}
}
