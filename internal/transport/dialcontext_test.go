package transport

import (
	"context"
	"errors"
	"testing"
	"time"
)

// legacyDialer is a Transport WITHOUT DialContext, to exercise the
// compatibility fallback in the package-level DialContext helper.
type legacyDialer struct {
	inner *Mem
	dials int
}

func (d *legacyDialer) Listen(addr string) (Listener, error) { return d.inner.Listen(addr) }
func (d *legacyDialer) Dial(addr string) (Conn, error) {
	d.dials++
	return d.inner.Dial(addr)
}

func TestDialContextCanceledBeforeDial(t *testing.T) {
	m := NewMem()
	if _, err := m.Listen("srv"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DialContext(ctx, m, "srv"); !errors.Is(err, context.Canceled) {
		t.Fatalf("dial with canceled ctx: err = %v, want context.Canceled", err)
	}
}

// TestMemDialContextDeadlineBeatsBacklogWait saturates a never-accepting
// listener and dials with a context deadline much shorter than
// BacklogWait: the dial must honor the caller's deadline, and the error
// must classify as a timeout for the retry layer.
func TestMemDialContextDeadlineBeatsBacklogWait(t *testing.T) {
	m := NewMem()
	m.BacklogWait = 5 * time.Second
	if _, err := m.Listen("busy"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := m.Dial("busy"); err != nil {
			t.Fatalf("fill dial %d: %v", i, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := m.DialContext(ctx, "busy")
	waited := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if !IsTimeout(err) {
		t.Errorf("context deadline on dial must classify as timeout, got %v", err)
	}
	if waited >= time.Second {
		t.Errorf("dial waited %v; the context deadline (30ms) should have cut the 5s backlog wait", waited)
	}
}

// TestDialContextFallsBackToPlainDial verifies transports without a
// DialContext method still work through the helper (using plain Dial).
func TestDialContextFallsBackToPlainDial(t *testing.T) {
	d := &legacyDialer{inner: NewMem()}
	l, err := d.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	go l.Accept()
	c, err := DialContext(context.Background(), d, "srv")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if d.dials != 1 {
		t.Errorf("fallback used Dial %d times, want 1", d.dials)
	}
	// Even on the fallback path, an already-dead context must not dial.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DialContext(ctx, d, "srv"); !errors.Is(err, context.Canceled) {
		t.Fatalf("fallback with canceled ctx: err = %v, want context.Canceled", err)
	}
	if d.dials != 1 {
		t.Errorf("canceled fallback still dialed (dials = %d)", d.dials)
	}
}

// TestFaultyDialContextPropagates verifies the fault-injecting wrapper
// forwards the caller's context to the inner transport.
func TestFaultyDialContextPropagates(t *testing.T) {
	m := NewMem()
	m.BacklogWait = 5 * time.Second
	f := NewFaulty(m, FaultConfig{})
	if _, err := f.Listen("busy"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := f.Dial("busy"); err != nil {
			t.Fatalf("fill dial %d: %v", i, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := f.DialContext(ctx, "busy"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited >= time.Second {
		t.Errorf("faulty dial waited %v, want ~30ms", waited)
	}
}
