package transport

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"time"

	"bristle/internal/metrics"
	"bristle/internal/wire"
)

// poisonType is a reserved frame type the Faulty transport uses to model
// in-flight corruption: a receiving Faulty endpoint translates it into a
// wire.ErrBadMagic decode failure, exactly what a corrupted stream would
// produce on TCP. An unwrapped receiver simply drops the unknown type.
const poisonType = wire.MsgType(0xFF)

// FaultConfig parameterizes the Faulty wrapper. All rates are independent
// probabilities in [0, 1], drawn from a per-directed-link PRNG derived
// from Seed — so two runs with the same seed and the same per-link frame
// order inject the same faults.
type FaultConfig struct {
	// Seed roots every per-link fault stream. Same seed → same faults.
	Seed int64
	// Drop is P(an outbound frame vanishes silently).
	Drop float64
	// Duplicate is P(an outbound frame is delivered twice).
	Duplicate float64
	// Corrupt is P(an outbound frame is corrupted in flight: the
	// receiver's Recv fails with wire.ErrBadMagic).
	Corrupt float64
	// RefuseDial is P(a Dial fails immediately with ErrRefused).
	RefuseDial float64
	// DelayMin/DelayMax bound a uniform per-frame injected latency,
	// applied synchronously on the send path (a slow link stalls its
	// sender). DelayMax 0 disables delay.
	DelayMin, DelayMax time.Duration
	// Latency, if set, returns a deterministic per-link latency for each
	// frame on the directed link from → to (endpoint names; to is "" on
	// the accepted/response side of a connection, so a topology-derived
	// function typically charges the full round trip on the forward
	// direction and returns 0 for unknown pairs). It composes with the
	// uniform DelayMin/DelayMax jitter and is applied synchronously like
	// it. This is how harness scenarios give each node pair a stable
	// "distance" for proximity-aware ordering to discover.
	Latency func(from, to string) time.Duration
	// Counters optionally records every injected fault (fault.drop,
	// fault.delay, fault.duplicate, fault.corrupt, fault.refuse,
	// fault.partition_drop, fault.partition_refuse).
	Counters *metrics.Counters
}

// Faulty wraps any Transport and injects seeded, per-link faults: frame
// drop, delay, duplication, corruption, refused dials, and named
// asymmetric partitions that can be installed and healed at runtime. It
// turns the clean Mem (or TCP) transport into a deterministic chaos
// harness for the live protocol stack.
//
// Fault decisions are made per directed link (dialing endpoint →
// listening endpoint), so every node under test must go through its own
// named view from Endpoint. Partitions match endpoint names; unnamed
// peers are identified by their listener address.
type Faulty struct {
	inner Transport

	mu         sync.Mutex
	cfg        FaultConfig
	owners     map[string]string // listener addr → endpoint name
	links      map[linkKey]*linkState
	partitions map[string][]partitionRule
}

type linkKey struct{ from, to string }

type partitionRule struct{ from, to map[string]bool }

// linkState carries the seeded PRNG of one directed link.
type linkState struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func (ls *linkState) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.rng.Float64() < p
}

func (ls *linkState) delay(min, max time.Duration) time.Duration {
	if max <= 0 || max < min {
		return 0
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return min + time.Duration(ls.rng.Int63n(int64(max-min)+1))
}

// NewFaulty wraps inner with the given fault profile.
func NewFaulty(inner Transport, cfg FaultConfig) *Faulty {
	return &Faulty{
		inner:      inner,
		cfg:        cfg,
		owners:     make(map[string]string),
		links:      make(map[linkKey]*linkState),
		partitions: make(map[string][]partitionRule),
	}
}

// SetConfig swaps the fault profile at runtime (e.g. to start chaos after
// a clean bootstrap). Per-link PRNG states persist across the change.
func (f *Faulty) SetConfig(cfg FaultConfig) {
	f.mu.Lock()
	f.cfg = cfg
	f.mu.Unlock()
}

// Config returns the current fault profile.
func (f *Faulty) Config() FaultConfig {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cfg
}

// Endpoint returns a Transport view bound to a named endpoint. Per-link
// fault streams and partitions are keyed by these names.
func (f *Faulty) Endpoint(name string) Transport {
	return &faultyEndpoint{f: f, name: name}
}

// Listen and Dial let a Faulty be used directly as an anonymous endpoint
// (partition rules can still match its peers by listener address).
func (f *Faulty) Listen(addr string) (Listener, error) { return f.Endpoint("").Listen(addr) }

// Dial implements Transport for the anonymous endpoint.
func (f *Faulty) Dial(addr string) (Conn, error) { return f.Endpoint("").Dial(addr) }

// DialContext implements ContextDialer for the anonymous endpoint.
func (f *Faulty) DialContext(ctx context.Context, addr string) (Conn, error) {
	return f.Endpoint("").(ContextDialer).DialContext(ctx, addr)
}

// Partition installs (or extends) a named one-way partition: dials and
// frames from any endpoint in from to any endpoint in to fail until
// Heal(name). Entries match endpoint names, or listener addresses for
// unnamed endpoints. Install both directions — or use PartitionBoth —
// for a full split.
func (f *Faulty) Partition(name string, from, to []string) {
	rule := partitionRule{from: toSet(from), to: toSet(to)}
	f.mu.Lock()
	f.partitions[name] = append(f.partitions[name], rule)
	f.mu.Unlock()
}

// PartitionBoth installs a bidirectional partition between the two groups
// under one name, healed by a single Heal call.
func (f *Faulty) PartitionBoth(name string, a, b []string) {
	f.Partition(name, a, b)
	f.Partition(name, b, a)
}

// Heal removes the named partition; traffic between the groups resumes.
func (f *Faulty) Heal(name string) {
	f.mu.Lock()
	delete(f.partitions, name)
	f.mu.Unlock()
}

// PartitionNames returns the currently installed partitions, sorted — a
// test harness uses it to assert the network really is whole before
// checking global invariants.
func (f *Faulty) PartitionNames() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	names := make([]string, 0, len(f.partitions))
	for name := range f.partitions {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func toSet(names []string) map[string]bool {
	s := make(map[string]bool, len(names))
	for _, n := range names {
		s[n] = true
	}
	return s
}

func (f *Faulty) partitioned(from, to string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, rules := range f.partitions {
		for _, r := range rules {
			if r.from[from] && r.to[to] {
				return true
			}
		}
	}
	return false
}

// linkFor returns the (lazily created) seeded PRNG of one directed link.
func (f *Faulty) linkFor(from, to string) *linkState {
	key := linkKey{from, to}
	f.mu.Lock()
	defer f.mu.Unlock()
	ls, ok := f.links[key]
	if !ok {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d|%s|%s", f.cfg.Seed, from, to)
		ls = &linkState{rng: rand.New(rand.NewSource(int64(h.Sum64())))}
		f.links[key] = ls
	}
	return ls
}

// ownerOf maps a dial address to its endpoint name; unknown addresses
// identify themselves (so partitions can name raw addresses too).
func (f *Faulty) ownerOf(addr string) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if name, ok := f.owners[addr]; ok && name != "" {
		return name
	}
	return addr
}

func (f *Faulty) count(name string) {
	f.mu.Lock()
	c := f.cfg.Counters
	f.mu.Unlock()
	c.Inc(name)
}

// --- endpoint ---

type faultyEndpoint struct {
	f    *Faulty
	name string
}

func (e *faultyEndpoint) Listen(addr string) (Listener, error) {
	l, err := e.f.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	e.f.mu.Lock()
	e.f.owners[l.Addr()] = e.name
	e.f.mu.Unlock()
	return &faultyListener{f: e.f, name: e.name, inner: l}, nil
}

func (e *faultyEndpoint) Dial(addr string) (Conn, error) {
	return e.DialContext(context.Background(), addr)
}

// DialContext injects the same per-link dial faults as Dial, then dials
// the inner transport with the caller's context (fault injection stays
// on pooled/multiplexed conns exactly as on one-shot ones).
func (e *faultyEndpoint) DialContext(ctx context.Context, addr string) (Conn, error) {
	f := e.f
	to := f.ownerOf(addr)
	if f.partitioned(e.name, to) {
		f.count("fault.partition_refuse")
		return nil, fmt.Errorf("%w: %s (partitioned)", ErrRefused, addr)
	}
	link := f.linkFor(e.name, to)
	cfg := f.Config()
	if link.chance(cfg.RefuseDial) {
		f.count("fault.refuse")
		return nil, fmt.Errorf("%w: %s (injected)", ErrRefused, addr)
	}
	inner, err := DialContext(ctx, f.inner, addr)
	if err != nil {
		return nil, err
	}
	return &faultyConn{f: f, from: e.name, to: to, link: link, inner: inner}, nil
}

// --- listener ---

type faultyListener struct {
	f     *Faulty
	name  string
	inner Listener

	mu    sync.Mutex
	conns int
}

func (l *faultyListener) Accept() (Conn, error) {
	c, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	// The dialer's identity is not carried in-band, so the server side of
	// a connection gets its own per-connection fault stream, seeded
	// deterministically from the accept order. Partition rules cannot
	// match this direction on an established connection — like a real
	// asymmetric partition, responses already in flight still arrive —
	// but every *new* exchange re-dials and is blocked at Dial.
	l.mu.Lock()
	l.conns++
	peer := fmt.Sprintf("accepted#%d", l.conns)
	l.mu.Unlock()
	return &faultyConn{f: l.f, from: l.name, to: "", link: l.f.linkFor(l.name, peer), inner: c}, nil
}

func (l *faultyListener) Close() error { return l.inner.Close() }
func (l *faultyListener) Addr() string { return l.inner.Addr() }

// --- conn ---

type faultyConn struct {
	f        *Faulty
	from, to string // endpoint names; to == "" on the accepted side
	link     *linkState
	inner    Conn
}

func (c *faultyConn) Send(m *wire.Message) error {
	f := c.f
	if c.to != "" && f.partitioned(c.from, c.to) {
		// A black-holed link: the frame is silently lost, the sender
		// cannot tell. Retry layers above discover it via timeout.
		f.count("fault.partition_drop")
		return nil
	}
	cfg := f.Config()
	if c.link.chance(cfg.Drop) {
		f.count("fault.drop")
		return nil
	}
	if d := c.link.delay(cfg.DelayMin, cfg.DelayMax); d > 0 {
		f.count("fault.delay")
		time.Sleep(d)
	}
	if cfg.Latency != nil {
		if d := cfg.Latency(c.from, c.to); d > 0 {
			f.count("fault.latency")
			time.Sleep(d)
		}
	}
	if c.link.chance(cfg.Corrupt) {
		f.count("fault.corrupt")
		return c.inner.Send(&wire.Message{Type: poisonType, Seq: m.Seq})
	}
	if err := c.inner.Send(m); err != nil {
		return err
	}
	if c.link.chance(cfg.Duplicate) {
		f.count("fault.duplicate")
		return c.inner.Send(m)
	}
	return nil
}

func (c *faultyConn) Recv() (*wire.Message, error) {
	m, err := c.inner.Recv()
	if err != nil {
		return nil, err
	}
	if m.Type == poisonType {
		// The frame was corrupted in flight; the framing is unrecoverable,
		// exactly as a real bad-magic stream would present.
		return nil, wire.ErrBadMagic
	}
	return m, nil
}

func (c *faultyConn) SetDeadline(t time.Time) error { return c.inner.SetDeadline(t) }
func (c *faultyConn) Close() error                  { return c.inner.Close() }
func (c *faultyConn) RemoteAddr() string            { return c.inner.RemoteAddr() }
