package transport

import (
	"errors"
	"testing"
	"time"

	"bristle/internal/metrics"
	"bristle/internal/wire"
)

// faultyPair dials a connected (client, server) pair between two named
// endpoints of a Faulty over Mem.
func faultyPair(t *testing.T, f *Faulty, from, to string) (Conn, Conn) {
	t.Helper()
	l, err := f.Endpoint(to).Listen(to + "-addr")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	client, err := f.Endpoint(from).Dial(to + "-addr")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	server, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	return client, server
}

func TestFaultyCleanPassesContract(t *testing.T) {
	f := NewFaulty(NewMem(), FaultConfig{Seed: 1})
	exerciseTransport(t, f.Endpoint("n"), "node-a")
}

func TestFaultyDropLosesFrames(t *testing.T) {
	c := metrics.NewCounters()
	f := NewFaulty(NewMem(), FaultConfig{Seed: 7, Drop: 1, Counters: c})
	client, server := faultyPair(t, f, "a", "b")
	if err := client.Send(&wire.Message{Type: wire.TPing, Seq: 1}); err != nil {
		t.Fatalf("dropped send must look successful, got %v", err)
	}
	server.SetDeadline(time.Now().Add(50 * time.Millisecond))
	if _, err := server.Recv(); !IsTimeout(err) {
		t.Fatalf("dropped frame arrived anyway (err=%v)", err)
	}
	if c.Get("fault.drop") == 0 {
		t.Fatal("drop not counted")
	}
}

func TestFaultyRefuseDial(t *testing.T) {
	f := NewFaulty(NewMem(), FaultConfig{Seed: 7, RefuseDial: 1})
	l, err := f.Endpoint("b").Listen("b-addr")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := f.Endpoint("a").Dial("b-addr"); !errors.Is(err, ErrRefused) {
		t.Fatalf("err = %v, want ErrRefused", err)
	}
}

func TestFaultyCorruptSurfacesAsBadMagic(t *testing.T) {
	c := metrics.NewCounters()
	f := NewFaulty(NewMem(), FaultConfig{Seed: 7, Corrupt: 1, Counters: c})
	client, server := faultyPair(t, f, "a", "b")
	if err := client.Send(&wire.Message{Type: wire.TPing, Seq: 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Recv(); !errors.Is(err, wire.ErrBadMagic) {
		t.Fatalf("corrupted frame decoded as %v, want ErrBadMagic", err)
	}
	if c.Get("fault.corrupt") == 0 {
		t.Fatal("corruption not counted")
	}
}

func TestFaultyDuplicateDeliversTwice(t *testing.T) {
	f := NewFaulty(NewMem(), FaultConfig{Seed: 7, Duplicate: 1})
	client, server := faultyPair(t, f, "a", "b")
	if err := client.Send(&wire.Message{Type: wire.TPing, Seq: 3}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		server.SetDeadline(time.Now().Add(time.Second))
		m, err := server.Recv()
		if err != nil {
			t.Fatalf("copy %d: %v", i, err)
		}
		if m.Seq != 3 {
			t.Fatalf("copy %d has seq %d", i, m.Seq)
		}
	}
}

func TestFaultyDelayAddsLatency(t *testing.T) {
	f := NewFaulty(NewMem(), FaultConfig{Seed: 7, DelayMin: 30 * time.Millisecond, DelayMax: 30 * time.Millisecond})
	client, server := faultyPair(t, f, "a", "b")
	start := time.Now()
	if err := client.Send(&wire.Message{Type: wire.TPing}); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Recv(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("frame arrived after %v, want ≥ 30ms injected delay", elapsed)
	}
}

func TestFaultyPartitionBlocksAndHeals(t *testing.T) {
	f := NewFaulty(NewMem(), FaultConfig{Seed: 7})
	l, err := f.Endpoint("b").Listen("b-addr")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	f.PartitionBoth("split", []string{"a"}, []string{"b"})
	if _, err := f.Endpoint("a").Dial("b-addr"); !errors.Is(err, ErrRefused) {
		t.Fatalf("partitioned dial: %v, want ErrRefused", err)
	}
	// Unrelated endpoints still connect.
	if c, err := f.Endpoint("c").Dial("b-addr"); err != nil {
		t.Fatalf("unpartitioned dial failed: %v", err)
	} else {
		c.Close()
	}
	f.Heal("split")
	c, err := f.Endpoint("a").Dial("b-addr")
	if err != nil {
		t.Fatalf("healed dial failed: %v", err)
	}
	c.Close()
}

func TestFaultyPartitionAsymmetric(t *testing.T) {
	f := NewFaulty(NewMem(), FaultConfig{Seed: 7})
	for _, name := range []string{"a", "b"} {
		l, err := f.Endpoint(name).Listen(name + "-addr")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
	}
	f.Partition("oneway", []string{"a"}, []string{"b"})
	if _, err := f.Endpoint("a").Dial("b-addr"); !errors.Is(err, ErrRefused) {
		t.Fatalf("a→b should be blocked, got %v", err)
	}
	c, err := f.Endpoint("b").Dial("a-addr")
	if err != nil {
		t.Fatalf("b→a should pass, got %v", err)
	}
	c.Close()
}

func TestFaultyPartitionDropsEstablishedClientFrames(t *testing.T) {
	c := metrics.NewCounters()
	f := NewFaulty(NewMem(), FaultConfig{Seed: 7, Counters: c})
	client, server := faultyPair(t, f, "a", "b")
	f.Partition("split", []string{"a"}, []string{"b"})
	if err := client.Send(&wire.Message{Type: wire.TPing}); err != nil {
		t.Fatalf("black-holed send must look successful, got %v", err)
	}
	server.SetDeadline(time.Now().Add(50 * time.Millisecond))
	if _, err := server.Recv(); !IsTimeout(err) {
		t.Fatalf("frame crossed the partition (err=%v)", err)
	}
	if c.Get("fault.partition_drop") == 0 {
		t.Fatal("partition drop not counted")
	}
}

// TestFaultySeededDeterminism: the same seed and the same per-link frame
// order must inject the same faults.
func TestFaultySeededDeterminism(t *testing.T) {
	run := func() uint64 {
		c := metrics.NewCounters()
		f := NewFaulty(NewMem(), FaultConfig{Seed: 99, Drop: 0.5, Counters: c})
		client, _ := faultyPair(t, f, "a", "b")
		for i := 0; i < 200; i++ {
			if err := client.Send(&wire.Message{Type: wire.TPing, Seq: uint32(i)}); err != nil {
				t.Fatal(err)
			}
		}
		return c.Get("fault.drop")
	}
	first, second := run(), run()
	if first == 0 || first == 200 {
		t.Fatalf("drop rate degenerate: %d/200", first)
	}
	if first != second {
		t.Fatalf("same seed diverged: %d vs %d drops", first, second)
	}
}

func TestFaultySetConfigTogglesChaos(t *testing.T) {
	f := NewFaulty(NewMem(), FaultConfig{Seed: 5})
	client, server := faultyPair(t, f, "a", "b")
	if err := client.Send(&wire.Message{Type: wire.TPing, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Recv(); err != nil {
		t.Fatalf("clean phase: %v", err)
	}
	f.SetConfig(FaultConfig{Seed: 5, Drop: 1})
	if err := client.Send(&wire.Message{Type: wire.TPing, Seq: 2}); err != nil {
		t.Fatal(err)
	}
	server.SetDeadline(time.Now().Add(50 * time.Millisecond))
	if _, err := server.Recv(); !IsTimeout(err) {
		t.Fatalf("chaos phase delivered anyway (err=%v)", err)
	}
}

func TestFaultyLatencyHookPerLink(t *testing.T) {
	f := NewFaulty(NewMem(), FaultConfig{
		Seed: 7,
		Latency: func(from, to string) time.Duration {
			if from == "a" && to == "b" {
				return 40 * time.Millisecond
			}
			return 0 // accepted side (to == "") and every other link: free
		},
	})
	client, server := faultyPair(t, f, "a", "b")
	start := time.Now()
	if err := client.Send(&wire.Message{Type: wire.TPing}); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Recv(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("forward frame arrived after %v, want ≥ 40ms injected latency", elapsed)
	}
	// The response direction (accepted side, to == "") pays nothing.
	start = time.Now()
	if err := server.Send(&wire.Message{Type: wire.TPong}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Recv(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Fatalf("response took %v, want no injected latency", elapsed)
	}
}
