// Package transport abstracts how live Bristle nodes exchange wire
// frames: a TCP transport for real deployments and an in-memory transport
// for fast, deterministic tests. Both expose the same Dial/Listen
// contract, so internal/live is transport-agnostic.
package transport

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"bristle/internal/wire"
)

// Sentinel errors. Callers classify them (via errors.Is) to decide
// whether an operation is worth retrying.
var (
	// ErrClosed is returned after Close on listeners and conns.
	ErrClosed = errors.New("transport: closed")
	// ErrRefused means no listener answers at the address — transient in a
	// mobile network, where the peer may be mid-rebind.
	ErrRefused = errors.New("transport: connection refused")
	// ErrBacklogFull means the listener exists but its accept queue stayed
	// saturated for the bounded dial wait. Distinct from ErrRefused so
	// callers can treat it as backpressure (retry soon) rather than
	// absence.
	ErrBacklogFull = errors.New("transport: accept backlog full")
	// ErrTimeout is returned by Send/Recv when a deadline set with
	// SetDeadline expires.
	ErrTimeout = errors.New("transport: i/o timeout")
)

// IsTimeout reports whether err represents an exceeded deadline on any
// transport (the in-memory ErrTimeout sentinel or a net.Error timeout
// from the TCP stack).
func IsTimeout(err error) bool {
	if errors.Is(err, ErrTimeout) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Conn is a bidirectional framed-message connection.
type Conn interface {
	// Send writes one message. Safe for one concurrent sender.
	Send(*wire.Message) error
	// Recv blocks for the next message.
	Recv() (*wire.Message, error)
	// SetDeadline bounds every subsequent Send and Recv: an operation
	// still blocked at t fails with an error satisfying IsTimeout. The
	// zero time clears the deadline. It lets callers bound an exchange at
	// the socket level, so a hung peer cannot block a reader forever.
	SetDeadline(t time.Time) error
	// Close tears the connection down; pending Recv returns an error.
	Close() error
	// RemoteAddr names the peer (dialable for TCP).
	RemoteAddr() string
}

// Listener accepts inbound connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr is the dialable address of this listener.
	Addr() string
}

// Transport creates listeners and dials peers.
type Transport interface {
	Listen(addr string) (Listener, error)
	Dial(addr string) (Conn, error)
}

// ContextDialer is implemented by transports whose connection attempts
// can be bounded by a context, so a caller's deadline covers the dial
// itself and not just post-dial I/O. TCP, Mem, and Faulty endpoints all
// implement it.
type ContextDialer interface {
	DialContext(ctx context.Context, addr string) (Conn, error)
}

// DialContext dials addr through tr, honoring ctx when the transport
// supports it and falling back to a plain Dial otherwise (after a
// fast-path check that ctx is still live). The error for an expired
// deadline satisfies IsTimeout.
func DialContext(ctx context.Context, tr Transport, addr string) (Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	if cd, ok := tr.(ContextDialer); ok {
		return cd.DialContext(ctx, addr)
	}
	return tr.Dial(addr)
}

// --- TCP ---

// TCP is the production transport over the operating system's TCP stack.
// The zero value is ready to use. DialTimeout bounds connection attempts
// (default 5s).
type TCP struct {
	DialTimeout time.Duration
}

// Listen binds a TCP listener; addr ":0" picks a free port.
func (t *TCP) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{l: l}, nil
}

// Dial connects to a listener address.
func (t *TCP) Dial(addr string) (Conn, error) {
	return t.DialContext(context.Background(), addr)
}

// DialContext connects to a listener address, bounded by both ctx and
// DialTimeout — whichever expires first aborts the attempt.
func (t *TCP) DialContext(ctx context.Context, addr string) (Conn, error) {
	timeout := t.DialTimeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	d := net.Dialer{Timeout: timeout}
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return newTCPConn(c), nil
}

type tcpListener struct{ l net.Listener }

func (tl *tcpListener) Accept() (Conn, error) {
	c, err := tl.l.Accept()
	if err != nil {
		return nil, err
	}
	return newTCPConn(c), nil
}
func (tl *tcpListener) Close() error { return tl.l.Close() }
func (tl *tcpListener) Addr() string { return tl.l.Addr().String() }

type tcpConn struct {
	c  net.Conn
	r  *bufio.Reader
	mu sync.Mutex // serializes writers; also guards scratch

	scratch []byte // reused frame-encode buffer, owned under mu
}

func newTCPConn(c net.Conn) *tcpConn { return &tcpConn{c: c, r: bufio.NewReader(c)} }

func (tc *tcpConn) Send(m *wire.Message) error {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	frame, err := wire.AppendFrame(tc.scratch[:0], m)
	if err != nil {
		return err
	}
	tc.scratch = frame
	_, err = tc.c.Write(frame)
	return err
}

func (tc *tcpConn) Recv() (*wire.Message, error)  { return wire.Decode(tc.r) }
func (tc *tcpConn) SetDeadline(t time.Time) error { return tc.c.SetDeadline(t) }
func (tc *tcpConn) Close() error                  { return tc.c.Close() }
func (tc *tcpConn) RemoteAddr() string            { return tc.c.RemoteAddr().String() }

// --- In-memory ---

// Mem is an in-process transport keyed by string addresses. It is safe
// for concurrent use and delivers frames through buffered channels —
// deterministic and fast for tests.
type Mem struct {
	// BacklogWait bounds how long Dial waits for a saturated accept
	// backlog to drain before failing with ErrBacklogFull (default 100ms).
	BacklogWait time.Duration

	mu        sync.Mutex
	listeners map[string]*memListener
	nextAuto  int
}

// NewMem creates an empty in-memory network.
func NewMem() *Mem {
	return &Mem{listeners: make(map[string]*memListener)}
}

// Listen registers a listener at addr. Empty addr or ":0" allocates a
// unique synthetic address.
func (m *Mem) Listen(addr string) (Listener, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if addr == "" || addr == ":0" {
		m.nextAuto++
		addr = memAutoAddr(m.nextAuto)
	}
	if _, taken := m.listeners[addr]; taken {
		return nil, errors.New("transport: address in use: " + addr)
	}
	l := &memListener{
		addr:    addr,
		backlog: make(chan Conn, 64),
		owner:   m,
		closed:  make(chan struct{}),
	}
	m.listeners[addr] = l
	return l, nil
}

func memAutoAddr(n int) string {
	return "mem:" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// Dial connects to a registered listener. When the listener's accept
// backlog is saturated, Dial waits up to BacklogWait for the accepter to
// drain it — a briefly busy peer is backpressure, not failure — and only
// then fails with ErrBacklogFull (distinct from ErrRefused so callers can
// classify retryable congestion vs an absent peer).
func (m *Mem) Dial(addr string) (Conn, error) {
	return m.DialContext(context.Background(), addr)
}

// DialContext dials like Dial but also aborts — including during the
// backlog wait — as soon as ctx is cancelled or its deadline passes, so
// the caller's deadline bounds the whole dial, not just post-dial I/O.
func (m *Mem) DialContext(ctx context.Context, addr string) (Conn, error) {
	m.mu.Lock()
	l, ok := m.listeners[addr]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrRefused, addr)
	}
	client, server := newMemPair(addr)
	select {
	case <-l.closed:
		return nil, fmt.Errorf("%w: %s", ErrRefused, addr)
	case l.backlog <- server:
		return client, nil
	default:
	}
	wait := m.BacklogWait
	if wait <= 0 {
		wait = 100 * time.Millisecond
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-l.closed:
		return nil, fmt.Errorf("%w: %s", ErrRefused, addr)
	case l.backlog <- server:
		return client, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("transport: dial %s: %w", addr, ctx.Err())
	case <-timer.C:
		return nil, fmt.Errorf("%w: %s", ErrBacklogFull, addr)
	}
}

func (m *Mem) remove(addr string) {
	m.mu.Lock()
	delete(m.listeners, addr)
	m.mu.Unlock()
}

type memListener struct {
	addr    string
	backlog chan Conn
	owner   *Mem
	once    sync.Once
	closed  chan struct{}
}

func (l *memListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.closed:
		return nil, ErrClosed
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() {
		l.owner.remove(l.addr)
		close(l.closed)
	})
	return nil
}
func (l *memListener) Addr() string { return l.addr }

type memConn struct {
	out    chan *wire.Message
	in     chan *wire.Message
	closed chan struct{}
	once   sync.Once
	peer   *memConn
	remote string

	dmu      sync.Mutex
	deadline time.Time
}

func newMemPair(serverAddr string) (client, server *memConn) {
	a2b := make(chan *wire.Message, 256)
	b2a := make(chan *wire.Message, 256)
	client = &memConn{out: a2b, in: b2a, closed: make(chan struct{}), remote: serverAddr}
	server = &memConn{out: b2a, in: a2b, closed: make(chan struct{}), remote: "mem:client"}
	client.peer, server.peer = server, client
	return client, server
}

func (c *memConn) Send(m *wire.Message) error {
	// Round-trip through the codec so the mem transport exercises exactly
	// the same encoding invariants as TCP, using pooled scratch so the
	// detour costs no per-frame allocation.
	fp := wire.GetFrame()
	frame, err := wire.AppendFrame(*fp, m)
	if err != nil {
		wire.PutFrame(fp)
		return err
	}
	copied, err := wire.Decode(bytes.NewReader(frame))
	*fp = frame[:0]
	wire.PutFrame(fp)
	if err != nil {
		return err
	}
	// Closed checks take priority over an available buffer slot.
	select {
	case <-c.closed:
		return ErrClosed
	case <-c.peer.closed:
		return io.ErrClosedPipe
	default:
	}
	expired, stop := c.deadlineTimer()
	defer stop()
	select {
	case <-c.closed:
		return ErrClosed
	case <-c.peer.closed:
		return io.ErrClosedPipe
	case c.out <- copied:
		return nil
	case <-expired:
		return fmt.Errorf("%w: send", ErrTimeout)
	}
}

// SetDeadline bounds subsequent Send and Recv calls; the zero time clears
// the bound.
func (c *memConn) SetDeadline(t time.Time) error {
	c.dmu.Lock()
	c.deadline = t
	c.dmu.Unlock()
	return nil
}

// deadlineTimer arms a timer for the current deadline. A nil channel
// (no deadline) never fires in a select.
func (c *memConn) deadlineTimer() (<-chan time.Time, func()) {
	c.dmu.Lock()
	d := c.deadline
	c.dmu.Unlock()
	if d.IsZero() {
		return nil, func() {}
	}
	t := time.NewTimer(time.Until(d))
	return t.C, func() { t.Stop() }
}

func (c *memConn) Recv() (*wire.Message, error) {
	expired, stop := c.deadlineTimer()
	defer stop()
	select {
	case m := <-c.in:
		return m, nil
	case <-expired:
		return nil, fmt.Errorf("%w: recv", ErrTimeout)
	case <-c.closed:
		return nil, ErrClosed
	case <-c.peer.closed:
		// Drain anything already queued before reporting EOF.
		select {
		case m := <-c.in:
			return m, nil
		default:
			return nil, io.EOF
		}
	}
}

func (c *memConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}
func (c *memConn) RemoteAddr() string { return c.remote }
