// Package transport abstracts how live Bristle nodes exchange wire
// frames: a TCP transport for real deployments and an in-memory transport
// for fast, deterministic tests. Both expose the same Dial/Listen
// contract, so internal/live is transport-agnostic.
package transport

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"bristle/internal/wire"
)

// ErrClosed is returned after Close on listeners and conns.
var ErrClosed = errors.New("transport: closed")

// Conn is a bidirectional framed-message connection.
type Conn interface {
	// Send writes one message. Safe for one concurrent sender.
	Send(*wire.Message) error
	// Recv blocks for the next message.
	Recv() (*wire.Message, error)
	// Close tears the connection down; pending Recv returns an error.
	Close() error
	// RemoteAddr names the peer (dialable for TCP).
	RemoteAddr() string
}

// Listener accepts inbound connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr is the dialable address of this listener.
	Addr() string
}

// Transport creates listeners and dials peers.
type Transport interface {
	Listen(addr string) (Listener, error)
	Dial(addr string) (Conn, error)
}

// --- TCP ---

// TCP is the production transport over the operating system's TCP stack.
// The zero value is ready to use. DialTimeout bounds connection attempts
// (default 5s).
type TCP struct {
	DialTimeout time.Duration
}

// Listen binds a TCP listener; addr ":0" picks a free port.
func (t *TCP) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{l: l}, nil
}

// Dial connects to a listener address.
func (t *TCP) Dial(addr string) (Conn, error) {
	timeout := t.DialTimeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return newTCPConn(c), nil
}

type tcpListener struct{ l net.Listener }

func (tl *tcpListener) Accept() (Conn, error) {
	c, err := tl.l.Accept()
	if err != nil {
		return nil, err
	}
	return newTCPConn(c), nil
}
func (tl *tcpListener) Close() error { return tl.l.Close() }
func (tl *tcpListener) Addr() string { return tl.l.Addr().String() }

type tcpConn struct {
	c  net.Conn
	mu sync.Mutex // serializes writers
}

func newTCPConn(c net.Conn) *tcpConn { return &tcpConn{c: c} }

func (tc *tcpConn) Send(m *wire.Message) error {
	frame, err := wire.Encode(m)
	if err != nil {
		return err
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	_, err = tc.c.Write(frame)
	return err
}

func (tc *tcpConn) Recv() (*wire.Message, error) { return wire.Decode(tc.c) }
func (tc *tcpConn) Close() error                 { return tc.c.Close() }
func (tc *tcpConn) RemoteAddr() string           { return tc.c.RemoteAddr().String() }

// --- In-memory ---

// Mem is an in-process transport keyed by string addresses. It is safe
// for concurrent use and delivers frames through buffered channels —
// deterministic and fast for tests.
type Mem struct {
	mu        sync.Mutex
	listeners map[string]*memListener
	nextAuto  int
}

// NewMem creates an empty in-memory network.
func NewMem() *Mem {
	return &Mem{listeners: make(map[string]*memListener)}
}

// Listen registers a listener at addr. Empty addr or ":0" allocates a
// unique synthetic address.
func (m *Mem) Listen(addr string) (Listener, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if addr == "" || addr == ":0" {
		m.nextAuto++
		addr = memAutoAddr(m.nextAuto)
	}
	if _, taken := m.listeners[addr]; taken {
		return nil, errors.New("transport: address in use: " + addr)
	}
	l := &memListener{
		addr:    addr,
		backlog: make(chan Conn, 64),
		owner:   m,
		closed:  make(chan struct{}),
	}
	m.listeners[addr] = l
	return l, nil
}

func memAutoAddr(n int) string {
	return "mem:" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// Dial connects to a registered listener.
func (m *Mem) Dial(addr string) (Conn, error) {
	m.mu.Lock()
	l, ok := m.listeners[addr]
	m.mu.Unlock()
	if !ok {
		return nil, errors.New("transport: connection refused: " + addr)
	}
	client, server := newMemPair(addr)
	select {
	case <-l.closed:
		return nil, errors.New("transport: connection refused: " + addr)
	case l.backlog <- server:
		return client, nil
	default:
		return nil, errors.New("transport: backlog full: " + addr)
	}
}

func (m *Mem) remove(addr string) {
	m.mu.Lock()
	delete(m.listeners, addr)
	m.mu.Unlock()
}

type memListener struct {
	addr    string
	backlog chan Conn
	owner   *Mem
	once    sync.Once
	closed  chan struct{}
}

func (l *memListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.closed:
		return nil, ErrClosed
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() {
		l.owner.remove(l.addr)
		close(l.closed)
	})
	return nil
}
func (l *memListener) Addr() string { return l.addr }

type memConn struct {
	out    chan *wire.Message
	in     chan *wire.Message
	closed chan struct{}
	once   sync.Once
	peer   *memConn
	remote string
}

func newMemPair(serverAddr string) (client, server *memConn) {
	a2b := make(chan *wire.Message, 256)
	b2a := make(chan *wire.Message, 256)
	client = &memConn{out: a2b, in: b2a, closed: make(chan struct{}), remote: serverAddr}
	server = &memConn{out: b2a, in: a2b, closed: make(chan struct{}), remote: "mem:client"}
	client.peer, server.peer = server, client
	return client, server
}

func (c *memConn) Send(m *wire.Message) error {
	// Round-trip through the codec so the mem transport exercises exactly
	// the same encoding invariants as TCP.
	frame, err := wire.Encode(m)
	if err != nil {
		return err
	}
	copied, err := wire.Decode(bytes.NewReader(frame))
	if err != nil {
		return err
	}
	// Closed checks take priority over an available buffer slot.
	select {
	case <-c.closed:
		return ErrClosed
	case <-c.peer.closed:
		return io.ErrClosedPipe
	default:
	}
	select {
	case <-c.closed:
		return ErrClosed
	case <-c.peer.closed:
		return io.ErrClosedPipe
	case c.out <- copied:
		return nil
	}
}

func (c *memConn) Recv() (*wire.Message, error) {
	select {
	case m := <-c.in:
		return m, nil
	case <-c.closed:
		return nil, ErrClosed
	case <-c.peer.closed:
		// Drain anything already queued before reporting EOF.
		select {
		case m := <-c.in:
			return m, nil
		default:
			return nil, io.EOF
		}
	}
}

func (c *memConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}
func (c *memConn) RemoteAddr() string { return c.remote }
