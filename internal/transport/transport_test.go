package transport

import (
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"bristle/internal/wire"
)

// exerciseTransport runs the shared contract tests against any Transport.
func exerciseTransport(t *testing.T, tr Transport, addr string) {
	t.Helper()
	l, err := tr.Listen(addr)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	var serverErr error
	go func() {
		defer wg.Done()
		conn, err := l.Accept()
		if err != nil {
			serverErr = err
			return
		}
		defer conn.Close()
		for {
			m, err := conn.Recv()
			if err != nil {
				return // client closed
			}
			m.Type = wire.TPong
			if err := conn.Send(m); err != nil {
				serverErr = err
				return
			}
		}
	}()

	c, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := c.Send(&wire.Message{Type: wire.TPing, Seq: uint32(i)}); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
		m, err := c.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if m.Type != wire.TPong || m.Seq != uint32(i) {
			t.Fatalf("echo %d mismatch: %+v", i, m)
		}
	}
	c.Close()
	wg.Wait()
	if serverErr != nil {
		t.Fatalf("server: %v", serverErr)
	}
}

func TestMemTransportContract(t *testing.T) {
	exerciseTransport(t, NewMem(), "node-a")
}

func TestTCPTransportContract(t *testing.T) {
	exerciseTransport(t, &TCP{}, "127.0.0.1:0")
}

func TestMemDialUnknownRefused(t *testing.T) {
	m := NewMem()
	if _, err := m.Dial("nowhere"); err == nil {
		t.Fatal("dial to unknown address succeeded")
	}
}

func TestMemAddressReuseRejected(t *testing.T) {
	m := NewMem()
	l, err := m.Listen("dup")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Listen("dup"); err == nil {
		t.Fatal("duplicate listen succeeded")
	}
	l.Close()
	// After close the address is free again.
	if _, err := m.Listen("dup"); err != nil {
		t.Fatalf("re-listen after close: %v", err)
	}
}

func TestMemAutoAddressesUnique(t *testing.T) {
	m := NewMem()
	a, err := m.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	if a.Addr() == b.Addr() {
		t.Fatalf("auto addresses collide: %s", a.Addr())
	}
}

func TestMemListenerCloseUnblocksAccept(t *testing.T) {
	m := NewMem()
	l, _ := m.Listen("x")
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	l.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Fatalf("Accept after close: %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Accept did not unblock on close")
	}
}

func TestMemDialAfterListenerClose(t *testing.T) {
	m := NewMem()
	l, _ := m.Listen("gone")
	l.Close()
	if _, err := m.Dial("gone"); err == nil {
		t.Fatal("dial to closed listener succeeded")
	}
}

func TestMemConnCloseUnblocksPeerRecv(t *testing.T) {
	m := NewMem()
	l, _ := m.Listen("y")
	go func() {
		c, err := m.Dial("y")
		if err != nil {
			return
		}
		c.Close()
	}()
	server, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Recv(); err != io.EOF {
		t.Fatalf("Recv on peer-closed conn: %v, want EOF", err)
	}
}

func TestMemPendingMessagesDrainBeforeEOF(t *testing.T) {
	m := NewMem()
	l, _ := m.Listen("z")
	client, err := m.Dial("z")
	if err != nil {
		t.Fatal(err)
	}
	server, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Send(&wire.Message{Type: wire.TPing, Seq: 7}); err != nil {
		t.Fatal(err)
	}
	client.Close()
	msg, err := server.Recv()
	if err != nil {
		t.Fatalf("queued message lost: %v", err)
	}
	if msg.Seq != 7 {
		t.Fatalf("wrong message drained: %+v", msg)
	}
	if _, err := server.Recv(); err != io.EOF {
		t.Fatalf("after drain: %v, want EOF", err)
	}
}

func TestMemSendAfterCloseFails(t *testing.T) {
	m := NewMem()
	l, _ := m.Listen("w")
	client, _ := m.Dial("w")
	if _, err := l.Accept(); err != nil {
		t.Fatal(err)
	}
	client.Close()
	if err := client.Send(&wire.Message{Type: wire.TPing}); err == nil {
		t.Fatal("send on closed conn succeeded")
	}
}

func TestTCPConcurrentSenders(t *testing.T) {
	tr := &TCP{}
	l, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	received := make(chan uint32, 100)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for i := 0; i < 100; i++ {
			m, err := conn.Recv()
			if err != nil {
				return
			}
			received <- m.Seq
		}
	}()

	c, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for g := 0; g < 10; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if err := c.Send(&wire.Message{Type: wire.TPing, Seq: uint32(g*10 + i)}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// All 100 frames must arrive intact (no interleaved corruption).
	seen := map[uint32]bool{}
	for i := 0; i < 100; i++ {
		select {
		case s := <-received:
			if seen[s] {
				t.Fatalf("duplicate frame %d", s)
			}
			seen[s] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d/100 frames arrived", i)
		}
	}
}

func TestTCPDialRefused(t *testing.T) {
	tr := &TCP{DialTimeout: 500 * time.Millisecond}
	if _, err := tr.Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestMemDialUnknownIsErrRefused(t *testing.T) {
	m := NewMem()
	if _, err := m.Dial("nowhere"); !errors.Is(err, ErrRefused) {
		t.Fatalf("err = %v, want ErrRefused", err)
	}
}

// TestMemBacklogFullDistinctSentinel saturates a never-accepting
// listener: the dialer must wait the bounded BacklogWait, then fail with
// ErrBacklogFull — never with ErrRefused.
func TestMemBacklogFullDistinctSentinel(t *testing.T) {
	m := NewMem()
	m.BacklogWait = 20 * time.Millisecond
	if _, err := m.Listen("busy"); err != nil {
		t.Fatal(err)
	}
	var conns []Conn
	for i := 0; ; i++ {
		c, err := m.Dial("busy")
		if err == nil {
			conns = append(conns, c)
			continue
		}
		if !errors.Is(err, ErrBacklogFull) {
			t.Fatalf("saturated dial err = %v, want ErrBacklogFull", err)
		}
		if errors.Is(err, ErrRefused) {
			t.Fatal("ErrBacklogFull must be distinct from ErrRefused")
		}
		break
	}
	if len(conns) != 64 {
		t.Fatalf("backlog accepted %d dials before filling, want 64", len(conns))
	}
}

// TestMemDialWaitsForBacklogDrain fills the backlog, then frees one slot
// while a dial is waiting: the dial must succeed instead of failing fast.
func TestMemDialWaitsForBacklogDrain(t *testing.T) {
	m := NewMem()
	m.BacklogWait = 2 * time.Second
	l, err := m.Listen("busy")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := m.Dial("busy"); err != nil {
			t.Fatalf("fill dial %d: %v", i, err)
		}
	}
	go func() {
		time.Sleep(30 * time.Millisecond)
		l.Accept() // frees one backlog slot
	}()
	start := time.Now()
	c, err := m.Dial("busy")
	if err != nil {
		t.Fatalf("dial during drain: %v", err)
	}
	c.Close()
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("dial returned before the backlog had room")
	}
}

func TestMemConnDeadlineUnblocksRecv(t *testing.T) {
	m := NewMem()
	l, _ := m.Listen("dl")
	client, err := m.Dial("dl")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Accept(); err != nil {
		t.Fatal(err)
	}
	client.SetDeadline(time.Now().Add(30 * time.Millisecond))
	start := time.Now()
	_, err = client.Recv()
	if !errors.Is(err, ErrTimeout) || !IsTimeout(err) {
		t.Fatalf("Recv past deadline: %v, want ErrTimeout", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("deadline did not bound Recv")
	}
	// Clearing the deadline restores blocking semantics: queued frames
	// still arrive.
	client.SetDeadline(time.Time{})
}

// TestTCPConnDeadlineUnblocksRecv is the satellite bugfix regression: a
// hung peer (accepts, never answers) must cost at most the deadline, at
// the socket level.
func TestTCPConnDeadlineUnblocksRecv(t *testing.T) {
	tr := &TCP{}
	l, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go l.Accept() // hung peer: accepts and goes silent

	c, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(50 * time.Millisecond))
	done := make(chan error, 1)
	go func() {
		_, err := c.Recv()
		done <- err
	}()
	select {
	case err := <-done:
		if !IsTimeout(err) {
			t.Fatalf("Recv err = %v, want a timeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv still blocked on a hung peer despite deadline")
	}
}
