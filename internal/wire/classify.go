package wire

import "errors"

// ErrEncode marks messages that cannot be serialized at all (oversized
// address or entry list). It originates locally, so retrying the exchange
// can never help.
var ErrEncode = errors.New("wire: unencodable message")

// Fatal reports whether err can never be cured by retrying the exchange:
// the peer speaks an incompatible protocol revision, or the local message
// itself is unencodable. Everything else a live exchange can return —
// refused dials, timeouts, torn connections, corrupt frames (ErrBadMagic,
// ErrTruncated, ErrTooLarge: the stream is ruined but a fresh connection
// is not) — is transient under the paper's failure model and worth a
// backed-off retry.
func Fatal(err error) bool {
	return errors.Is(err, ErrBadVersion) || errors.Is(err, ErrEncode)
}

// Retryable reports whether err is a transient failure that a capped,
// jittered retry may cure. Nil errors are not retryable.
func Retryable(err error) bool {
	return err != nil && !Fatal(err)
}
