package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
)

func TestClassifyRetryableVsFatal(t *testing.T) {
	cases := []struct {
		name      string
		err       error
		retryable bool
	}{
		{"nil", nil, false},
		{"bad version is fatal", ErrBadVersion, false},
		{"wrapped bad version is fatal", fmt.Errorf("recv: %w", ErrBadVersion), false},
		{"encode error is fatal", fmt.Errorf("%w: too big", ErrEncode), false},
		{"bad magic retryable", ErrBadMagic, true},
		{"truncated retryable", ErrTruncated, true},
		{"too large retryable", ErrTooLarge, true},
		{"eof retryable", io.EOF, true},
		{"closed pipe retryable", io.ErrClosedPipe, true},
		{"arbitrary transport error retryable", errors.New("transport: connection refused"), true},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.retryable {
			t.Errorf("%s: Retryable = %v, want %v", c.name, got, c.retryable)
		}
		if c.err != nil {
			if got := Fatal(c.err); got != !c.retryable {
				t.Errorf("%s: Fatal = %v, want %v", c.name, got, !c.retryable)
			}
		}
	}
}

func TestEncodeOversizeErrorsAreFatal(t *testing.T) {
	_, err := Encode(&Message{Type: TPing, Self: Entry{Addr: strings.Repeat("x", 70000)}})
	if !errors.Is(err, ErrEncode) {
		t.Fatalf("oversize address err = %v, want ErrEncode", err)
	}
	if Retryable(err) {
		t.Fatal("unencodable message classified retryable")
	}
	_, err = Encode(&Message{Type: TPing, Entries: make([]Entry, 70000)})
	if !errors.Is(err, ErrEncode) {
		t.Fatalf("oversize entry list err = %v, want ErrEncode", err)
	}
}

// FuzzDecode feeds arbitrary bytes to the frame decoder; any accepted
// message must re-encode cleanly (the decoder's bounds imply
// encodability). This is the corpus the CI smoke job exercises.
func FuzzDecode(f *testing.F) {
	seeds := []*Message{
		{Type: TPing},
		{Type: TDiscover, Key: 42, Seq: 7},
		{Type: TPublish, Self: Entry{Key: 9, Addr: "10.0.0.1:1", Capacity: 2, TTLMilli: 500, Mobile: true, Epoch: 17}},
		{Type: TJoinResp, Found: true, Entries: []Entry{{Key: 1, Addr: "a:1"}, {Key: 2, Addr: "b:2"}}},
		// Batched publish: empty batch, and a mixed-epoch batch (records
		// written at different moves sharing one frame).
		{Type: TPublishBatch, Self: Entry{Key: 9, Addr: "10.0.0.1:1", Mobile: true, Epoch: 3}},
		{Type: TPublishBatch, Self: Entry{Key: 9, Addr: "10.0.0.1:2", Mobile: true, Epoch: 1 << 40}, Entries: []Entry{
			{Key: 100, Addr: "10.0.0.1:2", TTLMilli: 250, Epoch: 1 << 40},
			{Key: 101, Addr: "10.0.0.1:1", TTLMilli: 250, Epoch: 3},
			{Key: 102, Addr: "10.0.0.1:0"},
		}},
		{Type: TUpdate, Self: Entry{Key: 8, Addr: "m:3", Epoch: ^uint64(0)}, Entries: []Entry{{Key: 4, Addr: "w:1", Capacity: 1}}},
	}
	for _, m := range seeds {
		frame, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte{})
	f.Add([]byte{0xB2, 0x15})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine
		}
		if _, err := Encode(m); err != nil {
			t.Fatalf("decoded message does not re-encode: %v (%+v)", err, m)
		}
	})
}
