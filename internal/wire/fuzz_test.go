package wire

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestDecodeNeverPanicsOnMutatedFrames flips random bytes in valid frames
// and asserts the decoder either rejects them or returns a structurally
// valid message — never panics or over-allocates.
func TestDecodeNeverPanicsOnMutatedFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := &Message{
		Type: TUpdate,
		Key:  12345,
		Seq:  7,
		Self: Entry{Key: 9, Addr: "10.0.0.1:1234", Capacity: 3, TTLMilli: 1000},
		Entries: []Entry{
			{Key: 1, Addr: "a:1", Capacity: 1},
			{Key: 2, Addr: "b:2", Capacity: 2},
		},
	}
	frame, err := Encode(base)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5000; trial++ {
		mut := append([]byte(nil), frame...)
		flips := 1 + rng.Intn(4)
		for i := 0; i < flips; i++ {
			mut[rng.Intn(len(mut))] ^= byte(1 << uint(rng.Intn(8)))
		}
		msg, err := Decode(bytes.NewReader(mut))
		if err != nil {
			continue // rejected: fine
		}
		// Accepted: the message must be structurally sane.
		if len(msg.Entries) > 1<<16 {
			t.Fatalf("decoder accepted absurd entry count %d", len(msg.Entries))
		}
		for _, e := range msg.Entries {
			if len(e.Addr) > 1<<16 {
				t.Fatalf("decoder accepted absurd address length %d", len(e.Addr))
			}
		}
	}
}

// TestDecodeNeverPanicsOnRandomBytes feeds pure noise.
func TestDecodeNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5000; trial++ {
		n := rng.Intn(200)
		buf := make([]byte, n)
		rng.Read(buf)
		_, _ = Decode(bytes.NewReader(buf)) // must not panic
	}
}

// TestDecodeTruncationsOfManyMessages exhaustively truncates frames of
// varying shapes.
func TestDecodeTruncationsOfManyMessages(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		m := &Message{
			Type: MsgType(1 + rng.Intn(13)),
			Key:  12345,
			Self: Entry{Addr: string(make([]byte, rng.Intn(50)))},
		}
		for i := 0; i < rng.Intn(5); i++ {
			m.Entries = append(m.Entries, Entry{Key: 1, Addr: "x"})
		}
		frame, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(frame); cut++ {
			if _, err := Decode(bytes.NewReader(frame[:cut])); err == nil {
				t.Fatalf("truncated frame (%d/%d) accepted", cut, len(frame))
			}
		}
	}
}
